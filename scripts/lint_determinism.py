#!/usr/bin/env python3
"""Determinism lint: ban patterns that silently break bit-identity.

The repository's serving contract is that token streams and GEMM
outputs are bit-identical across ``MSQ_THREADS``, partition shape, and
admission order. That contract is easy to break with innocent-looking
code long before any test notices, so this checker bans the known
foot-guns in ``src/``:

``unordered-container``
    ``std::unordered_map`` / ``std::unordered_set`` (and multi
    variants). Their iteration order is libstdc++-internal and
    seed-dependent, so any loop over one can feed output-ordered paths.
    The repo convention is ordered containers (``std::map``,
    ``std::set``, sorted vectors).

``raw-random``
    ``rand()`` / ``srand()`` / ``std::random_device`` /
    ``std::mt19937`` and friends outside ``src/common/rng.*``. All
    randomness must flow through the seeded xoshiro ``msq::Rng`` so a
    run is reproducible from its config.

``wall-clock``
    Clock reads (``steady_clock`` / ``system_clock`` /
    ``high_resolution_clock`` / ``time()`` / ``clock_gettime`` / ...)
    outside ``src/serve/clock.h``. Keeping every clock read behind one
    audited helper keeps time a *measurement*, never an input to
    computed bytes.

``parallel-accumulate``
    Compound float/any accumulation (``x += ...``) inside a
    ``parallelFor`` body into a location that is not declared inside
    the body and not an indexed slot. Cross-partition accumulation
    order depends on the schedule; reductions must be done serially by
    the caller, in index order (see src/common/parallel.h).

Escapes: a finding is waived by ``// lint:allow(<rule>): <reason>`` on
the offending line or the line directly above. The reason is
mandatory — an escape without one is itself an error — so every waiver
in the tree is explained at the point of use.

Exit status: 0 clean, 1 findings, 2 usage/internal error.

``--self-test`` runs embedded unit cases for every rule (including the
escape machinery) and is wired as its own ctest, so a rule regression
fails tier-1.
"""

import argparse
import os
import re
import sys

# --------------------------------------------------------------------
# Rules.

# Files (relative to the repo root, '/'-separated) exempt per rule.
EXEMPT = {
    "raw-random": ("src/common/rng.h", "src/common/rng.cc"),
    "wall-clock": ("src/serve/clock.h",),
}

SIMPLE_RULES = (
    (
        "unordered-container",
        re.compile(r"\bunordered_(?:multi)?(?:map|set)\b"),
        "hash-order iteration can feed output-ordered paths; use an "
        "ordered container",
    ),
    (
        "raw-random",
        re.compile(
            r"\b(?:s?rand\s*\(|random_device\b|mt19937(?:_64)?\b|"
            r"default_random_engine\b|random_shuffle\b)"
        ),
        "unseeded/global randomness; use msq::Rng (src/common/rng.h)",
    ),
    (
        "wall-clock",
        re.compile(
            r"\b(?:steady_clock|system_clock|high_resolution_clock)\b"
            r"|\bclock_gettime\s*\(|\bgettimeofday\s*\(|\btime\s*\("
            r"|\blocaltime\s*\(|\bgmtime\s*\("
        ),
        "clock read outside src/serve/clock.h; route through "
        "steadyNanos()/elapsedMs()",
    ),
)

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+)\)(?::\s*(\S.*))?")

DECL_TYPES = (
    r"double|float|auto|int|long|short|unsigned|size_t|ssize_t|"
    r"u?int(?:8|16|32|64)_t"
)

COMPOUND_RE = re.compile(
    r"^\s*([A-Za-z_]\w*)((?:(?:->|\.)[A-Za-z_]\w*)*)\s*([+\-*/]=)(?!=)"
)


def strip_comments_and_strings(text):
    """Blank out comments and string/char literals, preserving line
    structure so findings keep their line numbers."""
    out = []
    i, n = 0, len(text)
    state = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append("\n" if c == "\n" else " ")
        else:  # inside a string/char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == state:
                state = None
                out.append(c)
            elif c == "\n":  # unterminated; keep structure
                state = None
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def collect_allows(original_lines):
    """Map line number (1-based) -> (rule, reason|None) escapes that
    apply to it: an escape covers its own line and the line below."""
    allows = {}
    for ln, line in enumerate(original_lines, 1):
        m = ALLOW_RE.search(line)
        if m:
            entry = (m.group(1), m.group(2))
            allows.setdefault(ln, []).append(entry)
            allows.setdefault(ln + 1, []).append(entry)
    return allows


def lambda_body_spans(stripped):
    """[(start, end) char offsets) of every parallelFor body's braces."""
    spans = []
    for m in re.finditer(r"\bparallelFor\s*\(", stripped):
        # The body callable starts at the first '[' (lambda capture)
        # after the call opens; its block is the next balanced {...}.
        cap = stripped.find("[", m.end())
        if cap < 0:
            continue
        brace = stripped.find("{", cap)
        if brace < 0:
            continue
        depth = 0
        for i in range(brace, len(stripped)):
            if stripped[i] == "{":
                depth += 1
            elif stripped[i] == "}":
                depth -= 1
                if depth == 0:
                    spans.append((brace, i + 1))
                    break
    return spans


def declared_in(body, name):
    """Heuristic: `name` is declared (by value or reference) inside the
    lambda body text."""
    return re.search(
        r"\b(?:%s)\b[^;{}()=]*[&\s]\b%s\b" % (DECL_TYPES, re.escape(name)),
        body,
    ) is not None


def parallel_accumulate_findings(stripped):
    """(line, message) for cross-partition compound accumulations."""
    found = []
    for start, end in lambda_body_spans(stripped):
        body = stripped[start:end]
        body_line0 = stripped.count("\n", 0, start)
        for off, line in enumerate(body.split("\n")):
            m = COMPOUND_RE.match(line)
            if not m:
                continue
            base, members, op = m.groups()
            if declared_in(body, base):
                continue  # body-local accumulator: index-private
            found.append(
                (
                    body_line0 + off + 1,
                    "'%s%s %s' accumulates across parallelFor "
                    "partitions; reduce serially in index order after "
                    "the loop" % (base, members, op),
                )
            )
    # A nested parallelFor body is contained in its parent's span, so
    # the same line can be reported twice; dedupe.
    return sorted(set(found))


def lint_text(relpath, text):
    """All findings for one file: (line, rule, message)."""
    original_lines = text.split("\n")
    allows = collect_allows(original_lines)
    stripped = strip_comments_and_strings(text)
    stripped_lines = stripped.split("\n")

    raw = []
    for rule, pattern, message in SIMPLE_RULES:
        if relpath in EXEMPT.get(rule, ()):
            continue
        for ln, line in enumerate(stripped_lines, 1):
            if pattern.search(line):
                raw.append((ln, rule, message))
    for ln, message in parallel_accumulate_findings(stripped):
        raw.append((ln, "parallel-accumulate", message))

    findings = []
    for ln, rule, message in sorted(set(raw)):
        waived = False
        for allow_rule, reason in allows.get(ln, ()):
            if allow_rule != rule:
                continue
            if reason:
                waived = True
            else:
                findings.append(
                    (
                        ln,
                        rule,
                        "lint:allow(%s) without a reason; write "
                        "'// lint:allow(%s): <why>'" % (rule, rule),
                    )
                )
                waived = True  # don't double-report the pattern itself
        if not waived:
            findings.append((ln, rule, message))
    return findings


def lint_tree(root):
    findings = []
    src = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in os.walk(src):
        for name in sorted(filenames):
            if not name.endswith((".h", ".cc")):
                continue
            path = os.path.join(dirpath, name)
            rel = os.path.relpath(path, root).replace(os.sep, "/")
            with open(path, encoding="utf-8") as f:
                text = f.read()
            for ln, rule, message in lint_text(rel, text):
                findings.append((rel, ln, rule, message))
    return findings


# --------------------------------------------------------------------
# Self test: each case is (name, relpath, code, expected rules).

SELF_TEST_CASES = [
    (
        "unordered map declaration flags",
        "src/x/a.cc",
        "#include <unordered_map>\nstd::unordered_map<int, int> m;\n",
        ["unordered-container", "unordered-container"],
    ),
    (
        "ordered map is clean",
        "src/x/a.cc",
        "#include <map>\nstd::map<int, int> m;\nfor (auto &kv : m) {}\n",
        [],
    ),
    (
        "unordered in a comment is not code",
        "src/x/a.cc",
        "// we rejected unordered_map here on purpose\nint x;\n",
        [],
    ),
    (
        "rand() flags outside rng",
        "src/x/a.cc",
        "int r = rand();\n",
        ["raw-random"],
    ),
    (
        "mt19937 and random_device flag",
        "src/x/a.cc",
        "std::mt19937 gen{std::random_device{}()};\n",
        ["raw-random"],
    ),
    (
        "strand() is not rand()",
        "src/x/a.cc",
        "int s = strand();\n",
        [],
    ),
    (
        "rng.h itself may define randomness",
        "src/common/rng.h",
        "uint64_t next(); // wraps splitmix64, no rand() here anyway\n",
        [],
    ),
    (
        "steady_clock outside clock.h flags",
        "src/x/a.cc",
        "auto t = std::chrono::steady_clock::now();\n",
        ["wall-clock"],
    ),
    (
        "clock.h is the audited exemption",
        "src/serve/clock.h",
        "auto t = std::chrono::steady_clock::now();\n",
        [],
    ),
    (
        "runtime() is not time()",
        "src/x/a.cc",
        "double runtime(int x);\n",
        [],
    ),
    (
        "cross-partition accumulation flags",
        "src/x/a.cc",
        "void f(double &total) {\n"
        "    parallelFor(0, n, [&](size_t i) {\n"
        "        total += work(i);\n"
        "    });\n"
        "}\n",
        ["parallel-accumulate"],
    ),
    (
        "body-local accumulator is clean",
        "src/x/a.cc",
        "parallelFor(0, n, [&](size_t i) {\n"
        "    double acc = 0.0;\n"
        "    for (size_t t = 0; t < k; ++t)\n"
        "        acc += x[t];\n"
        "    out[i] = acc;\n"
        "});\n",
        [],
    ),
    (
        "indexed slot accumulation is clean",
        "src/x/a.cc",
        "parallelFor(0, n, [&](size_t i) {\n"
        "    out[i] += x[i];\n"
        "});\n",
        [],
    ),
    (
        "nested body accumulation reported once",
        "src/x/a.cc",
        "parallelFor(0, n, [&](size_t i) {\n"
        "    parallelFor(0, m, [&](size_t j) {\n"
        "        total += g(i, j);\n"
        "    });\n"
        "});\n",
        ["parallel-accumulate"],
    ),
    (
        "escape with reason waives",
        "src/x/a.cc",
        "// lint:allow(raw-random): seeding the fuzzer corpus only\n"
        "int r = rand();\n",
        [],
    ),
    (
        "same-line escape with reason waives",
        "src/x/a.cc",
        "int r = rand(); // lint:allow(raw-random): fuzzer corpus seed\n",
        [],
    ),
    (
        "escape without reason is an error",
        "src/x/a.cc",
        "int r = rand(); // lint:allow(raw-random)\n",
        ["raw-random"],
    ),
    (
        "escape for another rule does not waive",
        "src/x/a.cc",
        "int r = rand(); // lint:allow(wall-clock): wrong rule\n",
        ["raw-random"],
    ),
]


def self_test():
    failures = 0
    for name, relpath, code, expected in SELF_TEST_CASES:
        got = [rule for _ln, rule, _msg in lint_text(relpath, code)]
        if got != expected:
            failures += 1
            print(
                "FAIL %s: expected %r, got %r" % (name, expected, got),
                file=sys.stderr,
            )
        else:
            print("ok   %s" % name)
    if failures:
        print("%d self-test case(s) failed" % failures, file=sys.stderr)
        return 1
    print("all %d self-test cases passed" % len(SELF_TEST_CASES))
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    ap.add_argument(
        "--root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: the checkout containing this "
        "script)",
    )
    ap.add_argument(
        "--self-test",
        action="store_true",
        help="run the embedded rule unit cases instead of linting",
    )
    args = ap.parse_args()

    if args.self_test:
        return self_test()

    if not os.path.isdir(os.path.join(args.root, "src")):
        print("no src/ under %s" % args.root, file=sys.stderr)
        return 2

    findings = lint_tree(args.root)
    for rel, ln, rule, message in findings:
        print("%s:%d: [%s] %s" % (rel, ln, rule, message))
    if findings:
        print(
            "\n%d determinism-lint finding(s); fix them or waive with "
            "'// lint:allow(<rule>): <reason>'" % len(findings),
            file=sys.stderr,
        )
        return 1
    print("determinism lint clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
