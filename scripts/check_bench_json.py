#!/usr/bin/env python3
"""Validate a machine-readable benchmark record (BENCH_*.json).

Dispatches on the record's "bench" id and checks it against a small
schema (required keys, types, and basic sanity: positive throughputs,
ordered percentiles, consistent speedups) so the tracked benchmark
trajectories cannot silently rot. Known ids:

  serve_throughput  emitted by bench/bench_serve_throughput; includes
                    the kernel-level record (blocked integer GEMM vs
                    the scalar reference kernel, GMAC/s, with an
                    enforced speedup floor) and the single-request 2D
                    partition latency record
  cold_start        emitted by bench/bench_cold_start
  decode            emitted by bench/bench_decode: static vs
                    continuous batching on a mixed-length request mix,
                    with an enforced floor on the continuous/static
                    steady-state decode throughput ratio and a
                    determinism cross-check (both modes must generate
                    identical token streams); also the paged-KV arena
                    record (capacity bytes per token, a zero floor on
                    steady-state KV re-gathers) and the shared-prefix
                    cache record (cold vs warm prefill work, with an
                    enforced floor on the prefill-token ratio, exactly
                    one insert, and cold == warm token streams)
  net               emitted by bench/bench_net: the TCP serving
                    frontend over loopback — first-token and per-token
                    latency percentiles (ordering enforced), streamed
                    throughput, typed OVERLOADED backpressure counts,
                    graceful-drain wall time with a zero floor on
                    dropped tokens, and the chaos phase's stream
                    checksums (every eventually-completed stream must
                    match the fault-free reference)
  cluster           emitted by bench/bench_cluster: the replica tier —
                    3-replica vs 1-replica throughput on the same
                    open-loop mix (enforced scaling floor), per-replica
                    request accounting (every replica must serve),
                    latency percentile ordering, and the cross-process
                    chaos phase (a SIGKILLed replica must be respawned,
                    at least one route must fail over, every completed
                    stream must match the fault-free reference, and
                    zero streams may be dropped)

Usage: check_bench_json.py path/to/BENCH_<name>.json
       check_bench_json.py --self-test
Exits 0 when valid, 1 with a message otherwise. --self-test feeds the
net checker known-good and deliberately-broken records and verifies
each verdict, so a schema rule cannot silently stop firing.
"""

import copy
import json
import sys

PHASE_SCHEMA = {
    "requests": int,
    "batches": int,
    "tokens": int,
    "wall_ms": float,
    "latency_ms": dict,
    "requests_per_s": float,
    "tokens_per_s": float,
    "macs_per_s": float,
}

LATENCY_KEYS = ("p50", "p95", "p99", "mean", "max")

SERVE_SCHEMA = {
    "bench": str,
    "model": str,
    "method": str,
    "threads": int,
    "tokens_per_request": int,
    "build_ms": float,
    "plan_ms": float,
    "ebw_bits": float,
    "macs_per_token": int,
    "kernel": dict,
    "single_request": dict,
    "single": dict,
    "batched": dict,
    "speedup": float,
}

KERNEL_SCHEMA = {
    "layer": str,
    "terms": int,
    "tokens": int,
    "reference_ms": float,
    "blocked_ms": float,
    "speedup": float,
    "gmacs_per_s": float,
    "kernel_path": str,
    "paths": dict,
    "simd_speedup": float,
}

KERNEL_PATHS = ("scalar", "sse2", "avx2", "neon")

SINGLE_REQUEST_SCHEMA = {
    "token_only_p50_ms": float,
    "tiled_2d_p50_ms": float,
    "speedup": float,
}

# Single-thread floor of the blocked integer kernel over the scalar
# oracle (the PR-2 serving kernel). Measured values since the SIMD
# dispatch landed are >= 6x on the full profile and >= 4.3x on the
# TinyLM smoke; the floor leaves margin for slow CI boxes but catches
# any regression back toward per-term scalar execution.
KERNEL_SPEEDUP_FLOOR = 3.0

# Floor of the hand-vectorized dispatch path over the forced-scalar
# blocked kernel (the PR-4 autovectorized loop), enforced only when an
# AVX2 path is active AND the measured layer is large enough for the
# timing to be signal rather than dispatch overhead (TinyLM smoke
# layers finish in microseconds). Typical measured values on a large
# layer are >= 2x; on any layer the selected path must at least not
# regress against scalar beyond noise.
SIMD_SPEEDUP_FLOOR = 1.5
SIMD_FLOOR_MIN_MACS = 1 << 20
SIMD_NO_REGRESSION = 0.85

DECODE_PHASE_SCHEMA = {
    "steps": int,
    "decode_steps": int,
    "mean_active": float,
    "wall_ms": float,
    "prefill_tokens_per_s": float,
    "decode_tokens_per_s": float,
    "generated_tokens_per_s": float,
    "token_checksum": int,
}

DECODE_SCHEMA = {
    "bench": str,
    "model": str,
    "method": str,
    "threads": int,
    "blocks": int,
    "heads": int,
    "kv_heads": int,
    "head_dim": int,
    "kv_bits": int,
    "kv_group": int,
    "kv_residual": int,
    "requests": int,
    "prompt_tokens": int,
    "generated_tokens": int,
    "kv_packed_bytes": int,
    "kv_fp_bytes": int,
    "kv_capacity_bytes": int,
    "kv_arena_peak_bytes": int,
    "kv_bytes_per_token": float,
    "kv_gather": dict,
    "prefix": dict,
    "static": dict,
    "continuous": dict,
    "speedup": float,
}

KV_GATHER_SCHEMA = {
    "first": int,
    "close": int,
    "grow": int,
    "steady": int,
}

PREFIX_SCHEMA = {
    "requests": int,
    "prefix_tokens": int,
    "cold": dict,
    "warm": dict,
    "prefill_speedup": float,
}

PREFIX_COLD_SCHEMA = {
    "prefill_tokens": int,
    "wall_ms": float,
    "prefill_tokens_per_s": float,
    "token_checksum": int,
}

PREFIX_WARM_SCHEMA = {
    "prefill_tokens": int,
    "wall_ms": float,
    "prefill_tokens_per_s": float,
    "token_checksum": int,
    "hits": int,
    "inserts": int,
    "adopted_tokens": int,
    "gather_steady": int,
}

# Steady-state decode throughput floor: iteration-level continuous
# batching vs static batching on the bench's mixed-length request mix.
# Typical measured values are ~1.5x on the TinyLM-decode smoke profile
# and ~1.9x on LLaMA2-7B; the floor leaves margin for noisy CI boxes
# but catches a scheduler regression back toward batch-level admission.
DECODE_SPEEDUP_FLOOR = 1.3

# Prefill-work floor for the shared-prefix phase: cold prefill tokens /
# warm prefill tokens. The ratio is a token count, not a timing, so it
# is exact on any box: with N requests sharing a P-token prefix the
# cold pass prefills N*(P+1) tokens and the warm pass P+1 + (N-1)
# (~16x on the bench mix). The floor only needs to catch the cache
# silently degrading to per-request prefills (ratio 1.0).
PREFIX_SPEEDUP_FLOOR = 2.0

NET_SCHEMA = {
    "bench": str,
    "model": str,
    "method": str,
    "threads": int,
    "io_workers": int,
    "clients": int,
    "requests": int,
    "max_new_tokens": int,
    "tokens_streamed": int,
    "tokens_per_s": float,
    "wall_ms": float,
    "stream_mismatches": int,
    "first_token_ms": dict,
    "per_token_ms": dict,
    "overload": dict,
    "drain": dict,
    "chaos": dict,
}

NET_OVERLOAD_SCHEMA = {
    "burst": int,
    "queue_limit": int,
    "served": int,
    "rejected_overloaded": int,
}

NET_DRAIN_SCHEMA = {
    "drain_ms": float,
    "dropped_tokens": int,
    "requests_served": int,
}

NET_CHAOS_SCHEMA = {
    "clients": int,
    "requests": int,
    "completed": int,
    "matched": int,
    "faults": int,
    "checksum_match": bool,
    "dropped_tokens": int,
}

# Graceful drain finishes in-flight TinyLM smoke streams in well under
# a second on any box; the ceiling only catches a drain that degraded
# into waiting out client timeouts.
NET_DRAIN_MS_CEILING = 30000.0

CLUSTER_SCHEMA = {
    "bench": str,
    "model": str,
    "method": str,
    "threads": int,
    "replicas": int,
    "requests": int,
    "max_new_tokens": int,
    "queue_per_replica": int,
    "batch_per_replica": int,
    "single": dict,
    "scaled": dict,
    "scaling": float,
    "first_token_ms": dict,
    "per_token_ms": dict,
    "failover": dict,
}

CLUSTER_PHASE_SCHEMA = {
    "requests": int,
    "completed": int,
    "wall_ms": float,
    "tokens_per_s": float,
    "client_retries": int,
}

CLUSTER_FAILOVER_SCHEMA = {
    "requests": int,
    "completed": int,
    "matched": int,
    "failovers": int,
    "kills": int,
    "respawns": int,
    "victim_respawned": bool,
    "checksum_match": bool,
    "dropped_streams": int,
}

# Throughput floor for 3 replicas over 1 on the bench's open-loop mix.
# The win is admission capacity, not CPU parallelism (CI boxes may have
# a single core): one shallow replica sheds the mix into backoff idle
# gaps, three absorb it. Measured values are well above 2x; the floor
# catches the controller quietly serializing onto one replica.
CLUSTER_SCALING_FLOOR = 2.0

COLD_START_SCHEMA = {
    "bench": str,
    "model": str,
    "method": str,
    "threads": int,
    "layers": int,
    "container_bytes": int,
    "ebw_bits": float,
    "quantize_ms": float,
    "load_ms": float,
    "speedup": float,
}


class CheckError(Exception):
    """A schema violation; main() turns it into exit code 1."""


def fail(msg):
    raise CheckError(msg)


def check_types(obj, schema, where):
    for key, want in schema.items():
        if key not in obj:
            fail(f"{where}: missing key '{key}'")
        got = obj[key]
        # ints are acceptable where floats are expected, not vice versa
        if want is float and isinstance(got, int):
            continue
        if not isinstance(got, want):
            fail(f"{where}.{key}: expected {want.__name__}, "
                 f"got {type(got).__name__}")


def check_phase(phase, where):
    check_types(phase, PHASE_SCHEMA, where)
    lat = phase["latency_ms"]
    for key in LATENCY_KEYS:
        if key not in lat:
            fail(f"{where}.latency_ms: missing '{key}'")
        if not isinstance(lat[key], (int, float)):
            fail(f"{where}.latency_ms.{key}: not a number")
    if not lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]:
        fail(f"{where}.latency_ms: percentiles not ordered")
    if phase["tokens_per_s"] <= 0:
        fail(f"{where}.tokens_per_s must be positive")
    if phase["requests"] <= 0 or phase["batches"] <= 0:
        fail(f"{where}: empty phase")
    if phase["batches"] > phase["requests"]:
        fail(f"{where}: more batches than requests")


def check_kernel(kernel):
    check_types(kernel, KERNEL_SCHEMA, "$.kernel")
    if kernel["terms"] <= 0 or kernel["tokens"] <= 0:
        fail("$.kernel: empty measurement")
    if kernel["reference_ms"] <= 0 or kernel["blocked_ms"] <= 0:
        fail("$.kernel: non-positive timings")
    want = kernel["reference_ms"] / kernel["blocked_ms"]
    if abs(kernel["speedup"] - want) > 0.01 * max(1.0, want):
        fail(f"$.kernel.speedup {kernel['speedup']} inconsistent with "
             f"timings ({want:.4f})")
    if kernel["gmacs_per_s"] <= 0:
        fail("$.kernel.gmacs_per_s must be positive")
    if kernel["speedup"] < KERNEL_SPEEDUP_FLOOR:
        fail(f"blocked kernel must be >= {KERNEL_SPEEDUP_FLOOR}x the "
             f"scalar reference kernel; got {kernel['speedup']:.2f}x "
             f"({kernel['blocked_ms']} ms vs {kernel['reference_ms']} ms)")

    paths = kernel["paths"]
    if kernel["kernel_path"] not in KERNEL_PATHS:
        fail(f"$.kernel.kernel_path '{kernel['kernel_path']}' unknown")
    if "scalar" not in paths:
        fail("$.kernel.paths: missing the scalar oracle timing")
    if kernel["kernel_path"] not in paths:
        fail(f"$.kernel.paths: missing the active path "
             f"'{kernel['kernel_path']}'")
    for name, ms in paths.items():
        if name not in KERNEL_PATHS:
            fail(f"$.kernel.paths: unknown path '{name}'")
        if not isinstance(ms, (int, float)) or ms <= 0:
            fail(f"$.kernel.paths.{name}: non-positive timing")
    want = paths["scalar"] / paths[kernel["kernel_path"]]
    if abs(kernel["simd_speedup"] - want) > 0.01 * max(1.0, want):
        fail(f"$.kernel.simd_speedup {kernel['simd_speedup']} "
             f"inconsistent with path timings ({want:.4f})")
    macs = kernel["terms"] * kernel["tokens"]
    if kernel["kernel_path"] == "avx2" and macs >= SIMD_FLOOR_MIN_MACS:
        if kernel["simd_speedup"] < SIMD_SPEEDUP_FLOOR:
            fail(f"avx2 kernel must be >= {SIMD_SPEEDUP_FLOOR}x the "
                 f"forced-scalar blocked kernel; got "
                 f"{kernel['simd_speedup']:.2f}x")
    elif kernel["simd_speedup"] < SIMD_NO_REGRESSION:
        fail(f"selected kernel path '{kernel['kernel_path']}' regressed "
             f"vs scalar: {kernel['simd_speedup']:.2f}x")


def check_single_request(sr):
    check_types(sr, SINGLE_REQUEST_SCHEMA, "$.single_request")
    if sr["token_only_p50_ms"] <= 0 or sr["tiled_2d_p50_ms"] <= 0:
        fail("$.single_request: non-positive latencies")
    want = sr["token_only_p50_ms"] / sr["tiled_2d_p50_ms"]
    if abs(sr["speedup"] - want) > 0.01 * max(1.0, want):
        fail(f"$.single_request.speedup {sr['speedup']} inconsistent "
             f"with latencies ({want:.4f})")
    # The 2D partition only wins with threads to fill; on any box it
    # must at least not regress the single-request path materially.
    if sr["speedup"] < 0.8:
        fail(f"2D partition regressed single-request latency: "
             f"{sr['speedup']:.2f}x")


def check_serve(doc):
    check_types(doc, SERVE_SCHEMA, "$")
    check_kernel(doc["kernel"])
    check_single_request(doc["single_request"])
    check_phase(doc["single"], "$.single")
    check_phase(doc["batched"], "$.batched")

    want = doc["batched"]["tokens_per_s"] / doc["single"]["tokens_per_s"]
    if abs(doc["speedup"] - want) > 0.01 * max(1.0, want):
        fail(f"speedup {doc['speedup']} inconsistent with phase "
             f"throughputs ({want:.4f})")
    if doc["batched"]["batches"] >= doc["single"]["batches"]:
        fail("batched phase did not coalesce requests")
    return (f"{doc['model']}, {doc['method']}, "
            f"batching {doc['speedup']:.2f}x, kernel "
            f"{doc['kernel']['speedup']:.2f}x "
            f"({doc['kernel']['gmacs_per_s']:.2f} GMAC/s, "
            f"{doc['kernel']['kernel_path']} "
            f"{doc['kernel']['simd_speedup']:.2f}x vs scalar) on "
            f"{doc['threads']} threads")


def check_cold_start(doc):
    check_types(doc, COLD_START_SCHEMA, "$")
    if doc["layers"] <= 0:
        fail("$.layers must be positive")
    if doc["container_bytes"] <= 0:
        fail("$.container_bytes must be positive")
    if doc["quantize_ms"] <= 0 or doc["load_ms"] <= 0:
        fail("$.quantize_ms / $.load_ms must be positive")
    if not 2.0 <= doc["ebw_bits"] <= 9.0:
        fail(f"$.ebw_bits {doc['ebw_bits']} outside the plausible range")
    want = doc["quantize_ms"] / doc["load_ms"]
    if abs(doc["speedup"] - want) > 0.01 * max(1.0, want):
        fail(f"speedup {doc['speedup']} inconsistent with timings "
             f"({want:.4f})")
    # The acceptance floor for the persistence path (typical measured
    # values are ~75x, so this has a wide margin for slow CI boxes).
    if doc["speedup"] < 5.0:
        fail(f"container load ({doc['load_ms']} ms) must be >= 5x faster "
             f"than re-quantizing ({doc['quantize_ms']} ms); got "
             f"{doc['speedup']:.2f}x")
    return (f"{doc['model']}, {doc['method']}, load {doc['load_ms']:.1f} ms "
            f"vs quantize {doc['quantize_ms']:.1f} ms "
            f"({doc['speedup']:.1f}x)")


def check_decode_phase(phase, where):
    check_types(phase, DECODE_PHASE_SCHEMA, where)
    if phase["steps"] <= 0 or phase["decode_steps"] <= 0:
        fail(f"{where}: empty phase")
    if phase["decode_steps"] > phase["steps"]:
        fail(f"{where}: more pure-decode steps than steps")
    if phase["mean_active"] < 1.0:
        fail(f"{where}.mean_active below one resident sequence")
    if phase["wall_ms"] <= 0:
        fail(f"{where}.wall_ms must be positive")
    for key in ("prefill_tokens_per_s", "decode_tokens_per_s",
                "generated_tokens_per_s"):
        if phase[key] <= 0:
            fail(f"{where}.{key} must be positive")


def check_kv_arena(doc):
    gather = doc["kv_gather"]
    check_types(gather, KV_GATHER_SCHEMA, "$.kv_gather")
    if gather["first"] <= 0:
        fail("$.kv_gather.first: no KV scratch was ever built")
    # The one invariant the persistent-scratch rework exists for: a
    # pure decode step between group closes never rebuilds its gather.
    if gather["steady"] != 0:
        fail(f"steady-state decode re-gathered the KV window "
             f"{gather['steady']} times; the persistent scratch must "
             f"make this exactly 0")
    if doc["kv_capacity_bytes"] < doc["kv_packed_bytes"] + doc["kv_fp_bytes"]:
        fail("$.kv_capacity_bytes smaller than the payload it holds")
    if doc["kv_arena_peak_bytes"] <= 0:
        fail("$.kv_arena_peak_bytes must be positive")
    total = doc["prompt_tokens"] + doc["generated_tokens"]
    want = doc["kv_capacity_bytes"] / total
    if abs(doc["kv_bytes_per_token"] - want) > 0.01 * max(1.0, want):
        fail(f"$.kv_bytes_per_token {doc['kv_bytes_per_token']} "
             f"inconsistent with capacity/total tokens ({want:.4f})")


def check_prefix(prefix):
    check_types(prefix, PREFIX_SCHEMA, "$.prefix")
    cold = prefix["cold"]
    warm = prefix["warm"]
    check_types(cold, PREFIX_COLD_SCHEMA, "$.prefix.cold")
    check_types(warm, PREFIX_WARM_SCHEMA, "$.prefix.warm")
    n = prefix["requests"]
    p = prefix["prefix_tokens"]
    if n <= 1 or p <= 0:
        fail("$.prefix: degenerate workload")
    # The cache may only move prefill work, never change tokens.
    if cold["token_checksum"] != warm["token_checksum"]:
        fail("prefix-cache hit changed the generated token streams "
             "(determinism violation)")
    # One-prefill guarantee, counted exactly: the claimer prefills the
    # whole prompt once, every other request only its tail token.
    if warm["inserts"] != 1:
        fail(f"$.prefix.warm.inserts: shared prefix was prefilled "
             f"{warm['inserts']} times, expected exactly 1")
    if warm["hits"] != n - 1:
        fail(f"$.prefix.warm.hits: {warm['hits']} of {n - 1} requests "
             f"hit the shared prefix")
    if warm["adopted_tokens"] != (n - 1) * p:
        fail(f"$.prefix.warm.adopted_tokens {warm['adopted_tokens']} != "
             f"hits * prefix_tokens ({(n - 1) * p})")
    if cold["prefill_tokens"] != n * (p + 1):
        fail(f"$.prefix.cold.prefill_tokens {cold['prefill_tokens']} != "
             f"requests * prompt ({n * (p + 1)})")
    if warm["gather_steady"] != 0:
        fail(f"$.prefix.warm.gather_steady: {warm['gather_steady']} "
             f"steady-state re-gathers on the warm pass, expected 0")
    want = cold["prefill_tokens"] / warm["prefill_tokens"]
    if abs(prefix["prefill_speedup"] - want) > 0.01 * max(1.0, want):
        fail(f"$.prefix.prefill_speedup {prefix['prefill_speedup']} "
             f"inconsistent with prefill token counts ({want:.4f})")
    if prefix["prefill_speedup"] < PREFIX_SPEEDUP_FLOOR:
        fail(f"prefix-cache hit must cut prefill work by >= "
             f"{PREFIX_SPEEDUP_FLOOR}x; got "
             f"{prefix['prefill_speedup']:.2f}x "
             f"({cold['prefill_tokens']} vs {warm['prefill_tokens']} "
             f"prefill tokens)")


def check_decode(doc):
    check_types(doc, DECODE_SCHEMA, "$")
    for key in ("blocks", "heads", "kv_heads", "head_dim", "requests",
                "prompt_tokens", "generated_tokens", "kv_packed_bytes"):
        if doc[key] <= 0:
            fail(f"$.{key} must be positive")
    if not 1 <= doc["kv_bits"] <= 8:
        fail(f"$.kv_bits {doc['kv_bits']} outside 1..8")
    check_decode_phase(doc["static"], "$.static")
    check_decode_phase(doc["continuous"], "$.continuous")
    check_kv_arena(doc)
    check_prefix(doc["prefix"])

    # The scheduler may only change when tokens are computed, never
    # their values: both modes must generate identical streams.
    if doc["static"]["token_checksum"] != doc["continuous"]["token_checksum"]:
        fail("static and continuous batching generated different token "
             "streams (determinism violation)")

    cont = doc["continuous"]
    stat = doc["static"]
    if cont["mean_active"] <= stat["mean_active"]:
        fail("continuous batching did not keep slots fuller than static")
    if cont["steps"] >= stat["steps"]:
        fail("continuous batching did not reduce scheduler steps")
    want = cont["decode_tokens_per_s"] / stat["decode_tokens_per_s"]
    if abs(doc["speedup"] - want) > 0.01 * max(1.0, want):
        fail(f"speedup {doc['speedup']} inconsistent with phase "
             f"decode throughputs ({want:.4f})")
    if doc["speedup"] < DECODE_SPEEDUP_FLOOR:
        fail(f"continuous batching must be >= {DECODE_SPEEDUP_FLOOR}x "
             f"static steady-state decode throughput; got "
             f"{doc['speedup']:.2f}x ({cont['decode_tokens_per_s']} vs "
             f"{stat['decode_tokens_per_s']} tok/s)")
    return (f"{doc['model']}, {doc['method']}, continuous/static "
            f"{doc['speedup']:.2f}x ({cont['decode_tokens_per_s']:.0f} vs "
            f"{stat['decode_tokens_per_s']:.0f} decode tok/s, mean active "
            f"{cont['mean_active']:.1f} vs {stat['mean_active']:.1f}), "
            f"prefix prefill {doc['prefix']['prefill_speedup']:.1f}x, "
            f"{doc['kv_bytes_per_token']:.0f} KV B/tok, 0 steady "
            f"re-gathers, on {doc['threads']} threads")


def check_net_latency(lat, where):
    for key in LATENCY_KEYS:
        if key not in lat:
            fail(f"{where}: missing '{key}'")
        if not isinstance(lat[key], (int, float)):
            fail(f"{where}.{key}: not a number")
    if not lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]:
        fail(f"{where}: percentiles not ordered")
    if lat["p50"] <= 0:
        fail(f"{where}.p50 must be positive")


def check_net(doc):
    check_types(doc, NET_SCHEMA, "$")
    for key in ("io_workers", "clients", "requests", "max_new_tokens",
                "tokens_streamed"):
        if doc[key] <= 0:
            fail(f"$.{key} must be positive")
    if doc["tokens_per_s"] <= 0 or doc["wall_ms"] <= 0:
        fail("$.tokens_per_s / $.wall_ms must be positive")
    # The network boundary may add latency, never entropy: every
    # fault-free stream must have matched the direct engine run.
    if doc["stream_mismatches"] != 0:
        fail(f"{doc['stream_mismatches']} streamed token streams "
             f"diverged from the direct engine run (determinism "
             f"violation at the network boundary)")
    check_net_latency(doc["first_token_ms"], "$.first_token_ms")
    check_net_latency(doc["per_token_ms"], "$.per_token_ms")

    over = doc["overload"]
    check_types(over, NET_OVERLOAD_SCHEMA, "$.overload")
    if over["burst"] <= over["queue_limit"]:
        fail("$.overload: burst does not exceed the queue limit")
    if over["served"] < 1:
        fail("$.overload.served: the loaded server served nothing")
    if over["rejected_overloaded"] < 1:
        fail("$.overload.rejected_overloaded: a burst past the queue "
             "limit produced no typed OVERLOADED rejection — "
             "backpressure did not engage")
    if over["served"] + over["rejected_overloaded"] != over["burst"]:
        fail(f"$.overload: served ({over['served']}) + rejected "
             f"({over['rejected_overloaded']}) != burst "
             f"({over['burst']}); requests went unaccounted")

    drain = doc["drain"]
    check_types(drain, NET_DRAIN_SCHEMA, "$.drain")
    if drain["drain_ms"] < 0:
        fail("$.drain.drain_ms: no drain was recorded")
    if drain["drain_ms"] > NET_DRAIN_MS_CEILING:
        fail(f"$.drain.drain_ms {drain['drain_ms']} exceeds the "
             f"{NET_DRAIN_MS_CEILING} ms ceiling")
    if drain["dropped_tokens"] != 0:
        fail(f"graceful drain dropped {drain['dropped_tokens']} "
             f"queued tokens; the zero-drop guarantee is the point "
             f"of draining")

    chaos = doc["chaos"]
    check_types(chaos, NET_CHAOS_SCHEMA, "$.chaos")
    if chaos["completed"] < 1:
        fail("$.chaos.completed: no stream survived the fault "
             "schedule — the retry path is broken or the schedule "
             "is too hostile to measure anything")
    if chaos["matched"] != chaos["completed"]:
        fail(f"$.chaos: {chaos['completed'] - chaos['matched']} "
             f"completed streams did not match the fault-free "
             f"reference (checksum mismatch under faults)")
    if chaos["checksum_match"] is not True:
        fail("$.chaos.checksum_match must be true")
    if chaos["dropped_tokens"] != 0:
        fail(f"$.chaos.dropped_tokens: the post-chaos drain dropped "
             f"{chaos['dropped_tokens']} tokens")
    return (f"{doc['model']}, {doc['method']}, "
            f"{doc['tokens_per_s']:.0f} streamed tok/s, first-token "
            f"p50/p99 {doc['first_token_ms']['p50']:.2f}/"
            f"{doc['first_token_ms']['p99']:.2f} ms, "
            f"{over['rejected_overloaded']} typed rejections, drain "
            f"{drain['drain_ms']:.1f} ms with 0 drops, chaos "
            f"{chaos['completed']}/{chaos['requests']} completed all "
            f"byte-identical")


def check_cluster_phase(phase, where):
    check_types(phase, CLUSTER_PHASE_SCHEMA, where)
    if phase["requests"] <= 0:
        fail(f"{where}.requests must be positive")
    if phase["completed"] != phase["requests"]:
        fail(f"{where}: only {phase['completed']} of "
             f"{phase['requests']} requests completed — the mix must "
             f"finish everywhere, slowly on one replica, quickly on "
             f"three")
    if phase["wall_ms"] <= 0 or phase["tokens_per_s"] <= 0:
        fail(f"{where}: non-positive wall_ms / tokens_per_s")


def check_cluster(doc):
    check_types(doc, CLUSTER_SCHEMA, "$")
    if doc["replicas"] < 2:
        fail("$.replicas: a cluster record needs at least 2 replicas")
    for key in ("requests", "max_new_tokens", "queue_per_replica",
                "batch_per_replica"):
        if doc[key] <= 0:
            fail(f"$.{key} must be positive")
    check_cluster_phase(doc["single"], "$.single")
    check_cluster_phase(doc["scaled"], "$.scaled")
    check_net_latency(doc["first_token_ms"], "$.first_token_ms")
    check_net_latency(doc["per_token_ms"], "$.per_token_ms")

    want = doc["scaled"]["tokens_per_s"] / doc["single"]["tokens_per_s"]
    if abs(doc["scaling"] - want) > 0.01 * max(1.0, want):
        fail(f"$.scaling {doc['scaling']} inconsistent with phase "
             f"throughputs ({want:.4f})")
    if doc["scaling"] < CLUSTER_SCALING_FLOOR:
        fail(f"{doc['replicas']}-replica throughput must be >= "
             f"{CLUSTER_SCALING_FLOOR}x single-replica on the loadgen "
             f"mix; got {doc['scaling']:.2f}x "
             f"({doc['scaled']['tokens_per_s']:.0f} vs "
             f"{doc['single']['tokens_per_s']:.0f} tok/s)")

    served = doc["scaled"].get("per_replica_served")
    if not isinstance(served, list) or len(served) != doc["replicas"]:
        fail("$.scaled.per_replica_served must list every replica")
    for i, n in enumerate(served):
        if not isinstance(n, int) or n < 1:
            fail(f"$.scaled.per_replica_served[{i}]: replica served "
                 f"nothing — routing collapsed onto a subset")
    if sum(served) != doc["scaled"]["completed"]:
        fail(f"$.scaled.per_replica_served sums to {sum(served)}, "
             f"not the {doc['scaled']['completed']} completed "
             f"requests; requests went unaccounted")

    fo = doc["failover"]
    check_types(fo, CLUSTER_FAILOVER_SCHEMA, "$.failover")
    if fo["completed"] != fo["requests"]:
        fail(f"$.failover: only {fo['completed']} of {fo['requests']} "
             f"chaos streams completed")
    if fo["matched"] != fo["completed"]:
        fail(f"$.failover: {fo['completed'] - fo['matched']} completed "
             f"streams did not match the fault-free reference "
             f"(failover replay broke byte identity)")
    if fo["checksum_match"] is not True:
        fail("$.failover.checksum_match must be true")
    if fo["kills"] < 1:
        fail("$.failover.kills: the chaos phase never killed a replica")
    if fo["failovers"] < 1:
        fail("$.failover.failovers: the kill moved no route — the "
             "chaos phase proved nothing")
    if fo["respawns"] < 1 or fo["victim_respawned"] is not True:
        fail("$.failover: the supervisor never respawned the victim")
    if fo["dropped_streams"] != 0:
        fail(f"$.failover.dropped_streams: {fo['dropped_streams']} "
             f"streams ended with neither Done nor a typed Error")
    return (f"{doc['model']}, {doc['method']}, {doc['replicas']} "
            f"replicas {doc['scaling']:.2f}x single "
            f"({doc['scaled']['tokens_per_s']:.0f} vs "
            f"{doc['single']['tokens_per_s']:.0f} tok/s), chaos "
            f"{fo['failovers']} failovers / {fo['kills']} kills / "
            f"{fo['respawns']} respawns, "
            f"{fo['matched']}/{fo['requests']} byte-identical, "
            f"0 dropped streams")


CHECKERS = {
    "serve_throughput": check_serve,
    "cold_start": check_cold_start,
    "decode": check_decode,
    "net": check_net,
    "cluster": check_cluster,
}


def valid_net_doc():
    return {
        "bench": "net", "model": "TinyLM-decode",
        "method": "MicroScopiQ-W2", "threads": 1, "io_workers": 2,
        "clients": 4, "requests": 4, "max_new_tokens": 16,
        "tokens_streamed": 256, "tokens_per_s": 20000.0,
        "wall_ms": 12.0, "stream_mismatches": 0,
        "first_token_ms": {"p50": 0.5, "p95": 1.5, "p99": 1.6,
                           "mean": 0.7, "max": 1.7},
        "per_token_ms": {"p50": 0.1, "p95": 0.14, "p99": 0.15,
                         "mean": 0.11, "max": 0.15},
        "overload": {"burst": 12, "queue_limit": 1, "served": 1,
                     "rejected_overloaded": 11},
        "drain": {"drain_ms": 0.5, "dropped_tokens": 0,
                  "requests_served": 18},
        "chaos": {"clients": 4, "requests": 16, "completed": 16,
                  "matched": 16, "faults": 16, "checksum_match": True,
                  "dropped_tokens": 0},
    }


def valid_cluster_doc():
    return {
        "bench": "cluster", "model": "TinyLM-decode",
        "method": "MicroScopiQ-W2", "threads": 1, "replicas": 3,
        "requests": 24, "max_new_tokens": 16, "queue_per_replica": 2,
        "batch_per_replica": 2,
        "single": {"requests": 24, "completed": 24, "wall_ms": 3000.0,
                   "tokens_per_s": 128.0, "client_retries": 40},
        "scaled": {"requests": 24, "completed": 24, "wall_ms": 900.0,
                   "tokens_per_s": 426.7, "client_retries": 2,
                   "per_replica_served": [9, 8, 7]},
        "scaling": 3.33,
        "first_token_ms": {"p50": 4.0, "p95": 11.0, "p99": 14.0,
                           "mean": 5.5, "max": 15.0},
        "per_token_ms": {"p50": 0.8, "p95": 2.0, "p99": 2.4,
                         "mean": 1.0, "max": 2.5},
        "failover": {"requests": 16, "completed": 16, "matched": 16,
                     "failovers": 3, "kills": 1, "respawns": 1,
                     "victim_respawned": True, "checksum_match": True,
                     "dropped_streams": 0},
    }


def set_in(doc, path, value):
    """Set the dotted `path` inside `doc` to `value`; returns `doc`."""
    node = doc
    keys = path.split(".")
    for key in keys[:-1]:
        node = node[key]
    node[keys[-1]] = value
    return doc


def break_doc(path, value):
    """Return a valid net doc with the dotted `path` set to `value`."""
    return set_in(valid_net_doc(), path, value)


def self_test():
    # The known-good record must pass.
    try:
        check_net(copy.deepcopy(valid_net_doc()))
    except CheckError as e:
        fail(f"self-test: valid net record rejected: {e}")

    # Every broken record must be caught, with the right rule firing.
    negatives = [
        ("stream_mismatches", 2, "determinism violation"),
        ("first_token_ms.p95", 99.0, "percentiles not ordered"),
        ("per_token_ms.p50", 0.2, "percentiles not ordered"),
        ("first_token_ms.p50", 0, "must be positive"),
        ("overload.rejected_overloaded", 0, "backpressure"),
        ("overload.served", 0, "served nothing"),
        ("overload.burst", 1, "queue limit"),
        ("overload.rejected_overloaded", 7, "unaccounted"),
        ("drain.dropped_tokens", 3, "zero-drop"),
        ("drain.drain_ms", -1.0, "no drain was recorded"),
        ("drain.drain_ms", 99999.0, "ceiling"),
        ("chaos.completed", 0, "no stream survived"),
        ("chaos.matched", 15, "checksum mismatch"),
        ("chaos.checksum_match", False, "checksum_match"),
        ("chaos.dropped_tokens", 1, "post-chaos drain"),
        ("tokens_streamed", 0, "must be positive"),
        ("tokens_per_s", "fast", "expected float"),
    ]
    for path, value, expect in negatives:
        try:
            check_net(break_doc(path, value))
        except CheckError as e:
            if expect not in str(e):
                fail(f"self-test: breaking '{path}' fired the wrong "
                     f"rule: {e}")
            continue
        fail(f"self-test: breaking '{path}' went undetected")

    # Missing-key detection, one representative per nesting level.
    for path in ("chaos", "overload.burst", "first_token_ms.p99"):
        doc = valid_net_doc()
        node = doc
        keys = path.split(".")
        for key in keys[:-1]:
            node = node[key]
        del node[keys[-1]]
        try:
            check_net(doc)
        except CheckError:
            continue
        fail(f"self-test: deleting '{path}' went undetected")

    # The cluster checker: known-good record, then every gate in turn.
    try:
        check_cluster(copy.deepcopy(valid_cluster_doc()))
    except CheckError as e:
        fail(f"self-test: valid cluster record rejected: {e}")
    cluster_negatives = [
        ("scaling", 1.2, "inconsistent"),
        ("scaled.tokens_per_s", 180.0, "inconsistent"),
        ("single.completed", 20, "must finish everywhere"),
        ("scaled.completed", 23, "must finish everywhere"),
        ("scaled.per_replica_served", [24, 0, 0], "served nothing"),
        ("scaled.per_replica_served", [9, 8], "every replica"),
        ("scaled.per_replica_served", [9, 9, 9], "unaccounted"),
        ("first_token_ms.p95", 99.0, "percentiles not ordered"),
        ("per_token_ms.p50", 0, "must be positive"),
        ("failover.completed", 15, "chaos streams completed"),
        ("failover.matched", 15, "byte identity"),
        ("failover.checksum_match", False, "checksum_match"),
        ("failover.failovers", 0, "moved no route"),
        ("failover.kills", 0, "never killed"),
        ("failover.respawns", 0, "never respawned"),
        ("failover.victim_respawned", False, "never respawned"),
        ("failover.dropped_streams", 2, "neither Done nor"),
        ("replicas", 1, "at least 2"),
    ]
    for path, value, expect in cluster_negatives:
        try:
            check_cluster(set_in(valid_cluster_doc(), path, value))
        except CheckError as e:
            if expect not in str(e):
                fail(f"self-test: breaking cluster '{path}' fired the "
                     f"wrong rule: {e}")
            continue
        fail(f"self-test: breaking cluster '{path}' went undetected")
    # A scaling value below the floor (kept consistent with the phase
    # throughputs so the floor rule itself is what fires).
    low = valid_cluster_doc()
    set_in(low, "scaled.tokens_per_s", 160.0)
    set_in(low, "scaling", 1.25)
    try:
        check_cluster(low)
        fail("self-test: sub-floor cluster scaling went undetected")
    except CheckError as e:
        if "must be >=" not in str(e):
            fail(f"self-test: sub-floor scaling fired the wrong "
                 f"rule: {e}")
    # Missing-key detection inside the cluster record.
    for path in ("failover", "scaled.per_replica_served",
                 "single.tokens_per_s"):
        doc = valid_cluster_doc()
        node = doc
        keys = path.split(".")
        for key in keys[:-1]:
            node = node[key]
        del node[keys[-1]]
        try:
            check_cluster(doc)
        except CheckError:
            continue
        fail(f"self-test: deleting cluster '{path}' went undetected")
    print(f"check_bench_json: OK (self-test: "
          f"{len(negatives) + len(cluster_negatives) + 7} broken "
          f"records all caught)")


def main():
    if len(sys.argv) == 2 and sys.argv[1] == "--self-test":
        self_test()
        return
    if len(sys.argv) != 2:
        fail("usage: check_bench_json.py BENCH_<name>.json | --self-test")
    try:
        with open(sys.argv[1]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(str(e))

    if not isinstance(doc, dict) or "bench" not in doc:
        fail("record carries no 'bench' id")
    checker = CHECKERS.get(doc["bench"])
    if checker is None:
        fail(f"unexpected bench id '{doc['bench']}'")
    summary = checker(doc)
    print(f"check_bench_json: OK ({sys.argv[1]}: {summary})")


if __name__ == "__main__":
    try:
        main()
    except CheckError as e:
        print(f"check_bench_json: FAIL: {e}", file=sys.stderr)
        sys.exit(1)
