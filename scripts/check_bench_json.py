#!/usr/bin/env python3
"""Validate a BENCH_serve.json emitted by bench_serve_throughput.

Checks the machine-readable benchmark record against a small schema
(required keys, types, and basic sanity: positive throughputs, ordered
percentiles) so the tracked benchmark trajectory cannot silently rot.

Usage: check_bench_json.py path/to/BENCH_serve.json
Exits 0 when valid, 1 with a message otherwise.
"""

import json
import sys

PHASE_SCHEMA = {
    "requests": int,
    "batches": int,
    "tokens": int,
    "wall_ms": float,
    "latency_ms": dict,
    "requests_per_s": float,
    "tokens_per_s": float,
    "macs_per_s": float,
}

LATENCY_KEYS = ("p50", "p95", "p99", "mean", "max")

TOP_SCHEMA = {
    "bench": str,
    "model": str,
    "method": str,
    "threads": int,
    "tokens_per_request": int,
    "build_ms": float,
    "ebw_bits": float,
    "macs_per_token": int,
    "single": dict,
    "batched": dict,
    "speedup": float,
}


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_types(obj, schema, where):
    for key, want in schema.items():
        if key not in obj:
            fail(f"{where}: missing key '{key}'")
        got = obj[key]
        # ints are acceptable where floats are expected, not vice versa
        if want is float and isinstance(got, int):
            continue
        if not isinstance(got, want):
            fail(f"{where}.{key}: expected {want.__name__}, "
                 f"got {type(got).__name__}")


def check_phase(phase, where):
    check_types(phase, PHASE_SCHEMA, where)
    lat = phase["latency_ms"]
    for key in LATENCY_KEYS:
        if key not in lat:
            fail(f"{where}.latency_ms: missing '{key}'")
        if not isinstance(lat[key], (int, float)):
            fail(f"{where}.latency_ms.{key}: not a number")
    if not lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]:
        fail(f"{where}.latency_ms: percentiles not ordered")
    if phase["tokens_per_s"] <= 0:
        fail(f"{where}.tokens_per_s must be positive")
    if phase["requests"] <= 0 or phase["batches"] <= 0:
        fail(f"{where}: empty phase")
    if phase["batches"] > phase["requests"]:
        fail(f"{where}: more batches than requests")


def main():
    if len(sys.argv) != 2:
        fail("usage: check_bench_json.py BENCH_serve.json")
    try:
        with open(sys.argv[1]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(str(e))

    check_types(doc, TOP_SCHEMA, "$")
    if doc["bench"] != "serve_throughput":
        fail(f"unexpected bench id '{doc['bench']}'")
    check_phase(doc["single"], "$.single")
    check_phase(doc["batched"], "$.batched")

    want = doc["batched"]["tokens_per_s"] / doc["single"]["tokens_per_s"]
    if abs(doc["speedup"] - want) > 0.01 * max(1.0, want):
        fail(f"speedup {doc['speedup']} inconsistent with phase "
             f"throughputs ({want:.4f})")
    if doc["batched"]["batches"] >= doc["single"]["batches"]:
        fail("batched phase did not coalesce requests")

    print(f"check_bench_json: OK ({sys.argv[1]}: "
          f"{doc['model']}, {doc['method']}, "
          f"speedup {doc['speedup']:.2f}x on {doc['threads']} threads)")


if __name__ == "__main__":
    main()
