#!/usr/bin/env python3
"""Validate a machine-readable benchmark record (BENCH_*.json).

Dispatches on the record's "bench" id and checks it against a small
schema (required keys, types, and basic sanity: positive throughputs,
ordered percentiles, consistent speedups) so the tracked benchmark
trajectories cannot silently rot. Known ids:

  serve_throughput  emitted by bench/bench_serve_throughput
  cold_start        emitted by bench/bench_cold_start

Usage: check_bench_json.py path/to/BENCH_<name>.json
Exits 0 when valid, 1 with a message otherwise.
"""

import json
import sys

PHASE_SCHEMA = {
    "requests": int,
    "batches": int,
    "tokens": int,
    "wall_ms": float,
    "latency_ms": dict,
    "requests_per_s": float,
    "tokens_per_s": float,
    "macs_per_s": float,
}

LATENCY_KEYS = ("p50", "p95", "p99", "mean", "max")

SERVE_SCHEMA = {
    "bench": str,
    "model": str,
    "method": str,
    "threads": int,
    "tokens_per_request": int,
    "build_ms": float,
    "ebw_bits": float,
    "macs_per_token": int,
    "single": dict,
    "batched": dict,
    "speedup": float,
}

COLD_START_SCHEMA = {
    "bench": str,
    "model": str,
    "method": str,
    "threads": int,
    "layers": int,
    "container_bytes": int,
    "ebw_bits": float,
    "quantize_ms": float,
    "load_ms": float,
    "speedup": float,
}


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_types(obj, schema, where):
    for key, want in schema.items():
        if key not in obj:
            fail(f"{where}: missing key '{key}'")
        got = obj[key]
        # ints are acceptable where floats are expected, not vice versa
        if want is float and isinstance(got, int):
            continue
        if not isinstance(got, want):
            fail(f"{where}.{key}: expected {want.__name__}, "
                 f"got {type(got).__name__}")


def check_phase(phase, where):
    check_types(phase, PHASE_SCHEMA, where)
    lat = phase["latency_ms"]
    for key in LATENCY_KEYS:
        if key not in lat:
            fail(f"{where}.latency_ms: missing '{key}'")
        if not isinstance(lat[key], (int, float)):
            fail(f"{where}.latency_ms.{key}: not a number")
    if not lat["p50"] <= lat["p95"] <= lat["p99"] <= lat["max"]:
        fail(f"{where}.latency_ms: percentiles not ordered")
    if phase["tokens_per_s"] <= 0:
        fail(f"{where}.tokens_per_s must be positive")
    if phase["requests"] <= 0 or phase["batches"] <= 0:
        fail(f"{where}: empty phase")
    if phase["batches"] > phase["requests"]:
        fail(f"{where}: more batches than requests")


def check_serve(doc):
    check_types(doc, SERVE_SCHEMA, "$")
    check_phase(doc["single"], "$.single")
    check_phase(doc["batched"], "$.batched")

    want = doc["batched"]["tokens_per_s"] / doc["single"]["tokens_per_s"]
    if abs(doc["speedup"] - want) > 0.01 * max(1.0, want):
        fail(f"speedup {doc['speedup']} inconsistent with phase "
             f"throughputs ({want:.4f})")
    if doc["batched"]["batches"] >= doc["single"]["batches"]:
        fail("batched phase did not coalesce requests")
    return (f"{doc['model']}, {doc['method']}, "
            f"speedup {doc['speedup']:.2f}x on {doc['threads']} threads")


def check_cold_start(doc):
    check_types(doc, COLD_START_SCHEMA, "$")
    if doc["layers"] <= 0:
        fail("$.layers must be positive")
    if doc["container_bytes"] <= 0:
        fail("$.container_bytes must be positive")
    if doc["quantize_ms"] <= 0 or doc["load_ms"] <= 0:
        fail("$.quantize_ms / $.load_ms must be positive")
    if not 2.0 <= doc["ebw_bits"] <= 9.0:
        fail(f"$.ebw_bits {doc['ebw_bits']} outside the plausible range")
    want = doc["quantize_ms"] / doc["load_ms"]
    if abs(doc["speedup"] - want) > 0.01 * max(1.0, want):
        fail(f"speedup {doc['speedup']} inconsistent with timings "
             f"({want:.4f})")
    # The acceptance floor for the persistence path (typical measured
    # values are ~75x, so this has a wide margin for slow CI boxes).
    if doc["speedup"] < 5.0:
        fail(f"container load ({doc['load_ms']} ms) must be >= 5x faster "
             f"than re-quantizing ({doc['quantize_ms']} ms); got "
             f"{doc['speedup']:.2f}x")
    return (f"{doc['model']}, {doc['method']}, load {doc['load_ms']:.1f} ms "
            f"vs quantize {doc['quantize_ms']:.1f} ms "
            f"({doc['speedup']:.1f}x)")


CHECKERS = {
    "serve_throughput": check_serve,
    "cold_start": check_cold_start,
}


def main():
    if len(sys.argv) != 2:
        fail("usage: check_bench_json.py BENCH_<name>.json")
    try:
        with open(sys.argv[1]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(str(e))

    if not isinstance(doc, dict) or "bench" not in doc:
        fail("record carries no 'bench' id")
    checker = CHECKERS.get(doc["bench"])
    if checker is None:
        fail(f"unexpected bench id '{doc['bench']}'")
    summary = checker(doc)
    print(f"check_bench_json: OK ({sys.argv[1]}: {summary})")


if __name__ == "__main__":
    main()
