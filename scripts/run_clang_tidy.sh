#!/usr/bin/env sh
# Run clang-tidy (checks from the committed .clang-tidy) over every
# first-party translation unit, driven by the compile_commands.json
# that CMake always exports (CMAKE_EXPORT_COMPILE_COMMANDS is ON).
#
# Usage: scripts/run_clang_tidy.sh [build-dir]
#
#   build-dir   directory containing compile_commands.json
#               (default: build)
#
# Exit status: 0 clean or tool unavailable (see below), 1 findings,
# 2 missing compile database.
#
# When clang-tidy is not installed (the pinned toolchain lives in the
# tidy+lint CI job; local boxes may only have gcc) the script degrades
# to a loud no-op success so `ctest` runs stay green locally while CI
# still enforces the profile.

set -u

build_dir="${1:-build}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy" >/dev/null 2>&1; then
    echo "run_clang_tidy: '$tidy' not found; skipping (install" \
         "clang-tidy or set CLANG_TIDY to enforce locally)" >&2
    exit 0
fi

db="$build_dir/compile_commands.json"
if [ ! -f "$db" ]; then
    echo "run_clang_tidy: $db not found; configure first:" \
         "cmake -B $build_dir -S $repo_root" >&2
    exit 2
fi

# First-party TUs only: the compile database also lists test and bench
# executables, which are fair game, but third-party sources (none are
# vendored today) would be excluded here.
files=$(find "$repo_root/src" "$repo_root/tests" "$repo_root/bench" \
             "$repo_root/examples" -name '*.cc' 2>/dev/null | sort)

status=0
for f in $files; do
    "$tidy" -p "$build_dir" --quiet "$f" || status=1
done

if [ "$status" -ne 0 ]; then
    echo "run_clang_tidy: findings above; profile is .clang-tidy" >&2
fi
exit $status
