/**
 * @file
 * Deterministic fault injection for the serving transport: a seeded
 * decision stream that tells the client transport (and the chaos
 * tests) when to refuse a connect, sever or truncate a send, delay, or
 * sever a receive.
 *
 * Determinism is the point: every decision comes from one `Rng`
 * (common/rng.h) advanced once per hook call, so the same seed and the
 * same call sequence reproduce the same fault schedule — the chaos
 * harness replays a failure bit-for-bit from its seed alone. The
 * injector holds no clock and no global state.
 */

#ifndef MSQ_NET_FAULT_H
#define MSQ_NET_FAULT_H

#include <cstddef>
#include <cstdint>

#include "common/rng.h"

namespace msq {

/** Per-hook fault probabilities. All zero = transparent. */
struct FaultConfig
{
    uint64_t seed = 1;

    double connectFailProb = 0.0;  ///< refuse a connect outright
    double sendSeverProb = 0.0;    ///< drop the connection before a send
    double sendTruncateProb = 0.0; ///< send a prefix, then drop
    double recvSeverProb = 0.0;    ///< drop the connection before a recv
    double delayProb = 0.0;        ///< stall a send/recv briefly

    uint32_t maxDelayMs = 5;       ///< delay upper bound (exclusive +1)
};

/** What a hook decided. */
enum class FaultAction
{
    Pass,     ///< no fault; proceed normally
    Sever,    ///< close the connection now
    Truncate, ///< send only `keepBytes`, then close
    Delay,    ///< sleep `delayMs`, then proceed
};

/** One decision (action + its parameters). */
struct FaultDecision
{
    FaultAction action = FaultAction::Pass;
    size_t keepBytes = 0;  ///< Truncate: prefix length to let through
    uint32_t delayMs = 0;  ///< Delay: stall duration
};

/**
 * Seeded fault decision stream. Not thread-safe: each client (or test
 * actor) owns its own injector so the decision sequence stays a pure
 * function of the seed.
 */
class FaultInjector
{
  public:
    explicit FaultInjector(const FaultConfig &config)
        : config_(config), rng_(config.seed) {}

    /** Decide a connect attempt; false = refuse (caller sees a failed
     *  connect). */
    bool onConnect();

    /** Decide a send of `bytes` bytes. */
    FaultDecision onSend(size_t bytes);

    /** Decide a receive attempt (Sever or Delay only). */
    FaultDecision onRecv();

    /** Hook calls so far (tests pin schedules by position). */
    size_t decisions() const { return decisions_; }

    /** Faults issued so far (anything but Pass). */
    size_t faults() const { return faults_; }

  private:
    FaultConfig config_;
    Rng rng_;
    size_t decisions_ = 0;
    size_t faults_ = 0;
};

} // namespace msq

#endif // MSQ_NET_FAULT_H
