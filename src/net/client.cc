#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include <poll.h>

#include "net/socket.h"
#include "serve/clock.h"

namespace msq {

namespace {

void
faultSleep(uint32_t ms)
{
    if (ms > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

} // namespace

NetCode
NetClient::attempt(const std::vector<uint8_t> &wire, uint64_t reqId,
                   GenerateResult &out, uint64_t epochNanos)
{
    if (faults_ != nullptr && !faults_->onConnect())
        return NetCode::ConnectionLost;
    Socket sock = tcpConnect(config_.port);
    if (!sock.valid())
        return NetCode::ConnectionLost;

    // Send the request, fault hooks first: a severed or truncated send
    // models a client dying mid-request; the server must shrug it off.
    if (faults_ != nullptr) {
        const FaultDecision d = faults_->onSend(wire.size());
        switch (d.action) {
          case FaultAction::Sever:
            return NetCode::ConnectionLost;
          case FaultAction::Truncate:
            sendFully(sock.fd(), wire.data(), d.keepBytes);
            return NetCode::ConnectionLost;
          case FaultAction::Delay:
            faultSleep(d.delayMs);
            break;
          case FaultAction::Pass:
            break;
        }
    }
    if (!sendFully(sock.fd(), wire.data(), wire.size()))
        return NetCode::ConnectionLost;

    // Consume the stream: Token frames in index order, then Done (or a
    // terminal Error). Any protocol violation is terminal — the stream
    // cannot be trusted past it.
    FrameDecoder decoder;
    std::vector<uint32_t> tokens;
    uint8_t buf[4096];
    for (;;) {
        Frame frame;
        const NetCode code = decoder.next(frame);
        if (code == NetCode::NeedMore) {
            if (faults_ != nullptr) {
                const FaultDecision d = faults_->onRecv();
                if (d.action == FaultAction::Sever)
                    return NetCode::ConnectionLost;
                if (d.action == FaultAction::Delay)
                    faultSleep(d.delayMs);
            }
            pollfd pfd;
            pfd.fd = sock.fd();
            pfd.events = POLLIN;
            pfd.revents = 0;
            const int rc =
                ::poll(&pfd, 1, static_cast<int>(config_.recvTimeoutMs));
            if (rc == 0)
                return NetCode::Timeout;
            if (rc < 0 && errno == EINTR)
                continue;
            if (rc < 0)
                return NetCode::ConnectionLost;
            size_t got = 0;
            const IoWait w = recvSome(sock.fd(), buf, sizeof(buf), got);
            if (w == IoWait::Again)
                continue;
            if (w != IoWait::Ready)
                return NetCode::ConnectionLost;
            decoder.feed(buf, got);
            continue;
        }
        if (code != NetCode::Ok)
            return code; // sticky decode error: terminal
        if (frame.requestId != reqId)
            return NetCode::BadPayload;
        switch (frame.type) {
          case FrameType::Token: {
            TokenMsg tm;
            if (decodeTokenMsg(frame.payload, tm) != NetCode::Ok)
                return NetCode::BadPayload;
            if (tm.index != tokens.size())
                return NetCode::BadPayload; // out-of-order stream
            tokens.push_back(tm.token);
            if (out.firstTokenMs < 0.0 && tokens.size() == 1)
                out.firstTokenMs = elapsedMs(epochNanos);
            break;
          }
          case FrameType::Done: {
            DoneMsg dm;
            if (decodeDoneMsg(frame.payload, dm) != NetCode::Ok)
                return NetCode::BadPayload;
            if (dm.tokenCount != tokens.size() ||
                dm.streamFold !=
                    tokenStreamFold(tokens.data(), tokens.size()))
                return NetCode::BadPayload; // integrity mismatch
            out.tokens = std::move(tokens);
            out.streamFold = dm.streamFold;
            return NetCode::Ok;
          }
          case FrameType::Error: {
            ErrorMsg em;
            if (decodeErrorMsg(frame.payload, em) != NetCode::Ok)
                return NetCode::BadPayload;
            out.serverError = em.code;
            return NetCode::Rejected;
          }
          default:
            return NetCode::BadPayload; // client-bound frames only
        }
    }
}

NetCode
NetClient::queryStats(StatsMsg &out)
{
    const uint64_t reqId = nextReqId_++;
    ++stats_.attempts;
    Socket sock = tcpConnect(config_.port);
    if (!sock.valid()) {
        ++stats_.connectionsLost;
        return NetCode::ConnectionLost;
    }
    const std::vector<uint8_t> wire = encodeStatsQueryFrame(reqId);
    if (!sendFully(sock.fd(), wire.data(), wire.size())) {
        ++stats_.connectionsLost;
        return NetCode::ConnectionLost;
    }
    FrameDecoder decoder;
    uint8_t buf[512];
    for (;;) {
        Frame frame;
        const NetCode code = decoder.next(frame);
        if (code == NetCode::NeedMore) {
            pollfd pfd;
            pfd.fd = sock.fd();
            pfd.events = POLLIN;
            pfd.revents = 0;
            const int rc =
                ::poll(&pfd, 1, static_cast<int>(config_.recvTimeoutMs));
            if (rc == 0) {
                ++stats_.timeouts;
                return NetCode::Timeout;
            }
            if (rc < 0 && errno == EINTR)
                continue;
            size_t got = 0;
            const IoWait w = recvSome(sock.fd(), buf, sizeof(buf), got);
            if (w == IoWait::Again)
                continue;
            if (w != IoWait::Ready) {
                ++stats_.connectionsLost;
                return NetCode::ConnectionLost;
            }
            decoder.feed(buf, got);
            continue;
        }
        if (code != NetCode::Ok)
            return code;
        if (frame.type != FrameType::Stats || frame.requestId != reqId)
            return NetCode::BadPayload;
        return decodeStatsMsg(frame.payload, out);
    }
}

GenerateResult
NetClient::generate(const std::vector<uint32_t> &prompt,
                    uint32_t max_new_tokens, uint32_t deadline_ms)
{
    GenerateResult out;
    const uint64_t epoch = steadyNanos();

    RequestMsg msg;
    msg.maxNewTokens = max_new_tokens;
    msg.deadlineMs = deadline_ms;
    msg.prompt = prompt;

    for (uint32_t tryIdx = 0; tryIdx < config_.maxAttempts; ++tryIdx) {
        // A fresh request id per attempt: a retried stream must never
        // be confused with frames from the aborted one.
        const uint64_t reqId = nextReqId_++;
        const std::vector<uint8_t> wire = encodeRequestFrame(reqId, msg);
        out.firstTokenMs = -1.0;
        ++out.attempts;
        ++stats_.attempts;
        if (tryIdx > 0)
            ++stats_.retries;
        const NetCode code = attempt(wire, reqId, out, epoch);
        out.code = code;
        if (code == NetCode::Ok) {
            if (tryIdx > 0) {
                ++stats_.reconnects;
                ++stats_.failovers;
            }
            out.totalMs = elapsedMs(epoch);
            return out;
        }
        switch (code) {
          case NetCode::ConnectionLost: ++stats_.connectionsLost; break;
          case NetCode::Timeout: ++stats_.timeouts; break;
          case NetCode::Rejected:
            if (out.serverError == ServeError::Overloaded)
                ++stats_.rejectedOverloaded;
            else if (out.serverError == ServeError::ShuttingDown)
                ++stats_.rejectedShuttingDown;
            else
                ++stats_.rejectedOther;
            break;
          default: break;
        }
        // Transient failures retry; everything else is terminal.
        const bool transientReject =
            code == NetCode::Rejected &&
            (out.serverError == ServeError::Overloaded ||
             out.serverError == ServeError::ShuttingDown);
        const bool transient = code == NetCode::ConnectionLost ||
                               code == NetCode::Timeout || transientReject;
        if (!transient || tryIdx + 1 == config_.maxAttempts)
            break;
        // Capped exponential backoff with seeded jitter: deterministic
        // per (seed, failure history), and desynchronized across
        // clients with different seeds.
        uint64_t delay = uint64_t{config_.backoffBaseMs} << tryIdx;
        delay = std::min<uint64_t>(delay, config_.backoffCapMs);
        delay += rng_.uniformInt(delay / 2 + 1);
        ++stats_.backoffSleeps;
        stats_.backoffMsTotal += delay;
        faultSleep(static_cast<uint32_t>(delay));
    }
    out.totalMs = elapsedMs(epoch);
    return out;
}

} // namespace msq
