#include "net/server.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <deque>
#include <thread>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "common/mutex.h"
#include "net/frame.h"
#include "net/socket.h"
#include "serve/clock.h"

namespace msq {

namespace {

/** Worker poll granularity: bounds idle-reap latency and how long a
 *  closed-flag set by another thread can go unnoticed. */
constexpr int kPollMs = 20;

/** Incremental FNV-1a step matching tokenStreamFold. */
constexpr uint64_t kFoldInit = 1469598103934665603ull;
inline uint64_t
foldStep(uint64_t h, uint32_t token)
{
    h ^= token;
    h *= 1099511628211ull;
    return h;
}

/**
 * One client connection. The owning I/O worker is the only thread that
 * touches the socket and the decoder; the output buffer is shared with
 * the engine thread (which appends frames) behind `mu`.
 */
struct Conn
{
    uint64_t id = 0;
    size_t worker = 0;        ///< owning worker index
    Socket sock;              ///< worker-only after registration
    FrameDecoder decoder;     ///< worker-only
    uint64_t lastActive = 0;  ///< worker-only, steadyNanos stamp

    Mutex mu;
    std::vector<uint8_t> outBuf MSQ_GUARDED_BY(mu);
    size_t outPos MSQ_GUARDED_BY(mu) = 0;
    size_t tokensInBuf MSQ_GUARDED_BY(mu) = 0; ///< token frames pending
    size_t inFlight MSQ_GUARDED_BY(mu) = 0;    ///< queued + resident reqs
    bool closed MSQ_GUARDED_BY(mu) = false;    ///< no more appends/reads
    bool clientFault MSQ_GUARDED_BY(mu) = false; ///< close was peer-caused
};

using ConnPtr = std::shared_ptr<Conn>;

/** A validated request parked on the bounded admission queue. */
struct PendingReq
{
    ConnPtr conn;
    uint64_t clientReqId = 0;
    RequestMsg msg;
    uint64_t deadlineNanos = 0; ///< 0 = none
    size_t pages = 0;           ///< pledged arena-page estimate
};

/** A request resident in the engine (engine thread only). */
struct Inflight
{
    uint64_t engineId = 0;
    ConnPtr conn;
    uint64_t clientReqId = 0;
    uint64_t deadlineNanos = 0;
    size_t pages = 0;
    uint64_t fold = kFoldInit;
    uint32_t count = 0;
};

struct IoWorker
{
    std::thread thread;
    std::pair<int, int> wake{-1, -1};
    Mutex mu;
    std::vector<ConnPtr> inbox MSQ_GUARDED_BY(mu); ///< accepted, unregistered
    std::vector<ConnPtr> conns; ///< thread-local working set
};

} // namespace

struct ModelServer::Impl
{
    DecodeEngine &engine;
    ServerConfig cfg;

    Socket listenSock;
    std::pair<int, int> acceptWake{-1, -1};
    std::thread acceptor;
    std::thread engineThread;
    std::vector<std::unique_ptr<IoWorker>> workers;

    std::atomic<bool> running{false};

    Mutex mu;
    CondVar cv;       ///< engine thread sleeps here when idle
    CondVar drainCv;  ///< drain() waits for the engine to go idle
    std::deque<PendingReq> queue MSQ_GUARDED_BY(mu);
    std::vector<std::pair<uint64_t, uint64_t>> cancels
        MSQ_GUARDED_BY(mu); ///< (conn id, client request id)
    bool draining MSQ_GUARDED_BY(mu) = false;
    bool stopping MSQ_GUARDED_BY(mu) = false;
    bool engineIdle MSQ_GUARDED_BY(mu) = true;
    size_t pledgedPages MSQ_GUARDED_BY(mu) = 0;
    size_t openConns MSQ_GUARDED_BY(mu) = 0;
    uint64_t nextConnId MSQ_GUARDED_BY(mu) = 1;
    std::vector<ConnPtr> allConns MSQ_GUARDED_BY(mu); ///< drain/teardown

    // Counters (atomics: workers, engine thread, and stats() racers).
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> rejectedConnections{0};
    std::atomic<uint64_t> requestsAdmitted{0};
    std::atomic<uint64_t> requestsServed{0};
    std::atomic<uint64_t> rejectedOverloaded{0};
    std::atomic<uint64_t> rejectedBadRequest{0};
    std::atomic<uint64_t> rejectedShutdown{0};
    std::atomic<uint64_t> deadlineExpired{0};
    std::atomic<uint64_t> cancelled{0};
    std::atomic<uint64_t> slowClientAborts{0};
    std::atomic<uint64_t> idleReaped{0};
    std::atomic<uint64_t> badFrameConns{0};
    std::atomic<uint64_t> tokensStreamed{0};
    std::atomic<uint64_t> droppedTokens{0};
    std::atomic<int64_t> drainUs{-1};

    Impl(DecodeEngine &eng, const ServerConfig &c) : engine(eng), cfg(c) {}

    // --- shared helpers ---------------------------------------------

    /** Append wire bytes to a connection's output buffer and wake its
     *  worker. `tokenCount` tracks unflushed token frames for the
     *  dropped-token accounting. Returns false when the connection is
     *  already closed (bytes discarded). */
    bool
    appendOut(const ConnPtr &conn, const std::vector<uint8_t> &bytes,
              size_t tokenCount)
    {
        bool overflow = false;
        {
            MutexLock lock(conn->mu);
            if (conn->closed)
                return false;
            conn->outBuf.insert(conn->outBuf.end(), bytes.begin(),
                                bytes.end());
            conn->tokensInBuf += tokenCount;
            if (conn->outBuf.size() - conn->outPos > cfg.maxOutBufBytes) {
                // Slow-client isolation: this reader is too far behind;
                // cut it loose rather than buffer without bound. Its
                // in-flight requests are cancelled by the engine thread
                // when it notices the closed flag.
                conn->closed = true;
                conn->clientFault = true;
                overflow = true;
            }
        }
        if (overflow) {
            slowClientAborts.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
        pokeWakePipe(workers[conn->worker]->wake.second);
        return true;
    }

    void
    sendError(const ConnPtr &conn, uint64_t reqId, ServeError code,
              const char *detail)
    {
        ErrorMsg msg;
        msg.code = code;
        msg.detail = detail;
        appendOut(conn, encodeErrorFrame(reqId, msg), 0);
    }

    void
    decInFlight(const ConnPtr &conn)
    {
        MutexLock lock(conn->mu);
        if (conn->inFlight > 0)
            --conn->inFlight;
    }

    void
    releasePledge(size_t pages)
    {
        MutexLock lock(mu);
        pledgedPages -= std::min(pledgedPages, pages);
    }

    // --- worker-side request handling -------------------------------

    void
    handleRequest(const ConnPtr &conn, const Frame &frame)
    {
        RequestMsg msg;
        if (decodeRequestMsg(frame.payload, msg) != NetCode::Ok) {
            rejectedBadRequest.fetch_add(1, std::memory_order_relaxed);
            sendError(conn, frame.requestId, ServeError::BadRequest,
                      "malformed request payload");
            return;
        }
        const size_t vocab = engine.config().vocab;
        for (uint32_t tok : msg.prompt)
            if (tok >= vocab) {
                rejectedBadRequest.fetch_add(1, std::memory_order_relaxed);
                sendError(conn, frame.requestId, ServeError::BadRequest,
                          "prompt token outside vocabulary");
                return;
            }

        PendingReq req;
        req.conn = conn;
        req.clientReqId = frame.requestId;
        uint32_t deadlineMs =
            msg.deadlineMs != 0 ? msg.deadlineMs : cfg.defaultDeadlineMs;
        deadlineMs = std::min(deadlineMs, cfg.maxDeadlineMs);
        if (deadlineMs != 0)
            req.deadlineNanos =
                steadyNanos() + uint64_t{deadlineMs} * 1000000ull;
        req.pages = engine.estimateRequestPages(msg.prompt.size(),
                                                msg.maxNewTokens);
        req.msg = std::move(msg);

        // Count the request against its connection before it becomes
        // poppable, so inFlight never underflows however fast the
        // engine thread runs.
        {
            MutexLock lock(conn->mu);
            if (conn->closed)
                return;
            ++conn->inFlight;
        }

        const size_t capacity = engine.arena().capacityPages();
        ServeError reject = ServeError::Internal;
        bool rejected = false;
        {
            MutexLock lock(mu);
            if (stopping || draining) {
                rejected = true;
                reject = ServeError::ShuttingDown;
            } else if (queue.size() >= cfg.maxQueue) {
                rejected = true;
                reject = ServeError::Overloaded;
            } else if (capacity > 0 &&
                       pledgedPages + req.pages > capacity) {
                // The KV-arena pledge check: admitting this request
                // could not be backed by arena pages even if the queue
                // emptied, so shed it at the boundary instead.
                rejected = true;
                reject = ServeError::Overloaded;
            } else {
                pledgedPages += req.pages;
                queue.push_back(std::move(req));
            }
        }
        if (rejected) {
            if (reject == ServeError::ShuttingDown)
                rejectedShutdown.fetch_add(1, std::memory_order_relaxed);
            else
                rejectedOverloaded.fetch_add(1, std::memory_order_relaxed);
            decInFlight(conn);
            sendError(conn, frame.requestId, reject,
                      reject == ServeError::ShuttingDown
                          ? "server is draining"
                          : "admission queue or KV budget exhausted");
            return;
        }
        cv.notifyOne();
    }

    void
    handleCancel(const ConnPtr &conn, const Frame &frame)
    {
        bool fromQueue = false;
        size_t pages = 0;
        {
            MutexLock lock(mu);
            for (size_t i = 0; i < queue.size(); ++i)
                if (queue[i].conn.get() == conn.get() &&
                    queue[i].clientReqId == frame.requestId) {
                    pages = queue[i].pages;
                    queue.erase(queue.begin() +
                                static_cast<ptrdiff_t>(i));
                    pledgedPages -= std::min(pledgedPages, pages);
                    fromQueue = true;
                    break;
                }
            if (!fromQueue)
                cancels.emplace_back(conn->id, frame.requestId);
        }
        if (fromQueue) {
            cancelled.fetch_add(1, std::memory_order_relaxed);
            decInFlight(conn);
        } else {
            cv.notifyOne();
        }
    }

    /** Answer a Stats query with a live load snapshot. The fields are
     *  sampled independently (queue under `mu`, per-connection
     *  in-flight under each conn's lock, arena through its own mutex)
     *  — a momentary reading is all routing needs. */
    void
    handleStats(const ConnPtr &conn, const Frame &frame)
    {
        StatsMsg sm;
        std::vector<ConnPtr> conns;
        {
            MutexLock lock(mu);
            sm.queueDepth = static_cast<uint32_t>(queue.size());
            sm.pledgedPages = static_cast<uint32_t>(pledgedPages);
            sm.draining = (draining || stopping) ? 1u : 0u;
            conns = allConns;
        }
        // Impl mu and conn mu are never nested: sum in-flight from a
        // snapshot of the connection list.
        size_t inflight = 0;
        for (const ConnPtr &c : conns) {
            MutexLock lock(c->mu);
            if (!c->closed)
                inflight += c->inFlight;
        }
        sm.inFlight = static_cast<uint32_t>(inflight);
        sm.capacityPages =
            static_cast<uint32_t>(engine.arena().capacityPages());
        sm.usedPages = static_cast<uint32_t>(engine.arena().pagesInUse());
        sm.requestsServed = requestsServed.load(std::memory_order_relaxed);
        sm.tokensStreamed = tokensStreamed.load(std::memory_order_relaxed);
        appendOut(conn, encodeStatsFrame(frame.requestId, sm), 0);
    }

    /** Dispatch one decoded frame from a client. Returns false when
     *  the connection must be closed (protocol violation). */
    bool
    handleFrame(const ConnPtr &conn, const Frame &frame)
    {
        switch (frame.type) {
          case FrameType::Request:
            handleRequest(conn, frame);
            return true;
          case FrameType::Cancel:
            handleCancel(conn, frame);
            return true;
          case FrameType::Stats:
            // Only the empty query form is client-to-server; a peer
            // pushing snapshot bodies at us is out of protocol.
            if (!frame.payload.empty())
                return false;
            handleStats(conn, frame);
            return true;
          default:
            // Server-to-client frame types arriving here mean the peer
            // is not a client; drop it.
            return false;
        }
    }

    void
    markClosed(const ConnPtr &conn, bool clientFault)
    {
        MutexLock lock(conn->mu);
        if (!conn->closed) {
            conn->closed = true;
            conn->clientFault = clientFault;
        }
    }

    /** Flush as much buffered output as the socket accepts
     *  (partial-write resumption). */
    void
    flushConn(const ConnPtr &conn)
    {
        MutexLock lock(conn->mu);
        while (conn->outPos < conn->outBuf.size()) {
            size_t sent = 0;
            const IoWait w =
                sendSome(conn->sock.fd(), conn->outBuf.data() + conn->outPos,
                         conn->outBuf.size() - conn->outPos, sent);
            if (w == IoWait::Ready) {
                conn->outPos += sent;
                continue;
            }
            if (w == IoWait::Again)
                return;
            conn->closed = true;
            conn->clientFault = true;
            return;
        }
        conn->outBuf.clear();
        conn->outPos = 0;
        conn->tokensInBuf = 0;
    }

    void
    readConn(const ConnPtr &conn)
    {
        uint8_t buf[4096];
        for (;;) {
            size_t got = 0;
            const IoWait w = recvSome(conn->sock.fd(), buf, sizeof(buf), got);
            if (w == IoWait::Again)
                return;
            if (w != IoWait::Ready) {
                markClosed(conn, /*clientFault=*/true);
                return;
            }
            conn->lastActive = steadyNanos();
            conn->decoder.feed(buf, got);
            Frame frame;
            for (;;) {
                const NetCode code = conn->decoder.next(frame);
                if (code == NetCode::NeedMore)
                    break;
                if (code != NetCode::Ok || !handleFrame(conn, frame)) {
                    // Undecodable or out-of-protocol stream: typed
                    // close, never an assert — the MsqReader rule.
                    badFrameConns.fetch_add(1, std::memory_order_relaxed);
                    markClosed(conn, /*clientFault=*/true);
                    return;
                }
            }
        }
    }

    // --- threads ----------------------------------------------------

    void
    workerLoop(size_t index)
    {
        IoWorker &me = *workers[index];
        std::vector<pollfd> pfds;
        while (running.load(std::memory_order_acquire)) {
            {
                MutexLock lock(me.mu);
                for (ConnPtr &c : me.inbox)
                    me.conns.push_back(std::move(c));
                me.inbox.clear();
            }
            pfds.clear();
            pollfd wk;
            wk.fd = me.wake.first;
            wk.events = POLLIN;
            wk.revents = 0;
            pfds.push_back(wk);
            for (const ConnPtr &conn : me.conns) {
                pollfd p;
                p.fd = conn->sock.fd();
                p.events = POLLIN;
                p.revents = 0;
                {
                    MutexLock lock(conn->mu);
                    if (conn->outPos < conn->outBuf.size())
                        p.events |= POLLOUT;
                }
                pfds.push_back(p);
            }
            const int rc = ::poll(pfds.data(),
                                  static_cast<nfds_t>(pfds.size()), kPollMs);
            if (rc < 0 && errno != EINTR)
                break;
            if (pfds[0].revents & POLLIN)
                drainWakePipe(me.wake.first);

            const uint64_t now = steadyNanos();
            for (size_t i = 0; i < me.conns.size(); ++i) {
                const ConnPtr &conn = me.conns[i];
                const short rev = rc > 0 ? pfds[i + 1].revents : 0;
                bool isClosed;
                bool hasPending;
                {
                    MutexLock lock(conn->mu);
                    isClosed = conn->closed;
                    hasPending = conn->outPos < conn->outBuf.size();
                }
                if (!isClosed && (rev & POLLOUT || hasPending))
                    flushConn(conn);
                if (!isClosed && (rev & POLLIN))
                    readConn(conn);
                if (!isClosed && (rev & (POLLERR | POLLHUP)))
                    markClosed(conn, /*clientFault=*/true);
                // Idle reaping: nothing in flight, nothing buffered,
                // and no bytes from the peer for idleTimeoutMs.
                if (!isClosed && cfg.idleTimeoutMs > 0) {
                    MutexLock lock(conn->mu);
                    if (!conn->closed && conn->inFlight == 0 &&
                        conn->outBuf.empty() &&
                        now - conn->lastActive >
                            uint64_t{cfg.idleTimeoutMs} * 1000000ull) {
                        conn->closed = true;
                        conn->clientFault = true;
                        idleReaped.fetch_add(1, std::memory_order_relaxed);
                    }
                }
            }

            // Retire closed connections: flush what still fits (a dying
            // stream may have a terminal Error frame pending), then
            // close the socket and drop the worker's reference.
            for (size_t i = 0; i < me.conns.size();) {
                const ConnPtr &conn = me.conns[i];
                bool isClosed;
                {
                    MutexLock lock(conn->mu);
                    isClosed = conn->closed;
                }
                if (!isClosed) {
                    ++i;
                    continue;
                }
                conn->sock.reset();
                me.conns.erase(me.conns.begin() +
                               static_cast<ptrdiff_t>(i));
                {
                    MutexLock lock(mu);
                    --openConns;
                }
                cv.notifyOne(); // engine may need to cancel its requests
            }
        }
        // Teardown: close every socket this worker still owns.
        for (const ConnPtr &conn : me.conns) {
            markClosed(conn, /*clientFault=*/false);
            conn->sock.reset();
        }
        me.conns.clear();
    }

    void
    acceptorLoop()
    {
        size_t next = 0;
        while (running.load(std::memory_order_acquire)) {
            pollfd pfds[2];
            pfds[0].fd = listenSock.fd();
            pfds[0].events = POLLIN;
            pfds[0].revents = 0;
            pfds[1].fd = acceptWake.first;
            pfds[1].events = POLLIN;
            pfds[1].revents = 0;
            const int rc = ::poll(pfds, 2, -1);
            if (rc < 0 && errno != EINTR)
                break;
            if (pfds[1].revents & POLLIN)
                drainWakePipe(acceptWake.first);
            if (!(pfds[0].revents & POLLIN))
                continue;
            for (;;) {
                Socket sock;
                const IoWait w = tcpAccept(listenSock.fd(), sock);
                if (w != IoWait::Ready)
                    break;
                bool reject = false;
                uint64_t id = 0;
                {
                    MutexLock lock(mu);
                    if (openConns >= cfg.maxConnections) {
                        reject = true;
                    } else {
                        ++openConns;
                        id = nextConnId++;
                    }
                }
                if (reject) {
                    rejectedConnections.fetch_add(
                        1, std::memory_order_relaxed);
                    continue; // Socket closes on scope exit
                }
                setNonBlocking(sock.fd());
                auto conn = std::make_shared<Conn>();
                conn->id = id;
                conn->worker = next;
                conn->sock = std::move(sock);
                conn->lastActive = steadyNanos();
                {
                    MutexLock lock(mu);
                    allConns.push_back(conn);
                }
                {
                    MutexLock lock(workers[next]->mu);
                    workers[next]->inbox.push_back(std::move(conn));
                }
                pokeWakePipe(workers[next]->wake.second);
                next = (next + 1) % workers.size();
                accepted.fetch_add(1, std::memory_order_relaxed);
            }
        }
    }

    void
    engineLoop()
    {
        engine.streamTokens(true);
        DecodeReport report; // engine accounting; discarded at shutdown
        std::vector<Inflight> inflight;
        const size_t batchCap = engine.config().maxBatchSeqs;

        for (;;) {
            std::vector<PendingReq> pops;
            std::vector<std::pair<uint64_t, uint64_t>> cancelReqs;
            bool stopNow = false;
            {
                MutexLock lock(mu);
                for (;;) {
                    if (stopping) {
                        stopNow = true;
                        break;
                    }
                    cancelReqs = std::move(cancels);
                    cancels.clear();
                    while (!queue.empty() &&
                           inflight.size() + pops.size() < batchCap) {
                        pops.push_back(std::move(queue.front()));
                        queue.pop_front();
                    }
                    if (!pops.empty() || !cancelReqs.empty() ||
                        !inflight.empty())
                        break;
                    // Nothing to do: publish idleness (drain() waits on
                    // it) and sleep until a worker or control call
                    // wakes us.
                    engineIdle = true;
                    drainCv.notifyAll();
                    cv.wait(mu);
                }
                if (!stopNow)
                    engineIdle = false;
            }
            if (stopNow)
                break;

            // Client cancels that raced past the queue: match against
            // resident sequences.
            for (const auto &cr : cancelReqs) {
                for (size_t i = 0; i < inflight.size(); ++i) {
                    Inflight &fl = inflight[i];
                    if (fl.conn->id != cr.first ||
                        fl.clientReqId != cr.second)
                        continue;
                    engine.cancel(fl.engineId);
                    releasePledge(fl.pages);
                    decInFlight(fl.conn);
                    cancelled.fetch_add(1, std::memory_order_relaxed);
                    inflight.erase(inflight.begin() +
                                   static_cast<ptrdiff_t>(i));
                    break;
                }
            }

            // Admit popped requests into the engine (or retire them
            // immediately when their deadline already passed or their
            // connection died while queued).
            const uint64_t now0 = steadyNanos();
            for (PendingReq &req : pops) {
                bool dead;
                {
                    MutexLock lock(req.conn->mu);
                    dead = req.conn->closed;
                }
                if (dead) {
                    releasePledge(req.pages);
                    decInFlight(req.conn);
                    continue;
                }
                if (req.deadlineNanos != 0 && now0 >= req.deadlineNanos) {
                    deadlineExpired.fetch_add(1, std::memory_order_relaxed);
                    sendError(req.conn, req.clientReqId,
                              ServeError::DeadlineExceeded,
                              "deadline expired before admission");
                    releasePledge(req.pages);
                    decInFlight(req.conn);
                    continue;
                }
                Inflight fl;
                fl.engineId =
                    engine.submit(req.msg.prompt, req.msg.maxNewTokens);
                fl.conn = std::move(req.conn);
                fl.clientReqId = req.clientReqId;
                fl.deadlineNanos = req.deadlineNanos;
                fl.pages = req.pages;
                inflight.push_back(std::move(fl));
                requestsAdmitted.fetch_add(1, std::memory_order_relaxed);
            }

            // Between-step policy: cancel overdue sequences and
            // sequences whose client vanished. Decode determinism makes
            // this safe — co-scheduled streams are unaffected.
            const uint64_t now1 = steadyNanos();
            for (size_t i = 0; i < inflight.size();) {
                Inflight &fl = inflight[i];
                bool dead;
                {
                    MutexLock lock(fl.conn->mu);
                    dead = fl.conn->closed;
                }
                const bool overdue =
                    fl.deadlineNanos != 0 && now1 >= fl.deadlineNanos;
                if (!dead && !overdue) {
                    ++i;
                    continue;
                }
                engine.cancel(fl.engineId);
                if (overdue && !dead) {
                    deadlineExpired.fetch_add(1, std::memory_order_relaxed);
                    sendError(fl.conn, fl.clientReqId,
                              ServeError::DeadlineExceeded,
                              "deadline expired mid-generation");
                }
                releasePledge(fl.pages);
                decInFlight(fl.conn);
                inflight.erase(inflight.begin() +
                               static_cast<ptrdiff_t>(i));
            }

            if (engine.idle())
                continue;
            engine.stepOnce(report);

            // Stream this step's tokens out in sampling order.
            for (const TokenEvent &ev : engine.takeTokenEvents()) {
                size_t idx = inflight.size();
                for (size_t i = 0; i < inflight.size(); ++i)
                    if (inflight[i].engineId == ev.id) {
                        idx = i;
                        break;
                    }
                if (idx == inflight.size())
                    continue; // cancelled this step; engine retired it
                Inflight &fl = inflight[idx];
                TokenMsg tm;
                tm.index = static_cast<uint32_t>(ev.index);
                tm.token = ev.token;
                // Counters bump BEFORE the frame is buffered: once a
                // client has read the bytes, any stats snapshot it then
                // requests must already reflect them (the supervisor's
                // probe and tests rely on that ordering).
                tokensStreamed.fetch_add(1, std::memory_order_relaxed);
                appendOut(fl.conn, encodeTokenFrame(fl.clientReqId, tm), 1);
                fl.fold = foldStep(fl.fold, ev.token);
                ++fl.count;
                if (ev.last) {
                    DoneMsg dm;
                    dm.tokenCount = fl.count;
                    dm.streamFold = fl.fold;
                    requestsServed.fetch_add(1, std::memory_order_relaxed);
                    appendOut(fl.conn, encodeDoneFrame(fl.clientReqId, dm),
                              0);
                    releasePledge(fl.pages);
                    decInFlight(fl.conn);
                    inflight.erase(inflight.begin() +
                                   static_cast<ptrdiff_t>(idx));
                }
            }
        }

        // Hard-stop path: cancel whatever is still resident so the
        // engine is idle and reusable (the chaos harness restarts a
        // server on the same engine).
        for (const Inflight &fl : inflight) {
            engine.cancel(fl.engineId);
            releasePledge(fl.pages);
            decInFlight(fl.conn);
        }
        engine.streamTokens(false);
        engine.takeTokenEvents();
        {
            MutexLock lock(mu);
            engineIdle = true;
            drainCv.notifyAll();
        }
    }

    // --- control ----------------------------------------------------

    /** True when every connection's output buffer has reached its
     *  socket (or the connection is gone). */
    bool
    allFlushed()
    {
        std::vector<ConnPtr> conns;
        {
            MutexLock lock(mu);
            conns = allConns;
        }
        for (const ConnPtr &conn : conns) {
            MutexLock lock(conn->mu);
            if (!conn->closed && conn->outPos < conn->outBuf.size())
                return false;
        }
        return true;
    }

    /** Count buffered-but-never-flushed tokens on connections the
     *  server itself is abandoning (hard stop). Peer-caused closes are
     *  the client's loss, not a server drop. */
    void
    accountDroppedTokens()
    {
        std::vector<ConnPtr> conns;
        {
            MutexLock lock(mu);
            conns = allConns;
        }
        for (const ConnPtr &conn : conns) {
            MutexLock lock(conn->mu);
            if (!conn->clientFault &&
                conn->outPos < conn->outBuf.size() &&
                conn->tokensInBuf > 0)
                droppedTokens.fetch_add(conn->tokensInBuf,
                                        std::memory_order_relaxed);
        }
    }

    void
    joinAll()
    {
        pokeWakePipe(acceptWake.second);
        for (auto &w : workers)
            pokeWakePipe(w->wake.second);
        cv.notifyAll();
        if (acceptor.joinable())
            acceptor.join();
        for (auto &w : workers)
            if (w->thread.joinable())
                w->thread.join();
        if (engineThread.joinable())
            engineThread.join();
    }
};

ModelServer::ModelServer(DecodeEngine &engine, const ServerConfig &config)
    : impl_(std::make_unique<Impl>(engine, config)), config_(config)
{
    if (config_.ioWorkers == 0)
        config_.ioWorkers = 1;
    impl_->cfg = config_;
}

ModelServer::~ModelServer()
{
    stop();
}

bool
ModelServer::start()
{
    Impl &s = *impl_;
    if (s.running.load(std::memory_order_acquire))
        return true;
    uint16_t bound = 0;
    s.listenSock = tcpListen(config_.port, bound);
    if (!s.listenSock.valid())
        return false;
    if (!setNonBlocking(s.listenSock.fd()))
        return false;
    if (!makeWakePipe(s.acceptWake))
        return false;
    boundPort_ = bound;

    s.workers.clear();
    for (size_t i = 0; i < config_.ioWorkers; ++i) {
        auto w = std::make_unique<IoWorker>();
        if (!makeWakePipe(w->wake))
            return false;
        s.workers.push_back(std::move(w));
    }

    s.running.store(true, std::memory_order_release);
    {
        MutexLock lock(s.mu);
        s.stopping = false;
        s.draining = false;
        s.engineIdle = true;
    }
    for (size_t i = 0; i < s.workers.size(); ++i)
        s.workers[i]->thread = std::thread([this, i] {
            impl_->workerLoop(i);
        });
    s.acceptor = std::thread([this] { impl_->acceptorLoop(); });
    s.engineThread = std::thread([this] { impl_->engineLoop(); });
    return true;
}

void
ModelServer::requestDrain()
{
    Impl &s = *impl_;
    {
        MutexLock lock(s.mu);
        s.draining = true;
    }
    s.cv.notifyAll();
}

bool
ModelServer::drain()
{
    Impl &s = *impl_;
    if (!s.running.load(std::memory_order_acquire))
        return s.droppedTokens.load(std::memory_order_relaxed) == 0;
    const uint64_t t0 = steadyNanos();
    requestDrain();
    // Phase 1: every admitted request finishes (the engine goes idle
    // with an empty queue — admission is already closed).
    {
        MutexLock lock(s.mu);
        while (!(s.engineIdle && s.queue.empty()) && !s.stopping)
            s.drainCv.wait(s.mu);
    }
    // Phase 2: every produced frame reaches its socket. The workers
    // keep flushing while we wait; connections that die flush-side are
    // their client's loss, not a drop.
    while (!s.allFlushed())
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    s.drainUs.store(
        static_cast<int64_t>((steadyNanos() - t0) / 1000),
        std::memory_order_relaxed);
    stop();
    return s.droppedTokens.load(std::memory_order_relaxed) == 0;
}

void
ModelServer::stop()
{
    Impl &s = *impl_;
    if (!s.running.exchange(false, std::memory_order_acq_rel)) {
        // Never started (or already stopped): nothing to join.
        return;
    }
    {
        MutexLock lock(s.mu);
        s.stopping = true;
        // Anything still queued never ran: release its pledges and
        // connection accounting so teardown is balanced.
        for (PendingReq &req : s.queue) {
            s.pledgedPages -= std::min(s.pledgedPages, req.pages);
        }
    }
    s.cv.notifyAll();
    s.drainCv.notifyAll();
    s.joinAll();
    // Only after every worker has stopped flushing is "buffered but
    // never flushed" a settled fact.
    s.accountDroppedTokens();
    {
        MutexLock lock(s.mu);
        s.queue.clear();
        s.cancels.clear();
        s.allConns.clear();
        s.openConns = 0;
    }
    s.listenSock.reset();
    if (s.acceptWake.first >= 0) {
        ::close(s.acceptWake.first);
        ::close(s.acceptWake.second);
        s.acceptWake = {-1, -1};
    }
    for (auto &w : s.workers)
        if (w->wake.first >= 0) {
            ::close(w->wake.first);
            ::close(w->wake.second);
            w->wake = {-1, -1};
        }
}

ServerStats
ModelServer::stats() const
{
    const Impl &s = *impl_;
    ServerStats out;
    out.accepted = s.accepted.load(std::memory_order_relaxed);
    out.rejectedConnections =
        s.rejectedConnections.load(std::memory_order_relaxed);
    out.requestsAdmitted =
        s.requestsAdmitted.load(std::memory_order_relaxed);
    out.requestsServed = s.requestsServed.load(std::memory_order_relaxed);
    out.rejectedOverloaded =
        s.rejectedOverloaded.load(std::memory_order_relaxed);
    out.rejectedBadRequest =
        s.rejectedBadRequest.load(std::memory_order_relaxed);
    out.rejectedShutdown =
        s.rejectedShutdown.load(std::memory_order_relaxed);
    out.deadlineExpired =
        s.deadlineExpired.load(std::memory_order_relaxed);
    out.cancelled = s.cancelled.load(std::memory_order_relaxed);
    out.slowClientAborts =
        s.slowClientAborts.load(std::memory_order_relaxed);
    out.idleReaped = s.idleReaped.load(std::memory_order_relaxed);
    out.badFrameConns = s.badFrameConns.load(std::memory_order_relaxed);
    out.tokensStreamed = s.tokensStreamed.load(std::memory_order_relaxed);
    out.droppedTokens = s.droppedTokens.load(std::memory_order_relaxed);
    const int64_t us = s.drainUs.load(std::memory_order_relaxed);
    out.drainMs = us < 0 ? -1.0 : static_cast<double>(us) / 1e3;
    return out;
}

} // namespace msq
