/**
 * @file
 * Wire protocol of the network serving frontend: a length-prefixed,
 * CRC32-framed message stream over TCP, carrying generation requests
 * in and per-token streaming responses out.
 *
 * Frame layout (little-endian, mirroring the `.msq` container
 * discipline in io/msq_file.h):
 *
 *   u32 magic      'MSQN' — resynchronization guard: a peer speaking
 *                  anything else is rejected on the first frame
 *   u8  type       FrameType
 *   u64 requestId  client-chosen id echoed on every response frame,
 *                  so one connection can multiplex requests
 *   u32 payload    payload byte count (hard-capped, see below)
 *   ..  payload    type-specific body
 *   u32 crc        CRC32 over everything from `magic` through the
 *                  payload's last byte
 *
 * Every byte of a frame is covered by the CRC, so a flipped bit on the
 * wire (or a fault injector's truncation) is detected, never decoded.
 * The decoder follows the MsqReader hostile-input rules: hard caps on
 * CRC-valid hostile metadata are enforced *before* any allocation
 * depends on a field (`kMaxFramePayload`, `kMaxPromptTokens`,
 * `kMaxNewTokens`), and malformed input yields a typed `NetCode` —
 * never an assert, a crash, or a bad_alloc (tests/test_net_fuzz.cc
 * sweeps byte flips, truncations, and oversized lengths).
 *
 * Message bodies:
 *
 *   Request  u32 maxNewTokens | u32 deadlineMs (0 = server default) |
 *            u32 promptLen | promptLen x u32 token
 *   Token    u32 index (0-based position in the stream) | u32 token
 *   Done     u32 tokenCount | u64 streamFold — the order-sensitive
 *            FNV-1a fold of the full stream, so a client can verify
 *            end-to-end integrity across retries and server restarts
 *   Error    u32 code (ServeError) | u32 detailLen | detail bytes
 *   Stats    empty payload = the query (client -> server); the reply
 *            (server -> client) carries the live load snapshot:
 *            u32 queueDepth | u32 inFlight | u32 capacityPages |
 *            u32 usedPages | u32 pledgedPages | u32 draining |
 *            u64 requestsServed | u64 tokensStreamed — the health
 *            probe the cluster tier (src/cluster) routes by
 *
 * The decoder is incremental (`FrameDecoder::feed` + `next`): workers
 * hand it whatever bytes `recv` produced and pop complete frames, so
 * slow or adversarial peers that dribble bytes cost bounded memory.
 */

#ifndef MSQ_NET_FRAME_H
#define MSQ_NET_FRAME_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace msq {

/** Frame magic: "MSQN" in file order. */
constexpr uint32_t kNetMagic = 0x4E51534Du;

/** Hard cap on a frame payload: far above any real request (a
 *  4096-token prompt is ~16 KB) and far below anything that could
 *  drive a hostile allocation. */
constexpr uint32_t kMaxFramePayload = 1u << 20;

/** Hard caps on CRC-valid hostile request metadata. */
constexpr uint32_t kMaxPromptTokens = 4096;
constexpr uint32_t kMaxNewTokens = 4096;

/** Fixed bytes before the payload: magic, type, requestId, length. */
constexpr size_t kFrameHeaderBytes = 4 + 1 + 8 + 4;

/** Bytes a frame occupies on the wire for a given payload size. */
constexpr size_t
frameWireBytes(size_t payload)
{
    return kFrameHeaderBytes + payload + 4;
}

/** Frame kinds. Values are wire format — never renumber. */
enum class FrameType : uint8_t
{
    Request = 1, ///< client -> server: start a generation
    Cancel = 2,  ///< client -> server: abandon a request
    Token = 3,   ///< server -> client: one streamed token
    Done = 4,    ///< server -> client: stream complete + digest
    Error = 5,   ///< server -> client: typed rejection / failure
    Stats = 6,   ///< empty = load query; 40-byte body = the snapshot
};

/** Typed rejection codes carried by Error frames. */
enum class ServeError : uint32_t
{
    Overloaded = 1,       ///< admission queue / KV budget exhausted
    BadRequest = 2,       ///< malformed or out-of-range request fields
    DeadlineExceeded = 3, ///< request cancelled by its deadline
    ShuttingDown = 4,     ///< server draining; retry elsewhere/later
    Internal = 5,         ///< server-side failure
};

/** Stable name of a ServeError (for messages and tests). */
const char *serveErrorName(ServeError code);

/** Typed outcome classes of frame decoding and client transport. */
enum class NetCode
{
    Ok,
    NeedMore,      ///< decoder: no complete frame buffered yet
    BadMagic,      ///< frame does not start with 'MSQN'
    BadType,       ///< unknown FrameType
    FrameTooLarge, ///< declared payload above kMaxFramePayload
    BadCrc,        ///< frame checksum mismatch
    BadPayload,    ///< CRC-valid payload fails its caps or layout
    ConnectionLost,///< peer vanished mid-stream (client transport)
    Rejected,      ///< server answered with a terminal Error frame
    Timeout,       ///< client-side receive deadline expired
};

/** Stable name of a NetCode (for messages and tests). */
const char *netCodeName(NetCode code);

/** One decoded frame: type, request id, and raw payload bytes. */
struct Frame
{
    FrameType type = FrameType::Request;
    uint64_t requestId = 0;
    std::vector<uint8_t> payload;
};

/** Decoded Request payload. */
struct RequestMsg
{
    uint32_t maxNewTokens = 0;
    uint32_t deadlineMs = 0; ///< 0 = use the server default
    std::vector<uint32_t> prompt;
};

/** Decoded Token payload. */
struct TokenMsg
{
    uint32_t index = 0;
    uint32_t token = 0;
};

/** Decoded Done payload. */
struct DoneMsg
{
    uint32_t tokenCount = 0;
    uint64_t streamFold = 0;
};

/** Decoded Error payload. */
struct ErrorMsg
{
    ServeError code = ServeError::Internal;
    std::string detail;
};

/**
 * Decoded Stats payload: one server's live load snapshot, answered to
 * an empty-payload Stats query. The cluster tier health-checks and
 * routes by these numbers; they are a momentary reading, not a
 * synchronized one (each field is sampled independently).
 */
struct StatsMsg
{
    uint32_t queueDepth = 0;    ///< admission-queue occupancy
    uint32_t inFlight = 0;      ///< queued + engine-resident requests
    uint32_t capacityPages = 0; ///< KV-arena budget (0 = unbounded)
    uint32_t usedPages = 0;     ///< KV-arena pages currently held
    uint32_t pledgedPages = 0;  ///< admission pledges outstanding
    uint32_t draining = 0;      ///< 1 once admission has closed
    uint64_t requestsServed = 0;
    uint64_t tokensStreamed = 0;
};

/**
 * Order-sensitive FNV-1a fold of a token stream: the digest a Done
 * frame carries and the chaos tests compare across fault-free and
 * faulted runs.
 */
uint64_t tokenStreamFold(const uint32_t *tokens, size_t count);

// ---------------------------------------------------------------------
// Encoding. Each helper returns the complete wire bytes of one frame.

std::vector<uint8_t> encodeRequestFrame(uint64_t request_id,
                                        const RequestMsg &msg);
std::vector<uint8_t> encodeCancelFrame(uint64_t request_id);
std::vector<uint8_t> encodeTokenFrame(uint64_t request_id,
                                      const TokenMsg &msg);
std::vector<uint8_t> encodeDoneFrame(uint64_t request_id,
                                     const DoneMsg &msg);
std::vector<uint8_t> encodeErrorFrame(uint64_t request_id,
                                      const ErrorMsg &msg);
/** The empty-payload query form of a Stats frame. */
std::vector<uint8_t> encodeStatsQueryFrame(uint64_t request_id);
std::vector<uint8_t> encodeStatsFrame(uint64_t request_id,
                                      const StatsMsg &msg);

// ---------------------------------------------------------------------
// Payload decoding: typed errors on malformed bodies, no allocation
// before the caps pass.

NetCode decodeRequestMsg(const std::vector<uint8_t> &payload,
                         RequestMsg &out);
NetCode decodeTokenMsg(const std::vector<uint8_t> &payload, TokenMsg &out);
NetCode decodeDoneMsg(const std::vector<uint8_t> &payload, DoneMsg &out);
NetCode decodeErrorMsg(const std::vector<uint8_t> &payload, ErrorMsg &out);
/** Decodes the 40-byte snapshot form; the empty query form is
 *  recognized by `payload.empty()` before calling this. */
NetCode decodeStatsMsg(const std::vector<uint8_t> &payload, StatsMsg &out);

/**
 * Incremental frame parser over a byte stream. Feed whatever bytes the
 * socket produced; pop frames until `next` reports NeedMore. Any error
 * is sticky: a stream that produced garbage cannot be resynchronized
 * (the transport closes the connection), so every later `next` repeats
 * the same code.
 *
 * Memory is bounded: the internal buffer never grows past one maximal
 * frame plus one read chunk, because `feed` is rejected (returns
 * false) once a complete hostile header has already been refused and
 * oversized declared lengths are refused before their payload bytes
 * are buffered.
 */
class FrameDecoder
{
  public:
    /** Append raw bytes. Returns false when the stream is already in a
     *  sticky error state (the bytes are discarded). */
    bool feed(const uint8_t *data, size_t bytes);

    /** Pop the next complete frame. Ok fills `out`; NeedMore means
     *  feed more bytes; anything else is the sticky stream error. */
    NetCode next(Frame &out);

    /** Bytes currently buffered (tests pin the bound). */
    size_t buffered() const { return buf_.size() - pos_; }

    /** The sticky error, or Ok/NeedMore if the stream is healthy. */
    NetCode state() const { return state_; }

  private:
    std::vector<uint8_t> buf_;
    size_t pos_ = 0; ///< consumed prefix of buf_
    NetCode state_ = NetCode::Ok;
};

} // namespace msq

#endif // MSQ_NET_FRAME_H
