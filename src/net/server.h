/**
 * @file
 * Fault-tolerant network serving frontend over DecodeEngine: a
 * streaming TCP boundary speaking the CRC32-framed protocol of
 * net/frame.h, with per-request deadlines, bounded-queue backpressure,
 * slow-client isolation, and graceful drain.
 *
 * Threading model (all primitives from common/mutex.h, so the
 * `-Wthread-safety` leg analyzes every acquisition):
 *
 *  - one acceptor thread: polls the listen socket, hands fresh
 *    connections to I/O workers round-robin;
 *  - `ioWorkers` I/O worker threads: each owns a poll set of
 *    connections plus a self-pipe; reads bytes into per-connection
 *    FrameDecoders, validates requests, enqueues them on the bounded
 *    admission queue, and flushes per-connection output buffers with
 *    partial-write resumption;
 *  - one engine thread: the only thread that touches the DecodeEngine.
 *    It moves admitted requests into the engine (never more than the
 *    engine's batch capacity, so the bounded server queue stays the
 *    real backpressure point), drives `stepOnce`, drains per-token
 *    events into connection output buffers, and cancels overdue
 *    sequences between steps.
 *
 * Robustness contract:
 *
 *  - Admission: a request arriving while the queue is full, or whose
 *    conservative KV page estimate cannot be pledged against the
 *    arena budget, is rejected immediately with a typed
 *    `ServeError::Overloaded` — never silently dropped, never queued
 *    unboundedly.
 *  - Deadlines: each request carries (or inherits) a deadline; a
 *    sequence still running past it is cancelled between decode steps
 *    and answered with `DeadlineExceeded`. Cancellation cannot perturb
 *    co-scheduled streams (decode determinism contract).
 *  - Slow clients: output is buffered per connection up to
 *    `maxOutBufBytes`; a client that cannot keep up is disconnected
 *    and its in-flight requests cancelled, so one stalled reader never
 *    blocks the engine or other streams.
 *  - Graceful drain (`drain()`, wired to SIGTERM in
 *    examples/model_server.cpp): stop admitting (new requests get
 *    `ShuttingDown`), finish every in-flight stream, flush every
 *    healthy connection's buffer to the socket, then stop. Zero
 *    produced tokens are dropped — counted and test-enforced.
 *
 * Hostile input follows the MsqReader discipline end to end: typed
 * errors from the frame layer, hard caps before any length-derived
 * allocation, and a connection whose stream turns to garbage is closed
 * — the server never asserts or throws on network input.
 */

#ifndef MSQ_NET_SERVER_H
#define MSQ_NET_SERVER_H

#include <cstdint>
#include <memory>

#include "serve/decode.h"

namespace msq {

/** Serving frontend knobs. */
struct ServerConfig
{
    uint16_t port = 0;          ///< 0 = ephemeral (see boundPort())
    size_t ioWorkers = 2;       ///< connection I/O threads
    size_t maxConnections = 64; ///< accept cap; excess closed at once

    /** Admission queue bound — the backpressure point. Requests beyond
     *  it are rejected with Overloaded. */
    size_t maxQueue = 16;

    uint32_t defaultDeadlineMs = 0; ///< applied when a request sends 0
    uint32_t maxDeadlineMs = 60000; ///< client deadlines clamp to this

    /** Reap connections idle this long with nothing in flight;
     *  0 = never. */
    uint32_t idleTimeoutMs = 0;

    /** Per-connection output buffer cap; a client further behind than
     *  this is aborted (slow-client isolation). */
    size_t maxOutBufBytes = 1u << 20;
};

/** Monotonic counters exposed by ModelServer::stats(). */
struct ServerStats
{
    uint64_t accepted = 0;          ///< connections accepted
    uint64_t rejectedConnections = 0; ///< closed at the accept cap
    uint64_t requestsAdmitted = 0;
    uint64_t requestsServed = 0;    ///< streams finished with Done
    uint64_t rejectedOverloaded = 0;
    uint64_t rejectedBadRequest = 0;
    uint64_t rejectedShutdown = 0;
    uint64_t deadlineExpired = 0;
    uint64_t cancelled = 0;         ///< client Cancel frames honored
    uint64_t slowClientAborts = 0;
    uint64_t idleReaped = 0;
    uint64_t badFrameConns = 0;     ///< closed on undecodable streams
    uint64_t tokensStreamed = 0;    ///< Token frames queued
    uint64_t droppedTokens = 0;     ///< queued but never flushed (server
                                    ///< -initiated closes only)
    double drainMs = -1.0;          ///< last drain duration; -1 = none
};

/**
 * TCP serving frontend over one DecodeEngine. The engine is borrowed:
 * the caller constructs it (packed-model deployment is expensive) and
 * must keep it alive; between `start()` and `stop()`/`drain()` the
 * server's engine thread is the only thing touching it. After a clean
 * shutdown the engine is left idle, so a restarted server (the chaos
 * harness does this mid-load) can reuse it.
 */
class ModelServer
{
  public:
    ModelServer(DecodeEngine &engine, const ServerConfig &config);
    ~ModelServer(); ///< hard stop() if still running

    ModelServer(const ModelServer &) = delete;
    ModelServer &operator=(const ModelServer &) = delete;

    /** Bind, listen, and spawn the threads. False when the port cannot
     *  be bound (the server is then inert). */
    bool start();

    /** The actual listening port (after start(); ephemeral-port aware). */
    uint16_t boundPort() const { return boundPort_; }

    /** Begin draining: stop admitting, let in-flight streams finish.
     *  Returns immediately; safe from a signal-driven control loop. */
    void requestDrain();

    /**
     * Graceful shutdown: requestDrain(), wait until every in-flight
     * stream has finished AND every healthy connection's output buffer
     * has reached the socket, then join all threads. Returns true when
     * no produced token was dropped (`stats().droppedTokens == 0`).
     */
    bool drain();

    /** Hard stop: close everything now. Buffered-but-unflushed tokens
     *  are counted into droppedTokens. Idempotent. */
    void stop();

    /** Snapshot of the counters (thread-safe). */
    ServerStats stats() const;

    const ServerConfig &config() const { return config_; }

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
    ServerConfig config_;
    uint16_t boundPort_ = 0;
};

} // namespace msq

#endif // MSQ_NET_SERVER_H
