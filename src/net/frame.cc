#include "net/frame.h"

#include <cstring>

#include "io/crc32.h"

namespace msq {

namespace {

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t
getU32(const uint8_t *p)
{
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<uint32_t>(p[i]) << (8 * i);
    return v;
}

uint64_t
getU64(const uint8_t *p)
{
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<uint64_t>(p[i]) << (8 * i);
    return v;
}

/** Assemble one frame: header + payload + trailing CRC over both. */
std::vector<uint8_t>
encodeFrame(FrameType type, uint64_t request_id,
            const std::vector<uint8_t> &payload)
{
    std::vector<uint8_t> out;
    out.reserve(frameWireBytes(payload.size()));
    putU32(out, kNetMagic);
    out.push_back(static_cast<uint8_t>(type));
    putU64(out, request_id);
    putU32(out, static_cast<uint32_t>(payload.size()));
    out.insert(out.end(), payload.begin(), payload.end());
    putU32(out, crc32(out.data(), out.size()));
    return out;
}

} // namespace

const char *
serveErrorName(ServeError code)
{
    switch (code) {
      case ServeError::Overloaded: return "overloaded";
      case ServeError::BadRequest: return "bad-request";
      case ServeError::DeadlineExceeded: return "deadline-exceeded";
      case ServeError::ShuttingDown: return "shutting-down";
      case ServeError::Internal: return "internal";
    }
    return "unknown";
}

const char *
netCodeName(NetCode code)
{
    switch (code) {
      case NetCode::Ok: return "ok";
      case NetCode::NeedMore: return "need-more";
      case NetCode::BadMagic: return "bad-magic";
      case NetCode::BadType: return "bad-type";
      case NetCode::FrameTooLarge: return "frame-too-large";
      case NetCode::BadCrc: return "bad-crc";
      case NetCode::BadPayload: return "bad-payload";
      case NetCode::ConnectionLost: return "connection-lost";
      case NetCode::Rejected: return "rejected";
      case NetCode::Timeout: return "timeout";
    }
    return "unknown";
}

uint64_t
tokenStreamFold(const uint32_t *tokens, size_t count)
{
    uint64_t h = 1469598103934665603ull;
    for (size_t i = 0; i < count; ++i) {
        h ^= tokens[i];
        h *= 1099511628211ull;
    }
    return h;
}

std::vector<uint8_t>
encodeRequestFrame(uint64_t request_id, const RequestMsg &msg)
{
    std::vector<uint8_t> payload;
    payload.reserve(12 + 4 * msg.prompt.size());
    putU32(payload, msg.maxNewTokens);
    putU32(payload, msg.deadlineMs);
    putU32(payload, static_cast<uint32_t>(msg.prompt.size()));
    for (uint32_t tok : msg.prompt)
        putU32(payload, tok);
    return encodeFrame(FrameType::Request, request_id, payload);
}

std::vector<uint8_t>
encodeCancelFrame(uint64_t request_id)
{
    return encodeFrame(FrameType::Cancel, request_id, {});
}

std::vector<uint8_t>
encodeTokenFrame(uint64_t request_id, const TokenMsg &msg)
{
    std::vector<uint8_t> payload;
    putU32(payload, msg.index);
    putU32(payload, msg.token);
    return encodeFrame(FrameType::Token, request_id, payload);
}

std::vector<uint8_t>
encodeDoneFrame(uint64_t request_id, const DoneMsg &msg)
{
    std::vector<uint8_t> payload;
    putU32(payload, msg.tokenCount);
    putU64(payload, msg.streamFold);
    return encodeFrame(FrameType::Done, request_id, payload);
}

std::vector<uint8_t>
encodeErrorFrame(uint64_t request_id, const ErrorMsg &msg)
{
    std::vector<uint8_t> payload;
    payload.reserve(8 + msg.detail.size());
    putU32(payload, static_cast<uint32_t>(msg.code));
    putU32(payload, static_cast<uint32_t>(msg.detail.size()));
    payload.insert(payload.end(), msg.detail.begin(), msg.detail.end());
    return encodeFrame(FrameType::Error, request_id, payload);
}

std::vector<uint8_t>
encodeStatsQueryFrame(uint64_t request_id)
{
    return encodeFrame(FrameType::Stats, request_id, {});
}

std::vector<uint8_t>
encodeStatsFrame(uint64_t request_id, const StatsMsg &msg)
{
    std::vector<uint8_t> payload;
    payload.reserve(40);
    putU32(payload, msg.queueDepth);
    putU32(payload, msg.inFlight);
    putU32(payload, msg.capacityPages);
    putU32(payload, msg.usedPages);
    putU32(payload, msg.pledgedPages);
    putU32(payload, msg.draining);
    putU64(payload, msg.requestsServed);
    putU64(payload, msg.tokensStreamed);
    return encodeFrame(FrameType::Stats, request_id, payload);
}

NetCode
decodeRequestMsg(const std::vector<uint8_t> &payload, RequestMsg &out)
{
    if (payload.size() < 12)
        return NetCode::BadPayload;
    RequestMsg msg;
    msg.maxNewTokens = getU32(payload.data());
    msg.deadlineMs = getU32(payload.data() + 4);
    const uint32_t prompt_len = getU32(payload.data() + 8);
    // Caps before the size arithmetic: a CRC-valid hostile length must
    // produce a typed error, never an allocation or overflow.
    if (prompt_len > kMaxPromptTokens)
        return NetCode::BadPayload;
    if (msg.maxNewTokens == 0 || msg.maxNewTokens > kMaxNewTokens)
        return NetCode::BadPayload;
    if (payload.size() != 12 + size_t{prompt_len} * 4)
        return NetCode::BadPayload;
    if (prompt_len == 0)
        return NetCode::BadPayload;
    msg.prompt.resize(prompt_len);
    for (uint32_t i = 0; i < prompt_len; ++i)
        msg.prompt[i] = getU32(payload.data() + 12 + size_t{i} * 4);
    out = std::move(msg);
    return NetCode::Ok;
}

NetCode
decodeTokenMsg(const std::vector<uint8_t> &payload, TokenMsg &out)
{
    if (payload.size() != 8)
        return NetCode::BadPayload;
    out.index = getU32(payload.data());
    out.token = getU32(payload.data() + 4);
    return NetCode::Ok;
}

NetCode
decodeDoneMsg(const std::vector<uint8_t> &payload, DoneMsg &out)
{
    if (payload.size() != 12)
        return NetCode::BadPayload;
    out.tokenCount = getU32(payload.data());
    out.streamFold = getU64(payload.data() + 4);
    return NetCode::Ok;
}

NetCode
decodeErrorMsg(const std::vector<uint8_t> &payload, ErrorMsg &out)
{
    if (payload.size() < 8)
        return NetCode::BadPayload;
    const uint32_t code = getU32(payload.data());
    const uint32_t detail_len = getU32(payload.data() + 4);
    if (code < static_cast<uint32_t>(ServeError::Overloaded) ||
        code > static_cast<uint32_t>(ServeError::Internal))
        return NetCode::BadPayload;
    if (payload.size() != 8 + size_t{detail_len})
        return NetCode::BadPayload;
    out.code = static_cast<ServeError>(code);
    out.detail.assign(reinterpret_cast<const char *>(payload.data()) + 8,
                      detail_len);
    return NetCode::Ok;
}

NetCode
decodeStatsMsg(const std::vector<uint8_t> &payload, StatsMsg &out)
{
    if (payload.size() != 40)
        return NetCode::BadPayload;
    out.queueDepth = getU32(payload.data());
    out.inFlight = getU32(payload.data() + 4);
    out.capacityPages = getU32(payload.data() + 8);
    out.usedPages = getU32(payload.data() + 12);
    out.pledgedPages = getU32(payload.data() + 16);
    out.draining = getU32(payload.data() + 20);
    out.requestsServed = getU64(payload.data() + 24);
    out.tokensStreamed = getU64(payload.data() + 32);
    return NetCode::Ok;
}

bool
FrameDecoder::feed(const uint8_t *data, size_t bytes)
{
    if (state_ != NetCode::Ok)
        return false;
    // Drop the consumed prefix before appending so the buffer stays
    // bounded by one maximal frame plus one read chunk.
    if (pos_ > 0) {
        buf_.erase(buf_.begin(), buf_.begin() + static_cast<ptrdiff_t>(pos_));
        pos_ = 0;
    }
    buf_.insert(buf_.end(), data, data + bytes);
    return true;
}

NetCode
FrameDecoder::next(Frame &out)
{
    if (state_ != NetCode::Ok)
        return state_;
    const size_t avail = buf_.size() - pos_;
    if (avail < kFrameHeaderBytes)
        return NetCode::NeedMore;
    const uint8_t *hdr = buf_.data() + pos_;
    if (getU32(hdr) != kNetMagic)
        return state_ = NetCode::BadMagic;
    const uint8_t type = hdr[4];
    if (type < static_cast<uint8_t>(FrameType::Request) ||
        type > static_cast<uint8_t>(FrameType::Stats))
        return state_ = NetCode::BadType;
    const uint32_t payload_bytes = getU32(hdr + 13);
    // Refuse hostile lengths before their payload is ever buffered:
    // this caps the decoder's memory and the later allocation.
    if (payload_bytes > kMaxFramePayload)
        return state_ = NetCode::FrameTooLarge;
    const size_t wire = frameWireBytes(payload_bytes);
    if (avail < wire)
        return NetCode::NeedMore;
    const uint32_t want_crc = getU32(hdr + wire - 4);
    if (want_crc != crc32(hdr, wire - 4))
        return state_ = NetCode::BadCrc;
    out.type = static_cast<FrameType>(type);
    out.requestId = getU64(hdr + 5);
    out.payload.assign(hdr + kFrameHeaderBytes,
                       hdr + kFrameHeaderBytes + payload_bytes);
    pos_ += wire;
    return NetCode::Ok;
}

} // namespace msq
