#include "net/fault.h"

namespace msq {

bool
FaultInjector::onConnect()
{
    ++decisions_;
    if (rng_.bernoulli(config_.connectFailProb)) {
        ++faults_;
        return false;
    }
    return true;
}

FaultDecision
FaultInjector::onSend(size_t bytes)
{
    ++decisions_;
    FaultDecision d;
    // One draw per branch in a fixed order, so the schedule is a pure
    // function of the seed and the call sequence.
    if (rng_.bernoulli(config_.sendSeverProb)) {
        d.action = FaultAction::Sever;
        ++faults_;
        return d;
    }
    if (rng_.bernoulli(config_.sendTruncateProb)) {
        d.action = FaultAction::Truncate;
        d.keepBytes = bytes > 0 ? rng_.uniformInt(bytes) : 0;
        ++faults_;
        return d;
    }
    if (rng_.bernoulli(config_.delayProb)) {
        d.action = FaultAction::Delay;
        d.delayMs = static_cast<uint32_t>(
            rng_.uniformInt(config_.maxDelayMs + 1));
        ++faults_;
        return d;
    }
    return d;
}

FaultDecision
FaultInjector::onRecv()
{
    ++decisions_;
    FaultDecision d;
    if (rng_.bernoulli(config_.recvSeverProb)) {
        d.action = FaultAction::Sever;
        ++faults_;
        return d;
    }
    if (rng_.bernoulli(config_.delayProb)) {
        d.action = FaultAction::Delay;
        d.delayMs = static_cast<uint32_t>(
            rng_.uniformInt(config_.maxDelayMs + 1));
        ++faults_;
        return d;
    }
    return d;
}

} // namespace msq
