/**
 * @file
 * Thin RAII socket layer under the serving frontend: listen/connect
 * helpers, EINTR-hardened full-buffer send, and the nonblocking
 * send/recv primitives the poll workers build on.
 *
 * Everything here returns typed results; nothing throws. SIGPIPE is
 * avoided structurally (MSG_NOSIGNAL on every send) so a peer closing
 * mid-stream surfaces as a write error, never a signal.
 */

#ifndef MSQ_NET_SOCKET_H
#define MSQ_NET_SOCKET_H

#include <cstddef>
#include <cstdint>
#include <utility>

namespace msq {

/** Owning file-descriptor wrapper: closes on destruction, move-only. */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    ~Socket() { reset(); }

    Socket(Socket &&other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
    Socket &
    operator=(Socket &&other) noexcept
    {
        if (this != &other) {
            reset();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;

    int fd() const { return fd_; }
    bool valid() const { return fd_ >= 0; }

    /** Close now (idempotent). */
    void reset();

    /** Give up ownership without closing. */
    int
    release()
    {
        int fd = fd_;
        fd_ = -1;
        return fd;
    }

  private:
    int fd_ = -1;
};

/** Outcome of a nonblocking send/recv attempt. */
enum class IoWait
{
    Ready,  ///< made progress (bytes > 0)
    Again,  ///< would block; poll and retry
    Closed, ///< orderly EOF (recv only)
    Error,  ///< connection is dead
};

/**
 * Bind + listen on 127.0.0.1:`port` with SO_REUSEADDR. Port 0 picks an
 * ephemeral port; `boundPort` receives the actual one either way.
 * Returns an invalid Socket on failure.
 */
Socket tcpListen(uint16_t port, uint16_t &boundPort, int backlog = 64);

/** Blocking connect to 127.0.0.1:`port`. Invalid Socket on failure. */
Socket tcpConnect(uint16_t port);

/**
 * Connect to 127.0.0.1:`port`, giving up after `deadline_ms`. The
 * connect runs nonblocking under a poll loop that re-arms across
 * EINTR with the remaining time recomputed from the monotonic clock,
 * so a signal storm cannot extend the deadline and a black-holed peer
 * cannot block forever (health probes and failover connects depend on
 * both). The returned socket is back in blocking mode with
 * TCP_NODELAY set; invalid on failure or timeout.
 */
Socket connectWithDeadline(uint16_t port, uint32_t deadline_ms);

/** Accept one connection; Again when no pending connection. */
IoWait tcpAccept(int listenFd, Socket &out);

/** Switch a descriptor to nonblocking mode. */
bool setNonBlocking(int fd);

/**
 * Blocking send of the whole buffer (EINTR-retried, MSG_NOSIGNAL).
 * Used by the client and by tests; the server's workers use the
 * nonblocking variant below instead so one slow peer cannot stall
 * them.
 */
bool sendFully(int fd, const void *buf, size_t bytes);

/**
 * Nonblocking send attempt: writes as much as the kernel accepts.
 * `sent` receives the byte count on Ready.
 */
IoWait sendSome(int fd, const void *buf, size_t bytes, size_t &sent);

/** Nonblocking recv attempt; `got` receives the byte count on Ready. */
IoWait recvSome(int fd, void *buf, size_t bytes, size_t &got);

/**
 * Self-pipe for waking a poll loop: `fds.first` is the read end (add
 * it to the poll set), `fds.second` the write end. Both nonblocking.
 */
bool makeWakePipe(std::pair<int, int> &fds);

/** Write one byte to a wake pipe (best-effort, never blocks). */
void pokeWakePipe(int writeFd);

/** Drain all pending bytes from a wake pipe's read end. */
void drainWakePipe(int readFd);

} // namespace msq

#endif // MSQ_NET_SOCKET_H
