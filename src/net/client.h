/**
 * @file
 * Blocking client for the serving frontend: submits one generation,
 * consumes the token stream, verifies end-to-end integrity (index
 * order, token count, and the Done frame's stream fold), and retries
 * transient failures — connection loss, overload, server drain — with
 * capped exponential backoff.
 *
 * Backoff jitter comes from a seeded `Rng` (common/rng.h), so a
 * client's retry schedule is a pure function of its seed and the
 * failures it saw — the chaos harness replays runs bit-for-bit. An
 * optional `FaultInjector` sits between the client and its socket,
 * deterministically refusing connects and severing/truncating/delaying
 * transfers.
 *
 * Retry semantics: the protocol has no resume, so each attempt
 * restarts the stream from token zero; partial tokens from a failed
 * attempt are discarded. The server's decode determinism makes every
 * successful attempt byte-identical, which the chaos tests assert
 * through the stream fold.
 */

#ifndef MSQ_NET_CLIENT_H
#define MSQ_NET_CLIENT_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "net/fault.h"
#include "net/frame.h"

namespace msq {

/** Client transport and retry knobs. */
struct ClientConfig
{
    uint16_t port = 0;          ///< server port (required)
    uint32_t maxAttempts = 5;   ///< total tries per generate()
    uint32_t backoffBaseMs = 5; ///< first retry delay
    uint32_t backoffCapMs = 100; ///< exponential growth cap
    uint32_t recvTimeoutMs = 30000; ///< per-poll receive deadline
    uint64_t seed = 1;          ///< backoff-jitter rng seed
};

/**
 * Cumulative transport counters across a client's lifetime. The load
 * generator aggregates these across workers and the chaos tests
 * assert on them (a SIGKILLed replica must surface as retries /
 * failovers here, never as a corrupted stream).
 */
struct ClientStats
{
    uint64_t attempts = 0;       ///< connection attempts, all calls
    uint64_t retries = 0;        ///< re-attempts after transient failure
    uint64_t reconnects = 0;     ///< successful connects after a failure
    uint64_t failovers = 0;      ///< generates that needed >1 attempt
    uint64_t backoffSleeps = 0;  ///< retry delays taken
    uint64_t backoffMsTotal = 0; ///< total milliseconds slept
    uint64_t connectionsLost = 0;
    uint64_t timeouts = 0;
    uint64_t rejectedOverloaded = 0;
    uint64_t rejectedShuttingDown = 0;
    uint64_t rejectedOther = 0; ///< terminal server rejections
};

/** Outcome of one generate() call. */
struct GenerateResult
{
    NetCode code = NetCode::Ok;
    ServeError serverError = ServeError::Internal; ///< when Rejected
    std::vector<uint32_t> tokens;
    uint64_t streamFold = 0; ///< server-reported fold (verified)
    uint32_t attempts = 0;   ///< connection attempts consumed
    double firstTokenMs = -1.0; ///< call start -> first token
    double totalMs = 0.0;       ///< call start -> completion
};

/** One serving-frontend client (single-threaded use). */
class NetClient
{
  public:
    explicit NetClient(const ClientConfig &config,
                       FaultInjector *faults = nullptr)
        : config_(config), rng_(config.seed), faults_(faults) {}

    /**
     * Run one generation to completion (or terminal failure). Retries
     * transient failures up to `maxAttempts`; `deadline_ms` rides the
     * request (0 = server default).
     */
    GenerateResult generate(const std::vector<uint32_t> &prompt,
                            uint32_t max_new_tokens,
                            uint32_t deadline_ms = 0);

    /**
     * One Stats query/reply exchange (no retries): the health probe.
     * Ok fills `out`; transport failures return their typed code.
     */
    NetCode queryStats(StatsMsg &out);

    /** Cumulative transport counters (see ClientStats). */
    const ClientStats &stats() const { return stats_; }

  private:
    /** One connection attempt; fills `out` on terminal outcomes. */
    NetCode attempt(const std::vector<uint8_t> &wire, uint64_t reqId,
                    GenerateResult &out, uint64_t epochNanos);

    ClientConfig config_;
    Rng rng_;
    FaultInjector *faults_;
    ClientStats stats_;
    uint64_t nextReqId_ = 1;
};

} // namespace msq

#endif // MSQ_NET_CLIENT_H
