#include "net/socket.h"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/clock.h"

namespace msq {

void
Socket::reset()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

Socket
tcpListen(uint16_t port, uint16_t &boundPort, int backlog)
{
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid())
        return Socket();

    int one = 1;
    ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(sock.fd(), reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0)
        return Socket();
    if (::listen(sock.fd(), backlog) != 0)
        return Socket();

    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(sock.fd(), reinterpret_cast<sockaddr *>(&bound),
                      &len) != 0)
        return Socket();
    boundPort = ntohs(bound.sin_port);
    return sock;
}

Socket
tcpConnect(uint16_t port)
{
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid())
        return Socket();

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);

    int rc;
    do {
        rc = ::connect(sock.fd(), reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0)
        return Socket();

    int one = 1;
    ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return sock;
}

Socket
connectWithDeadline(uint16_t port, uint32_t deadline_ms)
{
    Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
    if (!sock.valid() || !setNonBlocking(sock.fd()))
        return Socket();

    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);

    const uint64_t start = steadyNanos();
    int rc;
    do {
        rc = ::connect(sock.fd(), reinterpret_cast<sockaddr *>(&addr),
                       sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
        if (errno != EINPROGRESS)
            return Socket();
        // Await writability, recomputing the remaining budget on every
        // wakeup so EINTR cannot stretch the deadline.
        for (;;) {
            const double spent = elapsedMs(start);
            if (spent >= static_cast<double>(deadline_ms))
                return Socket();
            pollfd pfd;
            pfd.fd = sock.fd();
            pfd.events = POLLOUT;
            pfd.revents = 0;
            const int remain =
                static_cast<int>(static_cast<double>(deadline_ms) - spent);
            const int n = ::poll(&pfd, 1, remain > 0 ? remain : 1);
            if (n < 0) {
                if (errno == EINTR)
                    continue;
                return Socket();
            }
            if (n == 0)
                return Socket(); // timed out
            break;
        }
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
            err != 0)
            return Socket();
    }

    // Restore blocking mode for callers that use sendFully/recv loops.
    const int flags = ::fcntl(sock.fd(), F_GETFL, 0);
    if (flags < 0 ||
        ::fcntl(sock.fd(), F_SETFL, flags & ~O_NONBLOCK) != 0)
        return Socket();
    int one = 1;
    ::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return sock;
}

IoWait
tcpAccept(int listenFd, Socket &out)
{
    for (;;) {
        const int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd >= 0) {
            int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
            out = Socket(fd);
            return IoWait::Ready;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return IoWait::Again;
        return IoWait::Error;
    }
}

bool
setNonBlocking(int fd)
{
    const int flags = ::fcntl(fd, F_GETFL, 0);
    return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

bool
sendFully(int fd, const void *buf, size_t bytes)
{
    const uint8_t *p = static_cast<const uint8_t *>(buf);
    size_t done = 0;
    while (done < bytes) {
        const ssize_t n =
            ::send(fd, p + done, bytes - done, MSG_NOSIGNAL);
        if (n >= 0) {
            done += static_cast<size_t>(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        return false;
    }
    return true;
}

IoWait
sendSome(int fd, const void *buf, size_t bytes, size_t &sent)
{
    sent = 0;
    for (;;) {
        const ssize_t n = ::send(fd, buf, bytes, MSG_NOSIGNAL);
        if (n >= 0) {
            sent = static_cast<size_t>(n);
            return IoWait::Ready;
        }
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return IoWait::Again;
        return IoWait::Error;
    }
}

IoWait
recvSome(int fd, void *buf, size_t bytes, size_t &got)
{
    got = 0;
    for (;;) {
        const ssize_t n = ::recv(fd, buf, bytes, 0);
        if (n > 0) {
            got = static_cast<size_t>(n);
            return IoWait::Ready;
        }
        if (n == 0)
            return IoWait::Closed;
        if (errno == EINTR)
            continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK)
            return IoWait::Again;
        return IoWait::Error;
    }
}

bool
makeWakePipe(std::pair<int, int> &fds)
{
    int raw[2];
    if (::pipe(raw) != 0)
        return false;
    if (!setNonBlocking(raw[0]) || !setNonBlocking(raw[1])) {
        ::close(raw[0]);
        ::close(raw[1]);
        return false;
    }
    fds = {raw[0], raw[1]};
    return true;
}

void
pokeWakePipe(int writeFd)
{
    const uint8_t byte = 1;
    ssize_t rc;
    do {
        rc = ::write(writeFd, &byte, 1);
    } while (rc < 0 && errno == EINTR);
    // EAGAIN means the pipe already holds a pending wakeup — fine.
}

void
drainWakePipe(int readFd)
{
    uint8_t scratch[64];
    for (;;) {
        const ssize_t n = ::read(readFd, scratch, sizeof(scratch));
        if (n > 0)
            continue;
        if (n < 0 && errno == EINTR)
            continue;
        return;
    }
}

} // namespace msq
