#include "cluster/controller.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <deque>
#include <map>
#include <thread>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "common/mutex.h"
#include "net/socket.h"
#include "serve/clock.h"

namespace msq {

namespace {

/** One client connection (proxy-thread-owned). */
struct ClientConn
{
    uint64_t id = 0;
    Socket sock;
    FrameDecoder decoder;
    std::vector<uint8_t> outBuf;
    size_t outPos = 0;
    bool closed = false;
};

using ClientPtr = std::shared_ptr<ClientConn>;

/** One admitted request's routing state. `delivered` is the count of
 *  token indices already relayed to the client: on failover the
 *  replayed stream's first `delivered` tokens are suppressed, which
 *  keeps the client-visible stream gapless (and exact, by decode
 *  determinism). */
struct Route
{
    ClientPtr client;
    uint64_t clientReqId = 0;
    RequestMsg msg; ///< kept verbatim for replay
    uint32_t delivered = 0;
    uint32_t attempts = 0;      ///< dispatches so far
    int replica = -1;           ///< -1 = awaiting assignment
    uint64_t upstreamId = 0;    ///< controller-chosen id on the link
    uint64_t notBeforeNanos = 0; ///< redispatch pacing after OVERLOADED
};

/** One upstream connection to a replica slot. */
struct Link
{
    uint64_t generation = 0; ///< endpoint generation this socket is to
    uint16_t port = 0;
    Socket sock;
    FrameDecoder decoder;
    std::vector<uint8_t> outBuf;
    size_t outPos = 0;
    bool connected = false;
    uint64_t lastQueueDepth = 0; ///< probe snapshot, routing tiebreak
    std::map<uint64_t, uint64_t> active; ///< upstreamId -> routeId
};

/** Flush as much of `outBuf` as the socket accepts. False when the
 *  connection is dead. */
bool
flushBuffer(Socket &sock, std::vector<uint8_t> &outBuf, size_t &outPos)
{
    while (outPos < outBuf.size()) {
        size_t sent = 0;
        const IoWait w = sendSome(sock.fd(), outBuf.data() + outPos,
                                  outBuf.size() - outPos, sent);
        if (w == IoWait::Ready) {
            outPos += sent;
            continue;
        }
        if (w == IoWait::Again)
            return true;
        return false;
    }
    outBuf.clear();
    outPos = 0;
    return true;
}

} // namespace

struct ClusterController::Impl
{
    ReplicaSupervisor &sup;
    ControllerConfig cfg;

    Socket listenSock;
    uint16_t boundPort = 0;
    std::pair<int, int> wake{-1, -1};
    std::thread proxy;

    std::atomic<bool> running{false};
    std::atomic<bool> draining{false};

    Mutex mu;
    CondVar cv;
    bool drainedIdle MSQ_GUARDED_BY(mu) = false;

    // Counters (proxy thread writes, stats() reads).
    std::atomic<uint64_t> accepted{0};
    std::atomic<uint64_t> requestsAdmitted{0};
    std::atomic<uint64_t> requestsCompleted{0};
    std::atomic<uint64_t> requestsFailed{0};
    std::atomic<uint64_t> rejectedBusy{0};
    std::atomic<uint64_t> rejectedShutdown{0};
    std::atomic<uint64_t> failovers{0};
    std::atomic<uint64_t> replicaDeaths{0};
    std::atomic<uint64_t> tokensRelayed{0};
    std::atomic<uint64_t> suppressedTokens{0};
    std::atomic<uint64_t> droppedStreams{0};
    std::atomic<uint64_t> clientFaults{0};

    mutable Mutex statsMu;
    std::vector<uint64_t> perServed MSQ_GUARDED_BY(statsMu);
    std::vector<uint64_t> perActive MSQ_GUARDED_BY(statsMu);

    // --- proxy-thread-owned routing state ---------------------------
    std::vector<ClientPtr> clients;
    std::vector<Link> links;
    std::map<uint64_t, Route> routes; ///< routeId -> Route (ordered)
    std::deque<uint64_t> pending;     ///< routeIds awaiting a replica
    uint64_t nextClientId = 1;
    uint64_t nextRouteId = 1;
    uint64_t nextUpstreamId = 1;

    Impl(ReplicaSupervisor &s, const ControllerConfig &c) : sup(s), cfg(c) {}

    // --- client output ----------------------------------------------

    void
    appendClient(const ClientPtr &client, const std::vector<uint8_t> &bytes)
    {
        if (client->closed)
            return;
        client->outBuf.insert(client->outBuf.end(), bytes.begin(),
                              bytes.end());
        if (client->outBuf.size() - client->outPos > cfg.maxOutBufBytes) {
            // Slow-client isolation, same policy as the server: cut it
            // loose rather than buffer without bound.
            client->closed = true;
        }
    }

    void
    sendClientError(const ClientPtr &client, uint64_t reqId,
                    ServeError code, const char *detail)
    {
        ErrorMsg msg;
        msg.code = code;
        msg.detail = detail;
        appendClient(client, encodeErrorFrame(reqId, msg));
    }

    // --- routing ----------------------------------------------------

    /** Put a route back on the pending queue for another replica
     *  (replica death or OVERLOADED). Counts as a failover when the
     *  route had already been dispatched once. */
    void
    requeueRoute(uint64_t routeId, Route &route, uint64_t paceNanos)
    {
        if (route.attempts > 0)
            failovers.fetch_add(1, std::memory_order_relaxed);
        route.replica = -1;
        route.upstreamId = 0;
        route.notBeforeNanos = paceNanos;
        pending.push_back(routeId);
    }

    /** Pick the connected link with the fewest live routes (tiebreak:
     *  lower probed queue depth, then lower index — deterministic).
     *  -1 when nothing is connected. */
    int
    pickLink() const
    {
        int best = -1;
        for (size_t i = 0; i < links.size(); ++i) {
            const Link &ln = links[i];
            if (!ln.connected)
                continue;
            if (best < 0)
                best = static_cast<int>(i);
            else {
                const Link &b = links[static_cast<size_t>(best)];
                if (ln.active.size() < b.active.size() ||
                    (ln.active.size() == b.active.size() &&
                     ln.lastQueueDepth < b.lastQueueDepth))
                    best = static_cast<int>(i);
            }
        }
        return best;
    }

    /** Dispatch every due pending route to the least-loaded connected
     *  link; exhaust routes that have burned all their attempts. */
    void
    assignPending()
    {
        if (pending.empty())
            return;
        const uint64_t now = steadyNanos();
        std::deque<uint64_t> leftover;
        while (!pending.empty()) {
            const uint64_t routeId = pending.front();
            pending.pop_front();
            auto it = routes.find(routeId);
            if (it == routes.end())
                continue; // cancelled while pending
            Route &route = it->second;
            if (route.client->closed) {
                clientFaults.fetch_add(1, std::memory_order_relaxed);
                routes.erase(it);
                continue;
            }
            if (route.attempts >= cfg.maxAttempts) {
                sendClientError(route.client, route.clientReqId,
                                ServeError::Overloaded,
                                "no replica could serve the request");
                requestsFailed.fetch_add(1, std::memory_order_relaxed);
                routes.erase(it);
                continue;
            }
            if (route.notBeforeNanos > now) {
                leftover.push_back(routeId);
                continue;
            }
            const int idx = pickLink();
            if (idx < 0) {
                leftover.push_back(routeId); // no replica up right now
                continue;
            }
            Link &ln = links[static_cast<size_t>(idx)];
            route.replica = idx;
            route.upstreamId = nextUpstreamId++;
            ++route.attempts;
            ln.active[route.upstreamId] = routeId;
            const std::vector<uint8_t> wire =
                encodeRequestFrame(route.upstreamId, route.msg);
            ln.outBuf.insert(ln.outBuf.end(), wire.begin(), wire.end());
        }
        pending = std::move(leftover);
    }

    /** Drop a link and fail its routes over. */
    void
    linkDown(size_t idx)
    {
        Link &ln = links[idx];
        if (!ln.connected)
            return;
        replicaDeaths.fetch_add(1, std::memory_order_relaxed);
        ln.sock.reset();
        ln.connected = false;
        ln.decoder = FrameDecoder();
        ln.outBuf.clear();
        ln.outPos = 0;
        const uint64_t now = steadyNanos();
        for (const auto &entry : ln.active) {
            auto it = routes.find(entry.second);
            if (it == routes.end())
                continue;
            requeueRoute(entry.second, it->second, now);
        }
        ln.active.clear();
    }

    /** Reconcile links with the supervisor's endpoint snapshot: drop
     *  links whose slot was respawned (generation bump), connect to
     *  healthy slots we are not linked to (re-enlisting respawned
     *  replicas), refresh routing stats. */
    void
    refreshLinks()
    {
        const std::vector<ReplicaEndpoint> eps = sup.endpoints();
        if (links.size() != eps.size())
            links.resize(eps.size());
        for (size_t i = 0; i < eps.size(); ++i) {
            Link &ln = links[i];
            ln.lastQueueDepth = eps[i].stats.queueDepth;
            if (ln.connected && ln.generation != eps[i].generation)
                linkDown(i); // stale socket to a replaced process
            if (!ln.connected && eps[i].healthy && eps[i].port != 0) {
                Socket sock =
                    connectWithDeadline(eps[i].port,
                                        cfg.linkConnectTimeoutMs);
                if (!sock.valid())
                    continue;
                setNonBlocking(sock.fd());
                ln.sock = std::move(sock);
                ln.port = eps[i].port;
                ln.generation = eps[i].generation;
                ln.decoder = FrameDecoder();
                ln.outBuf.clear();
                ln.outPos = 0;
                ln.connected = true;
            }
        }
    }

    // --- upstream frames --------------------------------------------

    void
    handleUpstreamFrame(size_t idx, const Frame &frame)
    {
        Link &ln = links[idx];
        const auto actIt = ln.active.find(frame.requestId);
        if (actIt == ln.active.end())
            return; // stale stream from a cancelled/failed-over route
        const uint64_t routeId = actIt->second;
        auto it = routes.find(routeId);
        if (it == routes.end()) {
            ln.active.erase(actIt);
            return;
        }
        Route &route = it->second;

        switch (frame.type) {
          case FrameType::Token: {
            TokenMsg tm;
            if (decodeTokenMsg(frame.payload, tm) != NetCode::Ok)
                return;
            if (tm.index < route.delivered) {
                // Replay prefix of a failover: the client already has
                // this index. Determinism makes the suppressed token
                // identical to the delivered one.
                suppressedTokens.fetch_add(1, std::memory_order_relaxed);
                return;
            }
            if (tm.index > route.delivered) {
                // A gap would corrupt the client stream; treat the
                // replica as broken and replay elsewhere.
                ln.active.erase(actIt);
                requeueRoute(routeId, route, steadyNanos());
                return;
            }
            // Counter before the frame is buffered: a client that has
            // read this token must find it already reflected in any
            // stats snapshot it then requests.
            tokensRelayed.fetch_add(1, std::memory_order_relaxed);
            appendClient(route.client,
                         encodeTokenFrame(route.clientReqId, tm));
            ++route.delivered;
            return;
          }
          case FrameType::Done: {
            DoneMsg dm;
            if (decodeDoneMsg(frame.payload, dm) != NetCode::Ok)
                return;
            requestsCompleted.fetch_add(1, std::memory_order_relaxed);
            {
                MutexLock lock(statsMu);
                if (perServed.size() < links.size())
                    perServed.resize(links.size(), 0);
                ++perServed[idx];
            }
            appendClient(route.client,
                         encodeDoneFrame(route.clientReqId, dm));
            ln.active.erase(actIt);
            routes.erase(it);
            return;
          }
          case FrameType::Error: {
            ErrorMsg em;
            if (decodeErrorMsg(frame.payload, em) != NetCode::Ok)
                return;
            ln.active.erase(actIt);
            if (em.code == ServeError::Overloaded ||
                em.code == ServeError::ShuttingDown) {
                // Transient on this replica: try another one, paced so
                // a uniformly saturated fleet is not hammered.
                requeueRoute(routeId, route,
                             steadyNanos() +
                                 uint64_t{cfg.pollMs} * 1000000ull *
                                     route.attempts);
                return;
            }
            appendClient(route.client,
                         encodeErrorFrame(route.clientReqId, em));
            requestsFailed.fetch_add(1, std::memory_order_relaxed);
            routes.erase(it);
            return;
          }
          default:
            return; // replicas never send client-to-server frames
        }
    }

    // --- client frames ----------------------------------------------

    /** Returns false when the client is out of protocol (close it). */
    bool
    handleClientFrame(const ClientPtr &client, const Frame &frame)
    {
        switch (frame.type) {
          case FrameType::Request: {
            RequestMsg msg;
            if (decodeRequestMsg(frame.payload, msg) != NetCode::Ok) {
                sendClientError(client, frame.requestId,
                                ServeError::BadRequest,
                                "malformed request payload");
                return true;
            }
            if (draining.load(std::memory_order_acquire)) {
                rejectedShutdown.fetch_add(1, std::memory_order_relaxed);
                sendClientError(client, frame.requestId,
                                ServeError::ShuttingDown,
                                "controller is draining");
                return true;
            }
            if (routes.size() >= cfg.maxInflight) {
                rejectedBusy.fetch_add(1, std::memory_order_relaxed);
                sendClientError(client, frame.requestId,
                                ServeError::Overloaded,
                                "controller admission cap reached");
                return true;
            }
            const uint64_t routeId = nextRouteId++;
            Route route;
            route.client = client;
            route.clientReqId = frame.requestId;
            route.msg = std::move(msg);
            routes.emplace(routeId, std::move(route));
            pending.push_back(routeId);
            requestsAdmitted.fetch_add(1, std::memory_order_relaxed);
            return true;
          }
          case FrameType::Cancel: {
            for (auto it = routes.begin(); it != routes.end(); ++it) {
                Route &route = it->second;
                if (route.client.get() != client.get() ||
                    route.clientReqId != frame.requestId)
                    continue;
                if (route.replica >= 0) {
                    Link &ln = links[static_cast<size_t>(route.replica)];
                    ln.active.erase(route.upstreamId);
                    if (ln.connected) {
                        const std::vector<uint8_t> wire =
                            encodeCancelFrame(route.upstreamId);
                        ln.outBuf.insert(ln.outBuf.end(), wire.begin(),
                                         wire.end());
                    }
                }
                routes.erase(it);
                break;
            }
            return true;
          }
          case FrameType::Stats: {
            if (!frame.payload.empty())
                return false;
            StatsMsg sm;
            sm.queueDepth = static_cast<uint32_t>(pending.size());
            sm.inFlight = static_cast<uint32_t>(routes.size());
            sm.draining =
                draining.load(std::memory_order_acquire) ? 1u : 0u;
            sm.requestsServed =
                requestsCompleted.load(std::memory_order_relaxed);
            sm.tokensStreamed =
                tokensRelayed.load(std::memory_order_relaxed);
            appendClient(client, encodeStatsFrame(frame.requestId, sm));
            return true;
          }
          default:
            return false; // server-to-client frames from a "client"
        }
    }

    // --- socket IO --------------------------------------------------

    void
    readLink(size_t idx)
    {
        Link &ln = links[idx];
        uint8_t buf[4096];
        for (;;) {
            size_t got = 0;
            const IoWait w = recvSome(ln.sock.fd(), buf, sizeof(buf), got);
            if (w == IoWait::Again)
                return;
            if (w != IoWait::Ready) {
                linkDown(idx);
                return;
            }
            ln.decoder.feed(buf, got);
            Frame frame;
            for (;;) {
                const NetCode code = ln.decoder.next(frame);
                if (code == NetCode::NeedMore)
                    break;
                if (code != NetCode::Ok) {
                    linkDown(idx); // undecodable upstream: drop it
                    return;
                }
                handleUpstreamFrame(idx, frame);
                if (!ln.connected)
                    return; // a frame handler dropped the link
            }
        }
    }

    void
    readClient(const ClientPtr &client)
    {
        uint8_t buf[4096];
        for (;;) {
            size_t got = 0;
            const IoWait w =
                recvSome(client->sock.fd(), buf, sizeof(buf), got);
            if (w == IoWait::Again)
                return;
            if (w != IoWait::Ready) {
                client->closed = true;
                return;
            }
            client->decoder.feed(buf, got);
            Frame frame;
            for (;;) {
                const NetCode code = client->decoder.next(frame);
                if (code == NetCode::NeedMore)
                    break;
                if (code != NetCode::Ok ||
                    !handleClientFrame(client, frame)) {
                    client->closed = true;
                    return;
                }
            }
        }
    }

    /** Cancel upstream work and drop routes of a vanished client. */
    void
    retireClientRoutes(const ClientConn *client)
    {
        for (auto it = routes.begin(); it != routes.end();) {
            Route &route = it->second;
            if (route.client.get() != client) {
                ++it;
                continue;
            }
            if (route.replica >= 0) {
                Link &ln = links[static_cast<size_t>(route.replica)];
                ln.active.erase(route.upstreamId);
                if (ln.connected) {
                    const std::vector<uint8_t> wire =
                        encodeCancelFrame(route.upstreamId);
                    ln.outBuf.insert(ln.outBuf.end(), wire.begin(),
                                     wire.end());
                }
            }
            clientFaults.fetch_add(1, std::memory_order_relaxed);
            it = routes.erase(it);
        }
    }

    void
    acceptClients()
    {
        for (;;) {
            Socket sock;
            const IoWait w = tcpAccept(listenSock.fd(), sock);
            if (w != IoWait::Ready)
                return;
            setNonBlocking(sock.fd());
            auto client = std::make_shared<ClientConn>();
            client->id = nextClientId++;
            client->sock = std::move(sock);
            clients.push_back(std::move(client));
            accepted.fetch_add(1, std::memory_order_relaxed);
        }
    }

    bool
    allClientsFlushed() const
    {
        for (const ClientPtr &client : clients)
            if (!client->closed && client->outPos < client->outBuf.size())
                return false;
        return true;
    }

    // --- the proxy loop ---------------------------------------------

    void
    proxyLoop()
    {
        std::vector<pollfd> pfds;
        while (running.load(std::memory_order_acquire)) {
            refreshLinks();
            assignPending();

            pfds.clear();
            pollfd wk;
            wk.fd = wake.first;
            wk.events = POLLIN;
            wk.revents = 0;
            pfds.push_back(wk);
            pollfd ls;
            ls.fd = listenSock.fd();
            ls.events = POLLIN;
            ls.revents = 0;
            pfds.push_back(ls);
            const size_t linkBase = pfds.size();
            for (const Link &ln : links) {
                pollfd p;
                p.fd = ln.connected ? ln.sock.fd() : -1; // -1: ignored
                p.events = POLLIN;
                if (ln.connected && ln.outPos < ln.outBuf.size())
                    p.events |= POLLOUT;
                p.revents = 0;
                pfds.push_back(p);
            }
            const size_t clientBase = pfds.size();
            const size_t polledClients = clients.size();
            for (const ClientPtr &client : clients) {
                pollfd p;
                p.fd = client->closed ? -1 : client->sock.fd();
                p.events = POLLIN;
                if (!client->closed &&
                    client->outPos < client->outBuf.size())
                    p.events |= POLLOUT;
                p.revents = 0;
                pfds.push_back(p);
            }

            const int rc =
                ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                       static_cast<int>(cfg.pollMs));
            if (rc < 0 && errno != EINTR)
                break;
            if (pfds[0].revents & POLLIN)
                drainWakePipe(wake.first);
            if (pfds[1].revents & POLLIN)
                acceptClients();

            for (size_t i = 0; i < links.size(); ++i) {
                Link &ln = links[i];
                if (!ln.connected)
                    continue;
                const short rev = rc > 0 ? pfds[linkBase + i].revents : 0;
                if ((rev & POLLOUT) || ln.outPos < ln.outBuf.size())
                    if (!flushBuffer(ln.sock, ln.outBuf, ln.outPos)) {
                        linkDown(i);
                        continue;
                    }
                if (rev & POLLIN)
                    readLink(i);
                if (ln.connected && (rev & (POLLERR | POLLHUP)))
                    linkDown(i);
            }

            for (size_t i = 0; i < clients.size(); ++i) {
                const ClientPtr &client = clients[i];
                if (client->closed)
                    continue;
                // Clients accepted this very iteration have no pollfd.
                const short rev = (rc > 0 && i < polledClients)
                                      ? pfds[clientBase + i].revents
                                      : 0;
                if ((rev & POLLOUT) ||
                    client->outPos < client->outBuf.size())
                    if (!flushBuffer(client->sock, client->outBuf,
                                     client->outPos))
                        client->closed = true;
                if (!client->closed && (rev & POLLIN))
                    readClient(client);
                if (!client->closed && (rev & (POLLERR | POLLHUP)))
                    client->closed = true;
            }

            // Retire closed clients and their routes.
            for (size_t i = 0; i < clients.size();) {
                if (!clients[i]->closed) {
                    ++i;
                    continue;
                }
                retireClientRoutes(clients[i].get());
                clients[i]->sock.reset();
                clients.erase(clients.begin() +
                              static_cast<ptrdiff_t>(i));
            }

            // Publish per-replica live route counts for stats().
            {
                MutexLock lock(statsMu);
                if (perActive.size() != links.size())
                    perActive.assign(links.size(), 0);
                for (size_t i = 0; i < links.size(); ++i)
                    perActive[i] = links[i].active.size();
            }

            if (draining.load(std::memory_order_acquire) &&
                routes.empty() && pending.empty() && allClientsFlushed()) {
                MutexLock lock(mu);
                if (!drainedIdle) {
                    drainedIdle = true;
                    cv.notifyAll();
                }
            }
        }

        // Teardown: any live route whose client is still attached ends
        // with neither Done nor Error — a dropped stream, the number
        // the chaos gate pins at zero after a drain.
        for (const auto &entry : routes) {
            if (!entry.second.client->closed)
                droppedStreams.fetch_add(1, std::memory_order_relaxed);
        }
        routes.clear();
        pending.clear();
        for (Link &ln : links) {
            ln.sock.reset();
            ln.connected = false;
            ln.active.clear();
        }
        for (const ClientPtr &client : clients)
            client->sock.reset();
        clients.clear();
    }
};

ClusterController::ClusterController(ReplicaSupervisor &supervisor,
                                     const ControllerConfig &config)
    : impl_(std::make_unique<Impl>(supervisor, config))
{
}

ClusterController::~ClusterController()
{
    stop();
}

bool
ClusterController::start()
{
    Impl &s = *impl_;
    if (s.running.load(std::memory_order_acquire))
        return true;
    uint16_t bound = 0;
    s.listenSock = tcpListen(s.cfg.port, bound);
    if (!s.listenSock.valid())
        return false;
    if (!setNonBlocking(s.listenSock.fd()))
        return false;
    if (!makeWakePipe(s.wake))
        return false;
    s.boundPort = bound;
    s.draining.store(false, std::memory_order_release);
    {
        MutexLock lock(s.mu);
        s.drainedIdle = false;
    }
    s.running.store(true, std::memory_order_release);
    s.proxy = std::thread([this] { impl_->proxyLoop(); });
    return true;
}

uint16_t
ClusterController::boundPort() const
{
    return impl_->boundPort;
}

void
ClusterController::requestDrain()
{
    Impl &s = *impl_;
    s.draining.store(true, std::memory_order_release);
    pokeWakePipe(s.wake.second);
}

bool
ClusterController::drain()
{
    Impl &s = *impl_;
    if (!s.running.load(std::memory_order_acquire))
        return s.droppedStreams.load(std::memory_order_relaxed) == 0;
    requestDrain();
    {
        MutexLock lock(s.mu);
        while (!s.drainedIdle &&
               s.running.load(std::memory_order_acquire))
            s.cv.wait(s.mu);
    }
    stop();
    return s.droppedStreams.load(std::memory_order_relaxed) == 0;
}

void
ClusterController::stop()
{
    Impl &s = *impl_;
    if (!s.running.exchange(false, std::memory_order_acq_rel))
        return;
    pokeWakePipe(s.wake.second);
    s.cv.notifyAll();
    if (s.proxy.joinable())
        s.proxy.join();
    s.cv.notifyAll(); // a drain() waiter sees running == false
    s.listenSock.reset();
    if (s.wake.first >= 0) {
        ::close(s.wake.first);
        ::close(s.wake.second);
        s.wake = {-1, -1};
    }
}

ControllerStats
ClusterController::stats() const
{
    const Impl &s = *impl_;
    ControllerStats out;
    out.accepted = s.accepted.load(std::memory_order_relaxed);
    out.requestsAdmitted =
        s.requestsAdmitted.load(std::memory_order_relaxed);
    out.requestsCompleted =
        s.requestsCompleted.load(std::memory_order_relaxed);
    out.requestsFailed = s.requestsFailed.load(std::memory_order_relaxed);
    out.rejectedBusy = s.rejectedBusy.load(std::memory_order_relaxed);
    out.rejectedShutdown =
        s.rejectedShutdown.load(std::memory_order_relaxed);
    out.failovers = s.failovers.load(std::memory_order_relaxed);
    out.replicaDeaths = s.replicaDeaths.load(std::memory_order_relaxed);
    out.tokensRelayed = s.tokensRelayed.load(std::memory_order_relaxed);
    out.suppressedTokens =
        s.suppressedTokens.load(std::memory_order_relaxed);
    out.droppedStreams = s.droppedStreams.load(std::memory_order_relaxed);
    out.clientFaults = s.clientFaults.load(std::memory_order_relaxed);
    {
        MutexLock lock(s.statsMu);
        out.perReplicaServed = s.perServed;
        out.perReplicaActive = s.perActive;
    }
    return out;
}

} // namespace msq
