/**
 * @file
 * ClusterController: a poll-based routing proxy that speaks the MSQN
 * wire protocol (net/frame.h) on both sides. Clients talk to it
 * exactly as they would to one model_server; behind it, requests are
 * routed to the least-loaded healthy replica from a
 * ReplicaSupervisor's endpoint snapshots and the replica's Token/Done
 * frames are relayed back under per-request bookkeeping.
 *
 * Failover: when a replica dies mid-stream (link drops) or answers
 * OVERLOADED, the controller resubmits the request — full prompt,
 * from token 0 — on another healthy replica and suppresses the token
 * indices the client already received, so the client-visible stream
 * is gapless and the Done frame's count/fold still verify. This is
 * only sound because decode is deterministic: the same prompt
 * produces the same tokens on every replica, whatever the thread
 * count, batch composition, or admission order (the contract PRs 5-9
 * enforce bit-for-bit; the cross-process chaos test asserts it
 * end-to-end through SIGKILL).
 *
 * Replica identity is (slot index, generation): a generation bump in
 * the endpoint snapshot means the supervisor respawned that slot, so
 * the controller drops the stale link, fails its routes over, and
 * re-enlists the fresh process once it connects.
 *
 * Threading: one proxy thread owns every socket, decoder, and routing
 * table (pure IO — no engine work happens here); control flags cross
 * through an annotated mutex and counters through atomics, mirroring
 * the ModelServer worker discipline.
 */

#ifndef MSQ_CLUSTER_CONTROLLER_H
#define MSQ_CLUSTER_CONTROLLER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "cluster/supervisor.h"

namespace msq {

/** Routing-proxy knobs. */
struct ControllerConfig
{
    uint16_t port = 0;           ///< client-facing (0 = ephemeral)
    size_t maxInflight = 64;     ///< admitted routes; beyond -> OVERLOADED
    uint32_t maxAttempts = 6;    ///< replica tries per request
    uint32_t linkConnectTimeoutMs = 250; ///< per replica connect
    uint32_t pollMs = 10;        ///< proxy loop granularity
    size_t maxOutBufBytes = 1u << 20; ///< per client; beyond -> cut loose
};

/** Proxy counters. `droppedStreams` is the invariant the chaos test
 *  pins at zero: a route may end in Done or in a typed Error, never
 *  silently. */
struct ControllerStats
{
    uint64_t accepted = 0;          ///< client connections
    uint64_t requestsAdmitted = 0;
    uint64_t requestsCompleted = 0; ///< Done relayed
    uint64_t requestsFailed = 0;    ///< terminal Error relayed
    uint64_t rejectedBusy = 0;      ///< admission-cap OVERLOADED
    uint64_t rejectedShutdown = 0;  ///< draining
    uint64_t failovers = 0;         ///< route moved to another replica
    uint64_t replicaDeaths = 0;     ///< upstream links dropped
    uint64_t tokensRelayed = 0;
    uint64_t suppressedTokens = 0;  ///< replayed, already delivered
    uint64_t droppedStreams = 0;    ///< ended with neither Done nor Error
    uint64_t clientFaults = 0;      ///< client vanished mid-stream
    std::vector<uint64_t> perReplicaServed; ///< Done frames per slot
    std::vector<uint64_t> perReplicaActive; ///< live routes per slot
};

/** The routing proxy. One instance fronts one ReplicaSupervisor. */
class ClusterController
{
  public:
    ClusterController(ReplicaSupervisor &supervisor,
                      const ControllerConfig &config);
    ~ClusterController();

    ClusterController(const ClusterController &) = delete;
    ClusterController &operator=(const ClusterController &) = delete;

    /** Bind the client-facing port and start the proxy thread. */
    bool start();

    /** Client-facing port (valid after start()). */
    uint16_t boundPort() const;

    /** Close admission: new Requests get ShuttingDown. */
    void requestDrain();

    /** Drain: admission closed, every admitted route reaches Done or
     *  a typed Error, every buffer flushes; then stop. True iff no
     *  stream was dropped. */
    bool drain();

    /** Hard stop: abandons live routes (they count as dropped unless
     *  their clients already vanished). */
    void stop();

    ControllerStats stats() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace msq

#endif // MSQ_CLUSTER_CONTROLLER_H
