/**
 * @file
 * Replica supervision for the cluster tier: fork/exec N `model_server`
 * processes (each binding an ephemeral port and loading the same
 * deployment), health-check them over the MSQN protocol's Stats frame,
 * and restart dead replicas with capped backoff.
 *
 * The supervisor owns the *processes*; it never touches request
 * traffic. The ClusterController (controller.h) polls
 * `endpoints()` for the live replica set and routes by the load
 * numbers the health probes bring back. A replica is addressed as
 * (index, generation): the index is its stable slot, the generation
 * increments on every respawn, so a router can tell "the replica on
 * port P died and came back" from "port P is still the same process"
 * without trusting port reuse.
 *
 * Port discovery: the child is spawned with port 0 and its stdout on a
 * pipe; the first `PORT <n>` line names the bound port
 * (examples/model_server.cpp prints it flushed, before any other
 * output can interleave). The pipe stays open and is drained every
 * monitor tick so a chatty child can never block on a full pipe.
 *
 * All timing flows through serve/clock.h (the determinism lint's
 * wall-clock rule); between fork and exec only async-signal-safe
 * calls run.
 */

#ifndef MSQ_CLUSTER_SUPERVISOR_H
#define MSQ_CLUSTER_SUPERVISOR_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include <sys/types.h>

#include "net/frame.h"

namespace msq {

/** Supervisor knobs. */
struct SupervisorConfig
{
    std::string serverBinary;    ///< path to the model_server binary
    std::string model = "TinyLM-decode";
    size_t replicas = 1;
    size_t ioWorkers = 2;        ///< per replica
    size_t maxQueue = 16;        ///< per replica admission queue
    unsigned threads = 1;        ///< MSQ_THREADS per replica
    size_t maxBatch = 8;         ///< per replica engine batch
    uint32_t spawnTimeoutMs = 20000; ///< deploy + bind + PORT line
    uint32_t probePeriodMs = 25;     ///< monitor tick
    uint32_t probeTimeoutMs = 500;   ///< connect + Stats round trip
    uint32_t probeFailLimit = 3;     ///< consecutive misses -> unhealthy
    uint32_t respawnBackoffBaseMs = 50;
    uint32_t respawnBackoffCapMs = 2000;
};

/** One replica slot as the router sees it. */
struct ReplicaEndpoint
{
    size_t index = 0;
    uint16_t port = 0;       ///< 0 while down / respawning
    uint64_t generation = 0; ///< bumps on every (re)spawn
    bool healthy = false;    ///< process up and answering probes
    StatsMsg stats;          ///< last probe snapshot
};

/** Supervision counters. */
struct SupervisorStats
{
    uint64_t spawns = 0;       ///< initial + respawns
    uint64_t respawns = 0;     ///< restarts after a death
    uint64_t deaths = 0;       ///< reaped child exits
    uint64_t kills = 0;        ///< killReplica() calls delivered
    uint64_t probes = 0;
    uint64_t probeFailures = 0;
};

/**
 * One Stats query/reply round trip against a replica under a single
 * deadline: the health probe. Shared by the supervisor's monitor and
 * by tests that want to interrogate a replica directly.
 */
bool probeReplicaStats(uint16_t port, uint32_t timeout_ms, StatsMsg &out);

/**
 * Process supervisor for a fixed-size replica set. start() spawns
 * every replica and blocks until each has reported its port; a
 * monitor thread then reaps deaths, respawns with capped backoff, and
 * health-checks via Stats probes. Thread-safe.
 */
class ReplicaSupervisor
{
  public:
    explicit ReplicaSupervisor(const SupervisorConfig &config);
    ~ReplicaSupervisor();

    ReplicaSupervisor(const ReplicaSupervisor &) = delete;
    ReplicaSupervisor &operator=(const ReplicaSupervisor &) = delete;

    /** Spawn all replicas (blocking until every port is known) and
     *  start the monitor. False if any replica fails to come up —
     *  everything already spawned is torn down. */
    bool start();

    /** Stop monitoring and terminate every replica: SIGTERM first
     *  (graceful drain), SIGKILL stragglers after `graceMs`. */
    void stop(uint32_t graceMs = 5000);

    /** Snapshot of every slot (routing input). */
    std::vector<ReplicaEndpoint> endpoints() const;

    /** SIGKILL one replica (chaos injection). The monitor reaps and
     *  respawns it. False when the slot has no live process. */
    bool killReplica(size_t index);

    /** Live pid of a slot, or -1 while it is down. */
    pid_t replicaPid(size_t index) const;

    SupervisorStats stats() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

} // namespace msq

#endif // MSQ_CLUSTER_SUPERVISOR_H
