#include "cluster/supervisor.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdlib>
#include <thread>
#include <utility>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

#include "common/mutex.h"
#include "net/socket.h"
#include "serve/clock.h"

namespace msq {

namespace {

/** Read-and-discard whatever the child printed since the last tick so
 *  it can never block on a full stdout pipe. */
void
drainChildOutput(int fd)
{
    char buf[512];
    for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n > 0)
            continue;
        if (n < 0 && errno == EINTR)
            continue;
        return; // EAGAIN (empty), EOF, or error: nothing more now
    }
}

/** Scrape the child's `PORT <n>` line from its stdout pipe (set
 *  nonblocking by the caller) under a deadline. */
bool
scrapePort(int fd, uint32_t timeout_ms, uint16_t &port)
{
    const uint64_t start = steadyNanos();
    std::string acc;
    char buf[256];
    for (;;) {
        size_t pos = 0;
        for (;;) {
            const size_t nl = acc.find('\n', pos);
            if (nl == std::string::npos)
                break;
            if (acc.compare(pos, 5, "PORT ") == 0) {
                const unsigned long v =
                    std::strtoul(acc.c_str() + pos + 5, nullptr, 10);
                if (v > 0 && v <= 65535) {
                    port = static_cast<uint16_t>(v);
                    return true;
                }
            }
            pos = nl + 1;
        }
        acc.erase(0, pos);

        const double spent = elapsedMs(start);
        if (spent >= static_cast<double>(timeout_ms))
            return false;
        pollfd pfd;
        pfd.fd = fd;
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int rc =
            ::poll(&pfd, 1,
                   static_cast<int>(static_cast<double>(timeout_ms) - spent));
        if (rc == 0)
            return false;
        if (rc < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n > 0) {
            acc.append(buf, static_cast<size_t>(n));
            continue;
        }
        if (n == 0)
            return false; // child died before printing its port
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
            continue;
        return false;
    }
}

} // namespace

/** One Stats query/reply round trip against a replica, all under one
 *  deadline. Used by the monitor's health probe (and shared with the
 *  controller through the endpoint snapshots it refreshes). */
bool
probeReplicaStats(uint16_t port, uint32_t timeout_ms, StatsMsg &out)
{
    const uint64_t start = steadyNanos();
    Socket sock = connectWithDeadline(port, timeout_ms);
    if (!sock.valid())
        return false;
    const std::vector<uint8_t> wire = encodeStatsQueryFrame(1);
    if (!sendFully(sock.fd(), wire.data(), wire.size()))
        return false;
    FrameDecoder decoder;
    uint8_t buf[256];
    for (;;) {
        Frame frame;
        const NetCode code = decoder.next(frame);
        if (code == NetCode::NeedMore) {
            const double spent = elapsedMs(start);
            if (spent >= static_cast<double>(timeout_ms))
                return false;
            pollfd pfd;
            pfd.fd = sock.fd();
            pfd.events = POLLIN;
            pfd.revents = 0;
            const int rc = ::poll(
                &pfd, 1,
                static_cast<int>(static_cast<double>(timeout_ms) - spent));
            if (rc == 0)
                return false;
            if (rc < 0) {
                if (errno == EINTR)
                    continue;
                return false;
            }
            size_t got = 0;
            const IoWait w = recvSome(sock.fd(), buf, sizeof(buf), got);
            if (w == IoWait::Again)
                continue;
            if (w != IoWait::Ready)
                return false;
            decoder.feed(buf, got);
            continue;
        }
        if (code != NetCode::Ok)
            return false;
        if (frame.type != FrameType::Stats)
            return false;
        return decodeStatsMsg(frame.payload, out) == NetCode::Ok;
    }
}

struct ReplicaSupervisor::Impl
{
    SupervisorConfig cfg;

    struct Slot
    {
        pid_t pid = -1;
        uint16_t port = 0;
        uint64_t generation = 0;
        bool healthy = false;
        uint32_t probeFails = 0;
        uint32_t backoffSteps = 0;   ///< consecutive respawn attempts
        uint64_t respawnDueNanos = 0;
        int outFd = -1;              ///< child stdout pipe, read end
        StatsMsg last;
    };

    mutable Mutex mu;
    std::vector<Slot> slots MSQ_GUARDED_BY(mu);
    uint64_t nextGeneration MSQ_GUARDED_BY(mu) = 1;

    std::atomic<bool> running{false};
    std::thread monitor;

    std::atomic<uint64_t> spawns{0};
    std::atomic<uint64_t> respawns{0};
    std::atomic<uint64_t> deaths{0};
    std::atomic<uint64_t> kills{0};
    std::atomic<uint64_t> probes{0};
    std::atomic<uint64_t> probeFailures{0};

    explicit Impl(const SupervisorConfig &c) : cfg(c) {}

    uint64_t
    backoffNanos(uint32_t steps) const
    {
        const uint32_t shift = std::min(steps, 16u);
        uint64_t delay = uint64_t{cfg.respawnBackoffBaseMs} << shift;
        delay = std::min<uint64_t>(delay, cfg.respawnBackoffCapMs);
        return delay * 1000000ull;
    }

    /** Fork/exec one replica into `slot` and block (lock-free) until
     *  it reports its port. On success the slot is published with a
     *  fresh generation. */
    bool
    spawnSlot(size_t index, bool initial)
    {
        int fds[2];
        if (::pipe(fds) != 0)
            return false;
        // Both ends close-on-exec: the child's dup2 below clears the
        // flag on the stdout/stderr copies, and no replica inherits a
        // sibling's pipe (which would defeat EOF-on-death).
        ::fcntl(fds[0], F_SETFD, FD_CLOEXEC);
        ::fcntl(fds[1], F_SETFD, FD_CLOEXEC);

        std::vector<std::string> args;
        args.push_back(cfg.serverBinary);
        args.push_back(cfg.model);
        args.push_back("0"); // ephemeral port, scraped below
        args.push_back(std::to_string(cfg.ioWorkers));
        args.push_back(std::to_string(cfg.maxQueue));
        args.push_back(std::to_string(cfg.threads));
        args.push_back(std::to_string(cfg.maxBatch));
        std::vector<char *> argv;
        argv.reserve(args.size() + 1);
        for (std::string &a : args)
            argv.push_back(const_cast<char *>(a.c_str()));
        argv.push_back(nullptr);

        const pid_t pid = ::fork();
        if (pid < 0) {
            ::close(fds[0]);
            ::close(fds[1]);
            return false;
        }
        if (pid == 0) {
            // Child: async-signal-safe calls only between fork and exec.
            ::dup2(fds[1], STDOUT_FILENO);
            ::dup2(fds[1], STDERR_FILENO);
            ::execv(argv[0], argv.data());
            ::_exit(127);
        }
        ::close(fds[1]);
        setNonBlocking(fds[0]);

        uint16_t port = 0;
        if (!scrapePort(fds[0], cfg.spawnTimeoutMs, port)) {
            ::kill(pid, SIGKILL);
            ::waitpid(pid, nullptr, 0);
            ::close(fds[0]);
            return false;
        }

        spawns.fetch_add(1, std::memory_order_relaxed);
        if (!initial)
            respawns.fetch_add(1, std::memory_order_relaxed);
        MutexLock lock(mu);
        Slot &s = slots[index];
        s.pid = pid;
        s.port = port;
        s.generation = nextGeneration++;
        s.healthy = true; // listening: the port scrape proved the bind
        s.probeFails = 0;
        s.outFd = fds[0];
        s.last = StatsMsg{};
        return true;
    }

    /** One monitor pass: drain child output, reap deaths, respawn due
     *  slots, health-probe live ones. */
    void
    tick()
    {
        size_t count;
        {
            MutexLock lock(mu);
            count = slots.size();
        }
        for (size_t i = 0;
             i < count && running.load(std::memory_order_acquire); ++i) {
            pid_t pid;
            uint16_t port;
            int outFd;
            uint64_t due;
            uint32_t steps;
            {
                MutexLock lock(mu);
                const Slot &s = slots[i];
                pid = s.pid;
                port = s.port;
                outFd = s.outFd;
                due = s.respawnDueNanos;
                steps = s.backoffSteps;
            }
            if (outFd >= 0)
                drainChildOutput(outFd);

            if (pid > 0) {
                int st = 0;
                const pid_t r = ::waitpid(pid, &st, WNOHANG);
                if (r == pid) {
                    // Death observed: clear the slot and schedule the
                    // respawn with capped exponential backoff.
                    deaths.fetch_add(1, std::memory_order_relaxed);
                    MutexLock lock(mu);
                    Slot &s = slots[i];
                    if (s.outFd >= 0) {
                        ::close(s.outFd);
                        s.outFd = -1;
                    }
                    s.pid = -1;
                    s.port = 0;
                    s.healthy = false;
                    s.probeFails = 0;
                    s.respawnDueNanos =
                        steadyNanos() + backoffNanos(s.backoffSteps);
                    ++s.backoffSteps;
                    continue;
                }
                // Alive: health probe. A replica that stops answering
                // (wedged, not dead) goes unhealthy after the limit but
                // keeps its process — routing shuns it, probing keeps
                // trying, and recovery re-enlists it.
                StatsMsg sm;
                probes.fetch_add(1, std::memory_order_relaxed);
                if (probeReplicaStats(port, cfg.probeTimeoutMs, sm)) {
                    MutexLock lock(mu);
                    Slot &s = slots[i];
                    if (s.pid == pid) {
                        s.healthy = true;
                        s.probeFails = 0;
                        s.backoffSteps = 0; // survived: backoff resets
                        s.last = sm;
                    }
                } else {
                    probeFailures.fetch_add(1, std::memory_order_relaxed);
                    MutexLock lock(mu);
                    Slot &s = slots[i];
                    if (s.pid == pid &&
                        ++s.probeFails >= cfg.probeFailLimit)
                        s.healthy = false;
                }
            } else if (steadyNanos() >= due) {
                if (!spawnSlot(i, /*initial=*/false)) {
                    MutexLock lock(mu);
                    Slot &s = slots[i];
                    s.respawnDueNanos =
                        steadyNanos() + backoffNanos(s.backoffSteps);
                    ++s.backoffSteps;
                }
                (void)steps;
            }
        }
    }

    void
    monitorLoop()
    {
        while (running.load(std::memory_order_acquire)) {
            tick();
            std::this_thread::sleep_for(
                std::chrono::milliseconds(cfg.probePeriodMs));
        }
    }

    /** SIGTERM every live replica (graceful drain), escalate to
     *  SIGKILL after `graceMs`, reap everything, close pipes. */
    void
    terminateAll(uint32_t graceMs)
    {
        std::vector<std::pair<size_t, pid_t>> live;
        {
            MutexLock lock(mu);
            for (size_t i = 0; i < slots.size(); ++i)
                if (slots[i].pid > 0)
                    live.emplace_back(i, slots[i].pid);
        }
        for (const auto &lp : live)
            ::kill(lp.second, SIGTERM);

        const uint64_t start = steadyNanos();
        std::vector<bool> reaped(live.size(), false);
        size_t remaining = live.size();
        while (remaining > 0 &&
               elapsedMs(start) < static_cast<double>(graceMs)) {
            for (size_t k = 0; k < live.size(); ++k) {
                if (reaped[k])
                    continue;
                int st = 0;
                if (::waitpid(live[k].second, &st, WNOHANG) ==
                    live[k].second) {
                    reaped[k] = true;
                    --remaining;
                }
            }
            if (remaining > 0)
                std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        for (size_t k = 0; k < live.size(); ++k) {
            if (reaped[k])
                continue;
            ::kill(live[k].second, SIGKILL);
            ::waitpid(live[k].second, nullptr, 0);
        }

        MutexLock lock(mu);
        for (Slot &s : slots) {
            if (s.outFd >= 0) {
                ::close(s.outFd);
                s.outFd = -1;
            }
            s.pid = -1;
            s.port = 0;
            s.healthy = false;
        }
    }
};

ReplicaSupervisor::ReplicaSupervisor(const SupervisorConfig &config)
    : impl_(std::make_unique<Impl>(config))
{
}

ReplicaSupervisor::~ReplicaSupervisor()
{
    stop();
}

bool
ReplicaSupervisor::start()
{
    Impl &s = *impl_;
    if (s.running.exchange(true, std::memory_order_acq_rel))
        return true;
    {
        MutexLock lock(s.mu);
        s.slots.assign(s.cfg.replicas, Impl::Slot{});
    }
    for (size_t i = 0; i < s.cfg.replicas; ++i) {
        if (!s.spawnSlot(i, /*initial=*/true)) {
            s.running.store(false, std::memory_order_release);
            s.terminateAll(0);
            return false;
        }
    }
    s.monitor = std::thread([this] { impl_->monitorLoop(); });
    return true;
}

void
ReplicaSupervisor::stop(uint32_t graceMs)
{
    Impl &s = *impl_;
    s.running.store(false, std::memory_order_release);
    if (s.monitor.joinable())
        s.monitor.join();
    s.terminateAll(graceMs);
}

std::vector<ReplicaEndpoint>
ReplicaSupervisor::endpoints() const
{
    const Impl &s = *impl_;
    std::vector<ReplicaEndpoint> out;
    MutexLock lock(s.mu);
    out.reserve(s.slots.size());
    for (size_t i = 0; i < s.slots.size(); ++i) {
        const Impl::Slot &slot = s.slots[i];
        ReplicaEndpoint ep;
        ep.index = i;
        ep.port = slot.pid > 0 ? slot.port : 0;
        ep.generation = slot.generation;
        ep.healthy = slot.pid > 0 && slot.healthy;
        ep.stats = slot.last;
        out.push_back(ep);
    }
    return out;
}

bool
ReplicaSupervisor::killReplica(size_t index)
{
    Impl &s = *impl_;
    pid_t pid = -1;
    {
        MutexLock lock(s.mu);
        if (index >= s.slots.size())
            return false;
        pid = s.slots[index].pid;
    }
    if (pid <= 0)
        return false;
    if (::kill(pid, SIGKILL) != 0)
        return false;
    s.kills.fetch_add(1, std::memory_order_relaxed);
    return true;
}

pid_t
ReplicaSupervisor::replicaPid(size_t index) const
{
    const Impl &s = *impl_;
    MutexLock lock(s.mu);
    if (index >= s.slots.size())
        return -1;
    return s.slots[index].pid;
}

SupervisorStats
ReplicaSupervisor::stats() const
{
    const Impl &s = *impl_;
    SupervisorStats out;
    out.spawns = s.spawns.load(std::memory_order_relaxed);
    out.respawns = s.respawns.load(std::memory_order_relaxed);
    out.deaths = s.deaths.load(std::memory_order_relaxed);
    out.kills = s.kills.load(std::memory_order_relaxed);
    out.probes = s.probes.load(std::memory_order_relaxed);
    out.probeFailures = s.probeFailures.load(std::memory_order_relaxed);
    return out;
}

} // namespace msq
