/**
 * @file
 * Compile-time SIMD target gates shared by every TU that defines a
 * hand-vectorized kernel variant (serve/kernel_dispatch.cc,
 * quant/span_kernels.cc) and by the path-availability query in
 * common/simd_dispatch.cc — one definition of "which paths does this
 * build carry", so the registry and the queries can never disagree.
 *
 *  - MSQ_SIMD_X86: x86-64 with a GNU-flavoured compiler. SSE2 is the
 *    architectural baseline there, so the SSE2 variants are plain
 *    functions; the AVX2 variants are compiled per-function via the
 *    MSQ_TARGET_AVX2 attribute (no -mavx2 anywhere, no ifunc — the
 *    caller checks CPUID before taking the pointer).
 *  - MSQ_SIMD_NEON: AArch64, where NEON is baseline.
 */

#ifndef MSQ_COMMON_SIMD_TARGET_H
#define MSQ_COMMON_SIMD_TARGET_H

#if defined(__x86_64__) && defined(__GNUC__)
#define MSQ_SIMD_X86 1
#include <immintrin.h>
#define MSQ_TARGET_AVX2 __attribute__((target("avx2")))
#else
#define MSQ_SIMD_X86 0
#endif

#if defined(__aarch64__) && defined(__GNUC__)
#define MSQ_SIMD_NEON 1
#include <arm_neon.h>
#else
#define MSQ_SIMD_NEON 0
#endif

#endif // MSQ_COMMON_SIMD_TARGET_H
