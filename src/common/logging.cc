#include "common/logging.h"

namespace msq {

void
logMessage(const char *severity, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", severity, msg.c_str());
}

void
fatal(const std::string &msg)
{
    logMessage("fatal", msg);
    std::exit(1);
}

void
panic(const std::string &msg)
{
    logMessage("panic", msg);
    std::abort();
}

void
warn(const std::string &msg)
{
    logMessage("warn", msg);
}

void
inform(const std::string &msg)
{
    logMessage("info", msg);
}

} // namespace msq
