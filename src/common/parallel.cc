#include "common/parallel.h"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/mutex.h"

namespace msq {

namespace {

/** True while the current thread is executing a parallelFor body. */
thread_local bool in_parallel_region = false;

unsigned
defaultThreadCount()
{
    if (const char *env = std::getenv("MSQ_THREADS")) {
        char *end = nullptr;
        const long n = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && n >= 1)
            return static_cast<unsigned>(n);
        warn("ignoring invalid MSQ_THREADS value '" + std::string(env) +
             "'");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

std::atomic<unsigned> thread_count_override{0};

/**
 * Process-wide worker pool. Workers sleep on a condition variable and
 * are woken once per job; each job is a [begin, end) range whose chunks
 * are claimed from an atomic cursor by workers and the submitting
 * thread alike. One job runs at a time (nested calls run inline), so a
 * single job slot suffices.
 *
 * Two protection domains, machine-checked where a mutex is the
 * protector:
 *
 *  - `mutex_` guards the pool/job control state (worker list, shutdown
 *    flag, job id, participation tickets, completion count, first
 *    error) — all annotated `MSQ_GUARDED_BY(mutex_)`.
 *  - The job descriptor (`begin_`, `end_`, `grain_`, `body_`, the
 *    chunk cursor and the error flag) is protected by the job protocol
 *    rather than a lock, so it carries no annotation: `run()` writes it
 *    under `mutex_` *before* publishing the new `job_id_`, workers only
 *    read it after observing that id under `mutex_` (acquiring the
 *    mutex orders the reads after the writes), and `run()` does not
 *    touch it again until the `pending_` handshake proves every
 *    participant has left `drainChunks()`.
 */
class Pool
{
  public:
    static Pool &
    instance()
    {
        static Pool pool;
        return pool;
    }

    void
    run(size_t begin, size_t end, const std::function<void(size_t)> &body,
        size_t grain, unsigned threads)
    {
        // One job at a time: concurrent top-level parallelFor calls
        // from different application threads serialize here (each
        // still gets the full pool while it runs).
        MutexLock job_lock(run_mutex_);
        ensureWorkers(threads - 1);
        {
            MutexLock lock(mutex_);
            begin_ = begin;
            end_ = end;
            grain_ = grain;
            body_ = &body;
            error_ = nullptr;
            error_flag_.store(false, std::memory_order_relaxed);
            cursor_.store(begin, std::memory_order_relaxed);
            // The pool only ever grows, so a later, smaller thread
            // count is enforced with participation tickets: the first
            // threads - 1 workers to wake join this job, the rest see
            // no ticket and go back to sleep.
            pending_ = static_cast<unsigned>(std::min<size_t>(
                workers_.size(), threads - 1));
            tickets_ = pending_;
            ++job_id_;
        }
        wake_.notifyAll();
        drainChunks();
        {
            MutexLock lock(mutex_);
            while (pending_ != 0)
                done_.wait(mutex_);
            body_ = nullptr;
            if (error_)
                std::rethrow_exception(error_);
        }
    }

  private:
    Pool() = default;

    ~Pool()
    {
        {
            MutexLock lock(mutex_);
            shutdown_ = true;
        }
        wake_.notifyAll();
        for (std::thread &t : workers_)
            t.join();
    }

    void
    ensureWorkers(unsigned n) MSQ_REQUIRES(run_mutex_) MSQ_EXCLUDES(mutex_)
    {
        MutexLock lock(mutex_);
        // A worker must not join jobs dispatched before it existed:
        // it starts considering the current job id as already seen.
        while (workers_.size() < n)
            workers_.emplace_back(
                [this, id = job_id_] { workerLoop(id); });
    }

    void
    workerLoop(uint64_t seen) MSQ_EXCLUDES(mutex_)
    {
        for (;;) {
            {
                MutexLock lock(mutex_);
                while (!shutdown_ && job_id_ == seen)
                    wake_.wait(mutex_);
                if (shutdown_)
                    return;
                seen = job_id_;
                if (tickets_ == 0)
                    continue;  // job is capped below the pool size
                --tickets_;
            }
            drainChunks();
            {
                MutexLock lock(mutex_);
                if (--pending_ == 0)
                    done_.notifyAll();
            }
        }
    }

    /** Claim and execute chunks until the range (or an error) ends.
     *  Reads only the protocol-guarded job descriptor (see class
     *  comment); takes `mutex_` solely to record a body exception. */
    void
    drainChunks() MSQ_EXCLUDES(mutex_)
    {
        in_parallel_region = true;
        for (;;) {
            if (error_flag_.load(std::memory_order_relaxed))
                break;
            const size_t lo =
                cursor_.fetch_add(grain_, std::memory_order_relaxed);
            if (lo >= end_)
                break;
            const size_t hi = lo + grain_ < end_ ? lo + grain_ : end_;
            try {
                for (size_t i = lo; i < hi; ++i)
                    (*body_)(i);
            } catch (...) {
                MutexLock lock(mutex_);
                if (!error_)
                    error_ = std::current_exception();
                error_flag_.store(true, std::memory_order_relaxed);
            }
        }
        in_parallel_region = false;
    }

    Mutex run_mutex_;  ///< serializes whole jobs (held across run())
    Mutex mutex_;      ///< guards the control state below
    CondVar wake_;
    CondVar done_;
    std::vector<std::thread> workers_ MSQ_GUARDED_BY(mutex_);
    bool shutdown_ MSQ_GUARDED_BY(mutex_) = false;
    uint64_t job_id_ MSQ_GUARDED_BY(mutex_) = 0;
    /** Participants that have not finished the current job. */
    unsigned pending_ MSQ_GUARDED_BY(mutex_) = 0;
    /** Participation slots left for this job. */
    unsigned tickets_ MSQ_GUARDED_BY(mutex_) = 0;
    /** First exception thrown by a body this job. */
    std::exception_ptr error_ MSQ_GUARDED_BY(mutex_);

    // Job descriptor: written by run() under mutex_ before the job id
    // is published, read lock-free by participants during the job (the
    // protocol above makes that ordered); valid while pending_ > 0 or
    // the caller is draining.
    size_t begin_ = 0;
    size_t end_ = 0;
    size_t grain_ = 1;
    const std::function<void(size_t)> *body_ = nullptr;
    std::atomic<size_t> cursor_{0};
    std::atomic<bool> error_flag_{false};
};

} // namespace

unsigned
threadCount()
{
    const unsigned n = thread_count_override.load(std::memory_order_relaxed);
    if (n > 0)
        return n;
    static const unsigned resolved = defaultThreadCount();
    return resolved;
}

void
setThreadCount(unsigned n)
{
    thread_count_override.store(n, std::memory_order_relaxed);
}

void
parallelFor(size_t begin, size_t end,
            const std::function<void(size_t)> &body, size_t grain)
{
    MSQ_ASSERT(grain > 0, "parallelFor grain must be positive");
    if (begin >= end)
        return;
    const unsigned threads = threadCount();
    if (threads <= 1 || in_parallel_region || end - begin <= grain) {
        for (size_t i = begin; i < end; ++i)
            body(i);
        return;
    }
    Pool::instance().run(begin, end, body, grain, threads);
}

} // namespace msq
