#include "common/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace msq {

namespace {

/** True while the current thread is executing a parallelFor body. */
thread_local bool in_parallel_region = false;

unsigned
defaultThreadCount()
{
    if (const char *env = std::getenv("MSQ_THREADS")) {
        char *end = nullptr;
        const long n = std::strtol(env, &end, 10);
        if (end != env && *end == '\0' && n >= 1)
            return static_cast<unsigned>(n);
        warn("ignoring invalid MSQ_THREADS value '" + std::string(env) +
             "'");
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

std::atomic<unsigned> thread_count_override{0};

/**
 * Process-wide worker pool. Workers sleep on a condition variable and
 * are woken once per job; each job is a [begin, end) range whose chunks
 * are claimed from an atomic cursor by workers and the submitting
 * thread alike. One job runs at a time (nested calls run inline), so a
 * single job slot suffices.
 */
class Pool
{
  public:
    static Pool &
    instance()
    {
        static Pool pool;
        return pool;
    }

    void
    run(size_t begin, size_t end, const std::function<void(size_t)> &body,
        size_t grain, unsigned threads)
    {
        // One job at a time: concurrent top-level parallelFor calls
        // from different application threads serialize here (each
        // still gets the full pool while it runs).
        std::lock_guard<std::mutex> job_lock(run_mutex_);
        ensureWorkers(threads - 1);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            begin_ = begin;
            end_ = end;
            grain_ = grain;
            body_ = &body;
            error_ = nullptr;
            error_flag_.store(false, std::memory_order_relaxed);
            cursor_.store(begin, std::memory_order_relaxed);
            // The pool only ever grows, so a later, smaller thread
            // count is enforced with participation tickets: the first
            // threads - 1 workers to wake join this job, the rest see
            // no ticket and go back to sleep.
            pending_ = static_cast<unsigned>(std::min<size_t>(
                workers_.size(), threads - 1));
            tickets_ = pending_;
            ++job_id_;
        }
        wake_.notify_all();
        drainChunks();
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [this] { return pending_ == 0; });
        body_ = nullptr;
        if (error_)
            std::rethrow_exception(error_);
    }

  private:
    Pool() = default;

    ~Pool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            shutdown_ = true;
        }
        wake_.notify_all();
        for (std::thread &t : workers_)
            t.join();
    }

    void
    ensureWorkers(unsigned n)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        // A worker must not join jobs dispatched before it existed:
        // it starts considering the current job id as already seen.
        while (workers_.size() < n)
            workers_.emplace_back(
                [this, id = job_id_] { workerLoop(id); });
    }

    void
    workerLoop(uint64_t seen)
    {
        for (;;) {
            {
                std::unique_lock<std::mutex> lock(mutex_);
                wake_.wait(lock, [&] {
                    return shutdown_ || job_id_ != seen;
                });
                if (shutdown_)
                    return;
                seen = job_id_;
                if (tickets_ == 0)
                    continue;  // job is capped below the pool size
                --tickets_;
            }
            drainChunks();
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (--pending_ == 0)
                    done_.notify_all();
            }
        }
    }

    /** Claim and execute chunks until the range (or an error) ends. */
    void
    drainChunks()
    {
        in_parallel_region = true;
        for (;;) {
            if (error_flag_.load(std::memory_order_relaxed))
                break;
            const size_t lo =
                cursor_.fetch_add(grain_, std::memory_order_relaxed);
            if (lo >= end_)
                break;
            const size_t hi = lo + grain_ < end_ ? lo + grain_ : end_;
            try {
                for (size_t i = lo; i < hi; ++i)
                    (*body_)(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mutex_);
                if (!error_)
                    error_ = std::current_exception();
                error_flag_.store(true, std::memory_order_relaxed);
            }
        }
        in_parallel_region = false;
    }

    std::mutex run_mutex_;  ///< serializes whole jobs (held across run())
    std::mutex mutex_;      ///< guards all state below
    std::condition_variable wake_;
    std::condition_variable done_;
    std::vector<std::thread> workers_;
    bool shutdown_ = false;
    uint64_t job_id_ = 0;
    unsigned pending_ = 0;  ///< participants that have not finished
    unsigned tickets_ = 0;  ///< participation slots left for this job

    // Current job; valid while pending_ > 0 or the caller is draining.
    size_t begin_ = 0;
    size_t end_ = 0;
    size_t grain_ = 1;
    const std::function<void(size_t)> *body_ = nullptr;
    std::atomic<size_t> cursor_{0};
    std::atomic<bool> error_flag_{false};
    std::exception_ptr error_;
};

} // namespace

unsigned
threadCount()
{
    const unsigned n = thread_count_override.load(std::memory_order_relaxed);
    if (n > 0)
        return n;
    static const unsigned resolved = defaultThreadCount();
    return resolved;
}

void
setThreadCount(unsigned n)
{
    thread_count_override.store(n, std::memory_order_relaxed);
}

void
parallelFor(size_t begin, size_t end,
            const std::function<void(size_t)> &body, size_t grain)
{
    MSQ_ASSERT(grain > 0, "parallelFor grain must be positive");
    if (begin >= end)
        return;
    const unsigned threads = threadCount();
    if (threads <= 1 || in_parallel_region || end - begin <= grain) {
        for (size_t i = begin; i < end; ++i)
            body(i);
        return;
    }
    Pool::instance().run(begin, end, body, grain, threads);
}

} // namespace msq
