/**
 * @file
 * Dense row-major matrix used throughout the quantizer and simulator.
 *
 * Kept intentionally small: the library needs deterministic, inspectable
 * numerics more than BLAS-grade throughput. All hot loops in the
 * accelerator operate on integer codes, not on this class.
 */

#ifndef MSQ_COMMON_MATRIX_H
#define MSQ_COMMON_MATRIX_H

#include <cstddef>
#include <vector>

namespace msq {

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    /** Construct rows x cols, zero initialized. */
    Matrix(size_t rows, size_t cols);

    /** Construct rows x cols with an initial fill value. */
    Matrix(size_t rows, size_t cols, double fill);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    double &at(size_t r, size_t c) { return data_[r * cols_ + c]; }
    double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

    double &operator()(size_t r, size_t c) { return at(r, c); }
    double operator()(size_t r, size_t c) const { return at(r, c); }

    double *rowPtr(size_t r) { return data_.data() + r * cols_; }
    const double *rowPtr(size_t r) const { return data_.data() + r * cols_; }

    double *data() { return data_.data(); }
    const double *data() const { return data_.data(); }

    /** C = this * other. @pre cols() == other.rows() */
    Matrix matmul(const Matrix &other) const;

    /** C = this^T * other. @pre rows() == other.rows() */
    Matrix transposedMatmul(const Matrix &other) const;

    /** Transposed copy. */
    Matrix transposed() const;

    /** Elementwise difference this - other. @pre same shape */
    Matrix operator-(const Matrix &other) const;

    /** Frobenius norm squared. */
    double frobeniusSq() const;

    /** Maximum absolute element (0 for empty). */
    double maxAbs() const;

    /**
     * Relative reconstruction error ||this - ref||_F^2 / ||ref||_F^2.
     * Returns 0 when ref is identically zero.
     */
    double normalizedErrorTo(const Matrix &ref) const;

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<double> data_;
};

/**
 * Solve the symmetric positive definite system via Cholesky: returns the
 * inverse of `a`. Used for the damped Hessian inverse. @pre a is SPD.
 */
Matrix choleskyInverse(const Matrix &a);

/** Cholesky factor L (lower triangular) with a * = L L^T. @pre a is SPD. */
Matrix choleskyFactor(const Matrix &a);

} // namespace msq

#endif // MSQ_COMMON_MATRIX_H
