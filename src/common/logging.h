/**
 * @file
 * Status / error reporting helpers in the gem5 style.
 *
 * `fatal` terminates because of a user-level error (bad configuration,
 * invalid arguments); `panic` terminates because of an internal invariant
 * violation (a bug in this library); `warn` / `inform` report conditions
 * without stopping.
 */

#ifndef MSQ_COMMON_LOGGING_H
#define MSQ_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace msq {

/** Print a formatted message with a severity prefix to stderr. */
void logMessage(const char *severity, const std::string &msg);

/** Terminate: the caller supplied an invalid configuration or argument. */
[[noreturn]] void fatal(const std::string &msg);

/** Terminate: an internal invariant was violated (library bug). */
[[noreturn]] void panic(const std::string &msg);

/** Report a suspicious but survivable condition. */
void warn(const std::string &msg);

/** Report normal operating status. */
void inform(const std::string &msg);

/**
 * Assert an internal invariant; panics with the location on failure.
 * Kept enabled in all build types: the simulator relies on these checks
 * for bit-exactness guarantees.
 */
#define MSQ_ASSERT(cond, msg)                                              \
    do {                                                                   \
        if (!(cond)) {                                                     \
            ::msq::panic(std::string(__FILE__) + ":" +                     \
                         std::to_string(__LINE__) + ": " + (msg));         \
        }                                                                  \
    } while (0)

} // namespace msq

#endif // MSQ_COMMON_LOGGING_H
