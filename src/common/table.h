/**
 * @file
 * Aligned console table printer. Every benchmark binary prints its
 * reproduction of a paper table/figure through this class so the output
 * stays uniform and diff-friendly.
 */

#ifndef MSQ_COMMON_TABLE_H
#define MSQ_COMMON_TABLE_H

#include <string>
#include <vector>

namespace msq {

/** Column-aligned text table with an optional title and separator rows. */
class Table
{
  public:
    explicit Table(std::string title = "");

    /** Set the header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row (may be ragged; short rows are padded). */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** Render the table to a string. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /** Format helper: fixed-precision double. */
    static std::string fmt(double v, int precision = 2);

    /** Format helper: integer with thousands separators. */
    static std::string fmtInt(long long v);

  private:
    std::string title_;
    std::vector<std::string> header_;
    struct Row
    {
        bool separator = false;
        std::vector<std::string> cells;
    };
    std::vector<Row> rows_;
};

} // namespace msq

#endif // MSQ_COMMON_TABLE_H
