/**
 * @file
 * Bit-level writer/reader used to serialize the MicroScopiQ off-chip
 * layout (Fig. 5 of the paper). The packed-tensor round trip test relies
 * on exact bit accounting: the effective bit-width reported by Eq. 4 must
 * equal the measured stream size.
 */

#ifndef MSQ_COMMON_BITSTREAM_H
#define MSQ_COMMON_BITSTREAM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace msq {

/** Append-only bit writer (LSB-first within the stream). */
class BitWriter
{
  public:
    /** Append the low `bits` bits of `value`. @pre bits <= 64 */
    void write(uint64_t value, unsigned bits);

    /** Total number of bits written so far. */
    size_t bitCount() const { return bitCount_; }

    /** Finish and take the byte buffer (final partial byte zero padded). */
    std::vector<uint8_t> take();

    const std::vector<uint8_t> &bytes() const { return bytes_; }

  private:
    std::vector<uint8_t> bytes_;
    size_t bitCount_ = 0;
};

/** Sequential bit reader matching BitWriter's layout. */
class BitReader
{
  public:
    explicit BitReader(const std::vector<uint8_t> &bytes);

    /** Read the next `bits` bits. @pre bits <= 64 and stream not exhausted */
    uint64_t read(unsigned bits);

    /** Bits consumed so far. */
    size_t position() const { return pos_; }

    /** Total bits available. */
    size_t capacity() const { return bytes_.size() * 8; }

  private:
    const std::vector<uint8_t> &bytes_;
    size_t pos_ = 0;
};

/** Sign extend the low `bits` bits of `value` to a signed 64-bit int. */
int64_t signExtend(uint64_t value, unsigned bits);

} // namespace msq

#endif // MSQ_COMMON_BITSTREAM_H
