#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace msq {

SampleSummary
summarize(const std::vector<double> &values)
{
    SampleSummary s;
    s.count = values.size();
    if (values.empty())
        return s;

    double sum = 0.0;
    s.minValue = values.front();
    s.maxValue = values.front();
    for (double v : values) {
        sum += v;
        s.minValue = std::min(s.minValue, v);
        s.maxValue = std::max(s.maxValue, v);
    }
    s.mean = sum / static_cast<double>(s.count);

    double sq = 0.0, quart = 0.0;
    for (double v : values) {
        const double d = v - s.mean;
        sq += d * d;
        quart += d * d * d * d;
    }
    // Sample (Bessel-corrected, n - 1) standard deviation — the one
    // definition used repository-wide; see stats.h. Kurtosis keeps the
    // conventional population central moments.
    s.stddev = s.count >= 2
                   ? std::sqrt(sq / static_cast<double>(s.count - 1))
                   : 0.0;
    const double m2 = sq / static_cast<double>(s.count);
    const double m4 = quart / static_cast<double>(s.count);
    s.kurtosis = (m2 > 0.0) ? m4 / (m2 * m2) - 3.0 : 0.0;
    return s;
}

double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
stddev(const std::vector<double> &values)
{
    // Same sample (n - 1) definition as SampleSummary::stddev; the
    // size guard matches the n >= 2 domain of Bessel's correction.
    if (values.size() < 2)
        return 0.0;
    return summarize(values).stddev;
}

double
percentile(std::vector<double> values, double p)
{
    MSQ_ASSERT(!values.empty(), "percentile of an empty sample");
    MSQ_ASSERT(p >= 0.0 && p <= 100.0, "percentile p out of range");
    std::sort(values.begin(), values.end());
    const double pos = p / 100.0 * static_cast<double>(values.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(pos));
    const size_t hi = static_cast<size_t>(std::ceil(pos));
    const double frac = pos - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double
geomean(const std::vector<double> &values)
{
    MSQ_ASSERT(!values.empty(), "geomean of an empty sample");
    double acc = 0.0;
    for (double v : values) {
        MSQ_ASSERT(v > 0.0, "geomean requires positive values");
        acc += std::log(v);
    }
    return std::exp(acc / static_cast<double>(values.size()));
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    MSQ_ASSERT(hi > lo, "histogram range must be non-empty");
    MSQ_ASSERT(bins > 0, "histogram needs at least one bin");
}

void
Histogram::add(double v)
{
    const double clamped = std::clamp(v, lo_, hi_);
    const double frac = (clamped - lo_) / (hi_ - lo_);
    size_t bin = static_cast<size_t>(frac * static_cast<double>(counts_.size()));
    bin = std::min(bin, counts_.size() - 1);
    ++counts_[bin];
    ++total_;
}

double
Histogram::binCenter(size_t bin) const
{
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    return lo_ + (static_cast<double>(bin) + 0.5) * width;
}

} // namespace msq
