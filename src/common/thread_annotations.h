/**
 * @file
 * Clang thread-safety analysis annotations (Abseil style).
 *
 * The serving stack's headline guarantee — token streams and GEMM
 * outputs bit-identical across `MSQ_THREADS`, partition shape, and
 * admission order — rests on a handful of shared structures: the
 * `parallelFor` worker pool, the packed-model and execution-plan LRUs,
 * the Hessian factorization cache, and the lazily validating
 * `MsqReader`. These macros let clang's `-Wthread-safety` analysis
 * machine-check their locking discipline at compile time: every member
 * a mutex protects is declared `MSQ_GUARDED_BY(mu)`, every function
 * with a locking precondition declares it (`MSQ_REQUIRES`), and any
 * violation is a compile error under `-Wthread-safety -Werror` (the
 * tidy+lint CI job builds with exactly that).
 *
 * Under any compiler without the attribute (gcc, msvc) every macro
 * expands to nothing, so the annotations impose zero cost and zero
 * portability burden. The annotated `Mutex` / `MutexLock` / `CondVar`
 * wrappers that give these attributes a capability to talk about live
 * in common/mutex.h.
 *
 * Naming follows Abseil's thread_annotations.h so the conventions are
 * recognizable; the `MSQ_` prefix keeps the macro namespace ours.
 */

#ifndef MSQ_COMMON_THREAD_ANNOTATIONS_H
#define MSQ_COMMON_THREAD_ANNOTATIONS_H

#if defined(__clang__) && (!defined(SWIG))
#define MSQ_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define MSQ_THREAD_ANNOTATION__(x) // no-op off clang
#endif

/** Declares a type to be a lockable capability (e.g. a mutex). */
#define MSQ_CAPABILITY(x) MSQ_THREAD_ANNOTATION__(capability(x))

/** Declares an RAII type that acquires a capability in its constructor
 *  and releases it in its destructor. */
#define MSQ_SCOPED_CAPABILITY MSQ_THREAD_ANNOTATION__(scoped_lockable)

/** Declares that a member is protected by the given capability: it may
 *  only be read or written while the capability is held. */
#define MSQ_GUARDED_BY(x) MSQ_THREAD_ANNOTATION__(guarded_by(x))

/** Like MSQ_GUARDED_BY, for the data a pointer member points to. */
#define MSQ_PT_GUARDED_BY(x) MSQ_THREAD_ANNOTATION__(pt_guarded_by(x))

/** Declares that callers must hold the capability (and it is still held
 *  on return). */
#define MSQ_REQUIRES(...) \
    MSQ_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))

/** Declares that callers must NOT hold the capability (the function
 *  acquires it itself; prevents self-deadlock). */
#define MSQ_EXCLUDES(...) \
    MSQ_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/** Declares that the function acquires the capability and does not
 *  release it before returning. */
#define MSQ_ACQUIRE(...) \
    MSQ_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))

/** Declares that the function releases the capability, which callers
 *  must hold on entry. */
#define MSQ_RELEASE(...) \
    MSQ_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))

/** Declares that the function acquires the capability iff it returns
 *  the given value. */
#define MSQ_TRY_ACQUIRE(...) \
    MSQ_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

/** Declares a function that returns a reference to the capability
 *  guarding some state (lets accessors expose their lock). */
#define MSQ_RETURN_CAPABILITY(x) MSQ_THREAD_ANNOTATION__(lock_returned(x))

/**
 * Escape hatch: disables analysis of one function body. Used only where
 * the protection is a cross-thread protocol the analysis cannot see
 * (e.g. the worker pool's job handshake); every use carries a comment
 * proving the discipline it hides.
 */
#define MSQ_NO_THREAD_SAFETY_ANALYSIS \
    MSQ_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif // MSQ_COMMON_THREAD_ANNOTATIONS_H
