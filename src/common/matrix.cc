#include "common/matrix.h"

#include <cmath>

#include "common/logging.h"

namespace msq {

Matrix::Matrix(size_t rows, size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0)
{
}

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix
Matrix::matmul(const Matrix &other) const
{
    MSQ_ASSERT(cols_ == other.rows(), "matmul shape mismatch");
    Matrix out(rows_, other.cols());
    // ikj loop order keeps the inner loop streaming over contiguous rows.
    for (size_t i = 0; i < rows_; ++i) {
        const double *arow = rowPtr(i);
        double *orow = out.rowPtr(i);
        for (size_t k = 0; k < cols_; ++k) {
            const double aik = arow[k];
            if (aik == 0.0)
                continue;
            const double *brow = other.rowPtr(k);
            for (size_t j = 0; j < other.cols(); ++j)
                orow[j] += aik * brow[j];
        }
    }
    return out;
}

Matrix
Matrix::transposedMatmul(const Matrix &other) const
{
    MSQ_ASSERT(rows_ == other.rows(), "transposedMatmul shape mismatch");
    Matrix out(cols_, other.cols());
    for (size_t k = 0; k < rows_; ++k) {
        const double *arow = rowPtr(k);
        const double *brow = other.rowPtr(k);
        for (size_t i = 0; i < cols_; ++i) {
            const double aki = arow[i];
            if (aki == 0.0)
                continue;
            double *orow = out.rowPtr(i);
            for (size_t j = 0; j < other.cols(); ++j)
                orow[j] += aki * brow[j];
        }
    }
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            out(c, r) = at(r, c);
    return out;
}

Matrix
Matrix::operator-(const Matrix &other) const
{
    MSQ_ASSERT(rows_ == other.rows() && cols_ == other.cols(),
               "operator- shape mismatch");
    Matrix out(rows_, cols_);
    for (size_t i = 0; i < data_.size(); ++i)
        out.data_[i] = data_[i] - other.data_[i];
    return out;
}

double
Matrix::frobeniusSq() const
{
    double acc = 0.0;
    for (double v : data_)
        acc += v * v;
    return acc;
}

double
Matrix::maxAbs() const
{
    double m = 0.0;
    for (double v : data_)
        m = std::max(m, std::fabs(v));
    return m;
}

double
Matrix::normalizedErrorTo(const Matrix &ref) const
{
    MSQ_ASSERT(rows_ == ref.rows() && cols_ == ref.cols(),
               "normalizedErrorTo shape mismatch");
    const double denom = ref.frobeniusSq();
    if (denom == 0.0)
        return 0.0;
    return (*this - ref).frobeniusSq() / denom;
}

Matrix
choleskyFactor(const Matrix &a)
{
    MSQ_ASSERT(a.rows() == a.cols(), "choleskyFactor needs a square matrix");
    const size_t n = a.rows();
    Matrix l(n, n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j <= i; ++j) {
            double sum = a(i, j);
            for (size_t k = 0; k < j; ++k)
                sum -= l(i, k) * l(j, k);
            if (i == j) {
                MSQ_ASSERT(sum > 0.0,
                           "matrix not positive definite in Cholesky");
                l(i, j) = std::sqrt(sum);
            } else {
                l(i, j) = sum / l(j, j);
            }
        }
    }
    return l;
}

Matrix
choleskyInverse(const Matrix &a)
{
    const size_t n = a.rows();
    Matrix l = choleskyFactor(a);

    // Invert L by forward substitution (columns of the identity).
    Matrix linv(n, n);
    for (size_t c = 0; c < n; ++c) {
        for (size_t r = c; r < n; ++r) {
            double sum = (r == c) ? 1.0 : 0.0;
            for (size_t k = c; k < r; ++k)
                sum -= l(r, k) * linv(k, c);
            linv(r, c) = sum / l(r, r);
        }
    }

    // A^-1 = L^-T L^-1.
    Matrix inv(n, n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j <= i; ++j) {
            double sum = 0.0;
            for (size_t k = i; k < n; ++k)
                sum += linv(k, i) * linv(k, j);
            inv(i, j) = sum;
            inv(j, i) = sum;
        }
    }
    return inv;
}

} // namespace msq
