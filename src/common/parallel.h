/**
 * @file
 * Deterministic data parallelism for the quantization pipeline.
 *
 * The repository's reproducibility contract ("bit-for-bit identical
 * results for a given seed", see rng.h) extends to threading: a sweep
 * run on one thread must produce exactly the bytes it produces on N.
 * The substrate therefore offers a single primitive, `parallelFor`,
 * whose contract makes that easy to honor:
 *
 *  - the body is invoked exactly once per index in [begin, end);
 *  - bodies for different indices must be independent (no ordering,
 *    each writes only its own output slot);
 *  - any reduction over the per-index outputs is performed by the
 *    caller afterwards, in index order, on the calling thread.
 *
 * Because every index is computed from pure per-index inputs (the
 * per-layer RNG streams in weight_gen/calib_gen make layer generation
 * pure) and reductions stay serial, the result is independent of the
 * schedule, so no deterministic work *assignment* is needed: chunks of
 * indices are claimed from a shared atomic cursor — plain
 * self-scheduling, no work stealing, no per-thread deques — which also
 * load-balances triangular loops like the Hessian build for free.
 *
 * Worker threads live in a lazily created process-wide pool. Nested
 * `parallelFor` calls run inline (serially) on the calling thread, so
 * an outer method-by-model sweep and the per-layer loop inside
 * `evaluateMethodOnModel` compose without deadlock or oversubscription.
 */

#ifndef MSQ_COMMON_PARALLEL_H
#define MSQ_COMMON_PARALLEL_H

#include <cstddef>
#include <functional>

namespace msq {

/**
 * Number of threads `parallelFor` spreads work over, resolved in order:
 * a prior `setThreadCount` override, the `MSQ_THREADS` environment
 * variable, then `std::thread::hardware_concurrency()`. Always >= 1.
 */
unsigned threadCount();

/**
 * Override the thread count for subsequent `parallelFor` calls
 * (tests use this to compare 1-thread and N-thread runs in-process).
 * Pass 0 to restore the MSQ_THREADS / hardware default.
 */
void setThreadCount(unsigned n);

/**
 * Invoke `body(i)` for every i in [begin, end), possibly concurrently.
 *
 * Bodies for distinct indices must be independent: each may read shared
 * immutable state but write only locations private to its index. Under
 * that contract the result is bit-identical for any thread count.
 *
 * `grain` is the number of consecutive indices claimed at a time;
 * raise it when the per-index work is tiny. Ranges not longer than
 * `grain`, a thread count of 1, and calls from inside another
 * `parallelFor` body all run serially inline.
 *
 * The first exception thrown by a body is rethrown on the calling
 * thread once all workers have drained (remaining chunks are skipped).
 *
 * Thread safe: top-level calls from different application threads are
 * serialized — one job runs at a time, each getting up to
 * threadCount() threads while it runs.
 */
void parallelFor(size_t begin, size_t end,
                 const std::function<void(size_t)> &body, size_t grain = 1);

} // namespace msq

#endif // MSQ_COMMON_PARALLEL_H
