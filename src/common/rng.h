/**
 * @file
 * Deterministic random number generation.
 *
 * All experiments in this repository must be reproducible bit-for-bit, so
 * every randomized component takes an explicit Rng seeded from the
 * experiment configuration. The generator is xoshiro256** seeded through
 * splitmix64, which is fast, high quality, and has a trivially portable
 * implementation (no dependence on libstdc++ distribution internals).
 */

#ifndef MSQ_COMMON_RNG_H
#define MSQ_COMMON_RNG_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace msq {

/** xoshiro256** pseudo random generator with distribution helpers. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0 */
    uint64_t uniformInt(uint64_t n);

    /** Standard normal via Box-Muller (cached pair). */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /**
     * Student-t sample with `dof` degrees of freedom. Used to synthesize
     * heavy-tailed foundational-model weight distributions.
     */
    double studentT(double dof);

    /** Bernoulli trial with probability p of true. */
    bool bernoulli(double p);

    /** Sample k distinct indices from [0, n) (k <= n). */
    std::vector<size_t> sampleWithoutReplacement(size_t n, size_t k);

    /** Derive an independent child generator (for parallel experiments). */
    Rng fork();

  private:
    uint64_t s_[4];
    bool hasCachedGaussian_ = false;
    double cachedGaussian_ = 0.0;
};

} // namespace msq

#endif // MSQ_COMMON_RNG_H
