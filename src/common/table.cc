#include "common/table.h"

#include <cstdio>
#include <sstream>

namespace msq {

Table::Table(std::string title)
    : title_(std::move(title))
{
}

void
Table::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
Table::addRow(std::vector<std::string> row)
{
    rows_.push_back(Row{false, std::move(row)});
}

void
Table::addSeparator()
{
    rows_.push_back(Row{true, {}});
}

std::string
Table::render() const
{
    // Column widths across header and all rows.
    std::vector<size_t> widths;
    auto grow = [&widths](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    grow(header_);
    for (const Row &row : rows_)
        if (!row.separator)
            grow(row.cells);

    size_t total = 0;
    for (size_t w : widths)
        total += w + 3;
    if (total > 0)
        total -= 1;

    std::ostringstream out;
    if (!title_.empty()) {
        out << title_ << '\n';
        out << std::string(std::max(title_.size(), total), '=') << '\n';
    }

    auto emit = [&out, &widths](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < widths.size(); ++i) {
            const std::string &cell = i < cells.size() ? cells[i] : "";
            out << cell << std::string(widths[i] - cell.size(), ' ');
            if (i + 1 < widths.size())
                out << " | ";
        }
        out << '\n';
    };

    if (!header_.empty()) {
        emit(header_);
        out << std::string(total, '-') << '\n';
    }
    for (const Row &row : rows_) {
        if (row.separator)
            out << std::string(total, '-') << '\n';
        else
            emit(row.cells);
    }
    return out.str();
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fputc('\n', stdout);
}

std::string
Table::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::fmtInt(long long v)
{
    char digits[32];
    std::snprintf(digits, sizeof(digits), "%lld", v);
    std::string raw(digits);
    std::string out;
    const bool neg = !raw.empty() && raw[0] == '-';
    const size_t start = neg ? 1 : 0;
    const size_t n = raw.size() - start;
    for (size_t i = 0; i < n; ++i) {
        if (i > 0 && (n - i) % 3 == 0)
            out.push_back(',');
        out.push_back(raw[start + i]);
    }
    return neg ? "-" + out : out;
}

} // namespace msq
