/**
 * @file
 * Instruction-set path selection for the hand-vectorized kernels.
 *
 * Every hot integer/float inner loop in this library (the blocked GEMM
 * accumulation in serve/kernel_dispatch.h, the KV-span decode and
 * activation-quantization passes in quant/span_kernels.h) exists in a
 * scalar form plus hand-written SIMD variants. All of them select their
 * implementation through one process-wide `KernelPath`, resolved once
 * as:
 *
 *   1. a `setKernelPath()` override (tests, benchmarks),
 *   2. else the `MSQ_KERNEL` environment variable
 *      (`scalar|sse2|avx2|neon`; invalid or unusable values warn and
 *      fall through),
 *   3. else the best path the CPU supports (CPUID probe via
 *      `__builtin_cpu_supports` on x86; NEON is baseline on AArch64).
 *
 * Selection is a plain atomic read of an enum — there is no GNU ifunc
 * involved, so sanitizer runtimes (TSan in particular) never see a
 * resolver run before their own startup, which is what forced the old
 * `target_clones` mechanism to be compiled out under TSan.
 *
 * Every path computes bit-identical results by construction: the int32
 * accumulations are overflow-free (accel/int_dequant.h maxPanelShift),
 * so integer lane order is immaterial, and the float variants issue
 * exactly the IEEE operations of the scalar code (no FMA contraction,
 * no reassociation) — tests/test_kernel_dispatch.cc enforces byte
 * identity for every path usable on the host.
 */

#ifndef MSQ_COMMON_SIMD_DISPATCH_H
#define MSQ_COMMON_SIMD_DISPATCH_H

#include <string>
#include <vector>

namespace msq {

/** Kernel instruction-set paths, in ascending order of preference. */
enum class KernelPath : int
{
    Scalar = 0, ///< portable scalar loops — the always-available oracle
    Sse2,       ///< x86-64 baseline 128-bit integer/double vectors
    Avx2,       ///< 256-bit integer/double vectors (CPUID-gated)
    Neon,       ///< AArch64 128-bit vectors (baseline on that target)
};

/** Number of KernelPath enumerators (for iteration in tests). */
constexpr int kKernelPathCount = 4;

/** Stable lowercase name (`scalar`, `sse2`, `avx2`, `neon`). */
const char *kernelPathName(KernelPath path);

/** Parse a kernelPathName() string. Returns false on unknown names. */
bool parseKernelPath(const std::string &name, KernelPath &out);

/** Whether this build carries code for `path` (compile-time gate). */
bool kernelPathCompiled(KernelPath path);

/** Whether `path` is compiled in AND supported by the running CPU. */
bool kernelPathUsable(KernelPath path);

/** Every usable path, ascending preference; always contains Scalar. */
std::vector<KernelPath> usableKernelPaths();

/**
 * The path every dispatching kernel currently runs: override if set,
 * else the MSQ_KERNEL / CPUID default (resolved once per process).
 */
KernelPath activeKernelPath();

/**
 * Force `path` for subsequent kernel invocations (tests, benchmarks,
 * the forced-path CI legs). @pre kernelPathUsable(path)
 */
void setKernelPath(KernelPath path);

/** Drop a setKernelPath() override: back to the MSQ_KERNEL/CPUID default. */
void resetKernelPath();

} // namespace msq

#endif // MSQ_COMMON_SIMD_DISPATCH_H
