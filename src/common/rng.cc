#include "common/rng.h"

#include <cmath>

#include "common/logging.h"

namespace msq {

namespace {

/** splitmix64 step, used only for seeding. */
uint64_t
splitmix64(uint64_t &state)
{
    state += 0x9e3779b97f4a7c15ULL;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &lane : s_)
        lane = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 top bits -> double in [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    MSQ_ASSERT(n > 0, "uniformInt requires n > 0");
    // Rejection sampling to avoid modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

double
Rng::gaussian()
{
    if (hasCachedGaussian_) {
        hasCachedGaussian_ = false;
        return cachedGaussian_;
    }
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cachedGaussian_ = r * std::sin(theta);
    hasCachedGaussian_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

double
Rng::studentT(double dof)
{
    MSQ_ASSERT(dof > 0.0, "studentT requires dof > 0");
    // t = Z / sqrt(ChiSq(dof) / dof); ChiSq built from gaussians for
    // integral dof is slow for large dof, so use the gamma-free Bailey
    // polar variant: t = sqrt(dof * (u^{-2/dof} - 1)) * cos(theta).
    double u;
    do {
        u = uniform();
    } while (u <= 0.0);
    const double theta = 2.0 * M_PI * uniform();
    const double radius = std::sqrt(dof * (std::pow(u, -2.0 / dof) - 1.0));
    return radius * std::cos(theta);
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::vector<size_t>
Rng::sampleWithoutReplacement(size_t n, size_t k)
{
    MSQ_ASSERT(k <= n, "cannot sample more items than the population");
    // Partial Fisher-Yates over an index vector.
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i)
        idx[i] = i;
    for (size_t i = 0; i < k; ++i) {
        const size_t j = i + uniformInt(n - i);
        std::swap(idx[i], idx[j]);
    }
    idx.resize(k);
    return idx;
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ULL);
}

} // namespace msq
