/**
 * @file
 * Descriptive statistics helpers used by the outlier analysis, the
 * synthetic model generator, and the benchmark harnesses.
 */

#ifndef MSQ_COMMON_STATS_H
#define MSQ_COMMON_STATS_H

#include <cstddef>
#include <vector>

namespace msq {

/**
 * Summary of a sample: moments and extremes.
 *
 * Standard-deviation convention (used consistently by `stddev()` and
 * `SampleSummary`): the *sample* standard deviation with Bessel's
 * correction, sqrt(sum (x - mean)^2 / (n - 1)), which is 0 for fewer
 * than two observations. Kurtosis uses the conventional population
 * central moments m4 / m2^2 - 3.
 */
struct SampleSummary
{
    size_t count = 0;
    double mean = 0.0;
    double stddev = 0.0;     ///< sample (n - 1) standard deviation
    double minValue = 0.0;
    double maxValue = 0.0;
    double kurtosis = 0.0;   ///< excess kurtosis (0 for a Gaussian)
};

/** Compute the summary of a sample (empty sample yields zeros). */
SampleSummary summarize(const std::vector<double> &values);

/** Arithmetic mean (0 for an empty sample). */
double mean(const std::vector<double> &values);

/** Sample (n - 1) standard deviation; 0 for fewer than 2 samples. */
double stddev(const std::vector<double> &values);

/**
 * Percentile with linear interpolation; p in [0, 100].
 * @pre values non-empty.
 */
double percentile(std::vector<double> values, double p);

/** Geometric mean. @pre all values > 0 and non-empty. */
double geomean(const std::vector<double> &values);

/** Simple fixed-width histogram over [lo, hi] with `bins` buckets. */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t bins);

    /** Add one observation (clamped into range). */
    void add(double v);

    size_t bins() const { return counts_.size(); }
    size_t count(size_t bin) const { return counts_[bin]; }
    size_t total() const { return total_; }

    /** Center of bucket `bin`. */
    double binCenter(size_t bin) const;

  private:
    double lo_;
    double hi_;
    std::vector<size_t> counts_;
    size_t total_ = 0;
};

} // namespace msq

#endif // MSQ_COMMON_STATS_H
