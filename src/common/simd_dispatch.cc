#include "common/simd_dispatch.h"

#include <atomic>
#include <cstdlib>

#include "common/logging.h"
#include "common/simd_target.h"

namespace msq {

namespace {

/** -1 = no override; otherwise the forced KernelPath. */
std::atomic<int> path_override{-1};

bool
cpuSupports(KernelPath path)
{
    switch (path) {
    case KernelPath::Scalar:
        return true;
#if MSQ_SIMD_X86
    case KernelPath::Sse2:
        return true; // architectural baseline on x86-64
    case KernelPath::Avx2:
        return __builtin_cpu_supports("avx2") != 0;
#endif
#if MSQ_SIMD_NEON
    case KernelPath::Neon:
        return true; // NEON is baseline on AArch64
#endif
    default:
        return false;
    }
}

/** env / CPUID resolution, performed once (thread-safe magic static). */
KernelPath
resolveDefaultPath()
{
    if (const char *env = std::getenv("MSQ_KERNEL")) {
        KernelPath wanted;
        if (!parseKernelPath(env, wanted)) {
            warn("ignoring unknown MSQ_KERNEL value '" + std::string(env) +
                 "' (expected scalar|sse2|avx2|neon)");
        } else if (!kernelPathUsable(wanted)) {
            warn("MSQ_KERNEL=" + std::string(env) +
                 " is not usable on this host; selecting automatically");
        } else {
            return wanted;
        }
    }
    KernelPath best = KernelPath::Scalar;
    for (int p = 0; p < kKernelPathCount; ++p)
        if (kernelPathUsable(static_cast<KernelPath>(p)))
            best = static_cast<KernelPath>(p);
    return best;
}

KernelPath
defaultKernelPath()
{
    static const KernelPath path = resolveDefaultPath();
    return path;
}

} // namespace

const char *
kernelPathName(KernelPath path)
{
    switch (path) {
    case KernelPath::Scalar:
        return "scalar";
    case KernelPath::Sse2:
        return "sse2";
    case KernelPath::Avx2:
        return "avx2";
    case KernelPath::Neon:
        return "neon";
    }
    return "invalid";
}

bool
parseKernelPath(const std::string &name, KernelPath &out)
{
    for (int p = 0; p < kKernelPathCount; ++p) {
        const KernelPath path = static_cast<KernelPath>(p);
        if (name == kernelPathName(path)) {
            out = path;
            return true;
        }
    }
    return false;
}

bool
kernelPathCompiled(KernelPath path)
{
    switch (path) {
    case KernelPath::Scalar:
        return true;
    case KernelPath::Sse2:
    case KernelPath::Avx2:
        return MSQ_SIMD_X86 != 0;
    case KernelPath::Neon:
        return MSQ_SIMD_NEON != 0;
    }
    return false;
}

bool
kernelPathUsable(KernelPath path)
{
    return kernelPathCompiled(path) && cpuSupports(path);
}

std::vector<KernelPath>
usableKernelPaths()
{
    std::vector<KernelPath> paths;
    for (int p = 0; p < kKernelPathCount; ++p)
        if (kernelPathUsable(static_cast<KernelPath>(p)))
            paths.push_back(static_cast<KernelPath>(p));
    return paths;
}

KernelPath
activeKernelPath()
{
    const int forced = path_override.load(std::memory_order_acquire);
    if (forced >= 0)
        return static_cast<KernelPath>(forced);
    return defaultKernelPath();
}

void
setKernelPath(KernelPath path)
{
    MSQ_ASSERT(kernelPathUsable(path),
               "cannot force a kernel path this host cannot run");
    path_override.store(static_cast<int>(path), std::memory_order_release);
}

void
resetKernelPath()
{
    path_override.store(-1, std::memory_order_release);
}

} // namespace msq
