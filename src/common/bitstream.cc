#include "common/bitstream.h"

#include "common/logging.h"

namespace msq {

void
BitWriter::write(uint64_t value, unsigned bits)
{
    MSQ_ASSERT(bits <= 64, "BitWriter::write supports at most 64 bits");
    for (unsigned i = 0; i < bits; ++i) {
        const size_t byte = bitCount_ >> 3;
        const unsigned offset = bitCount_ & 7;
        if (byte >= bytes_.size())
            bytes_.push_back(0);
        if ((value >> i) & 1ULL)
            bytes_[byte] |= static_cast<uint8_t>(1u << offset);
        ++bitCount_;
    }
}

std::vector<uint8_t>
BitWriter::take()
{
    std::vector<uint8_t> out;
    out.swap(bytes_);
    bitCount_ = 0;
    return out;
}

BitReader::BitReader(const std::vector<uint8_t> &bytes)
    : bytes_(bytes)
{
}

uint64_t
BitReader::read(unsigned bits)
{
    MSQ_ASSERT(bits <= 64, "BitReader::read supports at most 64 bits");
    MSQ_ASSERT(pos_ + bits <= capacity(), "BitReader exhausted");
    uint64_t value = 0;
    for (unsigned i = 0; i < bits; ++i) {
        const size_t byte = pos_ >> 3;
        const unsigned offset = pos_ & 7;
        if ((bytes_[byte] >> offset) & 1u)
            value |= 1ULL << i;
        ++pos_;
    }
    return value;
}

int64_t
signExtend(uint64_t value, unsigned bits)
{
    MSQ_ASSERT(bits >= 1 && bits <= 64, "signExtend bit width out of range");
    if (bits == 64)
        return static_cast<int64_t>(value);
    const uint64_t mask = (1ULL << bits) - 1;
    value &= mask;
    const uint64_t sign = 1ULL << (bits - 1);
    if (value & sign)
        value |= ~mask;
    return static_cast<int64_t>(value);
}

} // namespace msq
