/**
 * @file
 * Annotated mutex primitives for clang thread-safety analysis.
 *
 * The standard library's `std::mutex` carries no capability attributes
 * (libstdc++ ships none), so `MSQ_GUARDED_BY(some_std_mutex)` would not
 * analyze. These thin wrappers put the attributes on the type:
 *
 *  - `Mutex`      an exclusive capability over a `std::mutex`
 *  - `MutexLock`  the RAII guard (`std::lock_guard` analog) the
 *                 analysis tracks as a scoped acquisition
 *  - `CondVar`    a condition variable whose `wait()` declares the
 *                 locking precondition (`MSQ_REQUIRES(mu)`)
 *
 * Wait loops are written out explicitly at the call site —
 * `while (!predicate) cv.wait(mu);` — instead of taking a predicate
 * lambda, so the predicate's reads of guarded state sit in a scope the
 * analysis can see the lock held in (a lambda body is analyzed as a
 * separate function with no lock context).
 *
 * Zero overhead: every method is an inline forward to the wrapped
 * `std::mutex` / `std::condition_variable`.
 */

#ifndef MSQ_COMMON_MUTEX_H
#define MSQ_COMMON_MUTEX_H

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace msq {

/** Exclusive lockable capability wrapping `std::mutex`. */
class MSQ_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() MSQ_ACQUIRE() { m_.lock(); }
    void unlock() MSQ_RELEASE() { m_.unlock(); }
    bool try_lock() MSQ_TRY_ACQUIRE(true) { return m_.try_lock(); }

  private:
    friend class CondVar;
    std::mutex m_;
};

/** RAII exclusive lock over a `Mutex` (`std::lock_guard` analog). */
class MSQ_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) MSQ_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
    ~MutexLock() MSQ_RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    Mutex &mu_;
};

/**
 * Condition variable bound to `Mutex`. `wait()` atomically releases the
 * (held) mutex, blocks, and reacquires it before returning — callers
 * loop on their predicate around it. Notification needs no lock held.
 */
class CondVar
{
  public:
    CondVar() = default;
    CondVar(const CondVar &) = delete;
    CondVar &operator=(const CondVar &) = delete;

    /** @pre `mu` is held by the caller; still held on return. */
    void wait(Mutex &mu) MSQ_REQUIRES(mu)
    {
        // Adopt the caller's hold for the duration of the wait; release
        // the std::unique_lock before it destructs so ownership stays
        // with the caller (the analysis sees none of this — the locked
        // state is unchanged across the call, as MSQ_REQUIRES declares).
        std::unique_lock<std::mutex> lock(mu.m_, std::adopt_lock);
        cv_.wait(lock);
        lock.release();
    }

    void notifyOne() { cv_.notify_one(); }
    void notifyAll() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace msq

#endif // MSQ_COMMON_MUTEX_H
