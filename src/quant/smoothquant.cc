#include "quant/smoothquant.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "mx/mx_int.h"
#include "quant/quant_util.h"

namespace msq {

std::vector<double>
migrationScales(const Matrix &w, const Matrix &calib, double alpha)
{
    const size_t k = w.rows();
    std::vector<double> scales(k, 1.0);
    for (size_t r = 0; r < k; ++r) {
        double amax = 0.0;
        if (!calib.empty() && calib.rows() == k) {
            for (size_t t = 0; t < calib.cols(); ++t)
                amax = std::max(amax, std::fabs(calib(r, t)));
        }
        double wmax = 0.0;
        for (size_t c = 0; c < w.cols(); ++c)
            wmax = std::max(wmax, std::fabs(w(r, c)));
        const double num = std::pow(std::max(amax, 1e-8), alpha);
        const double den = std::pow(std::max(wmax, 1e-8), 1.0 - alpha);
        scales[r] = std::max(num / den, 1e-6);
    }
    return scales;
}

void
migrateWeights(Matrix &w, const std::vector<double> &scales)
{
    MSQ_ASSERT(scales.size() == w.rows(), "migration scale count mismatch");
    for (size_t r = 0; r < w.rows(); ++r) {
        double *row = w.rowPtr(r);
        for (size_t c = 0; c < w.cols(); ++c)
            row[c] *= scales[r];
    }
}

void
migrateActivations(Matrix &x, const std::vector<double> &scales)
{
    MSQ_ASSERT(scales.size() == x.rows(), "migration scale count mismatch");
    for (size_t r = 0; r < x.rows(); ++r) {
        double *row = x.rowPtr(r);
        for (size_t t = 0; t < x.cols(); ++t)
            row[t] /= scales[r];
    }
}

SmoothQuantQuantizer::SmoothQuantQuantizer(unsigned bits, double alpha,
                                           size_t group_size)
    : bits_(bits), alpha_(alpha), groupSize_(group_size)
{
}

std::string
SmoothQuantQuantizer::name() const
{
    return "SmoothQuant-W" + std::to_string(bits_);
}

QuantResult
SmoothQuantQuantizer::quantize(const Matrix &w, const Matrix &calib)
{
    QuantResult res;
    res.method = name();
    const int qmax = intQMax(bits_);
    const size_t group = groupSize_ == 0 ? w.cols() : groupSize_;

    const std::vector<double> scales = migrationScales(w, calib, alpha_);
    Matrix scaled = w;
    migrateWeights(scaled, scales);

    // Groups along the reduction dimension: migration makes the scaled
    // weight rows harder to quantize, the cost SmoothQuant trades for
    // easier activations.
    symQuantColumnGroups(scaled, group, qmax);

    // Fold the inverse migration back so the result is a drop-in
    // replacement for the original weights.
    for (size_t r = 0; r < scaled.rows(); ++r) {
        double *row = scaled.rowPtr(r);
        for (size_t c = 0; c < scaled.cols(); ++c)
            row[c] /= scales[r];
    }

    res.dequant = std::move(scaled);
    res.ebw = bits_ + 16.0 / static_cast<double>(group);
    return res;
}

} // namespace msq
