#include "quant/awq.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "mx/mx_int.h"
#include "quant/quant_util.h"

namespace msq {

AwqQuantizer::AwqQuantizer(unsigned bits, size_t group_size,
                           unsigned grid_points)
    : bits_(bits), groupSize_(group_size), gridPoints_(grid_points)
{
}

std::string
AwqQuantizer::name() const
{
    return "AWQ-W" + std::to_string(bits_);
}

QuantResult
AwqQuantizer::quantize(const Matrix &w, const Matrix &calib)
{
    QuantResult res;
    res.method = name();
    const int qmax = intQMax(bits_);
    const size_t group = groupSize_ == 0 ? w.cols() : groupSize_;
    const size_t k = w.rows();

    // Per-input-channel mean absolute activation (salience signal).
    std::vector<double> act_mag(k, 1.0);
    if (!calib.empty() && calib.rows() == k) {
        for (size_t r = 0; r < k; ++r) {
            double acc = 0.0;
            for (size_t t = 0; t < calib.cols(); ++t)
                acc += std::fabs(calib(r, t));
            act_mag[r] = acc / static_cast<double>(calib.cols()) + 1e-12;
        }
    }

    auto quantize_scaled = [&](double alpha, Matrix &out) {
        out = w;
        // Scale rows up by s_k, quantize, scale back down: protects the
        // channels with large activations from rounding error.
        std::vector<double> s(k);
        for (size_t r = 0; r < k; ++r)
            s[r] = std::pow(act_mag[r], alpha);
        // Normalize scales so the overall dynamic range is unchanged.
        double gm = 0.0;
        for (double v : s)
            gm += std::log(v);
        gm = std::exp(gm / static_cast<double>(k));
        for (size_t r = 0; r < k; ++r)
            s[r] /= gm;

        for (size_t r = 0; r < k; ++r) {
            double *row = out.rowPtr(r);
            for (size_t c = 0; c < out.cols(); ++c)
                row[c] *= s[r];
        }
        // Groups span the reduction dimension (AWQ's native layout), so
        // the per-channel scaling changes intra-group magnitudes.
        symQuantColumnGroups(out, group, qmax);
        for (size_t r = 0; r < k; ++r) {
            double *row = out.rowPtr(r);
            for (size_t c = 0; c < out.cols(); ++c)
                row[c] /= s[r];
        }
    };

    // Salience-weighted reconstruction error: || diag(a)(W - Q) ||^2,
    // a cheap stand-in for the calibration-output error that avoids a
    // full GEMM per grid point.
    auto weighted_err = [&](const Matrix &q) {
        double acc = 0.0;
        for (size_t r = 0; r < k; ++r) {
            const double a2 = act_mag[r] * act_mag[r];
            const double *wr = w.rowPtr(r);
            const double *qr = q.rowPtr(r);
            for (size_t c = 0; c < w.cols(); ++c) {
                const double d = wr[c] - qr[c];
                acc += a2 * d * d;
            }
        }
        return acc;
    };

    double best_err = -1.0;
    Matrix best;
    for (unsigned g = 0; g < gridPoints_; ++g) {
        const double alpha =
            static_cast<double>(g) / static_cast<double>(gridPoints_ - 1);
        Matrix q;
        quantize_scaled(alpha, q);
        const double err = weighted_err(q);
        if (best_err < 0.0 || err < best_err) {
            best_err = err;
            best = std::move(q);
        }
    }

    res.dequant = std::move(best);
    // Metadata: group scales plus one fp16 channel scale per input row.
    res.ebw = bits_ + 16.0 / static_cast<double>(group) +
              16.0 / static_cast<double>(w.cols());
    return res;
}

} // namespace msq
