#include "quant/gptq.h"

#include <algorithm>
#include <functional>
#include <vector>

#include "common/logging.h"
#include "mx/mx_int.h"
#include "quant/hessian.h"
#include "quant/quant_util.h"

namespace msq {

GptqQuantizer::GptqQuantizer(GptqConfig config)
    : config_(config)
{
}

std::string
GptqQuantizer::name() const
{
    return "GPTQ-W" + std::to_string(config_.bits);
}

void
gptqSweep(Matrix &work, const Matrix &hinv_chol, size_t block_size,
          const std::function<std::vector<double>(
              size_t row, const std::vector<double> &values)> &quantize_row,
          Matrix &out)
{
    const size_t k = work.rows();
    const size_t o = work.cols();
    MSQ_ASSERT(hinv_chol.rows() == k && hinv_chol.cols() == k,
               "Hessian factor shape mismatch");
    out = Matrix(k, o);

    // Error rows of the current block, E[j - i][:] (Algorithm 1, L31).
    std::vector<std::vector<double>> block_errors;
    block_errors.reserve(block_size);

    for (size_t i = 0; i < k; i += block_size) {
        const size_t block_end = std::min(i + block_size, k);
        block_errors.clear();

        for (size_t j = i; j < block_end; ++j) {
            std::vector<double> row(work.rowPtr(j), work.rowPtr(j) + o);
            std::vector<double> qrow = quantize_row(j, row);
            MSQ_ASSERT(qrow.size() == o, "quantize_row size mismatch");
            for (size_t c = 0; c < o; ++c)
                out(j, c) = qrow[c];

            // E_j = (W_j - Q_j) / L_jj (the factor's diagonal is the
            // OBS-effective sqrt([H^-1_F]_jj) of the remaining set).
            const double ljj = hinv_chol(j, j);
            MSQ_ASSERT(ljj > 0.0, "non-positive Cholesky diagonal");
            std::vector<double> err(o);
            for (size_t c = 0; c < o; ++c)
                err[c] = (row[c] - qrow[c]) / ljj;

            // Compensate the remaining rows of this block:
            // W_r -= L[r][j] * E_j.
            for (size_t r = j + 1; r < block_end; ++r) {
                const double f = hinv_chol(r, j);
                if (f == 0.0)
                    continue;
                double *wr = work.rowPtr(r);
                for (size_t c = 0; c < o; ++c)
                    wr[c] -= f * err[c];
            }
            block_errors.push_back(std::move(err));
        }

        // Lazy update of all rows after the block (Algorithm 1, L36):
        // W_r -= sum_j L[r][j] * E_j.
        for (size_t r = block_end; r < k; ++r) {
            double *wr = work.rowPtr(r);
            for (size_t j = i; j < block_end; ++j) {
                const double f = hinv_chol(r, j);
                if (f == 0.0)
                    continue;
                const std::vector<double> &err = block_errors[j - i];
                for (size_t c = 0; c < o; ++c)
                    wr[c] -= f * err[c];
            }
        }
    }
}

QuantResult
GptqQuantizer::quantize(const Matrix &w, const Matrix &calib)
{
    QuantResult res;
    res.method = name();

    Matrix hinv_chol =
        hessianInverseCholeskyCached(calib, config_.dampRel);
    Matrix work = w;
    const int qmax = intQMax(config_.bits);
    const size_t group = config_.groupSize == 0 ? w.cols() : config_.groupSize;

    gptqSweep(
        work, hinv_chol, config_.blockSize,
        [&](size_t, const std::vector<double> &values) {
            std::vector<double> q = values;
            for (size_t c0 = 0; c0 < q.size(); c0 += group) {
                const size_t n = std::min(group, q.size() - c0);
                symQuantSpan(q.data() + c0, n, qmax);
            }
            return q;
        },
        res.dequant);

    res.ebw = config_.bits + 16.0 / static_cast<double>(group);
    return res;
}

} // namespace msq
