/**
 * @file
 * Atom-lite baseline: mixed-precision group quantization with channel
 * reordering. Atom identifies the input channels with the largest
 * calibration activations, reorders them to the tail of the matrix, and
 * keeps them at 8-bit while the remaining channels use the low base
 * precision with fine-grained group scales. Activations follow the same
 * reordering, so the kernel stays dense and memory-aligned.
 */

#ifndef MSQ_QUANT_ATOM_LITE_H
#define MSQ_QUANT_ATOM_LITE_H

#include "quant/quantizer.h"

namespace msq {

/** Atom-style mixed-precision quantizer. */
class AtomLite : public WeightQuantizer
{
  public:
    /**
     * @param bits base element bit width for normal channels
     * @param group_size scale-sharing group size
     * @param outlier_channels number of input channels kept at 8-bit
     */
    AtomLite(unsigned bits, size_t group_size = 128,
             size_t outlier_channels = 32);

    std::string name() const override;
    QuantResult quantize(const Matrix &w, const Matrix &calib) override;

  private:
    unsigned bits_;
    size_t groupSize_;
    size_t outlierChannels_;
};

} // namespace msq

#endif // MSQ_QUANT_ATOM_LITE_H
