/**
 * @file
 * KV-cache quantization following the KIVI recipe cited by the paper's
 * ablation (Table 7, last row): keys are quantized per channel, values
 * per token, both at 2-bit with a macro-block group size of 128 and a
 * residual window of the most recent R tokens kept at full precision.
 *
 * The asymmetric span quantizer is split into parameter fitting
 * (`asymSpanParams`), encode, and decode so the whole-matrix functions
 * below and the streaming per-sequence pool (quant/kv_pool.h) share one
 * arithmetic: a span quantized incrementally by the pool is bit
 * identical to the same span quantized by `quantizeKeyCache` /
 * `quantizeValueCache`.
 */

#ifndef MSQ_QUANT_KV_CACHE_H
#define MSQ_QUANT_KV_CACHE_H

#include <cstddef>
#include <cstdint>

#include "common/matrix.h"

namespace msq {

/** Configuration for KV-cache quantization. */
struct KvCacheConfig
{
    unsigned bits = 2;        ///< element bit width
    size_t groupSize = 128;   ///< scale-sharing group
    size_t residual = 128;    ///< most recent tokens kept at full precision
};

/**
 * Fitted asymmetric (zero-point) quantization grid of one span:
 * level i reconstructs to `lo + i * step`. A constant span fits with
 * `step == 0` and is exactly representable by code 0.
 */
struct AsymSpanGrid
{
    double lo = 0.0;
    double step = 0.0;
};

/**
 * Fit the `bits`-wide asymmetric grid spanning [min, max] of the span:
 * the KIVI recipe. At 2 bits this yields four usable levels, versus
 * three for symmetric quantization. Every element must be finite — a
 * single NaN/Inf would otherwise poison lo/hi and rewrite the whole
 * span to NaN on the round trip, so non-finite input is a fatal,
 * typed error. @pre 1 <= bits <= 8, n > 0
 */
AsymSpanGrid asymSpanParams(const double *values, size_t n, unsigned bits);

/** Encode one value onto the grid (round to nearest, clamped). */
uint8_t asymEncode(double value, const AsymSpanGrid &grid, unsigned bits);

/** Reconstruct a code from the grid. */
inline double
asymDecode(uint8_t code, const AsymSpanGrid &grid)
{
    return grid.lo + static_cast<double>(code) * grid.step;
}

/**
 * Asymmetric round-to-nearest quantization of a span in place:
 * fit + encode + decode. Fatal on non-finite input.
 */
void asymQuantSpan(double *values, size_t n, unsigned bits);

/**
 * Quantize a key cache K[channel][token]: per-channel grouping (groups
 * of `groupSize` tokens within one channel), last `residual` tokens
 * untouched.
 */
Matrix quantizeKeyCache(const Matrix &keys, const KvCacheConfig &config);

/**
 * Quantize a value cache V[channel][token]: per-token grouping (groups
 * of `groupSize` channels within one token), last `residual` tokens
 * untouched.
 */
Matrix quantizeValueCache(const Matrix &values, const KvCacheConfig &config);

} // namespace msq

#endif // MSQ_QUANT_KV_CACHE_H
