/**
 * @file
 * KV-cache quantization following the KIVI recipe cited by the paper's
 * ablation (Table 7, last row): keys are quantized per channel, values
 * per token, both at 2-bit with a macro-block group size of 128 and a
 * residual window of the most recent R tokens kept at full precision.
 */

#ifndef MSQ_QUANT_KV_CACHE_H
#define MSQ_QUANT_KV_CACHE_H

#include <cstddef>

#include "common/matrix.h"

namespace msq {

/** Configuration for KV-cache quantization. */
struct KvCacheConfig
{
    unsigned bits = 2;        ///< element bit width
    size_t groupSize = 128;   ///< scale-sharing group
    size_t residual = 128;    ///< most recent tokens kept at full precision
};

/**
 * Asymmetric (zero-point) round-to-nearest quantization of a span: the
 * KIVI recipe. At 2 bits this yields four usable levels spanning
 * [min, max], versus three for symmetric quantization.
 */
void asymQuantSpan(double *values, size_t n, unsigned bits);

/**
 * Quantize a key cache K[channel][token]: per-channel grouping (groups
 * of `groupSize` tokens within one channel), last `residual` tokens
 * untouched.
 */
Matrix quantizeKeyCache(const Matrix &keys, const KvCacheConfig &config);

/**
 * Quantize a value cache V[channel][token]: per-token grouping (groups
 * of `groupSize` channels within one token), last `residual` tokens
 * untouched.
 */
Matrix quantizeValueCache(const Matrix &values, const KvCacheConfig &config);

} // namespace msq

#endif // MSQ_QUANT_KV_CACHE_H
