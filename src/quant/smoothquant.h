/**
 * @file
 * SmoothQuant-style activation-difficulty migration. For weight +
 * activation quantization, per-input-channel scales
 *   s_k = (max |x_k|)^alpha / (max |W_k,:|)^(1-alpha)
 * move activation outliers into the weights: x'_k = x_k / s_k and
 * W'_k,: = W_k,: * s_k, leaving the layer output unchanged. The paper
 * borrows this migration (Section 7.2) with alpha up to 0.7 for
 * MicroScopiQ and 0.5 for the SmoothQuant baseline itself.
 */

#ifndef MSQ_QUANT_SMOOTHQUANT_H
#define MSQ_QUANT_SMOOTHQUANT_H

#include <vector>

#include "quant/quantizer.h"

namespace msq {

/**
 * Compute the per-input-channel migration scales for strength alpha.
 * Scales are clamped away from zero for numerical safety.
 */
std::vector<double> migrationScales(const Matrix &w, const Matrix &calib,
                                    double alpha);

/** Apply migration: w_k,: *= s_k (in place). */
void migrateWeights(Matrix &w, const std::vector<double> &scales);

/** Apply the inverse migration to activations: x_k,: /= s_k (in place). */
void migrateActivations(Matrix &x, const std::vector<double> &scales);

/**
 * SmoothQuant baseline: migrate difficulty at fixed alpha, then group-RTN
 * quantize weights; the returned dequantized weights already fold the
 * inverse scaling back, so downstream evaluation uses them verbatim with
 * unscaled activations.
 */
class SmoothQuantQuantizer : public WeightQuantizer
{
  public:
    SmoothQuantQuantizer(unsigned bits, double alpha = 0.5,
                         size_t group_size = 128);

    std::string name() const override;
    QuantResult quantize(const Matrix &w, const Matrix &calib) override;

  private:
    unsigned bits_;
    double alpha_;
    size_t groupSize_;
};

} // namespace msq

#endif // MSQ_QUANT_SMOOTHQUANT_H
