/**
 * @file
 * OliVe baseline: outlier-victim pair quantization (Guo et al., ISCA'23),
 * the group-B co-design technique the paper compares against most often.
 *
 * OliVe quantizes inliers and outliers at the *same* bit width but in
 * different formats: inliers use a flint/int-style code, outliers use
 * "abfloat" (adaptive-biased float), whose codes cover large magnitudes
 * only. To keep memory aligned, the element *adjacent* to each outlier
 * (its "victim") is pruned to zero and its encoding is repurposed as the
 * outlier identifier. The critical failure mode reproduced here: when
 * two outliers are adjacent, the second outlier itself becomes the
 * victim and is destroyed — the root cause of OliVe's accuracy collapse
 * on modern FMs with non-trivial adjacent-outlier rates (paper
 * Section 3.2, Figure 2).
 */

#ifndef MSQ_QUANT_OLIVE_H
#define MSQ_QUANT_OLIVE_H

#include "quant/quantizer.h"

namespace msq {

/** OliVe outlier-victim pair quantizer. */
class OliveQuantizer : public WeightQuantizer
{
  public:
    explicit OliveQuantizer(unsigned bits, size_t group_size = 128);

    std::string name() const override;
    QuantResult quantize(const Matrix &w, const Matrix &calib) override;

    /**
     * abfloat encode: round `v` to +/- 2^e * scale with integer e in
     * [bias, bias + 2^(bits-1) - 2] (one code reserved as identifier).
     * Exposed for unit tests.
     */
    static double abfloatRoundTrip(double v, unsigned bits, double scale,
                                   int bias);

  private:
    unsigned bits_;
    size_t groupSize_;
};

} // namespace msq

#endif // MSQ_QUANT_OLIVE_H
