#include "quant/rtn.h"

#include <algorithm>

#include "mx/mx_int.h"
#include "quant/quant_util.h"

namespace msq {

RtnQuantizer::RtnQuantizer(unsigned bits, size_t group_size)
    : bits_(bits), groupSize_(group_size)
{
}

std::string
RtnQuantizer::name() const
{
    return "RTN-W" + std::to_string(bits_);
}

QuantResult
RtnQuantizer::quantize(const Matrix &w, const Matrix &calib)
{
    (void)calib;
    QuantResult res;
    res.method = name();
    res.dequant = w;
    const int qmax = intQMax(bits_);

    if (groupSize_ == 0) {
        // Per-tensor: a single scale for the whole matrix (the paper's
        // "INT-b scalar quantization" ablation stage).
        symQuantSpan(res.dequant.data(), res.dequant.size(), qmax);
        res.ebw = bits_;
        return res;
    }

    for (size_t r = 0; r < w.rows(); ++r) {
        double *row = res.dequant.rowPtr(r);
        for (size_t c0 = 0; c0 < w.cols(); c0 += groupSize_) {
            const size_t n = std::min(groupSize_, w.cols() - c0);
            symQuantSpan(row + c0, n, qmax);
        }
    }
    // Metadata: one 16-bit scale per group.
    res.ebw = bits_ + 16.0 / static_cast<double>(groupSize_);
    return res;
}

} // namespace msq
