#include "quant/gobo.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "quant/quant_util.h"

namespace msq {

GoboQuantizer::GoboQuantizer(unsigned index_bits, unsigned kmeans_iters)
    : indexBits_(index_bits), kmeansIters_(kmeans_iters)
{
}

std::string
GoboQuantizer::name() const
{
    return "GOBO-W" + std::to_string(indexBits_);
}

QuantResult
GoboQuantizer::quantize(const Matrix &w, const Matrix &calib)
{
    (void)calib;
    QuantResult res;
    res.method = name();
    res.dequant = w;
    const size_t n_total = w.size();
    const size_t n_centroids = 1u << indexBits_;

    // Outlier split over the whole layer (GOBO operates per layer).
    const double thr = threeSigmaThreshold(w.data(), n_total);
    std::vector<double> inliers;
    inliers.reserve(n_total);
    size_t n_outliers = 0;
    for (size_t i = 0; i < n_total; ++i) {
        if (std::fabs(w.data()[i]) > thr)
            ++n_outliers;
        else
            inliers.push_back(w.data()[i]);
    }
    outlierFraction_ =
        n_total > 0 ? static_cast<double>(n_outliers) /
                      static_cast<double>(n_total)
                    : 0.0;

    // Codebook fit: centroids initialized uniformly over the inlier
    // range, refined by Lloyd iterations.
    double lo = 0.0, hi = 0.0;
    for (double v : inliers) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    std::vector<double> centroids(n_centroids);
    for (size_t c = 0; c < n_centroids; ++c) {
        const double frac = (static_cast<double>(c) + 0.5) /
                            static_cast<double>(n_centroids);
        centroids[c] = lo + frac * (hi - lo);
    }
    auto nearest = [&centroids](double v) {
        size_t best = 0;
        double best_d = std::fabs(v - centroids[0]);
        for (size_t c = 1; c < centroids.size(); ++c) {
            const double d = std::fabs(v - centroids[c]);
            if (d < best_d) {
                best_d = d;
                best = c;
            }
        }
        return best;
    };
    for (unsigned it = 0; it < kmeansIters_; ++it) {
        std::vector<double> sum(n_centroids, 0.0);
        std::vector<size_t> cnt(n_centroids, 0);
        for (double v : inliers) {
            const size_t c = nearest(v);
            sum[c] += v;
            ++cnt[c];
        }
        for (size_t c = 0; c < n_centroids; ++c)
            if (cnt[c] > 0)
                centroids[c] = sum[c] / static_cast<double>(cnt[c]);
    }

    // Materialize: inliers snap to their centroid, outliers stay exact
    // (full-precision side storage).
    for (size_t i = 0; i < n_total; ++i) {
        double &v = res.dequant.data()[i];
        if (std::fabs(v) <= thr)
            v = centroids[nearest(v)];
    }

    // EBW: index per element + (fp32 value + 32-bit position record) per
    // outlier + the codebook itself.
    res.ebw = indexBits_ + outlierFraction_ * (32.0 + 32.0) +
              32.0 * static_cast<double>(n_centroids) /
                  static_cast<double>(std::max<size_t>(n_total, 1));
    return res;
}

} // namespace msq
