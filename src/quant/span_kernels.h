/**
 * @file
 * Dispatched inner loops of the quant layer's serving hot paths: the
 * KV-pool span decode (quant/kv_pool.h `gather`) and the two passes of
 * channel-major activation quantization (quant/act_quant.h). Each
 * exists as a scalar loop plus hand-vectorized variants selected by
 * `activeKernelPath()` (common/simd_dispatch.h) — the same process-wide
 * switch that drives the blocked GEMM registry
 * (serve/kernel_dispatch.h), so `MSQ_KERNEL` forces every layer at
 * once.
 *
 * Bit-identity across paths is by construction: the vector variants
 * issue exactly the scalar code's IEEE-754 operations per element —
 * multiply then add for the asym grid (never an FMA, which would
 * single-round), `|x|` as a sign-bit mask, `floor(|x| + 0.5)` via the
 * directed-rounding instruction, min/max that agree with `std::min`/
 * `std::max` on every finite input — in the same per-element order.
 * Lanes never interact, so vector width cannot change any result.
 * tests/test_kernel_dispatch.cc and the decode/KV suites enforce byte
 * identity across every usable path.
 */

#ifndef MSQ_QUANT_SPAN_KERNELS_H
#define MSQ_QUANT_SPAN_KERNELS_H

#include <cstddef>
#include <cstdint>

#include "quant/kv_cache.h"

namespace msq {

/**
 * Decode `n` consecutive `bits`-wide codes of a packed plane, starting
 * at code index `idx0`, onto `grid`: dst[i] = lo + code * step —
 * element-identical to codeAt + asymDecode, but the bit cursor walks
 * sequentially and the grid arithmetic runs vectorized.
 * @pre 1 <= bits <= 8
 */
void asymDecodeSpan(const uint8_t *codes, size_t idx0, size_t n,
                    unsigned bits, const AsymSpanGrid &grid, double *dst);

/**
 * First activation-quantization pass: max_abs[j] =
 * max(max_abs[j], |row[j]|) for j < n.
 */
void maxAbsAccumulate(const double *row, size_t n, double *max_abs);

/**
 * Second activation-quantization pass: codes[j] = the MX-INT code of
 * row[j] * inv[j] — round to nearest, ties away from zero, saturate at
 * qmax (exactly mxIntQuantizeValue, see quant/act_quant.cc).
 * @pre qmax <= 127
 */
void quantizeCodesRow(const double *row, const double *inv, size_t n,
                      double qmax, int8_t *codes);

} // namespace msq

#endif // MSQ_QUANT_SPAN_KERNELS_H
