/**
 * @file
 * Hessian machinery for GPTQ-style error compensation (paper Section 4.1).
 *
 * For the layer objective sum_o || (W[:,o] - Q[:,o])^T X ||^2 the Hessian
 * is H = 2 X X^T + lambda I (k x k), identical for every output channel
 * because it depends only on the calibration inputs. MicroScopiQ uses the
 * diagonal of H^-1 both to pick the least-salient inliers for pruning
 * (saliency w_p^2 / [H^-1]_pp) and to compensate quantization error into
 * the not-yet-quantized rows.
 */

#ifndef MSQ_QUANT_HESSIAN_H
#define MSQ_QUANT_HESSIAN_H

#include "common/matrix.h"

namespace msq {

/**
 * Build the damped Hessian H = 2 X X^T + lambda I from calibration
 * activations X[k][n]. The damping term is `damp_rel` times the mean of
 * the undamped diagonal (GPTQ's "percdamp"), which keeps the matrix
 * positive definite even when some input channels are rarely active.
 */
Matrix buildHessian(const Matrix &calib, double damp_rel = 0.01);

/** Inverse of the damped Hessian via Cholesky. */
Matrix invertHessian(const Matrix &hessian);

/** Convenience: H^-1 straight from calibration data. */
Matrix hessianInverseFromCalib(const Matrix &calib, double damp_rel = 0.01);

/**
 * Lower Cholesky factor L of the damped H^-1 (H^-1 = L L^T). The GPTQ /
 * Algorithm 1 sweep compensates with rows of the *factor*, not of H^-1
 * itself: the factor encodes the sequential OBS elimination, i.e. the
 * remaining-submatrix inverse at every step. Quantizing row q uses
 *   err = (w_q - quant(w_q)) / L[q][q],
 *   W_r -= L[r][q] * err  for r > q,
 * and the pruning saliency denominator is L[q][q]^2.
 */
Matrix hessianInverseCholesky(const Matrix &calib, double damp_rel = 0.01);

/**
 * Cached variant: benchmarks quantize the same layer with many methods,
 * and the O(k^3) inverse dominates. Keyed by the calibration data's
 * content hash, so deterministic regeneration hits the cache. Cleared
 * with clearHessianCache().
 *
 * Thread safe (the parallel pipeline calls this from worker threads);
 * returns by value because the bounded cache may evict entries — of
 * negligible cost next to the factorization — and a reference into it
 * could be invalidated by a concurrent insert-triggered clear.
 */
Matrix hessianInverseCholeskyCached(const Matrix &calib,
                                    double damp_rel = 0.01);

/** Drop all cached Hessian factorizations. Thread safe. */
void clearHessianCache();

} // namespace msq

#endif // MSQ_QUANT_HESSIAN_H
