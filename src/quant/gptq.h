/**
 * @file
 * GPTQ baseline: group RTN quantization with second-order (Hessian)
 * error compensation, following Frantar et al. and the structure of the
 * paper's Algorithm 1 (minus the outlier/pruning machinery).
 *
 * Rows (reduction dimension k) are processed sequentially within
 * row-blocks of `blockSize`; after quantizing row k the residual error is
 * propagated into the not-yet-quantized rows of the block through H^-1,
 * and into the remaining rows once per block.
 */

#ifndef MSQ_QUANT_GPTQ_H
#define MSQ_QUANT_GPTQ_H

#include <functional>
#include <vector>

#include "quant/quantizer.h"

namespace msq {

/** Configuration for the GPTQ baseline. */
struct GptqConfig
{
    unsigned bits = 4;       ///< element bit width
    size_t groupSize = 128;  ///< scale-sharing group along outputs
    size_t blockSize = 128;  ///< row block (rB) for lazy Hessian updates
    double dampRel = 0.01;   ///< relative Hessian damping
};

/** GPTQ quantizer. */
class GptqQuantizer : public WeightQuantizer
{
  public:
    explicit GptqQuantizer(GptqConfig config);

    std::string name() const override;
    QuantResult quantize(const Matrix &w, const Matrix &calib) override;

  private:
    GptqConfig config_;
};

/**
 * Shared GPTQ skeleton used by GPTQ itself and by MicroScopiQ: walk rows
 * in blocks, call `quantize_row` to produce the quantized row, then apply
 * the Hessian compensation updates. `quantize_row` receives the current
 * (already compensated) row values and must return the dequantized row.
 *
 * `hinv_chol` is the lower Cholesky factor L of the damped H^-1
 * (H^-1 = L L^T). Compensation uses rows of the factor — the OBS-correct
 * sequential form (see hessianInverseCholesky): after quantizing row j,
 *   err = (W_j - Q_j) / L[j][j],  W_r -= L[r][j] * err  for r > j.
 * Passing the identity disables compensation.
 */
void gptqSweep(Matrix &work, const Matrix &hinv_chol, size_t block_size,
               const std::function<std::vector<double>(
                   size_t row, const std::vector<double> &values)> &quantize_row,
               Matrix &out);

} // namespace msq

#endif // MSQ_QUANT_GPTQ_H
