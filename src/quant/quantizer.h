/**
 * @file
 * Common interface for all weight quantizers (MicroScopiQ and the
 * baselines it is compared against).
 *
 * Layout convention used across the repository: a layer's weights are a
 * matrix W[k][o] where k (rows) is the reduction/input dimension and o
 * (columns) is the output-channel dimension. Calibration activations are
 * X[k][n] (one column per calibration token). The layer computes
 * Y = W^T X. Quantization groups are contiguous runs along o within one
 * k-row, matching the MicroScopiQ macro/micro-block definition and the
 * accelerator's row mapping (see docs/DESIGN.md "Interpretation notes").
 */

#ifndef MSQ_QUANT_QUANTIZER_H
#define MSQ_QUANT_QUANTIZER_H

#include <memory>
#include <string>

#include "common/matrix.h"

namespace msq {

/** Output of a weight quantizer. */
struct QuantResult
{
    Matrix dequant;          ///< dequantized weights, same shape as input
    double ebw = 0.0;        ///< effective bits per element incl. metadata
    std::string method;      ///< method name for reporting
};

/** Abstract weight quantizer. */
class WeightQuantizer
{
  public:
    virtual ~WeightQuantizer() = default;

    /** Method name for tables. */
    virtual std::string name() const = 0;

    /**
     * Quantize a layer.
     *
     * @param w Weights W[k][o].
     * @param calib Calibration activations X[k][n]; methods that do not
     *              use calibration data ignore it.
     */
    virtual QuantResult quantize(const Matrix &w, const Matrix &calib) = 0;
};

using QuantizerPtr = std::unique_ptr<WeightQuantizer>;

} // namespace msq

#endif // MSQ_QUANT_QUANTIZER_H
