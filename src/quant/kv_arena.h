/**
 * @file
 * Shared paged KV arena: the allocation substrate of the streaming KV
 * pools (quant/kv_pool.h) — the vLLM PagedAttention analog restated
 * over the packed KIVI-style pool. Instead of one growing allocation
 * per (sequence, layer), every pool draws fixed-size pages from a
 * shared arena:
 *
 *  - thousands of concurrent sequences stop fragmenting the heap
 *    (pages recycle through a freelist, slabs are never returned to
 *    the allocator while the arena lives),
 *  - retired sequences hand their pages straight to newly admitted
 *    ones instead of round-tripping through malloc,
 *  - pages carry a reference count, so immutable closed-group pages
 *    can be shared across sequences — the cross-request prefix cache
 *    (quant/prefix_cache.h) keys on this,
 *  - the arena's byte accounting (`bytesInUse`, `capacityBytes`) gives
 *    decode admission a capacity-accurate budget: a page is either
 *    held or free, there is no hidden vector slack.
 *
 * The capacity is an *admission* budget, not a hard wall: `allocate()`
 * always succeeds (the enforcement point is the scheduler, which must
 * not admit work it cannot house — failing an append mid-decode would
 * tear a sequence in half). `pagesInUse()` vs `capacityPages()` tells
 * the scheduler where it stands; `peakPagesInUse()` records the
 * high-water mark so tests and benches can assert the budget held.
 *
 * Thread safety: all methods are safe to call concurrently (one
 * internal mutex). Page *payloads* are handed out raw: the caller
 * owns coordination of writes (pools write only pages they alone
 * hold; shared prefix pages are immutable by contract). Page data
 * pointers are stable for the lifetime of the hold — slabs never
 * move — so pools cache them and touch the arena only on
 * allocate/retain/release.
 */

#ifndef MSQ_QUANT_KV_ARENA_H
#define MSQ_QUANT_KV_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace msq {

/** Arena geometry and the admission budget. */
struct KvArenaConfig
{
    /**
     * Bytes per page, rounded up to a multiple of 16 so grid structs
     * laid into a page stay naturally aligned. Pools require
     * `pageBytes >= KvPool::minPageBytes(...)` — a page holds whole
     * closed groups, never a fragment of one.
     */
    size_t pageBytes = 4096;

    /**
     * Admission budget in bytes (rounded down to whole pages);
     * 0 = unbounded. Advisory: `allocate()` never fails, the decode
     * scheduler enforces the budget at admission time.
     */
    size_t capacityBytes = 0;

    /** Pages reserved per slab grab (amortizes slab allocation). */
    size_t pagesPerSlab = 16;
};

/** Refcounted fixed-size-page allocator shared by KV pools. */
class KvArena
{
  public:
    using PageId = uint32_t;
    static constexpr PageId kNoPage = UINT32_MAX;

    explicit KvArena(const KvArenaConfig &config = {});

    KvArena(const KvArena &) = delete;
    KvArena &operator=(const KvArena &) = delete;

    /**
     * Hand out one zero-filled page with reference count 1. Recycles
     * the freelist before growing a new slab; never fails (capacity is
     * an admission budget, see the file comment).
     */
    PageId allocate();

    /** Add one reference to a held page. */
    void retain(PageId page);

    /**
     * Drop one reference; the page returns to the freelist when the
     * count reaches zero. @pre the page is currently held
     */
    void release(PageId page);

    /**
     * Payload pointer of a held page: `pageBytes()` writable bytes,
     * 16-byte aligned, stable until the last reference is released.
     */
    uint8_t *page(PageId page);
    const uint8_t *page(PageId page) const;

    /** Current reference count of a held page (0 = free). */
    uint32_t refCount(PageId page) const;

    size_t pageBytes() const { return pageBytes_; }

    /** Admission budget in pages; 0 = unbounded. */
    size_t capacityPages() const { return capacityPages_; }

    /** Pages currently held (refcount > 0). */
    size_t pagesInUse() const;

    /** High-water mark of pagesInUse() since construction. */
    size_t peakPagesInUse() const;

    /** Pages backed by slabs (held + freelist). */
    size_t pagesReserved() const;

    /** Budget headroom in pages (SIZE_MAX when unbounded). */
    size_t freePages() const;

    size_t bytesInUse() const { return pagesInUse() * pageBytes_; }
    size_t peakBytesInUse() const { return peakPagesInUse() * pageBytes_; }
    size_t capacityBytes() const { return capacityPages_ * pageBytes_; }

  private:
    size_t pageBytes_ = 0;      ///< immutable after construction
    size_t capacityPages_ = 0;  ///< immutable after construction
    size_t pagesPerSlab_ = 0;   ///< immutable after construction

    mutable Mutex mu_;
    /** Slab backing store: doubles for 8/16-byte natural alignment of
     *  the grid structs and fp rows pools lay into pages. Slabs are
     *  append-only and never move, so page pointers are stable. */
    std::vector<std::unique_ptr<double[]>> slabs_ MSQ_GUARDED_BY(mu_);
    std::vector<uint8_t *> pages_ MSQ_GUARDED_BY(mu_);  ///< id -> payload
    std::vector<uint32_t> refs_ MSQ_GUARDED_BY(mu_);    ///< id -> refcount
    std::vector<PageId> freeList_ MSQ_GUARDED_BY(mu_);
    size_t inUse_ MSQ_GUARDED_BY(mu_) = 0;
    size_t peak_ MSQ_GUARDED_BY(mu_) = 0;
};

} // namespace msq

#endif // MSQ_QUANT_KV_ARENA_H
