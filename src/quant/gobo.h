/**
 * @file
 * GOBO baseline (Zadeh et al., MICRO'20): the group-A co-design
 * technique. Inliers are clustered to a small codebook (3-bit indices
 * into 8 centroids by default) while outliers — values outside 3 sigma —
 * are stored *uncompressed* at full precision in a sparse side structure
 * with explicit position metadata. Accuracy is excellent; the cost is a
 * large effective bit width and unaligned sparse accesses, which the
 * accelerator model charges for separately.
 */

#ifndef MSQ_QUANT_GOBO_H
#define MSQ_QUANT_GOBO_H

#include "quant/quantizer.h"

namespace msq {

/** GOBO centroid + sparse-outlier quantizer. */
class GoboQuantizer : public WeightQuantizer
{
  public:
    /**
     * @param index_bits codebook index width (3 -> 8 centroids)
     * @param kmeans_iters Lloyd iterations for the codebook fit
     */
    explicit GoboQuantizer(unsigned index_bits = 3,
                           unsigned kmeans_iters = 8);

    std::string name() const override;
    QuantResult quantize(const Matrix &w, const Matrix &calib) override;

    /** Fraction of weights stored as full-precision outliers (last run). */
    double outlierFraction() const { return outlierFraction_; }

  private:
    unsigned indexBits_;
    unsigned kmeansIters_;
    double outlierFraction_ = 0.0;
};

} // namespace msq

#endif // MSQ_QUANT_GOBO_H
