#include "quant/act_quant.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "mx/mx_int.h"
#include "quant/quant_util.h"
#include "quant/span_kernels.h"

namespace msq {

MxIntActPanel
quantizeActsChannelMajor(const Matrix &x, unsigned bits, size_t group_size)
{
    MxIntActPanel panel;
    quantizeActsChannelMajor(x, bits, group_size, panel);
    return panel;
}

void
quantizeActsChannelMajor(const Matrix &x, unsigned bits, size_t group_size,
                         MxIntActPanel &panel)
{
    MSQ_ASSERT(bits >= 2 && bits <= 8, "iActs are at most 8-bit");
    panel.tokens = x.cols();
    panel.channels = x.rows();
    panel.group = group_size == 0 ? x.rows() : group_size;
    panel.groups = (panel.channels + panel.group - 1) / panel.group;
    panel.codes.resize(panel.tokens * panel.channels);
    panel.scaleExp.resize(panel.tokens * panel.groups);

    // Token-blocked two-pass quantization: both passes stream the
    // activation rows contiguously (the matrix is channel x token
    // row-major) instead of gathering one strided token column per
    // group, and the per-element work is a multiply by the group's
    // reciprocal scale — a power of two, so `v * 2^-e` equals the
    // ldexp-based reference quantizer bit for bit. Both inner loops
    // run through the dispatched span kernels (quant/span_kernels.h),
    // byte-identical on every path.
    constexpr size_t kTokBlock = 64;
    const double qmax = static_cast<double>(intQMax(bits));
    double max_abs[kTokBlock];
    double inv[kTokBlock];
    for (size_t g = 0; g < panel.groups; ++g) {
        const size_t c0 = g * panel.group;
        const size_t n = std::min(panel.group, panel.channels - c0);
        int8_t *exps = panel.scaleExp.data() + g * panel.tokens;
        for (size_t t0 = 0; t0 < panel.tokens; t0 += kTokBlock) {
            const size_t nt = std::min(kTokBlock, panel.tokens - t0);
            for (size_t j = 0; j < nt; ++j)
                max_abs[j] = 0.0;
            for (size_t i = 0; i < n; ++i)
                maxAbsAccumulate(x.rowPtr(c0 + i) + t0, nt, max_abs);
            for (size_t j = 0; j < nt; ++j) {
                const int e = std::clamp(
                    mxIntScaleExpForMax(max_abs[j], bits), -128, 127);
                exps[t0 + j] = static_cast<int8_t>(e);
                inv[j] = std::ldexp(1.0, -e);
            }
            for (size_t i = 0; i < n; ++i)
                quantizeCodesRow(
                    x.rowPtr(c0 + i) + t0, inv, nt, qmax,
                    panel.codes.data() + (c0 + i) * panel.tokens + t0);
        }
    }
}

Matrix
quantizeActivationsMxInt(const Matrix &x, unsigned bits, size_t group_size)
{
    const MxIntActPanel panel = quantizeActsChannelMajor(x, bits,
                                                         group_size);
    Matrix out(x.rows(), x.cols());
    for (size_t c = 0; c < panel.channels; ++c) {
        const int8_t *codes = panel.channelRow(c);
        const int8_t *exps = panel.groupRow(c / panel.group);
        for (size_t t = 0; t < panel.tokens; ++t)
            out(c, t) = std::ldexp(static_cast<double>(codes[t]), exps[t]);
    }
    return out;
}

Matrix
quantizeActivationsPerToken(const Matrix &x, unsigned bits)
{
    Matrix out = x;
    const int qmax = intQMax(bits);
    const size_t k = x.rows();
    std::vector<double> col(k);
    for (size_t t = 0; t < x.cols(); ++t) {
        for (size_t r = 0; r < k; ++r)
            col[r] = x(r, t);
        symQuantSpan(col.data(), k, qmax);
        for (size_t r = 0; r < k; ++r)
            out(r, t) = col[r];
    }
    return out;
}

} // namespace msq
