#include "quant/act_quant.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "mx/mx_int.h"
#include "quant/quant_util.h"

namespace msq {

Matrix
quantizeActivationsMxInt(const Matrix &x, unsigned bits, size_t group_size)
{
    Matrix out = x;
    const size_t k = x.rows();
    const size_t group = group_size == 0 ? k : group_size;

    // Channel-dim groups within each token column.
    std::vector<double> span;
    for (size_t t = 0; t < x.cols(); ++t) {
        for (size_t g0 = 0; g0 < k; g0 += group) {
            const size_t gn = std::min(group, k - g0);
            span.resize(gn);
            for (size_t i = 0; i < gn; ++i)
                span[i] = x(g0 + i, t);
            const MxIntGroup q = mxIntQuantize(span, bits);
            for (size_t i = 0; i < gn; ++i)
                out(g0 + i, t) = q.decode(i);
        }
    }
    return out;
}

Matrix
quantizeActivationsPerToken(const Matrix &x, unsigned bits)
{
    Matrix out = x;
    const int qmax = intQMax(bits);
    const size_t k = x.rows();
    std::vector<double> col(k);
    for (size_t t = 0; t < x.cols(); ++t) {
        for (size_t r = 0; r < k; ++r)
            col[r] = x(r, t);
        symQuantSpan(col.data(), k, qmax);
        for (size_t r = 0; r < k; ++r)
            out(r, t) = col[r];
    }
    return out;
}

} // namespace msq
