/**
 * @file
 * SDQ-lite baseline: sparse decomposed quantization. SDQ splits the
 * weight tensor into an inlier vector at base precision plus a sparse
 * outlier vector restricted to a fixed N:M structured pattern at higher
 * precision. The rigid N:M constraint is the property the MicroScopiQ
 * paper contrasts against: when a group holds more outliers than the
 * pattern admits, the excess outliers collapse into the low-precision
 * inlier path.
 */

#ifndef MSQ_QUANT_SDQ_LITE_H
#define MSQ_QUANT_SDQ_LITE_H

#include "quant/quantizer.h"

namespace msq {

/** SDQ-style N:M decomposed quantizer. */
class SdqLite : public WeightQuantizer
{
  public:
    /**
     * @param bits base (inlier) bit width; outliers use 2x
     * @param pattern_n outliers admitted per pattern_m elements
     * @param pattern_m structured pattern length
     * @param group_size scale-sharing group size
     */
    SdqLite(unsigned bits, size_t pattern_n = 1, size_t pattern_m = 8,
            size_t group_size = 128);

    std::string name() const override;
    QuantResult quantize(const Matrix &w, const Matrix &calib) override;

  private:
    unsigned bits_;
    size_t patternN_;
    size_t patternM_;
    size_t groupSize_;
};

} // namespace msq

#endif // MSQ_QUANT_SDQ_LITE_H
