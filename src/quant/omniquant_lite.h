/**
 * @file
 * OmniQuant-lite baseline: a calibration-time search standing in for
 * OmniQuant's gradient-learned parameters.
 *
 * OmniQuant learns two families of parameters: Learnable Weight Clipping
 * (LWC; per-group clipping thresholds on the quantization scale) and
 * Learnable Equivalent Transformation (LET; per-channel migration of
 * activation difficulty into weights). This reproduction replaces the
 * gradient descent with a per-group grid search over the clip ratio
 * (which is exactly what LWC converges to in the symmetric case) and a
 * grid search over the LET migration strength. The combination with
 * MicroScopiQ (Table 8's "Omni-MicroScopiQ") reuses the same LWC search
 * on the MicroScopiQ scale factors.
 */

#ifndef MSQ_QUANT_OMNIQUANT_LITE_H
#define MSQ_QUANT_OMNIQUANT_LITE_H

#include "quant/quantizer.h"

namespace msq {

/** Grid-searched learnable-weight-clipping group quantizer. */
class OmniQuantLite : public WeightQuantizer
{
  public:
    /**
     * @param bits element bit width
     * @param group_size scale-sharing group size
     * @param use_let also search a migration strength (weight-activation
     *        settings); ignored when no calibration data is supplied
     */
    OmniQuantLite(unsigned bits, size_t group_size = 128,
                  bool use_let = false);

    std::string name() const override;
    QuantResult quantize(const Matrix &w, const Matrix &calib) override;

    /**
     * The LWC primitive: quantize a span with the clip ratio (from the
     * given candidate grid) minimizing the squared error. Exposed so
     * Omni-MicroScopiQ can reuse it. Returns the best clip ratio.
     */
    static double searchClipRatio(const double *values, size_t n, int qmax,
                                  double *out_quantized);

  private:
    unsigned bits_;
    size_t groupSize_;
    bool useLet_;
};

} // namespace msq

#endif // MSQ_QUANT_OMNIQUANT_LITE_H
