#include "quant/olive.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "mx/mx_int.h"
#include "quant/quant_util.h"

namespace msq {

OliveQuantizer::OliveQuantizer(unsigned bits, size_t group_size)
    : bits_(bits), groupSize_(group_size)
{
}

std::string
OliveQuantizer::name() const
{
    return "OliVe-W" + std::to_string(bits_);
}

double
OliveQuantizer::abfloatRoundTrip(double v, unsigned bits, double scale,
                                 int bias)
{
    if (v == 0.0 || scale <= 0.0)
        return 0.0;
    // Exponent codes: 2^(bits-1) - 1 usable magnitudes per sign (one
    // encoding is reserved as the outlier identifier in the inlier
    // format, not here, but abfloat loses a code to +/-0 handling).
    const int levels = (1 << (bits - 1)) - 1;
    const double mag = std::fabs(v) / scale;
    int e = static_cast<int>(std::floor(std::log2(std::max(mag, 1e-30)) + 0.5));
    e = std::clamp(e, bias, bias + levels - 1);
    const double q = std::ldexp(1.0, e) * scale;
    return v < 0.0 ? -q : q;
}

QuantResult
OliveQuantizer::quantize(const Matrix &w, const Matrix &calib)
{
    (void)calib;
    QuantResult res;
    res.method = name();
    res.dequant = w;
    // One inlier encoding is sacrificed as the outlier identifier, so the
    // usable inlier range shrinks by one code (paper Section 3.1).
    const int qmax = intQMax(bits_) - 1;
    const size_t group = groupSize_ == 0 ? w.cols() : groupSize_;

    for (size_t r = 0; r < w.rows(); ++r) {
        double *row = res.dequant.rowPtr(r);
        for (size_t g0 = 0; g0 < w.cols(); g0 += group) {
            const size_t gn = std::min(group, w.cols() - g0);
            double *span = row + g0;

            const double thr = threeSigmaThreshold(span, gn);
            std::vector<bool> outlier(gn, false);
            double in_max = 0.0;
            for (size_t i = 0; i < gn; ++i) {
                if (std::fabs(span[i]) > thr)
                    outlier[i] = true;
                else
                    in_max = std::max(in_max, std::fabs(span[i]));
            }

            // Victim selection: scanning left to right, each outlier
            // consumes its right neighbour as the identifier slot. If
            // that neighbour is itself an outlier, the neighbour is
            // pruned anyway (unintended outlier destruction).
            std::vector<bool> victim(gn, false);
            for (size_t i = 0; i < gn; ++i) {
                if (!outlier[i] || victim[i])
                    continue;
                const size_t v = (i + 1 < gn) ? i + 1 : i - 1;
                victim[v] = true;
                if (outlier[v])
                    outlier[v] = false;  // adjacent outlier destroyed
            }

            // abfloat scale anchored at the inlier maximum so the outlier
            // codes extend the inlier range upward, bias 0.
            const double in_scale = symScale(in_max, qmax);
            const double ab_scale = std::max(in_max, 1e-12);

            for (size_t i = 0; i < gn; ++i) {
                if (victim[i]) {
                    span[i] = 0.0;
                } else if (outlier[i]) {
                    span[i] = abfloatRoundTrip(span[i], bits_, ab_scale, 0);
                } else {
                    span[i] = symQuantValue(span[i], in_scale, qmax);
                }
            }
        }
    }

    // Aligned layout: every element is exactly `bits` wide; one 16-bit
    // scale pair per group.
    res.ebw = bits_ + 32.0 / static_cast<double>(group);
    return res;
}

} // namespace msq
