#include "quant/span_kernels.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/simd_dispatch.h"
#include "common/simd_target.h"

namespace msq {

namespace {

/** Codes staged per chunk before the vectorized grid arithmetic. */
constexpr size_t kSpanChunk = 64;

/** Extract the `bits`-wide code starting at absolute bit offset. */
inline unsigned
extractCode(const uint8_t *codes, size_t bit, unsigned bits)
{
    const size_t byte = bit / 8;
    const unsigned shift = static_cast<unsigned>(bit % 8);
    unsigned v = static_cast<unsigned>(codes[byte]) >> shift;
    if (shift + bits > 8)
        v |= static_cast<unsigned>(codes[byte + 1]) << (8 - shift);
    return v & ((1u << bits) - 1u);
}

// --------------------------------------------------------------------
// Scalar variants — the oracles. Per element these are exactly the
// loops they replaced (KvPool::gather's codeAt + asymDecode and the
// two quantizeActsChannelMajor passes), so dispatching through here
// changes no bytes relative to the pre-dispatch library.

void
decodeChunkScalar(const int32_t *staged, size_t n,
                  const AsymSpanGrid &grid, double *dst)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = grid.lo + static_cast<double>(staged[i]) * grid.step;
}

void
maxAbsScalar(const double *row, size_t n, double *max_abs)
{
    for (size_t j = 0; j < n; ++j)
        max_abs[j] = std::max(max_abs[j], std::fabs(row[j]));
}

void
quantizeRowScalar(const double *row, const double *inv, size_t n,
                  double qmax, int8_t *codes)
{
    for (size_t j = 0; j < n; ++j) {
        // Round to nearest, ties away from zero, saturate — exactly
        // mxIntQuantizeValue (mx/mx_int.h).
        const double scaled = row[j] * inv[j];
        const double rounded = std::floor(std::fabs(scaled) + 0.5);
        const double mag = std::min(rounded, qmax);
        codes[j] = static_cast<int8_t>(scaled < 0.0 ? -mag : mag);
    }
}

#if MSQ_SIMD_X86

// --------------------------------------------------------------------
// x86 variants. Lanes never interact and every instruction performs
// the scalar sequence's IEEE operation (multiply-then-add for the
// grid, sign-bit masks for |x| and sign restore, ROUNDPD toward -inf
// for floor, MINPD agreeing with std::min on finite input), so each
// lane computes the scalar result bit for bit.

void
decodeChunkSse2(const int32_t *staged, size_t n, const AsymSpanGrid &grid,
                double *dst)
{
    const __m128d step = _mm_set1_pd(grid.step);
    const __m128d lo = _mm_set1_pd(grid.lo);
    size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const __m128i c = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(staged + i));
        const __m128d d = _mm_cvtepi32_pd(c);
        _mm_storeu_pd(dst + i, _mm_add_pd(lo, _mm_mul_pd(d, step)));
    }
    for (; i < n; ++i)
        dst[i] = grid.lo + static_cast<double>(staged[i]) * grid.step;
}

MSQ_TARGET_AVX2 void
decodeChunkAvx2(const int32_t *staged, size_t n, const AsymSpanGrid &grid,
                double *dst)
{
    const __m256d step = _mm256_set1_pd(grid.step);
    const __m256d lo = _mm256_set1_pd(grid.lo);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128i c = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(staged + i));
        const __m256d d = _mm256_cvtepi32_pd(c);
        _mm256_storeu_pd(dst + i,
                         _mm256_add_pd(lo, _mm256_mul_pd(d, step)));
    }
    for (; i < n; ++i)
        dst[i] = grid.lo + static_cast<double>(staged[i]) * grid.step;
}

void
maxAbsSse2(const double *row, size_t n, double *max_abs)
{
    const __m128d sign = _mm_set1_pd(-0.0);
    size_t j = 0;
    for (; j + 2 <= n; j += 2) {
        const __m128d v = _mm_andnot_pd(sign, _mm_loadu_pd(row + j));
        const __m128d m = _mm_loadu_pd(max_abs + j);
        _mm_storeu_pd(max_abs + j, _mm_max_pd(m, v));
    }
    for (; j < n; ++j)
        max_abs[j] = std::max(max_abs[j], std::fabs(row[j]));
}

MSQ_TARGET_AVX2 void
maxAbsAvx2(const double *row, size_t n, double *max_abs)
{
    const __m256d sign = _mm256_set1_pd(-0.0);
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m256d v =
            _mm256_andnot_pd(sign, _mm256_loadu_pd(row + j));
        const __m256d m = _mm256_loadu_pd(max_abs + j);
        _mm256_storeu_pd(max_abs + j, _mm256_max_pd(m, v));
    }
    for (; j < n; ++j)
        max_abs[j] = std::max(max_abs[j], std::fabs(row[j]));
}

MSQ_TARGET_AVX2 void
quantizeRowAvx2(const double *row, const double *inv, size_t n,
                double qmax, int8_t *codes)
{
    const __m256d signmask = _mm256_set1_pd(-0.0);
    const __m256d half = _mm256_set1_pd(0.5);
    const __m256d qmaxv = _mm256_set1_pd(qmax);
    size_t j = 0;
    for (; j + 4 <= n; j += 4) {
        const __m256d scaled =
            _mm256_mul_pd(_mm256_loadu_pd(row + j),
                          _mm256_loadu_pd(inv + j));
        const __m256d absval = _mm256_andnot_pd(signmask, scaled);
        const __m256d rounded = _mm256_round_pd(
            _mm256_add_pd(absval, half),
            _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC);
        const __m256d mag = _mm256_min_pd(rounded, qmaxv);
        const __m256d val =
            _mm256_or_pd(mag, _mm256_and_pd(scaled, signmask));
        // mag is integral and <= 127, so truncation is exact and the
        // int16/int8 packs never saturate.
        const __m128i i32 = _mm256_cvttpd_epi32(val);
        const __m128i i16 = _mm_packs_epi32(i32, i32);
        const __m128i i8 = _mm_packs_epi16(i16, i16);
        const int quad = _mm_cvtsi128_si32(i8);
        std::memcpy(codes + j, &quad, 4);
    }
    quantizeRowScalar(row + j, inv + j, n - j, qmax, codes + j);
}

#endif // MSQ_SIMD_X86

/** The decode-chunk variant of the active path (the SSE2 slot also
 *  serves NEON hosts' scalar fallback; see header). */
void
decodeChunk(const int32_t *staged, size_t n, const AsymSpanGrid &grid,
            double *dst)
{
#if MSQ_SIMD_X86
    switch (activeKernelPath()) {
    case KernelPath::Avx2:
        decodeChunkAvx2(staged, n, grid, dst);
        return;
    case KernelPath::Sse2:
        decodeChunkSse2(staged, n, grid, dst);
        return;
    default:
        break;
    }
#endif
    decodeChunkScalar(staged, n, grid, dst);
}

} // namespace

void
asymDecodeSpan(const uint8_t *codes, size_t idx0, size_t n, unsigned bits,
               const AsymSpanGrid &grid, double *dst)
{
    int32_t staged[kSpanChunk];
    size_t bit = idx0 * bits;
    for (size_t i0 = 0; i0 < n; i0 += kSpanChunk) {
        const size_t nc = std::min(kSpanChunk, n - i0);
        for (size_t i = 0; i < nc; ++i, bit += bits)
            staged[i] = static_cast<int32_t>(extractCode(codes, bit, bits));
        decodeChunk(staged, nc, grid, dst + i0);
    }
}

void
maxAbsAccumulate(const double *row, size_t n, double *max_abs)
{
#if MSQ_SIMD_X86
    switch (activeKernelPath()) {
    case KernelPath::Avx2:
        maxAbsAvx2(row, n, max_abs);
        return;
    case KernelPath::Sse2:
        maxAbsSse2(row, n, max_abs);
        return;
    default:
        break;
    }
#endif
    maxAbsScalar(row, n, max_abs);
}

void
quantizeCodesRow(const double *row, const double *inv, size_t n,
                 double qmax, int8_t *codes)
{
#if MSQ_SIMD_X86
    // SSE2 has no directed-rounding instruction, so only the AVX2
    // variant is vectorized; every other path takes the scalar loop.
    if (activeKernelPath() == KernelPath::Avx2) {
        quantizeRowAvx2(row, inv, n, qmax, codes);
        return;
    }
#endif
    quantizeRowScalar(row, inv, n, qmax, codes);
}

} // namespace msq
