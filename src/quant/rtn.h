/**
 * @file
 * Round-to-nearest (RTN) group quantization baseline: the simplest PTQ
 * method, no calibration, no outlier handling. Groups of `groupSize`
 * contiguous elements along the output dimension share a real-valued
 * symmetric scale.
 */

#ifndef MSQ_QUANT_RTN_H
#define MSQ_QUANT_RTN_H

#include "quant/quantizer.h"

namespace msq {

/** Plain symmetric group RTN quantizer. */
class RtnQuantizer : public WeightQuantizer
{
  public:
    /**
     * @param bits element bit width (>= 2)
     * @param group_size elements sharing one scale (0 = per-tensor)
     */
    explicit RtnQuantizer(unsigned bits, size_t group_size = 128);

    std::string name() const override;
    QuantResult quantize(const Matrix &w, const Matrix &calib) override;

  private:
    unsigned bits_;
    size_t groupSize_;
};

} // namespace msq

#endif // MSQ_QUANT_RTN_H
