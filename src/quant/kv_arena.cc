#include "quant/kv_arena.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace msq {

KvArena::KvArena(const KvArenaConfig &config)
{
    MSQ_ASSERT(config.pageBytes > 0, "KvArena needs a positive page size");
    MSQ_ASSERT(config.pagesPerSlab > 0, "KvArena needs pages per slab");
    pageBytes_ = (config.pageBytes + 15) / 16 * 16;
    capacityPages_ = config.capacityBytes / pageBytes_;
    pagesPerSlab_ = config.pagesPerSlab;
}

KvArena::PageId
KvArena::allocate()
{
    MutexLock lock(mu_);
    if (freeList_.empty()) {
        // Grow one slab and thread its pages onto the freelist in
        // descending id order so allocation hands out ascending ids.
        const size_t doubles_per_page = pageBytes_ / sizeof(double);
        slabs_.push_back(std::make_unique<double[]>(doubles_per_page *
                                                    pagesPerSlab_));
        uint8_t *base = reinterpret_cast<uint8_t *>(slabs_.back().get());
        const PageId first = static_cast<PageId>(pages_.size());
        for (size_t i = 0; i < pagesPerSlab_; ++i) {
            pages_.push_back(base + i * pageBytes_);
            refs_.push_back(0);
        }
        for (size_t i = pagesPerSlab_; i > 0; --i)
            freeList_.push_back(first + static_cast<PageId>(i - 1));
    }
    const PageId id = freeList_.back();
    freeList_.pop_back();
    refs_[id] = 1;
    std::memset(pages_[id], 0, pageBytes_);
    ++inUse_;
    peak_ = std::max(peak_, inUse_);
    return id;
}

void
KvArena::retain(PageId page)
{
    MutexLock lock(mu_);
    MSQ_ASSERT(page < refs_.size() && refs_[page] > 0,
               "KvArena::retain on a page that is not held");
    ++refs_[page];
}

void
KvArena::release(PageId page)
{
    MutexLock lock(mu_);
    MSQ_ASSERT(page < refs_.size() && refs_[page] > 0,
               "KvArena::release on a page that is not held");
    if (--refs_[page] == 0) {
        freeList_.push_back(page);
        --inUse_;
    }
}

uint8_t *
KvArena::page(PageId page)
{
    MutexLock lock(mu_);
    MSQ_ASSERT(page < refs_.size() && refs_[page] > 0,
               "KvArena::page on a page that is not held");
    return pages_[page];
}

const uint8_t *
KvArena::page(PageId page) const
{
    MutexLock lock(mu_);
    MSQ_ASSERT(page < refs_.size() && refs_[page] > 0,
               "KvArena::page on a page that is not held");
    return pages_[page];
}

uint32_t
KvArena::refCount(PageId page) const
{
    MutexLock lock(mu_);
    MSQ_ASSERT(page < refs_.size(), "KvArena::refCount out of range");
    return refs_[page];
}

size_t
KvArena::pagesInUse() const
{
    MutexLock lock(mu_);
    return inUse_;
}

size_t
KvArena::peakPagesInUse() const
{
    MutexLock lock(mu_);
    return peak_;
}

size_t
KvArena::pagesReserved() const
{
    MutexLock lock(mu_);
    return pages_.size();
}

size_t
KvArena::freePages() const
{
    if (capacityPages_ == 0)
        return SIZE_MAX;
    MutexLock lock(mu_);
    return capacityPages_ > inUse_ ? capacityPages_ - inUse_ : 0;
}

} // namespace msq
