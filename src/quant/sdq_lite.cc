#include "quant/sdq_lite.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "mx/mx_int.h"
#include "quant/quant_util.h"

namespace msq {

SdqLite::SdqLite(unsigned bits, size_t pattern_n, size_t pattern_m,
                 size_t group_size)
    : bits_(bits), patternN_(pattern_n), patternM_(pattern_m),
      groupSize_(group_size)
{
}

std::string
SdqLite::name() const
{
    return "SDQ-W" + std::to_string(bits_);
}

QuantResult
SdqLite::quantize(const Matrix &w, const Matrix &calib)
{
    (void)calib;
    QuantResult res;
    res.method = name();
    res.dequant = w;
    const int qmax_in = intQMax(bits_);
    const int qmax_out = intQMax(bits_ * 2);
    const size_t group = groupSize_ == 0 ? w.cols() : groupSize_;

    for (size_t r = 0; r < w.rows(); ++r) {
        double *row = res.dequant.rowPtr(r);
        for (size_t g0 = 0; g0 < w.cols(); g0 += group) {
            const size_t gn = std::min(group, w.cols() - g0);
            double *span = row + g0;

            // Split each M-length pattern window: the top-N magnitudes
            // go to the outlier vector, everything else to the inlier
            // vector. Both vectors share group scales over the span.
            std::vector<bool> is_outlier(gn, false);
            for (size_t p0 = 0; p0 < gn; p0 += patternM_) {
                const size_t pn = std::min(patternM_, gn - p0);
                std::vector<size_t> idx(pn);
                std::iota(idx.begin(), idx.end(), 0);
                std::sort(idx.begin(), idx.end(), [&](size_t a, size_t b) {
                    return std::fabs(span[p0 + a]) > std::fabs(span[p0 + b]);
                });
                // Only mark the top-N as outliers *if* they exceed the
                // 3-sigma threshold; a pattern slot is not wasted on an
                // ordinary value.
                const double thr = threeSigmaThreshold(span, gn);
                for (size_t i = 0; i < std::min(patternN_, pn); ++i) {
                    if (std::fabs(span[p0 + idx[i]]) > thr)
                        is_outlier[p0 + idx[i]] = true;
                }
            }

            // Rigid N:M: the inlier scale derives from the true inlier
            // population (below the 3-sigma threshold). Outliers that
            // did not fit the pattern stay in the inlier plane and are
            // *clipped* to its range — the adaptability gap the paper
            // contrasts MicroScopiQ's flexible pruning against.
            const double thr = threeSigmaThreshold(span, gn);
            double in_max = 0.0, out_max = 0.0;
            for (size_t i = 0; i < gn; ++i) {
                if (is_outlier[i])
                    out_max = std::max(out_max, std::fabs(span[i]));
                else if (std::fabs(span[i]) <= thr)
                    in_max = std::max(in_max, std::fabs(span[i]));
            }
            const double in_scale = symScale(in_max, qmax_in);
            const double out_scale = symScale(out_max, qmax_out);
            for (size_t i = 0; i < gn; ++i) {
                if (is_outlier[i])
                    span[i] = symQuantValue(span[i], out_scale, qmax_out);
                else
                    span[i] = symQuantValue(span[i], in_scale, qmax_in);
            }
        }
    }

    // EBW: inlier plane at base bits, sparse outlier plane at 2x bits for
    // N of every M slots plus an index per outlier (log2 M bits), plus
    // two scales per group.
    const double out_frac =
        static_cast<double>(patternN_) / static_cast<double>(patternM_);
    const double idx_bits = std::ceil(std::log2(static_cast<double>(patternM_)));
    res.ebw = bits_ + out_frac * (bits_ * 2 + idx_bits) +
              32.0 / static_cast<double>(group);
    return res;
}

} // namespace msq
