/**
 * @file
 * Streaming per-sequence KV pool for autoregressive decode: the
 * KIVI-style recipe of quant/kv_cache.h (keys quantized per channel
 * over token groups, values per token over channel groups, a residual
 * window of the most recent tokens kept at full precision) restated as
 * an *incremental* container. Tokens are appended one at a time into
 * the full-precision tail; whenever `groupSize` tokens have aged past
 * the residual window a whole group is closed — encoded into bit-packed
 * codes plus one asymmetric grid per (channel, group) for keys and per
 * (token, channel-group) for values — and dropped from the tail. A
 * closed group is never touched again, so appends are O(1) amortized
 * and nothing is ever re-quantized.
 *
 * Storage is paged (quant/kv_arena.h): closed groups pack into
 * fixed-size arena pages — each page holds a whole number of closed
 * groups, grids and codes laid out back to back — and the residual
 * tail lives in a ring of fp pages (the front page is released as its
 * tokens age into closed groups, so a group close is O(group), never
 * the O(window) erase-from-front of a monolithic vector). Pages are
 * refcounted: `snapshot()` captures the pool's state at its current
 * token count by *sharing* the full closed pages (immutable by
 * contract) and copying only the partial last page plus the fp tail;
 * `adopt()` rebuilds a fresh pool from such a snapshot without
 * re-quantizing anything — the substrate of the cross-request prefix
 * cache (quant/prefix_cache.h).
 *
 * Incremental and whole-matrix quantization agree exactly: after any
 * number of appends, token t reads back bit-identical to
 * `quantizeKeyCache` / `quantizeValueCache` run on the full matrix
 * whenever t lies in a group both have closed (groups close only when
 * full, so the pool's quantized prefix is the ragged-free prefix of the
 * batch functions' output; tests/test_kv_cache.cc enforces the
 * property). Reads depend only on the append history — never on batch
 * composition, thread count, page size, or whether the prefix was
 * adopted from a snapshot — which the decode engine's determinism
 * contract builds on.
 */

#ifndef MSQ_QUANT_KV_POOL_H
#define MSQ_QUANT_KV_POOL_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "quant/kv_arena.h"
#include "quant/kv_cache.h"

namespace msq {

class KvPool;

/**
 * Immutable capture of a pool prefix at one exact token count: shared
 * refcounted full pages + copies of the partial page and fp tail.
 * Built by `KvPool::snapshot()`, consumed by `KvPool::adopt()`; holds
 * page references until destroyed (entries evicted from the prefix
 * cache keep adopters valid — an adopter takes its own references).
 */
class KvPoolSnapshot
{
  public:
    KvPoolSnapshot() = default;
    ~KvPoolSnapshot();

    KvPoolSnapshot(KvPoolSnapshot &&other) noexcept;
    KvPoolSnapshot &operator=(KvPoolSnapshot &&other) noexcept;
    KvPoolSnapshot(const KvPoolSnapshot &) = delete;
    KvPoolSnapshot &operator=(const KvPoolSnapshot &) = delete;

    /** Arena the shared pages live in (adopters must use the same). */
    KvArena *arena() const { return arena_; }

    /** Token count the snapshot captures. */
    size_t tokens() const { return tokens_; }

    /** Bytes held: shared page capacity + private copies. */
    size_t bytes() const;

  private:
    friend class KvPool;

    KvArena *arena_ = nullptr;
    size_t channels_ = 0;
    unsigned bits_ = 0;
    size_t group_ = 0;
    size_t residual_ = 0;
    size_t tokens_ = 0;
    size_t quantized_ = 0;
    std::vector<KvArena::PageId> fullPages_;  ///< retained, immutable
    std::vector<uint8_t> partial_;   ///< copy of the partial last page
    size_t partialGroups_ = 0;       ///< groups in `partial_`
    std::vector<double> keyTail_;    ///< token-major fp rows
    std::vector<double> valueTail_;

    void reset();
};

/** Growing quantized K/V storage of one (sequence, layer). */
class KvPool
{
  public:
    /**
     * @param channels K/V channel count (kvHeads x headDim)
     * @param config   bits 1-8; groupSize > 0 (the streaming pool needs
     *                 a finite group to close); residual >= 0
     * @param arena    page source; nullptr = pool owns a private arena
     *                 (page size `minPageBytes`). A shared arena must
     *                 satisfy `arena->pageBytes() >= minPageBytes(...)`
     *                 and outlive the pool.
     */
    KvPool(size_t channels, const KvCacheConfig &config,
           KvArena *arena = nullptr);
    ~KvPool();

    KvPool(KvPool &&other) noexcept;
    KvPool &operator=(KvPool &&other) noexcept;
    KvPool(const KvPool &) = delete;
    KvPool &operator=(const KvPool &) = delete;

    /** Append one token's key and value vectors (`channels` each). */
    void append(const double *key, const double *value);

    size_t channels() const { return channels_; }

    /** Tokens appended so far. */
    size_t tokens() const { return tokens_; }

    /** Tokens in closed (packed) groups: a multiple of groupSize. */
    size_t quantizedTokens() const { return quantized_; }

    /**
     * Key element (channel, token). Quantized-grid reconstruction for
     * closed tokens, the exact appended value inside the residual tail.
     * @pre ch < channels(), t < tokens()
     */
    double key(size_t ch, size_t t) const;

    /** Value element (channel, token), same contract as key(). */
    double value(size_t ch, size_t t) const;

    /**
     * Bulk-dequantize both planes into channel-major buffers
     * (`keys[ch * stride + t]`, same for `values`; `stride` 0 means
     * tokens(), and must otherwise be >= tokens()). Element-identical
     * to key()/value() but decodes packed groups sequentially — the
     * attention inner loops read the gathered buffers instead of
     * paying a per-element accessor per head. A stride wider than
     * tokens() lets a caller appending tokens one at a time keep the
     * buffers in place: closed groups are immutable, so a re-gather is
     * only needed when quantizedTokens() changes.
     */
    void gather(double *keys, double *values, size_t stride = 0) const;

    /**
     * Capture the pool's state at its current token count. Full closed
     * pages are shared (retained, never written again by this pool —
     * it only appends groups past them), the partial page and fp tail
     * are copied, so donor and snapshot diverge freely afterwards.
     */
    KvPoolSnapshot snapshot() const;

    /**
     * Rebuild this pool from a snapshot: shares the snapshot's full
     * pages (one more reference each) and copies its partial page and
     * tail into freshly allocated pages. Afterwards the pool reads
     * bit-identically to one that appended the same tokens itself.
     * @pre tokens() == 0; same arena, channels, and config as the
     *      snapshot's donor
     */
    void adopt(const KvPoolSnapshot &snap);

    /** The arena this pool draws pages from. */
    KvArena *arena() const { return arena_; }

    /** Arena pages currently held (packed + fp tail). */
    size_t pagesHeld() const { return packed_.size() + fp_.size(); }

    /** Bytes held by packed codes + grids (both planes; payload). */
    size_t packedBytes() const;

    /** Bytes held by the full-precision residual tail (payload). */
    size_t fpBytes() const;

    /**
     * Page-granular footprint: pages held x page size. This is the
     * number admission must budget against — payload `packedBytes()` /
     * `fpBytes()` understate the real memory by the open page slack.
     */
    size_t capacityBytes() const;

    /**
     * Smallest arena page able to hold one closed group of this shape
     * (grids + key codes + value codes, 16-byte aligned).
     */
    static size_t minPageBytes(size_t channels, const KvCacheConfig &config);

    /**
     * Conservative page budget for one sequence growing to `tokens`
     * tokens on an arena with `pageBytes` pages: packed pages for
     * every group it will close plus the fp-tail ring's high-water
     * mark. Admission multiplies by the layer count.
     */
    static size_t estimatePages(size_t channels, const KvCacheConfig &config,
                                size_t tokens, size_t pageBytes);

  private:
    struct PageRef
    {
        KvArena::PageId id = KvArena::kNoPage;
        uint8_t *data = nullptr;  ///< cached stable payload pointer
    };

    /** Read the `idx`-th `bits_`-wide code of a packed code block. */
    unsigned codeAt(const uint8_t *codes, size_t idx) const;

    /** Write one `bits_`-wide code (block must start zeroed). */
    static void pushCode(uint8_t *codes, size_t idx, unsigned bits,
                         unsigned code);

    /** Encode the oldest groupSize residual tokens into a new group. */
    void closeGroup();

    /** Payload pointer of closed group `gi` (0-based). */
    const uint8_t *groupPtr(size_t gi) const;
    uint8_t *groupPtr(size_t gi);

    /** fp-tail slot of tail index `i` (0 = oldest residual token):
     *  `channels_` key doubles then `channels_` value doubles. */
    const double *tailSlot(size_t i) const;
    double *tailSlot(size_t i);

    /** Append one page reference, allocating from the arena. */
    PageRef allocPage();

    void releaseAll();

    size_t channels_ = 0;
    unsigned bits_ = 2;
    size_t group_ = 128;     ///< tokens per key group / channels per value group
    size_t residual_ = 128;  ///< minimum full-precision tail (tokens)
    size_t valueGroups_ = 0; ///< ceil(channels / group): value grids per token

    size_t tokens_ = 0;      ///< total appended
    size_t quantized_ = 0;   ///< closed prefix [0, quantized_)

    // Page geometry, fixed at construction. One closed group occupies
    // `groupBytes_` (16-byte multiple) laid out as
    //   [key grids: channels_ AsymSpanGrid]
    //   [value grids: group_ * valueGroups_ AsymSpanGrid]
    //   [key codes: channels_ * group_ codes, run-major per channel
    //    (code index ch * group_ + j), byte-aligned per group]
    //   [value codes: group_ * channels_ codes, token-major
    //    (code index j * channels_ + ch)]
    // and a packed page holds `groupsPerPage_` of them. An fp page
    // holds `tokensPerFpPage_` tail slots of 2 * channels_ doubles
    // ([key row][value row]).
    size_t groupBytes_ = 0;
    size_t vGridOff_ = 0;
    size_t kCodeOff_ = 0;
    size_t vCodeOff_ = 0;
    size_t kCodeBytes_ = 0;
    size_t vCodeBytes_ = 0;
    size_t groupsPerPage_ = 0;
    size_t tokensPerFpPage_ = 0;

    KvArena *arena_ = nullptr;
    std::unique_ptr<KvArena> owned_;  ///< set when constructed arena-less

    std::vector<PageRef> packed_;  ///< closed groups, in close order
    std::vector<PageRef> fp_;      ///< residual-tail ring, oldest first
    size_t tailHead_ = 0;          ///< slot of tail token 0 in fp_[0]
};

} // namespace msq

#endif // MSQ_QUANT_KV_POOL_H
