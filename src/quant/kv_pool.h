/**
 * @file
 * Streaming per-sequence KV pool for autoregressive decode: the
 * KIVI-style recipe of quant/kv_cache.h (keys quantized per channel
 * over token groups, values per token over channel groups, a residual
 * window of the most recent tokens kept at full precision) restated as
 * an *incremental* container. Tokens are appended one at a time into
 * the full-precision tail; whenever `groupSize` tokens have aged past
 * the residual window a whole group is closed — encoded into bit-packed
 * codes plus one asymmetric grid per (channel, group) for keys and per
 * (token, channel-group) for values — and dropped from the tail. A
 * closed group is never touched again, so appends are O(1) amortized
 * and nothing is ever re-quantized.
 *
 * Incremental and whole-matrix quantization agree exactly: after any
 * number of appends, token t reads back bit-identical to
 * `quantizeKeyCache` / `quantizeValueCache` run on the full matrix
 * whenever t lies in a group both have closed (groups close only when
 * full, so the pool's quantized prefix is the ragged-free prefix of the
 * batch functions' output; tests/test_kv_cache.cc enforces the
 * property). Reads depend only on the append history — never on batch
 * composition or thread count — which the decode engine's determinism
 * contract builds on.
 */

#ifndef MSQ_QUANT_KV_POOL_H
#define MSQ_QUANT_KV_POOL_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "quant/kv_cache.h"

namespace msq {

/** Growing quantized K/V storage of one (sequence, layer). */
class KvPool
{
  public:
    /**
     * @param channels K/V channel count (kvHeads x headDim)
     * @param config   bits 1-8; groupSize > 0 (the streaming pool needs
     *                 a finite group to close); residual >= 0
     */
    KvPool(size_t channels, const KvCacheConfig &config);

    /** Append one token's key and value vectors (`channels` each). */
    void append(const double *key, const double *value);

    size_t channels() const { return channels_; }

    /** Tokens appended so far. */
    size_t tokens() const { return tokens_; }

    /** Tokens in closed (packed) groups: a multiple of groupSize. */
    size_t quantizedTokens() const { return quantized_; }

    /**
     * Key element (channel, token). Quantized-grid reconstruction for
     * closed tokens, the exact appended value inside the residual tail.
     * @pre ch < channels(), t < tokens()
     */
    double key(size_t ch, size_t t) const;

    /** Value element (channel, token), same contract as key(). */
    double value(size_t ch, size_t t) const;

    /**
     * Bulk-dequantize both planes into channel-major buffers
     * (`keys[ch * stride + t]`, same for `values`; `stride` 0 means
     * tokens(), and must otherwise be >= tokens()). Element-identical
     * to key()/value() but decodes packed groups sequentially — the
     * attention inner loops read the gathered buffers instead of
     * paying a per-element accessor per head. A stride wider than
     * tokens() lets a caller appending tokens one at a time keep the
     * buffers in place: closed groups are immutable, so a re-gather is
     * only needed when quantizedTokens() changes.
     */
    void gather(double *keys, double *values, size_t stride = 0) const;

    /** Bytes held by packed codes + grids (both planes). */
    size_t packedBytes() const;

    /** Bytes held by the full-precision residual tail (both planes). */
    size_t fpBytes() const;

  private:
    /** Read the `idx`-th `bits_`-wide code of a packed plane. */
    unsigned codeAt(const std::vector<uint8_t> &codes, size_t idx) const;

    /** Append one `bits_`-wide code to a packed plane. */
    static void pushCode(std::vector<uint8_t> &codes, size_t idx,
                         unsigned bits, unsigned code);

    /** Encode the oldest groupSize residual tokens into the planes. */
    void closeGroup();

    size_t channels_ = 0;
    unsigned bits_ = 2;
    size_t group_ = 128;     ///< tokens per key group / channels per value group
    size_t residual_ = 128;  ///< minimum full-precision tail (tokens)
    size_t valueGroups_ = 0; ///< ceil(channels / group): value grids per token

    size_t tokens_ = 0;      ///< total appended
    size_t quantized_ = 0;   ///< closed prefix [0, quantized_)

    // Packed planes. Key codes are stored group-chunk major, channels
    // within a chunk, tokens within a channel: code index
    // ((t / G) * channels + ch) * G + t % G — one contiguous run per
    // (channel, group) span, mirroring the per-channel grouping. Value
    // codes are token major: t * channels + ch, grouped per token over
    // channel runs. Grids hold the asymmetric (lo, step) pairs.
    std::vector<uint8_t> keyCodes_;
    std::vector<AsymSpanGrid> keyGrid_;   ///< (t/G) * channels + ch
    std::vector<uint8_t> valueCodes_;
    std::vector<AsymSpanGrid> valueGrid_; ///< t * valueGroups + g

    // Full-precision tail, token major: tail[(t - quantized_) * channels
    // + ch]. Appends push_back; closeGroup erases the oldest group.
    std::vector<double> keyTail_;
    std::vector<double> valueTail_;
};

} // namespace msq

#endif // MSQ_QUANT_KV_POOL_H
