#include "quant/quant_util.h"

#include <algorithm>
#include <cmath>

namespace msq {

double
symScale(double max_abs, int qmax)
{
    if (max_abs == 0.0)
        return 1.0;
    return max_abs / static_cast<double>(qmax);
}

double
symQuantValue(double v, double scale, int qmax)
{
    const double q = std::floor(v / scale + 0.5);
    const double clipped =
        std::clamp(q, -static_cast<double>(qmax), static_cast<double>(qmax));
    return clipped * scale;
}

double
symQuantSpan(double *values, size_t n, int qmax)
{
    double max_abs = 0.0;
    for (size_t i = 0; i < n; ++i)
        max_abs = std::max(max_abs, std::fabs(values[i]));
    const double scale = symScale(max_abs, qmax);
    for (size_t i = 0; i < n; ++i)
        values[i] = symQuantValue(values[i], scale, qmax);
    return scale;
}

double
symQuantSpanClipped(double *values, size_t n, int qmax, double clip_ratio)
{
    double max_abs = 0.0;
    for (size_t i = 0; i < n; ++i)
        max_abs = std::max(max_abs, std::fabs(values[i]));
    const double scale = symScale(max_abs * clip_ratio, qmax);
    for (size_t i = 0; i < n; ++i)
        values[i] = symQuantValue(values[i], scale, qmax);
    return scale;
}

double
spanMse(const double *a, const double *b, size_t n)
{
    double acc = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return n > 0 ? acc / static_cast<double>(n) : 0.0;
}

void
symQuantColumnGroups(Matrix &w, size_t group, int qmax)
{
    const size_t k = w.rows();
    const size_t g = group == 0 ? k : group;
    std::vector<double> span;
    for (size_t c = 0; c < w.cols(); ++c) {
        for (size_t r0 = 0; r0 < k; r0 += g) {
            const size_t n = std::min(g, k - r0);
            span.resize(n);
            for (size_t i = 0; i < n; ++i)
                span[i] = w(r0 + i, c);
            symQuantSpan(span.data(), n, qmax);
            for (size_t i = 0; i < n; ++i)
                w(r0 + i, c) = span[i];
        }
    }
}

void
clipSearchColumnGroups(Matrix &w, size_t group, int qmax)
{
    const size_t k = w.rows();
    const size_t g = group == 0 ? k : group;
    std::vector<double> span, best, scratch;
    for (size_t c = 0; c < w.cols(); ++c) {
        for (size_t r0 = 0; r0 < k; r0 += g) {
            const size_t n = std::min(g, k - r0);
            span.resize(n);
            best.resize(n);
            scratch.resize(n);
            for (size_t i = 0; i < n; ++i)
                span[i] = w(r0 + i, c);
            double best_err = -1.0;
            for (double ratio :
                 {1.0, 0.95, 0.9, 0.85, 0.8, 0.75, 0.7, 0.65, 0.6}) {
                scratch = span;
                symQuantSpanClipped(scratch.data(), n, qmax, ratio);
                const double err = spanMse(scratch.data(), span.data(), n);
                if (best_err < 0.0 || err < best_err) {
                    best_err = err;
                    best = scratch;
                }
            }
            for (size_t i = 0; i < n; ++i)
                w(r0 + i, c) = best[i];
        }
    }
}

double
threeSigmaThreshold(const double *values, size_t n)
{
    if (n == 0)
        return 0.0;
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i)
        sum += values[i];
    const double mu = sum / static_cast<double>(n);
    double var = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double d = values[i] - mu;
        var += d * d;
    }
    var /= static_cast<double>(n);
    return 3.0 * std::sqrt(var);
}

} // namespace msq
