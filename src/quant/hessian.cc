#include "quant/hessian.h"

#include <map>
#include <memory>
#include <tuple>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/parallel.h"

namespace msq {

namespace {

/**
 * Content hash of a calibration matrix (FNV-1a over the raw bytes plus
 * an element sum), so deterministic regeneration of the same data hits
 * the cache regardless of allocation identity.
 */
uint64_t
contentHash(const Matrix &m)
{
    uint64_t h = 1469598103934665603ULL;
    const auto *bytes = reinterpret_cast<const unsigned char *>(m.data());
    const size_t n = m.size() * sizeof(double);
    for (size_t i = 0; i < n; ++i) {
        h ^= bytes[i];
        h *= 1099511628211ULL;
    }
    return h;
}

/**
 * Guards hessian_cache: the parallel pipeline quantizes independent
 * layers (and independent sweep cells) concurrently, and several of
 * them may factorize with the same calibration data.
 */
Mutex hessian_mutex;

// Entries are shared_ptr so a clear() (explicit or capacity-triggered)
// cannot invalidate a factor another thread is still copying out, and
// so lookups only copy a pointer while the mutex is held.
using HessianKey = std::tuple<uint64_t, size_t, size_t, double>;
std::map<HessianKey, std::shared_ptr<const Matrix>> hessian_cache
    MSQ_GUARDED_BY(hessian_mutex);

/** Bound the cache so long sweeps cannot exhaust memory. */
constexpr size_t kMaxCachedHessians = 48;

} // namespace

Matrix
buildHessian(const Matrix &calib, double damp_rel)
{
    const size_t k = calib.rows();
    MSQ_ASSERT(k > 0, "empty calibration data");
    const size_t n = calib.cols();

    Matrix h(k, k);
    // H = 2 X X^T, exploiting symmetry. Row i of the upper triangle is
    // an independent unit of work (it alone writes h(i, j) and h(j, i)
    // for j >= i), so the triangular loop parallelizes directly; the
    // self-scheduled chunking in parallelFor absorbs the imbalance
    // between early (long) and late (short) rows. Each dot product is
    // still accumulated in a fixed order, so the result is bit-exact
    // regardless of thread count.
    parallelFor(0, k, [&](size_t i) {
        const double *xi = calib.rowPtr(i);
        for (size_t j = i; j < k; ++j) {
            const double *xj = calib.rowPtr(j);
            double acc = 0.0;
            for (size_t t = 0; t < n; ++t)
                acc += xi[t] * xj[t];
            h(i, j) = 2.0 * acc;
            h(j, i) = 2.0 * acc;
        }
    });

    double mean_diag = 0.0;
    for (size_t i = 0; i < k; ++i)
        mean_diag += h(i, i);
    mean_diag /= static_cast<double>(k);
    const double damp = damp_rel * (mean_diag > 0.0 ? mean_diag : 1.0);
    for (size_t i = 0; i < k; ++i)
        h(i, i) += damp;
    return h;
}

Matrix
invertHessian(const Matrix &hessian)
{
    return choleskyInverse(hessian);
}

Matrix
hessianInverseFromCalib(const Matrix &calib, double damp_rel)
{
    return invertHessian(buildHessian(calib, damp_rel));
}

Matrix
hessianInverseCholesky(const Matrix &calib, double damp_rel)
{
    return choleskyFactor(hessianInverseFromCalib(calib, damp_rel));
}

Matrix
hessianInverseCholeskyCached(const Matrix &calib, double damp_rel)
{
    const HessianKey key{contentHash(calib), calib.rows(), calib.cols(),
                         damp_rel};
    std::shared_ptr<const Matrix> hit;
    {
        MutexLock lock(hessian_mutex);
        auto it = hessian_cache.find(key);
        if (it != hessian_cache.end())
            hit = it->second;
    }
    if (hit)
        return *hit;  // O(k^2) copy happens outside the mutex
    // Factorize outside the lock: concurrent misses on *different*
    // calibrations must not serialize on the O(k^3) work. Two threads
    // missing on the same key redundantly compute identical factors;
    // the second insert is a no-op.
    auto factor = std::make_shared<const Matrix>(
        hessianInverseCholesky(calib, damp_rel));
    {
        MutexLock lock(hessian_mutex);
        if (hessian_cache.size() >= kMaxCachedHessians)
            hessian_cache.clear();
        hessian_cache.emplace(key, factor);
    }
    return *factor;
}

void
clearHessianCache()
{
    MutexLock lock(hessian_mutex);
    hessian_cache.clear();
}

} // namespace msq
