#include "quant/hessian.h"

#include <map>
#include <tuple>

#include "common/logging.h"

namespace msq {

namespace {

/**
 * Content hash of a calibration matrix (FNV-1a over the raw bytes plus
 * an element sum), so deterministic regeneration of the same data hits
 * the cache regardless of allocation identity.
 */
uint64_t
contentHash(const Matrix &m)
{
    uint64_t h = 1469598103934665603ULL;
    const auto *bytes = reinterpret_cast<const unsigned char *>(m.data());
    const size_t n = m.size() * sizeof(double);
    for (size_t i = 0; i < n; ++i) {
        h ^= bytes[i];
        h *= 1099511628211ULL;
    }
    return h;
}

using HessianKey = std::tuple<uint64_t, size_t, size_t, double>;
std::map<HessianKey, Matrix> hessian_cache;

/** Bound the cache so long sweeps cannot exhaust memory. */
constexpr size_t kMaxCachedHessians = 48;

} // namespace

Matrix
buildHessian(const Matrix &calib, double damp_rel)
{
    const size_t k = calib.rows();
    MSQ_ASSERT(k > 0, "empty calibration data");
    const size_t n = calib.cols();

    Matrix h(k, k);
    // H = 2 X X^T, exploiting symmetry.
    for (size_t i = 0; i < k; ++i) {
        const double *xi = calib.rowPtr(i);
        for (size_t j = i; j < k; ++j) {
            const double *xj = calib.rowPtr(j);
            double acc = 0.0;
            for (size_t t = 0; t < n; ++t)
                acc += xi[t] * xj[t];
            h(i, j) = 2.0 * acc;
            h(j, i) = 2.0 * acc;
        }
    }

    double mean_diag = 0.0;
    for (size_t i = 0; i < k; ++i)
        mean_diag += h(i, i);
    mean_diag /= static_cast<double>(k);
    const double damp = damp_rel * (mean_diag > 0.0 ? mean_diag : 1.0);
    for (size_t i = 0; i < k; ++i)
        h(i, i) += damp;
    return h;
}

Matrix
invertHessian(const Matrix &hessian)
{
    return choleskyInverse(hessian);
}

Matrix
hessianInverseFromCalib(const Matrix &calib, double damp_rel)
{
    return invertHessian(buildHessian(calib, damp_rel));
}

Matrix
hessianInverseCholesky(const Matrix &calib, double damp_rel)
{
    return choleskyFactor(hessianInverseFromCalib(calib, damp_rel));
}

const Matrix &
hessianInverseCholeskyCached(const Matrix &calib, double damp_rel)
{
    const HessianKey key{contentHash(calib), calib.rows(), calib.cols(),
                         damp_rel};
    auto it = hessian_cache.find(key);
    if (it == hessian_cache.end()) {
        if (hessian_cache.size() >= kMaxCachedHessians)
            hessian_cache.clear();
        it = hessian_cache
                 .emplace(key, hessianInverseCholesky(calib, damp_rel))
                 .first;
    }
    return it->second;
}

void
clearHessianCache()
{
    hessian_cache.clear();
}

} // namespace msq
