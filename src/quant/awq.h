/**
 * @file
 * AWQ-style baseline: activation-aware weight quantization. Instead of
 * keeping outliers at high precision, AWQ searches a per-input-channel
 * scaling that protects salient weights (those multiplying large
 * activations) before plain group RTN quantization. The transformation
 * is lossless at inference time because the inverse scale folds into the
 * previous layer / activation path.
 *
 * This reproduction grid-searches the migration exponent alpha in
 * s_k = (mean |x_k|)^alpha, picking the alpha minimizing the output
 * reconstruction error on the calibration set, as in the original paper.
 */

#ifndef MSQ_QUANT_AWQ_H
#define MSQ_QUANT_AWQ_H

#include "quant/quantizer.h"

namespace msq {

/** AWQ-style activation-aware quantizer. */
class AwqQuantizer : public WeightQuantizer
{
  public:
    explicit AwqQuantizer(unsigned bits, size_t group_size = 128,
                          unsigned grid_points = 11);

    std::string name() const override;
    QuantResult quantize(const Matrix &w, const Matrix &calib) override;

  private:
    unsigned bits_;
    size_t groupSize_;
    unsigned gridPoints_;
};

} // namespace msq

#endif // MSQ_QUANT_AWQ_H
