#include "quant/kv_pool.h"

#include <algorithm>

#include "common/logging.h"
#include "quant/span_kernels.h"

namespace msq {

KvPool::KvPool(size_t channels, const KvCacheConfig &config)
    : channels_(channels), bits_(config.bits), group_(config.groupSize),
      residual_(config.residual)
{
    MSQ_ASSERT(channels_ > 0, "KvPool needs at least one channel");
    MSQ_ASSERT(bits_ >= 1 && bits_ <= 8, "KvPool code width");
    MSQ_ASSERT(group_ > 0,
               "KvPool needs a finite groupSize to close groups");
    valueGroups_ = (channels_ + group_ - 1) / group_;
}

unsigned
KvPool::codeAt(const std::vector<uint8_t> &codes, size_t idx) const
{
    const size_t bit = idx * bits_;
    const size_t byte = bit / 8;
    const unsigned shift = static_cast<unsigned>(bit % 8);
    unsigned v = static_cast<unsigned>(codes[byte]) >> shift;
    if (shift + bits_ > 8)
        v |= static_cast<unsigned>(codes[byte + 1]) << (8 - shift);
    return v & ((1u << bits_) - 1u);
}

void
KvPool::pushCode(std::vector<uint8_t> &codes, size_t idx, unsigned bits,
                 unsigned code)
{
    const size_t bit = idx * bits;
    const size_t last = (bit + bits - 1) / 8;
    if (codes.size() <= last)
        codes.resize(last + 1, 0);
    const unsigned shift = static_cast<unsigned>(bit % 8);
    codes[bit / 8] |= static_cast<uint8_t>(code << shift);
    if (shift + bits > 8)
        codes[bit / 8 + 1] |= static_cast<uint8_t>(code >> (8 - shift));
}

void
KvPool::append(const double *key, const double *value)
{
    keyTail_.insert(keyTail_.end(), key, key + channels_);
    valueTail_.insert(valueTail_.end(), value, value + channels_);
    ++tokens_;
    while (tokens_ - quantized_ >= residual_ + group_)
        closeGroup();
}

void
KvPool::closeGroup()
{
    const size_t chunk = quantized_ / group_;
    std::vector<double> span(std::max(group_, channels_));

    // Keys: one grid per channel spanning the group's tokens.
    for (size_t ch = 0; ch < channels_; ++ch) {
        for (size_t j = 0; j < group_; ++j)
            span[j] = keyTail_[j * channels_ + ch];
        const AsymSpanGrid grid = asymSpanParams(span.data(), group_, bits_);
        keyGrid_.push_back(grid);
        for (size_t j = 0; j < group_; ++j)
            pushCode(keyCodes_, (chunk * channels_ + ch) * group_ + j,
                     bits_, asymEncode(span[j], grid, bits_));
    }

    // Values: per token, grids over channel runs of groupSize (ragged
    // last run when groupSize does not divide the channel count).
    for (size_t j = 0; j < group_; ++j) {
        const size_t t = quantized_ + j;
        for (size_t g = 0; g < valueGroups_; ++g) {
            const size_t c0 = g * group_;
            const size_t n = std::min(group_, channels_ - c0);
            for (size_t i = 0; i < n; ++i)
                span[i] = valueTail_[j * channels_ + c0 + i];
            const AsymSpanGrid grid = asymSpanParams(span.data(), n, bits_);
            valueGrid_.push_back(grid);
            for (size_t i = 0; i < n; ++i)
                pushCode(valueCodes_, t * channels_ + c0 + i, bits_,
                         asymEncode(span[i], grid, bits_));
        }
    }

    quantized_ += group_;
    keyTail_.erase(keyTail_.begin(),
                   keyTail_.begin() +
                       static_cast<ptrdiff_t>(group_ * channels_));
    valueTail_.erase(valueTail_.begin(),
                     valueTail_.begin() +
                         static_cast<ptrdiff_t>(group_ * channels_));
}

double
KvPool::key(size_t ch, size_t t) const
{
    MSQ_ASSERT(ch < channels_ && t < tokens_, "KvPool key out of range");
    if (t >= quantized_)
        return keyTail_[(t - quantized_) * channels_ + ch];
    const size_t chunk = t / group_;
    const AsymSpanGrid &grid = keyGrid_[chunk * channels_ + ch];
    return asymDecode(
        static_cast<uint8_t>(codeAt(
            keyCodes_, (chunk * channels_ + ch) * group_ + t % group_)),
        grid);
}

double
KvPool::value(size_t ch, size_t t) const
{
    MSQ_ASSERT(ch < channels_ && t < tokens_, "KvPool value out of range");
    if (t >= quantized_)
        return valueTail_[(t - quantized_) * channels_ + ch];
    const AsymSpanGrid &grid = valueGrid_[t * valueGroups_ + ch / group_];
    return asymDecode(
        static_cast<uint8_t>(codeAt(valueCodes_, t * channels_ + ch)),
        grid);
}

void
KvPool::gather(double *keys, double *values, size_t stride) const
{
    const size_t ld = stride == 0 ? tokens_ : stride;
    MSQ_ASSERT(ld >= tokens_, "gather stride below token count");
    // Closed groups: keys decode one (chunk, channel) run at a time,
    // values one (token, channel-group) run at a time — both walk
    // their packed codes in storage order through the dispatched span
    // decoder (quant/span_kernels.h). Key runs land contiguously in
    // the output row; value runs decode into `tmp` and scatter (the
    // output is token-strided), so the vectorized part stays dense.
    std::vector<double> tmp(group_);
    for (size_t chunk = 0; chunk * group_ < quantized_; ++chunk) {
        const size_t t0 = chunk * group_;
        for (size_t ch = 0; ch < channels_; ++ch) {
            const AsymSpanGrid &grid = keyGrid_[chunk * channels_ + ch];
            const size_t base = (chunk * channels_ + ch) * group_;
            asymDecodeSpan(keyCodes_.data(), base, group_, bits_, grid,
                           keys + ch * ld + t0);
        }
        for (size_t j = 0; j < group_; ++j) {
            const size_t t = t0 + j;
            const AsymSpanGrid *grids = valueGrid_.data() + t * valueGroups_;
            for (size_t g = 0; g < valueGroups_; ++g) {
                const size_t c0 = g * group_;
                const size_t n = std::min(group_, channels_ - c0);
                asymDecodeSpan(valueCodes_.data(), t * channels_ + c0, n,
                               bits_, grids[g], tmp.data());
                for (size_t i = 0; i < n; ++i)
                    values[(c0 + i) * ld + t] = tmp[i];
            }
        }
    }
    // Full-precision tail.
    for (size_t t = quantized_; t < tokens_; ++t) {
        const double *krow = keyTail_.data() + (t - quantized_) * channels_;
        const double *vrow =
            valueTail_.data() + (t - quantized_) * channels_;
        for (size_t ch = 0; ch < channels_; ++ch) {
            keys[ch * ld + t] = krow[ch];
            values[ch * ld + t] = vrow[ch];
        }
    }
}

size_t
KvPool::packedBytes() const
{
    return keyCodes_.size() + valueCodes_.size() +
           (keyGrid_.size() + valueGrid_.size()) * sizeof(AsymSpanGrid);
}

size_t
KvPool::fpBytes() const
{
    return (keyTail_.size() + valueTail_.size()) * sizeof(double);
}

} // namespace msq
