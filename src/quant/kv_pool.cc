#include "quant/kv_pool.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"
#include "quant/span_kernels.h"

namespace msq {

namespace {

/**
 * Per-thread encode/decode scratch, hoisted out of the per-call hot
 * paths (`gather` used to allocate a `tmp(group)` vector per call,
 * once per decode step per sequence per layer). Grow-only, shared by
 * every pool on the thread; contents never survive a call.
 */
std::vector<double> &
threadSpan(size_t n)
{
    thread_local std::vector<double> span;
    if (span.size() < n)
        span.resize(n);
    return span;
}

constexpr size_t kGridSize = sizeof(AsymSpanGrid);

size_t
roundUp16(size_t n)
{
    return (n + 15) / 16 * 16;
}

} // namespace

// ---------------------------------------------------------------------------
// KvPoolSnapshot

KvPoolSnapshot::~KvPoolSnapshot()
{
    reset();
}

void
KvPoolSnapshot::reset()
{
    if (arena_ != nullptr)
        for (KvArena::PageId id : fullPages_)
            arena_->release(id);
    arena_ = nullptr;
    fullPages_.clear();
    partial_.clear();
    keyTail_.clear();
    valueTail_.clear();
    tokens_ = quantized_ = partialGroups_ = 0;
}

KvPoolSnapshot::KvPoolSnapshot(KvPoolSnapshot &&other) noexcept
    : arena_(other.arena_), channels_(other.channels_), bits_(other.bits_),
      group_(other.group_), residual_(other.residual_),
      tokens_(other.tokens_), quantized_(other.quantized_),
      fullPages_(std::move(other.fullPages_)),
      partial_(std::move(other.partial_)),
      partialGroups_(other.partialGroups_),
      keyTail_(std::move(other.keyTail_)),
      valueTail_(std::move(other.valueTail_))
{
    other.arena_ = nullptr;
    other.fullPages_.clear();
}

KvPoolSnapshot &
KvPoolSnapshot::operator=(KvPoolSnapshot &&other) noexcept
{
    if (this != &other) {
        reset();
        arena_ = other.arena_;
        channels_ = other.channels_;
        bits_ = other.bits_;
        group_ = other.group_;
        residual_ = other.residual_;
        tokens_ = other.tokens_;
        quantized_ = other.quantized_;
        fullPages_ = std::move(other.fullPages_);
        partial_ = std::move(other.partial_);
        partialGroups_ = other.partialGroups_;
        keyTail_ = std::move(other.keyTail_);
        valueTail_ = std::move(other.valueTail_);
        other.arena_ = nullptr;
        other.fullPages_.clear();
    }
    return *this;
}

size_t
KvPoolSnapshot::bytes() const
{
    const size_t page = arena_ != nullptr ? arena_->pageBytes() : 0;
    return fullPages_.size() * page + partial_.size() +
           (keyTail_.size() + valueTail_.size()) * sizeof(double);
}

// ---------------------------------------------------------------------------
// KvPool

KvPool::KvPool(size_t channels, const KvCacheConfig &config, KvArena *arena)
    : channels_(channels), bits_(config.bits), group_(config.groupSize),
      residual_(config.residual)
{
    MSQ_ASSERT(channels_ > 0, "KvPool needs at least one channel");
    MSQ_ASSERT(bits_ >= 1 && bits_ <= 8, "KvPool code width");
    MSQ_ASSERT(group_ > 0,
               "KvPool needs a finite groupSize to close groups");
    valueGroups_ = (channels_ + group_ - 1) / group_;

    // Closed-group region layout (see the header comment): grids first
    // so they stay 16-byte aligned inside the page, byte-aligned code
    // blocks after.
    vGridOff_ = channels_ * kGridSize;
    kCodeOff_ = vGridOff_ + group_ * valueGroups_ * kGridSize;
    kCodeBytes_ = (channels_ * group_ * bits_ + 7) / 8;
    vCodeOff_ = kCodeOff_ + kCodeBytes_;
    vCodeBytes_ = (group_ * channels_ * bits_ + 7) / 8;
    groupBytes_ = roundUp16(vCodeOff_ + vCodeBytes_);

    if (arena == nullptr) {
        KvArenaConfig ac;
        ac.pageBytes = groupBytes_;
        owned_ = std::make_unique<KvArena>(ac);
        arena = owned_.get();
    }
    arena_ = arena;
    MSQ_ASSERT(arena_->pageBytes() >= groupBytes_,
               "KvArena page too small for one closed group");
    groupsPerPage_ = arena_->pageBytes() / groupBytes_;
    tokensPerFpPage_ =
        arena_->pageBytes() / (2 * channels_ * sizeof(double));
    MSQ_ASSERT(tokensPerFpPage_ > 0,
               "KvArena page too small for one fp token slot");
}

KvPool::~KvPool()
{
    releaseAll();
}

void
KvPool::releaseAll()
{
    if (arena_ != nullptr) {
        for (const PageRef &p : packed_)
            arena_->release(p.id);
        for (const PageRef &p : fp_)
            arena_->release(p.id);
    }
    packed_.clear();
    fp_.clear();
}

KvPool::KvPool(KvPool &&other) noexcept
    : channels_(other.channels_), bits_(other.bits_), group_(other.group_),
      residual_(other.residual_), valueGroups_(other.valueGroups_),
      tokens_(other.tokens_), quantized_(other.quantized_),
      groupBytes_(other.groupBytes_), vGridOff_(other.vGridOff_),
      kCodeOff_(other.kCodeOff_), vCodeOff_(other.vCodeOff_),
      kCodeBytes_(other.kCodeBytes_), vCodeBytes_(other.vCodeBytes_),
      groupsPerPage_(other.groupsPerPage_),
      tokensPerFpPage_(other.tokensPerFpPage_), arena_(other.arena_),
      owned_(std::move(other.owned_)), packed_(std::move(other.packed_)),
      fp_(std::move(other.fp_)), tailHead_(other.tailHead_)
{
    other.arena_ = nullptr;
    other.packed_.clear();
    other.fp_.clear();
}

KvPool &
KvPool::operator=(KvPool &&other) noexcept
{
    if (this != &other) {
        releaseAll();
        channels_ = other.channels_;
        bits_ = other.bits_;
        group_ = other.group_;
        residual_ = other.residual_;
        valueGroups_ = other.valueGroups_;
        tokens_ = other.tokens_;
        quantized_ = other.quantized_;
        groupBytes_ = other.groupBytes_;
        vGridOff_ = other.vGridOff_;
        kCodeOff_ = other.kCodeOff_;
        vCodeOff_ = other.vCodeOff_;
        kCodeBytes_ = other.kCodeBytes_;
        vCodeBytes_ = other.vCodeBytes_;
        groupsPerPage_ = other.groupsPerPage_;
        tokensPerFpPage_ = other.tokensPerFpPage_;
        arena_ = other.arena_;
        owned_ = std::move(other.owned_);
        packed_ = std::move(other.packed_);
        fp_ = std::move(other.fp_);
        tailHead_ = other.tailHead_;
        other.arena_ = nullptr;
        other.packed_.clear();
        other.fp_.clear();
    }
    return *this;
}

size_t
KvPool::minPageBytes(size_t channels, const KvCacheConfig &config)
{
    MSQ_ASSERT(channels > 0 && config.groupSize > 0,
               "minPageBytes needs a valid pool shape");
    const size_t value_groups =
        (channels + config.groupSize - 1) / config.groupSize;
    const size_t grids =
        (channels + config.groupSize * value_groups) * kGridSize;
    const size_t kcodes = (channels * config.groupSize * config.bits + 7) / 8;
    const size_t vcodes = (config.groupSize * channels * config.bits + 7) / 8;
    return roundUp16(grids + kcodes + vcodes);
}

size_t
KvPool::estimatePages(size_t channels, const KvCacheConfig &config,
                      size_t tokens, size_t pageBytes)
{
    const size_t group_bytes = minPageBytes(channels, config);
    MSQ_ASSERT(pageBytes >= group_bytes,
               "estimatePages: page below one closed group");
    const size_t gpp = pageBytes / group_bytes;
    const size_t tpf = pageBytes / (2 * channels * sizeof(double));
    const size_t close_at = config.residual + config.groupSize;
    const size_t quant =
        tokens >= close_at
            ? ((tokens - config.residual) / config.groupSize) *
                  config.groupSize
            : 0;
    const size_t groups = quant / config.groupSize;
    const size_t packed_pages = (groups + gpp - 1) / gpp;
    // fp-tail high-water mark, plus one page of ring-offset slack.
    const size_t max_tail = std::min(tokens, close_at);
    const size_t fp_pages = (max_tail + tpf - 1) / tpf + 1;
    return packed_pages + fp_pages;
}

KvPool::PageRef
KvPool::allocPage()
{
    PageRef p;
    p.id = arena_->allocate();
    p.data = arena_->page(p.id);
    return p;
}

const uint8_t *
KvPool::groupPtr(size_t gi) const
{
    return packed_[gi / groupsPerPage_].data +
           (gi % groupsPerPage_) * groupBytes_;
}

uint8_t *
KvPool::groupPtr(size_t gi)
{
    return packed_[gi / groupsPerPage_].data +
           (gi % groupsPerPage_) * groupBytes_;
}

const double *
KvPool::tailSlot(size_t i) const
{
    const size_t slot = tailHead_ + i;
    return reinterpret_cast<const double *>(
               fp_[slot / tokensPerFpPage_].data) +
           (slot % tokensPerFpPage_) * 2 * channels_;
}

double *
KvPool::tailSlot(size_t i)
{
    const size_t slot = tailHead_ + i;
    return reinterpret_cast<double *>(fp_[slot / tokensPerFpPage_].data) +
           (slot % tokensPerFpPage_) * 2 * channels_;
}

unsigned
KvPool::codeAt(const uint8_t *codes, size_t idx) const
{
    const size_t bit = idx * bits_;
    const size_t byte = bit / 8;
    const unsigned shift = static_cast<unsigned>(bit % 8);
    unsigned v = static_cast<unsigned>(codes[byte]) >> shift;
    if (shift + bits_ > 8)
        v |= static_cast<unsigned>(codes[byte + 1]) << (8 - shift);
    return v & ((1u << bits_) - 1u);
}

void
KvPool::pushCode(uint8_t *codes, size_t idx, unsigned bits, unsigned code)
{
    const size_t bit = idx * bits;
    const unsigned shift = static_cast<unsigned>(bit % 8);
    codes[bit / 8] |= static_cast<uint8_t>(code << shift);
    if (shift + bits > 8)
        codes[bit / 8 + 1] |= static_cast<uint8_t>(code >> (8 - shift));
}

void
KvPool::append(const double *key, const double *value)
{
    const size_t slot = tailHead_ + (tokens_ - quantized_);
    const size_t page = slot / tokensPerFpPage_;
    if (page == fp_.size())
        fp_.push_back(allocPage());
    double *row = reinterpret_cast<double *>(fp_[page].data) +
                  (slot % tokensPerFpPage_) * 2 * channels_;
    std::memcpy(row, key, channels_ * sizeof(double));
    std::memcpy(row + channels_, value, channels_ * sizeof(double));
    ++tokens_;
    while (tokens_ - quantized_ >= residual_ + group_)
        closeGroup();
}

void
KvPool::closeGroup()
{
    const size_t gi = quantized_ / group_;
    if (gi % groupsPerPage_ == 0)
        packed_.push_back(allocPage());
    uint8_t *gp = groupPtr(gi);
    std::vector<double> &span = threadSpan(std::max(group_, channels_));

    // Keys: one grid per channel spanning the group's tokens.
    for (size_t ch = 0; ch < channels_; ++ch) {
        for (size_t j = 0; j < group_; ++j)
            span[j] = tailSlot(j)[ch];
        const AsymSpanGrid grid = asymSpanParams(span.data(), group_, bits_);
        std::memcpy(gp + ch * kGridSize, &grid, kGridSize);
        for (size_t j = 0; j < group_; ++j)
            pushCode(gp + kCodeOff_, ch * group_ + j, bits_,
                     asymEncode(span[j], grid, bits_));
    }

    // Values: per token, grids over channel runs of groupSize (ragged
    // last run when groupSize does not divide the channel count).
    for (size_t j = 0; j < group_; ++j) {
        const double *vrow = tailSlot(j) + channels_;
        for (size_t g = 0; g < valueGroups_; ++g) {
            const size_t c0 = g * group_;
            const size_t n = std::min(group_, channels_ - c0);
            for (size_t i = 0; i < n; ++i)
                span[i] = vrow[c0 + i];
            const AsymSpanGrid grid = asymSpanParams(span.data(), n, bits_);
            std::memcpy(gp + vGridOff_ + (j * valueGroups_ + g) * kGridSize,
                        &grid, kGridSize);
            for (size_t i = 0; i < n; ++i)
                pushCode(gp + vCodeOff_, j * channels_ + c0 + i, bits_,
                         asymEncode(span[i], grid, bits_));
        }
    }

    // Advance the ring: the closed tokens leave the tail, and fp pages
    // whose slots have all aged out go back to the arena — O(group)
    // work total, unlike the old erase-from-front memmove which paid
    // O(residual window) per plane per close.
    quantized_ += group_;
    tailHead_ += group_;
    while (tailHead_ >= tokensPerFpPage_) {
        arena_->release(fp_.front().id);
        fp_.erase(fp_.begin());
        tailHead_ -= tokensPerFpPage_;
    }
}

double
KvPool::key(size_t ch, size_t t) const
{
    MSQ_ASSERT(ch < channels_ && t < tokens_, "KvPool key out of range");
    if (t >= quantized_)
        return tailSlot(t - quantized_)[ch];
    const uint8_t *gp = groupPtr(t / group_);
    AsymSpanGrid grid;
    std::memcpy(&grid, gp + ch * kGridSize, kGridSize);
    return asymDecode(
        static_cast<uint8_t>(
            codeAt(gp + kCodeOff_, ch * group_ + t % group_)),
        grid);
}

double
KvPool::value(size_t ch, size_t t) const
{
    MSQ_ASSERT(ch < channels_ && t < tokens_, "KvPool value out of range");
    if (t >= quantized_)
        return tailSlot(t - quantized_)[channels_ + ch];
    const uint8_t *gp = groupPtr(t / group_);
    const size_t j = t % group_;
    AsymSpanGrid grid;
    std::memcpy(&grid,
                gp + vGridOff_ + (j * valueGroups_ + ch / group_) * kGridSize,
                kGridSize);
    return asymDecode(
        static_cast<uint8_t>(codeAt(gp + vCodeOff_, j * channels_ + ch)),
        grid);
}

void
KvPool::gather(double *keys, double *values, size_t stride) const
{
    const size_t ld = stride == 0 ? tokens_ : stride;
    MSQ_ASSERT(ld >= tokens_, "gather stride below token count");
    // Closed groups: keys decode one (group, channel) run at a time,
    // values one (token, channel-group) run at a time — both walk
    // their packed codes in storage order through the dispatched span
    // decoder (quant/span_kernels.h). Key runs land contiguously in
    // the output row; value runs decode into the thread-local scratch
    // and scatter (the output is token-strided), so the vectorized
    // part stays dense.
    std::vector<double> &tmp = threadSpan(group_);
    for (size_t gi = 0; gi * group_ < quantized_; ++gi) {
        const size_t t0 = gi * group_;
        const uint8_t *gp = groupPtr(gi);
        for (size_t ch = 0; ch < channels_; ++ch) {
            AsymSpanGrid grid;
            std::memcpy(&grid, gp + ch * kGridSize, kGridSize);
            asymDecodeSpan(gp + kCodeOff_, ch * group_, group_, bits_, grid,
                           keys + ch * ld + t0);
        }
        for (size_t j = 0; j < group_; ++j) {
            const size_t t = t0 + j;
            for (size_t g = 0; g < valueGroups_; ++g) {
                const size_t c0 = g * group_;
                const size_t n = std::min(group_, channels_ - c0);
                AsymSpanGrid grid;
                std::memcpy(&grid,
                            gp + vGridOff_ +
                                (j * valueGroups_ + g) * kGridSize,
                            kGridSize);
                asymDecodeSpan(gp + vCodeOff_, j * channels_ + c0, n, bits_,
                               grid, tmp.data());
                for (size_t i = 0; i < n; ++i)
                    values[(c0 + i) * ld + t] = tmp[i];
            }
        }
    }
    // Full-precision tail.
    for (size_t t = quantized_; t < tokens_; ++t) {
        const double *row = tailSlot(t - quantized_);
        for (size_t ch = 0; ch < channels_; ++ch) {
            keys[ch * ld + t] = row[ch];
            values[ch * ld + t] = row[channels_ + ch];
        }
    }
}

KvPoolSnapshot
KvPool::snapshot() const
{
    KvPoolSnapshot s;
    s.arena_ = arena_;
    s.channels_ = channels_;
    s.bits_ = bits_;
    s.group_ = group_;
    s.residual_ = residual_;
    s.tokens_ = tokens_;
    s.quantized_ = quantized_;

    const size_t groups = quantized_ / group_;
    const size_t full_pages = groups / groupsPerPage_;
    s.partialGroups_ = groups % groupsPerPage_;
    s.fullPages_.reserve(full_pages);
    for (size_t p = 0; p < full_pages; ++p) {
        arena_->retain(packed_[p].id);
        s.fullPages_.push_back(packed_[p].id);
    }
    if (s.partialGroups_ > 0)
        s.partial_.assign(packed_[full_pages].data,
                          packed_[full_pages].data +
                              s.partialGroups_ * groupBytes_);

    const size_t tail = tokens_ - quantized_;
    s.keyTail_.resize(tail * channels_);
    s.valueTail_.resize(tail * channels_);
    for (size_t i = 0; i < tail; ++i) {
        const double *row = tailSlot(i);
        std::memcpy(s.keyTail_.data() + i * channels_, row,
                    channels_ * sizeof(double));
        std::memcpy(s.valueTail_.data() + i * channels_, row + channels_,
                    channels_ * sizeof(double));
    }
    return s;
}

void
KvPool::adopt(const KvPoolSnapshot &snap)
{
    MSQ_ASSERT(tokens_ == 0 && packed_.empty() && fp_.empty(),
               "adopt requires a fresh pool");
    MSQ_ASSERT(snap.arena_ == arena_, "adopt across arenas");
    MSQ_ASSERT(snap.channels_ == channels_ && snap.bits_ == bits_ &&
                   snap.group_ == group_ && snap.residual_ == residual_,
               "adopt shape mismatch");

    // Share the immutable full pages (this pool only ever writes group
    // slots past the snapshot's group count, which land in the private
    // partial-page copy or in fresh pages).
    packed_.reserve(snap.fullPages_.size() + 1);
    for (KvArena::PageId id : snap.fullPages_) {
        arena_->retain(id);
        packed_.push_back({id, arena_->page(id)});
    }
    if (snap.partialGroups_ > 0) {
        PageRef pr = allocPage();
        std::memcpy(pr.data, snap.partial_.data(), snap.partial_.size());
        packed_.push_back(pr);
    }
    tokens_ = quantized_ = snap.quantized_;
    tailHead_ = 0;
    const size_t tail = snap.tokens_ - snap.quantized_;
    for (size_t i = 0; i < tail; ++i)
        append(snap.keyTail_.data() + i * channels_,
               snap.valueTail_.data() + i * channels_);
    MSQ_ASSERT(tokens_ == snap.tokens_ && quantized_ == snap.quantized_,
               "adopt must not close groups");
}

size_t
KvPool::packedBytes() const
{
    const size_t groups = quantized_ / group_;
    const size_t per_group =
        (channels_ + group_ * valueGroups_) * kGridSize + kCodeBytes_ +
        vCodeBytes_;
    return groups * per_group;
}

size_t
KvPool::fpBytes() const
{
    return (tokens_ - quantized_) * 2 * channels_ * sizeof(double);
}

size_t
KvPool::capacityBytes() const
{
    return pagesHeld() * arena_->pageBytes();
}

} // namespace msq
