#include "quant/kv_cache.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/logging.h"

namespace msq {

AsymSpanGrid
asymSpanParams(const double *values, size_t n, unsigned bits)
{
    MSQ_ASSERT(bits >= 1 && bits <= 8, "asymmetric quant width");
    MSQ_ASSERT(n > 0, "asymmetric quant of an empty span");
    double lo = values[0], hi = values[0];
    for (size_t i = 0; i < n; ++i) {
        MSQ_ASSERT(std::isfinite(values[i]),
                   "asymQuantSpan: non-finite input at index " +
                       std::to_string(i));
        lo = std::min(lo, values[i]);
        hi = std::max(hi, values[i]);
    }
    AsymSpanGrid grid;
    grid.lo = lo;
    if (hi == lo)
        return grid;  // constant span: step 0, exactly representable
    grid.step = (hi - lo) / static_cast<double>((1u << bits) - 1);
    return grid;
}

uint8_t
asymEncode(double value, const AsymSpanGrid &grid, unsigned bits)
{
    if (grid.step == 0.0)
        return 0;
    const double levels = static_cast<double>((1u << bits) - 1);
    const double q = std::floor((value - grid.lo) / grid.step + 0.5);
    return static_cast<uint8_t>(std::clamp(q, 0.0, levels));
}

void
asymQuantSpan(double *values, size_t n, unsigned bits)
{
    if (n == 0) {
        MSQ_ASSERT(bits >= 1 && bits <= 8, "asymmetric quant width");
        return;
    }
    const AsymSpanGrid grid = asymSpanParams(values, n, bits);
    if (grid.step == 0.0)
        return;  // constant span is exactly representable
    for (size_t i = 0; i < n; ++i)
        values[i] = asymDecode(asymEncode(values[i], grid, bits), grid);
}

Matrix
quantizeKeyCache(const Matrix &keys, const KvCacheConfig &config)
{
    Matrix out = keys;
    const size_t tokens = keys.cols();
    const size_t quant_tokens =
        tokens > config.residual ? tokens - config.residual : 0;
    if (quant_tokens == 0)
        return out;

    const size_t group = config.groupSize == 0 ? quant_tokens
                                               : config.groupSize;
    std::vector<double> span;
    for (size_t ch = 0; ch < keys.rows(); ++ch) {
        for (size_t t0 = 0; t0 < quant_tokens; t0 += group) {
            const size_t n = std::min(group, quant_tokens - t0);
            span.resize(n);
            for (size_t i = 0; i < n; ++i)
                span[i] = keys(ch, t0 + i);
            asymQuantSpan(span.data(), n, config.bits);
            for (size_t i = 0; i < n; ++i)
                out(ch, t0 + i) = span[i];
        }
    }
    return out;
}

Matrix
quantizeValueCache(const Matrix &values, const KvCacheConfig &config)
{
    Matrix out = values;
    const size_t tokens = values.cols();
    const size_t quant_tokens =
        tokens > config.residual ? tokens - config.residual : 0;
    if (quant_tokens == 0)
        return out;

    const size_t channels = values.rows();
    const size_t group = config.groupSize == 0 ? channels
                                               : config.groupSize;
    std::vector<double> span;
    for (size_t t = 0; t < quant_tokens; ++t) {
        for (size_t c0 = 0; c0 < channels; c0 += group) {
            const size_t n = std::min(group, channels - c0);
            span.resize(n);
            for (size_t i = 0; i < n; ++i)
                span[i] = values(c0 + i, t);
            asymQuantSpan(span.data(), n, config.bits);
            for (size_t i = 0; i < n; ++i)
                out(c0 + i, t) = span[i];
        }
    }
    return out;
}

} // namespace msq
