#include "quant/kv_cache.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"

namespace msq {

void
asymQuantSpan(double *values, size_t n, unsigned bits)
{
    MSQ_ASSERT(bits >= 1 && bits <= 8, "asymmetric quant width");
    if (n == 0)
        return;
    double lo = values[0], hi = values[0];
    for (size_t i = 1; i < n; ++i) {
        lo = std::min(lo, values[i]);
        hi = std::max(hi, values[i]);
    }
    const double levels = static_cast<double>((1u << bits) - 1);
    if (hi == lo)
        return;  // constant span is exactly representable
    const double scale = (hi - lo) / levels;
    for (size_t i = 0; i < n; ++i) {
        const double q = std::floor((values[i] - lo) / scale + 0.5);
        values[i] = lo + std::clamp(q, 0.0, levels) * scale;
    }
}

Matrix
quantizeKeyCache(const Matrix &keys, const KvCacheConfig &config)
{
    Matrix out = keys;
    const size_t tokens = keys.cols();
    const size_t quant_tokens =
        tokens > config.residual ? tokens - config.residual : 0;
    if (quant_tokens == 0)
        return out;

    const size_t group = config.groupSize == 0 ? quant_tokens
                                               : config.groupSize;
    std::vector<double> span;
    for (size_t ch = 0; ch < keys.rows(); ++ch) {
        for (size_t t0 = 0; t0 < quant_tokens; t0 += group) {
            const size_t n = std::min(group, quant_tokens - t0);
            span.resize(n);
            for (size_t i = 0; i < n; ++i)
                span[i] = keys(ch, t0 + i);
            asymQuantSpan(span.data(), n, config.bits);
            for (size_t i = 0; i < n; ++i)
                out(ch, t0 + i) = span[i];
        }
    }
    return out;
}

Matrix
quantizeValueCache(const Matrix &values, const KvCacheConfig &config)
{
    Matrix out = values;
    const size_t tokens = values.cols();
    const size_t quant_tokens =
        tokens > config.residual ? tokens - config.residual : 0;
    if (quant_tokens == 0)
        return out;

    const size_t channels = values.rows();
    const size_t group = config.groupSize == 0 ? channels
                                               : config.groupSize;
    std::vector<double> span;
    for (size_t t = 0; t < quant_tokens; ++t) {
        for (size_t c0 = 0; c0 < channels; c0 += group) {
            const size_t n = std::min(group, channels - c0);
            span.resize(n);
            for (size_t i = 0; i < n; ++i)
                span[i] = values(c0 + i, t);
            asymQuantSpan(span.data(), n, config.bits);
            for (size_t i = 0; i < n; ++i)
                out(c0 + i, t) = span[i];
        }
    }
    return out;
}

} // namespace msq
