#include "quant/omniquant_lite.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "mx/mx_int.h"
#include "quant/quant_util.h"
#include "quant/smoothquant.h"

namespace msq {

namespace {

/** Clip-ratio candidates searched by LWC-lite. */
constexpr double kClipGrid[] = {1.0, 0.95, 0.9, 0.85, 0.8, 0.75,
                                0.7, 0.65, 0.6, 0.55, 0.5};

} // namespace

OmniQuantLite::OmniQuantLite(unsigned bits, size_t group_size, bool use_let)
    : bits_(bits), groupSize_(group_size), useLet_(use_let)
{
}

std::string
OmniQuantLite::name() const
{
    return "OmniQuant-W" + std::to_string(bits_);
}

double
OmniQuantLite::searchClipRatio(const double *values, size_t n, int qmax,
                               double *out_quantized)
{
    std::vector<double> scratch(n);
    double best_err = -1.0;
    double best_ratio = 1.0;
    for (double ratio : kClipGrid) {
        std::copy(values, values + n, scratch.begin());
        symQuantSpanClipped(scratch.data(), n, qmax, ratio);
        const double err = spanMse(scratch.data(), values, n);
        if (best_err < 0.0 || err < best_err) {
            best_err = err;
            best_ratio = ratio;
            std::copy(scratch.begin(), scratch.end(), out_quantized);
        }
    }
    return best_ratio;
}

QuantResult
OmniQuantLite::quantize(const Matrix &w, const Matrix &calib)
{
    QuantResult res;
    res.method = name();
    const int qmax = intQMax(bits_);
    const size_t group = groupSize_ == 0 ? w.cols() : groupSize_;

    Matrix work = w;
    std::vector<double> let_scales;
    if (useLet_ && !calib.empty() && calib.rows() == w.rows()) {
        // LET-lite: grid search the migration strength by weight-side
        // quantization error (activation error shrinks monotonically in
        // alpha, so the weight error is the binding term).
        double best_err = -1.0;
        for (double alpha : {0.0, 0.25, 0.5, 0.6, 0.75}) {
            const std::vector<double> scales =
                migrationScales(w, calib, alpha);
            Matrix scaled = w;
            migrateWeights(scaled, scales);
            Matrix q = scaled;
            symQuantColumnGroups(q, group, qmax);
            const double err = q.normalizedErrorTo(scaled);
            if (best_err < 0.0 || err < best_err) {
                best_err = err;
                let_scales = scales;
            }
        }
        if (!let_scales.empty())
            migrateWeights(work, let_scales);
    }

    // LWC-lite applied per group along the reduction dimension.
    Matrix out = work;
    clipSearchColumnGroups(out, group, qmax);

    if (!let_scales.empty()) {
        for (size_t r = 0; r < out.rows(); ++r) {
            double *row = out.rowPtr(r);
            for (size_t c = 0; c < out.cols(); ++c)
                row[c] /= let_scales[r];
        }
    }

    res.dequant = std::move(out);
    res.ebw = bits_ + 16.0 / static_cast<double>(group);
    return res;
}

} // namespace msq
