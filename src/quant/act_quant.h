/**
 * @file
 * Activation quantization. The paper quantizes activations to
 * MX-INT-(4/8)128 per token along the channel dimension after migrating
 * activation-outlier difficulty into the weights (Section 7.2).
 *
 * Two consumers share one implementation of the group loop:
 *
 *  - the evaluation pipeline wants the *dequantized* activations
 *    (`quantizeActivationsMxInt`), and
 *  - the serving engine wants the raw iAct codes in the layout its
 *    blocked integer GEMM streams: channel-major code rows and
 *    group-major scale-exponent rows (`quantizeActsChannelMajor`),
 *    so the kernel's reduction over channels reads contiguous memory
 *    and never re-gathers token-major storage per k.
 */

#ifndef MSQ_QUANT_ACT_QUANT_H
#define MSQ_QUANT_ACT_QUANT_H

#include <cstdint>
#include <vector>

#include "common/matrix.h"

namespace msq {

/**
 * Channel-major MX-INT activation panel: the iAct buffer exactly as the
 * packed-execution kernel consumes it.
 *
 * `codes[c * tokens + t]` is the signed code of (channel c, token t) —
 * one contiguous row of `tokens` int8 codes per channel, so a reduction
 * walking channels streams rows. `scaleExp[g * tokens + t]` is the
 * power-of-two scale exponent shared by channel group g of token t
 * (clamped to int8 range; proxy activations never approach it).
 */
struct MxIntActPanel
{
    size_t tokens = 0;
    size_t channels = 0;
    size_t group = 128;  ///< channels sharing one scale within a token
    size_t groups = 0;   ///< ceil(channels / group)
    std::vector<int8_t> codes;     ///< channel-major, channels x tokens
    std::vector<int8_t> scaleExp;  ///< group-major, groups x tokens

    const int8_t *channelRow(size_t c) const
    {
        return codes.data() + c * tokens;
    }
    const int8_t *groupRow(size_t g) const
    {
        return scaleExp.data() + g * tokens;
    }
};

/**
 * Quantize activations X[k][tokens] to `bits`-bit MX-INT with
 * power-of-two scales shared by `group_size` channels within each token
 * (0 means one group spanning all channels), returning the raw codes in
 * the channel-major panel layout. @pre 2 <= bits <= 8
 */
MxIntActPanel quantizeActsChannelMajor(const Matrix &x, unsigned bits,
                                       size_t group_size = 128);

/**
 * In-place variant: refill `panel` from `x`, reusing its code and
 * scale-exponent buffers when the capacity suffices. The decode loop
 * quantizes a fresh activation batch every step of every block, so
 * reusing one scratch panel avoids two allocations per projection.
 * Produces bytes identical to the returning overload.
 */
void quantizeActsChannelMajor(const Matrix &x, unsigned bits,
                              size_t group_size, MxIntActPanel &panel);

/**
 * Quantize activations X[k][n] (channels x tokens) to MX-INT-b with
 * power-of-two scales shared by groups of `group_size` channels within
 * each token. Returns the dequantized activations.
 */
Matrix quantizeActivationsMxInt(const Matrix &x, unsigned bits,
                                size_t group_size = 128);

/**
 * Quantize activations with a plain real-valued per-token scale
 * (the convention used by the non-MX baselines).
 */
Matrix quantizeActivationsPerToken(const Matrix &x, unsigned bits);

} // namespace msq

#endif // MSQ_QUANT_ACT_QUANT_H
