/**
 * @file
 * Activation quantization. The paper quantizes activations to
 * MX-INT-(4/8)128 per token along the channel dimension after migrating
 * activation-outlier difficulty into the weights (Section 7.2).
 */

#ifndef MSQ_QUANT_ACT_QUANT_H
#define MSQ_QUANT_ACT_QUANT_H

#include "common/matrix.h"

namespace msq {

/**
 * Quantize activations X[k][n] (channels x tokens) to MX-INT-b with
 * power-of-two scales shared by groups of `group_size` channels within
 * each token. Returns the dequantized activations.
 */
Matrix quantizeActivationsMxInt(const Matrix &x, unsigned bits,
                                size_t group_size = 128);

/**
 * Quantize activations with a plain real-valued per-token scale
 * (the convention used by the non-MX baselines).
 */
Matrix quantizeActivationsPerToken(const Matrix &x, unsigned bits);

} // namespace msq

#endif // MSQ_QUANT_ACT_QUANT_H
