#include "quant/prefix_cache.h"

#include <utility>

#include "common/logging.h"

namespace msq {

PrefixCache::PrefixCache(size_t capacityBytes)
    : capacityBytes_(capacityBytes)
{
}

uint64_t
PrefixCache::hashTokens(const uint32_t *tokens, size_t n, uint64_t seed)
{
    // FNV-1a, seeded: fold the domain hash in first so identical token
    // streams under different configs land on different keys.
    uint64_t h = 1469598103934665603ull ^ seed;
    for (size_t i = 0; i < n; ++i) {
        uint32_t t = tokens[i];
        for (int b = 0; b < 4; ++b) {
            h ^= t & 0xffu;
            h *= 1099511628211ull;
            t >>= 8;
        }
    }
    return h;
}

size_t
PrefixCache::findLocked(uint64_t key,
                        const std::vector<uint32_t> &tokens) const
{
    for (size_t i = 0; i < slots_.size(); ++i)
        if (slots_[i].entry->key == key && slots_[i].entry->tokens == tokens)
            return i;
    return SIZE_MAX;
}

PrefixCache::EntryPtr
PrefixCache::lookup(uint64_t key, const std::vector<uint32_t> &tokens)
{
    MutexLock lock(mu_);
    const size_t i = findLocked(key, tokens);
    if (i == SIZE_MAX) {
        ++stats_.misses;
        return nullptr;
    }
    slots_[i].lastUse = ++useClock_;
    ++stats_.hits;
    return slots_[i].entry;
}

PrefixCache::EntryPtr
PrefixCache::insert(uint64_t key, std::vector<uint32_t> tokens,
                    std::vector<KvPoolSnapshot> blocks)
{
    MutexLock lock(mu_);
    const size_t existing = findLocked(key, tokens);
    if (existing != SIZE_MAX) {
        slots_[existing].lastUse = ++useClock_;
        return slots_[existing].entry;
    }

    auto entry = std::make_shared<PrefixEntry>();
    entry->key = key;
    entry->tokens = std::move(tokens);
    entry->blocks = std::move(blocks);
    entry->bytes = entry->tokens.size() * sizeof(uint32_t);
    for (const KvPoolSnapshot &s : entry->blocks)
        entry->bytes += s.bytes();

    Slot slot;
    slot.entry = std::move(entry);
    slot.lastUse = ++useClock_;
    bytes_ += slot.entry->bytes;
    slots_.push_back(std::move(slot));
    ++stats_.inserts;

    // Shed LRU entries over budget, but never the one just inserted:
    // the caller is about to adopt from it.
    if (capacityBytes_ > 0)
        while (bytes_ > capacityBytes_ && slots_.size() > 1)
            if (!evictLruLocked())
                break;
    return slots_.back().entry;
}

bool
PrefixCache::evictLruLocked()
{
    if (slots_.empty())
        return false;
    size_t victim = 0;
    for (size_t i = 1; i < slots_.size(); ++i)
        if (slots_[i].lastUse < slots_[victim].lastUse)
            victim = i;
    bytes_ -= slots_[victim].entry->bytes;
    slots_.erase(slots_.begin() + static_cast<ptrdiff_t>(victim));
    ++stats_.evictions;
    return true;
}

bool
PrefixCache::evictLru()
{
    MutexLock lock(mu_);
    return evictLruLocked();
}

void
PrefixCache::clear()
{
    MutexLock lock(mu_);
    stats_.evictions += slots_.size();
    slots_.clear();
    bytes_ = 0;
}

size_t
PrefixCache::entries() const
{
    MutexLock lock(mu_);
    return slots_.size();
}

size_t
PrefixCache::bytes() const
{
    MutexLock lock(mu_);
    return bytes_;
}

PrefixCacheStats
PrefixCache::stats() const
{
    MutexLock lock(mu_);
    return stats_;
}

} // namespace msq
