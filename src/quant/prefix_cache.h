/**
 * @file
 * Cross-request prefix cache over paged KV snapshots: N sequences that
 * share a prompt prefix pay for one prefill. An entry is the set of
 * per-block `KvPoolSnapshot`s (quant/kv_pool.h) captured after one
 * sequence prefilled the shared prefix — the full closed pages inside
 * are refcount-shared arena pages, so a cache hit costs adopters a
 * handful of page references plus a copy of the partial page and fp
 * tail instead of re-running attention over the prefix. With the
 * MicroScopiQ-style 2-bit packed streams underneath, a cached prefix is
 * ~20x denser than the fp activations it replaces, which is what makes
 * caching at serving scale pay for itself.
 *
 * Keying: callers hash the prefix *token ids* (`hashTokens`) folded
 * with a domain hash covering everything else that shapes KV contents
 * (model, quantization config, KV recipe) — two requests collide only
 * if their cached state would be bit-identical anyway. The entry also
 * stores the exact token vector and `lookup` compares it, so a 64-bit
 * hash collision degrades to a miss, never to wrong tokens.
 *
 * Entries are handed out as `shared_ptr<const PrefixEntry>`: eviction
 * drops the cache's reference, but sequences mid-adoption keep theirs,
 * so an evicted entry's pages stay valid until the last adopter took
 * its own arena references. Eviction is LRU over an ordered vector (no
 * unordered-container iteration — the determinism lint bans it), and
 * `evictLru()` is public so the decode scheduler can shed cached pages
 * under arena pressure before refusing admission.
 *
 * Thread safety: all methods safe to call concurrently (one internal
 * mutex); returned entries are immutable.
 *
 * Determinism: a hit hands back snapshots whose adoption reads
 * bit-identically to a pool that appended the prefix itself (the
 * `KvPool::adopt` contract), so hit-vs-miss cannot change a token
 * stream — tests/test_decode.cc enforces this end to end.
 */

#ifndef MSQ_QUANT_PREFIX_CACHE_H
#define MSQ_QUANT_PREFIX_CACHE_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "quant/kv_pool.h"

namespace msq {

/** One cached prefix: per-block KV snapshots at the prefix length. */
struct PrefixEntry
{
    uint64_t key = 0;                   ///< domain-folded token hash
    std::vector<uint32_t> tokens;       ///< the exact prefix token ids
    std::vector<KvPoolSnapshot> blocks; ///< one snapshot per block
    size_t bytes = 0;                   ///< footprint charged to the cache
};

/** Monotonic hit/miss accounting (since construction). */
struct PrefixCacheStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t evictions = 0;
};

/** LRU cache of prefix KV snapshots shared across requests. */
class PrefixCache
{
  public:
    using EntryPtr = std::shared_ptr<const PrefixEntry>;

    /** @param capacityBytes LRU budget over entry bytes; 0 = unbounded. */
    explicit PrefixCache(size_t capacityBytes = 0);

    PrefixCache(const PrefixCache &) = delete;
    PrefixCache &operator=(const PrefixCache &) = delete;

    /**
     * FNV-1a over the token ids, folded into `seed` (callers pass a
     * domain hash so configs that would produce different KV bytes
     * never share a key).
     */
    static uint64_t hashTokens(const uint32_t *tokens, size_t n,
                               uint64_t seed);

    /**
     * Find an entry whose key *and* token vector match; bumps its LRU
     * stamp. Returns nullptr (and counts a miss) otherwise.
     */
    EntryPtr lookup(uint64_t key, const std::vector<uint32_t> &tokens);

    /**
     * Publish a prefilled prefix. If a matching entry already exists
     * the existing one is returned (first publisher wins — both are
     * bit-identical by the determinism contract). Evicts LRU entries
     * over the byte budget; the newly inserted entry itself is never
     * evicted by its own insert.
     */
    EntryPtr insert(uint64_t key, std::vector<uint32_t> tokens,
                    std::vector<KvPoolSnapshot> blocks);

    /**
     * Drop the least-recently-used entry (its pages free once the last
     * adopter releases them). Returns false when the cache is empty.
     */
    bool evictLru();

    /** Drop every entry. */
    void clear();

    size_t entries() const;

    /** Bytes charged by resident entries (see PrefixEntry::bytes). */
    size_t bytes() const;

    size_t capacityBytes() const { return capacityBytes_; }

    PrefixCacheStats stats() const;

  private:
    struct Slot
    {
        EntryPtr entry;
        uint64_t lastUse = 0;
    };

    /** @pre mu_ held. Returns slots_ index or SIZE_MAX. */
    size_t findLocked(uint64_t key,
                      const std::vector<uint32_t> &tokens) const
        MSQ_REQUIRES(mu_);

    /** @pre mu_ held. */
    bool evictLruLocked() MSQ_REQUIRES(mu_);

    const size_t capacityBytes_;

    mutable Mutex mu_;
    std::vector<Slot> slots_ MSQ_GUARDED_BY(mu_);  ///< insertion order
    size_t bytes_ MSQ_GUARDED_BY(mu_) = 0;
    uint64_t useClock_ MSQ_GUARDED_BY(mu_) = 0;
    PrefixCacheStats stats_ MSQ_GUARDED_BY(mu_);
};

} // namespace msq

#endif // MSQ_QUANT_PREFIX_CACHE_H
