/**
 * @file
 * Shared helpers for the quantizer implementations: plain symmetric
 * integer quantization with a real-valued scale (the non-MX baselines),
 * group iteration, and outlier thresholding.
 */

#ifndef MSQ_QUANT_QUANT_UTIL_H
#define MSQ_QUANT_QUANT_UTIL_H

#include <cstddef>
#include <vector>

#include "common/matrix.h"

namespace msq {

/**
 * Symmetric round-to-nearest integer quantization of one value with a
 * real scale: returns clip(round(v / scale)) * scale.
 */
double symQuantValue(double v, double scale, int qmax);

/** Scale for symmetric quantization of a range: maxAbs / qmax. */
double symScale(double max_abs, int qmax);

/**
 * Quantize a contiguous span in place with a shared scale derived from
 * its own maximum. Returns the scale used.
 */
double symQuantSpan(double *values, size_t n, int qmax);

/**
 * Quantize a span in place with a shared scale derived from its maximum
 * times `clip_ratio` (values saturate at the clipped maximum). Returns
 * the scale used.
 */
double symQuantSpanClipped(double *values, size_t n, int qmax,
                           double clip_ratio);

/** Mean squared error between a span and its original copy. */
double spanMse(const double *a, const double *b, size_t n);

/**
 * Symmetric group quantization with groups along the *reduction* (row)
 * dimension: within each output column, contiguous groups of `group`
 * rows share one scale. This is the grouping convention of AWQ /
 * SmoothQuant / OmniQuant, whose per-input-channel scaling only has an
 * effect when a quantization group spans multiple input channels.
 */
void symQuantColumnGroups(Matrix &w, size_t group, int qmax);

/**
 * Column-group quantization with a per-group clip-ratio search (the
 * LWC-lite primitive applied along the reduction dimension).
 */
void clipSearchColumnGroups(Matrix &w, size_t group, int qmax);

/** The 3-sigma outlier threshold of a span (mean + 3 * stddev of |v|...).
 *
 * Following the paper (Section 3.2) outliers are weights whose magnitude
 * deviates from the mean by more than three standard deviations.
 */
double threeSigmaThreshold(const double *values, size_t n);

} // namespace msq

#endif // MSQ_QUANT_QUANT_UTIL_H
