#include "quant/atom_lite.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "mx/mx_int.h"
#include "quant/quant_util.h"

namespace msq {

AtomLite::AtomLite(unsigned bits, size_t group_size, size_t outlier_channels)
    : bits_(bits), groupSize_(group_size), outlierChannels_(outlier_channels)
{
}

std::string
AtomLite::name() const
{
    return "Atom-W" + std::to_string(bits_);
}

QuantResult
AtomLite::quantize(const Matrix &w, const Matrix &calib)
{
    QuantResult res;
    res.method = name();
    res.dequant = w;
    const size_t k = w.rows();
    const size_t group = groupSize_ == 0 ? w.cols() : groupSize_;
    const int qmax_lo = intQMax(bits_);
    const int qmax_hi = intQMax(8);

    // Rank input channels by calibration activation magnitude; without
    // calibration fall back to weight magnitude.
    std::vector<double> salience(k, 0.0);
    for (size_t r = 0; r < k; ++r) {
        double acc = 0.0;
        if (!calib.empty() && calib.rows() == k) {
            for (size_t t = 0; t < calib.cols(); ++t)
                acc = std::max(acc, std::fabs(calib(r, t)));
        } else {
            for (size_t c = 0; c < w.cols(); ++c)
                acc = std::max(acc, std::fabs(w(r, c)));
        }
        salience[r] = acc;
    }
    std::vector<size_t> order(k);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return salience[a] > salience[b];
    });

    const size_t n_hi = std::min(outlierChannels_, k);
    std::vector<bool> is_hi(k, false);
    for (size_t i = 0; i < n_hi; ++i)
        is_hi[order[i]] = true;

    for (size_t r = 0; r < k; ++r) {
        double *row = res.dequant.rowPtr(r);
        const int qmax = is_hi[r] ? qmax_hi : qmax_lo;
        for (size_t c0 = 0; c0 < w.cols(); c0 += group) {
            const size_t n = std::min(group, w.cols() - c0);
            symQuantSpan(row + c0, n, qmax);
        }
    }

    const double hi_frac = static_cast<double>(n_hi) / static_cast<double>(k);
    res.ebw = bits_ * (1.0 - hi_frac) + 8.0 * hi_frac +
              16.0 / static_cast<double>(group);
    return res;
}

} // namespace msq
