/**
 * @file
 * Analytical A100-class GPU model for the paper's GPU experiments
 * (Table 6 token-generation throughput; Fig. 13 GPU-vs-accelerator).
 *
 * Token generation (decode) is a memory-bound GEMV sweep over the
 * model's weights, so throughput is governed by effective bytes moved
 * per token plus per-kernel compute/instruction overheads:
 *
 *   - TRT-LLM FP16: 16-bit weights, tuned kernels (reference).
 *   - Atom W4A4: ~4-bit weights, INT4 tensor cores, fused dequant.
 *   - MicroScopiQ unoptimized: outlier merging in shared memory and
 *     FP16 GEMM fallback for mixed tiles erase the traffic win.
 *   - MicroScopiQ optimized: register-cache shfl_sync merging and
 *     block-level dynamic INT4/FP16 dispatch.
 *   - MicroScopiQ + modified tensor core (simulated): native INT+FP
 *     16EDP with variable shifters; no dequantization at all.
 *
 * Constants are calibrated against the LLaMA2-13B column of Table 6;
 * the model then *predicts* the other columns.
 */

#ifndef MSQ_GPU_GPU_MODEL_H
#define MSQ_GPU_GPU_MODEL_H

#include <string>
#include <vector>

namespace msq {

/** A100-like device parameters. */
struct GpuConfig
{
    double memGBs = 2000.0;      ///< HBM2e bandwidth
    double fp16Tflops = 312.0;   ///< dense tensor-core FP16
    double int4Tops = 1248.0;    ///< INT4 tensor-core
    double fixedUsPerToken = 30.0;  ///< launch/attention/sampling floor
    double idleWatts = 80.0;
    double dynWattsPerGBs = 0.09;   ///< DRAM+SM power per GB/s moved
};

/** GPU kernel variants of Table 6. */
enum class GpuKernel
{
    TrtLlmFp16,
    AtomW4A4,
    MsNoOptim,
    MsOptim,
    MsModifiedTensorCore,
};

/** Human-readable kernel name. */
std::string gpuKernelName(GpuKernel kernel);

/** Result of a decode-throughput estimate. */
struct GpuRun
{
    std::string kernel;
    double msPerToken = 0.0;
    double tokensPerSec = 0.0;
    double energyMjPerToken = 0.0;  ///< millijoules per token
};

/**
 * Estimate decode throughput for a model with `params_b` billion
 * parameters in the quantizable body and `ebw` weight bits/element
 * for the quantized variants.
 */
GpuRun runDecode(const GpuConfig &config, GpuKernel kernel,
                 double params_b, double ebw);

/**
 * Fig. 13 support: effective per-token latency and on-chip energy of
 * the A100 running W4A4 with register-level reordering and FP16
 * fallback, to compare against the MicroScopiQ accelerator under
 * iso-bandwidth / iso-compute scaling.
 */
struct GpuIsoResult
{
    double cycles = 0.0;     ///< normalized time units
    double energyPj = 0.0;
};

GpuIsoResult runIsoComparison(const GpuConfig &config, double params_b,
                              size_t tokens);

} // namespace msq

#endif // MSQ_GPU_GPU_MODEL_H
