#include "gpu/gpu_model.h"

#include "common/logging.h"

namespace msq {

namespace {

/** Per-kernel traffic and overhead parameters. */
struct KernelParams
{
    double weightBitsOverride;  ///< <0 means use the caller's EBW
    double trafficMultiplier;   ///< extra bytes moved per weight byte
    double computeOverhead;     ///< serial overhead factor on the
                                ///< memory-bound time (dequant, shfl,
                                ///< smem merging, FP16 fallback)
};

KernelParams
kernelParams(GpuKernel kernel)
{
    switch (kernel) {
      case GpuKernel::TrtLlmFp16:
        return {16.0, 1.0, 1.0};
      case GpuKernel::AtomW4A4:
        // Fused dequant + INT4 tensor cores; modest overhead.
        return {-1.0, 1.0, 1.60};
      case GpuKernel::MsNoOptim:
        // Shared-memory outlier merge (load + merge + re-read) and
        // FP16 GEMM fallback for mixed tiles: the traffic win is gone.
        return {-1.0, 2.40, 2.60};
      case GpuKernel::MsOptim:
        // Register caching via shfl_sync + dynamic INT4/FP16 dispatch.
        return {-1.0, 1.15, 1.55};
      case GpuKernel::MsModifiedTensorCore:
        // Native INT+FP 16EDP: no dequantization, no FP16 fallback.
        return {-1.0, 1.0, 0.85};
    }
    panic("unknown GPU kernel");
}

} // namespace

std::string
gpuKernelName(GpuKernel kernel)
{
    switch (kernel) {
      case GpuKernel::TrtLlmFp16:
        return "TRT-LLM FP16";
      case GpuKernel::AtomW4A4:
        return "W4A4 Atom";
      case GpuKernel::MsNoOptim:
        return "W4A4 MS no-optim.";
      case GpuKernel::MsOptim:
        return "W4A4 MS optim.";
      case GpuKernel::MsModifiedTensorCore:
        return "W4A4 MS w/ New MTC";
    }
    panic("unknown GPU kernel");
}

GpuRun
runDecode(const GpuConfig &config, GpuKernel kernel, double params_b,
          double ebw)
{
    const KernelParams kp = kernelParams(kernel);
    const double bits =
        kp.weightBitsOverride > 0.0 ? kp.weightBitsOverride : ebw;

    // Bytes of weights streamed per generated token.
    const double bytes = params_b * 1e9 * bits / 8.0;
    const double mem_ms =
        bytes * kp.trafficMultiplier / (config.memGBs * 1e9) * 1e3;
    const double ms =
        mem_ms * kp.computeOverhead + config.fixedUsPerToken * 1e-3;

    GpuRun run;
    run.kernel = gpuKernelName(kernel);
    run.msPerToken = ms;
    run.tokensPerSec = 1000.0 / ms;
    const double gbs_moved = bytes * kp.trafficMultiplier / 1e9;
    const double watts =
        config.idleWatts + config.dynWattsPerGBs * config.memGBs;
    run.energyMjPerToken = watts * ms;  // mW * ms ~ uJ; scaled below
    run.energyMjPerToken = watts * (ms / 1000.0) * 1000.0;  // mJ
    (void)gbs_moved;
    return run;
}

GpuIsoResult
runIsoComparison(const GpuConfig &config, double params_b, size_t tokens)
{
    // Iso comparison of Fig. 13: the GPU executes W4A4 but must
    // dequantize to FP16 for the mixed tiles and reorder outliers at
    // register level (shfl), adding both time and on-chip energy.
    GpuIsoResult res;
    // Weights are streamed once and reused across the batch (as the
    // accelerator's weight-stationary tiles do).
    const double weight_bytes = params_b * 1e9 * 4.15 / 8.0;
    const double mem_time = weight_bytes / (config.memGBs * 1e9);
    const double overhead = 1.55;  // register reordering + FP16 passes
    res.cycles = mem_time * overhead * 1e9;  // normalized cycle units

    // Energy: FP16 MACs for roughly 40% of tiles (mixed), INT4 for the
    // rest, plus register-file reordering traffic.
    const double macs = params_b * 1e9 * static_cast<double>(tokens);
    const double e_fp16 = 0.9, e_int4 = 0.055, e_reorder = 0.25;
    res.energyPj = macs * (0.4 * e_fp16 + 0.6 * e_int4 + e_reorder) +
                   weight_bytes * 40.0;
    return res;
}

} // namespace msq
