#include "mx/mx_fp.h"

#include <algorithm>
#include <cmath>

#include "common/bitstream.h"
#include "common/logging.h"

namespace msq {

double
MxFpGroup::decode(size_t i) const
{
    const double frac =
        static_cast<double>(mantissas[i]) /
        std::ldexp(1.0, static_cast<int>(fmt.mbits));
    const double mag = std::ldexp(1.0 + frac, effectiveExp());
    return signs[i] ? -mag : mag;
}

std::vector<double>
MxFpGroup::decodeAll() const
{
    std::vector<double> out(size());
    for (size_t i = 0; i < size(); ++i)
        out[i] = decode(i);
    return out;
}

int
mxFpLevel1Exp(const std::vector<double> &values, const FpFormat &fmt)
{
    double max_abs = 0.0;
    for (double v : values)
        max_abs = std::max(max_abs, std::fabs(v));
    if (max_abs == 0.0)
        return 0;
    const double fmax = fmt.maxValue();
    int e = static_cast<int>(std::ceil(std::log2(max_abs / fmax)));
    if (std::ldexp(fmax, e) < max_abs)
        ++e;
    else if (std::ldexp(fmax, e - 1) >= max_abs)
        --e;
    return e;
}

MxFpGroup
mxFpQuantize(const std::vector<double> &values, const FpFormat &fmt)
{
    return mxFpQuantizeWithLevel1(values, fmt, mxFpLevel1Exp(values, fmt));
}

MxFpGroup
mxFpQuantizeWithLevel1(const std::vector<double> &values,
                       const FpFormat &fmt, int level1_exp)
{
    MxFpGroup group;
    group.fmt = fmt;
    if (values.empty())
        return group;

    group.level1Exp = level1_exp;

    // Element-wise FP encode of the level-1 scaled values, collecting the
    // exponent fields to extract the shared microexponent.
    int max_field = 0;
    std::vector<FpCode> codes(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
        codes[i] = fpEncode(fmt, std::ldexp(values[i], -group.level1Exp));
        max_field = std::max(max_field, static_cast<int>(codes[i].exponent));
    }
    group.sharedExpField = max_field;

    // Re-round every element onto the shared hidden-bit grid
    // {+/- (1 + m / 2^mbits) * 2^(muX - bias)}.
    const int shared_exp = group.sharedExpField - fmt.bias;
    const double grid_base = std::ldexp(1.0, shared_exp);
    const double step =
        std::ldexp(1.0, shared_exp - static_cast<int>(fmt.mbits));
    const int32_t mant_max = (1 << fmt.mbits) - 1;

    group.signs.resize(values.size());
    group.mantissas.resize(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
        const double scaled = std::ldexp(values[i], -group.level1Exp);
        group.signs[i] = scaled < 0.0 ? 1 : 0;
        const double mag = std::fabs(scaled);
        double m = std::floor((mag - grid_base) / step + 0.5);
        m = std::clamp(m, 0.0, static_cast<double>(mant_max));
        group.mantissas[i] = static_cast<uint16_t>(m);
    }
    return group;
}

std::vector<double>
mxFpQuantizeUnshared(const std::vector<double> &values, const FpFormat &fmt)
{
    std::vector<double> out(values.size());
    if (values.empty())
        return out;
    const int level1 = mxFpLevel1Exp(values, fmt);
    for (size_t i = 0; i < values.size(); ++i) {
        const double q = fpRoundTrip(fmt, std::ldexp(values[i], -level1));
        out[i] = std::ldexp(q, level1);
    }
    return out;
}

unsigned
muXFieldBits(const FpFormat &fmt)
{
    return fmt.ebits;
}

uint8_t
packMxScale(const MxFpGroup &group)
{
    const unsigned mux_bits = muXFieldBits(group.fmt);
    const unsigned level1_bits = 8 - mux_bits;
    const int64_t lo = -(1LL << (level1_bits - 1));
    const int64_t hi = (1LL << (level1_bits - 1)) - 1;
    MSQ_ASSERT(group.level1Exp >= lo && group.level1Exp <= hi,
               "level-1 scale exponent does not fit the MXScale field");
    MSQ_ASSERT(group.sharedExpField >= 0 &&
               group.sharedExpField < (1 << mux_bits),
               "muX field out of range");
    const uint8_t level1_field =
        static_cast<uint8_t>(group.level1Exp & ((1 << level1_bits) - 1));
    return static_cast<uint8_t>(
        (level1_field << mux_bits) |
        static_cast<uint8_t>(group.sharedExpField));
}

void
unpackMxScale(uint8_t byte, const FpFormat &fmt, int &level1Exp,
              int &sharedExpField)
{
    const unsigned mux_bits = muXFieldBits(fmt);
    const unsigned level1_bits = 8 - mux_bits;
    sharedExpField = byte & ((1 << mux_bits) - 1);
    level1Exp = static_cast<int>(
        signExtend(byte >> mux_bits, level1_bits));
}

} // namespace msq
