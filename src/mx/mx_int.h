/**
 * @file
 * MX-INT-b(k1) group quantization: a group of k1 elements shares a single
 * power-of-two scale factor (E8M0), each element stored as a b-bit
 * symmetric two's-complement integer. This is the paper's inlier format
 * (Section 2.2): "MX-INT-b(k1) inlier quantization can be viewed as
 * analogous to INT group quantization utilizing an E8M0 scale factor".
 */

#ifndef MSQ_MX_MX_INT_H
#define MSQ_MX_MX_INT_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace msq {

/** Result of quantizing a group of values to MX-INT. */
struct MxIntGroup
{
    int scaleExp = 0;            ///< Isf: scale factor is 2^scaleExp
    std::vector<int32_t> codes;  ///< signed integer codes in [-qmax, qmax]

    /** Decoded value of element i: codes[i] * 2^scaleExp. */
    double decode(size_t i) const;

    /** Decode the full group. */
    std::vector<double> decodeAll() const;
};

/** Largest positive code of a symmetric b-bit integer: 2^(b-1) - 1. */
int32_t intQMax(unsigned bits);

/**
 * Compute the shared power-of-two scale exponent for a group: the
 * smallest `e` such that max|v| / 2^e <= qmax. Returns 0 for an all-zero
 * group.
 */
int mxIntScaleExp(const std::vector<double> &values, unsigned bits);

/**
 * The same scale rule from a precomputed group maximum (hot callers —
 * the activation panel quantizer — track max|v| incrementally instead
 * of materializing a span). Returns 0 when max_abs is 0.
 */
int mxIntScaleExpForMax(double max_abs, unsigned bits);

/**
 * Quantize a group of values to MX-INT-b with a shared power-of-two
 * scale (round to nearest, saturating clip).
 */
MxIntGroup mxIntQuantize(const std::vector<double> &values, unsigned bits);

/**
 * Quantize with a caller-supplied scale exponent (used when the scale is
 * derived from a subset of the group, e.g. inliers only).
 */
MxIntGroup mxIntQuantizeWithScale(const std::vector<double> &values,
                                  unsigned bits, int scaleExp);

/** Quantize a single value given a scale exponent; returns the code. */
int32_t mxIntQuantizeValue(double value, unsigned bits, int scaleExp);

} // namespace msq

#endif // MSQ_MX_MX_INT_H
