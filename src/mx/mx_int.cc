#include "mx/mx_int.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace msq {

double
MxIntGroup::decode(size_t i) const
{
    return std::ldexp(static_cast<double>(codes[i]), scaleExp);
}

std::vector<double>
MxIntGroup::decodeAll() const
{
    std::vector<double> out(codes.size());
    for (size_t i = 0; i < codes.size(); ++i)
        out[i] = decode(i);
    return out;
}

int32_t
intQMax(unsigned bits)
{
    MSQ_ASSERT(bits >= 2 && bits <= 16, "unsupported integer bit width");
    return (1 << (bits - 1)) - 1;
}

int
mxIntScaleExp(const std::vector<double> &values, unsigned bits)
{
    double max_abs = 0.0;
    for (double v : values)
        max_abs = std::max(max_abs, std::fabs(v));
    return mxIntScaleExpForMax(max_abs, bits);
}

int
mxIntScaleExpForMax(double max_abs, unsigned bits)
{
    if (max_abs == 0.0)
        return 0;
    const double qmax = static_cast<double>(intQMax(bits));
    // Smallest integer e with max_abs / 2^e <= qmax.
    const int e = static_cast<int>(std::ceil(std::log2(max_abs / qmax)));
    // Floating point log2 can land one off at exact powers of two; fix up.
    if (std::ldexp(qmax, e) < max_abs)
        return e + 1;
    if (e > -126 && std::ldexp(qmax, e - 1) >= max_abs)
        return e - 1;
    return e;
}

int32_t
mxIntQuantizeValue(double value, unsigned bits, int scaleExp)
{
    const int32_t qmax = intQMax(bits);
    const double scaled = std::ldexp(value, -scaleExp);
    // Round to nearest, ties away from zero, then saturate.
    const double rounded = std::floor(std::fabs(scaled) + 0.5);
    int32_t code = static_cast<int32_t>(std::min<double>(rounded, qmax));
    return scaled < 0.0 ? -code : code;
}

MxIntGroup
mxIntQuantizeWithScale(const std::vector<double> &values, unsigned bits,
                       int scaleExp)
{
    MxIntGroup group;
    group.scaleExp = scaleExp;
    group.codes.resize(values.size());
    for (size_t i = 0; i < values.size(); ++i)
        group.codes[i] = mxIntQuantizeValue(values[i], bits, scaleExp);
    return group;
}

MxIntGroup
mxIntQuantize(const std::vector<double> &values, unsigned bits)
{
    return mxIntQuantizeWithScale(values, bits,
                                  mxIntScaleExp(values, bits));
}

} // namespace msq
