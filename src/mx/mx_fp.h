/**
 * @file
 * MX-FP-b(k1,k2) two-level microscaling quantization: the paper's outlier
 * format (Sections 2.2, 4.2).
 *
 * A group of values shares
 *   - a level-1 power-of-two scale factor 2^Ol1sf (computed per Eq. 1
 *     against the FP element format maximum), and
 *   - a level-2 microexponent (muX): the common exponent field extracted
 *     across all elements of the group after element-wise FP encoding.
 *
 * After muX is shared, every element reduces to a sign and mantissa with
 * an implicit hidden bit: value = (-1)^s * (1.m) * 2^(muX - bias + Ol1sf).
 * The hardware (ReCoN Merge) always re-inserts the hidden bit, so the
 * shared grid has no subnormals; values below the grid round up to 1.0.
 */

#ifndef MSQ_MX_MX_FP_H
#define MSQ_MX_MX_FP_H

#include <cstdint>
#include <vector>

#include "mx/fp_codec.h"

namespace msq {

/** A group of values quantized to two-level MX-FP with shared muX. */
struct MxFpGroup
{
    FpFormat fmt{1, 2, 0};
    int level1Exp = 0;        ///< Ol1sf: level-1 scale is 2^level1Exp
    int sharedExpField = 0;   ///< muX: raw (biased) shared exponent field
    std::vector<uint8_t> signs;
    std::vector<uint16_t> mantissas;  ///< fmt.mbits wide, hidden bit implied

    size_t size() const { return signs.size(); }

    /** Unbiased shared exponent including the level-1 scale. */
    int effectiveExp() const { return sharedExpField - fmt.bias + level1Exp; }

    /** Decoded value of element i. */
    double decode(size_t i) const;

    /** Decode the full group. */
    std::vector<double> decodeAll() const;
};

/**
 * Level-1 power-of-two scale exponent per Eq. 1: smallest e such that
 * max|v| / 2^e <= fmt.maxValue(). Returns 0 for an all-zero group.
 */
int mxFpLevel1Exp(const std::vector<double> &values, const FpFormat &fmt);

/**
 * Quantize a group to two-level MX-FP: level-1 scaling, element FP
 * encoding, muX extraction (the maximum exponent field across the group,
 * so the largest element stays exactly representable), then re-rounding
 * of every element onto the shared hidden-bit grid.
 */
MxFpGroup mxFpQuantize(const std::vector<double> &values,
                       const FpFormat &fmt);

/**
 * Quantize with a caller-forced level-1 exponent (used when the natural
 * exponent must be clamped into the MXScale field range).
 */
MxFpGroup mxFpQuantizeWithLevel1(const std::vector<double> &values,
                                 const FpFormat &fmt, int level1_exp);

/**
 * Quantize without sharing muX (each element keeps a private exponent).
 * Used by the ablation study to isolate the cost of exponent sharing.
 * The decode of element i is the plain FP value times 2^level1Exp.
 */
std::vector<double> mxFpQuantizeUnshared(const std::vector<double> &values,
                                         const FpFormat &fmt);

/** Width of the muX field inside the 8-bit MXScale (1 for e1m2, 3 for e3m4). */
unsigned muXFieldBits(const FpFormat &fmt);

/**
 * Pack the 8-bit MXScale byte: level-1 exponent in the MSBs (7 or 5 bits,
 * two's complement) concatenated with the muX field in the LSBs.
 */
uint8_t packMxScale(const MxFpGroup &group);

/** Recover (level1Exp, sharedExpField) from an MXScale byte. */
void unpackMxScale(uint8_t byte, const FpFormat &fmt, int &level1Exp,
                   int &sharedExpField);

} // namespace msq

#endif // MSQ_MX_MX_FP_H
