#include "mx/fp_codec.h"

#include <cmath>

#include "common/logging.h"

namespace msq {

double
FpFormat::maxValue() const
{
    const int emax = static_cast<int>((1u << ebits) - 1) - bias;
    const double mant_max =
        2.0 - std::ldexp(1.0, -static_cast<int>(mbits));
    return std::ldexp(mant_max, emax);
}

double
FpFormat::minNormal() const
{
    // Exponent field 0 encodes subnormals; smallest normal uses field 1.
    const int emin = 1 - bias;
    return std::ldexp(1.0, emin);
}

std::string
FpFormat::name() const
{
    return "e" + std::to_string(ebits) + "m" + std::to_string(mbits);
}

FpFormat
FpFormat::e1m2()
{
    return FpFormat{1, 2, 0};
}

FpFormat
FpFormat::e3m4()
{
    return FpFormat{3, 4, 3};
}

FpFormat
FpFormat::e2m1()
{
    return FpFormat{2, 1, 1};
}

FpFormat
FpFormat::e4m3()
{
    return FpFormat{4, 3, 7};
}

double
fpDecode(const FpFormat &fmt, uint8_t sign, uint8_t exponent,
         uint16_t mantissa)
{
    const double frac =
        static_cast<double>(mantissa) /
        std::ldexp(1.0, static_cast<int>(fmt.mbits));
    double mag;
    if (exponent == 0) {
        // Subnormal: 0.m * 2^(1 - bias).
        mag = std::ldexp(frac, 1 - fmt.bias);
    } else {
        // Normal: 1.m * 2^(e - bias).
        mag = std::ldexp(1.0 + frac, static_cast<int>(exponent) - fmt.bias);
    }
    return sign ? -mag : mag;
}

FpCode
fpEncode(const FpFormat &fmt, double v)
{
    FpCode code{};
    code.sign = v < 0.0 ? 1 : 0;
    double mag = std::fabs(v);

    const double max_val = fmt.maxValue();
    if (mag >= max_val) {
        code.exponent = static_cast<uint8_t>((1u << fmt.ebits) - 1);
        code.mantissa = static_cast<uint16_t>((1u << fmt.mbits) - 1);
        code.value = code.sign ? -max_val : max_val;
        return code;
    }

    // Determine the quantization step at this magnitude, then round the
    // mantissa. Subnormal range shares the step of the smallest normal.
    int exp_field;
    double step;
    const double min_normal = fmt.minNormal();
    if (mag < min_normal) {
        exp_field = 0;
        step = std::ldexp(min_normal, -static_cast<int>(fmt.mbits));
        double m = std::floor(mag / step + 0.5);
        if (m >= std::ldexp(1.0, static_cast<int>(fmt.mbits))) {
            // Rounded up into the normal range.
            exp_field = 1;
            code.mantissa = 0;
        } else {
            code.mantissa = static_cast<uint16_t>(m);
        }
        code.exponent = static_cast<uint8_t>(exp_field);
        code.value = fpDecode(fmt, code.sign, code.exponent, code.mantissa);
        return code;
    }

    int e = static_cast<int>(std::floor(std::log2(mag)));
    // Guard against log2 edge cases right at a power of two boundary.
    if (std::ldexp(1.0, e + 1) <= mag)
        ++e;
    if (std::ldexp(1.0, e) > mag)
        --e;
    exp_field = e + fmt.bias;
    const int max_field = static_cast<int>((1u << fmt.ebits) - 1);
    MSQ_ASSERT(exp_field >= 1 && exp_field <= max_field,
               "fpEncode exponent out of range");

    step = std::ldexp(1.0, e - static_cast<int>(fmt.mbits));
    double m = std::floor((mag - std::ldexp(1.0, e)) / step + 0.5);
    if (m >= std::ldexp(1.0, static_cast<int>(fmt.mbits))) {
        // Mantissa overflowed: bump the exponent.
        m = 0;
        ++exp_field;
        if (exp_field > max_field) {
            exp_field = max_field;
            m = (1u << fmt.mbits) - 1;
        }
    }
    code.exponent = static_cast<uint8_t>(exp_field);
    code.mantissa = static_cast<uint16_t>(m);
    code.value = fpDecode(fmt, code.sign, code.exponent, code.mantissa);
    return code;
}

uint16_t
fpPack(const FpFormat &fmt, const FpCode &code)
{
    return static_cast<uint16_t>(
        (static_cast<uint16_t>(code.sign) << (fmt.ebits + fmt.mbits)) |
        (static_cast<uint16_t>(code.exponent) << fmt.mbits) |
        code.mantissa);
}

FpCode
fpUnpack(const FpFormat &fmt, uint16_t bits)
{
    FpCode code{};
    code.mantissa = bits & static_cast<uint16_t>((1u << fmt.mbits) - 1);
    code.exponent = static_cast<uint8_t>(
        (bits >> fmt.mbits) & ((1u << fmt.ebits) - 1));
    code.sign = static_cast<uint8_t>((bits >> (fmt.ebits + fmt.mbits)) & 1u);
    code.value = fpDecode(fmt, code.sign, code.exponent, code.mantissa);
    return code;
}

double
fpRoundTrip(const FpFormat &fmt, double v)
{
    return fpEncode(fmt, v).value;
}

} // namespace msq
