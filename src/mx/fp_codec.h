/**
 * @file
 * Minimal floating-point element codec for microscaling formats.
 *
 * The paper quantizes outliers to e1m2 (4-bit) or e3m4 (8-bit) elements
 * following the MX block-data-representation family: sign, `ebits`
 * exponent bits, `mbits` mantissa bits, no infinities or NaNs, gradual
 * underflow (subnormals) when the exponent field is zero.
 */

#ifndef MSQ_MX_FP_CODEC_H
#define MSQ_MX_FP_CODEC_H

#include <cstdint>
#include <string>

namespace msq {

/** Description of a small FP element format (sign + ebits + mbits). */
struct FpFormat
{
    unsigned ebits;  ///< exponent field width in bits
    unsigned mbits;  ///< mantissa field width in bits
    int bias;        ///< exponent bias

    /** Total storage width including the sign bit. */
    unsigned totalBits() const { return 1 + ebits + mbits; }

    /** Largest finite magnitude representable. */
    double maxValue() const;

    /** Smallest positive normal magnitude. */
    double minNormal() const;

    /** Human-readable name like "e1m2". */
    std::string name() const;

    /** e1m2 with bias 0: the paper's 4-bit outlier element format. */
    static FpFormat e1m2();

    /** e3m4 with bias 3: the paper's 8-bit outlier element format. */
    static FpFormat e3m4();

    /** e2m1 with bias 1: the OCP MXFP4 element format (for comparisons). */
    static FpFormat e2m1();

    /** e4m3 with bias 7 (OCP MXFP8 element, no NaN handling). */
    static FpFormat e4m3();
};

/** A decoded FP element: fields plus the represented value. */
struct FpCode
{
    uint8_t sign;      ///< 1 for negative
    uint8_t exponent;  ///< raw biased exponent field
    uint16_t mantissa; ///< raw mantissa field
    double value;      ///< decoded real value
};

/**
 * Encode `v` to the nearest representable value in `fmt` (round to
 * nearest, ties away from zero; saturating at the format maximum).
 */
FpCode fpEncode(const FpFormat &fmt, double v);

/** Decode raw fields into the represented value. */
double fpDecode(const FpFormat &fmt, uint8_t sign, uint8_t exponent,
                uint16_t mantissa);

/** Pack an FpCode into its bit representation (sign in the MSB). */
uint16_t fpPack(const FpFormat &fmt, const FpCode &code);

/** Unpack bits into an FpCode (value filled in). */
FpCode fpUnpack(const FpFormat &fmt, uint16_t bits);

/** Quantization: encode then decode. Convenience for error studies. */
double fpRoundTrip(const FpFormat &fmt, double v);

} // namespace msq

#endif // MSQ_MX_FP_CODEC_H
