/**
 * @file
 * Monotonic clock helpers shared by the serving stack: the batching
 * engine (engine.cc) and the decode engine (decode.cc) stamp request
 * lifecycles in milliseconds since an engine-construction epoch taken
 * from the same steady clock, and the weight cache accounts its
 * build/plan phases with elapsedMs().
 *
 * This header is the only place in src/ that reads a clock: the
 * determinism lint (scripts/lint_determinism.py, rule `wall-clock`)
 * bans clock reads everywhere else, so time can never leak into the
 * bit-identity contract — timing is measurement, never an input.
 */

#ifndef MSQ_SERVE_CLOCK_H
#define MSQ_SERVE_CLOCK_H

#include <chrono>
#include <cstdint>

namespace msq {

/** Nanoseconds on the steady (monotonic) clock. */
inline uint64_t
steadyNanos()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

/** Milliseconds elapsed since an earlier steadyNanos() stamp. */
inline double
elapsedMs(uint64_t since_nanos)
{
    return static_cast<double>(steadyNanos() - since_nanos) / 1e6;
}

} // namespace msq

#endif // MSQ_SERVE_CLOCK_H

