/**
 * @file
 * Monotonic clock helper shared by the serving engines: both the
 * batching engine (engine.cc) and the decode engine (decode.cc) stamp
 * request lifecycles in milliseconds since an engine-construction
 * epoch taken from the same steady clock.
 */

#ifndef MSQ_SERVE_CLOCK_H
#define MSQ_SERVE_CLOCK_H

#include <chrono>
#include <cstdint>

namespace msq {

/** Nanoseconds on the steady (monotonic) clock. */
inline uint64_t
steadyNanos()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace msq

#endif // MSQ_SERVE_CLOCK_H
