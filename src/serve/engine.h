/**
 * @file
 * Batched packed-execution serving engine.
 *
 * The engine serves one deployed model (a PackedModel from the weight
 * cache): clients submit requests of a few activation columns each, the
 * scheduler coalesces queued requests into batches, and every batch
 * runs each representative layer as ONE packed-execution GEMM whose
 * token columns are fanned across the parallelFor pool. Batching is
 * where the packed layout pays off twice: the decoded weight terms are
 * streamed once per batch instead of once per request
 * (weight-stationary reuse), and wide batches give the pool enough
 * token tiles to fill every thread.
 *
 * Numerics are schedule-independent: each output element is computed
 * identically whatever the batch composition or thread count, so a
 * request's output checksum is reproducible bit-for-bit — the batching
 * invariance test in tests/test_serve.cc relies on it. Latency and
 * throughput, the quantities the BENCH_serve.json trajectory tracks,
 * are of course timing-dependent.
 */

#ifndef MSQ_SERVE_ENGINE_H
#define MSQ_SERVE_ENGINE_H

#include <cstdint>
#include <deque>
#include <vector>

#include "serve/weight_cache.h"

namespace msq {

/** Scheduler and execution knobs. */
struct ServeConfig
{
    size_t maxBatchRequests = 16; ///< requests coalesced per batch
    size_t maxBatchTokens = 512;  ///< token budget per batch

    /**
     * Token-tile width of the 2D partition. The blocked kernel walks
     * the full weight-entry stream once per tile, so wider tiles
     * amortize it better; 32 matches the micro-kernel's internal token
     * sub-tile. Parallelism for narrow batches comes from the column
     * split (`tileCols`), not from shrinking token tiles.
     */
    size_t tileTokens = 32;

    /**
     * Output-column width of the 2D (column-block x token-tile) work
     * partition, rounded up to the layer's macro-block. 0 picks it
     * automatically: when a batch is too narrow for its token tiles
     * alone to fill the pool — the single-low-latency-request case —
     * columns are split until roughly 2 tasks per thread exist.
     * Output bytes are identical under every partition (the blocked
     * kernel's fold order is tile-independent).
     */
    size_t tileCols = 0;

    unsigned actBits = 8;         ///< iAct precision
    size_t actGroup = 128;        ///< iAct scale-sharing group
    size_t calibTokens = 128;     ///< weight-cache calibration floor

    /**
     * Disk tier of the packed-weight cache: when non-empty, deployment
     * containers (`.msq`, io/msq_file.h) are loaded from and written to
     * this directory, so a restarted server skips re-quantization
     * entirely. Empty disables persistence.
     */
    std::string cacheDir;
};

/** Outcome of one served request. */
struct RequestRecord
{
    uint64_t id = 0;
    size_t tokens = 0;
    double latencyMs = 0.0;   ///< submit -> batch completion
    double outputCheck = 0.0; ///< sum of all layer outputs (determinism probe)
};

/** Aggregate statistics of one drain() call. */
struct ServeReport
{
    std::vector<RequestRecord> requests; ///< in completion order
    size_t batches = 0;
    size_t tokens = 0;
    double wallMs = 0.0;

    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double meanMs = 0.0;
    double maxMs = 0.0;

    double requestsPerSec = 0.0;
    double tokensPerSec = 0.0;
    double macsPerSec = 0.0; ///< integer weight terms executed per second
};

/** Serving engine for one packed deployment. */
class ServeEngine
{
  public:
    /**
     * Deploy `model` quantized under `config` (fetched from, or built
     * into, the packed-weight cache) behind a request queue. The
     * profile is held by reference and must outlive the engine (model
     * zoo profiles are static).
     *
     * @pre PackedExecPlan::executable(config)
     */
    ServeEngine(const ModelProfile &model, const MsqConfig &config,
                const ServeConfig &serve = {});

    /**
     * Enqueue a synthetic request of `tokens` activation columns drawn
     * from `seed` (activation generation happens here, on the client's
     * side of the clock). Returns the request id.
     */
    uint64_t submit(size_t tokens, uint64_t seed);

    /** Queued requests not yet drained. */
    size_t pending() const { return queue_.size(); }

    /**
     * Serve every queued request: coalesce FIFO into batches under the
     * maxBatchRequests/maxBatchTokens caps, execute each batch, and
     * return per-request latency plus aggregate throughput statistics.
     */
    ServeReport drain();

    const PackedModel &packedModel() const { return *packed_; }
    const ServeConfig &config() const { return serve_; }

  private:
    struct Pending
    {
        uint64_t id = 0;
        size_t tokens = 0;
        std::vector<Matrix> acts; ///< one k x tokens matrix per layer
        double submitMs = 0.0;    ///< on the engine's monotonic clock
    };

    /** Execute one batch; appends records to `report.requests`. */
    void runBatch(const std::vector<Pending> &batch, ServeReport &report);

    /** Milliseconds since engine construction (monotonic). */
    double nowMs() const;

    const ModelProfile &model_;
    ServeConfig serve_;
    PackedModelPtr packed_;
    std::deque<Pending> queue_;
    uint64_t nextId_ = 1;
    uint64_t epoch_ = 0; ///< steady_clock origin, set at construction
};

} // namespace msq

#endif // MSQ_SERVE_ENGINE_H
