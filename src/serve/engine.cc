#include "serve/engine.h"

#include <algorithm>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/stats.h"
#include "model/calib_gen.h"
#include "serve/clock.h"

namespace msq {

ServeEngine::ServeEngine(const ModelProfile &model, const MsqConfig &config,
                         const ServeConfig &serve)
    : model_(model), serve_(serve),
      packed_(getPackedModel(model, config, serve.calibTokens,
                             serve.cacheDir)),
      epoch_(steadyNanos())
{
    MSQ_ASSERT(serve_.maxBatchRequests > 0 && serve_.maxBatchTokens > 0,
               "batch caps must be positive");
    MSQ_ASSERT(serve_.tileTokens > 0, "tile size must be positive");
}

double
ServeEngine::nowMs() const
{
    return static_cast<double>(steadyNanos() - epoch_) / 1e6;
}

uint64_t
ServeEngine::submit(size_t tokens, uint64_t seed)
{
    MSQ_ASSERT(tokens > 0, "a request must carry at least one token");
    Pending p;
    p.id = nextId_++;
    p.tokens = tokens;
    p.acts.reserve(model_.layers.size());
    for (size_t li = 0; li < model_.layers.size(); ++li)
        p.acts.push_back(generateRequestActs(model_, li, tokens, seed));
    p.submitMs = nowMs();
    queue_.push_back(std::move(p));
    return queue_.back().id;
}

void
ServeEngine::runBatch(const std::vector<Pending> &batch, ServeReport &report)
{
    size_t batch_tokens = 0;
    for (const Pending &p : batch)
        batch_tokens += p.tokens;

    std::vector<double> checksums(batch.size(), 0.0);
    for (size_t li = 0; li < packed_->plans.size(); ++li) {
        const PackedExecPlan &plan = *packed_->plans[li];
        const size_t k = plan.rows();

        // Coalesce the batch's activation columns for this layer.
        Matrix x(k, batch_tokens);
        size_t col = 0;
        for (const Pending &p : batch) {
            const Matrix &a = p.acts[li];
            for (size_t r = 0; r < k; ++r) {
                const double *src = a.rowPtr(r);
                double *dst = x.rowPtr(r) + col;
                std::copy(src, src + p.tokens, dst);
            }
            col += p.tokens;
        }

        // Quantize iActs (token groups are independent, so batched
        // quantization equals per-request quantization bit for bit) and
        // fan the blocked GEMM's 2D (column-block x token-tile) grid
        // across the pool (packedGemmParallel, shared with the decode
        // engine's block forward).
        const QuantizedActs acts(x, serve_.actBits, serve_.actGroup);
        const Matrix out =
            packedGemmParallel(plan, acts, serve_.tileTokens,
                               serve_.tileCols);

        // Per-request output checksums, reduced serially in a fixed
        // (request, output, token) order.
        col = 0;
        for (size_t ri = 0; ri < batch.size(); ++ri) {
            double sum = checksums[ri];
            for (size_t o = 0; o < plan.cols(); ++o) {
                const double *orow = out.rowPtr(o);
                for (size_t j = 0; j < batch[ri].tokens; ++j)
                    sum += orow[col + j];
            }
            checksums[ri] = sum;
            col += batch[ri].tokens;
        }
    }

    const double done_ms = nowMs();
    for (size_t ri = 0; ri < batch.size(); ++ri) {
        RequestRecord rec;
        rec.id = batch[ri].id;
        rec.tokens = batch[ri].tokens;
        rec.latencyMs = done_ms - batch[ri].submitMs;
        rec.outputCheck = checksums[ri];
        report.requests.push_back(rec);
    }
    report.batches += 1;
    report.tokens += batch_tokens;
}

ServeReport
ServeEngine::drain()
{
    ServeReport report;
    const double t0 = nowMs();

    while (!queue_.empty()) {
        std::vector<Pending> batch;
        size_t batch_tokens = 0;
        while (!queue_.empty() && batch.size() < serve_.maxBatchRequests) {
            const Pending &head = queue_.front();
            if (!batch.empty() &&
                batch_tokens + head.tokens > serve_.maxBatchTokens)
                break;
            batch_tokens += head.tokens;
            batch.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
        runBatch(batch, report);
    }

    report.wallMs = nowMs() - t0;
    if (!report.requests.empty()) {
        std::vector<double> lat;
        lat.reserve(report.requests.size());
        for (const RequestRecord &r : report.requests)
            lat.push_back(r.latencyMs);
        report.p50Ms = percentile(lat, 50.0);
        report.p95Ms = percentile(lat, 95.0);
        report.p99Ms = percentile(lat, 99.0);
        report.meanMs = mean(lat);
        report.maxMs = *std::max_element(lat.begin(), lat.end());
    }
    if (report.wallMs > 0.0) {
        const double wall_s = report.wallMs / 1e3;
        report.requestsPerSec =
            static_cast<double>(report.requests.size()) / wall_s;
        report.tokensPerSec = static_cast<double>(report.tokens) / wall_s;
        report.macsPerSec =
            static_cast<double>(packed_->termsPerToken) *
            static_cast<double>(report.tokens) / wall_s;
    }
    return report;
}

} // namespace msq
