#include "serve/packed_exec.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "accel/int_dequant.h"
#include "common/bitstream.h"
#include "common/logging.h"
#include "common/parallel.h"
#include "serve/weight_cache.h"

namespace msq {

namespace {

/** Token sub-tile of the blocked micro-kernel: bounds the int32
 *  accumulator scratch at macroBlock x kTokenTile. */
constexpr size_t kTokenTile = 32;

/** Rounds a pointer up to the next 64-byte (cache-line) boundary; the
 *  backing allocation must carry the matching slack. */
template <typename T>
T *
alignUp64(T *p)
{
    return reinterpret_cast<T *>(
        (reinterpret_cast<uintptr_t>(p) + 63) & ~uintptr_t{63});
}

} // namespace

bool
PackedExecPlan::executable(const MsqConfig &config)
{
    // The coarse and MX-INT outlier ablations keep their outlier values
    // out of the code plane (quantizeRow writes only the dequantized
    // side), and MxFpShared without redistribution never stores the
    // halves; for those the packed stream alone cannot reproduce W.
    if (config.outlierMode == OutlierMode::None)
        return true;
    return config.outlierMode == OutlierMode::MxFpShared &&
           config.pruneAndRedistribute;
}

PackedExecPlan::PackedExecPlan(const PackedLayer &layer)
    : rows_(layer.rows()), cols_(layer.cols()),
      macroBlock_(layer.config().macroBlock),
      macroPerRow_(layer.macroPerRow()),
      inlier_(rows_ * cols_, 0),
      macroScale_(rows_ * macroPerRow_, 1.0)
{
    MSQ_ASSERT(executable(layer.config()),
               "packed layout does not encode all weights of this config");
    const MsqConfig &cfg = layer.config();
    const unsigned bb = cfg.inlierBits;
    const unsigned mbits = layer.outlierFormat().mbits;

    outlierRow_.reserve(rows_ + 1);
    outlierRow_.push_back(0);
    for (size_t r = 0; r < rows_; ++r) {
        const uint8_t *codes = layer.codeRow(r);
        const SlotKind *kinds = layer.kindRow(r);
        const int8_t *isf = layer.isfRow(r);
        const MicroBlockMeta *micro = layer.microRow(r);

        for (size_t mb = 0; mb < macroPerRow_; ++mb)
            macroScale_[r * macroPerRow_ + mb] = std::ldexp(1.0, isf[mb]);

        int8_t *inl = inlier_.data() + r * cols_;
        for (size_t c = 0; c < cols_; ++c) {
            if (kinds[c] != SlotKind::Inlier)
                continue;  // pruned zeros and outlier halves stay 0
            inl[c] = static_cast<int8_t>(signExtend(codes[c], bb));
            if (inl[c] != 0)
                ++termCount_;
        }

        for (size_t ub = 0; ub < layer.microPerRow(); ++ub) {
            const MicroBlockMeta &meta = micro[ub];
            if (!meta.hasOutliers)
                continue;
            const int osf = layer.outlierScaleExp(r, ub);
            const size_t base = ub * cfg.microBlock;
            for (const PermEntry &entry : meta.perm) {
                OutlierTerm term;
                term.col = static_cast<uint32_t>(base + entry.upperLoc);
                term.mant = mergedOutlierMantissa(
                    codes[base + entry.upperLoc],
                    codes[base + entry.lowerLoc], mbits, bb);
                term.scale =
                    std::ldexp(1.0, osf - static_cast<int>(mbits));
                term.weight = static_cast<double>(term.mant) * term.scale;
                outliers_.push_back(term);
                ++termCount_;
            }
        }
        outlierRow_.push_back(static_cast<uint32_t>(outliers_.size()));
    }

    buildBlockedPlane(layer);
}

void
PackedExecPlan::buildBlockedPlane(const PackedLayer &layer)
{
    const unsigned bb = layer.config().inlierBits;
    const size_t panels = panelCount();
    MSQ_ASSERT(std::min(macroBlock_, cols_) <= 65535,
               "macro-block too wide for 16-bit entry columns");

    // A-priori spread bound for pure-inlier tiles (iActs are at most
    // 8-bit, see QuantizedActs). The classification below gates tiles
    // on the exact shifted magnitudes — which also covers outlier
    // mantissas of any width — so the static bound only sanity-checks
    // that the configuration leaves any integer budget at all.
    const int max_shift = std::min(maxPanelShift(bb, 8, panelK_),
                                   15 - static_cast<int>(bb - 1));
    MSQ_ASSERT(max_shift >= 0, "blocked kernel shift budget exhausted");

    // Zero-free CSR per macro-block column stripe, ordered by
    // (k, inliers before outliers). Every term carries its own
    // power-of-two exponent: Isf for inlier codes, Osf - M for merged
    // outlier mantissas (recovered exactly from the precomputed scale).
    entryRow_.assign(macroPerRow_ * (rows_ + 1), 0);
    for (size_t mb = 0; mb < macroPerRow_; ++mb) {
        uint32_t *erow = entryRow_.data() + mb * (rows_ + 1);
        // Offsets are global entry indices; each stripe's CSR starts at
        // the running total.
        erow[0] = static_cast<uint32_t>(entries_.size());
        const size_t mbc0 = mb * macroBlock_;
        const size_t mbc1 = std::min(cols_, mbc0 + macroBlock_);
        for (size_t k = 0; k < rows_; ++k) {
            const int8_t *inl = inlier_.data() + k * cols_;
            const int8_t isf = layer.isf(k, mb);
            for (size_t c = mbc0; c < mbc1; ++c) {
                if (inl[c] == 0)
                    continue;
                KernelBlockEntry entry;
                entry.col = static_cast<uint16_t>(c - mbc0);
                entry.w = inl[c];
                entries_.push_back(entry);
                entryExp_.push_back(isf);
            }
            for (uint32_t t = outlierRow_[k]; t < outlierRow_[k + 1];
                 ++t) {
                const OutlierTerm &term = outliers_[t];
                if (term.col < mbc0 || term.col >= mbc1)
                    continue;
                KernelBlockEntry entry;
                entry.col = static_cast<uint16_t>(term.col - mbc0);
                entry.w = static_cast<int16_t>(term.mant);
                entries_.push_back(entry);
                entryExp_.push_back(
                    static_cast<int16_t>(std::ilogb(term.scale)));
            }
            erow[k + 1] = static_cast<uint32_t>(entries_.size());
        }
    }

    // Classify every (k-panel, MaB) tile and pre-shift Int tiles to
    // their minimum exponent — the software analog of the shift
    // alignment the PE/ReCoN scaling performs (Fig. 6). A tile stays
    // on the integer path iff every shifted magnitude fits int16 and
    // the worst-case run dot product fits int32.
    tileExp_.assign(panels * macroPerRow_, 0);
    tileTag_.assign(panels * macroPerRow_, TileTag::Zero);
    for (size_t p = 0; p < panels; ++p) {
        const size_t pk0 = p * panelK_;
        const size_t pk1 = std::min(rows_, pk0 + panelK_);
        for (size_t mb = 0; mb < macroPerRow_; ++mb) {
            const uint32_t *erow = entryRow_.data() + mb * (rows_ + 1);
            const uint32_t e0 = erow[pk0];
            const uint32_t e1 = erow[pk1];
            if (e0 == e1) {
                blockStats_.zeroTiles++;
                continue;  // all-pruned tile: skipped at execution
            }
            int emin = entryExp_[e0];
            for (uint32_t e = e0 + 1; e < e1; ++e)
                emin = std::min(emin, static_cast<int>(entryExp_[e]));
            int64_t max_shifted = 0;
            for (uint32_t e = e0; e < e1; ++e) {
                const int shift = entryExp_[e] - emin;
                const int64_t mag =
                    shift >= 62
                        ? INT64_MAX
                        : (std::abs(int64_t{entries_[e].w}) << shift);
                max_shifted = std::max(max_shifted, mag);
            }
            const bool int_safe =
                max_shifted <= 32767 &&
                max_shifted * 127 * static_cast<int64_t>(pk1 - pk0) <=
                    2147483647;
            if (!int_safe) {
                tileTag_[p * macroPerRow_ + mb] = TileTag::Scalar;
                blockStats_.scalarTiles++;
                continue;  // entries keep their raw values
            }
            tileTag_[p * macroPerRow_ + mb] = TileTag::Int;
            tileExp_[p * macroPerRow_ + mb] = static_cast<int16_t>(emin);
            blockStats_.intTiles++;
            // Multiply instead of <<: a shifted value may be negative,
            // and the magnitude check above guarantees no overflow.
            for (uint32_t e = e0; e < e1; ++e)
                entries_[e].w = static_cast<int16_t>(
                    entries_[e].w * (int32_t{1} << (entryExp_[e] - emin)));
        }
    }
}

Matrix
PackedExecPlan::matmulT(const Matrix &x) const
{
    Matrix out(cols_, x.cols());
    matmulTRange(x, 0, x.cols(), out);
    return out;
}

void
PackedExecPlan::matmulTRange(const Matrix &x, size_t t0, size_t t1,
                             Matrix &out) const
{
    MSQ_ASSERT(x.rows() == rows_, "GEMM reduction dimension mismatch");
    MSQ_ASSERT(out.rows() == cols_ && out.cols() == x.cols(),
               "packed-exec output shape mismatch");
    MSQ_ASSERT(t0 <= t1 && t1 <= x.cols(), "token range out of bounds");

    // k ascending with one term per (k, column) reproduces the exact
    // accumulation order of Matrix::transposedMatmul, and every term is
    // the identical double product, so outputs match bit for bit.
    for (size_t k = 0; k < rows_; ++k) {
        const double *xrow = x.rowPtr(k);
        const int8_t *inl = inlier_.data() + k * cols_;
        const double *msc = macroScale_.data() + k * macroPerRow_;
        for (size_t mb = 0; mb < macroPerRow_; ++mb) {
            const double scale = msc[mb];
            const size_t c1 = std::min(cols_, (mb + 1) * macroBlock_);
            for (size_t c = mb * macroBlock_; c < c1; ++c) {
                const int v = inl[c];
                if (v == 0)
                    continue;
                const double wv = static_cast<double>(v) * scale;
                double *orow = out.rowPtr(c);
                for (size_t j = t0; j < t1; ++j)
                    orow[j] += wv * xrow[j];
            }
        }
        for (uint32_t t = outlierRow_[k]; t < outlierRow_[k + 1]; ++t) {
            const OutlierTerm &term = outliers_[t];
            double *orow = out.rowPtr(term.col);
            for (size_t j = t0; j < t1; ++j)
                orow[j] += term.weight * xrow[j];
        }
    }
}

Matrix
PackedExecPlan::gemm(const QuantizedActs &acts) const
{
    Matrix out(cols_, acts.tokens());
    gemmBlock(acts, 0, cols_, 0, acts.tokens(), out);
    return out;
}

void
PackedExecPlan::gemmRange(const QuantizedActs &acts, size_t t0, size_t t1,
                          Matrix &out) const
{
    gemmBlock(acts, 0, cols_, t0, t1, out);
}

void
PackedExecPlan::gemmBlock(const QuantizedActs &acts, size_t c0, size_t c1,
                          size_t t0, size_t t1, Matrix &out) const
{
    MSQ_ASSERT(acts.channels() == rows_,
               "GEMM reduction dimension mismatch");
    MSQ_ASSERT(out.rows() == cols_ && out.cols() == acts.tokens(),
               "packed-exec output shape mismatch");
    MSQ_ASSERT(t0 <= t1 && t1 <= acts.tokens(),
               "token range out of bounds");
    MSQ_ASSERT(c0 <= c1 && c1 <= cols_, "column range out of bounds");
    if (c0 == c1 || t0 == t1)
        return;

    const size_t agroup = acts.group();
    const size_t groups = acts.groups();
    const size_t panels = panelCount();
    const size_t mb0 = c0 / macroBlock_;
    const size_t mb1 = (c1 - 1) / macroBlock_ + 1;
    const size_t mb_width = std::min(macroBlock_, cols_);

    // Resolve the dispatched micro-kernel once per call: one atomic
    // read, then a plain indirect call per run. Every path folds to
    // identical bytes (serve/kernel_dispatch.h), so mid-stream path
    // changes from another thread could not change results either way.
    const AccumulateRunFn accumulate_run = activeKernelOps().accumulateRun;

    // Scratch: int32 accumulators for one (tile, run), the panel's
    // staged int16 iAct rows, per-(group, token) double scales, and the
    // run's combined 2^(Isf + Asf) row. The vector-touched buffers are
    // hoisted to 64-byte alignment: at full tile width every
    // accumulator row is then cache-line aligned, so the kernels' 256-
    // bit stores never straddle a line (a measurable tax for the AVX2
    // path; 128-bit accesses at malloc alignment never split).
    std::vector<int32_t> acc_store(mb_width * kTokenTile + 16);
    std::vector<int16_t> iact_store(panelK_ * kTokenTile + 32);
    int32_t *const acc = alignUp64(acc_store.data());
    int16_t *const iact = alignUp64(iact_store.data());
    std::vector<double> ascale(groups * kTokenTile);
    std::vector<double> comb(kTokenTile);

    for (size_t tt = t0; tt < t1; tt += kTokenTile) {
        const size_t nj = std::min(kTokenTile, t1 - tt);

        // 2^Asf of every (channel group, token) of this sub-tile.
        for (size_t g = 0; g < groups; ++g) {
            const int8_t *exps = acts.groupScaleExps(g) + tt;
            double *as = ascale.data() + g * nj;
            for (size_t j = 0; j < nj; ++j)
                as[j] = std::ldexp(1.0, exps[j]);
        }

        for (size_t p = 0; p < panels; ++p) {
            const size_t pk0 = p * panelK_;
            const size_t pk1 = std::min(rows_, pk0 + panelK_);

            // Stage the panel's iAct codes once, widened to int16, so
            // the inner product is a pure int16 x int16 -> int32
            // multiply-accumulate shared by every macro-block below.
            for (size_t k = pk0; k < pk1; ++k) {
                const int8_t *arow = acts.channelCodes(k) + tt;
                int16_t *srow = iact + (k - pk0) * nj;
                for (size_t j = 0; j < nj; ++j)
                    srow[j] = arow[j];
            }

            for (size_t mb = mb0; mb < mb1; ++mb) {
                const size_t mbc0 = mb * macroBlock_;
                const size_t mbc1 = std::min(cols_, mbc0 + macroBlock_);
                const size_t lo = std::max(c0, mbc0);
                const size_t hi = std::min(c1, mbc1);
                const uint32_t *erow = entryRow_.data() + mb * (rows_ + 1);
                const TileTag tag = tileTag_[p * macroPerRow_ + mb];

                if (tag == TileTag::Int) {
                    const double tscale = std::ldexp(
                        1.0, tileExp_[p * macroPerRow_ + mb]);
                    // Runs split at act-group boundaries so every run
                    // shares one 2^(Isf + Asf) per token; partials fold
                    // in ascending-k order whatever the tiling.
                    size_t k = pk0;
                    while (k < pk1) {
                        const size_t g = k / agroup;
                        const size_t ke =
                            std::min(pk1, (g + 1) * agroup);
                        if (erow[ke] == erow[k]) {
                            k = ke;
                            continue;  // no codes in this run
                        }
                        std::memset(acc, 0,
                                    (mbc1 - mbc0) * nj * sizeof(int32_t));
                        accumulate_run(entries_.data(), erow, k, ke,
                                       iact, pk0, nj, acc);
                        // One exact power-of-two scale per partial
                        // (2^Isf x 2^Asf is itself a power of two, so
                        // the hoisted product stays exact).
                        const double *as = ascale.data() + g * nj;
                        for (size_t j = 0; j < nj; ++j)
                            comb[j] = tscale * as[j];
                        for (size_t cc = lo - mbc0; cc < hi - mbc0;
                             ++cc) {
                            const int32_t *arow = acc + cc * nj;
                            double *orow =
                                out.rowPtr(mbc0 + cc) + tt;
                            for (size_t j = 0; j < nj; ++j)
                                orow[j] +=
                                    static_cast<double>(arow[j]) *
                                    comb[j];
                        }
                        k = ke;
                    }
                } else if (tag == TileTag::Scalar) {
                    // Exponent spread above the integer budget: exact
                    // per-term fallback, each entry applying its own
                    // power-of-two weight scale, in ascending-k order.
                    for (size_t kk = pk0; kk < pk1; ++kk) {
                        if (erow[kk + 1] == erow[kk])
                            continue;
                        const int16_t *aw = iact + (kk - pk0) * nj;
                        const double *as =
                            ascale.data() + (kk / agroup) * nj;
                        for (uint32_t e = erow[kk]; e < erow[kk + 1];
                             ++e) {
                            const size_t c = mbc0 + entries_[e].col;
                            if (c < lo || c >= hi)
                                continue;
                            const int32_t wv = entries_[e].w;
                            const double escale =
                                std::ldexp(1.0, entryExp_[e]);
                            double *orow = out.rowPtr(c) + tt;
                            for (size_t j = 0; j < nj; ++j)
                                orow[j] +=
                                    static_cast<double>(wv * aw[j]) *
                                    (escale * as[j]);
                        }
                    }
                }
            }
        }
    }
}

Matrix
PackedExecPlan::referenceGemm(const QuantizedActs &acts) const
{
    Matrix out(cols_, acts.tokens());
    referenceGemmRange(acts, 0, acts.tokens(), out);
    return out;
}

void
PackedExecPlan::referenceGemmRange(const QuantizedActs &acts, size_t t0,
                                   size_t t1, Matrix &out) const
{
    MSQ_ASSERT(acts.channels() == rows_,
               "GEMM reduction dimension mismatch");
    MSQ_ASSERT(out.rows() == cols_ && out.cols() == acts.tokens(),
               "packed-exec output shape mismatch");
    MSQ_ASSERT(t0 <= t1 && t1 <= acts.tokens(), "token range out of bounds");

    const size_t n = t1 - t0;
    // Channel-major staging of the iAct codes and group scales: the
    // reduction walks channels.
    std::vector<int32_t> ia(n);
    std::vector<double> ascale(n);
    const size_t agroup = acts.group();
    size_t scale_group = static_cast<size_t>(-1);

    for (size_t k = 0; k < rows_; ++k) {
        for (size_t j = 0; j < n; ++j)
            ia[j] = acts.code(t0 + j, k);
        if (k / agroup != scale_group) {
            scale_group = k / agroup;
            for (size_t j = 0; j < n; ++j)
                ascale[j] =
                    std::ldexp(1.0, acts.scaleExp(t0 + j, k));
        }

        const int8_t *inl = inlier_.data() + k * cols_;
        const double *msc = macroScale_.data() + k * macroPerRow_;
        for (size_t mb = 0; mb < macroPerRow_; ++mb) {
            const double scale = msc[mb];
            const size_t c1 = std::min(cols_, (mb + 1) * macroBlock_);
            for (size_t c = mb * macroBlock_; c < c1; ++c) {
                const int v = inl[c];
                if (v == 0)
                    continue;
                double *orow = out.rowPtr(c);
                // Integer code x code product, then the exact
                // power-of-two output scale 2^(Isf + Asf).
                for (size_t j = 0; j < n; ++j) {
                    const int32_t p = v * ia[j];
                    orow[t0 + j] +=
                        static_cast<double>(p) * (scale * ascale[j]);
                }
            }
        }
        for (uint32_t t = outlierRow_[k]; t < outlierRow_[k + 1]; ++t) {
            const OutlierTerm &term = outliers_[t];
            double *orow = out.rowPtr(term.col);
            for (size_t j = 0; j < n; ++j) {
                const int32_t p = term.mant * ia[j];
                orow[t0 + j] +=
                    static_cast<double>(p) * (term.scale * ascale[j]);
            }
        }
    }
}

Matrix
packedGemmParallel(const PackedExecPlan &plan, const QuantizedActs &acts,
                   size_t tile_tokens, size_t tile_cols)
{
    MSQ_ASSERT(tile_tokens > 0, "tile size must be positive");
    const size_t tokens = acts.tokens();
    Matrix out(plan.cols(), tokens);
    const size_t ttiles = (tokens + tile_tokens - 1) / tile_tokens;
    const size_t mb = plan.macroBlock();
    const size_t mbs = (plan.cols() + mb - 1) / mb;
    if (tile_cols == 0) {
        // Token tiles alone starve the pool on a narrow batch — the
        // single-low-latency-request case — so split columns until
        // roughly two tasks exist per thread.
        const size_t want = 2 * threadCount();
        const size_t split = ttiles >= want ? 1 : (want + ttiles - 1) / ttiles;
        tile_cols = ((mbs + split - 1) / split) * mb;
    }
    tile_cols = ((tile_cols + mb - 1) / mb) * mb;  // align to MaBs
    const size_t ctiles = (plan.cols() + tile_cols - 1) / tile_cols;
    parallelFor(0, ctiles * ttiles, [&](size_t tile) {
        const size_t c0 = (tile / ttiles) * tile_cols;
        const size_t c1 = std::min(plan.cols(), c0 + tile_cols);
        const size_t t0 = (tile % ttiles) * tile_tokens;
        const size_t t1 = std::min(tokens, t0 + tile_tokens);
        plan.gemmBlock(acts, c0, c1, t0, t1, out);
    });
    return out;
}

PackedExecBackend
packedExecBackend()
{
    return [](const PackedLayer &layer, const Matrix &x) -> Matrix {
        if (!PackedExecPlan::executable(layer.config()))
            return Matrix();
        return getExecPlan(layer)->matmulT(x);
    };
}

} // namespace msq
