#include "serve/packed_exec.h"

#include <algorithm>
#include <cmath>

#include "accel/int_dequant.h"
#include "common/bitstream.h"
#include "common/logging.h"

namespace msq {

bool
PackedExecPlan::executable(const MsqConfig &config)
{
    // The coarse and MX-INT outlier ablations keep their outlier values
    // out of the code plane (quantizeRow writes only the dequantized
    // side), and MxFpShared without redistribution never stores the
    // halves; for those the packed stream alone cannot reproduce W.
    if (config.outlierMode == OutlierMode::None)
        return true;
    return config.outlierMode == OutlierMode::MxFpShared &&
           config.pruneAndRedistribute;
}

PackedExecPlan::PackedExecPlan(const PackedLayer &layer)
    : rows_(layer.rows()), cols_(layer.cols()),
      macroBlock_(layer.config().macroBlock),
      macroPerRow_(layer.macroPerRow()),
      inlier_(rows_ * cols_, 0),
      macroScale_(rows_ * macroPerRow_, 1.0)
{
    MSQ_ASSERT(executable(layer.config()),
               "packed layout does not encode all weights of this config");
    const MsqConfig &cfg = layer.config();
    const unsigned bb = cfg.inlierBits;
    const unsigned mbits = layer.outlierFormat().mbits;

    outlierRow_.reserve(rows_ + 1);
    outlierRow_.push_back(0);
    for (size_t r = 0; r < rows_; ++r) {
        const uint8_t *codes = layer.codeRow(r);
        const SlotKind *kinds = layer.kindRow(r);
        const int8_t *isf = layer.isfRow(r);
        const MicroBlockMeta *micro = layer.microRow(r);

        for (size_t mb = 0; mb < macroPerRow_; ++mb)
            macroScale_[r * macroPerRow_ + mb] = std::ldexp(1.0, isf[mb]);

        int8_t *inl = inlier_.data() + r * cols_;
        for (size_t c = 0; c < cols_; ++c) {
            if (kinds[c] != SlotKind::Inlier)
                continue;  // pruned zeros and outlier halves stay 0
            inl[c] = static_cast<int8_t>(signExtend(codes[c], bb));
            if (inl[c] != 0)
                ++termCount_;
        }

        for (size_t ub = 0; ub < layer.microPerRow(); ++ub) {
            const MicroBlockMeta &meta = micro[ub];
            if (!meta.hasOutliers)
                continue;
            const int osf = layer.outlierScaleExp(r, ub);
            const size_t base = ub * cfg.microBlock;
            for (const PermEntry &entry : meta.perm) {
                OutlierTerm term;
                term.col = static_cast<uint32_t>(base + entry.upperLoc);
                term.mant = mergedOutlierMantissa(
                    codes[base + entry.upperLoc],
                    codes[base + entry.lowerLoc], mbits, bb);
                term.scale =
                    std::ldexp(1.0, osf - static_cast<int>(mbits));
                term.weight = static_cast<double>(term.mant) * term.scale;
                outliers_.push_back(term);
                ++termCount_;
            }
        }
        outlierRow_.push_back(static_cast<uint32_t>(outliers_.size()));
    }
}

Matrix
PackedExecPlan::matmulT(const Matrix &x) const
{
    Matrix out(cols_, x.cols());
    matmulTRange(x, 0, x.cols(), out);
    return out;
}

void
PackedExecPlan::matmulTRange(const Matrix &x, size_t t0, size_t t1,
                             Matrix &out) const
{
    MSQ_ASSERT(x.rows() == rows_, "GEMM reduction dimension mismatch");
    MSQ_ASSERT(out.rows() == cols_ && out.cols() == x.cols(),
               "packed-exec output shape mismatch");
    MSQ_ASSERT(t0 <= t1 && t1 <= x.cols(), "token range out of bounds");

    // k ascending with one term per (k, column) reproduces the exact
    // accumulation order of Matrix::transposedMatmul, and every term is
    // the identical double product, so outputs match bit for bit.
    for (size_t k = 0; k < rows_; ++k) {
        const double *xrow = x.rowPtr(k);
        const int8_t *inl = inlier_.data() + k * cols_;
        const double *msc = macroScale_.data() + k * macroPerRow_;
        for (size_t mb = 0; mb < macroPerRow_; ++mb) {
            const double scale = msc[mb];
            const size_t c1 = std::min(cols_, (mb + 1) * macroBlock_);
            for (size_t c = mb * macroBlock_; c < c1; ++c) {
                const int v = inl[c];
                if (v == 0)
                    continue;
                const double wv = static_cast<double>(v) * scale;
                double *orow = out.rowPtr(c);
                for (size_t j = t0; j < t1; ++j)
                    orow[j] += wv * xrow[j];
            }
        }
        for (uint32_t t = outlierRow_[k]; t < outlierRow_[k + 1]; ++t) {
            const OutlierTerm &term = outliers_[t];
            double *orow = out.rowPtr(term.col);
            for (size_t j = t0; j < t1; ++j)
                orow[j] += term.weight * xrow[j];
        }
    }
}

Matrix
PackedExecPlan::gemm(const QuantizedActs &acts) const
{
    Matrix out(cols_, acts.tokens());
    gemmRange(acts, 0, acts.tokens(), out);
    return out;
}

void
PackedExecPlan::gemmRange(const QuantizedActs &acts, size_t t0, size_t t1,
                          Matrix &out) const
{
    MSQ_ASSERT(acts.channels() == rows_,
               "GEMM reduction dimension mismatch");
    MSQ_ASSERT(out.rows() == cols_ && out.cols() == acts.tokens(),
               "packed-exec output shape mismatch");
    MSQ_ASSERT(t0 <= t1 && t1 <= acts.tokens(), "token range out of bounds");

    const size_t n = t1 - t0;
    // Channel-major staging of the iAct codes and group scales: the act
    // container is token-major, the reduction walks channels.
    std::vector<int32_t> ia(n);
    std::vector<double> ascale(n);
    const size_t agroup = acts.group();
    size_t scale_group = static_cast<size_t>(-1);

    for (size_t k = 0; k < rows_; ++k) {
        for (size_t j = 0; j < n; ++j)
            ia[j] = acts.code(t0 + j, k);
        if (k / agroup != scale_group) {
            scale_group = k / agroup;
            for (size_t j = 0; j < n; ++j)
                ascale[j] =
                    std::ldexp(1.0, acts.scaleExp(t0 + j, k));
        }

        const int8_t *inl = inlier_.data() + k * cols_;
        const double *msc = macroScale_.data() + k * macroPerRow_;
        for (size_t mb = 0; mb < macroPerRow_; ++mb) {
            const double scale = msc[mb];
            const size_t c1 = std::min(cols_, (mb + 1) * macroBlock_);
            for (size_t c = mb * macroBlock_; c < c1; ++c) {
                const int v = inl[c];
                if (v == 0)
                    continue;
                double *orow = out.rowPtr(c);
                // Integer code x code product, then the exact
                // power-of-two output scale 2^(Isf + Asf).
                for (size_t j = 0; j < n; ++j) {
                    const int32_t p = v * ia[j];
                    orow[t0 + j] +=
                        static_cast<double>(p) * (scale * ascale[j]);
                }
            }
        }
        for (uint32_t t = outlierRow_[k]; t < outlierRow_[k + 1]; ++t) {
            const OutlierTerm &term = outliers_[t];
            double *orow = out.rowPtr(term.col);
            for (size_t j = 0; j < n; ++j) {
                const int32_t p = term.mant * ia[j];
                orow[t0 + j] +=
                    static_cast<double>(p) * (term.scale * ascale[j]);
            }
        }
    }
}

PackedExecBackend
packedExecBackend()
{
    return [](const PackedLayer &layer, const Matrix &x) -> Matrix {
        if (!PackedExecPlan::executable(layer.config()))
            return Matrix();
        return PackedExecPlan(layer).matmulT(x);
    };
}

} // namespace msq
