/**
 * @file
 * Autoregressive decode subsystem: turns a packed deployment
 * (PackedModel) into a token generator with iteration-level continuous
 * batching — the Orca/vLLM-class serving regime the ROADMAP's "opens a
 * new workload" step targets.
 *
 * The generator runs a scaled transformer block stack entirely on the
 * quantized artifacts this repository already serves:
 *
 *  - QKV / attn-out / MLP projections execute through the blocked
 *    packed-execution kernel (`packedGemmParallel`) straight from the
 *    Fig. 5 bit-codes, with per-step activations quantized to MX-INT
 *    through the same channel-major panel the batching engine uses
 *    (one scratch, `QuantizedActs::requantize`).
 *  - Every sequence's KV history lives in a `KvPool`
 *    (quant/kv_pool.h): packed 2-bit codes — keys per channel, values
 *    per token, the KIVI recipe of the paper's Table 7 ablation — with
 *    a full-precision residual window and incremental group-close
 *    appends; attention scores and weighted sums read the quantized
 *    pool directly.
 *  - The profile carries the attention geometry
 *    (`ModelProfile::decode`: heads, GQA kv heads, head dim, block
 *    count); every block reuses the profile's one quantized
 *    representative layer set, and the vocabulary embedding is
 *    synthesized deterministically from the model seed (tied
 *    embedding/unembedding, greedy argmax sampling).
 *
 * Scheduling is iteration-level: between decode steps the engine
 * admits waiting sequences into free slots and retires finished ones
 * (`DecodeConfig::continuousBatching`; off = static batching, a batch
 * runs to completion before the next is admitted — the baseline
 * `bench_decode` compares against). Each step distributes a token
 * budget over the active slots: prefilling sequences take up to
 * `prefillChunk` prompt tokens, decoding sequences one token each, so
 * prefill is chunked through the same scheduler instead of stalling
 * running generations.
 *
 * Determinism contract (test-enforced in tests/test_decode.cc): a
 * request's generated token stream is bit-identical across
 * `MSQ_THREADS`, batch composition (`maxBatchSeqs`, budget, admission
 * order) and batching mode. Every per-token computation depends only
 * on the sequence's own history: per-token activation-quantization
 * groups make a token's projection outputs independent of its batch
 * neighbours, the KV pool's group-close schedule depends only on the
 * sequence's own token count, attention/softmax/sampling reduce
 * serially in fixed orders, and parallel loops only ever write
 * per-item slots.
 */

#ifndef MSQ_SERVE_DECODE_H
#define MSQ_SERVE_DECODE_H

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "quant/kv_arena.h"
#include "quant/kv_pool.h"
#include "quant/prefix_cache.h"
#include "serve/weight_cache.h"

namespace msq {

/** Scheduler, activation, and KV-cache knobs of the decode engine. */
struct DecodeConfig
{
    size_t maxBatchSeqs = 8;      ///< sequences resident per step
    size_t stepTokenBudget = 64;  ///< tokens forwarded per step (all seqs)
    size_t prefillChunk = 16;     ///< max prompt tokens per seq per step

    /**
     * Iteration-level admission: free slots are refilled from the wait
     * queue between decode steps. Off = static batching (admit a batch
     * only when every slot is empty), the naive deployment the decode
     * benchmark quantifies against.
     */
    bool continuousBatching = true;

    unsigned actBits = 8;         ///< per-step iAct precision
    size_t actGroup = 128;        ///< iAct scale-sharing group

    /**
     * KV pool recipe (quant/kv_pool.h): bits, token/channel group, and
     * the full-precision residual window, scaled to the zoo's scaled
     * head dimensions just as the layer shapes are.
     */
    KvCacheConfig kv{2, 32, 32};

    size_t vocab = 256;           ///< synthetic vocabulary size

    size_t tileTokens = 32;       ///< packedGemmParallel token tile
    size_t tileCols = 0;          ///< column tile (0 = auto split)

    size_t calibTokens = 128;     ///< weight-cache calibration floor
    std::string cacheDir;         ///< optional `.msq` disk cache tier

    /**
     * Page size of the engine-owned KV arena (quant/kv_arena.h);
     * 0 = auto (at least one closed group, at least 4 KiB). Ignored
     * when an external arena is supplied. Token streams are invariant
     * to the page size (test-enforced).
     */
    size_t kvArenaPageBytes = 0;

    /**
     * Admission budget of the engine-owned arena in bytes; 0 =
     * unbounded. Bounded, the scheduler stops admitting sequences
     * whose conservative page estimate (`KvPool::estimatePages` x
     * blocks) would overrun the budget, shedding prefix-cache entries
     * first — but always admits at least one sequence when idle so the
     * queue drains (the budget is advisory, see quant/kv_arena.h).
     */
    size_t kvArenaBytes = 0;

    /**
     * Cross-request prefix caching (quant/prefix_cache.h): sequences
     * whose prompts share all-but-the-last token adopt the cached
     * pages instead of re-prefilling. Hits and misses produce
     * bit-identical token streams (test-enforced).
     */
    bool usePrefixCache = true;

    /** Minimum cacheable prefix length (prompt size - 1 >= this). */
    size_t prefixMinTokens = 8;

    /** Prefix-cache LRU budget in bytes; 0 = unbounded. Ignored when
     *  an external cache is supplied. */
    size_t prefixCacheBytes = 0;
};

/**
 * Persistent per-(sequence, block) attention scratch: the dense K/V
 * gather target, channel-major with row stride `cap`. Closed groups
 * are immutable, so between group closes an appended token only writes
 * its own column; a full `KvPool::gather` re-runs only when `quant`
 * (the pool's closed-token watermark) moves or the buffers must grow.
 * Living in SequenceState, the buffers survive across steps — the
 * steady decode state does zero full re-gathers and zero allocations
 * per step (counter-asserted in tests/test_decode.cc).
 */
struct KvScratch
{
    std::vector<double> k;  ///< kvDim x cap, channel-major
    std::vector<double> v;
    size_t cap = 0;         ///< row stride (token capacity)
    size_t tokens = 0;      ///< valid token columns
    size_t quant = 0;       ///< pool.quantizedTokens() at last gather
};

/** One in-flight sequence: prompt, generation, and its KV pools. */
struct SequenceState
{
    uint64_t id = 0;
    std::vector<uint32_t> prompt;
    size_t maxNewTokens = 0;

    size_t prefillPos = 0;            ///< prompt tokens consumed
    std::vector<uint32_t> generated;  ///< sampled tokens, in order
    std::vector<KvPool> kv;           ///< one pool per transformer block
    std::vector<KvScratch> scratch;   ///< one per block, across steps

    double submitMs = 0.0;
    double firstTokenMs = -1.0;       ///< time of the first sampled token
    size_t steps = 0;                 ///< steps this sequence was forwarded

    /**
     * Full-gather counters by reason, accumulated into the report at
     * retirement. `gatherSteady` (a rebuild in a pure-decode step with
     * no group close) must stay zero — that is the re-gather-churn bug
     * this layer exists to prevent.
     */
    size_t gatherFirst = 0;   ///< first gather of a (seq, block)
    size_t gatherClose = 0;   ///< an append closed a group
    size_t gatherGrow = 0;    ///< prefill outgrew the scratch capacity
    size_t gatherSteady = 0;  ///< decode-step rebuild: must be zero

    // Prefix-cache scheduling state (see DecodeEngine::admit).
    uint64_t prefixKey = 0;      ///< domain-folded prefix hash
    size_t prefixLen = 0;        ///< cacheable prefix (prompt - 1)
    size_t pagesPledged = 0;     ///< admission reservation (pages)
    bool prefixClaimer = false;  ///< prefills + publishes the prefix
    bool waitAdopt = false;      ///< stalls until the claimer publishes
};

/**
 * One sampled token, emitted in sampling order when token streaming is
 * on (`DecodeEngine::streamTokens`). Events for one sequence appear in
 * index order; the serving frontend drains them between steps and
 * forwards each as a Token frame.
 */
struct TokenEvent
{
    uint64_t id = 0;     ///< sequence (request) id
    uint32_t token = 0;  ///< the sampled token
    size_t index = 0;    ///< 0-based position in the generated stream
    bool last = false;   ///< true on the sequence's final token
};

/** Outcome of one finished generation. */
struct GenRecord
{
    uint64_t id = 0;
    size_t promptTokens = 0;
    std::vector<uint32_t> tokens;  ///< the generated stream
    double ttftMs = 0.0;           ///< submit -> first token
    double totalMs = 0.0;          ///< submit -> retirement
    size_t steps = 0;
};

/** Aggregate statistics of one run() call. */
struct DecodeReport
{
    std::vector<GenRecord> requests;  ///< in retirement order

    size_t steps = 0;
    size_t prefillTokens = 0;    ///< prompt tokens forwarded
    size_t generatedTokens = 0;  ///< tokens sampled
    double wallMs = 0.0;

    /**
     * Phase split: a step that forwards any prompt chunk counts as
     * prefill (chunked prefill mixes phases by design); steps that only
     * decode are the steady state the throughput claims are about.
     */
    size_t decodeSteps = 0;
    size_t decodeStepTokens = 0;     ///< tokens sampled in pure-decode steps
    double prefillMs = 0.0;
    double decodeMs = 0.0;
    double meanActiveSeqs = 0.0;     ///< mean busy slots per decode step

    double prefillTokensPerSec = 0.0;
    double decodeTokensPerSec = 0.0;    ///< steady-state decode throughput
    double generatedTokensPerSec = 0.0; ///< all sampled tokens / wall

    size_t kvPackedBytes = 0;  ///< packed codes + grids at retirement
    size_t kvFpBytes = 0;      ///< residual-window bytes at retirement

    /**
     * Page-granular KV footprint at retirement (pages held x page
     * size): the capacity-accurate number admission budgets against —
     * the payload counters above understate it by open-page slack.
     */
    size_t kvCapacityBytes = 0;

    size_t kvArenaPeakBytes = 0;  ///< arena high-water mark of the run

    /** Full KV gather counts by reason (see SequenceState). The
     *  steady-state count must be zero: steady decode extends the
     *  persistent scratch in place. */
    size_t kvGatherFirst = 0;
    size_t kvGatherClose = 0;
    size_t kvGatherGrow = 0;
    size_t kvGatherSteady = 0;

    // Prefix-cache activity during this run (deltas, not totals).
    uint64_t prefixHits = 0;
    uint64_t prefixMisses = 0;
    uint64_t prefixInserts = 0;
    uint64_t prefixEvictions = 0;
    size_t prefixAdoptedTokens = 0;  ///< prompt tokens skipped via hits
};

/** Autoregressive generator for one packed deployment. */
class DecodeEngine
{
  public:
    /**
     * Deploy `model` (which must be decode-capable, see
     * model/model_zoo.h decodeWiring) quantized under `config` behind a
     * generation queue. The profile is held by reference and must
     * outlive the engine.
     *
     * `arena` / `prefixCache` let several engines share one paged KV
     * arena and one prefix cache (multi-tenant serving; exercised by
     * the `race`-label tests). nullptr = the engine owns private ones
     * sized from `decode`. External objects must outlive the engine,
     * and an external arena must satisfy
     * `pageBytes() >= KvPool::minPageBytes(kvDim, decode.kv)`. The
     * prefix key folds in the model identity and full quantization
     * config, so engines with different deployments can safely share a
     * cache.
     *
     * @pre PackedExecPlan::executable(config), decodeCapable(model)
     */
    DecodeEngine(const ModelProfile &model, const MsqConfig &config,
                 const DecodeConfig &decode = {}, KvArena *arena = nullptr,
                 PrefixCache *prefixCache = nullptr);

    /**
     * Enqueue a generation request. Every prompt id must lie in
     * [0, vocab); at least one prompt token and one new token.
     * Returns the request id.
     */
    uint64_t submit(const std::vector<uint32_t> &prompt,
                    size_t max_new_tokens);

    /** Requests waiting for a slot. */
    size_t waiting() const { return waiting_.size(); }

    /** Sequences currently resident in slots. */
    size_t active() const { return active_.size(); }

    /** True when no request is waiting or resident. */
    bool idle() const { return waiting_.empty() && active_.empty(); }

    /**
     * Run scheduler steps until every submitted request has finished;
     * returns per-request generations plus phase throughput statistics.
     */
    DecodeReport run();

    /**
     * Forward exactly one scheduler step (admission + one forward pass
     * + retirement), accumulating into `report`. The serving frontend
     * drives the engine this way so it can admit, cancel, and stream
     * between steps. No-op when idle.
     */
    void stepOnce(DecodeReport &report);

    /**
     * Remove request `id` wherever it is — the wait queue or an active
     * slot — releasing its admission pledge and any prefix claim (a
     * stalled follower gets promoted by the next step's
     * resolveWaiters). Must be called between steps, like stepOnce.
     * Returns false when the id is unknown (already retired).
     *
     * Cancellation must not perturb co-scheduled sequences' streams:
     * every per-token computation depends only on the sequence's own
     * history (see the determinism contract above), so dropping a slot
     * is equivalent to the sequence never having existed after that
     * step — test-enforced in tests/test_decode.cc.
     */
    bool cancel(uint64_t id);

    /** Toggle per-token event capture (off by default). */
    void streamTokens(bool on) { streamTokens_ = on; }

    /** Drain captured token events (sampling order, index order within
     *  a sequence). */
    std::vector<TokenEvent>
    takeTokenEvents()
    {
        std::vector<TokenEvent> out;
        out.swap(tokenEvents_);
        return out;
    }

    const PackedModel &packedModel() const { return *packed_; }
    const DecodeConfig &config() const { return decode_; }

    /** The paged KV arena every sequence draws from. */
    KvArena &arena() { return *arena_; }
    const KvArena &arena() const { return *arena_; }

    /**
     * Conservative arena-page estimate for a request of this shape —
     * the same number admit() pledges, exposed so the serving frontend
     * can reject requests that cannot fit before queueing them.
     * Reads only immutable state (safe from any thread).
     */
    size_t estimateRequestPages(size_t prompt_tokens,
                                size_t max_new_tokens) const;

    /** The prefix cache (nullptr when usePrefixCache is off and none
     *  was supplied). */
    PrefixCache *prefixCache() { return prefixCache_; }

    /** Deterministic tied embedding matrix (vocab x hidden: row v is
     *  token v's unit-norm embedding). */
    const Matrix &embedding() const { return embed_; }

  private:
    /** One slot's share of a step. */
    struct StepItem
    {
        size_t slot = 0;    ///< index into active_
        size_t col = 0;     ///< first activation column of this item
        size_t tokens = 0;  ///< forwarded tokens (prefill chunk or 1)
        bool prefill = false;
        bool samples = false;  ///< emits a token this step
    };

    /** Admit waiting sequences per the batching mode, budgeting page
     *  estimates against the arena capacity and resolving prefix-cache
     *  hits/claims (accounting lands in `report`). */
    void admit(DecodeReport &report);

    /** Adopt cached prefix pages into a freshly admitted sequence. */
    void adoptPrefix(SequenceState &seq, const PrefixEntry &entry);

    /** Re-check stalled followers against the cache; promote one to
     *  claimer if the claim vanished (evicted before adoption). */
    void resolveWaiters(DecodeReport &report);

    /** Drop `key` from the pending-claim list. */
    void unclaim(uint64_t key);

    /** Distribute the step token budget over the active slots. */
    std::vector<StepItem> planStep() const;

    /** Forward one scheduler step; updates report counters. */
    void step(DecodeReport &report);

    /** One transformer block over the step batch (X updated in place). */
    void forwardBlock(size_t block, const std::vector<StepItem> &items,
                      Matrix &x);

    /** Greedy argmax over the tied unembedding of one hidden column. */
    uint32_t sample(const Matrix &x, size_t col) const;

    /** Milliseconds since engine construction (monotonic). */
    double nowMs() const;

    const ModelProfile &model_;
    DecodeConfig decode_;
    DecodeWiring wiring_;
    PackedModelPtr packed_;
    Matrix embed_;  ///< vocab x hidden, unit-norm rows
    std::vector<double> posFreq_;  ///< sinusoid frequency per channel

    std::deque<SequenceState> waiting_;
    std::vector<SequenceState> active_;
    uint64_t nextId_ = 1;
    uint64_t epoch_ = 0;

    QuantizedActs actsScratch_;  ///< reused across every projection

    std::unique_ptr<KvArena> ownedArena_;    ///< when none was supplied
    KvArena *arena_ = nullptr;
    std::unique_ptr<PrefixCache> ownedCache_;
    PrefixCache *prefixCache_ = nullptr;     ///< null = caching off
    uint64_t prefixDomain_ = 0;  ///< model+config fold for prefix keys

    /** Outstanding prefix claims (key, claimer sequence id): at most
     *  one sequence prefills a given prefix; later arrivals stall in
     *  `waitAdopt` until the claimer publishes. Ordered vector — the
     *  determinism lint bans unordered iteration. */
    std::vector<std::pair<uint64_t, uint64_t>> pendingPrefix_;

    size_t pledgedPages_ = 0;  ///< admission reservations outstanding

    bool streamTokens_ = false;
    std::vector<TokenEvent> tokenEvents_;
};

} // namespace msq

#endif // MSQ_SERVE_DECODE_H
