#include "serve/decode.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "core/msq_config.h"
#include "serve/clock.h"

namespace msq {

namespace {

/**
 * Per-token LayerNorm (pre-norm residual stack): each column is
 * centered and scaled to unit RMS. Channels reduce serially in
 * ascending order, so a column's bytes depend only on that column.
 */
Matrix
rmsNormed(const Matrix &x)
{
    Matrix out(x.rows(), x.cols());
    const double eps = 1e-6;
    const double n = static_cast<double>(x.rows());
    for (size_t t = 0; t < x.cols(); ++t) {
        double mean = 0.0;
        for (size_t r = 0; r < x.rows(); ++r)
            mean += x(r, t);
        mean /= n;
        double ss = 0.0;
        for (size_t r = 0; r < x.rows(); ++r) {
            const double c = x(r, t) - mean;
            ss += c * c;
        }
        const double scale = 1.0 / std::sqrt(ss / n + eps);
        for (size_t r = 0; r < x.rows(); ++r)
            out(r, t) = (x(r, t) - mean) * scale;
    }
    return out;
}

/** Elementwise residual add `x += y` in one fixed order. */
void
addInPlace(Matrix &x, const Matrix &y)
{
    for (size_t r = 0; r < x.rows(); ++r) {
        double *xr = x.rowPtr(r);
        const double *yr = y.rowPtr(r);
        for (size_t t = 0; t < x.cols(); ++t)
            xr[t] += yr[t];
    }
}

/**
 * MLP nonlinearity, applied in place. tanh rather than the
 * SiLU/GELU family: with random synthetic weights a nonlinearity with
 * a positive mean pushes a constant bias direction into the residual
 * stream through mlp_down, and after a few blocks that direction
 * dominates every hidden state — greedy sampling then collapses to one
 * token regardless of input. A zero-centered odd function keeps the
 * stream input-driven.
 */
void
tanhInPlace(Matrix &x)
{
    for (size_t r = 0; r < x.rows(); ++r) {
        double *row = x.rowPtr(r);
        for (size_t t = 0; t < x.cols(); ++t)
            row[t] = std::tanh(row[t]);
    }
}

/** FNV-1a over a string (prefix-key domain folding). */
uint64_t
hashString(const std::string &s, uint64_t seed)
{
    uint64_t h = 1469598103934665603ull ^ seed;
    for (const char c : s) {
        h ^= static_cast<uint8_t>(c);
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

DecodeEngine::DecodeEngine(const ModelProfile &model, const MsqConfig &config,
                           const DecodeConfig &decode, KvArena *arena,
                           PrefixCache *prefixCache)
    : model_(model), decode_(decode), wiring_(decodeWiring(model)),
      packed_(getPackedModel(model, config, decode.calibTokens,
                             decode.cacheDir)),
      epoch_(steadyNanos())
{
    MSQ_ASSERT(decode_.maxBatchSeqs > 0, "need at least one sequence slot");
    MSQ_ASSERT(decode_.stepTokenBudget > 0, "step budget must be positive");
    MSQ_ASSERT(decode_.prefillChunk > 0, "prefill chunk must be positive");
    MSQ_ASSERT(decode_.tileTokens > 0, "tile size must be positive");
    MSQ_ASSERT(decode_.vocab >= 2, "vocabulary needs at least two tokens");
    MSQ_ASSERT(model_.decode.blocks > 0, "decode needs at least one block");

    // Tied vocabulary embedding, synthesized from the model seed like
    // every other model artifact: one unit-norm row per token (row
    // major, so both the input gather and the unembedding dot products
    // stream contiguous memory) so logits stay on a comparable scale
    // across hidden sizes. Generation order (vocab outer, channel
    // inner) is fixed, so the matrix is bit-reproducible.
    Rng rng(model_.seed * 11000027ULL + 97);
    embed_ = Matrix(decode_.vocab, wiring_.hidden);
    for (size_t v = 0; v < decode_.vocab; ++v) {
        double *row = embed_.rowPtr(v);
        double ss = 0.0;
        for (size_t r = 0; r < wiring_.hidden; ++r) {
            row[r] = rng.gaussian();
            ss += row[r] * row[r];
        }
        const double inv = 1.0 / std::sqrt(ss);
        for (size_t r = 0; r < wiring_.hidden; ++r)
            row[r] *= inv;
    }

    // Sinusoidal position-encoding frequencies, precomputed per channel
    // (the embedding gather runs once per forwarded token). Without a
    // position signal greedy decoding collapses to a fixed point — the
    // same input token would produce the same hidden state at every
    // position.
    posFreq_.resize(wiring_.hidden);
    for (size_t r = 0; r < wiring_.hidden; ++r)
        posFreq_[r] =
            1.0 / std::pow(1e4, static_cast<double>(r - r % 2) /
                                    static_cast<double>(wiring_.hidden));

    // Paged KV arena: engine-owned unless the caller shares one across
    // engines. The auto page size holds at least one closed group (a
    // KvPool hard requirement) and at least 4 KiB so small-geometry
    // pools do not degenerate into one page per group.
    const size_t kvDim = model_.decode.kvHeads * model_.decode.headDim;
    if (arena == nullptr) {
        KvArenaConfig ac;
        ac.pageBytes = decode_.kvArenaPageBytes > 0
                           ? decode_.kvArenaPageBytes
                           : std::max<size_t>(
                                 KvPool::minPageBytes(kvDim, decode_.kv),
                                 4096);
        ac.capacityBytes = decode_.kvArenaBytes;
        ownedArena_ = std::make_unique<KvArena>(ac);
        arena = ownedArena_.get();
    }
    arena_ = arena;
    MSQ_ASSERT(arena_->pageBytes() >=
                   KvPool::minPageBytes(kvDim, decode_.kv),
               "shared arena pages too small for this KV geometry");

    if (decode_.usePrefixCache) {
        if (prefixCache == nullptr) {
            ownedCache_ =
                std::make_unique<PrefixCache>(decode_.prefixCacheBytes);
            prefixCache = ownedCache_.get();
        }
        prefixCache_ = prefixCache;
        // Fold everything that shapes cached KV bytes into the key
        // domain: the model identity plus the full quantization config
        // (weights via configKey, activations, and the KV recipe).
        char buf[160];
        std::snprintf(buf, sizeof(buf),
                      "|s%llu|a%u/%zu|kv%u/%zu/%zu|v%zu",
                      static_cast<unsigned long long>(model_.seed),
                      decode_.actBits, decode_.actGroup, decode_.kv.bits,
                      decode_.kv.groupSize, decode_.kv.residual,
                      decode_.vocab);
        prefixDomain_ = hashString(model_.name + configKey(config) + buf, 0);
    }
}

double
DecodeEngine::nowMs() const
{
    return static_cast<double>(steadyNanos() - epoch_) / 1e6;
}

uint64_t
DecodeEngine::submit(const std::vector<uint32_t> &prompt,
                     size_t max_new_tokens)
{
    MSQ_ASSERT(!prompt.empty(), "a request must carry a prompt");
    MSQ_ASSERT(max_new_tokens > 0, "a request must generate tokens");
    for (uint32_t id : prompt)
        MSQ_ASSERT(id < decode_.vocab, "prompt token outside vocabulary");
    SequenceState s;
    s.id = nextId_++;
    s.prompt = prompt;
    s.maxNewTokens = max_new_tokens;
    s.submitMs = nowMs();
    waiting_.push_back(std::move(s));
    return waiting_.back().id;
}

void
DecodeEngine::unclaim(uint64_t key)
{
    for (size_t i = 0; i < pendingPrefix_.size(); ++i)
        if (pendingPrefix_[i].first == key) {
            pendingPrefix_.erase(pendingPrefix_.begin() +
                                 static_cast<ptrdiff_t>(i));
            return;
        }
}

void
DecodeEngine::adoptPrefix(SequenceState &seq, const PrefixEntry &entry)
{
    for (size_t b = 0; b < seq.kv.size(); ++b)
        seq.kv[b].adopt(entry.blocks[b]);
    seq.prefillPos = entry.tokens.size();
}

namespace {

/** A cached entry this engine can adopt: one snapshot per block, pages
 *  in this engine's arena. A mismatch (cache shared across engines
 *  with different arenas) degrades to a miss, never to wrong bytes. */
bool
adoptable(const PrefixEntry &entry, size_t blocks, const KvArena *arena)
{
    return entry.blocks.size() == blocks && !entry.blocks.empty() &&
           entry.blocks.front().arena() == arena;
}

} // namespace

void
DecodeEngine::admit(DecodeReport &report)
{
    // Iteration-level (continuous) batching refills free slots between
    // every step; static batching waits for the whole batch to retire.
    if (!decode_.continuousBatching && !active_.empty())
        return;
    const size_t kvDim = model_.decode.kvHeads * model_.decode.headDim;
    const size_t blocks = model_.decode.blocks;
    const size_t pageBytes = arena_->pageBytes();
    const bool bounded = arena_->capacityPages() > 0;
    // Pages the prefix cache is sitting on, page-rounded per entry.
    const auto cachePages = [&]() -> size_t {
        if (prefixCache_ == nullptr)
            return 0;
        return prefixCache_->bytes() / pageBytes + prefixCache_->entries();
    };
    while (active_.size() < decode_.maxBatchSeqs && !waiting_.empty()) {
        // Admission budget: reserve a conservative page estimate for
        // the sequence's full token range against the arena capacity
        // (capacity-accurate page counts, not payload bytes). Under
        // pressure, shed cached prefixes first; if the estimate still
        // does not fit but the engine is idle, admit anyway — the
        // budget is advisory (quant/kv_arena.h) and one sequence must
        // always make progress.
        size_t need = 0;
        if (bounded) {
            const SequenceState &front = waiting_.front();
            need = blocks * KvPool::estimatePages(
                                kvDim, decode_.kv,
                                front.prompt.size() + front.maxNewTokens,
                                pageBytes);
            while (pledgedPages_ + need + cachePages() >
                       arena_->capacityPages() &&
                   prefixCache_ != nullptr && prefixCache_->evictLru()) {
            }
            if (pledgedPages_ + need + cachePages() >
                    arena_->capacityPages() &&
                !active_.empty())
                break;
        }
        SequenceState s = std::move(waiting_.front());
        waiting_.pop_front();
        s.pagesPledged = need;
        pledgedPages_ += need;
        s.kv.reserve(blocks);
        for (size_t b = 0; b < blocks; ++b)
            s.kv.emplace_back(kvDim, decode_.kv, arena_);
        s.scratch.resize(blocks);

        // Cross-request prefix cache: key on all but the last prompt
        // token (the last token must be forwarded to sample the first
        // generated token). A hit adopts the cached pages outright; a
        // miss either claims the prefix (this sequence prefills and
        // publishes it) or, when another active sequence already
        // claimed it, stalls until the claimer publishes — so N
        // sequences sharing a prefix pay for exactly one prefill.
        if (prefixCache_ != nullptr && s.prompt.size() >= 2 &&
            s.prompt.size() - 1 >= decode_.prefixMinTokens) {
            s.prefixLen = s.prompt.size() - 1;
            std::vector<uint32_t> prefix(s.prompt.begin(),
                                         s.prompt.begin() +
                                             static_cast<ptrdiff_t>(
                                                 s.prefixLen));
            s.prefixKey = PrefixCache::hashTokens(prefix.data(),
                                                  s.prefixLen,
                                                  prefixDomain_);
            const PrefixCache::EntryPtr entry =
                prefixCache_->lookup(s.prefixKey, prefix);
            bool claimed = false;
            for (const auto &claim : pendingPrefix_)
                claimed = claimed || claim.first == s.prefixKey;
            if (entry != nullptr && adoptable(*entry, blocks, arena_)) {
                adoptPrefix(s, *entry);
                report.prefixAdoptedTokens += s.prefixLen;
            } else if (claimed) {
                s.waitAdopt = true;
            } else {
                pendingPrefix_.emplace_back(s.prefixKey, s.id);
                s.prefixClaimer = true;
            }
        }
        active_.push_back(std::move(s));
    }
}

void
DecodeEngine::resolveWaiters(DecodeReport &report)
{
    if (prefixCache_ == nullptr)
        return;
    for (SequenceState &s : active_) {
        if (!s.waitAdopt)
            continue;
        std::vector<uint32_t> prefix(
            s.prompt.begin(),
            s.prompt.begin() + static_cast<ptrdiff_t>(s.prefixLen));
        const PrefixCache::EntryPtr entry =
            prefixCache_->lookup(s.prefixKey, prefix);
        if (entry != nullptr &&
            adoptable(*entry, model_.decode.blocks, arena_)) {
            adoptPrefix(s, *entry);
            report.prefixAdoptedTokens += s.prefixLen;
            s.waitAdopt = false;
            continue;
        }
        bool claimed = false;
        for (const auto &claim : pendingPrefix_)
            claimed = claimed || claim.first == s.prefixKey;
        if (!claimed) {
            // The claim vanished without a usable entry (the claimer
            // published but eviction raced it away, or the entry is
            // not adoptable here): promote this waiter to claimer so
            // the group always makes progress.
            pendingPrefix_.emplace_back(s.prefixKey, s.id);
            s.prefixClaimer = true;
            s.waitAdopt = false;
        }
    }
}

std::vector<DecodeEngine::StepItem>
DecodeEngine::planStep() const
{
    std::vector<StepItem> items;
    size_t budget = decode_.stepTokenBudget;
    size_t col = 0;
    for (size_t i = 0; i < active_.size() && budget > 0; ++i) {
        const SequenceState &s = active_[i];
        // A follower stalled on a claimed prefix occupies its slot but
        // does no work until the claimer publishes (resolveWaiters).
        if (s.waitAdopt)
            continue;
        StepItem item;
        item.slot = i;
        item.col = col;
        if (s.prefillPos < s.prompt.size()) {
            item.prefill = true;
            size_t limit = s.prompt.size() - s.prefillPos;
            // A claimer's chunks land exactly on the prefix boundary:
            // a pool snapshot is only valid at the exact token count
            // it is taken at, so the publish step must end with the
            // pools holding precisely prefixLen tokens.
            if (s.prefixClaimer && s.prefillPos < s.prefixLen)
                limit = s.prefixLen - s.prefillPos;
            item.tokens = std::min({decode_.prefillChunk, limit, budget});
            // The step consuming the final prompt token emits the
            // first generated token from that token's hidden state.
            item.samples = s.prefillPos + item.tokens == s.prompt.size();
        } else {
            item.tokens = 1;
            item.samples = true;
        }
        budget -= item.tokens;
        col += item.tokens;
        items.push_back(item);
    }
    return items;
}

void
DecodeEngine::forwardBlock(size_t block, const std::vector<StepItem> &items,
                           Matrix &x)
{
    const DecodeGeometry &g = model_.decode;
    const size_t d = wiring_.hidden;
    const size_t kvDim = g.kvHeads * g.headDim;
    const size_t share = g.heads / g.kvHeads;
    const double invSqrtHd = 1.0 / std::sqrt(static_cast<double>(g.headDim));

    // Attention: pre-norm, fused QKV projection through the blocked
    // packed kernel, then per-sequence attention against the quantized
    // KV pool. QKV rows: [0, d) queries, [d, d + kvDim) keys,
    // [d + kvDim, d + 2 kvDim) values.
    const Matrix xn = rmsNormed(x);
    actsScratch_.requantize(xn, decode_.actBits, decode_.actGroup);
    const Matrix qkv = packedGemmParallel(*packed_->plans[wiring_.qkv],
                                          actsScratch_, decode_.tileTokens,
                                          decode_.tileCols);

    Matrix attn(d, x.cols());
    // Sequences are independent: each item appends to and reads only
    // its own pool and writes only its own activation columns. Within
    // an item, tokens advance serially — append, then attend over the
    // pool prefix [0, position] — so a token's attention reads the same
    // pool state whatever the chunking, and causality holds inside a
    // prefill chunk.
    parallelFor(0, items.size(), [&](size_t ii) {
        const StepItem &item = items[ii];
        SequenceState &seq = active_[item.slot];
        KvPool &pool = seq.kv[block];
        KvScratch &sc = seq.scratch[block];
        std::vector<double> kcol(kvDim), vcol(kvDim);
        std::vector<double> scores;
        std::vector<double> qhead(g.headDim);
        // Dense K/V scratch shared by all heads (one bulk decode
        // instead of heads x per-element reads). The buffers persist
        // in SequenceState across steps: closed groups are immutable,
        // so a full re-gather is only needed when an append closes a
        // group (which changes the representation of tokens that just
        // left the residual window); otherwise a new token's column is
        // written directly — it still sits in the full-precision tail.
        // Capacity is provisioned to the next possible group close
        // (quantized + residual + group), so a pure-decode step never
        // rebuilds between closes — seq.gatherSteady counts exactly
        // those rebuilds and tests pin it to zero.
        const size_t closeSpan = decode_.kv.residual + decode_.kv.groupSize;
        const auto rebuild = [&](size_t pending) {
            const size_t capNeed =
                std::max(pool.tokens() + pending,
                         pool.quantizedTokens() + closeSpan);
            if (sc.cap < capNeed) {
                sc.cap = capNeed;
                sc.k.resize(kvDim * sc.cap);
                sc.v.resize(kvDim * sc.cap);
            }
            pool.gather(sc.k.data(), sc.v.data(), sc.cap);
            sc.quant = pool.quantizedTokens();
            sc.tokens = pool.tokens();
        };
        if (sc.cap < pool.tokens() + item.tokens) {
            if (sc.cap == 0)
                ++seq.gatherFirst;
            else if (item.prefill)
                ++seq.gatherGrow;
            else
                ++seq.gatherSteady;
            rebuild(item.tokens);
        }
        MSQ_ASSERT(sc.tokens == pool.tokens() &&
                       sc.quant == pool.quantizedTokens(),
                   "KV scratch out of sync with its pool");
        for (size_t j = 0; j < item.tokens; ++j) {
            const size_t col = item.col + j;
            for (size_t c = 0; c < kvDim; ++c) {
                kcol[c] = qkv(d + c, col);
                vcol[c] = qkv(d + kvDim + c, col);
            }
            pool.append(kcol.data(), vcol.data());
            const size_t n = pool.tokens();
            if (pool.quantizedTokens() != sc.quant) {
                ++seq.gatherClose;
                rebuild(item.tokens - j - 1);
            } else {
                for (size_t c = 0; c < kvDim; ++c) {
                    sc.k[c * sc.cap + n - 1] = kcol[c];
                    sc.v[c * sc.cap + n - 1] = vcol[c];
                }
                sc.tokens = n;
            }
            const size_t cap = sc.cap;
            scores.resize(n);
            for (size_t h = 0; h < g.heads; ++h) {
                const size_t qr = h * g.headDim;          // query rows
                const size_t kb = (h / share) * g.headDim; // GQA kv base
                for (size_t i = 0; i < g.headDim; ++i)
                    qhead[i] = qkv(qr + i, col);
                std::fill(scores.begin(), scores.end(), 0.0);
                for (size_t i = 0; i < g.headDim; ++i) {
                    const double *krow = sc.k.data() + (kb + i) * cap;
                    const double qi = qhead[i];
                    for (size_t t = 0; t < n; ++t)
                        scores[t] += qi * krow[t];
                }
                double mx = -HUGE_VAL;
                for (size_t t = 0; t < n; ++t) {
                    scores[t] *= invSqrtHd;
                    mx = std::max(mx, scores[t]);
                }
                double sum = 0.0;
                for (size_t t = 0; t < n; ++t) {
                    scores[t] = std::exp(scores[t] - mx);
                    sum += scores[t];
                }
                const double wnorm = 1.0 / sum;
                for (size_t i = 0; i < g.headDim; ++i) {
                    const double *vrow = sc.v.data() + (kb + i) * cap;
                    double acc = 0.0;
                    for (size_t t = 0; t < n; ++t)
                        acc += scores[t] * vrow[t];
                    attn(qr + i, col) = acc * wnorm;
                }
            }
        }
    });

    actsScratch_.requantize(attn, decode_.actBits, decode_.actGroup);
    const Matrix attnOut = packedGemmParallel(*packed_->plans[wiring_.out],
                                              actsScratch_,
                                              decode_.tileTokens,
                                              decode_.tileCols);
    addInPlace(x, attnOut);

    // MLP: pre-norm, up projection, tanh, down projection, residual.
    const Matrix xn2 = rmsNormed(x);
    actsScratch_.requantize(xn2, decode_.actBits, decode_.actGroup);
    Matrix up = packedGemmParallel(*packed_->plans[wiring_.up],
                                   actsScratch_, decode_.tileTokens,
                                   decode_.tileCols);
    tanhInPlace(up);
    actsScratch_.requantize(up, decode_.actBits, decode_.actGroup);
    const Matrix down = packedGemmParallel(*packed_->plans[wiring_.down],
                                           actsScratch_, decode_.tileTokens,
                                           decode_.tileCols);
    addInPlace(x, down);
}

uint32_t
DecodeEngine::sample(const Matrix &x, size_t col) const
{
    // Greedy argmax over the tied unembedding; strict comparison makes
    // ties resolve to the smallest token id. The hidden column is
    // gathered once so every logit dot product streams two contiguous
    // rows.
    std::vector<double> h(wiring_.hidden);
    for (size_t r = 0; r < wiring_.hidden; ++r)
        h[r] = x(r, col);
    double best = -HUGE_VAL;
    uint32_t arg = 0;
    for (size_t v = 0; v < decode_.vocab; ++v) {
        const double *row = embed_.rowPtr(v);
        double s = 0.0;
        for (size_t r = 0; r < wiring_.hidden; ++r)
            s += row[r] * h[r];
        if (s > best) {
            best = s;
            arg = static_cast<uint32_t>(v);
        }
    }
    return arg;
}

void
DecodeEngine::step(DecodeReport &report)
{
    admit(report);
    if (active_.empty())
        return;
    resolveWaiters(report);
    const double t0 = nowMs();
    const std::vector<StepItem> items = planStep();
    MSQ_ASSERT(!items.empty(), "a step with active sequences does work");

    size_t step_tokens = 0;
    for (const StepItem &item : items)
        step_tokens += item.tokens;

    // Input embeddings (token embedding + position encoding): prompt
    // chunk for prefilling sequences, the last generated token for
    // decoding ones. A token's position in its sequence is independent
    // of scheduling, so the gathered column depends only on the
    // sequence's own history.
    Matrix x(wiring_.hidden, step_tokens);
    for (const StepItem &item : items) {
        const SequenceState &seq = active_[item.slot];
        for (size_t j = 0; j < item.tokens; ++j) {
            uint32_t tok;
            size_t pos;
            if (item.prefill) {
                pos = seq.prefillPos + j;
                tok = seq.prompt[pos];
            } else {
                pos = seq.prompt.size() + seq.generated.size() - 1;
                tok = seq.generated.back();
            }
            // Position sinusoids are scaled to the unit-norm embedding
            // rows (amplitude 1/sqrt(hidden)).
            const double *row = embed_.rowPtr(tok);
            const double amp =
                1.0 / std::sqrt(static_cast<double>(wiring_.hidden));
            const double p = static_cast<double>(pos);
            for (size_t r = 0; r < wiring_.hidden; ++r) {
                const double angle = p * posFreq_[r];
                x(r, item.col + j) =
                    row[r] + amp * (r % 2 == 0 ? std::sin(angle)
                                               : std::cos(angle));
            }
        }
    }

    for (size_t b = 0; b < model_.decode.blocks; ++b)
        forwardBlock(b, items, x);

    // Sampling positions read the final-normalized hidden state of
    // their item's last forwarded token.
    const Matrix xf = rmsNormed(x);
    std::vector<uint32_t> next(items.size(), 0);
    parallelFor(0, items.size(), [&](size_t ii) {
        if (items[ii].samples)
            next[ii] = sample(xf, items[ii].col + items[ii].tokens - 1);
    });

    const double t1 = nowMs();
    bool has_prefill = false;
    size_t prefill_tokens = 0;
    size_t sampled = 0;
    for (size_t ii = 0; ii < items.size(); ++ii) {
        const StepItem &item = items[ii];
        SequenceState &seq = active_[item.slot];
        seq.steps += 1;
        if (item.prefill) {
            has_prefill = true;
            prefill_tokens += item.tokens;
            seq.prefillPos += item.tokens;
            // The claimer just landed on the prefix boundary: publish
            // the pools' state (full pages shared, partial page + fp
            // tail copied) and release the claim so stalled followers
            // adopt it next step.
            if (seq.prefixClaimer && seq.prefillPos == seq.prefixLen) {
                std::vector<KvPoolSnapshot> snaps;
                snaps.reserve(seq.kv.size());
                for (const KvPool &pool : seq.kv)
                    snaps.push_back(pool.snapshot());
                std::vector<uint32_t> prefix(
                    seq.prompt.begin(),
                    seq.prompt.begin() +
                        static_cast<ptrdiff_t>(seq.prefixLen));
                prefixCache_->insert(seq.prefixKey, std::move(prefix),
                                     std::move(snaps));
                unclaim(seq.prefixKey);
                seq.prefixClaimer = false;
            }
        }
        if (item.samples) {
            seq.generated.push_back(next[ii]);
            sampled += 1;
            if (seq.firstTokenMs < 0.0)
                seq.firstTokenMs = t1;
            if (streamTokens_) {
                TokenEvent ev;
                ev.id = seq.id;
                ev.token = next[ii];
                ev.index = seq.generated.size() - 1;
                ev.last = seq.generated.size() == seq.maxNewTokens;
                tokenEvents_.push_back(ev);
            }
        }
    }

    report.steps += 1;
    report.prefillTokens += prefill_tokens;
    report.generatedTokens += sampled;
    if (has_prefill) {
        report.prefillMs += t1 - t0;
    } else {
        report.decodeMs += t1 - t0;
        report.decodeSteps += 1;
        report.decodeStepTokens += sampled;
        // Accumulated here, divided by decodeSteps in run().
        report.meanActiveSeqs += static_cast<double>(items.size());
    }

    // Retire finished sequences in slot order.
    for (size_t i = 0; i < active_.size();) {
        SequenceState &seq = active_[i];
        if (seq.generated.size() < seq.maxNewTokens) {
            ++i;
            continue;
        }
        GenRecord rec;
        rec.id = seq.id;
        rec.promptTokens = seq.prompt.size();
        rec.tokens = std::move(seq.generated);
        rec.ttftMs = seq.firstTokenMs - seq.submitMs;
        rec.totalMs = t1 - seq.submitMs;
        rec.steps = seq.steps;
        for (const KvPool &pool : seq.kv) {
            report.kvPackedBytes += pool.packedBytes();
            report.kvFpBytes += pool.fpBytes();
            report.kvCapacityBytes += pool.capacityBytes();
        }
        report.kvGatherFirst += seq.gatherFirst;
        report.kvGatherClose += seq.gatherClose;
        report.kvGatherGrow += seq.gatherGrow;
        report.kvGatherSteady += seq.gatherSteady;
        MSQ_ASSERT(pledgedPages_ >= seq.pagesPledged,
                   "admission pledge accounting out of balance");
        pledgedPages_ -= seq.pagesPledged;
        // Defensive: a retiring claimer always published at the prefix
        // boundary, but never let a claim outlive its sequence.
        if (seq.prefixClaimer)
            unclaim(seq.prefixKey);
        report.requests.push_back(std::move(rec));
        active_.erase(active_.begin() + static_cast<ptrdiff_t>(i));
    }
}

size_t
DecodeEngine::estimateRequestPages(size_t prompt_tokens,
                                   size_t max_new_tokens) const
{
    const size_t kvDim = model_.decode.kvHeads * model_.decode.headDim;
    return model_.decode.blocks *
           KvPool::estimatePages(kvDim, decode_.kv,
                                 prompt_tokens + max_new_tokens,
                                 arena_->pageBytes());
}

void
DecodeEngine::stepOnce(DecodeReport &report)
{
    if (!idle())
        step(report);
}

bool
DecodeEngine::cancel(uint64_t id)
{
    for (size_t i = 0; i < waiting_.size(); ++i)
        if (waiting_[i].id == id) {
            waiting_.erase(waiting_.begin() + static_cast<ptrdiff_t>(i));
            return true;
        }
    for (size_t i = 0; i < active_.size(); ++i) {
        SequenceState &seq = active_[i];
        if (seq.id != id)
            continue;
        MSQ_ASSERT(pledgedPages_ >= seq.pagesPledged,
                   "admission pledge accounting out of balance");
        pledgedPages_ -= seq.pagesPledged;
        // Dropping a claimer before it published leaves its followers
        // stalled; releasing the claim lets resolveWaiters promote one
        // of them next step.
        if (seq.prefixClaimer)
            unclaim(seq.prefixKey);
        active_.erase(active_.begin() + static_cast<ptrdiff_t>(i));
        return true;
    }
    return false;
}

DecodeReport
DecodeEngine::run()
{
    DecodeReport report;
    const PrefixCacheStats cache0 =
        prefixCache_ != nullptr ? prefixCache_->stats() : PrefixCacheStats();
    const double t0 = nowMs();
    while (!waiting_.empty() || !active_.empty())
        step(report);
    report.wallMs = nowMs() - t0;
    report.kvArenaPeakBytes = arena_->peakBytesInUse();
    if (prefixCache_ != nullptr) {
        const PrefixCacheStats cache1 = prefixCache_->stats();
        report.prefixHits = cache1.hits - cache0.hits;
        report.prefixMisses = cache1.misses - cache0.misses;
        report.prefixInserts = cache1.inserts - cache0.inserts;
        report.prefixEvictions = cache1.evictions - cache0.evictions;
    }
    if (report.decodeSteps > 0)
        report.meanActiveSeqs /= static_cast<double>(report.decodeSteps);
    if (report.prefillMs > 0.0)
        report.prefillTokensPerSec =
            static_cast<double>(report.prefillTokens) /
            (report.prefillMs / 1e3);
    if (report.decodeMs > 0.0)
        report.decodeTokensPerSec =
            static_cast<double>(report.decodeStepTokens) /
            (report.decodeMs / 1e3);
    if (report.wallMs > 0.0)
        report.generatedTokensPerSec =
            static_cast<double>(report.generatedTokens) /
            (report.wallMs / 1e3);
    return report;
}

} // namespace msq
