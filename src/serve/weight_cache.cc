#include "serve/weight_cache.h"

#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>

#include "common/logging.h"
#include "common/parallel.h"
#include "core/microscopiq.h"
#include "io/msq_file.h"
#include "model/calib_gen.h"
#include "model/weight_gen.h"
#include "quant/hessian.h"

namespace msq {

namespace {

std::map<std::string, PackedModelPtr> packed_cache;

/** Guards packed_cache; builds run outside the lock. */
std::mutex packed_mutex;

/** Every input that changes the packed bytes goes into the key: the
 *  model identity, the full quantization config (configKey covers every
 *  MsqConfig field), and the calibration budget. */
std::string
cacheKey(const ModelProfile &model, const MsqConfig &config,
         size_t calib_tokens)
{
    return model.name + "|" + configKey(config) + "|c" +
           std::to_string(calib_tokens);
}

/** Decode plans and fill the derived fields of an assembled model. */
void
finalizePackedModel(PackedModel &model)
{
    model.plans.clear();
    model.plans.reserve(model.layers.size());
    model.termsPerToken = 0;
    double ebw_acc = 0.0;
    double params_acc = 0.0;
    for (const PackedLayer &layer : model.layers) {
        model.plans.emplace_back(layer);
        model.termsPerToken += model.plans.back().termCount();
        const double params =
            static_cast<double>(layer.rows() * layer.cols());
        ebw_acc += layer.paperEbw() * params;
        params_acc += params;
    }
    model.meanEbw = ebw_acc / params_acc;
}

/**
 * Disk tier lookup: load the container and verify its embedded identity
 * against the requested deployment. Any failure (missing file, corrupt
 * container, mismatched identity or shapes) is a miss.
 */
bool
loadFromDisk(const std::string &path, const ModelProfile &model,
             const MsqConfig &config, size_t calib_tokens,
             PackedModel &out)
{
    MsqModelFile file;
    const IoResult res = loadModelVerified(path, model.name, config,
                                           calib_tokens,
                                           profileLayerIds(model), file);
    if (!res) {
        if (res.code != IoCode::FileError) // absent file is a silent miss
            warn("weight cache: discarding " + path + " (" +
                 ioCodeName(res.code) + ": " + res.message +
                 "); re-quantizing");
        return false;
    }
    out.layers = std::move(file.layers);
    return true;
}

/** Best-effort container write (atomic, and through the view-based
 *  save — the just-built layers must not be duplicated just to be
 *  written; persistence must never fail a deployment). */
void
saveToDisk(const std::string &path, const ModelProfile &model,
           const MsqConfig &config, size_t calib_tokens,
           const PackedModel &built)
{
    std::vector<std::string> names;
    std::vector<const PackedLayer *> layers;
    names.reserve(model.layers.size());
    layers.reserve(built.layers.size());
    for (const LayerSpec &spec : model.layers)
        names.push_back(spec.name);
    for (const PackedLayer &layer : built.layers)
        layers.push_back(&layer);

    const IoResult res = saveModelAtomic(path, model.name, config,
                                         calib_tokens, names, layers);
    if (!res)
        warn("weight cache: cannot persist " + path + " (" + res.message +
             ")");
}

} // namespace

std::string
packedModelCacheFile(const ModelProfile &model, const MsqConfig &config,
                     size_t calib_tokens)
{
    return containerFileName(model.name,
                             cacheKey(model, config, calib_tokens));
}

PackedModelPtr
getPackedModel(const ModelProfile &model, const MsqConfig &config,
               size_t calib_tokens, const std::string &cache_dir)
{
    MSQ_ASSERT(PackedExecPlan::executable(config),
               "deployment config is not packed-executable");
    MSQ_ASSERT(!model.layers.empty(), "model has no layers");
    const std::string key = cacheKey(model, config, calib_tokens);
    {
        std::lock_guard<std::mutex> lock(packed_mutex);
        auto it = packed_cache.find(key);
        if (it != packed_cache.end())
            return it->second;
    }

    const std::string container_path =
        cache_dir.empty()
            ? ""
            : cache_dir + "/" +
                  packedModelCacheFile(model, config, calib_tokens);

    const auto t0 = std::chrono::steady_clock::now();
    auto built = std::make_shared<PackedModel>();
    built->model = model.name;
    built->config = config;

    if (!container_path.empty() &&
        loadFromDisk(container_path, model, config, calib_tokens, *built)) {
        built->source = "disk";
    } else {
        built->source = "quantize";
        built->layers.resize(model.layers.size());

        // Same per-layer independence argument as evaluateMethodOnModel:
        // weights and calibration come from per-layer RNG streams, each
        // index writes only its own slot, so the packed bytes are
        // bit-identical for any thread count.
        parallelFor(0, model.layers.size(), [&](size_t li) {
            const Matrix w = generateLayerWeights(model, li);
            Matrix calib;
            if (config.hessianCompensation) {
                const size_t tokens =
                    std::max(calib_tokens, 4 * model.layers[li].k);
                calib = generateCalibration(model, li, tokens);
            }
            MicroScopiQQuantizer quantizer(config);
            built->layers[li] = quantizer.quantizePacked(w, calib);
        });
        clearHessianCache();

        if (!container_path.empty())
            saveToDisk(container_path, model, config, calib_tokens, *built);
    }

    finalizePackedModel(*built);
    built->buildMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();

    std::lock_guard<std::mutex> lock(packed_mutex);
    auto [it, inserted] = packed_cache.emplace(key, built);
    (void)inserted;  // a racing build won: hand out the cached copy
    return it->second;
}

void
clearPackedModelCache()
{
    std::lock_guard<std::mutex> lock(packed_mutex);
    packed_cache.clear();
}

size_t
packedModelCacheSize()
{
    std::lock_guard<std::mutex> lock(packed_mutex);
    return packed_cache.size();
}

} // namespace msq
