#include "serve/weight_cache.h"

#include <cstdio>
#include <list>
#include <map>
#include <utility>

#include "common/logging.h"
#include "common/mutex.h"
#include "common/parallel.h"
#include "core/microscopiq.h"
#include "io/msq_file.h"
#include "model/calib_gen.h"
#include "model/weight_gen.h"
#include "quant/hessian.h"
#include "serve/clock.h"

namespace msq {

namespace {

/** Guards packed_cache; builds run outside the lock. */
Mutex packed_mutex;

std::map<std::string, PackedModelPtr> packed_cache
    MSQ_GUARDED_BY(packed_mutex);

/** Every input that changes the packed bytes goes into the key: the
 *  model identity, the full quantization config (configKey covers every
 *  MsqConfig field), and the calibration budget. */
std::string
cacheKey(const ModelProfile &model, const MsqConfig &config,
         size_t calib_tokens)
{
    return model.name + "|" + configKey(config) + "|c" +
           std::to_string(calib_tokens);
}

/** Decode plans and fill the derived fields of an assembled model. */
void
finalizePackedModel(PackedModel &model)
{
    const uint64_t t0 = steadyNanos();
    model.plans.clear();
    model.plans.reserve(model.layers.size());
    model.termsPerToken = 0;
    double ebw_acc = 0.0;
    double params_acc = 0.0;
    for (const PackedLayer &layer : model.layers) {
        model.plans.push_back(getExecPlan(layer));
        model.termsPerToken += model.plans.back()->termCount();
        const double params =
            static_cast<double>(layer.rows() * layer.cols());
        ebw_acc += layer.paperEbw() * params;
        params_acc += params;
    }
    model.meanEbw = ebw_acc / params_acc;
    model.planMs = elapsedMs(t0);
}

/**
 * Disk tier lookup: load the container and verify its embedded identity
 * against the requested deployment. Any failure (missing file, corrupt
 * container, mismatched identity or shapes) is a miss.
 */
bool
loadFromDisk(const std::string &path, const ModelProfile &model,
             const MsqConfig &config, size_t calib_tokens,
             PackedModel &out)
{
    MsqModelFile file;
    const IoResult res = loadModelVerified(path, model.name, config,
                                           calib_tokens,
                                           profileLayerIds(model), file);
    if (!res) {
        if (res.code != IoCode::FileError) // absent file is a silent miss
            warn("weight cache: discarding " + path + " (" +
                 ioCodeName(res.code) + ": " + res.message +
                 "); re-quantizing");
        return false;
    }
    out.layers = std::move(file.layers);
    return true;
}

/** Best-effort container write (atomic, and through the view-based
 *  save — the just-built layers must not be duplicated just to be
 *  written; persistence must never fail a deployment). */
void
saveToDisk(const std::string &path, const ModelProfile &model,
           const MsqConfig &config, size_t calib_tokens,
           const PackedModel &built)
{
    std::vector<std::string> names;
    std::vector<const PackedLayer *> layers;
    names.reserve(model.layers.size());
    layers.reserve(built.layers.size());
    for (const LayerSpec &spec : model.layers)
        names.push_back(spec.name);
    for (const PackedLayer &layer : built.layers)
        layers.push_back(&layer);

    const IoResult res = saveModelAtomic(path, model.name, config,
                                         calib_tokens, names, layers);
    if (!res)
        warn("weight cache: cannot persist " + path + " (" + res.message +
             ")");
}

} // namespace

std::string
packedModelCacheFile(const ModelProfile &model, const MsqConfig &config,
                     size_t calib_tokens)
{
    return containerFileName(model.name,
                             cacheKey(model, config, calib_tokens));
}

PackedModelPtr
getPackedModel(const ModelProfile &model, const MsqConfig &config,
               size_t calib_tokens, const std::string &cache_dir)
{
    MSQ_ASSERT(PackedExecPlan::executable(config),
               "deployment config is not packed-executable");
    MSQ_ASSERT(!model.layers.empty(), "model has no layers");
    const std::string key = cacheKey(model, config, calib_tokens);
    {
        MutexLock lock(packed_mutex);
        auto it = packed_cache.find(key);
        if (it != packed_cache.end())
            return it->second;
    }

    const std::string container_path =
        cache_dir.empty()
            ? ""
            : cache_dir + "/" +
                  packedModelCacheFile(model, config, calib_tokens);

    const uint64_t t0 = steadyNanos();
    auto built = std::make_shared<PackedModel>();
    built->model = model.name;
    built->config = config;

    if (!container_path.empty() &&
        loadFromDisk(container_path, model, config, calib_tokens, *built)) {
        built->source = "disk";
    } else {
        built->source = "quantize";
        built->layers.resize(model.layers.size());

        // Same per-layer independence argument as evaluateMethodOnModel:
        // weights and calibration come from per-layer RNG streams, each
        // index writes only its own slot, so the packed bytes are
        // bit-identical for any thread count.
        parallelFor(0, model.layers.size(), [&](size_t li) {
            const Matrix w = generateLayerWeights(model, li);
            Matrix calib;
            if (config.hessianCompensation) {
                const size_t tokens =
                    std::max(calib_tokens, 4 * model.layers[li].k);
                calib = generateCalibration(model, li, tokens);
            }
            MicroScopiQQuantizer quantizer(config);
            built->layers[li] = quantizer.quantizePacked(w, calib);
        });
        clearHessianCache();

        if (!container_path.empty())
            saveToDisk(container_path, model, config, calib_tokens, *built);
    }

    // Plan decode is accounted separately (planMs): it is not part of
    // the quantize-vs-load trade the cold-start trajectory tracks, and
    // the plan cache may satisfy it without any work at all.
    built->buildMs = elapsedMs(t0);
    finalizePackedModel(*built);

    MutexLock lock(packed_mutex);
    auto [it, inserted] = packed_cache.emplace(key, built);
    (void)inserted;  // a racing build won: hand out the cached copy
    return it->second;
}

namespace {

/** 128-bit content fingerprint of everything a PackedExecPlan decodes. */
struct PlanKey
{
    uint64_t lo = 0;
    uint64_t hi = 0;

    bool operator<(const PlanKey &o) const
    {
        return lo != o.lo ? lo < o.lo : hi < o.hi;
    }
};

/** Two independently seeded FNV-1a streams over the same bytes. */
struct PlanHasher
{
    uint64_t a = 14695981039346656037ull;
    uint64_t b = 0x9e3779b97f4a7c15ull;

    void bytes(const void *data, size_t n)
    {
        const auto *p = static_cast<const uint8_t *>(data);
        for (size_t i = 0; i < n; ++i) {
            a = (a ^ p[i]) * 1099511628211ull;
            b = (b ^ (p[i] + 0x9e37u)) * 0x100000001b3ull;
        }
    }
    void value(uint64_t v) { bytes(&v, sizeof(v)); }
};

PlanKey
planKey(const PackedLayer &layer)
{
    PlanHasher h;
    const std::string cfg = configKey(layer.config());
    h.bytes(cfg.data(), cfg.size());
    h.value(layer.rows());
    h.value(layer.cols());
    for (size_t r = 0; r < layer.rows(); ++r) {
        h.bytes(layer.codeRow(r), layer.cols());
        h.bytes(layer.kindRow(r), layer.cols() * sizeof(SlotKind));
        h.bytes(layer.isfRow(r), layer.macroPerRow());
        const MicroBlockMeta *micro = layer.microRow(r);
        for (size_t ub = 0; ub < layer.microPerRow(); ++ub) {
            const MicroBlockMeta &meta = micro[ub];
            h.value(meta.hasOutliers ? (0x100u | meta.mxScale) : 0u);
            for (const PermEntry &entry : meta.perm)
                h.value((uint64_t{entry.upperLoc} << 8) | entry.lowerLoc);
        }
    }
    return {h.a, h.b};
}

/** Guards the plan LRU below; plan decodes run outside the lock. */
Mutex plan_mutex;

/** LRU plan cache: map into an access-ordered list. */
std::list<std::pair<PlanKey, PackedExecPlanPtr>> plan_lru
    MSQ_GUARDED_BY(plan_mutex);
std::map<PlanKey,
         std::list<std::pair<PlanKey, PackedExecPlanPtr>>::iterator>
    plan_cache MSQ_GUARDED_BY(plan_mutex);
size_t plan_capacity MSQ_GUARDED_BY(plan_mutex) = 64;

/** Drop least-recently-used plans until the capacity holds. */
void
evictPlansOverCapacityLocked() MSQ_REQUIRES(plan_mutex)
{
    while (plan_cache.size() > plan_capacity) {
        plan_cache.erase(plan_lru.back().first);
        plan_lru.pop_back();
    }
}

} // namespace

PackedExecPlanPtr
getExecPlan(const PackedLayer &layer)
{
    const PlanKey key = planKey(layer);
    {
        MutexLock lock(plan_mutex);
        auto it = plan_cache.find(key);
        if (it != plan_cache.end()) {
            plan_lru.splice(plan_lru.begin(), plan_lru, it->second);
            return it->second->second;
        }
    }

    // Decode outside the lock: plans of distinct layers build
    // concurrently; on a racing miss the first insert wins.
    auto plan = std::make_shared<const PackedExecPlan>(layer);

    MutexLock lock(plan_mutex);
    auto it = plan_cache.find(key);
    if (it != plan_cache.end()) {
        plan_lru.splice(plan_lru.begin(), plan_lru, it->second);
        return it->second->second;
    }
    if (plan_capacity == 0)
        return plan;
    plan_lru.emplace_front(key, plan);
    plan_cache.emplace(key, plan_lru.begin());
    evictPlansOverCapacityLocked();
    return plan;
}

void
clearExecPlanCache()
{
    MutexLock lock(plan_mutex);
    plan_cache.clear();
    plan_lru.clear();
}

size_t
execPlanCacheSize()
{
    MutexLock lock(plan_mutex);
    return plan_cache.size();
}

void
setExecPlanCacheCapacity(size_t capacity)
{
    MutexLock lock(plan_mutex);
    plan_capacity = capacity;
    evictPlansOverCapacityLocked();
}

void
clearPackedModelCache()
{
    {
        MutexLock lock(packed_mutex);
        packed_cache.clear();
    }
    // Dropping deployments without their decoded plans would leave the
    // plan LRU pinning the bulk of the memory; live engines keep their
    // plans alive through the PackedModel shared_ptrs regardless.
    clearExecPlanCache();
}

size_t
packedModelCacheSize()
{
    MutexLock lock(packed_mutex);
    return packed_cache.size();
}

} // namespace msq
