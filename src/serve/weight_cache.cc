#include "serve/weight_cache.h"

#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>

#include "common/logging.h"
#include "common/parallel.h"
#include "core/microscopiq.h"
#include "model/calib_gen.h"
#include "model/weight_gen.h"
#include "quant/hessian.h"

namespace msq {

namespace {

std::map<std::string, PackedModelPtr> packed_cache;

/** Guards packed_cache; builds run outside the lock. */
std::mutex packed_mutex;

/** Every config field that changes the packed bytes goes into the key. */
std::string
cacheKey(const ModelProfile &model, const MsqConfig &config,
         size_t calib_tokens)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "|b%u|M%zu|u%zu|rB%zu|d%.6g|m%d|p%d%d%d|c%zu",
                  config.inlierBits, config.macroBlock, config.microBlock,
                  config.rowBlock, config.dampRel,
                  static_cast<int>(config.outlierMode),
                  config.prescaleOutliers ? 1 : 0,
                  config.pruneAndRedistribute ? 1 : 0,
                  config.hessianCompensation ? 1 : 0, calib_tokens);
    return model.name + buf;
}

} // namespace

PackedModelPtr
getPackedModel(const ModelProfile &model, const MsqConfig &config,
               size_t calib_tokens)
{
    MSQ_ASSERT(PackedExecPlan::executable(config),
               "deployment config is not packed-executable");
    MSQ_ASSERT(!model.layers.empty(), "model has no layers");
    const std::string key = cacheKey(model, config, calib_tokens);
    {
        std::lock_guard<std::mutex> lock(packed_mutex);
        auto it = packed_cache.find(key);
        if (it != packed_cache.end())
            return it->second;
    }

    const auto t0 = std::chrono::steady_clock::now();
    auto built = std::make_shared<PackedModel>();
    built->model = model.name;
    built->config = config;
    built->layers.resize(model.layers.size());

    // Same per-layer independence argument as evaluateMethodOnModel:
    // weights and calibration come from per-layer RNG streams, each
    // index writes only its own slot, so the packed bytes are
    // bit-identical for any thread count.
    parallelFor(0, model.layers.size(), [&](size_t li) {
        const Matrix w = generateLayerWeights(model, li);
        Matrix calib;
        if (config.hessianCompensation) {
            const size_t tokens =
                std::max(calib_tokens, 4 * model.layers[li].k);
            calib = generateCalibration(model, li, tokens);
        }
        MicroScopiQQuantizer quantizer(config);
        built->layers[li] = quantizer.quantizePacked(w, calib);
    });
    clearHessianCache();

    built->plans.reserve(built->layers.size());
    double ebw_acc = 0.0;
    double params_acc = 0.0;
    for (const PackedLayer &layer : built->layers) {
        built->plans.emplace_back(layer);
        built->termsPerToken += built->plans.back().termCount();
        const double params =
            static_cast<double>(layer.rows() * layer.cols());
        ebw_acc += layer.paperEbw() * params;
        params_acc += params;
    }
    built->meanEbw = ebw_acc / params_acc;
    built->buildMs =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();

    std::lock_guard<std::mutex> lock(packed_mutex);
    auto [it, inserted] = packed_cache.emplace(key, built);
    (void)inserted;  // a racing build won: hand out the cached copy
    return it->second;
}

void
clearPackedModelCache()
{
    std::lock_guard<std::mutex> lock(packed_mutex);
    packed_cache.clear();
}

size_t
packedModelCacheSize()
{
    std::lock_guard<std::mutex> lock(packed_mutex);
    return packed_cache.size();
}

} // namespace msq
