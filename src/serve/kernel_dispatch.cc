#include "serve/kernel_dispatch.h"

#include <cstring>

#include "common/logging.h"
#include "common/simd_target.h"

namespace msq {

namespace {

/** Token sub-tile width of the blocked micro-kernel (the full-width
 *  fast case; must match serve/packed_exec.cc kTokenTile). */
constexpr size_t kFullTile = 32;

// --------------------------------------------------------------------
// Scalar path — the oracle. This is the PR-4 loop verbatim (the
// compiler still autovectorizes it at the build's baseline ISA, which
// is exactly the "autovectorized scalar" baseline the per-path bench
// records compare the hand-written variants against).

void
accumulateRunScalar(const KernelBlockEntry *entries, const uint32_t *erow,
                    size_t k0, size_t k1, const int16_t *iact, size_t pk0,
                    size_t nj, int32_t *acc)
{
    if (nj == kFullTile) {
        // Full-width sub-tiles (every tile but a batch's ragged tail):
        // the constant trip count unrolls into straight-line code.
        for (size_t kk = k0; kk < k1; ++kk) {
            const int16_t *aw = iact + (kk - pk0) * kFullTile;
            for (uint32_t e = erow[kk]; e < erow[kk + 1]; ++e) {
                const int32_t wv = entries[e].w;
                int32_t *arow = acc + entries[e].col * kFullTile;
                for (size_t j = 0; j < kFullTile; ++j)
                    arow[j] += wv * aw[j];
            }
        }
        return;
    }
    if (nj == kFullTile / 2) {
        // Half-width tiles: ragged batch tails and latency-tuned
        // configs with tileTokens = 16.
        constexpr size_t half = kFullTile / 2;
        for (size_t kk = k0; kk < k1; ++kk) {
            const int16_t *aw = iact + (kk - pk0) * half;
            for (uint32_t e = erow[kk]; e < erow[kk + 1]; ++e) {
                const int32_t wv = entries[e].w;
                int32_t *arow = acc + entries[e].col * half;
                for (size_t j = 0; j < half; ++j)
                    arow[j] += wv * aw[j];
            }
        }
        return;
    }
    for (size_t kk = k0; kk < k1; ++kk) {
        const int16_t *aw = iact + (kk - pk0) * nj;
        for (uint32_t e = erow[kk]; e < erow[kk + 1]; ++e) {
            const int32_t wv = entries[e].w;
            int32_t *arow = acc + entries[e].col * nj;
            for (size_t j = 0; j < nj; ++j)
                arow[j] += wv * aw[j];
        }
    }
}

#if MSQ_SIMD_X86

// --------------------------------------------------------------------
// x86 paths. Dataflow: output-stationary over token lanes, row-
// stationary over the activation operand — the run's iAct row is
// loaded (and for AVX2 widened to int32 lanes) ONCE per k row and
// reused by every CSR entry of that row, so the per-entry loop touches
// only the entry word and the entry column's int32 accumulator row.
// The broadcast operand is the sparse CSR stream, the vector operand
// the dense activation row; no gather/scatter ever touches the inner
// loop (the MiCo-style choice).
//
// Bit-identity: each token lane j computes exactly
// `acc[col][j] += (int32)w * (int32)aw[j]` — the same int32 operation
// per element as the scalar oracle, just several lanes per
// instruction. `vpmulld` keeps the low 32 bits of the 64-bit product,
// which IS the exact product because both operands came from int16;
// lane addition cannot overflow under the tile admission bound
// (accel/int_dequant.h). Lanes never interact, so the fold is the
// scalar loop's bytes exactly whatever the vector width.

static_assert(sizeof(KernelBlockEntry) == 4,
              "entry broadcast below reloads the packed 4-byte entry");

/** Broadcasts an entry's weight, sign-extended to every int32 lane:
 *  one 4-byte broadcast of the whole {col, w} word, then an arithmetic
 *  shift drops the low-half column (x86 is little-endian, so each
 *  32-bit lane is col | w << 16). Avoids the scalar
 *  sign-extend + GPR->vector move of a field-wise `set1`. */
MSQ_TARGET_AVX2 inline __m256i
avx2BroadcastW32(const KernelBlockEntry *e)
{
    int32_t word;
    std::memcpy(&word, e, sizeof(word));
    return _mm256_srai_epi32(_mm256_set1_epi32(word), 16);
}

/** One 8-token AVX2 step on a pre-widened activation vector. */
MSQ_TARGET_AVX2 inline void
avx2MacStep(const __m256i wv, const __m256i a32, int32_t *arow)
{
    __m256i *out = reinterpret_cast<__m256i *>(arow);
    _mm256_storeu_si256(
        out, _mm256_add_epi32(_mm256_loadu_si256(out),
                              _mm256_mullo_epi32(wv, a32)));
}

/** Widens 8 staged int16 activations to int32 lanes. */
MSQ_TARGET_AVX2 inline __m256i
avx2Widen8(const int16_t *aw)
{
    return _mm256_cvtepi16_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(aw)));
}

MSQ_TARGET_AVX2 void
accumulateRunAvx2(const KernelBlockEntry *entries, const uint32_t *erow,
                  size_t k0, size_t k1, const int16_t *iact, size_t pk0,
                  size_t nj, int32_t *acc)
{
    if (nj == kFullTile) {
        for (size_t kk = k0; kk < k1; ++kk) {
            const uint32_t e0 = erow[kk];
            const uint32_t e1 = erow[kk + 1];
            if (e0 == e1)
                continue;
            const int16_t *aw = iact + (kk - pk0) * kFullTile;
            const __m256i a0 = avx2Widen8(aw);
            const __m256i a1 = avx2Widen8(aw + 8);
            const __m256i a2 = avx2Widen8(aw + 16);
            const __m256i a3 = avx2Widen8(aw + 24);
            for (uint32_t e = e0; e < e1; ++e) {
                const __m256i wv = avx2BroadcastW32(entries + e);
                int32_t *arow = acc + entries[e].col * kFullTile;
                avx2MacStep(wv, a0, arow);
                avx2MacStep(wv, a1, arow + 8);
                avx2MacStep(wv, a2, arow + 16);
                avx2MacStep(wv, a3, arow + 24);
            }
        }
        return;
    }
    if (nj == kFullTile / 2) {
        constexpr size_t half = kFullTile / 2;
        for (size_t kk = k0; kk < k1; ++kk) {
            const uint32_t e0 = erow[kk];
            const uint32_t e1 = erow[kk + 1];
            if (e0 == e1)
                continue;
            const int16_t *aw = iact + (kk - pk0) * half;
            const __m256i a0 = avx2Widen8(aw);
            const __m256i a1 = avx2Widen8(aw + 8);
            for (uint32_t e = e0; e < e1; ++e) {
                const __m256i wv = avx2BroadcastW32(entries + e);
                int32_t *arow = acc + entries[e].col * half;
                avx2MacStep(wv, a0, arow);
                avx2MacStep(wv, a1, arow + 8);
            }
        }
        return;
    }
    // Ragged token tails (< 16 tokens) carry too few lanes to pay for
    // vector setup; the scalar oracle is trivially bit-identical.
    accumulateRunScalar(entries, erow, k0, k1, iact, pk0, nj, acc);
}

/** One 8-token SSE2 step: arow[j..j+7] += w * a. The exact 32-bit
 *  product of two int16 lanes is recombined from `_mm_mullo_epi16`
 *  (low halves) and `_mm_mulhi_epi16` (high halves); the unpacks
 *  interleave the halves back into token order. */
inline void
sse2MacStep(const __m128i wv, const __m128i a, int32_t *arow)
{
    const __m128i lo = _mm_mullo_epi16(wv, a);
    const __m128i hi = _mm_mulhi_epi16(wv, a);
    const __m128i p0 = _mm_unpacklo_epi16(lo, hi);
    const __m128i p1 = _mm_unpackhi_epi16(lo, hi);
    __m128i *out = reinterpret_cast<__m128i *>(arow);
    _mm_storeu_si128(out, _mm_add_epi32(_mm_loadu_si128(out), p0));
    _mm_storeu_si128(out + 1,
                     _mm_add_epi32(_mm_loadu_si128(out + 1), p1));
}

inline __m128i
sse2Load8(const int16_t *aw)
{
    return _mm_loadu_si128(reinterpret_cast<const __m128i *>(aw));
}

void
accumulateRunSse2(const KernelBlockEntry *entries, const uint32_t *erow,
                  size_t k0, size_t k1, const int16_t *iact, size_t pk0,
                  size_t nj, int32_t *acc)
{
    if (nj == kFullTile) {
        for (size_t kk = k0; kk < k1; ++kk) {
            const uint32_t e0 = erow[kk];
            const uint32_t e1 = erow[kk + 1];
            if (e0 == e1)
                continue;
            const int16_t *aw = iact + (kk - pk0) * kFullTile;
            const __m128i a0 = sse2Load8(aw);
            const __m128i a1 = sse2Load8(aw + 8);
            const __m128i a2 = sse2Load8(aw + 16);
            const __m128i a3 = sse2Load8(aw + 24);
            for (uint32_t e = e0; e < e1; ++e) {
                const __m128i wv = _mm_set1_epi16(entries[e].w);
                int32_t *arow = acc + entries[e].col * kFullTile;
                sse2MacStep(wv, a0, arow);
                sse2MacStep(wv, a1, arow + 8);
                sse2MacStep(wv, a2, arow + 16);
                sse2MacStep(wv, a3, arow + 24);
            }
        }
        return;
    }
    if (nj == kFullTile / 2) {
        constexpr size_t half = kFullTile / 2;
        for (size_t kk = k0; kk < k1; ++kk) {
            const uint32_t e0 = erow[kk];
            const uint32_t e1 = erow[kk + 1];
            if (e0 == e1)
                continue;
            const int16_t *aw = iact + (kk - pk0) * half;
            const __m128i a0 = sse2Load8(aw);
            const __m128i a1 = sse2Load8(aw + 8);
            for (uint32_t e = e0; e < e1; ++e) {
                const __m128i wv = _mm_set1_epi16(entries[e].w);
                int32_t *arow = acc + entries[e].col * half;
                sse2MacStep(wv, a0, arow);
                sse2MacStep(wv, a1, arow + 8);
            }
        }
        return;
    }
    accumulateRunScalar(entries, erow, k0, k1, iact, pk0, nj, acc);
}

#endif // MSQ_SIMD_X86

#if MSQ_SIMD_NEON

/** One 8-token NEON step: the widening `vmlal_s16` multiply-accumulate
 *  is the exact int16 x int16 -> int32 lane operation directly. */
inline void
neonMacStep(const int16x4_t wv, const int16x8_t a, int32_t *arow)
{
    int32x4_t s0 = vld1q_s32(arow);
    int32x4_t s1 = vld1q_s32(arow + 4);
    s0 = vmlal_s16(s0, vget_low_s16(a), wv);
    s1 = vmlal_s16(s1, vget_high_s16(a), wv);
    vst1q_s32(arow, s0);
    vst1q_s32(arow + 4, s1);
}

void
accumulateRunNeon(const KernelBlockEntry *entries, const uint32_t *erow,
                  size_t k0, size_t k1, const int16_t *iact, size_t pk0,
                  size_t nj, int32_t *acc)
{
    // Same row-stationary dataflow as the x86 paths: activation
    // vectors are loaded once per k row and reused by every entry.
    if (nj == kFullTile) {
        for (size_t kk = k0; kk < k1; ++kk) {
            const uint32_t e0 = erow[kk];
            const uint32_t e1 = erow[kk + 1];
            if (e0 == e1)
                continue;
            const int16_t *aw = iact + (kk - pk0) * kFullTile;
            const int16x8_t a0 = vld1q_s16(aw);
            const int16x8_t a1 = vld1q_s16(aw + 8);
            const int16x8_t a2 = vld1q_s16(aw + 16);
            const int16x8_t a3 = vld1q_s16(aw + 24);
            for (uint32_t e = e0; e < e1; ++e) {
                const int16x4_t wv = vdup_n_s16(entries[e].w);
                int32_t *arow = acc + entries[e].col * kFullTile;
                neonMacStep(wv, a0, arow);
                neonMacStep(wv, a1, arow + 8);
                neonMacStep(wv, a2, arow + 16);
                neonMacStep(wv, a3, arow + 24);
            }
        }
        return;
    }
    if (nj == kFullTile / 2) {
        constexpr size_t half = kFullTile / 2;
        for (size_t kk = k0; kk < k1; ++kk) {
            const uint32_t e0 = erow[kk];
            const uint32_t e1 = erow[kk + 1];
            if (e0 == e1)
                continue;
            const int16_t *aw = iact + (kk - pk0) * half;
            const int16x8_t a0 = vld1q_s16(aw);
            const int16x8_t a1 = vld1q_s16(aw + 8);
            for (uint32_t e = e0; e < e1; ++e) {
                const int16x4_t wv = vdup_n_s16(entries[e].w);
                int32_t *arow = acc + entries[e].col * half;
                neonMacStep(wv, a0, arow);
                neonMacStep(wv, a1, arow + 8);
            }
        }
        return;
    }
    accumulateRunScalar(entries, erow, k0, k1, iact, pk0, nj, acc);
}

#endif // MSQ_SIMD_NEON

} // namespace

const KernelOps &
kernelOpsFor(KernelPath path)
{
    static const KernelOps scalar_ops{KernelPath::Scalar,
                                      &accumulateRunScalar};
#if MSQ_SIMD_X86
    static const KernelOps sse2_ops{KernelPath::Sse2,
                                    &accumulateRunSse2};
    static const KernelOps avx2_ops{KernelPath::Avx2,
                                    &accumulateRunAvx2};
    if (path == KernelPath::Sse2)
        return sse2_ops;
    if (path == KernelPath::Avx2)
        return avx2_ops;
#endif
#if MSQ_SIMD_NEON
    static const KernelOps neon_ops{KernelPath::Neon,
                                    &accumulateRunNeon};
    if (path == KernelPath::Neon)
        return neon_ops;
#endif
    MSQ_ASSERT(path == KernelPath::Scalar,
               "requested kernel path is not compiled into this build");
    return scalar_ops;
}

} // namespace msq
