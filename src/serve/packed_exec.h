/**
 * @file
 * Packed-execution GEMM: computes Y = W^T X straight from a
 * PackedLayer's bb-bit codes, inlier scale factors, and outlier
 * metadata — the Fig. 5 bit stream is the executable artifact; a dense
 * dequantized weight matrix is never materialized.
 *
 * The plan decodes each row of codes once, at weight-load time, into
 * exactly what a weight-stationary PE row holds in its registers:
 *
 *  - the sign-extended inlier codes (int8, 0 at pruned and outlier
 *    slots), multiplied per token by the iAct exactly as the
 *    multi-precision PE does (peInlierProduct in accel/int_dequant.h
 *    proves the equivalence),
 *  - the per-macro-block power-of-two inlier scale 2^Isf,
 *  - per outlier, the ReCoN-merged hidden-bit mantissa +/-(2^M + m)
 *    and its power-of-two exponent Osf - M.
 *
 * Every output element is a sum of integer products scaled by powers of
 * two. Each such term is exactly representable in a double, so the
 * packed-execution outputs are bit-identical to the reference
 * `dequantAll()` + float GEMM (see docs/DESIGN.md, "Packed execution");
 * tests/test_serve.cc enforces exact equality.
 *
 * Only configurations whose packed layer fully encodes the quantized
 * values are executable: the default MxFpShared mode with
 * prune-and-redistribute, and the no-outlier ablation. The coarse and
 * MX-INT outlier ablations keep their outliers outside the code plane,
 * so `executable()` reports false and callers must fall back to the
 * dequantized path.
 */

#ifndef MSQ_SERVE_PACKED_EXEC_H
#define MSQ_SERVE_PACKED_EXEC_H

#include <cstdint>
#include <vector>

#include "accel/acts.h"
#include "common/matrix.h"
#include "core/packed_tensor.h"
#include "model/pipeline.h"

namespace msq {

/** Weight-load-time decode of one PackedLayer, ready for execution. */
class PackedExecPlan
{
  public:
    /** Decode a packed layer. @pre executable(layer.config()) */
    explicit PackedExecPlan(const PackedLayer &layer);

    /** Whether a config's packed layout fully encodes its weights. */
    static bool executable(const MsqConfig &config);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    /** Nonzero weight terms — integer MACs per activation column. */
    size_t termCount() const { return termCount_; }

    /** Outliers decoded into merged terms. */
    size_t outlierCount() const { return outliers_.size(); }

    /**
     * Y = W^T X over real-valued activations X[k][n], bit-identical to
     * `layer.dequantAll().transposedMatmul(x)`. Output is cols() x n.
     */
    Matrix matmulT(const Matrix &x) const;

    /**
     * Column range [t0, t1) of matmulT, accumulated into `out` (which
     * must be cols() x x.cols(), zero in the range). Ranges over
     * disjoint columns may run concurrently; any partition produces the
     * same bytes as the full call.
     */
    void matmulTRange(const Matrix &x, size_t t0, size_t t1,
                      Matrix &out) const;

    /**
     * Integer-activation GEMM: Y = W^T X from quantized iActs, every
     * product an integer code x code multiply scaled by 2^(Isf + Asf)
     * (or Osf for merged outliers) — the serving hot path. Output is
     * cols() x tokens, bit-identical (as values) to the dequantized
     * reference; only signs of exact-zero outputs may differ.
     */
    Matrix gemm(const QuantizedActs &acts) const;

    /** Token range [t0, t1) of gemm, accumulated into `out`. */
    void gemmRange(const QuantizedActs &acts, size_t t0, size_t t1,
                   Matrix &out) const;

  private:
    /** One ReCoN-merged outlier: weight = mant * 2^exp = weightValue. */
    struct OutlierTerm
    {
        uint32_t col = 0;      ///< output column
        int32_t mant = 0;      ///< +/-(2^mbits + mantissa), never 0
        double scale = 1.0;    ///< 2^(Osf - mbits), exact
        double weight = 0.0;   ///< mant * scale (exact product)
    };

    size_t rows_ = 0;
    size_t cols_ = 0;
    size_t macroBlock_ = 0;
    size_t macroPerRow_ = 0;
    size_t termCount_ = 0;
    std::vector<int8_t> inlier_;       ///< rows x cols sign-extended codes
    std::vector<double> macroScale_;   ///< rows x macroPerRow: 2^Isf
    std::vector<OutlierTerm> outliers_;
    std::vector<uint32_t> outlierRow_; ///< CSR offsets, rows_ + 1 entries
};

/**
 * Packed-execution backend for `evaluateMethodOnModel` (set it on
 * `PipelineConfig::packedExec`): runs the layer through a
 * PackedExecPlan, or returns an empty matrix when the config is not
 * packed-executable so the pipeline falls back to the dequantized path.
 */
PackedExecBackend packedExecBackend();

} // namespace msq

#endif // MSQ_SERVE_PACKED_EXEC_H
