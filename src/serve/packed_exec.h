/**
 * @file
 * Packed-execution GEMM: computes Y = W^T X straight from a
 * PackedLayer's bb-bit codes, inlier scale factors, and outlier
 * metadata — the Fig. 5 bit stream is the executable artifact; a dense
 * dequantized weight matrix is never materialized.
 *
 * The plan decodes each layer once, at weight-load time, into two
 * representations:
 *
 *  - the *scalar* plane (sign-extended int8 inlier codes + per
 *    macro-block 2^Isf + a per-row outlier CSR), executed by
 *    `referenceGemm` / `matmulT`. This is the original per-term
 *    dataflow whose real-activation path is bit-identical to
 *    `dequantAll()` + float GEMM (see docs/DESIGN.md, "Packed
 *    execution"); it survives as the oracle the kernel tests and
 *    benchmarks diff against.
 *
 *  - the *blocked* integer plane executed by `gemm` / `gemmBlock`, a
 *    software mirror of the paper's PE dataflow (Fig. 6): the weight
 *    plane is cut into (k-panel x macro-block) tiles; within a tile
 *    every nonzero weight term — inlier code or ReCoN-merged outlier
 *    mantissa — is stored as a zero-free CSR entry whose value is
 *    pre-shifted by its exponent distance (Isf, or Osf - M for
 *    outliers) to the tile's minimum exponent (the shift-alignment
 *    ReCoN/PE scaling performs in hardware), so one micro-kernel
 *    accumulates code x iAct products in int32 and applies the
 *    combined power-of-two scale 2^(Isf + Asf) exactly ONCE per
 *    (tile, act-group, token) partial. Integer accumulation is
 *    rounding-free; an int32/int16 overflow-safety bound (the a-priori
 *    form is accel/int_dequant.h maxPanelShift; the build also checks
 *    the exact shifted magnitudes) is enforced per tile, and tiles
 *    whose exponent spread exceeds it fall back to the exact scalar
 *    path.
 *
 * Every partial is an integer times a power of two — exactly
 * representable in a double — and partials are folded into each output
 * element in one fixed hierarchical order (k-panels ascending, runs
 * ascending, then the panel's outliers), so blocked outputs are
 * bit-identical across any (column-block x token-tile) partition and
 * any thread count. Against the reference they agree to the last few
 * ulps (both paths sum exactly-representable terms, in different
 * orders); tests/test_packed_kernel.cc enforces both properties.
 *
 * Only configurations whose packed layer fully encodes the quantized
 * values are executable: the default MxFpShared mode with
 * prune-and-redistribute, and the no-outlier ablation. The coarse and
 * MX-INT outlier ablations keep their outliers outside the code plane,
 * so `executable()` reports false and callers must fall back to the
 * dequantized path.
 */

#ifndef MSQ_SERVE_PACKED_EXEC_H
#define MSQ_SERVE_PACKED_EXEC_H

#include <cstdint>
#include <vector>

#include "accel/acts.h"
#include "common/matrix.h"
#include "core/packed_tensor.h"
#include "model/pipeline.h"
#include "serve/kernel_dispatch.h"

namespace msq {

/** Weight-load-time decode of one PackedLayer, ready for execution. */
class PackedExecPlan
{
  public:
    /** Decode a packed layer. @pre executable(layer.config()) */
    explicit PackedExecPlan(const PackedLayer &layer);

    /** Whether a config's packed layout fully encodes its weights. */
    static bool executable(const MsqConfig &config);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    /** Macro-block width of the blocked plane (the natural column-tile
     *  grain for 2D work partitioning). */
    size_t macroBlock() const { return macroBlock_; }

    /** K-panel height of the blocked plane. */
    size_t panelRows() const { return panelK_; }

    /** Nonzero weight terms — integer MACs per activation column. */
    size_t termCount() const { return termCount_; }

    /** Outliers decoded into merged terms. */
    size_t outlierCount() const { return outliers_.size(); }

    /** Composition of the blocked plane, for tests and benchmarks. */
    struct BlockStats
    {
        size_t intTiles = 0;    ///< int32-accumulated (k-panel, MaB) tiles
        size_t scalarTiles = 0; ///< exponent spread above the int32 bound
        size_t zeroTiles = 0;   ///< all codes pruned/zero — skipped
    };
    const BlockStats &blockStats() const { return blockStats_; }

    /**
     * Y = W^T X over real-valued activations X[k][n], bit-identical to
     * `layer.dequantAll().transposedMatmul(x)`. Output is cols() x n.
     */
    Matrix matmulT(const Matrix &x) const;

    /**
     * Column range [t0, t1) of matmulT, accumulated into `out` (which
     * must be cols() x x.cols(), zero in the range). Ranges over
     * disjoint columns may run concurrently; any partition produces the
     * same bytes as the full call.
     */
    void matmulTRange(const Matrix &x, size_t t0, size_t t1,
                      Matrix &out) const;

    /**
     * Integer-activation GEMM through the blocked kernel — the serving
     * hot path. Output is cols() x tokens; equal to referenceGemm() up
     * to the last ulps of each element (both sum the same exact terms,
     * the blocked path in rounding-free int32 partials).
     */
    Matrix gemm(const QuantizedActs &acts) const;

    /** Token range [t0, t1) of gemm, accumulated into `out`. */
    void gemmRange(const QuantizedActs &acts, size_t t0, size_t t1,
                   Matrix &out) const;

    /**
     * Output tile [c0, c1) x [t0, t1) of gemm, accumulated into `out`
     * (cols() x acts.tokens(), zero in the tile). Every partition into
     * tiles — column ranges need not align to macro-blocks — produces
     * the same bytes as the full call, so disjoint tiles may run
     * concurrently; aligning c0/c1 to macroBlock() avoids recomputing
     * partials of straddled tiles.
     */
    void gemmBlock(const QuantizedActs &acts, size_t c0, size_t c1,
                   size_t t0, size_t t1, Matrix &out) const;

    /**
     * The original scalar packed-execution GEMM, kept as the oracle:
     * every code x iAct product multiplied out to double, one term at a
     * time in k-ascending order — bit-identical (as values) to the
     * `dequantAll()` + float reference; only signs of exact-zero
     * outputs may differ.
     */
    Matrix referenceGemm(const QuantizedActs &acts) const;

    /** Token range [t0, t1) of referenceGemm, accumulated into `out`. */
    void referenceGemmRange(const QuantizedActs &acts, size_t t0,
                            size_t t1, Matrix &out) const;

  private:
    /** One ReCoN-merged outlier: weight = mant * 2^exp = weightValue. */
    struct OutlierTerm
    {
        uint32_t col = 0;      ///< output column
        int32_t mant = 0;      ///< +/-(2^mbits + mantissa), never 0
        double scale = 1.0;    ///< 2^(Osf - mbits), exact
        double weight = 0.0;   ///< mant * scale (exact product)
    };

    /** Tile execution modes (one byte per (k-panel, MaB) tile). */
    enum class TileTag : uint8_t
    {
        Zero,   ///< no nonzero codes — contributes nothing, skipped
        Int,    ///< int32-accumulated entries, spread within the bound
        Scalar, ///< spread above maxPanelShift — exact per-term fallback
    };

    /** Number of k-panels: ceil(rows / panelK_). */
    size_t panelCount() const { return (rows_ + panelK_ - 1) / panelK_; }

    void buildBlockedPlane(const PackedLayer &layer);

    size_t rows_ = 0;
    size_t cols_ = 0;
    size_t macroBlock_ = 0;
    size_t macroPerRow_ = 0;
    size_t termCount_ = 0;

    // Scalar plane (reference oracle + real-activation path).
    std::vector<int8_t> inlier_;       ///< rows x cols sign-extended codes
    std::vector<double> macroScale_;   ///< rows x macroPerRow: 2^Isf
    std::vector<OutlierTerm> outliers_;
    std::vector<uint32_t> outlierRow_; ///< CSR offsets, rows_ + 1 entries

    // Blocked plane (serving hot path). Entries — inlier codes AND
    // merged outlier mantissas (KernelBlockEntry,
    // serve/kernel_dispatch.h; in Int tiles `w` is pre-shifted to the
    // tile's minimum exponent, in Scalar tiles it stays raw and the
    // per-entry exponent sideband applies at execution) — are stored
    // macro-block major: all of MaB mb's terms over every k, ordered by
    // (k, inliers before outliers), with `entryRow_[mb * (rows_ + 1) +
    // k]` delimiting row k's slice — one zero-free CSR per weight-plane
    // column stripe, so a (k-panel x MaB) micro-kernel streams a
    // contiguous range. The accumulation loop itself is dispatched
    // (activeKernelOps().accumulateRun): scalar oracle plus hand-
    // vectorized SSE2/AVX2/NEON variants, all byte-identical.
    size_t panelK_ = 128;              ///< k rows per panel
    std::vector<KernelBlockEntry> entries_;
    std::vector<int16_t> entryExp_;    ///< per entry: 2^exp weight scale
    std::vector<uint32_t> entryRow_;   ///< macroPerRow x (rows_+1)
    std::vector<int16_t> tileExp_;     ///< panels x macroPerRow: min exp
    std::vector<TileTag> tileTag_;     ///< panels x macroPerRow
    BlockStats blockStats_;
};

/**
 * One full packed GEMM fanned across the parallelFor pool with the
 * serving engine's 2D (column-block x token-tile) partition: token
 * tiles of `tileTokens` columns crossed with column blocks of
 * `tileCols` outputs (0 picks the column split automatically so even a
 * single narrow batch fills the pool; widths are rounded up to the
 * plan's macro-block). The kernel's fold order is tile-independent, so
 * the returned bytes are identical under every partition and thread
 * count. Shared by the batching engine (serve/engine.cc) and every
 * projection of the decode block forward (serve/decode.cc).
 */
Matrix packedGemmParallel(const PackedExecPlan &plan,
                          const QuantizedActs &acts, size_t tileTokens,
                          size_t tileCols = 0);

/**
 * Packed-execution backend for `evaluateMethodOnModel` (set it on
 * `PipelineConfig::packedExec`): runs the layer through a memoized
 * PackedExecPlan (serve/weight_cache.h getExecPlan — repeated
 * evaluations of one quantized layer decode it once), or returns an
 * empty matrix when the config is not packed-executable so the pipeline
 * falls back to the dequantized path.
 */
PackedExecBackend packedExecBackend();

} // namespace msq

#endif // MSQ_SERVE_PACKED_EXEC_H
