/**
 * @file
 * Packed-weight cache for the serving engine.
 *
 * Quantizing a model's layers (Hessian build, GPTQ sweep, packing) is
 * orders of magnitude more expensive than executing one request, so the
 * serving path must do it once per deployment, not per request. Entries
 * are keyed by (model profile, quantization config, calibration budget)
 * and hold the per-layer PackedLayers plus their decoded execution
 * plans; they are immutable and shared by pointer, so concurrent
 * engines serving the same deployment reuse one copy (mirroring the
 * thread-safe Hessian factorization cache in quant/hessian.h).
 */

#ifndef MSQ_SERVE_WEIGHT_CACHE_H
#define MSQ_SERVE_WEIGHT_CACHE_H

#include <memory>
#include <string>
#include <vector>

#include "core/msq_config.h"
#include "core/packed_tensor.h"
#include "model/model_zoo.h"
#include "serve/packed_exec.h"

namespace msq {

/** One deployed model: packed layers + execution plans, immutable. */
struct PackedModel
{
    std::string model;               ///< profile name
    MsqConfig config;
    std::vector<PackedLayer> layers; ///< one per representative layer
    std::vector<PackedExecPlan> plans;
    size_t termsPerToken = 0;        ///< integer MACs per activation column
    double meanEbw = 0.0;            ///< parameter-weighted Eq. 4 EBW
    double buildMs = 0.0;            ///< quantize + decode wall time
};

using PackedModelPtr = std::shared_ptr<const PackedModel>;

/**
 * Get (or quantize and cache) the packed deployment of `model` under
 * `config`. Layers are quantized in parallel with the same calibration
 * rule as the evaluation pipeline (at least 4x the reduction dimension
 * of tokens). Thread safe; on a racing miss the first finished build
 * wins and the others are dropped.
 *
 * @pre PackedExecPlan::executable(config)
 */
PackedModelPtr getPackedModel(const ModelProfile &model,
                              const MsqConfig &config,
                              size_t calib_tokens = 128);

/** Drop all cached deployments. */
void clearPackedModelCache();

/** Number of cached deployments. */
size_t packedModelCacheSize();

} // namespace msq

#endif // MSQ_SERVE_WEIGHT_CACHE_H
