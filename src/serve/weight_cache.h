/**
 * @file
 * Packed-weight cache for the serving engine.
 *
 * Quantizing a model's layers (Hessian build, GPTQ sweep, packing) is
 * orders of magnitude more expensive than executing one request, so the
 * serving path must do it once per deployment, not per request. Entries
 * are keyed by (model profile, quantization config, calibration budget)
 * and hold the per-layer PackedLayers plus their decoded execution
 * plans; they are immutable and shared by pointer, so concurrent
 * engines serving the same deployment reuse one copy (mirroring the
 * thread-safe Hessian factorization cache in quant/hessian.h).
 *
 * The cache has two tiers. The in-memory tier above lives and dies with
 * the process; the optional disk tier (pass a cache directory) persists
 * each deployment as a `.msq` container (io/msq_file.h), so the next
 * process cold-starts by loading and decoding the container instead of
 * re-running PTQ — bench/bench_cold_start.cc measures the speedup. A
 * disk hit is verified against the embedded identity (model name,
 * full MsqConfig, calibration budget, layer shapes) before use, and any
 * unreadable, corrupt, or mismatched container is treated as a miss
 * and overwritten by a fresh quantization.
 */

#ifndef MSQ_SERVE_WEIGHT_CACHE_H
#define MSQ_SERVE_WEIGHT_CACHE_H

#include <memory>
#include <string>
#include <vector>

#include "core/msq_config.h"
#include "core/packed_tensor.h"
#include "model/model_zoo.h"
#include "serve/packed_exec.h"

namespace msq {

/** Shared immutable execution plan (see getExecPlan). */
using PackedExecPlanPtr = std::shared_ptr<const PackedExecPlan>;

/** One deployed model: packed layers + execution plans, immutable. */
struct PackedModel
{
    std::string model;               ///< profile name
    MsqConfig config;
    std::vector<PackedLayer> layers; ///< one per representative layer
    std::vector<PackedExecPlanPtr> plans;
    size_t termsPerToken = 0;        ///< integer MACs per activation column
    double meanEbw = 0.0;            ///< parameter-weighted Eq. 4 EBW
    double buildMs = 0.0;            ///< quantize (or load) wall time
    double planMs = 0.0;             ///< blocked-plan decode wall time
    std::string source;              ///< "quantize" or "disk"
};

using PackedModelPtr = std::shared_ptr<const PackedModel>;

/**
 * Get (or build and cache) the packed deployment of `model` under
 * `config`. Lookup order: in-memory cache, then — when `cache_dir` is
 * non-empty — the `.msq` container `cache_dir/` +
 * `packedModelCacheFile(...)`, then quantization (which writes the
 * container back when `cache_dir` is set). Layers are quantized in
 * parallel with the same calibration rule as the evaluation pipeline
 * (at least 4x the reduction dimension of tokens). Thread safe; on a
 * racing miss the first finished build wins and the others are dropped.
 *
 * @pre PackedExecPlan::executable(config)
 */
PackedModelPtr getPackedModel(const ModelProfile &model,
                              const MsqConfig &config,
                              size_t calib_tokens = 128,
                              const std::string &cache_dir = "");

/**
 * File name (no directory) of the disk-tier container for a
 * deployment: the model name plus a 64-bit hash of the full cache key,
 * which covers every MsqConfig field (core/msq_config.h configKey) and
 * the calibration budget. Hash collisions are harmless: a loaded
 * container is only used after its embedded identity matches exactly.
 */
std::string packedModelCacheFile(const ModelProfile &model,
                                 const MsqConfig &config,
                                 size_t calib_tokens);

/** Drop all cached deployments (and the execution-plan cache: plans
 *  held by live deployments survive through their shared_ptrs). */
void clearPackedModelCache();

/** Number of cached deployments. */
size_t packedModelCacheSize();

/**
 * Get (or decode and cache) the execution plan of one packed layer.
 *
 * Decoding a PackedExecPlan builds the blocked integer plane — a full
 * pass over the layer — so repeated executions of the same quantized
 * layer (every pipeline evaluation through `packedExecBackend()`, every
 * engine deployed on a cached PackedModel) must pay it once, not per
 * call. Entries are content-addressed: the key is a 128-bit fingerprint
 * of everything a plan decodes (config, shape, code/kind/Isf planes,
 * micro-block outlier metadata), so two bit-identical layers — however
 * they were produced — share one plan. Thread safe; least recently used
 * entries are evicted beyond the capacity, but handed-out plans stay
 * alive through their shared_ptr.
 *
 * @pre PackedExecPlan::executable(layer.config())
 */
PackedExecPlanPtr getExecPlan(const PackedLayer &layer);

/** Drop all cached execution plans. */
void clearExecPlanCache();

/** Number of cached execution plans. */
size_t execPlanCacheSize();

/** Set the plan cache's LRU capacity (default 64; 0 disables caching —
 *  every call decodes afresh). */
void setExecPlanCacheCapacity(size_t capacity);

} // namespace msq

#endif // MSQ_SERVE_WEIGHT_CACHE_H
