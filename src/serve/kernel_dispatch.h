/**
 * @file
 * Runtime dispatch registry for the blocked serving GEMM's hot
 * accumulation loop — the kernel that turns a (k-panel × macro-block)
 * tile's zero-free CSR entries into int32 partial sums
 * (serve/packed_exec.h, `gemmBlock`).
 *
 * Each KernelPath (common/simd_dispatch.h) provides one
 * `accumulateRun` implementation:
 *
 *  - `scalar`: the portable loop, kept as the oracle every other path
 *    is diffed against byte for byte (tests/test_kernel_dispatch.cc);
 *  - `sse2` / `avx2`: hand-vectorized x86 variants that broadcast the
 *    int16 entry value across 8/16 token lanes and form the exact
 *    32-bit products via the `_mm_mullo_epi16`/`_mm_mulhi_epi16`
 *    low/high-half recombination (the shift-aligned integer reduction
 *    of the paper's PE array, Fig. 6, mapped onto register lanes);
 *  - `neon`: AArch64 widening multiply-accumulate (`vmlal_s16`).
 *
 * Every path produces identical bytes by construction: the plan admits
 * a tile to the integer path only when the sum of its term magnitudes
 * fits int32 (accel/int_dequant.h maxPanelShift plus the exact
 * per-tile check), so every partial sum of every subset of terms is
 * exact — int32 addition is then associative and commutative over the
 * admitted range, and lane-parallel accumulation folds to the same
 * bytes as the scalar loop no matter how tokens are split across
 * lanes. The double-precision folds ABOVE the int32 accumulators (the
 * hierarchical k-panel/run order that the determinism contract pins)
 * are outside the dispatched region and never vary by path.
 *
 * Selection is `activeKernelPath()` — a plain atomic read, forceable
 * process-wide with `MSQ_KERNEL=scalar|sse2|avx2|neon` or
 * `setKernelPath()`. This replaces the PR-4 `target_clones` ifunc
 * mechanism (and with it the TSan compile-out special case: there is
 * no resolver to run before the sanitizer runtime exists).
 */

#ifndef MSQ_SERVE_KERNEL_DISPATCH_H
#define MSQ_SERVE_KERNEL_DISPATCH_H

#include <cstddef>
#include <cstdint>

#include "common/simd_dispatch.h"

namespace msq {

/**
 * One zero-free entry of a blocked (k-panel × macro-block) tile: an
 * inlier code or a ReCoN-merged outlier mantissa, pre-shifted to the
 * tile's minimum exponent on the integer path (serve/packed_exec.h).
 */
struct KernelBlockEntry
{
    uint16_t col = 0; ///< column offset within the macro-block
    int16_t w = 0;    ///< integer weight value (shifted in Int tiles)
};

/**
 * The micro-kernel's int32 accumulation over one run: every entry of
 * rows [k0, k1) of a stripe's CSR (delimited by `erow`), multiplied by
 * the staged int16 iAct rows (`iact`, nj tokens per row, row 0 is
 * panel row `pk0`), accumulated into `acc` (macro-block offset × nj).
 */
using AccumulateRunFn = void (*)(const KernelBlockEntry *entries,
                                 const uint32_t *erow, size_t k0,
                                 size_t k1, const int16_t *iact,
                                 size_t pk0, size_t nj, int32_t *acc);

/** Function table of one kernel path. */
struct KernelOps
{
    KernelPath path = KernelPath::Scalar;
    AccumulateRunFn accumulateRun = nullptr;
};

/**
 * Ops table of `path`. @pre kernelPathCompiled(path) — a compiled
 * path always has a full table; the caller (or activeKernelPath())
 * guarantees CPU support before executing it.
 */
const KernelOps &kernelOpsFor(KernelPath path);

/** Ops table of the active path — what the serving GEMM runs. */
inline const KernelOps &
activeKernelOps()
{
    return kernelOpsFor(activeKernelPath());
}

} // namespace msq

#endif // MSQ_SERVE_KERNEL_DISPATCH_H
