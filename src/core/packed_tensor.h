/**
 * @file
 * Bit-exact packed representation of a MicroScopiQ-quantized layer,
 * mirroring the off-chip memory layout of Fig. 5: a dense plane of
 * bb-bit element codes plus hardware-managed metadata (per macro-block
 * inlier scale factor, per micro-block outlier-present identifier,
 * MXScale byte, and permutation list).
 *
 * The same object feeds three consumers:
 *   - `dequantAll()` reconstructs real-valued weights for accuracy
 *     evaluation,
 *   - the accelerator functional model reads raw codes + metadata to
 *     reproduce the PE/ReCoN integer arithmetic,
 *   - `serialize()` emits the exact bit stream, so the effective
 *     bit-width of Eq. 4 can be validated by counting bits.
 */

#ifndef MSQ_CORE_PACKED_TENSOR_H
#define MSQ_CORE_PACKED_TENSOR_H

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "core/encoding.h"
#include "core/msq_config.h"
#include "mx/fp_codec.h"

namespace msq {

/** Metadata of one micro-block. */
struct MicroBlockMeta
{
    bool hasOutliers = false;
    uint8_t mxScale = 0;             ///< packed MXScale (level-1 | muX)
    std::vector<PermEntry> perm;     ///< one entry per stored outlier
};

/** A MicroScopiQ-quantized layer in its hardware layout. */
class PackedLayer
{
  public:
    PackedLayer() = default;

    /** Construct an empty packed layer for the given shape/config. */
    PackedLayer(const MsqConfig &config, size_t rows, size_t cols);

    const MsqConfig &config() const { return config_; }
    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    /** Number of macro-blocks per row. */
    size_t macroPerRow() const;

    /** Number of micro-blocks per row. */
    size_t microPerRow() const;

    /** Raw bb-bit code of element (r, c). @pre r < rows(), c < cols() */
    uint8_t code(size_t r, size_t c) const;
    void setCode(size_t r, size_t c, uint8_t code);

    /** Interpretation of element (r, c). @pre r < rows(), c < cols() */
    SlotKind kind(size_t r, size_t c) const;
    void setKind(size_t r, size_t c, SlotKind kind);

    /** Inlier scale exponent of macro-block `mb` in row `r`.
     *  @pre r < rows(), mb < macroPerRow() */
    int8_t isf(size_t r, size_t mb) const;
    void setIsf(size_t r, size_t mb, int8_t isf);

    /** Metadata of micro-block `ub` in row `r`.
     *  @pre r < rows(), ub < microPerRow() */
    const MicroBlockMeta &micro(size_t r, size_t ub) const;
    MicroBlockMeta &micro(size_t r, size_t ub);

    /**
     * @name Zero-copy row views
     * Raw pointers into the row-major backing stores, for tight loops
     * (the serve engine's packed-execution GEMM and plan builder) that
     * would otherwise pay per-element index arithmetic plus the bounds
     * assertions of the scalar accessors on every slot. `codeRow` and
     * `kindRow` span cols() elements, `isfRow` macroPerRow() entries and
     * `microRow` microPerRow() entries. Pointers are invalidated by any
     * mutation of the layer. @pre r < rows()
     */
    ///@{
    const uint8_t *codeRow(size_t r) const;
    const SlotKind *kindRow(size_t r) const;
    const int8_t *isfRow(size_t r) const;
    const MicroBlockMeta *microRow(size_t r) const;
    ///@}

    /** Element FP format used by outliers under this config. */
    FpFormat outlierFormat() const;

    /**
     * Final outlier scale exponent Osf = Ol1sf + muX - bias - Isf for a
     * micro-block (the -Isf term only when prescaling is enabled).
     */
    int outlierScaleExp(size_t r, size_t ub) const;

    /** Dequantize one element. */
    double dequant(size_t r, size_t c) const;

    /** Dequantize the full layer. */
    Matrix dequantAll() const;

    /**
     * Effective bit width per Eq. 4 of the paper: micro-blocks without
     * outliers cost bb bits/element; micro-blocks with outliers add the
     * permutation list and MXScale metadata. The per-MaB inlier scale
     * and the 1-bit identifier are excluded, as in the paper.
     */
    double paperEbw() const;

    /**
     * Measured bits-per-element of the full serialized stream,
     * *including* the identifier bits and inlier scale factors the
     * paper's EBW ignores.
     */
    double measuredEbw() const;

    /** Serialize to the Fig. 5 bit layout. */
    std::vector<uint8_t> serialize() const;

    /** Reconstruct from a serialized stream. @pre same config/shape. */
    static PackedLayer deserialize(const MsqConfig &config, size_t rows,
                                   size_t cols,
                                   const std::vector<uint8_t> &bytes);

    /**
     * Bounds-checked deserialization for streams of untrusted origin
     * (the `.msq` container loader in io/msq_file.cc): rejects streams
     * that run out of bits mid-field, carry more payload bytes than the
     * layout admits, or name permutation locations outside their
     * micro-block, instead of tripping internal assertions. Returns
     * false (leaving `out` unspecified) on any such malformation.
     */
    static bool tryDeserialize(const MsqConfig &config, size_t rows,
                               size_t cols,
                               const std::vector<uint8_t> &bytes,
                               PackedLayer &out);

    /** Fraction of micro-blocks containing outliers (x in Eq. 4). */
    double outlierMicroBlockFraction() const;

    /** Location field width inside a permutation entry: the smallest
     *  L with 2^L >= microBlock. Exposed for the container loader's
     *  payload-size bounds (io/msq_file.cc). */
    static unsigned permLocBits(const MsqConfig &config);

    /** Quantization statistics accumulated while packing. */
    struct Stats
    {
        size_t outliersStored = 0;    ///< outliers kept at high precision
        size_t outliersPruned = 0;    ///< excess outliers zeroed
        size_t inliersPruned = 0;     ///< inliers pruned for redistribution
        size_t positiveIsfBlocks = 0; ///< MaBs violating the negative-Isf rule
    };

    Stats stats;

  private:
    /** Bits of a serialized micro-block's metadata when outliers exist. */
    size_t outlierMetaBits() const;

    /** permLocBits of this layer's config. */
    unsigned permLocBits() const { return permLocBits(config_); }

    MsqConfig config_;
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<uint8_t> codes_;
    std::vector<SlotKind> kinds_;
    std::vector<int8_t> isf_;
    std::vector<MicroBlockMeta> micro_;
};

} // namespace msq

#endif // MSQ_CORE_PACKED_TENSOR_H
