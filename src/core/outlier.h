/**
 * @file
 * Outlier detection and distribution statistics (paper Sections 3.2,
 * 4.2). Weights whose deviation from the block mean exceeds three
 * standard deviations are outliers; two outliers in adjacent positions
 * of the same block row are "adjacent outliers", the case that breaks
 * OliVe's victim assumption.
 */

#ifndef MSQ_CORE_OUTLIER_H
#define MSQ_CORE_OUTLIER_H

#include <cstddef>
#include <vector>

#include "common/matrix.h"

namespace msq {

/** 3-sigma outlier mask over a span of weights. */
std::vector<bool> detectOutliers(const double *values, size_t n);

/** Layer-level outlier statistics for Fig. 2(a). */
struct OutlierStats
{
    size_t totalWeights = 0;
    size_t outliers = 0;
    size_t adjacentOutliers = 0;  ///< outliers with an outlier neighbour

    double outlierFraction() const
    {
        return totalWeights ? static_cast<double>(outliers) /
                              static_cast<double>(totalWeights)
                            : 0.0;
    }

    double adjacentFraction() const
    {
        return totalWeights ? static_cast<double>(adjacentOutliers) /
                              static_cast<double>(totalWeights)
                            : 0.0;
    }
};

/**
 * Compute outlier statistics of a weight matrix with 3-sigma detection
 * applied per macro-block of `macro_block` elements along each row.
 * Adjacency is evaluated within rows (the block/channel dimension).
 */
OutlierStats analyzeOutliers(const Matrix &w, size_t macro_block = 128);

} // namespace msq

#endif // MSQ_CORE_OUTLIER_H
