#include "core/microscopiq.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/logging.h"
#include "core/outlier.h"
#include "mx/mx_fp.h"
#include "mx/mx_int.h"
#include "quant/gptq.h"
#include "quant/hessian.h"

namespace msq {

namespace {

/** Clamp a level-1 exponent into its MXScale field range. */
int
clampLevel1(int level1, const FpFormat &fmt)
{
    const unsigned field_bits = 8 - muXFieldBits(fmt);
    const int lo = -(1 << (field_bits - 1));
    const int hi = (1 << (field_bits - 1)) - 1;
    return std::clamp(level1, lo, hi);
}

} // namespace

MicroScopiQQuantizer::MicroScopiQQuantizer(MsqConfig config)
    : config_(config)
{
}

std::string
MicroScopiQQuantizer::name() const
{
    return config_.name();
}

const PackedLayer &
MicroScopiQQuantizer::packed() const
{
    MSQ_ASSERT(lastPacked_.has_value(), "no layer quantized yet");
    return *lastPacked_;
}

std::vector<double>
MicroScopiQQuantizer::quantizeRow(PackedLayer &layer, size_t row,
                                  const std::vector<double> &values,
                                  double hinv_diag)
{
    const size_t cols = values.size();
    const unsigned bb = config_.inlierBits;
    const size_t bm = std::min(config_.macroBlock, cols);
    const size_t bmu = std::min(config_.microBlock, cols);
    const FpFormat fmt = layer.outlierFormat();
    std::vector<double> deq(cols, 0.0);

    // Step 1.0: walk macro-blocks.
    for (size_t mb0 = 0, mb_idx = 0; mb0 < cols; mb0 += bm, ++mb_idx) {
        const size_t mb_n = std::min(bm, cols - mb0);
        const double *mab = values.data() + mb0;

        // Step 1.1: inlier/outlier split by the 3-sigma rule.
        std::vector<bool> outlier_mask =
            config_.outlierMode == OutlierMode::None
                ? std::vector<bool>(mb_n, false)
                : detectOutliers(mab, mb_n);

        // Step 1.2: shared inlier scale from the inlier magnitudes.
        double inlier_max = 0.0;
        for (size_t i = 0; i < mb_n; ++i)
            if (!outlier_mask[i])
                inlier_max = std::max(inlier_max, std::fabs(mab[i]));
        if (inlier_max == 0.0)
            inlier_max = 1e-12;
        std::vector<double> inlier_vals = {inlier_max};
        int isf = mxIntScaleExp(inlier_vals, bb);
        isf = std::clamp(isf, -128, 127);
        layer.setIsf(row, mb_idx, static_cast<int8_t>(isf));
        if (isf >= 0)
            ++layer.stats.positiveIsfBlocks;

        // Coarse outlier mode quantizes all of the macro-block's
        // outliers with one shared scale (the Table 7 MX-FP-b_{128,128}
        // ablation stage); collect them here.
        std::vector<double> coarse_vals;
        std::vector<size_t> coarse_pos;
        if (config_.outlierMode == OutlierMode::MxFpCoarse) {
            for (size_t i = 0; i < mb_n; ++i) {
                if (outlier_mask[i]) {
                    const double v = config_.prescaleOutliers
                                         ? std::ldexp(mab[i], isf)
                                         : mab[i];
                    coarse_vals.push_back(v);
                    coarse_pos.push_back(i);
                }
            }
        }
        MxFpGroup coarse_group;
        if (!coarse_vals.empty()) {
            const int level1 =
                clampLevel1(mxFpLevel1Exp(coarse_vals, fmt), fmt);
            coarse_group = mxFpQuantizeWithLevel1(coarse_vals, fmt, level1);
        }

        // Steps 2-3 per micro-block.
        for (size_t ub0 = mb0; ub0 < mb0 + mb_n; ub0 += bmu) {
            const size_t ub_n = std::min(bmu, mb0 + mb_n - ub0);
            const size_t ub_idx = ub0 / config_.microBlock;
            MicroBlockMeta &meta = layer.micro(row, ub_idx);

            // Collect outlier positions within this micro-block.
            std::vector<size_t> out_pos;
            for (size_t i = 0; i < ub_n; ++i)
                if (outlier_mask[ub0 - mb0 + i])
                    out_pos.push_back(i);

            // Step 2.0: capacity clamp; excess outliers are pruned
            // (smallest magnitude first), matching the degradation the
            // paper describes for tiny micro-blocks.
            const size_t capacity =
                config_.pruneAndRedistribute
                    ? std::min(config_.microBlockCapacity(), ub_n / 2)
                    : out_pos.size();
            std::vector<size_t> demoted;
            if (out_pos.size() > capacity) {
                std::sort(out_pos.begin(), out_pos.end(),
                          [&](size_t a, size_t b) {
                              return std::fabs(values[ub0 + a]) >
                                     std::fabs(values[ub0 + b]);
                          });
                // Indexed copy instead of assign(first, last): GCC 12's
                // -Wnonnull cannot see that the range is non-empty here
                // and flags the underlying std::copy.
                for (size_t i = capacity; i < out_pos.size(); ++i)
                    demoted.push_back(out_pos[i]);
                out_pos.resize(capacity);
                std::sort(out_pos.begin(), out_pos.end());
                layer.stats.outliersPruned += demoted.size();
            }

            // Step 2.2-2.4: pick the least salient inliers to prune.
            // Saliency follows Algorithm 1: w_p^2 / [H^-1]_pp, where the
            // diagonal entry is the quantized row's (constant within the
            // block, so the ordering is by compensated magnitude).
            std::vector<size_t> prune_pos;
            if (config_.pruneAndRedistribute && !out_pos.empty()) {
                std::vector<size_t> candidates;
                for (size_t i = 0; i < ub_n; ++i) {
                    const bool is_out =
                        std::find(out_pos.begin(), out_pos.end(), i) !=
                        out_pos.end();
                    const bool is_demoted =
                        std::find(demoted.begin(), demoted.end(), i) !=
                        demoted.end();
                    if (!is_out && !is_demoted)
                        candidates.push_back(i);
                }
                std::sort(candidates.begin(), candidates.end(),
                          [&](size_t a, size_t b) {
                              const double sa = values[ub0 + a] *
                                                values[ub0 + a] / hinv_diag;
                              const double sb = values[ub0 + b] *
                                                values[ub0 + b] / hinv_diag;
                              return sa < sb;
                          });
                const size_t n_prune =
                    std::min(out_pos.size(), candidates.size());
                // The n_prune > 0 guard also keeps GCC 12's -Wnonnull
                // from flagging assign() over an empty vector's null
                // begin().
                if (n_prune > 0) {
                    prune_pos.assign(candidates.begin(),
                                     candidates.begin() + n_prune);
                    layer.stats.inliersPruned += n_prune;
                }
                // If there were fewer inliers than outliers the excess
                // outliers must be pruned too.
                while (out_pos.size() > prune_pos.size()) {
                    layer.stats.outliersPruned += 1;
                    demoted.push_back(out_pos.back());
                    out_pos.pop_back();
                }
            }

            // Step 2.5: quantize the outliers of this micro-block.
            MxFpGroup group;
            std::vector<int32_t> int_out_codes;
            int int_out_scale = 0;
            if (!out_pos.empty() &&
                config_.outlierMode == OutlierMode::MxFpShared) {
                std::vector<double> vals(out_pos.size());
                for (size_t i = 0; i < out_pos.size(); ++i) {
                    const double v = values[ub0 + out_pos[i]];
                    vals[i] = config_.prescaleOutliers ? std::ldexp(v, isf)
                                                       : v;
                }
                const int level1 =
                    clampLevel1(mxFpLevel1Exp(vals, fmt), fmt);
                group = mxFpQuantizeWithLevel1(vals, fmt, level1);
            } else if (!out_pos.empty() &&
                       config_.outlierMode == OutlierMode::MxInt) {
                // Format ablation: outliers as plain MX-INT at 2x bits.
                std::vector<double> vals(out_pos.size());
                for (size_t i = 0; i < out_pos.size(); ++i)
                    vals[i] = values[ub0 + out_pos[i]];
                const MxIntGroup g =
                    mxIntQuantize(vals, config_.outlierBits());
                int_out_codes = g.codes;
                int_out_scale = g.scaleExp;
            }

            // Write the dequantized values and the packed codes.
            std::vector<bool> pruned(ub_n, false);
            for (size_t p : prune_pos)
                pruned[p] = true;
            std::vector<bool> is_outlier(ub_n, false);
            for (size_t p : out_pos)
                is_outlier[p] = true;
            std::vector<bool> is_demoted(ub_n, false);
            for (size_t p : demoted)
                is_demoted[p] = true;

            const bool redistributing =
                config_.pruneAndRedistribute && !out_pos.empty() &&
                config_.outlierMode == OutlierMode::MxFpShared;

            if (redistributing) {
                meta.hasOutliers = true;
                meta.mxScale = packMxScale(group);
            }

            size_t out_counter = 0;
            for (size_t i = 0; i < ub_n; ++i) {
                const size_t c = ub0 + i;
                if (is_demoted[i]) {
                    layer.setKind(row, c, SlotKind::PrunedZero);
                    layer.setCode(row, c, 0);
                    deq[c] = 0.0;
                    continue;
                }
                if (is_outlier[i]) {
                    double value = 0.0;
                    if (config_.outlierMode == OutlierMode::MxFpShared) {
                        const size_t oi = out_counter++;
                        double decoded = group.decode(oi);
                        if (config_.prescaleOutliers)
                            decoded = std::ldexp(decoded, -isf);
                        value = decoded;
                        if (redistributing) {
                            const OutlierHalves halves =
                                splitOutlier(group.signs[oi],
                                             group.mantissas[oi],
                                             fmt.mbits, bb);
                            layer.setKind(row, c, SlotKind::OutlierUpper);
                            layer.setCode(row, c, halves.upper);
                            const size_t lower = prune_pos[oi];
                            layer.setKind(row, ub0 + lower,
                                          SlotKind::OutlierLower);
                            layer.setCode(row, ub0 + lower, halves.lower);
                            meta.perm.push_back(PermEntry{
                                static_cast<uint8_t>(i),
                                static_cast<uint8_t>(lower)});
                            layer.stats.outliersStored += 1;
                        }
                    } else if (config_.outlierMode == OutlierMode::MxFpCoarse) {
                        // Locate this position in the coarse group.
                        for (size_t ci = 0; ci < coarse_pos.size(); ++ci) {
                            if (coarse_pos[ci] == c - mb0) {
                                double decoded = coarse_group.decode(ci);
                                if (config_.prescaleOutliers)
                                    decoded = std::ldexp(decoded, -isf);
                                value = decoded;
                                break;
                            }
                        }
                    } else if (config_.outlierMode == OutlierMode::MxInt) {
                        const size_t oi = out_counter++;
                        value = std::ldexp(
                            static_cast<double>(int_out_codes[oi]),
                            int_out_scale);
                    }
                    deq[c] = value;
                    continue;
                }
                if (pruned[i]) {
                    deq[c] = 0.0;
                    // Kind/code already written by the paired outlier if
                    // redistribution is active; otherwise mark pruned.
                    if (!redistributing) {
                        layer.setKind(row, c, SlotKind::PrunedZero);
                        layer.setCode(row, c, 0);
                    }
                    continue;
                }
                // Plain inlier.
                const int32_t code = mxIntQuantizeValue(values[c], bb, isf);
                layer.setKind(row, c, SlotKind::Inlier);
                layer.setCode(row, c,
                              static_cast<uint8_t>(code) &
                                  static_cast<uint8_t>((1u << bb) - 1));
                deq[c] = std::ldexp(static_cast<double>(code), isf);
            }
        }
    }
    return deq;
}

PackedLayer
MicroScopiQQuantizer::quantizePacked(const Matrix &w, const Matrix &calib)
{
    Matrix out;
    return quantizeInternal(w, calib, out);
}

PackedLayer
MicroScopiQQuantizer::quantizeInternal(const Matrix &w, const Matrix &calib,
                                       Matrix &dequant)
{
    PackedLayer layer(config_, w.rows(), w.cols());

    Matrix hinv_chol;
    if (config_.hessianCompensation && !calib.empty()) {
        MSQ_ASSERT(calib.rows() == w.rows(),
                   "calibration rows must match the reduction dimension");
        hinv_chol = hessianInverseCholeskyCached(calib, config_.dampRel);
    } else {
        // Identity: no cross-row compensation, unit saliency weights.
        hinv_chol = Matrix(w.rows(), w.rows());
        for (size_t i = 0; i < w.rows(); ++i)
            hinv_chol(i, i) = 1.0;
    }

    Matrix work = w;
    gptqSweep(
        work, hinv_chol, config_.rowBlock,
        [&](size_t row, const std::vector<double> &values) {
            // Saliency denominator: the OBS-effective [H^-1]_rr of the
            // remaining set is the squared factor diagonal.
            const double d = hinv_chol(row, row) * hinv_chol(row, row);
            return quantizeRow(layer, row, values, d);
        },
        dequant);
    return layer;
}

QuantResult
MicroScopiQQuantizer::quantize(const Matrix &w, const Matrix &calib)
{
    QuantResult res;
    res.method = name();
    lastPacked_ = quantizeInternal(w, calib, res.dequant);
    res.ebw = lastPacked_->paperEbw();
    return res;
}

} // namespace msq
