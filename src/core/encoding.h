/**
 * @file
 * Outlier value encoding through N:M structured pruning (paper
 * Section 4.3): after the micro-block shares its microexponent, each
 * outlier reduces to {sign, mantissa}. The mantissa is split into an
 * Upper half (sign + high mantissa bits, stored at the outlier's own
 * position) and a Lower half (sign + low mantissa bits, stored at a
 * pruned inlier position), each exactly `bb` bits wide so every element
 * of the tensor occupies the same bit budget. A per-micro-block
 * permutation list records the (upper, lower) location pairs.
 */

#ifndef MSQ_CORE_ENCODING_H
#define MSQ_CORE_ENCODING_H

#include <cstdint>

#include "core/msq_config.h"

namespace msq {

/** One permutation-list entry: locations of an outlier's two halves. */
struct PermEntry
{
    uint8_t upperLoc = 0;  ///< micro-block-relative position of the Upper half
    uint8_t lowerLoc = 0;  ///< micro-block-relative position of the Lower half
};

/** How a stored element slot must be interpreted. */
enum class SlotKind : uint8_t
{
    Inlier,        ///< two's-complement MX-INT code
    OutlierUpper,  ///< sign + high mantissa bits of an outlier
    OutlierLower,  ///< sign + low mantissa bits of an outlier
    PrunedZero,    ///< pruned inlier not reused by any outlier (excess prune)
};

/**
 * Split an outlier's mantissa into its two bb-bit halves.
 *
 * For inlier width bb the outlier mantissa has M = 2*(bb-1) bits
 * conceptually, but the element FP formats carry mbits mantissa bits
 * (2 for e1m2, 4 for e3m4); the halves carry ceil(mbits/2) high bits and
 * floor(mbits/2) low bits respectively, each prefixed by the duplicated
 * sign bit. Bit layout of a half (LSB first): mantissa bits, sign in the
 * MSB of the bb-bit field.
 */
struct OutlierHalves
{
    uint8_t upper = 0;  ///< bb-bit pattern {sign, m_hi}
    uint8_t lower = 0;  ///< bb-bit pattern {sign, m_lo}
};

/** Number of mantissa bits carried by the upper half. */
unsigned upperMantissaBits(unsigned mbits);

/** Number of mantissa bits carried by the lower half. */
unsigned lowerMantissaBits(unsigned mbits);

/** Encode sign + mantissa into the two halves. */
OutlierHalves splitOutlier(uint8_t sign, uint16_t mantissa, unsigned mbits,
                           unsigned bb);

/** Recover (sign, mantissa) from the two halves. */
void mergeOutlier(const OutlierHalves &halves, unsigned mbits, unsigned bb,
                  uint8_t &sign, uint16_t &mantissa);

/**
 * Decode the sign-magnitude integer value a PE computes from one half:
 * (-1)^sign * mantissa_bits. This is what the multiplier array sees
 * before ReCoN's shift-and-merge reconstructs the FP product.
 */
int upperHalfInt(const OutlierHalves &halves, unsigned mbits, unsigned bb);
int lowerHalfInt(const OutlierHalves &halves, unsigned mbits, unsigned bb);

} // namespace msq

#endif // MSQ_CORE_ENCODING_H
