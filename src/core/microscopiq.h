/**
 * @file
 * The MicroScopiQ quantization framework (paper Section 4, Algorithm 1).
 *
 * Per row of the weight matrix (reduction dimension k, compensated
 * across rows by the GPTQ-style Hessian sweep):
 *
 *  Step 1  split each macro-block (B_M outputs) into inliers/outliers by
 *          the 3-sigma rule; quantize inliers to MX-INT-bb with a shared
 *          power-of-two scale 2^Isf.
 *  Step 2  per micro-block (B_mu outputs): keep at most B_mu/2 outliers
 *          (excess outliers are pruned, a situation the group-size sweep
 *          of Fig. 14 exercises); prune the same number of least-salient
 *          inliers (saliency w_p^2 / [H^-1]_pp); quantize the outliers
 *          to two-level MX-FP (optionally pre-scaled by 2^Isf).
 *  Step 3  split every outlier into Upper/Lower bb-bit halves, store the
 *          Upper at the outlier position and the Lower at a pruned
 *          position, recording the pair in the permutation list.
 *
 * The result is a PackedLayer: a dense, aligned plane of bb-bit codes
 * plus per-block metadata, with EBW ~2.36 bits at bb = 2.
 */

#ifndef MSQ_CORE_MICROSCOPIQ_H
#define MSQ_CORE_MICROSCOPIQ_H

#include <optional>

#include "core/msq_config.h"
#include "core/packed_tensor.h"
#include "quant/quantizer.h"

namespace msq {

/** MicroScopiQ quantizer. Implements the common WeightQuantizer API and
 *  additionally exposes the packed hardware layout of the last layer. */
class MicroScopiQQuantizer : public WeightQuantizer
{
  public:
    explicit MicroScopiQQuantizer(MsqConfig config = MsqConfig{});

    std::string name() const override;

    /** Quantize and keep the packed layer retrievable via packed(). */
    QuantResult quantize(const Matrix &w, const Matrix &calib) override;

    /**
     * Quantize directly to the packed hardware layout. `calib` may be
     * empty when hessianCompensation is disabled.
     */
    PackedLayer quantizePacked(const Matrix &w, const Matrix &calib);

    /** Packed layout of the most recent quantize() call. */
    const PackedLayer &packed() const;

    const MsqConfig &config() const { return config_; }

  private:
    /**
     * Quantize one row of weights into the packed layer and return the
     * dequantized row for error compensation.
     */
    std::vector<double> quantizeRow(PackedLayer &layer, size_t row,
                                    const std::vector<double> &values,
                                    double hinv_diag);

    /** Shared implementation: packs the layer and fills `dequant`. */
    PackedLayer quantizeInternal(const Matrix &w, const Matrix &calib,
                                 Matrix &dequant);

    MsqConfig config_;
    std::optional<PackedLayer> lastPacked_;
};

} // namespace msq

#endif // MSQ_CORE_MICROSCOPIQ_H
