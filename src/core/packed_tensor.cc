#include "core/packed_tensor.h"

#include <algorithm>
#include <cmath>

#include "common/bitstream.h"
#include "common/logging.h"
#include "mx/mx_fp.h"

namespace msq {

PackedLayer::PackedLayer(const MsqConfig &config, size_t rows, size_t cols)
    : config_(config), rows_(rows), cols_(cols),
      codes_(rows * cols, 0),
      kinds_(rows * cols, SlotKind::Inlier),
      isf_(rows * ((cols + config.macroBlock - 1) / config.macroBlock), 0),
      micro_(rows * ((cols + config.microBlock - 1) / config.microBlock))
{
    MSQ_ASSERT(config.microBlock >= 2, "micro-block must hold >= 2 elements");
    MSQ_ASSERT(config.macroBlock % config.microBlock == 0 ||
               config.macroBlock >= cols,
               "macro-block must be a multiple of the micro-block");
}

size_t
PackedLayer::macroPerRow() const
{
    return (cols_ + config_.macroBlock - 1) / config_.macroBlock;
}

size_t
PackedLayer::microPerRow() const
{
    return (cols_ + config_.microBlock - 1) / config_.microBlock;
}

uint8_t
PackedLayer::code(size_t r, size_t c) const
{
    MSQ_ASSERT(r < rows_ && c < cols_, "element index out of range");
    return codes_[r * cols_ + c];
}

void
PackedLayer::setCode(size_t r, size_t c, uint8_t code)
{
    MSQ_ASSERT(r < rows_ && c < cols_, "element index out of range");
    MSQ_ASSERT(code < (1u << config_.inlierBits),
               "code wider than the element bit budget");
    codes_[r * cols_ + c] = code;
}

SlotKind
PackedLayer::kind(size_t r, size_t c) const
{
    MSQ_ASSERT(r < rows_ && c < cols_, "element index out of range");
    return kinds_[r * cols_ + c];
}

void
PackedLayer::setKind(size_t r, size_t c, SlotKind kind)
{
    MSQ_ASSERT(r < rows_ && c < cols_, "element index out of range");
    kinds_[r * cols_ + c] = kind;
}

int8_t
PackedLayer::isf(size_t r, size_t mb) const
{
    MSQ_ASSERT(r < rows_ && mb < macroPerRow(),
               "macro-block index out of range");
    return isf_[r * macroPerRow() + mb];
}

void
PackedLayer::setIsf(size_t r, size_t mb, int8_t isf)
{
    MSQ_ASSERT(r < rows_ && mb < macroPerRow(),
               "macro-block index out of range");
    isf_[r * macroPerRow() + mb] = isf;
}

const MicroBlockMeta &
PackedLayer::micro(size_t r, size_t ub) const
{
    MSQ_ASSERT(r < rows_ && ub < microPerRow(),
               "micro-block index out of range");
    return micro_[r * microPerRow() + ub];
}

MicroBlockMeta &
PackedLayer::micro(size_t r, size_t ub)
{
    MSQ_ASSERT(r < rows_ && ub < microPerRow(),
               "micro-block index out of range");
    return micro_[r * microPerRow() + ub];
}

const uint8_t *
PackedLayer::codeRow(size_t r) const
{
    MSQ_ASSERT(r < rows_, "row index out of range");
    return codes_.data() + r * cols_;
}

const SlotKind *
PackedLayer::kindRow(size_t r) const
{
    MSQ_ASSERT(r < rows_, "row index out of range");
    return kinds_.data() + r * cols_;
}

const int8_t *
PackedLayer::isfRow(size_t r) const
{
    MSQ_ASSERT(r < rows_, "row index out of range");
    return isf_.data() + r * macroPerRow();
}

const MicroBlockMeta *
PackedLayer::microRow(size_t r) const
{
    MSQ_ASSERT(r < rows_, "row index out of range");
    return micro_.data() + r * microPerRow();
}

FpFormat
PackedLayer::outlierFormat() const
{
    return config_.inlierBits == 2 ? FpFormat::e1m2() : FpFormat::e3m4();
}

int
PackedLayer::outlierScaleExp(size_t r, size_t ub) const
{
    const MicroBlockMeta &meta = micro(r, ub);
    const FpFormat fmt = outlierFormat();
    int level1 = 0, mux = 0;
    unpackMxScale(meta.mxScale, fmt, level1, mux);
    int osf = level1 + mux - fmt.bias;
    if (config_.prescaleOutliers) {
        const size_t mb = (ub * config_.microBlock) / config_.macroBlock;
        osf -= isf(r, mb);
    }
    return osf;
}

double
PackedLayer::dequant(size_t r, size_t c) const
{
    const size_t ub = c / config_.microBlock;
    const size_t mb = c / config_.macroBlock;
    const SlotKind k = kind(r, c);
    const unsigned bb = config_.inlierBits;

    switch (k) {
      case SlotKind::Inlier: {
        const int64_t v = signExtend(code(r, c), bb);
        return std::ldexp(static_cast<double>(v), isf(r, mb));
      }
      case SlotKind::PrunedZero:
      case SlotKind::OutlierLower:
        // The lower half contributes through its paired upper position;
        // the slot itself represents a pruned (zero) weight.
        return 0.0;
      case SlotKind::OutlierUpper: {
        // Find this outlier's lower half through the permutation list.
        const MicroBlockMeta &meta = micro(r, ub);
        const size_t base = ub * config_.microBlock;
        const uint8_t rel = static_cast<uint8_t>(c - base);
        for (const PermEntry &entry : meta.perm) {
            if (entry.upperLoc != rel)
                continue;
            OutlierHalves halves;
            halves.upper = code(r, c);
            halves.lower = code(r, base + entry.lowerLoc);
            const FpFormat fmt = outlierFormat();
            uint8_t sign = 0;
            uint16_t mantissa = 0;
            mergeOutlier(halves, fmt.mbits, bb, sign, mantissa);
            const double frac =
                static_cast<double>(mantissa) /
                std::ldexp(1.0, static_cast<int>(fmt.mbits));
            const double mag =
                std::ldexp(1.0 + frac, outlierScaleExp(r, ub));
            return sign ? -mag : mag;
        }
        panic("OutlierUpper slot missing from its permutation list");
      }
    }
    panic("unreachable slot kind");
}

Matrix
PackedLayer::dequantAll() const
{
    Matrix out(rows_, cols_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            out(r, c) = dequant(r, c);
    return out;
}

unsigned
PackedLayer::permLocBits(const MsqConfig &config)
{
    unsigned bits = 1;
    while ((1ull << bits) < config.microBlock)
        ++bits;
    return bits;
}

size_t
PackedLayer::outlierMetaBits() const
{
    // Fixed-size permutation list of B_mu/2 entries (Section 4.3) plus
    // the 8-bit MXScale.
    return config_.microBlockCapacity() * 2 * permLocBits() + 8;
}

double
PackedLayer::paperEbw() const
{
    const double bb = static_cast<double>(config_.inlierBits);
    const double bmu = static_cast<double>(config_.microBlock);
    const double ebw_inlier = bb;
    const double ebw_outlier =
        (static_cast<double>(outlierMetaBits()) + bb * bmu) / bmu;
    const double x = outlierMicroBlockFraction();
    return x * ebw_outlier + (1.0 - x) * ebw_inlier;
}

double
PackedLayer::outlierMicroBlockFraction() const
{
    if (micro_.empty())
        return 0.0;
    size_t with = 0;
    for (const MicroBlockMeta &meta : micro_)
        if (meta.hasOutliers)
            ++with;
    return static_cast<double>(with) / static_cast<double>(micro_.size());
}

std::vector<uint8_t>
PackedLayer::serialize() const
{
    BitWriter writer;
    const unsigned bb = config_.inlierBits;
    const unsigned loc_bits = permLocBits();

    // Section 1: dense element codes.
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            writer.write(code(r, c), bb);

    // Section 2: metadata. Per row: per macro-block Isf; per micro-block
    // the 1-bit identifier and, when present, MXScale + permutation list.
    for (size_t r = 0; r < rows_; ++r) {
        for (size_t mb = 0; mb < macroPerRow(); ++mb)
            writer.write(static_cast<uint8_t>(isf(r, mb)), 8);
        for (size_t ub = 0; ub < microPerRow(); ++ub) {
            const MicroBlockMeta &meta = micro(r, ub);
            writer.write(meta.hasOutliers ? 1 : 0, 1);
            if (!meta.hasOutliers)
                continue;
            writer.write(meta.mxScale, 8);
            // Fixed-size list: real entries followed by zero padding.
            const size_t capacity = config_.microBlockCapacity();
            MSQ_ASSERT(meta.perm.size() <= capacity,
                       "permutation list exceeds micro-block capacity");
            // A valid-entry bitmap distinguishes padding from entry 0.
            for (size_t i = 0; i < capacity; ++i)
                writer.write(i < meta.perm.size() ? 1 : 0, 1);
            for (size_t i = 0; i < capacity; ++i) {
                const PermEntry entry =
                    i < meta.perm.size() ? meta.perm[i] : PermEntry{};
                writer.write(entry.upperLoc, loc_bits);
                writer.write(entry.lowerLoc, loc_bits);
            }
        }
    }

    // Section 3: slot kinds are *not* serialized; they are derivable
    // from the permutation lists. Emit nothing.
    return writer.take();
}

bool
PackedLayer::tryDeserialize(const MsqConfig &config, size_t rows,
                            size_t cols, const std::vector<uint8_t> &bytes,
                            PackedLayer &out)
{
    PackedLayer layer(config, rows, cols);
    BitReader reader(bytes);
    const unsigned bb = config.inlierBits;
    const unsigned loc_bits = layer.permLocBits();

    // Every field read is guarded: a stream that runs dry mid-field is
    // malformed, not a library bug.
    auto take = [&reader](unsigned bits, uint64_t &value) {
        if (reader.position() + bits > reader.capacity())
            return false;
        value = reader.read(bits);
        return true;
    };

    uint64_t v = 0;
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c) {
            if (!take(bb, v))
                return false;
            layer.setCode(r, c, static_cast<uint8_t>(v));
        }

    for (size_t r = 0; r < rows; ++r) {
        for (size_t mb = 0; mb < layer.macroPerRow(); ++mb) {
            if (!take(8, v))
                return false;
            layer.setIsf(r, mb, static_cast<int8_t>(v));
        }
        for (size_t ub = 0; ub < layer.microPerRow(); ++ub) {
            MicroBlockMeta &meta = layer.micro(r, ub);
            if (!take(1, v))
                return false;
            meta.hasOutliers = v != 0;
            if (!meta.hasOutliers)
                continue;
            if (!take(8, v))
                return false;
            meta.mxScale = static_cast<uint8_t>(v);
            const size_t capacity = config.microBlockCapacity();
            std::vector<bool> valid(capacity);
            for (size_t i = 0; i < capacity; ++i) {
                if (!take(1, v))
                    return false;
                valid[i] = v != 0;
            }
            // Elements of the final micro-block beyond the tensor edge
            // do not exist; a permutation entry pointing there is
            // malformed.
            const size_t base = ub * config.microBlock;
            const size_t block_end = std::min(cols, base + config.microBlock);
            for (size_t i = 0; i < capacity; ++i) {
                PermEntry entry;
                if (!take(loc_bits, v))
                    return false;
                entry.upperLoc = static_cast<uint8_t>(v);
                if (!take(loc_bits, v))
                    return false;
                entry.lowerLoc = static_cast<uint8_t>(v);
                if (!valid[i])
                    continue;
                if (base + entry.upperLoc >= block_end ||
                    base + entry.lowerLoc >= block_end ||
                    entry.upperLoc == entry.lowerLoc)
                    return false;
                meta.perm.push_back(entry);
            }
            // Rebuild slot kinds from the permutation list.
            for (const PermEntry &entry : meta.perm) {
                layer.setKind(r, base + entry.upperLoc,
                              SlotKind::OutlierUpper);
                layer.setKind(r, base + entry.lowerLoc,
                              SlotKind::OutlierLower);
            }
        }
    }

    // The writer pads the final byte with zeros; anything longer is not
    // a serialization of this shape.
    if (bytes.size() != (reader.position() + 7) / 8)
        return false;
    out = std::move(layer);
    return true;
}

PackedLayer
PackedLayer::deserialize(const MsqConfig &config, size_t rows, size_t cols,
                         const std::vector<uint8_t> &bytes)
{
    PackedLayer layer;
    MSQ_ASSERT(tryDeserialize(config, rows, cols, bytes, layer),
               "malformed packed-layer stream");
    return layer;
}

double
PackedLayer::measuredEbw() const
{
    BitWriter probe;
    const std::vector<uint8_t> bytes = serialize();
    // serialize() pads to a byte boundary; recompute the exact bit count.
    size_t bits = rows_ * cols_ * config_.inlierBits;
    bits += rows_ * macroPerRow() * 8;
    for (const MicroBlockMeta &meta : micro_) {
        bits += 1;
        if (meta.hasOutliers) {
            bits += 8 + config_.microBlockCapacity() +
                    config_.microBlockCapacity() * 2 * permLocBits();
        }
    }
    (void)bytes;
    (void)probe;
    return static_cast<double>(bits) /
           static_cast<double>(rows_ * cols_);
}

} // namespace msq
