#include "core/outlier.h"

#include <algorithm>
#include <cmath>

namespace msq {

std::vector<bool>
detectOutliers(const double *values, size_t n)
{
    std::vector<bool> mask(n, false);
    if (n == 0)
        return mask;

    double sum = 0.0;
    for (size_t i = 0; i < n; ++i)
        sum += values[i];
    const double mu = sum / static_cast<double>(n);
    double var = 0.0;
    for (size_t i = 0; i < n; ++i) {
        const double d = values[i] - mu;
        var += d * d;
    }
    var /= static_cast<double>(n);
    const double thr = 3.0 * std::sqrt(var);
    if (thr == 0.0)
        return mask;

    for (size_t i = 0; i < n; ++i)
        mask[i] = std::fabs(values[i] - mu) > thr;
    return mask;
}

OutlierStats
analyzeOutliers(const Matrix &w, size_t macro_block)
{
    OutlierStats stats;
    stats.totalWeights = w.size();
    const size_t group = macro_block == 0 ? w.cols() : macro_block;

    std::vector<bool> row_mask;
    for (size_t r = 0; r < w.rows(); ++r) {
        row_mask.assign(w.cols(), false);
        const double *row = w.rowPtr(r);
        for (size_t c0 = 0; c0 < w.cols(); c0 += group) {
            const size_t n = std::min(group, w.cols() - c0);
            const std::vector<bool> mask = detectOutliers(row + c0, n);
            for (size_t i = 0; i < n; ++i)
                row_mask[c0 + i] = mask[i];
        }
        for (size_t c = 0; c < w.cols(); ++c) {
            if (!row_mask[c])
                continue;
            ++stats.outliers;
            const bool left = c > 0 && row_mask[c - 1];
            const bool right = c + 1 < w.cols() && row_mask[c + 1];
            if (left || right)
                ++stats.adjacentOutliers;
        }
    }
    return stats;
}

} // namespace msq
