/**
 * @file
 * Configuration of the MicroScopiQ quantization framework (paper
 * Section 4). The defaults correspond to the paper's headline setting:
 * 2-bit MX-INT inliers in macro-blocks of 128, 4-bit MX-FP (e1m2)
 * outliers in micro-blocks of 8, GPTQ-style row-block compensation of
 * 128 rows.
 */

#ifndef MSQ_CORE_MSQ_CONFIG_H
#define MSQ_CORE_MSQ_CONFIG_H

#include <cstddef>
#include <cstdio>
#include <string>

namespace msq {

/** Outlier handling mode (the ablation of Table 7 toggles these). */
enum class OutlierMode
{
    None,        ///< no special outlier handling (plain MX-INT)
    MxFpShared,  ///< MX-FP with shared microexponent per micro-block
    MxFpCoarse,  ///< MX-FP with level-1+muX shared per *macro*-block
    MxInt,       ///< outliers as MX-INT at 2x precision (format ablation)
};

/** Full configuration of the MicroScopiQ quantizer. */
struct MsqConfig
{
    /** Inlier element bit width bb (2 or 4). Outliers use 2x this. */
    unsigned inlierBits = 2;

    /** Macro-block size B_M: inlier scale-sharing group along outputs. */
    size_t macroBlock = 128;

    /** Micro-block size B_mu: outlier scale-sharing group. */
    size_t microBlock = 8;

    /** Row block rB for the lazy GPTQ Hessian updates. */
    size_t rowBlock = 128;

    /** Relative Hessian damping (GPTQ percdamp). */
    double dampRel = 0.01;

    /** Outlier handling mode. */
    OutlierMode outlierMode = OutlierMode::MxFpShared;

    /** Pre-reduce outlier magnitude by 2^Isf before quantization (4.2). */
    bool prescaleOutliers = true;

    /** Prune least-salient inliers and redistribute outlier halves. */
    bool pruneAndRedistribute = true;

    /** Propagate quantization error through the Hessian (Algorithm 1). */
    bool hessianCompensation = true;

    /** Outlier element bit width: twice the inlier budget. */
    unsigned outlierBits() const { return inlierBits * 2; }

    /** Maximum outliers representable per micro-block (B_mu / 2). */
    size_t microBlockCapacity() const { return microBlock / 2; }

    /** Short name such as "MicroScopiQ-W2". */
    std::string name() const
    {
        return "MicroScopiQ-W" + std::to_string(inlierBits);
    }
};

/** Exact field-by-field equality (every field that shapes the packed
 *  bytes — there are no derived or cached members). */
inline bool
operator==(const MsqConfig &a, const MsqConfig &b)
{
    return a.inlierBits == b.inlierBits && a.macroBlock == b.macroBlock &&
           a.microBlock == b.microBlock && a.rowBlock == b.rowBlock &&
           a.dampRel == b.dampRel && a.outlierMode == b.outlierMode &&
           a.prescaleOutliers == b.prescaleOutliers &&
           a.pruneAndRedistribute == b.pruneAndRedistribute &&
           a.hessianCompensation == b.hessianCompensation;
}

inline bool
operator!=(const MsqConfig &a, const MsqConfig &b)
{
    return !(a == b);
}

/**
 * Canonical cache-key string covering EVERY MsqConfig field: two configs
 * produce the same key iff they compare equal. `dampRel` is rendered as
 * a hex float (%a) so distinct doubles never collide through decimal
 * rounding. Shared by the in-memory packed-weight cache and the
 * disk-container naming in serve/weight_cache.cc; a collision here
 * would silently serve one deployment's weights to another, so
 * tests/test_weight_cache.cc sweeps single-field perturbations.
 */
inline std::string
configKey(const MsqConfig &c)
{
    char buf[192];
    std::snprintf(buf, sizeof(buf), "b%u|M%zu|u%zu|rB%zu|d%a|m%d|p%d%d%d",
                  c.inlierBits, c.macroBlock, c.microBlock, c.rowBlock,
                  c.dampRel, static_cast<int>(c.outlierMode),
                  c.prescaleOutliers ? 1 : 0,
                  c.pruneAndRedistribute ? 1 : 0,
                  c.hessianCompensation ? 1 : 0);
    return buf;
}

} // namespace msq

#endif // MSQ_CORE_MSQ_CONFIG_H
