#include "core/encoding.h"

#include "common/logging.h"

namespace msq {

unsigned
upperMantissaBits(unsigned mbits)
{
    return mbits - mbits / 2;
}

unsigned
lowerMantissaBits(unsigned mbits)
{
    return mbits / 2;
}

OutlierHalves
splitOutlier(uint8_t sign, uint16_t mantissa, unsigned mbits, unsigned bb)
{
    const unsigned hi_bits = upperMantissaBits(mbits);
    const unsigned lo_bits = lowerMantissaBits(mbits);
    MSQ_ASSERT(hi_bits + 1 <= bb && lo_bits + 1 <= bb,
               "outlier half does not fit the per-element bit budget");
    MSQ_ASSERT(mantissa < (1u << mbits), "mantissa wider than mbits");

    const uint16_t m_hi = static_cast<uint16_t>(mantissa >> lo_bits);
    const uint16_t m_lo =
        static_cast<uint16_t>(mantissa & ((1u << lo_bits) - 1u));

    OutlierHalves halves;
    // Sign occupies the MSB of the bb-bit field; mantissa bits sit in
    // the low bits, mirroring the inlier sign/magnitude layout.
    halves.upper = static_cast<uint8_t>(
        (static_cast<unsigned>(sign) << (bb - 1)) | m_hi);
    halves.lower = static_cast<uint8_t>(
        (static_cast<unsigned>(sign) << (bb - 1)) | m_lo);
    return halves;
}

void
mergeOutlier(const OutlierHalves &halves, unsigned mbits, unsigned bb,
             uint8_t &sign, uint16_t &mantissa)
{
    const unsigned hi_bits = upperMantissaBits(mbits);
    const unsigned lo_bits = lowerMantissaBits(mbits);
    sign = static_cast<uint8_t>((halves.upper >> (bb - 1)) & 1u);
    const uint8_t lower_sign =
        static_cast<uint8_t>((halves.lower >> (bb - 1)) & 1u);
    MSQ_ASSERT(sign == lower_sign, "outlier halves disagree on sign");
    const uint16_t m_hi =
        static_cast<uint16_t>(halves.upper & ((1u << hi_bits) - 1u));
    const uint16_t m_lo =
        static_cast<uint16_t>(halves.lower & ((1u << lo_bits) - 1u));
    mantissa = static_cast<uint16_t>((m_hi << lo_bits) | m_lo);
}

int
upperHalfInt(const OutlierHalves &halves, unsigned mbits, unsigned bb)
{
    const unsigned hi_bits = upperMantissaBits(mbits);
    const int mag = static_cast<int>(halves.upper & ((1u << hi_bits) - 1u));
    const bool neg = (halves.upper >> (bb - 1)) & 1u;
    return neg ? -mag : mag;
}

int
lowerHalfInt(const OutlierHalves &halves, unsigned mbits, unsigned bb)
{
    const unsigned lo_bits = lowerMantissaBits(mbits);
    const int mag = static_cast<int>(halves.lower & ((1u << lo_bits) - 1u));
    const bool neg = (halves.lower >> (bb - 1)) & 1u;
    return neg ? -mag : mag;
}

} // namespace msq
