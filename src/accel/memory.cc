#include "accel/memory.h"

#include "common/logging.h"

namespace msq {

MemoryCycles
memoryCycles(const AccelConfig &config, const MemoryTraffic &traffic)
{
    // Design-space sweeps construct configs programmatically; a zeroed
    // bandwidth or clock would otherwise turn into inf/NaN cycles that
    // silently poison MemoryCycles::bound() and everything downstream.
    if (!(config.clockGhz > 0.0))
        fatal("memoryCycles: AccelConfig.clockGhz must be positive, got " +
              std::to_string(config.clockGhz));
    if (!(config.dramBytesPerCycle() > 0.0))
        fatal("memoryCycles: AccelConfig.dramGBs must be positive, got " +
              std::to_string(config.dramGBs));
    if (!(config.ocpBytesPerCycle() > 0.0))
        fatal("memoryCycles: AccelConfig.ocpGBs must be positive, got " +
              std::to_string(config.ocpGBs));

    MemoryCycles cycles;
    cycles.dramCycles = traffic.dramBytes / config.dramBytesPerCycle();
    cycles.ocpCycles = traffic.l2Bytes / config.ocpBytesPerCycle();
    return cycles;
}

} // namespace msq
