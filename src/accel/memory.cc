#include "accel/memory.h"

namespace msq {

MemoryCycles
memoryCycles(const AccelConfig &config, const MemoryTraffic &traffic)
{
    MemoryCycles cycles;
    cycles.dramCycles = traffic.dramBytes / config.dramBytesPerCycle();
    cycles.ocpCycles = traffic.l2Bytes / config.ocpBytesPerCycle();
    return cycles;
}

} // namespace msq
