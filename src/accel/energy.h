/**
 * @file
 * Energy model. Per-operation energies at a 7 nm-class process,
 * assembled from the usual architecture-community rules of thumb
 * (multiplier energy roughly quadratic in operand width, SRAM ~order
 * of magnitude above a MAC, DRAM ~two orders above SRAM) and scaled so
 * relative comparisons between accelerators are meaningful. Absolute
 * joules are model outputs, not silicon measurements; every benchmark
 * reports energy *normalized* to a baseline, as the paper does.
 */

#ifndef MSQ_ACCEL_ENERGY_H
#define MSQ_ACCEL_ENERGY_H

#include <cstdint>

#include "accel/cycle_model.h"

namespace msq {

/** Per-operation energy constants (picojoules). */
struct EnergyParams
{
    double macInt2 = 0.060;
    double macInt4 = 0.140;
    double macInt8 = 0.350;
    double macFp16 = 0.900;
    double macFp32 = 2.700;
    double bufferPerByte = 0.35;    ///< local scratch buffers
    double l2PerByte = 1.10;        ///< 2 MB L2 SRAM
    double dramPerByte = 40.0;      ///< HBM2
    double reconPerTransit = 1.30;  ///< full 64-wide butterfly transit
    double staticWattsPerMm2 = 0.08;
};

/** Energy breakdown of a simulated run (picojoules). */
struct EnergyBreakdown
{
    double peDynamic = 0.0;
    double reconDynamic = 0.0;
    double bufferDynamic = 0.0;
    double l2Dynamic = 0.0;
    double dramDynamic = 0.0;
    double staticEnergy = 0.0;

    double total() const
    {
        return peDynamic + reconDynamic + bufferDynamic + l2Dynamic +
               dramDynamic + staticEnergy;
    }

    double onChip() const
    {
        return peDynamic + reconDynamic + bufferDynamic + l2Dynamic +
               staticEnergy;
    }
};

/** MAC energy for a weight precision. */
double macEnergy(const EnergyParams &params, unsigned weight_bits);

/**
 * Assemble the energy of a simulated run.
 *
 * @param stats cycle model output
 * @param weight_bits operand precision of the MACs
 * @param area_mm2 die area for static power
 * @param clock_ghz to convert cycles to time for static energy
 */
EnergyBreakdown computeEnergy(const EnergyParams &params,
                              const CycleStats &stats,
                              unsigned weight_bits, double area_mm2,
                              double clock_ghz);

} // namespace msq

#endif // MSQ_ACCEL_ENERGY_H
