#include "accel/energy.h"

#include "common/logging.h"

namespace msq {

double
macEnergy(const EnergyParams &params, unsigned weight_bits)
{
    switch (weight_bits) {
      case 2:
        return params.macInt2;
      case 3:
      case 4:
        return params.macInt4;
      case 8:
        return params.macInt8;
      case 16:
        return params.macFp16;
      case 32:
        return params.macFp32;
      default:
        // Interpolate quadratically in operand width.
        return params.macInt8 *
               (static_cast<double>(weight_bits) * weight_bits) / 64.0;
    }
}

EnergyBreakdown
computeEnergy(const EnergyParams &params, const CycleStats &stats,
              unsigned weight_bits, double area_mm2, double clock_ghz)
{
    EnergyBreakdown e;
    e.peDynamic =
        static_cast<double>(stats.macs) * macEnergy(params, weight_bits);
    e.reconDynamic = static_cast<double>(stats.reconAccesses) *
                     params.reconPerTransit;
    e.bufferDynamic = stats.traffic.bufferBytes * params.bufferPerByte;
    e.l2Dynamic = stats.traffic.l2Bytes * params.l2PerByte;
    e.dramDynamic = stats.traffic.dramBytes * params.dramPerByte;

    const double seconds =
        static_cast<double>(stats.totalCycles) / (clock_ghz * 1e9);
    // W * s = J; convert to pJ.
    e.staticEnergy =
        params.staticWattsPerMm2 * area_mm2 * seconds * 1e12;
    return e;
}

} // namespace msq
