/**
 * @file
 * Cycle-level performance model of the MicroScopiQ accelerator.
 *
 * The model tiles a GEMM onto the weight-stationary array, streams
 * tokens through each tile with the systolic skew, simulates ReCoN
 * arbitration at one row-vector transit per unit per cycle, and
 * overlaps double-buffered memory transfers with compute.
 *
 * ReCoN contention interpretation (see docs/DESIGN.md "ReCoN
 * contention"): each (outlier-row,
 * token) pair requires one transit. Transits are absorbed into the
 * pipeline while demand stays below the aggregate unit capacity within
 * a tile's compute window; excess demand stalls the tile. The access
 * conflict percentage is measured with a per-cycle wavefront simulation
 * (emissions at cycle row+token, FIFO arbitration), reproducing the
 * paper's regime: zero conflicts at decode (M=1), a few percent at
 * small batch, vanishing as units are added (Fig. 16b / 18a).
 */

#ifndef MSQ_ACCEL_CYCLE_MODEL_H
#define MSQ_ACCEL_CYCLE_MODEL_H

#include <cstdint>

#include "accel/accel_config.h"
#include "accel/memory.h"
#include "common/rng.h"

namespace msq {

/** A GEMM workload (one layer, already quantized). */
struct Workload
{
    size_t tokens = 1;       ///< M (batch x sequence positions)
    size_t reduction = 4096; ///< K
    size_t outputs = 4096;   ///< O
    unsigned weightBits = 2;       ///< bb (2 or 4)
    unsigned actBits = 8;
    double ebw = 2.36;             ///< weight bits/element incl. metadata
    double microOutlierFrac = 0.09;///< x: micro-blocks with outliers
    size_t microBlock = 8;
};

/** Simulation results. */
struct CycleStats
{
    uint64_t totalCycles = 0;
    uint64_t computeCycles = 0;    ///< compute-bound portion
    uint64_t exposedMemCycles = 0; ///< memory stalls not hidden
    uint64_t reconStallCycles = 0;
    uint64_t reconAccesses = 0;
    uint64_t reconConflicts = 0;   ///< accesses that had to wait
    uint64_t macs = 0;
    MemoryTraffic traffic;

    double conflictRate() const
    {
        return reconAccesses
                   ? static_cast<double>(reconConflicts) /
                         static_cast<double>(reconAccesses)
                   : 0.0;
    }

    /** Seconds at the configured clock. */
    double seconds(const AccelConfig &config) const
    {
        return static_cast<double>(totalCycles) /
               (config.clockGhz * 1e9);
    }
};

/** Cycle-level simulator. */
class CycleModel
{
  public:
    explicit CycleModel(const AccelConfig &config);

    /** Simulate one GEMM. `rng` drives outlier-row placement. */
    CycleStats run(const Workload &workload, Rng &rng) const;

    /** Simulate a sequence of GEMMs (e.g. a transformer block). */
    CycleStats runAll(const std::vector<Workload> &workloads,
                      Rng &rng) const;

    const AccelConfig &config() const { return config_; }

  private:
    /**
     * Per-tile wavefront simulation of ReCoN arbitration.
     *
     * Service granularity is one micro-block transit per column slot:
     * each ReCoN unit offers cols/microBlock slot-transits per cycle
     * through its column-wise input arbiters, so rows whose outlier
     * micro-blocks land in different column slots share a cycle.
     * `row_outlier_ubs[r]` is the number of outlier micro-blocks in
     * row r's resident tile.
     */
    void simulateTile(size_t tile_rows, size_t tokens, size_t micro_block,
                      const std::vector<unsigned> &row_outlier_ubs,
                      uint64_t &compute_cycles, uint64_t &stall_cycles,
                      uint64_t &accesses, uint64_t &conflicts) const;

    AccelConfig config_;
};

} // namespace msq

#endif // MSQ_ACCEL_CYCLE_MODEL_H
