#include "accel/area.h"

namespace msq {

double
AreaBreakdown::computeAreaMm2() const
{
    double um2 = 0.0;
    for (const AreaComponent &c : components)
        um2 += c.totalUm2();
    return um2 / 1e6;
}

double
AreaBreakdown::sramAreaMm2() const
{
    return sramBytes / (1024.0 * 1024.0) * kSramMm2PerMb;
}

double
AreaBreakdown::overheadFraction() const
{
    double pe_um2 = 0.0;
    double total_um2 = 0.0;
    for (const AreaComponent &c : components) {
        total_um2 += c.totalUm2();
        if (c.name == "Base PE" || c.name == "Group PE")
            pe_um2 += c.totalUm2();
    }
    return total_um2 > 0.0 ? (total_um2 - pe_um2) / total_um2 : 0.0;
}

AreaBreakdown
microScopiQArea(size_t rows, size_t cols, size_t recon_units,
                double sram_bytes)
{
    AreaBreakdown a;
    a.design = "MicroScopiQ";
    const size_t pes = rows * cols;
    a.components = {
        {"Base PE", 2.82, pes},
        {"Multi-precision support", 0.22, pes},
        {"ReCoN", 204.68, recon_units},
        {"Sync buffer", 20.45, recon_units},
        {"Control unit", 105.78, 1},
    };
    a.sramBytes = sram_bytes;
    return a;
}

AreaBreakdown
oliveArea(size_t rows, size_t cols, double sram_bytes)
{
    AreaBreakdown a;
    a.design = "OliVe";
    const size_t pes = rows * cols;
    a.components = {
        {"Base PE", 2.51, pes},
        {"4-bit decoder", 1.86, cols * 2},
        {"8-bit decoder", 2.47, cols},
        {"Multi-precision support", 0.68, pes / 4},
        {"Control unit", 95.49, 1},
    };
    a.sramBytes = sram_bytes;
    return a;
}

AreaBreakdown
goboArea(size_t rows, size_t cols, double sram_bytes)
{
    AreaBreakdown a;
    a.design = "GOBO";
    const size_t pes = rows * cols;
    a.components = {
        {"Group PE", 36.56, pes},
        {"Outlier PE", 96.42, cols},
        {"Control unit", 115.36, 1},
    };
    a.sramBytes = sram_bytes;
    return a;
}

double
computeDensityTops(const AreaBreakdown &area, size_t pes,
                   double macs_per_pe, double clock_ghz)
{
    const double ops =
        static_cast<double>(pes) * macs_per_pe * 2.0 * clock_ghz * 1e9;
    const double tops = ops / 1e12;
    const double mm2 = area.computeAreaMm2();
    return mm2 > 0.0 ? tops / mm2 : 0.0;
}

} // namespace msq
