/**
 * @file
 * Baseline accelerator models for the iso-accuracy comparison of
 * Fig. 12 and the NoC-integration study of Fig. 18(b).
 *
 * Every baseline is modeled as a parameterization of the same roofline
 * + cycle skeleton: a 64x64 MAC array at 1 GHz with identical memory
 * hierarchy (the paper's fair-comparison setup), differing in native
 * precision, weights-per-PE throughput, effective weight bit width at
 * iso-accuracy, per-MAC energy, unaligned-access penalties, and
 * decode/encode overheads.
 */

#ifndef MSQ_ACCEL_BASELINES_H
#define MSQ_ACCEL_BASELINES_H

#include <string>
#include <vector>

#include "accel/area.h"
#include "accel/cycle_model.h"
#include "accel/energy.h"

namespace msq {

/** Parameterization of one accelerator design. */
struct AccelDesign
{
    std::string name;
    unsigned computeBits = 4;     ///< native MAC precision
    double macsPerPe = 1.0;       ///< throughput per PE per cycle
    double weightEbw = 4.0;       ///< iso-accuracy weight bits/element
    double memPenalty = 1.0;      ///< multiplier on weight traffic
                                  ///< (unaligned/sparse access)
    double pipelineOverhead = 0.0;///< extra cycles per tile (decoders)
    double macEnergyScale = 1.0;  ///< relative to the INT table entry
    bool usesRecon = false;       ///< MicroScopiQ designs only
    double areaMm2 = 0.05;        ///< compute area for static power
    /**
     * Effective array throughput relative to a clean INT pipeline.
     * Designs that handle outliers *inside* the PE array (separate
     * outlier PEs, encode/decode stages, FP datapaths) lose sustained
     * throughput — the cost MicroScopiQ's ReCoN abstraction avoids
     * (paper Section 5.4).
     */
    double throughputScale = 1.0;
};

/** MicroScopiQ v1: all layers at bb=4 (W4A4). */
AccelDesign microScopiQV1();

/** MicroScopiQ v2: most layers at bb=2 (WxA4, iso-accuracy mix). */
AccelDesign microScopiQV2();

/** OliVe at W4 (its iso-accuracy operating point). */
AccelDesign oliveDesign();

/** GOBO: 3-bit centroids + FP32 outliers, unaligned side storage. */
AccelDesign goboDesign();

/** OLAccel: 4-bit inliers with 16-bit outlier PEs. */
AccelDesign olaccelDesign();

/** AdaptivFloat: 8-bit adaptive FP PEs. */
AccelDesign adaptivFloatDesign();

/** ANT: 4-bit adaptive numeric types, aligned. */
AccelDesign antDesign();

/** All Fig. 12 designs in display order. */
std::vector<AccelDesign> allDesigns();

/** Latency + energy of a design on a workload list. */
struct DesignRun
{
    std::string design;
    double cycles = 0.0;
    double energyPj = 0.0;
    CycleStats stats;
};

/**
 * Evaluate a design on workloads: adjusts the workload precision and
 * EBW to the design's iso-accuracy operating point, applies memory
 * penalties and pipeline overheads, and prices energy at the design's
 * MAC cost.
 */
DesignRun evaluateDesign(const AccelDesign &design,
                         const AccelConfig &base_config,
                         std::vector<Workload> workloads, Rng &rng);

/** NoC-based accelerator integration overhead (Fig. 18b). */
struct NocIntegration
{
    std::string accelerator;  ///< "MTIA-like" or "Eyeriss v2-like"
    double basePeAreaFrac;    ///< PE share of compute area
    double baseNocAreaFrac;   ///< NoC share of compute area
    double reconAddedFrac;    ///< compute-area increase with ReCoN ops
};

/** The two integration case studies of Fig. 18(b). */
std::vector<NocIntegration> nocIntegrationStudies();

} // namespace msq

#endif // MSQ_ACCEL_BASELINES_H
