#include "accel/acts.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "mx/mx_int.h"

namespace msq {

QuantizedActs::QuantizedActs(const Matrix &x, unsigned bits, size_t group)
    : tokens_(x.cols()),
      channels_(x.rows()),
      group_(group == 0 ? x.rows() : group),
      bits_(bits)
{
    MSQ_ASSERT(bits >= 2 && bits <= 8, "iActs are at most 8-bit");
    groupsPerToken_ = (channels_ + group_ - 1) / group_;
    codes_.resize(tokens_ * channels_);
    scaleExp_.resize(tokens_ * groupsPerToken_);

    std::vector<double> span;
    for (size_t t = 0; t < tokens_; ++t) {
        for (size_t g = 0; g < groupsPerToken_; ++g) {
            const size_t c0 = g * group_;
            const size_t n = std::min(group_, channels_ - c0);
            span.resize(n);
            for (size_t i = 0; i < n; ++i)
                span[i] = x(c0 + i, t);
            int e = mxIntScaleExp(span, bits_);
            e = std::clamp(e, -128, 127);
            scaleExp_[t * groupsPerToken_ + g] = static_cast<int8_t>(e);
            for (size_t i = 0; i < n; ++i) {
                const int32_t code =
                    mxIntQuantizeValue(span[i], bits_, e);
                codes_[t * channels_ + c0 + i] =
                    static_cast<int8_t>(code);
            }
        }
    }
}

double
QuantizedActs::dequant(size_t token, size_t channel) const
{
    return std::ldexp(static_cast<double>(code(token, channel)),
                      scaleExp(token, channel));
}

Matrix
QuantizedActs::dequantAll() const
{
    Matrix x(channels_, tokens_);
    for (size_t t = 0; t < tokens_; ++t)
        for (size_t c = 0; c < channels_; ++c)
            x(c, t) = dequant(t, c);
    return x;
}

} // namespace msq
