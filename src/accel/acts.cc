#include "accel/acts.h"

#include <cmath>

#include "common/logging.h"

namespace msq {

QuantizedActs::QuantizedActs(const Matrix &x, unsigned bits, size_t group)
    : bits_(bits), panel_(quantizeActsChannelMajor(x, bits, group))
{
}

void
QuantizedActs::requantize(const Matrix &x, unsigned bits, size_t group)
{
    bits_ = bits;
    quantizeActsChannelMajor(x, bits, group, panel_);
}

double
QuantizedActs::dequant(size_t token, size_t channel) const
{
    return std::ldexp(static_cast<double>(code(token, channel)),
                      scaleExp(token, channel));
}

Matrix
QuantizedActs::dequantAll() const
{
    Matrix x(channels(), tokens());
    for (size_t t = 0; t < tokens(); ++t)
        for (size_t c = 0; c < channels(); ++c)
            x(c, t) = dequant(t, c);
    return x;
}

} // namespace msq
