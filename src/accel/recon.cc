#include "accel/recon.h"

#include <algorithm>

#include "common/logging.h"

namespace msq {

namespace {

/** Smallest power of two >= n. */
size_t
ceilPow2(size_t n)
{
    size_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

size_t
log2Ceil(size_t n)
{
    size_t bits = 0;
    size_t p = 1;
    while (p < n) {
        p <<= 1;
        ++bits;
    }
    return bits;
}

} // namespace

ReconNetwork::ReconNetwork(size_t width, unsigned mant_bits,
                           unsigned upper_bits)
    : width_(ceilPow2(width)),
      stages_(log2Ceil(ceilPow2(width)) + 1),
      mantBits_(mant_bits),
      upperBits_(upper_bits)
{
    MSQ_ASSERT(width >= 2, "ReCoN needs at least two columns");
    MSQ_ASSERT(upper_bits <= mant_bits, "upper half wider than mantissa");
}

ReconTransit
ReconNetwork::process(const std::vector<ReconInput> &inputs) const
{
    MSQ_ASSERT(inputs.size() <= width_, "row vector wider than ReCoN");
    ReconTransit transit;
    transit.scaleBits = mantBits_;
    transit.stages = stages_;
    transit.scaledOut.assign(inputs.size(), 0);

    const unsigned lower_bits = mantBits_ - upperBits_;
    const int64_t one = 1;

    // ---- Functional outputs.
    for (size_t c = 0; c < inputs.size(); ++c) {
        const ReconInput &in = inputs[c];
        switch (in.tag) {
          case ReconInput::Tag::InlierPsum:
            // Pass: the PE already accumulated; scale to integer units
            // (multiply, not <<: the sum may be negative).
            transit.scaledOut[c] =
                (in.res + in.iacc) * (int64_t{1} << mantBits_);
            break;
          case ReconInput::Tag::OutlierLower:
            // Swap: the vacated column forwards its iAcc (the pruned
            // weight contributes zero).
            transit.scaledOut[c] = in.iacc * (int64_t{1} << mantBits_);
            break;
          case ReconInput::Tag::OutlierUpper: {
            MSQ_ASSERT(in.partner >= 0 &&
                       static_cast<size_t>(in.partner) < inputs.size(),
                       "outlier upper half without a partner column");
            const ReconInput &lo = inputs[in.partner];
            MSQ_ASSERT(lo.tag == ReconInput::Tag::OutlierLower,
                       "partner column is not a lower half");
            // Merge (Section 5.4 / Fig. 8): shift the upper product by
            // the upper-half width, the lower product by the full
            // mantissa width, add the sign-corrected iAct for the FP
            // hidden bit, then the upper position's iAcc. All in units
            // of 2^-mantBits to stay exact:
            //   out = res_u * 2^(M - upper_bits) + res_l
            //       + sign*iact * 2^M + iacc * 2^M.
            // Multiplies instead of <<: the addends may be negative,
            // and a left shift of a negative value is undefined.
            const int64_t hidden =
                (in.sign ? -one : one) * static_cast<int64_t>(in.iact);
            transit.scaledOut[c] =
                in.res * (int64_t{1} << lower_bits) + lo.res +
                (hidden + in.iacc) * (int64_t{1} << mantBits_);
            break;
          }
        }
    }

    // ---- Routing: bit-fixing paths for each lower->upper move through
    // the butterfly; count switch output-port conflicts per stage.
    const size_t route_stages = stages_ - 1;  // internal stages
    std::vector<std::pair<size_t, size_t>> moves;  // (from, to)
    for (size_t c = 0; c < inputs.size(); ++c)
        if (inputs[c].tag == ReconInput::Tag::OutlierUpper)
            moves.emplace_back(static_cast<size_t>(inputs[c].partner), c);

    if (!moves.empty() && route_stages > 0) {
        // Track, per stage, which (switch, port) pairs are claimed.
        for (size_t s = 0; s < route_stages; ++s) {
            std::vector<std::pair<size_t, size_t>> claimed;
            for (auto &[from, to] : moves) {
                // Bit-fixing: at stage s the packet fixes bit s of its
                // column toward the destination.
                const size_t bit = one << s;
                size_t next = from;
                if ((from & bit) != (to & bit))
                    next = from ^ bit;
                const size_t sw = next >> (s + 1);  // switch group
                const size_t port = next;
                for (auto &[csw, cport] : claimed) {
                    if (csw == sw && cport == port)
                        ++transit.portConflicts;
                }
                claimed.emplace_back(sw, port);
                from = next;
            }
        }
    }
    return transit;
}

} // namespace msq
