/**
 * @file
 * Transformer-block-level simulation: expands a model profile into the
 * full workload list of one decode step — the four projection GEMMs,
 * the attention score/context GEMVs against the (growing) KV cache,
 * and the MLP pair — then aggregates cycle and energy statistics into
 * the paper's Section 7.5 power breakdown (PE array / on-chip memory /
 * ReCoN percentages).
 */

#ifndef MSQ_ACCEL_BLOCK_SIM_H
#define MSQ_ACCEL_BLOCK_SIM_H

#include <string>
#include <vector>

#include "accel/cycle_model.h"
#include "accel/energy.h"
#include "model/model_zoo.h"

namespace msq {

/** Decode-step parameters. */
struct DecodeStep
{
    size_t batch = 1;          ///< concurrent sequences
    size_t contextLength = 2048;  ///< tokens already in the KV cache
    unsigned weightBits = 2;
    unsigned kvBits = 8;       ///< KV cache precision
    double microOutlierFrac = 0.09;
};

/** Expand one transformer block of `model` into GEMM workloads. */
std::vector<Workload> blockWorkloads(const ModelProfile &model,
                                     const DecodeStep &step);

/** Aggregated full-model decode statistics. */
struct BlockSimResult
{
    CycleStats perBlock;       ///< one block's statistics
    double modelCycles = 0.0;  ///< all blocks (realLayers x per block)
    EnergyBreakdown energy;    ///< one block's energy

    /** Power-breakdown percentages (Section 7.5). */
    double pePercent = 0.0;
    double memoryPercent = 0.0;
    double reconPercent = 0.0;
};

/** Simulate one decode step of the full model on the accelerator. */
BlockSimResult simulateDecode(const AccelConfig &config,
                              const ModelProfile &model,
                              const DecodeStep &step, Rng &rng);

} // namespace msq

#endif // MSQ_ACCEL_BLOCK_SIM_H
