/**
 * @file
 * Integer activation container for the accelerator: iActs are stored as
 * 8-bit (or sign-extended lower precision) codes with power-of-two
 * scales shared per (token, channel-group), matching the MX-INT
 * activation quantization of the paper and the iAct buffer layout of
 * Section 5.2.
 *
 * Storage is channel-major (one contiguous row of token codes per
 * channel, see quant/act_quant.h): the packed-execution GEMM reduces
 * over channels, so its inner loops stream `channelCodes(k)` rows
 * directly instead of re-gathering a token-major buffer for every k.
 */

#ifndef MSQ_ACCEL_ACTS_H
#define MSQ_ACCEL_ACTS_H

#include <cstdint>
#include <vector>

#include "common/matrix.h"
#include "quant/act_quant.h"

namespace msq {

/** Accelerator-resident quantized activations. */
class QuantizedActs
{
  public:
    /**
     * Quantize activations X[k][tokens] to `bits`-bit MX-INT with
     * power-of-two scales shared by `group` channels within each token.
     */
    QuantizedActs(const Matrix &x, unsigned bits, size_t group = 128);

    /** Empty container: fill through requantize() before use. */
    QuantizedActs() = default;

    /**
     * Refill from a fresh activation batch, reusing the panel buffers
     * (quant/act_quant.h in-place variant). Per-step consumers — the
     * decode loop quantizes every projection's inputs every step —
     * requantize one scratch instead of constructing. Bytes are
     * identical to constructing a new QuantizedActs.
     */
    void requantize(const Matrix &x, unsigned bits, size_t group = 128);

    size_t tokens() const { return panel_.tokens; }
    size_t channels() const { return panel_.channels; }
    unsigned bits() const { return bits_; }
    size_t group() const { return panel_.group; }
    size_t groups() const { return panel_.groups; }

    /** Integer code of (token, channel). */
    int8_t code(size_t token, size_t channel) const
    {
        return panel_.codes[channel * panel_.tokens + token];
    }

    /** Scale exponent of (token, channel)'s group. */
    int scaleExp(size_t token, size_t channel) const
    {
        return panel_
            .scaleExp[(channel / panel_.group) * panel_.tokens + token];
    }

    /**
     * @name Zero-copy panel rows for the serving kernel
     * `channelCodes(c)` spans tokens() int8 codes of channel c;
     * `groupScaleExps(g)` spans tokens() scale exponents of channel
     * group g. @pre c < channels(), g < groups()
     */
    ///@{
    const int8_t *channelCodes(size_t c) const
    {
        return panel_.channelRow(c);
    }
    const int8_t *groupScaleExps(size_t g) const
    {
        return panel_.groupRow(g);
    }
    ///@}

    /** Dequantized value. */
    double dequant(size_t token, size_t channel) const;

    /** Dequantize everything back to a channels x tokens matrix. */
    Matrix dequantAll() const;

  private:
    unsigned bits_ = 8;
    MxIntActPanel panel_;
};

} // namespace msq

#endif // MSQ_ACCEL_ACTS_H
