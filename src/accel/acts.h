/**
 * @file
 * Integer activation container for the accelerator: iActs are stored as
 * 8-bit (or sign-extended lower precision) codes with power-of-two
 * scales shared per (token, channel-group), matching the MX-INT
 * activation quantization of the paper and the iAct buffer layout of
 * Section 5.2.
 */

#ifndef MSQ_ACCEL_ACTS_H
#define MSQ_ACCEL_ACTS_H

#include <cstdint>
#include <vector>

#include "common/matrix.h"

namespace msq {

/** Accelerator-resident quantized activations. */
class QuantizedActs
{
  public:
    /**
     * Quantize activations X[k][tokens] to `bits`-bit MX-INT with
     * power-of-two scales shared by `group` channels within each token.
     */
    QuantizedActs(const Matrix &x, unsigned bits, size_t group = 128);

    size_t tokens() const { return tokens_; }
    size_t channels() const { return channels_; }
    unsigned bits() const { return bits_; }
    size_t group() const { return group_; }

    /** Integer code of (token, channel). */
    int8_t code(size_t token, size_t channel) const
    {
        return codes_[token * channels_ + channel];
    }

    /** Scale exponent of (token, channel)'s group. */
    int scaleExp(size_t token, size_t channel) const
    {
        return scaleExp_[token * groupsPerToken_ + channel / group_];
    }

    /** Dequantized value. */
    double dequant(size_t token, size_t channel) const;

    /** Dequantize everything back to a channels x tokens matrix. */
    Matrix dequantAll() const;

  private:
    size_t tokens_ = 0;
    size_t channels_ = 0;
    size_t group_ = 128;
    size_t groupsPerToken_ = 0;
    unsigned bits_ = 8;
    std::vector<int8_t> codes_;
    std::vector<int8_t> scaleExp_;
};

} // namespace msq

#endif // MSQ_ACCEL_ACTS_H
