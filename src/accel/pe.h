/**
 * @file
 * Multi-precision processing element (paper Section 5.3, Fig. 7a).
 *
 * The PE multiplies an 8-bit iAct with either one 4-bit weight
 * (MODE 4b) or two packed 2-bit weights sharing the same iAct
 * (MODE 2b). Internally it is a multiplier tree of four 4-bit x 2-bit
 * multipliers whose partial products are combined with shifts; the
 * functional model reproduces that decomposition exactly so the unit
 * test can check it against direct multiplication over the full input
 * cross product.
 *
 * Inlier weights are two's-complement; outlier halves are
 * sign-magnitude (the Inlier/Outlier select of Fig. 4 switches the
 * interpretation). Accumulation for outlier halves is offloaded to
 * ReCoN; the PE only forms the raw products.
 */

#ifndef MSQ_ACCEL_PE_H
#define MSQ_ACCEL_PE_H

#include <cstdint>

#include "accel/accel_config.h"

namespace msq {

/** Result of a MODE 2b multiplication: two independent products. */
struct PePairResult
{
    int32_t hi = 0;  ///< product of the weight in bits [3:2]
    int32_t lo = 0;  ///< product of the weight in bits [1:0]
};

/** Functional model of the multi-precision PE. */
class MultiPrecisionPe
{
  public:
    /**
     * MODE 4b: multiply a 4-bit two's-complement weight code with an
     * 8-bit two's-complement iAct via the multiplier tree.
     */
    static int32_t multiply4b(uint8_t weight_code, int8_t iact);

    /**
     * MODE 2b: multiply the two packed 2-bit weight codes (bits [3:2]
     * and [1:0]) with the shared iAct.
     */
    static PePairResult multiply2b(uint8_t packed_code, int8_t iact);

    /**
     * Outlier-half product: the half's sign-magnitude integer times the
     * iAct. `half_code` is a bb-bit pattern with the sign in the MSB.
     */
    static int32_t multiplyOutlierHalf(uint8_t half_code, unsigned bb,
                                       unsigned half_mant_bits,
                                       int8_t iact);

    /** Reference (direct) signed multiply, for tests. */
    static int32_t referenceMultiply(int32_t w, int32_t a)
    {
        return w * a;
    }
};

} // namespace msq

#endif // MSQ_ACCEL_PE_H
