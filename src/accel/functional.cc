#include "accel/functional.h"

#include <cmath>

#include "accel/int_dequant.h"
#include "accel/pe.h"
#include "common/logging.h"
#include "core/encoding.h"

namespace msq {

FunctionalAccelerator::FunctionalAccelerator(const AccelConfig &config)
    : config_(config)
{
}

Matrix
FunctionalAccelerator::referenceGemm(const PackedLayer &weights,
                                     const QuantizedActs &acts)
{
    MSQ_ASSERT(weights.rows() == acts.channels(),
               "GEMM reduction dimension mismatch");
    const Matrix w = weights.dequantAll();
    const Matrix x = acts.dequantAll();
    // Y[tokens][o] = (W^T X)^T.
    return w.transposedMatmul(x).transposed();
}

Matrix
FunctionalAccelerator::gemm(const PackedLayer &weights,
                            const QuantizedActs &acts)
{
    MSQ_ASSERT(weights.rows() == acts.channels(),
               "GEMM reduction dimension mismatch");
    stats_ = FunctionalStats{};

    const MsqConfig &qcfg = weights.config();
    const unsigned bb = qcfg.inlierBits;
    const FpFormat fmt = weights.outlierFormat();
    const unsigned mant_bits = fmt.mbits;
    const unsigned upper_bits = upperMantissaBits(mant_bits);
    const size_t K = weights.rows();
    const size_t O = weights.cols();
    const size_t M = acts.tokens();

    ReconNetwork recon(std::max<size_t>(config_.cols, 2), mant_bits,
                       upper_bits);

    Matrix out(M, O);

    // Weight-stationary walk: every k-row of the packed layer is mapped
    // to a PE row (the tiler's job in the cycle model; functionally we
    // process rows in order). Accumulation is carried in real space
    // because inlier and outlier groups have different power-of-two
    // scales — the hardware reconciles them with the output-scale shifts
    // of Section 5.5; the functional model applies each group's scale to
    // its integer contribution, which is the same arithmetic without
    // truncation.
    const size_t micro = qcfg.microBlock;

    for (size_t m = 0; m < M; ++m) {
        std::vector<double> acc(O, 0.0);
        for (size_t k = 0; k < K; ++k) {
            const int8_t ia = acts.code(m, k);
            const double act_scale_base = 1.0;  // applied per group below
            (void)act_scale_base;

            // Process this row micro-block by micro-block, mirroring the
            // per-row ReCoN transit.
            for (size_t ub = 0; ub < weights.microPerRow(); ++ub) {
                const size_t base = ub * micro;
                const size_t n = std::min(micro, O - base);
                const MicroBlockMeta &meta = weights.micro(k, ub);

                if (!meta.hasOutliers) {
                    // Pure inlier micro-block: PE multiply + accumulate.
                    for (size_t i = 0; i < n; ++i) {
                        const size_t o = base + i;
                        const SlotKind kind = weights.kind(k, o);
                        if (kind == SlotKind::PrunedZero)
                            continue;
                        MSQ_ASSERT(kind == SlotKind::Inlier,
                                   "outlier slot in inlier micro-block");
                        const int32_t prod =
                            peInlierProduct(weights.code(k, o), bb, ia);
                        ++stats_.macs;
                        const size_t mb = o / qcfg.macroBlock;
                        const double scale = std::ldexp(
                            1.0, weights.isf(k, mb) +
                                     acts.scaleExp(m, k));
                        acc[o] += static_cast<double>(prod) * scale;
                    }
                    continue;
                }

                // Outlier micro-block: build the ReCoN input vector.
                std::vector<ReconInput> inputs(n);
                for (size_t i = 0; i < n; ++i) {
                    const size_t o = base + i;
                    const SlotKind kind = weights.kind(k, o);
                    ReconInput &in = inputs[i];
                    in.iact = ia;
                    in.iacc = 0;  // accumulation carried outside in acc[]
                    switch (kind) {
                      case SlotKind::Inlier: {
                        const int32_t prod =
                            peInlierProduct(weights.code(k, o), bb, ia);
                        ++stats_.macs;
                        in.tag = ReconInput::Tag::InlierPsum;
                        in.res = prod;
                        break;
                      }
                      case SlotKind::PrunedZero:
                        in.tag = ReconInput::Tag::InlierPsum;
                        in.res = 0;
                        break;
                      case SlotKind::OutlierUpper:
                      case SlotKind::OutlierLower: {
                        const unsigned half_bits =
                            kind == SlotKind::OutlierUpper
                                ? upper_bits
                                : mant_bits - upper_bits;
                        in.res = MultiPrecisionPe::multiplyOutlierHalf(
                            weights.code(k, o), bb, half_bits, ia);
                        ++stats_.macs;
                        in.tag = kind == SlotKind::OutlierUpper
                                     ? ReconInput::Tag::OutlierUpper
                                     : ReconInput::Tag::OutlierLower;
                        in.sign = static_cast<int8_t>(
                            (weights.code(k, o) >> (bb - 1)) & 1u);
                        break;
                      }
                    }
                }
                // Wire partners from the permutation list.
                for (const PermEntry &entry : meta.perm) {
                    inputs[entry.upperLoc].partner =
                        static_cast<int>(entry.lowerLoc);
                    inputs[entry.lowerLoc].partner =
                        static_cast<int>(entry.upperLoc);
                }

                const ReconTransit transit = recon.process(inputs);
                ++stats_.reconTransits;
                stats_.reconMerges += meta.perm.size();
                stats_.reconPortConflicts += transit.portConflicts;

                // Apply scales: inlier slots carry the inlier scale,
                // merged outlier slots the outlier scale (Osf).
                const int osf = weights.outlierScaleExp(k, ub);
                for (size_t i = 0; i < n; ++i) {
                    const size_t o = base + i;
                    const double scaled = std::ldexp(
                        static_cast<double>(transit.scaledOut[i]),
                        -static_cast<int>(transit.scaleBits));
                    const SlotKind kind = weights.kind(k, o);
                    int wexp;
                    if (kind == SlotKind::OutlierUpper) {
                        wexp = osf;
                    } else {
                        const size_t mb = o / qcfg.macroBlock;
                        wexp = weights.isf(k, mb);
                    }
                    acc[o] += scaled *
                              std::ldexp(1.0, wexp + acts.scaleExp(m, k));
                }
            }
        }
        for (size_t o = 0; o < O; ++o)
            out(m, o) = acc[o];
    }
    return out;
}

} // namespace msq
