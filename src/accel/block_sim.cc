#include "accel/block_sim.h"

#include <cmath>

#include "accel/area.h"
#include "common/logging.h"

namespace msq {

std::vector<Workload>
blockWorkloads(const ModelProfile &model, const DecodeStep &step)
{
    const size_t d = model.realHidden;
    std::vector<Workload> wls;

    auto weight_gemm = [&](size_t k, size_t o) {
        Workload wl;
        wl.tokens = step.batch;
        wl.reduction = k;
        wl.outputs = o;
        wl.weightBits = step.weightBits;
        wl.ebw = step.weightBits == 2 ? 2.36 : 4.15;
        wl.microOutlierFrac = step.microOutlierFrac;
        return wl;
    };

    // Projections: fused QKV, attention output, MLP up, MLP down.
    wls.push_back(weight_gemm(d, d + d / 2));
    wls.push_back(weight_gemm(d, d));
    wls.push_back(weight_gemm(d, 4 * d));
    wls.push_back(weight_gemm(4 * d, d));

    // Attention GEMVs against the KV cache: scores (d x context) and
    // context reduction (context x d). The "weights" here are the
    // cached K/V at kvBits with no outlier metadata (activations are
    // never MicroScopiQ-packed), so no ReCoN traffic.
    Workload scores;
    scores.tokens = step.batch;
    scores.reduction = d;
    scores.outputs = step.contextLength;
    scores.weightBits = step.kvBits >= 4 ? step.kvBits : 4;
    scores.ebw = static_cast<double>(step.kvBits);
    scores.microOutlierFrac = 0.0;
    wls.push_back(scores);

    Workload context;
    context.tokens = step.batch;
    context.reduction = step.contextLength;
    context.outputs = d;
    context.weightBits = step.kvBits >= 4 ? step.kvBits : 4;
    context.ebw = static_cast<double>(step.kvBits);
    context.microOutlierFrac = 0.0;
    wls.push_back(context);

    return wls;
}

BlockSimResult
simulateDecode(const AccelConfig &config, const ModelProfile &model,
               const DecodeStep &step, Rng &rng)
{
    BlockSimResult result;
    CycleModel cm(config);
    result.perBlock = cm.runAll(blockWorkloads(model, step), rng);
    result.modelCycles = static_cast<double>(result.perBlock.totalCycles) *
                         static_cast<double>(model.realLayers);

    EnergyParams params;
    const double area =
        0.013 + static_cast<double>(config.l2Bytes) / (1024.0 * 1024.0) *
                    kSramMm2PerMb;
    result.energy = computeEnergy(params, result.perBlock,
                                  step.weightBits, area, config.clockGhz);

    const double memory = result.energy.bufferDynamic +
                          result.energy.l2Dynamic +
                          result.energy.dramDynamic;
    const double total = result.energy.total();
    if (total > 0.0) {
        result.pePercent = 100.0 * result.energy.peDynamic / total;
        result.memoryPercent = 100.0 * memory / total;
        result.reconPercent = 100.0 * result.energy.reconDynamic / total;
    }
    return result;
}

} // namespace msq
