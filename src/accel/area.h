/**
 * @file
 * Area model at TSMC 7 nm, seeded with the per-component areas the
 * paper publishes in Table 5 (synthesized with Design Compiler +
 * Innovus): MicroScopiQ base PE 2.82 um^2, multi-precision support
 * 0.22 um^2/PE, ReCoN 204.68 um^2/unit, sync buffer 20.45 um^2,
 * controller 105.78 um^2; OliVe and GOBO component areas likewise.
 * On-chip SRAM area uses a CACTI-like density constant. The model
 * reproduces Table 5's aggregation and the Fig. 17 scaling study.
 */

#ifndef MSQ_ACCEL_AREA_H
#define MSQ_ACCEL_AREA_H

#include <cstddef>
#include <string>
#include <vector>

namespace msq {

/** One component line of a compute-area breakdown. */
struct AreaComponent
{
    std::string name;
    double unitAreaUm2 = 0.0;
    size_t count = 0;

    double totalUm2() const
    {
        return unitAreaUm2 * static_cast<double>(count);
    }
};

/** A full accelerator area breakdown. */
struct AreaBreakdown
{
    std::string design;
    std::vector<AreaComponent> components;
    double sramBytes = 0.0;   ///< on-chip buffers + L2

    /** Compute area (all logic components) in mm^2. */
    double computeAreaMm2() const;

    /** SRAM area in mm^2 (CACTI-like density). */
    double sramAreaMm2() const;

    /** Total on-chip area in mm^2. */
    double totalAreaMm2() const
    {
        return computeAreaMm2() + sramAreaMm2();
    }

    /**
     * Overhead of everything that is not the PE array proper, as a
     * fraction of the compute area (Table 5's "compute overhead").
     */
    double overheadFraction() const;
};

/** SRAM density constant (mm^2 per MB at 7 nm, CACTI-flavored). */
constexpr double kSramMm2PerMb = 0.45;

/**
 * MicroScopiQ area for an array of rows x cols with `recon_units`
 * ReCoN units and the given buffer capacity.
 */
AreaBreakdown microScopiQArea(size_t rows, size_t cols,
                              size_t recon_units, double sram_bytes);

/** OliVe baseline with the paper's component areas. */
AreaBreakdown oliveArea(size_t rows, size_t cols, double sram_bytes);

/** GOBO baseline with the paper's component areas. */
AreaBreakdown goboArea(size_t rows, size_t cols, double sram_bytes);

/**
 * Peak compute density in TOPS/mm^2 (1 MAC = 2 ops at native
 * precision, 1 GHz clock): MicroScopiQ at bb=2 performs two MACs per
 * PE per cycle, OliVe/GOBO one.
 */
double computeDensityTops(const AreaBreakdown &area, size_t pes,
                          double macs_per_pe, double clock_ghz = 1.0);

} // namespace msq

#endif // MSQ_ACCEL_AREA_H
