#include "accel/baselines.h"

#include "common/logging.h"

namespace msq {

AccelDesign
microScopiQV1()
{
    AccelDesign d;
    d.name = "MicroScopiQ-v1";
    d.computeBits = 4;
    d.macsPerPe = 1.0;
    d.weightEbw = 4.15;  // paper: EBW at bb=4
    d.usesRecon = true;
    d.areaMm2 = 0.012;
    return d;
}

AccelDesign
microScopiQV2()
{
    AccelDesign d;
    d.name = "MicroScopiQ-v2";
    d.computeBits = 2;
    d.macsPerPe = 2.0;   // MODE 2b packs two weights per PE
    d.weightEbw = 2.66;  // mostly bb=2 (2.36) with some bb=4 layers
    d.usesRecon = true;
    d.areaMm2 = 0.012;
    return d;
}

AccelDesign
oliveDesign()
{
    AccelDesign d;
    d.name = "OliVe";
    d.computeBits = 4;
    d.macsPerPe = 1.0;
    d.weightEbw = 4.0;
    d.pipelineOverhead = 4.0;  // encode/decode stages per tile
    d.macEnergyScale = 1.25;   // exponent-integer PE datapath
    d.areaMm2 = 0.011;
    d.throughputScale = 0.90;  // decoder stalls in the PE pipeline
    return d;
}

AccelDesign
goboDesign()
{
    AccelDesign d;
    d.name = "GOBO";
    d.computeBits = 8;   // centroid-decoded values processed at 8-bit+
    d.macsPerPe = 1.0;
    d.weightEbw = 6.2;   // 3-bit indices + fp32 outliers + positions
    d.memPenalty = 1.6;  // unaligned sparse outlier accesses
    d.pipelineOverhead = 2.0;
    d.areaMm2 = 0.216;
    d.throughputScale = 0.45;  // serialized outlier-PE processing
    return d;
}

AccelDesign
olaccelDesign()
{
    AccelDesign d;
    d.name = "OLAccel";
    d.computeBits = 4;
    d.macsPerPe = 1.0;
    d.weightEbw = 4.6;   // 4-bit dense + 16-bit sparse outliers
    d.memPenalty = 1.3;
    d.macEnergyScale = 1.4;  // mixed 4/16-bit PE clusters
    d.areaMm2 = 0.05;
    d.throughputScale = 0.55;  // outlier cluster serialization
    return d;
}

AccelDesign
adaptivFloatDesign()
{
    AccelDesign d;
    d.name = "AdaptivFloat";
    d.computeBits = 8;
    d.macsPerPe = 1.0;
    d.weightEbw = 8.0;
    d.macEnergyScale = 2.2;  // FP datapath
    d.areaMm2 = 0.08;
    d.throughputScale = 0.60;  // deep FP pipeline, lower utilization
    return d;
}

AccelDesign
antDesign()
{
    AccelDesign d;
    d.name = "ANT";
    d.computeBits = 4;
    d.macsPerPe = 1.0;
    d.weightEbw = 4.0;
    d.pipelineOverhead = 2.0;  // type decoders
    d.macEnergyScale = 1.15;
    d.areaMm2 = 0.011;
    d.throughputScale = 0.95;
    return d;
}

std::vector<AccelDesign>
allDesigns()
{
    return {goboDesign(),        olaccelDesign(), adaptivFloatDesign(),
            antDesign(),         oliveDesign(),   microScopiQV1(),
            microScopiQV2()};
}

DesignRun
evaluateDesign(const AccelDesign &design, const AccelConfig &base_config,
               std::vector<Workload> workloads, Rng &rng)
{
    AccelConfig config = base_config;
    if (!design.usesRecon)
        config.reconUnits = 0;

    // Apply the design's operating point to every workload.
    for (Workload &wl : workloads) {
        wl.weightBits = design.computeBits;
        wl.ebw = design.weightEbw * design.memPenalty;
        if (!design.usesRecon)
            wl.microOutlierFrac = 0.0;  // no ReCoN transits to model
    }

    CycleModel model(config.reconUnits == 0
                         ? [&config] {
                               AccelConfig c = config;
                               c.reconUnits = 1;  // avoid div-by-zero
                               return c;
                           }()
                         : config);

    DesignRun run;
    run.design = design.name;
    CycleStats total;
    for (const Workload &wl : workloads) {
        CycleStats s = model.run(wl, rng);
        if (!design.usesRecon) {
            // Baselines do not transit ReCoN; strip its effects and
            // charge the decode pipeline overhead instead.
            s.totalCycles = s.totalCycles > s.reconStallCycles
                                ? s.totalCycles - s.reconStallCycles
                                : s.totalCycles;
            s.reconAccesses = 0;
            s.reconConflicts = 0;
            s.reconStallCycles = 0;
            s.totalCycles +=
                static_cast<uint64_t>(design.pipelineOverhead);
        }
        // Effective-throughput derating for outlier handling inside
        // the PE array (decoders, outlier PEs, FP pipelines).
        s.totalCycles = static_cast<uint64_t>(
            static_cast<double>(s.totalCycles) / design.throughputScale);
        // MODE 2b doubles per-PE throughput: fewer column tiles, which
        // the tiler already accounts for via weightsPerPe; designs with
        // macsPerPe == 1 at computeBits == 2 do not exist here.
        total.totalCycles += s.totalCycles;
        total.computeCycles += s.computeCycles;
        total.exposedMemCycles += s.exposedMemCycles;
        total.reconStallCycles += s.reconStallCycles;
        total.reconAccesses += s.reconAccesses;
        total.reconConflicts += s.reconConflicts;
        total.macs += s.macs;
        total.traffic += s.traffic;
    }

    EnergyParams eparams;
    EnergyBreakdown energy = computeEnergy(
        eparams, total, design.computeBits, design.areaMm2 + 1.0,
        base_config.clockGhz);
    energy.peDynamic *= design.macEnergyScale;

    run.cycles = static_cast<double>(total.totalCycles);
    run.energyPj = energy.total();
    run.stats = total;
    return run;
}

std::vector<NocIntegration>
nocIntegrationStudies()
{
    // Fig. 18(b): integrating ReCoN functionality into accelerators
    // that already ship a NoC costs 3% (MTIA-like) and 2.3%
    // (Eyeriss v2-like) compute area.
    return {
        {"MTIA-like", 0.901, 0.099, 0.030},
        {"Eyeriss v2-like", 0.909, 0.091, 0.023},
    };
}

} // namespace msq
