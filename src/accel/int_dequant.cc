#include "accel/int_dequant.h"

#include "accel/pe.h"
#include "common/logging.h"
#include "core/encoding.h"

namespace msq {

int32_t
peInlierProduct(uint8_t code, unsigned bb, int8_t iact)
{
    MSQ_ASSERT(bb == 2 || bb == 4, "inlier codes are 2- or 4-bit");
    if (bb == 2) {
        // MODE 2b: the code sits in the low pair.
        return MultiPrecisionPe::multiply2b(code, iact).lo;
    }
    return MultiPrecisionPe::multiply4b(code, iact);
}

int32_t
mergedOutlierMantissa(uint8_t upper_code, uint8_t lower_code,
                      unsigned mbits, unsigned bb)
{
    OutlierHalves halves;
    halves.upper = upper_code;
    halves.lower = lower_code;
    uint8_t sign = 0;
    uint16_t mantissa = 0;
    mergeOutlier(halves, mbits, bb, sign, mantissa);
    const int32_t mag = (int32_t{1} << mbits) + static_cast<int32_t>(mantissa);
    return sign ? -mag : mag;
}

int
maxPanelShift(unsigned inlier_bits, unsigned act_bits, size_t panel_rows)
{
    MSQ_ASSERT(panel_rows > 0, "a panel holds at least one row");
    int log2n = 0;
    while ((size_t{1} << log2n) < panel_rows)
        ++log2n;
    return 30 - static_cast<int>(inlier_bits) -
           static_cast<int>(act_bits) + 2 - log2n;
}

} // namespace msq
