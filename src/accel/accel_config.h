/**
 * @file
 * Configuration of the MicroScopiQ accelerator (paper Section 5): a
 * weight-stationary systolic array of multi-precision INT PEs, one or
 * more time-multiplexed ReCoN units, a two-level on-chip memory
 * hierarchy fed from HBM2.
 */

#ifndef MSQ_ACCEL_ACCEL_CONFIG_H
#define MSQ_ACCEL_ACCEL_CONFIG_H

#include <cstddef>

namespace msq {

/** PE precision mode (paper Section 5.3). */
enum class PeMode
{
    Mode4b,  ///< one 4-bit weight per PE
    Mode2b,  ///< two packed 2-bit weights per PE (double throughput)
};

/** Full accelerator configuration. */
struct AccelConfig
{
    size_t rows = 64;          ///< PE array rows (reduction dimension)
    size_t cols = 64;          ///< PE array columns (output dimension)
    size_t reconUnits = 1;     ///< time-multiplexed ReCoN units
    double clockGhz = 1.0;     ///< paper: all designs close at 1 GHz

    // Memory hierarchy (paper Section 5.1).
    double dramGBs = 256.0;    ///< HBM2 off-chip bandwidth
    double ocpGBs = 64.0;      ///< L2 SRAM -> buffers OCP interface
    size_t l2Bytes = 2 * 1024 * 1024;

    // On-chip buffer capacities; scaled with the array per Section 7.9.
    size_t weightBufBytes = 256 * 1024;
    size_t iactBufBytes = 128 * 1024;
    size_t oactBufBytes = 128 * 1024;

    /**
     * Double-buffered PE weight registers: consecutive weight tiles
     * overlap their systolic fill/drain with the previous tile's
     * compute, so the array pays the pipeline fill once per GEMM
     * rather than once per tile (essential for decode workloads, where
     * tokens << rows). Disable to model a naive non-overlapped array.
     */
    bool interTileOverlap = true;

    /** Weights per PE in the given mode. */
    static size_t weightsPerPe(PeMode mode)
    {
        return mode == PeMode::Mode2b ? 2 : 1;
    }

    /** DRAM bytes transferable per cycle. */
    double dramBytesPerCycle() const { return dramGBs / clockGhz; }

    /** OCP interface bytes per cycle. */
    double ocpBytesPerCycle() const { return ocpGBs / clockGhz; }
};

} // namespace msq

#endif // MSQ_ACCEL_ACCEL_CONFIG_H
