#include "accel/cycle_model.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include "common/logging.h"

namespace msq {

CycleModel::CycleModel(const AccelConfig &config)
    : config_(config)
{
}

void
CycleModel::simulateTile(size_t tile_rows, size_t tokens,
                         size_t micro_block,
                         const std::vector<unsigned> &row_outlier_ubs,
                         uint64_t &compute_cycles, uint64_t &stall_cycles,
                         uint64_t &accesses, uint64_t &conflicts) const
{
    // Baseline pipelined latency of the tile: fill the array (rows +
    // cols skew), stream the tokens, plus the ReCoN pipeline depth for
    // the rows that transit it.
    const size_t recon_pipe =
        static_cast<size_t>(std::log2(std::max<size_t>(config_.cols, 2))) +
        1;
    const uint64_t base = tile_rows + config_.cols + tokens - 1 +
                          recon_pipe;

    // Wavefront arbitration: row r emits token m at cycle r + m; each
    // emission from an outlier row requests one slot-transit per
    // outlier micro-block. The column-wise arbiters let each ReCoN
    // unit serve cols/microBlock slot-transits per cycle, so rows
    // whose outlier micro-blocks occupy different column slots share
    // cycles. FIFO queueing beyond that; the residual queue stalls the
    // pipeline (fine-grained iAct handshaking, Section 5.2).
    uint64_t queued = 0;  // outstanding slot-transits
    uint64_t local_conflicts = 0;
    uint64_t local_accesses = 0;
    const uint64_t slots_per_unit =
        std::max<uint64_t>(config_.cols / std::max<size_t>(micro_block, 1),
                           1);
    const uint64_t capacity =
        std::max<uint64_t>(config_.reconUnits, 1) * slots_per_unit;

    const size_t horizon = tile_rows + tokens;  // emission cycles span
    for (size_t cycle = 0; cycle < horizon; ++cycle) {
        // Emissions this cycle: rows r with token m = cycle - r valid.
        const size_t r_lo =
            cycle >= tokens - 1 ? cycle - (tokens - 1) : 0;
        const size_t r_hi = std::min(cycle, tile_rows - 1);
        uint64_t arrivals = 0;
        uint64_t arriving_rows = 0;
        for (size_t r = r_lo; r <= r_hi; ++r) {
            if (row_outlier_ubs[r] > 0) {
                arrivals += row_outlier_ubs[r];
                ++arriving_rows;
            }
        }
        local_accesses += arriving_rows;
        // Service up to `capacity` slot-transits, queue the rest.
        const uint64_t served =
            std::min<uint64_t>(queued + arrivals, capacity);
        if (arriving_rows > 0 && queued + arrivals > capacity) {
            // Conflicted accesses: rows that could not be fully served
            // this cycle (proportional attribution).
            const uint64_t excess = queued + arrivals - capacity;
            local_conflicts +=
                std::min<uint64_t>(arriving_rows,
                                   (excess + slots_per_unit - 1) /
                                       std::max<uint64_t>(slots_per_unit,
                                                          1));
        }
        queued = queued + arrivals - served;
    }
    // Drain the residual queue.
    const uint64_t drain = (queued + capacity - 1) / capacity;

    if (config_.interTileOverlap) {
        // Steady-state cost of a tile: streaming the tokens plus any
        // ReCoN backlog; the fill/drain skew is charged once per GEMM
        // by the caller.
        compute_cycles = tokens + drain;
    } else {
        compute_cycles = base + drain;
    }
    stall_cycles = drain;
    accesses = local_accesses;
    conflicts = local_conflicts;
}

CycleStats
CycleModel::run(const Workload &workload, Rng &rng) const
{
    CycleStats stats;
    const size_t wpp =
        AccelConfig::weightsPerPe(workload.weightBits == 2
                                      ? PeMode::Mode2b
                                      : PeMode::Mode4b);
    const size_t tile_k = config_.rows;
    const size_t tile_o = config_.cols * wpp;
    const size_t k_tiles = (workload.reduction + tile_k - 1) / tile_k;
    const size_t o_tiles = (workload.outputs + tile_o - 1) / tile_o;

    const size_t micro_per_row_tile = std::max<size_t>(
        tile_o / std::max<size_t>(workload.microBlock, 1), 1);

    // iAct reuse: a k-tile's activations are loaded once if they fit
    // the iAct buffer, then reused across all o-tiles.
    const double iact_tile_bytes =
        static_cast<double>(workload.tokens) * tile_k *
        workload.actBits / 8.0;
    const bool iact_reuse =
        iact_tile_bytes <= static_cast<double>(config_.iactBufBytes);

    double total_compute = 0.0;
    double total_mem = 0.0;

    for (size_t ot = 0; ot < o_tiles; ++ot) {
        const size_t cur_o =
            std::min(tile_o, workload.outputs - ot * tile_o);
        for (size_t kt = 0; kt < k_tiles; ++kt) {
            const size_t cur_k =
                std::min(tile_k, workload.reduction - kt * tile_k);

            // Sample the number of outlier micro-blocks per row
            // (Binomial over the row's resident micro-blocks).
            std::vector<unsigned> row_outlier(cur_k, 0);
            for (size_t r = 0; r < cur_k; ++r)
                for (size_t u = 0; u < micro_per_row_tile; ++u)
                    if (rng.bernoulli(workload.microOutlierFrac))
                        ++row_outlier[r];

            uint64_t compute = 0, stalls = 0, accesses = 0, conflicts = 0;
            simulateTile(cur_k, workload.tokens, workload.microBlock,
                         row_outlier, compute, stalls, accesses,
                         conflicts);
            stats.reconStallCycles += stalls;
            stats.reconAccesses += accesses;
            stats.reconConflicts += conflicts;
            stats.macs += static_cast<uint64_t>(cur_k) * cur_o *
                          workload.tokens;

            // Memory traffic of this tile.
            MemoryTraffic traffic;
            const double weight_bytes =
                static_cast<double>(cur_k) * cur_o * workload.ebw / 8.0;
            traffic.dramBytes += weight_bytes;
            traffic.l2Bytes += weight_bytes;
            if (!iact_reuse || ot == 0) {
                const double iact_bytes =
                    static_cast<double>(workload.tokens) * cur_k *
                    workload.actBits / 8.0;
                traffic.dramBytes += iact_bytes;
                traffic.l2Bytes += iact_bytes;
            }
            if (kt == k_tiles - 1) {
                const double oact_bytes =
                    static_cast<double>(workload.tokens) * cur_o * 1.0;
                traffic.dramBytes += oact_bytes;
                traffic.l2Bytes += oact_bytes;
            }
            traffic.bufferBytes +=
                weight_bytes +
                static_cast<double>(workload.tokens) * cur_k +
                static_cast<double>(workload.tokens) * cur_o;
            stats.traffic += traffic;

            const double mem = memoryCycles(config_, traffic).bound();
            // Double buffering: each tile's latency is the max of its
            // compute and the *next* tile's transfers; aggregate as the
            // running max-sum.
            total_compute += static_cast<double>(compute);
            total_mem += mem;
        }
    }

    if (config_.interTileOverlap) {
        // One pipeline fill per GEMM (array skew + ReCoN depth).
        const double prologue = static_cast<double>(
            config_.rows + config_.cols +
            static_cast<size_t>(
                std::log2(std::max<size_t>(config_.cols, 2))) +
            1);
        total_compute += prologue;
    }

    stats.computeCycles = static_cast<uint64_t>(total_compute);
    const double exposed =
        total_mem > total_compute ? total_mem - total_compute : 0.0;
    stats.exposedMemCycles = static_cast<uint64_t>(exposed);
    stats.totalCycles =
        static_cast<uint64_t>(std::max(total_compute, total_mem));
    return stats;
}

CycleStats
CycleModel::runAll(const std::vector<Workload> &workloads, Rng &rng) const
{
    CycleStats total;
    for (const Workload &wl : workloads) {
        const CycleStats s = run(wl, rng);
        total.totalCycles += s.totalCycles;
        total.computeCycles += s.computeCycles;
        total.exposedMemCycles += s.exposedMemCycles;
        total.reconStallCycles += s.reconStallCycles;
        total.reconAccesses += s.reconAccesses;
        total.reconConflicts += s.reconConflicts;
        total.macs += s.macs;
        total.traffic += s.traffic;
    }
    return total;
}

} // namespace msq
