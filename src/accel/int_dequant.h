/**
 * @file
 * Shared integer decode helpers for executing packed MicroScopiQ codes,
 * extracted from the functional accelerator model so that the PE/ReCoN
 * simulation (accel/functional.cc) and the packed-execution serving
 * engine (src/serve) form weight contributions with one implementation
 * of the same integer arithmetic.
 *
 * Two primitives cover every stored slot of the Fig. 5 layout:
 *
 *  - an inlier slot contributes code x iAct through the multi-precision
 *    PE (two's-complement multiply, MODE 2b or 4b by bit width);
 *  - an outlier contributes its ReCoN-merged hidden-bit mantissa
 *    +/-(2^M + m), scaled by 2^(Osf - M). The merge of the Upper and
 *    Lower bb-bit halves is exactly the shift-and-or ReCoN performs.
 */

#ifndef MSQ_ACCEL_INT_DEQUANT_H
#define MSQ_ACCEL_INT_DEQUANT_H

#include <cstdint>

namespace msq {

/**
 * Product of an inlier weight code with an iAct through the PE model:
 * MODE 2b reads the code from the low bit pair, MODE 4b the full nibble.
 * Equals signExtend(code, bb) * iact (the PE unit test enforces it).
 *
 * @pre bb is 2 or 4 and code < 2^bb
 */
int32_t peInlierProduct(uint8_t code, unsigned bb, int8_t iact);

/**
 * ReCoN-merged integer value of an outlier stored as two bb-bit halves:
 * the signed hidden-bit mantissa +/-(2^mbits + mantissa). The decoded
 * real weight is this value times 2^(Osf - mbits), with Osf from
 * PackedLayer::outlierScaleExp(). Never returns 0 (the hidden bit keeps
 * the magnitude at least 2^mbits).
 *
 * @pre upper_code and lower_code are bb-bit patterns with the sign in
 *      the MSB, as produced by splitOutlier()
 */
int32_t mergedOutlierMantissa(uint8_t upper_code, uint8_t lower_code,
                              unsigned mbits, unsigned bb);

} // namespace msq

#endif // MSQ_ACCEL_INT_DEQUANT_H
