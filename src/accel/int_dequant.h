/**
 * @file
 * Shared integer decode helpers for executing packed MicroScopiQ codes,
 * extracted from the functional accelerator model so that the PE/ReCoN
 * simulation (accel/functional.cc) and the packed-execution serving
 * engine (src/serve) form weight contributions with one implementation
 * of the same integer arithmetic.
 *
 * Two primitives cover every stored slot of the Fig. 5 layout:
 *
 *  - an inlier slot contributes code x iAct through the multi-precision
 *    PE (two's-complement multiply, MODE 2b or 4b by bit width);
 *  - an outlier contributes its ReCoN-merged hidden-bit mantissa
 *    +/-(2^M + m), scaled by 2^(Osf - M). The merge of the Upper and
 *    Lower bb-bit halves is exactly the shift-and-or ReCoN performs.
 */

#ifndef MSQ_ACCEL_INT_DEQUANT_H
#define MSQ_ACCEL_INT_DEQUANT_H

#include <cstddef>
#include <cstdint>

namespace msq {

/**
 * Product of an inlier weight code with an iAct through the PE model:
 * MODE 2b reads the code from the low bit pair, MODE 4b the full nibble.
 * Equals signExtend(code, bb) * iact (the PE unit test enforces it).
 *
 * @pre bb is 2 or 4 and code < 2^bb
 */
int32_t peInlierProduct(uint8_t code, unsigned bb, int8_t iact);

/**
 * ReCoN-merged integer value of an outlier stored as two bb-bit halves:
 * the signed hidden-bit mantissa +/-(2^mbits + mantissa). The decoded
 * real weight is this value times 2^(Osf - mbits), with Osf from
 * PackedLayer::outlierScaleExp(). Never returns 0 (the hidden bit keeps
 * the magnitude at least 2^mbits).
 *
 * @pre upper_code and lower_code are bb-bit patterns with the sign in
 *      the MSB, as produced by splitOutlier()
 */
int32_t mergedOutlierMantissa(uint8_t upper_code, uint8_t lower_code,
                              unsigned mbits, unsigned bb);

/**
 * Static int32 overflow-safety bound of the blocked serving kernel
 * (serve/packed_exec.h): the largest panel-local exponent spread `s`
 * such that a dot product of `panel_rows` terms, each an inlier code of
 * `inlier_bits` bits left-shifted by at most `s` and multiplied by an
 * iAct code of `act_bits` bits, is guaranteed to fit an int32
 * accumulator. Derivation (all magnitudes are bounds, sign carried
 * separately):
 *
 *   |code << s|  <= 2^(inlier_bits - 1 + s)
 *   |iact|       <= 2^(act_bits - 1)
 *   |sum of N|   <= 2^(inlier_bits + act_bits - 2 + s + ceil(log2 N))
 *
 * and the sum is int32-safe when that exponent is <= 30. Panels whose
 * Isf spread exceeds this bound fall back to the scalar path (the
 * kernel's correctness never depends on the spread being small).
 * May return a negative value for absurd widths; callers treat any
 * spread > max(bound, 0) as unsafe.
 *
 * The bound is stated for the SUM OF MAGNITUDES of all `panel_rows`
 * terms, so it covers every partial sum of every SUBSET of terms, in
 * any association: each partial is bounded by the same magnitude sum,
 * hence also exact in int32. That is what licenses the vectorized
 * kernels (serve/kernel_dispatch.h) to accumulate the panel's terms
 * split across 4/8/16 int32 lanes and fold the lanes afterwards —
 * int32 addition without overflow is associative and commutative, so
 * any lane partitioning and any accumulation width from 1 (the scalar
 * oracle) upward produces the same bytes. The same argument covers the
 * exact per-tile admission check in buildBlockedPlane (which gates on
 * max shifted magnitude x iAct bound x rows — again a magnitude-sum
 * bound, subset-closed).
 */
int maxPanelShift(unsigned inlier_bits, unsigned act_bits,
                  size_t panel_rows);

} // namespace msq

#endif // MSQ_ACCEL_INT_DEQUANT_H
