#include "accel/pe.h"

#include "common/bitstream.h"
#include "common/logging.h"

namespace msq {

namespace {

/**
 * One leaf of the multiplier tree: a signed/unsigned-aware
 * 4-bit x 2-bit product. `a4` is an iAct nibble, `w2` a weight bit
 * pair; signedness depends on whether the slice holds the MSBs.
 */
int32_t
leafMultiply(uint8_t a4, bool a_signed, uint8_t w2, bool w_signed)
{
    const int32_t a = a_signed ? static_cast<int32_t>(signExtend(a4, 4))
                               : static_cast<int32_t>(a4 & 0xf);
    const int32_t w = w_signed ? static_cast<int32_t>(signExtend(w2, 2))
                               : static_cast<int32_t>(w2 & 0x3);
    return a * w;
}

} // namespace

int32_t
MultiPrecisionPe::multiply4b(uint8_t weight_code, int8_t iact)
{
    const uint8_t ia = static_cast<uint8_t>(iact);
    const uint8_t a_lo = ia & 0xf;         // unsigned low nibble
    const uint8_t a_hi = (ia >> 4) & 0xf;  // signed high nibble
    const uint8_t w_lo = weight_code & 0x3;         // unsigned low pair
    const uint8_t w_hi = (weight_code >> 2) & 0x3;  // signed high pair

    // iact * w = (a_hi*16 + a_lo) * (w_hi*4 + w_lo)
    //          = P11*64 + P10*16 + P01*4 + P00 with
    // P11 = a_hi*w_hi, P10 = a_hi*w_lo, P01 = a_lo*w_hi, P00 = a_lo*w_lo.
    const int32_t p11 = leafMultiply(a_hi, true, w_hi, true);
    const int32_t p10 = leafMultiply(a_hi, true, w_lo, false);
    const int32_t p01 = leafMultiply(a_lo, false, w_hi, true);
    const int32_t p00 = leafMultiply(a_lo, false, w_lo, false);
    return (p11 << 6) + (p10 << 4) + (p01 << 2) + p00;
}

PePairResult
MultiPrecisionPe::multiply2b(uint8_t packed_code, int8_t iact)
{
    const uint8_t ia = static_cast<uint8_t>(iact);
    const uint8_t a_lo = ia & 0xf;
    const uint8_t a_hi = (ia >> 4) & 0xf;
    const uint8_t w0 = packed_code & 0x3;         // weight in bits [1:0]
    const uint8_t w1 = (packed_code >> 2) & 0x3;  // weight in bits [3:2]

    // Both 2-bit weights are independent signed values in MODE 2b:
    // Res1 = iact * w1 = P11*16 + P01; Res0 = iact * w0 = P10*16 + P00.
    const int32_t p11 = leafMultiply(a_hi, true, w1, true);
    const int32_t p01 = leafMultiply(a_lo, false, w1, true);
    const int32_t p10 = leafMultiply(a_hi, true, w0, true);
    const int32_t p00 = leafMultiply(a_lo, false, w0, true);

    PePairResult res;
    // Multiplies instead of <<: the partial products may be negative,
    // and a left shift of a negative value is undefined.
    res.hi = p11 * 16 + p01;
    res.lo = p10 * 16 + p00;
    return res;
}

int32_t
MultiPrecisionPe::multiplyOutlierHalf(uint8_t half_code, unsigned bb,
                                      unsigned half_mant_bits, int8_t iact)
{
    MSQ_ASSERT(half_mant_bits < bb, "half mantissa must fit below the sign");
    const bool neg = (half_code >> (bb - 1)) & 1u;
    const int32_t mag =
        static_cast<int32_t>(half_code & ((1u << half_mant_bits) - 1u));
    const int32_t value = neg ? -mag : mag;
    return value * static_cast<int32_t>(iact);
}

} // namespace msq
