/**
 * @file
 * Memory hierarchy traffic model (paper Section 5.1, Fig. 5): HBM2
 * off-chip at 256 GB/s feeding a 2 MB L2 SRAM, which feeds the weight /
 * iAct / oAct buffers over a 64 GB/s OCP-SRAM interface. The model
 * tracks bytes moved per level and converts to cycles at the configured
 * clock; double buffering overlaps transfers with compute in the cycle
 * model.
 */

#ifndef MSQ_ACCEL_MEMORY_H
#define MSQ_ACCEL_MEMORY_H

#include <cstdint>

#include "accel/accel_config.h"

namespace msq {

/** Byte counters per hierarchy level. */
struct MemoryTraffic
{
    double dramBytes = 0.0;   ///< HBM2 <-> L2
    double l2Bytes = 0.0;     ///< L2 <-> buffers (OCP interface)
    double bufferBytes = 0.0; ///< buffers <-> PE array

    MemoryTraffic &operator+=(const MemoryTraffic &other)
    {
        dramBytes += other.dramBytes;
        l2Bytes += other.l2Bytes;
        bufferBytes += other.bufferBytes;
        return *this;
    }
};

/** Convert traffic into transfer cycles on each interface. */
struct MemoryCycles
{
    double dramCycles = 0.0;
    double ocpCycles = 0.0;

    /** The serializing transfer time assuming the two stages pipeline. */
    double bound() const
    {
        return dramCycles > ocpCycles ? dramCycles : ocpCycles;
    }
};

/**
 * Cycle cost of moving `traffic` under `config` bandwidths.
 * Calls fatal() if the config's clock or either bandwidth is zero,
 * negative, or NaN — a zero-bandwidth design point would otherwise
 * produce inf/NaN cycles that silently poison bound().
 */
MemoryCycles memoryCycles(const AccelConfig &config,
                          const MemoryTraffic &traffic);

} // namespace msq

#endif // MSQ_ACCEL_MEMORY_H
