/**
 * @file
 * ReCoN: the Redistribution and Coordination NoC (paper Section 5.4).
 *
 * A multistage butterfly network of {2-input, 2-output} switches, shared
 * and time-multiplexed across PE rows. Rows whose micro-blocks contain
 * outliers route their partial-sum vectors through ReCoN; the switches
 * perform three operations:
 *
 *   Pass  (=)  forward inputs straight down,
 *   Swap  (x)  cross the inputs, substituting the vacated port with the
 *              pruned position's iAcc,
 *   Merge (||) combine an outlier's Upper and Lower half products:
 *              shift the Upper product right by the upper-half mantissa
 *              width and the Lower product by the full mantissa width,
 *              add the iAct once for the FP hidden bit (sign-corrected),
 *              and accumulate the Upper position's iAcc.
 *
 * The functional model computes merge results exactly (in integer units
 * scaled by 2^mantissa_bits); the routing model walks the butterfly with
 * bit-fixing routing and counts internal port conflicts for the cycle
 * model.
 */

#ifndef MSQ_ACCEL_RECON_H
#define MSQ_ACCEL_RECON_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace msq {

/** Per-column input to a ReCoN transit. */
struct ReconInput
{
    enum class Tag : uint8_t
    {
        InlierPsum,    ///< finished psum (PE already accumulated iAcc)
        OutlierUpper,  ///< raw upper-half product + iAcc, awaiting merge
        OutlierLower,  ///< raw lower-half product + iAcc, to be swapped
    };

    Tag tag = Tag::InlierPsum;
    int64_t res = 0;    ///< PE product (raw for outlier halves)
    int64_t iacc = 0;   ///< accumulator input from the previous row
    int32_t iact = 0;   ///< the row's iAct (hidden-bit correction)
    int8_t sign = 0;    ///< outlier sign (1 = negative), for the hidden bit
    int partner = -1;   ///< column of the matching half (for outlier tags)
};

/** Result of one ReCoN transit. */
struct ReconTransit
{
    /**
     * Per-column outputs in units of 2^-mant_bits (scaled integers so
     * merges stay exact): inlier columns carry res+iacc scaled; merged
     * columns carry the outlier partial sum; lower columns carry their
     * iacc.
     */
    std::vector<int64_t> scaledOut;
    unsigned scaleBits = 0;   ///< outputs are value * 2^scaleBits
    size_t portConflicts = 0; ///< internal butterfly port conflicts
    size_t stages = 0;        ///< pipeline stages traversed
};

/** Functional + routing model of one ReCoN unit. */
class ReconNetwork
{
  public:
    /**
     * @param width number of columns (PE array columns)
     * @param mant_bits full outlier mantissa width M (2 for e1m2)
     * @param upper_bits mantissa bits carried by the upper half
     */
    ReconNetwork(size_t width, unsigned mant_bits, unsigned upper_bits);

    /** Number of butterfly stages: log2(width) + 1 (paper topology). */
    size_t stages() const { return stages_; }

    /** Number of switches: width * stages (2x2 switches per stage). */
    size_t switchCount() const { return width_ * stages_; }

    /**
     * Process one row-vector. Inputs must contain matched
     * OutlierUpper/OutlierLower pairs via `partner`.
     */
    ReconTransit process(const std::vector<ReconInput> &inputs) const;

  private:
    size_t width_;
    size_t stages_;
    unsigned mantBits_;
    unsigned upperBits_;
};

} // namespace msq

#endif // MSQ_ACCEL_RECON_H
