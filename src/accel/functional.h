/**
 * @file
 * Bit-accurate functional model of the MicroScopiQ accelerator
 * datapath: weight-stationary GEMM over a PackedLayer and quantized
 * iActs, computing every product through the multi-precision PE model
 * and every outlier partial sum through the ReCoN merge semantics.
 *
 * The functional output must match the reference computation
 * (dequantized weights times dequantized activations) to floating-point
 * accuracy; the property test in tests/test_functional.cc enforces it
 * across random layers, modes and outlier rates. This is the repo's
 * strongest evidence that the hardware's integer pipeline computes the
 * same numbers the quantization algorithm promises.
 */

#ifndef MSQ_ACCEL_FUNCTIONAL_H
#define MSQ_ACCEL_FUNCTIONAL_H

#include "accel/accel_config.h"
#include "accel/acts.h"
#include "accel/recon.h"
#include "core/packed_tensor.h"

namespace msq {

/** Statistics collected during a functional GEMM. */
struct FunctionalStats
{
    size_t macs = 0;             ///< PE multiply-accumulates executed
    size_t reconTransits = 0;    ///< row-vectors routed through ReCoN
    size_t reconMerges = 0;      ///< outlier merges performed
    size_t reconPortConflicts = 0;
};

/** Functional accelerator: computes exactly what the RTL would. */
class FunctionalAccelerator
{
  public:
    explicit FunctionalAccelerator(const AccelConfig &config);

    /**
     * Run Y = W^T X on the accelerator datapath.
     *
     * @param weights packed MicroScopiQ layer (K x O)
     * @param acts quantized activations (K channels, M tokens)
     * @return tokens x O output matrix (post-processed real values)
     */
    Matrix gemm(const PackedLayer &weights, const QuantizedActs &acts);

    /**
     * Reference computation: dequantized weights times dequantized
     * activations, bypassing the PE/ReCoN datapath.
     */
    static Matrix referenceGemm(const PackedLayer &weights,
                                const QuantizedActs &acts);

    const FunctionalStats &stats() const { return stats_; }

  private:
    AccelConfig config_;
    FunctionalStats stats_;
};

} // namespace msq

#endif // MSQ_ACCEL_FUNCTIONAL_H
