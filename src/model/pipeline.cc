#include "model/pipeline.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"
#include "core/microscopiq.h"
#include "io/msq_file.h"
#include "model/calib_gen.h"
#include "model/proxy_eval.h"
#include "model/weight_gen.h"
#include "quant/act_quant.h"
#include "quant/smoothquant.h"

namespace msq {

namespace {

/** Per-layer measurement, reduced serially in layer order afterwards. */
struct LayerOutcome
{
    double nmse = 0.0;
    double ebw = 0.0;
    double params = 0.0;
};

/** Load a pipeline evaluation container and verify it matches the
 *  (model, config, calibration) identity plus every layer shape. */
bool
loadEvalContainer(const std::string &path, const ModelProfile &model,
                  const MsqConfig &msq_cfg, size_t calib_tokens,
                  std::vector<PackedLayer> &out)
{
    MsqModelFile file;
    const IoResult res = loadModelVerified(path, model.name, msq_cfg,
                                           calib_tokens,
                                           profileLayerIds(model), file);
    if (!res) {
        if (res.code != IoCode::FileError) // absent file is a silent miss
            warn("pipeline cache: discarding " + path + " (" +
                 ioCodeName(res.code) + ": " + res.message + ")");
        return false;
    }
    out = std::move(file.layers);
    return true;
}

} // namespace

ModelEvalResult
evaluateMethodOnModel(const ModelProfile &model, const QuantMethod &method,
                      const PipelineConfig &config)
{
    ModelEvalResult result;
    result.model = model.name;
    result.method = method.name;

    // Disk-cache probe: a packed-execution evaluation of a MicroScopiQ
    // method (without migration, which would need per-layer calibration
    // statistics even on a hit) is fully determined by the packed
    // layers, and those are exactly what a `.msq` container persists.
    // On a hit the Hessian sweep and quantization are skipped per
    // layer; the container round trip is bit-exact, so every metric
    // matches a fresh run (tests/test_weight_cache.cc).
    std::vector<PackedLayer> cached;
    bool cache_hit = false;
    bool cache_write = false;
    std::string container_path;
    MsqConfig msq_cfg;
    if (!config.packedCacheDir.empty() && config.packedExec &&
        method.migrationAlpha == 0.0) {
        QuantizerPtr probe = method.makeQuantizer();
        const auto *mq =
            dynamic_cast<const MicroScopiQQuantizer *>(probe.get());
        if (mq) {
            msq_cfg = mq->config();
            container_path =
                config.packedCacheDir + "/" +
                containerFileName(model.name + "-eval",
                                  model.name + "|eval|" +
                                      configKey(msq_cfg) + "|c" +
                                      std::to_string(config.calibTokens));
            cache_hit = loadEvalContainer(container_path, model, msq_cfg,
                                          config.calibTokens, cached);
            cache_write = !cache_hit;
        }
    }
    std::vector<PackedLayer> packed(cache_write ? model.layers.size() : 0);
    std::vector<uint8_t> packed_ok(packed.size(), 0);

    // Every layer is an independent quantize + eval: the weight /
    // calibration / eval data come from per-layer RNG streams
    // (weight_gen.cc, calib_gen.cc), so layers can run on pool threads
    // in any order. Each writes only its own LayerOutcome slot; the
    // parameter-weighted reduction below runs serially in layer order,
    // keeping the result bit-identical to a single-threaded run.
    std::vector<LayerOutcome> outcomes(model.layers.size());

    parallelFor(0, model.layers.size(), [&](size_t li) {
        const Matrix w = generateLayerWeights(model, li);

        const double layer_params =
            static_cast<double>(model.layers[li].k * model.layers[li].o);
        if (cache_hit) {
            // Migration is off by construction, so the evaluation needs
            // only the weights (for the reference output), the eval
            // set, and the cached packed layer.
            const Matrix x_eval =
                generateEvalSet(model, li, config.evalTokens);
            Matrix acts = x_eval;
            if (method.actBits > 0)
                acts = quantizeActivationsMxInt(x_eval, method.actBits,
                                                method.actGroup);
            const Matrix out = config.packedExec(cached[li], acts);
            if (!out.empty()) {
                const Matrix ref = w.transposedMatmul(x_eval);
                outcomes[li] =
                    LayerOutcome{out.normalizedErrorTo(ref),
                                 cached[li].paperEbw(), layer_params};
                return;
            }
            // Non-executable config: fall through to the full path.
        }
        // Hessian-based compensation needs the calibration sample count
        // to exceed the reduction dimension, or H = 2XX^T is rank
        // deficient and the OBS updates overfit the calibration
        // subspace (GPTQ uses ~256k tokens for k = 4096).
        const size_t calib_tokens =
            std::max(config.calibTokens, 4 * model.layers[li].k);
        const Matrix calib = generateCalibration(model, li, calib_tokens);
        const Matrix x_eval = generateEvalSet(model, li, config.evalTokens);

        Matrix w_in = w;
        Matrix calib_in = calib;
        Matrix eval_in = x_eval;
        std::vector<double> scales;
        if (method.migrationAlpha > 0.0) {
            scales = migrationScales(w, calib, method.migrationAlpha);
            migrateWeights(w_in, scales);
            migrateActivations(calib_in, scales);
            migrateActivations(eval_in, scales);
        }

        QuantizerPtr quantizer = method.makeQuantizer();
        const QuantResult qres = quantizer->quantize(w_in, calib_in);

        Matrix acts = eval_in;
        if (method.actBits > 0)
            acts = quantizeActivationsMxInt(eval_in, method.actBits,
                                            method.actGroup);

        // Output comparison in the *migrated* basis equals the original
        // basis exactly (migration is an exact reparameterization), so
        // compare Q^T Xq against W'^T X' = W^T X.
        const Matrix ref = w_in.transposedMatmul(eval_in);
        Matrix out;
        if (config.packedExec) {
            // Packed-execution mode: compute the quantized output from
            // the Fig. 5 codes. Methods without a packed layer, and
            // configs whose packed layout does not encode all weights
            // (the backend signals both by an empty result), fall back
            // to the dequantized path.
            const auto *msq_quant =
                dynamic_cast<const MicroScopiQQuantizer *>(quantizer.get());
            if (msq_quant) {
                out = config.packedExec(msq_quant->packed(), acts);
                if (cache_write && !out.empty()) {
                    packed[li] = msq_quant->packed();
                    packed_ok[li] = 1;
                }
            }
        }
        if (out.empty())
            out = qres.dequant.transposedMatmul(acts);
        const double nmse = out.normalizedErrorTo(ref);

        outcomes[li] = LayerOutcome{nmse, qres.ebw, layer_params};
    });

    // Write the evaluation container back when every layer produced a
    // packed-executable artifact (best effort: persistence must never
    // fail an evaluation).
    if (cache_write &&
        std::all_of(packed_ok.begin(), packed_ok.end(),
                    [](uint8_t ok) { return ok != 0; })) {
        MsqModelFile file;
        file.model = model.name;
        file.config = msq_cfg;
        file.calibTokens = config.calibTokens;
        file.layers = std::move(packed);
        for (const LayerSpec &spec : model.layers)
            file.layerNames.push_back(spec.name);
        const IoResult res = saveModelAtomic(container_path, file);
        if (!res)
            warn("pipeline cache: cannot persist " + container_path +
                 " (" + res.message + ")");
    }

    double nmse_acc = 0.0;
    double ebw_acc = 0.0;
    double weight_acc = 0.0;
    for (const LayerOutcome &o : outcomes) {
        nmse_acc += o.nmse * o.params;
        ebw_acc += o.ebw * o.params;
        weight_acc += o.params;
    }

    MSQ_ASSERT(weight_acc > 0.0, "model has no layers");
    result.meanNmse = nmse_acc / weight_acc;
    result.meanEbw = ebw_acc / weight_acc;
    // LLM profiles anchor fpMetric as perplexity; the others as task
    // accuracy. Both maps are monotone in the measured NMSE.
    result.proxyPpl = proxyPerplexity(model.fpMetric, result.meanNmse);
    result.proxyAcc = model.kind == ModelKind::Llm
                          ? 0.0
                          : proxyAccuracy(model.fpMetric, result.meanNmse);
    return result;
}

} // namespace msq
