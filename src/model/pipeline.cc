#include "model/pipeline.h"

#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/parallel.h"
#include "core/microscopiq.h"
#include "model/calib_gen.h"
#include "model/proxy_eval.h"
#include "model/weight_gen.h"
#include "quant/act_quant.h"
#include "quant/smoothquant.h"

namespace msq {

namespace {

/** Per-layer measurement, reduced serially in layer order afterwards. */
struct LayerOutcome
{
    double nmse = 0.0;
    double ebw = 0.0;
    double params = 0.0;
};

} // namespace

ModelEvalResult
evaluateMethodOnModel(const ModelProfile &model, const QuantMethod &method,
                      const PipelineConfig &config)
{
    ModelEvalResult result;
    result.model = model.name;
    result.method = method.name;

    // Every layer is an independent quantize + eval: the weight /
    // calibration / eval data come from per-layer RNG streams
    // (weight_gen.cc, calib_gen.cc), so layers can run on pool threads
    // in any order. Each writes only its own LayerOutcome slot; the
    // parameter-weighted reduction below runs serially in layer order,
    // keeping the result bit-identical to a single-threaded run.
    std::vector<LayerOutcome> outcomes(model.layers.size());

    parallelFor(0, model.layers.size(), [&](size_t li) {
        const Matrix w = generateLayerWeights(model, li);
        // Hessian-based compensation needs the calibration sample count
        // to exceed the reduction dimension, or H = 2XX^T is rank
        // deficient and the OBS updates overfit the calibration
        // subspace (GPTQ uses ~256k tokens for k = 4096).
        const size_t calib_tokens =
            std::max(config.calibTokens, 4 * model.layers[li].k);
        const Matrix calib = generateCalibration(model, li, calib_tokens);
        const Matrix x_eval = generateEvalSet(model, li, config.evalTokens);

        Matrix w_in = w;
        Matrix calib_in = calib;
        Matrix eval_in = x_eval;
        std::vector<double> scales;
        if (method.migrationAlpha > 0.0) {
            scales = migrationScales(w, calib, method.migrationAlpha);
            migrateWeights(w_in, scales);
            migrateActivations(calib_in, scales);
            migrateActivations(eval_in, scales);
        }

        QuantizerPtr quantizer = method.makeQuantizer();
        const QuantResult qres = quantizer->quantize(w_in, calib_in);

        Matrix acts = eval_in;
        if (method.actBits > 0)
            acts = quantizeActivationsMxInt(eval_in, method.actBits,
                                            method.actGroup);

        // Output comparison in the *migrated* basis equals the original
        // basis exactly (migration is an exact reparameterization), so
        // compare Q^T Xq against W'^T X' = W^T X.
        const Matrix ref = w_in.transposedMatmul(eval_in);
        Matrix out;
        if (config.packedExec) {
            // Packed-execution mode: compute the quantized output from
            // the Fig. 5 codes. Methods without a packed layer, and
            // configs whose packed layout does not encode all weights
            // (the backend signals both by an empty result), fall back
            // to the dequantized path.
            const auto *msq_quant =
                dynamic_cast<const MicroScopiQQuantizer *>(quantizer.get());
            if (msq_quant)
                out = config.packedExec(msq_quant->packed(), acts);
        }
        if (out.empty())
            out = qres.dequant.transposedMatmul(acts);
        const double nmse = out.normalizedErrorTo(ref);

        const double params =
            static_cast<double>(model.layers[li].k * model.layers[li].o);
        outcomes[li] = LayerOutcome{nmse, qres.ebw, params};
    });

    double nmse_acc = 0.0;
    double ebw_acc = 0.0;
    double weight_acc = 0.0;
    for (const LayerOutcome &o : outcomes) {
        nmse_acc += o.nmse * o.params;
        ebw_acc += o.ebw * o.params;
        weight_acc += o.params;
    }

    MSQ_ASSERT(weight_acc > 0.0, "model has no layers");
    result.meanNmse = nmse_acc / weight_acc;
    result.meanEbw = ebw_acc / weight_acc;
    // LLM profiles anchor fpMetric as perplexity; the others as task
    // accuracy. Both maps are monotone in the measured NMSE.
    result.proxyPpl = proxyPerplexity(model.fpMetric, result.meanNmse);
    result.proxyAcc = model.kind == ModelKind::Llm
                          ? 0.0
                          : proxyAccuracy(model.fpMetric, result.meanNmse);
    return result;
}

} // namespace msq
