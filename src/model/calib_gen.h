/**
 * @file
 * Synthetic activation generation. Activations of FM layers have
 * per-channel structure: a few channels carry systematically large
 * magnitudes (the activation outliers SmoothQuant/OmniQuant migrate
 * into weights), and tokens are correlated through a shared component.
 */

#ifndef MSQ_MODEL_CALIB_GEN_H
#define MSQ_MODEL_CALIB_GEN_H

#include "common/matrix.h"
#include "common/rng.h"
#include "model/model_zoo.h"

namespace msq {

/**
 * Per-channel magnitude scales: a *persistent* property of the model
 * (real FMs have fixed outlier channels), so calibration and evaluation
 * sets must share them. Seeded by the rng.
 */
std::vector<double> channelScales(const ActProfile &profile, size_t k,
                                  Rng &rng);

/** Generate k x n activations with the given fixed channel scales. */
Matrix generateActivations(const ActProfile &profile,
                           const std::vector<double> &channel_scale,
                           size_t n, Rng &rng);

/** Convenience: draw fresh channel scales, then generate. */
Matrix generateActivations(const ActProfile &profile, size_t k, size_t n,
                           Rng &rng);

/** Calibration activations for a model layer (seeded, disjoint of eval). */
Matrix generateCalibration(const ModelProfile &model, size_t layer_idx,
                           size_t tokens);

/** Held-out evaluation activations for a model layer. */
Matrix generateEvalSet(const ModelProfile &model, size_t layer_idx,
                       size_t tokens);

/**
 * Activations of one serving request: the layer's persistent channel
 * structure with a token stream drawn from the request's own seed, so
 * distinct requests are distinct but a request's data is reproducible
 * regardless of batch composition.
 */
Matrix generateRequestActs(const ModelProfile &model, size_t layer_idx,
                           size_t tokens, uint64_t request_seed);

} // namespace msq

#endif // MSQ_MODEL_CALIB_GEN_H
