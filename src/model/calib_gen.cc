#include "model/calib_gen.h"

#include <cmath>

#include "common/logging.h"

namespace msq {

std::vector<double>
channelScales(const ActProfile &profile, size_t k, Rng &rng)
{
    std::vector<double> scale(k);
    for (size_t r = 0; r < k; ++r) {
        scale[r] = profile.sigma * std::exp(rng.gaussian(0.0, 0.4));
        if (rng.bernoulli(profile.outlierChannelRate))
            scale[r] *= profile.outlierChannelScale;
    }
    return scale;
}

Matrix
generateActivations(const ActProfile &profile,
                    const std::vector<double> &channel_scale, size_t n,
                    Rng &rng)
{
    (void)profile;
    const size_t k = channel_scale.size();
    Matrix x(k, n);
    // Token-shared component models sequence correlation.
    std::vector<double> shared(n);
    for (size_t t = 0; t < n; ++t)
        shared[t] = rng.gaussian(0.0, 1.0);
    const double rho = 0.3;
    for (size_t r = 0; r < k; ++r) {
        for (size_t t = 0; t < n; ++t) {
            const double z = rho * shared[t] +
                             std::sqrt(1.0 - rho * rho) * rng.gaussian();
            x(r, t) = channel_scale[r] * z;
        }
    }
    return x;
}

Matrix
generateActivations(const ActProfile &profile, size_t k, size_t n, Rng &rng)
{
    const std::vector<double> scale = channelScales(profile, k, rng);
    return generateActivations(profile, scale, n, rng);
}

namespace {

/** The persistent channel structure of a model layer. */
std::vector<double>
layerChannelScales(const ModelProfile &model, size_t layer_idx)
{
    Rng rng(model.seed * 5000011ULL + layer_idx * 15485863ULL);
    return channelScales(model.acts, model.layers[layer_idx].k, rng);
}

} // namespace

Matrix
generateCalibration(const ModelProfile &model, size_t layer_idx,
                    size_t tokens)
{
    MSQ_ASSERT(layer_idx < model.layers.size(), "layer index out of range");
    const std::vector<double> scale = layerChannelScales(model, layer_idx);
    Rng rng(model.seed * 2000003ULL + layer_idx * 104729ULL);
    return generateActivations(model.acts, scale, tokens, rng);
}

Matrix
generateEvalSet(const ModelProfile &model, size_t layer_idx, size_t tokens)
{
    MSQ_ASSERT(layer_idx < model.layers.size(), "layer index out of range");
    const std::vector<double> scale = layerChannelScales(model, layer_idx);
    Rng rng(model.seed * 3000017ULL + layer_idx * 130363ULL);
    return generateActivations(model.acts, scale, tokens, rng);
}

Matrix
generateRequestActs(const ModelProfile &model, size_t layer_idx,
                    size_t tokens, uint64_t request_seed)
{
    MSQ_ASSERT(layer_idx < model.layers.size(), "layer index out of range");
    const std::vector<double> scale = layerChannelScales(model, layer_idx);
    Rng rng(model.seed * 7000003ULL + layer_idx * 175003ULL +
            request_seed * 2654435761ULL);
    return generateActivations(model.acts, scale, tokens, rng);
}

} // namespace msq
