/**
 * @file
 * Synthetic weight generation with controlled outlier statistics.
 *
 * Weights are drawn from a scaled student-t bulk (matching the heavy
 * tails of FM layers) and then a controlled number of outliers is
 * planted: isolated outliers plus adjacent outlier *pairs* at the
 * model family's adjacency rate, so the Fig. 2(a) statistics are
 * reproduced by construction and OliVe's victim mechanism is stressed
 * exactly as it is by real LLaMA-3/VLM checkpoints.
 */

#ifndef MSQ_MODEL_WEIGHT_GEN_H
#define MSQ_MODEL_WEIGHT_GEN_H

#include "common/matrix.h"
#include "common/rng.h"
#include "model/model_zoo.h"

namespace msq {

/** Generate a k x o weight matrix for the given profile. */
Matrix generateWeights(const WeightProfile &profile, size_t k, size_t o,
                       Rng &rng);

/** Generate the weights of a specific model layer (seeded by name). */
Matrix generateLayerWeights(const ModelProfile &model, size_t layer_idx);

} // namespace msq

#endif // MSQ_MODEL_WEIGHT_GEN_H
