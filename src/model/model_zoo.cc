#include "model/model_zoo.h"

#include <map>

#include "common/logging.h"

namespace msq {

namespace {

/** Transformer-style scaled layer set for a hidden size d. */
std::vector<LayerSpec>
transformerLayers(size_t d)
{
    return {
        {"attn_qkv", d, d + d / 2},
        {"attn_out", d, d},
        {"mlp_up", d, 2 * d},
        {"mlp_down", 2 * d, d},
    };
}

/**
 * Attention geometry matching transformerLayers(d): 16-wide heads, a
 * 4:1 grouped-query factor (so Q is d wide and K/V are d/4 each —
 * exactly the d + d/2 qkv output), and a scaled block count.
 * @pre d % 64 == 0
 */
DecodeGeometry
transformerGeometry(size_t d, size_t blocks)
{
    DecodeGeometry g;
    g.headDim = 16;
    g.heads = d / 16;
    g.kvHeads = d / 64;
    g.blocks = blocks;
    return g;
}

/** Convolution layers expressed as im2col GEMMs (scaled). */
std::vector<LayerSpec>
convLayers(size_t base)
{
    return {
        {"conv3x3_a", base * 9 / 4, base},
        {"conv3x3_b", base * 9 / 2, base},
        {"conv1x1", base, base * 2},
        {"fc", base * 2, base},
    };
}

/** State-space model projection layers (scaled). */
std::vector<LayerSpec>
ssmLayers(size_t d)
{
    return {
        {"in_proj", d, 2 * d},
        {"x_proj", d, d / 2 + 64},
        {"dt_proj", d / 8, d},
        {"out_proj", d, d},
    };
}

std::map<std::string, ModelProfile>
buildZoo()
{
    std::map<std::string, ModelProfile> zoo;
    auto add = [&zoo](ModelProfile p) { zoo[p.name] = std::move(p); };

    // ---- OPT family: older FMs, near-zero adjacent-outlier rate (the
    //      regime OliVe was designed for; Fig. 2a).
    {
        ModelProfile p;
        p.name = "OPT-6.7B";
        p.layers = transformerLayers(320);
        p.decode = transformerGeometry(320, 4);
        p.weights = {0.02, 10.0, 0.018, 0.0002, 6.0, 14.0};
        p.acts = {1.0, 0.02, 4.0};
        p.fpMetric = 10.86;
        p.realHidden = 4096;
        p.realLayers = 32;
        p.paramsB = 6.7;
        p.seed = 101;
        add(p);

        p.name = "OPT-175B";
        p.layers = transformerLayers(512);
        p.decode = transformerGeometry(512, 4);
        p.fpMetric = 8.34;
        p.realHidden = 12288;
        p.realLayers = 96;
        p.paramsB = 175.0;
        p.seed = 102;
        add(p);
    }

    // ---- LLaMA-2 family: moderate adjacency.
    {
        ModelProfile p;
        p.name = "LLaMA2-7B";
        p.layers = transformerLayers(320);
        p.decode = transformerGeometry(320, 4);
        p.weights = {0.018, 8.0, 0.022, 0.004, 6.0, 16.0};
        p.acts = {1.0, 0.015, 3.0};
        p.fpMetric = 5.47;
        p.realHidden = 4096;
        p.realLayers = 32;
        p.paramsB = 7.0;
        p.seed = 201;
        add(p);

        p.name = "LLaMA2-13B";
        p.layers = transformerLayers(384);
        p.decode = transformerGeometry(384, 4);
        p.fpMetric = 4.83;
        p.realHidden = 5120;
        p.realLayers = 40;
        p.paramsB = 13.0;
        p.seed = 202;
        add(p);

        p.name = "LLaMA2-70B";
        p.layers = transformerLayers(448);
        p.decode = transformerGeometry(448, 4);
        p.fpMetric = 3.31;
        p.realHidden = 8192;
        p.realLayers = 80;
        p.paramsB = 70.0;
        p.seed = 203;
        add(p);
    }

    // ---- LLaMA-3 family: heavy tails and high adjacency (hardest to
    //      quantize; the paper's running example).
    {
        ModelProfile p;
        p.name = "LLaMA3-8B";
        p.layers = transformerLayers(320);
        p.decode = transformerGeometry(320, 4);
        p.weights = {0.02, 6.0, 0.03, 0.012, 6.0, 20.0};
        p.acts = {1.0, 0.02, 3.0};
        p.fpMetric = 6.13;
        p.realHidden = 4096;
        p.realLayers = 32;
        p.paramsB = 8.0;
        p.seed = 301;
        add(p);

        p.name = "LLaMA3-70B";
        p.layers = transformerLayers(448);
        p.decode = transformerGeometry(448, 4);
        p.fpMetric = 2.85;
        p.realHidden = 8192;
        p.realLayers = 80;
        p.paramsB = 70.0;
        p.seed = 302;
        add(p);
    }

    // ---- Mixtral MoE.
    {
        ModelProfile p;
        p.name = "Mixtral-8x7B";
        p.layers = transformerLayers(384);
        p.decode = transformerGeometry(384, 4);
        p.weights = {0.02, 7.0, 0.02, 0.008, 6.0, 16.0};
        p.acts = {1.0, 0.015, 3.0};
        p.fpMetric = 3.84;
        p.realHidden = 4096;
        p.realLayers = 32;
        p.paramsB = 47.0;
        p.seed = 401;
        add(p);
    }

    // ---- Phi-3 small language models.
    {
        ModelProfile p;
        p.name = "Phi3-3.8B";
        p.layers = transformerLayers(256);
        p.decode = transformerGeometry(256, 4);
        p.weights = {0.022, 8.0, 0.02, 0.006, 6.0, 15.0};
        p.acts = {1.0, 0.015, 3.0};
        p.fpMetric = 6.33;
        p.realHidden = 3072;
        p.realLayers = 32;
        p.paramsB = 3.8;
        p.seed = 501;
        add(p);

        p.name = "Phi3-14B";
        p.layers = transformerLayers(384);
        p.decode = transformerGeometry(384, 4);
        p.fpMetric = 4.31;
        p.realHidden = 5120;
        p.realLayers = 40;
        p.paramsB = 14.0;
        p.seed = 502;
        add(p);
    }

    // ---- VLMs: the highest outlier and adjacency rates (Fig. 2a shows
    //      VLM layers peaking above 2% adjacent outliers).
    {
        ModelProfile p;
        p.name = "OpenFlamingo-9B";
        p.kind = ModelKind::Vlm;
        p.layers = transformerLayers(320);
        p.decode = transformerGeometry(320, 4);
        p.weights = {0.02, 5.0, 0.04, 0.015, 6.0, 22.0};
        p.acts = {1.0, 0.025, 3.0};
        p.fpMetric = 79.7;  // COCO CIDEr-ish scale anchored to Fig. 10
        p.realHidden = 4096;
        p.realLayers = 32;
        p.paramsB = 9.0;
        p.seed = 601;
        add(p);

        p.name = "VILA-7B";
        p.kind = ModelKind::Vlm;
        p.layers = transformerLayers(320);
        p.decode = transformerGeometry(320, 4);
        p.weights = {0.02, 5.0, 0.045, 0.018, 6.0, 22.0};
        p.acts = {1.0, 0.025, 3.0};
        p.fpMetric = 80.75;  // HellaSwag FP score of Fig. 2b
        p.realHidden = 4096;
        p.realLayers = 32;
        p.paramsB = 7.0;
        p.seed = 602;
        add(p);

        p.name = "LLaVA1.5-7B";
        p.kind = ModelKind::Vlm;
        p.layers = transformerLayers(320);
        p.decode = transformerGeometry(320, 4);
        p.weights = {0.02, 5.0, 0.04, 0.016, 6.0, 20.0};
        p.acts = {1.0, 0.02, 3.0};
        p.fpMetric = 62.3;  // GQA FP score of Fig. 2b
        p.realHidden = 4096;
        p.realLayers = 32;
        p.paramsB = 7.0;
        p.seed = 603;
        add(p);
    }

    // ---- CNNs: light tails, few outliers (easy to quantize).
    {
        ModelProfile p;
        p.name = "ResNet50";
        p.kind = ModelKind::Cnn;
        p.layers = convLayers(256);
        p.weights = {0.03, 12.0, 0.008, 0.0005, 5.0, 10.0};
        p.acts = {1.0, 0.005, 2.0};
        p.fpMetric = 76.15;
        p.realHidden = 2048;
        p.realLayers = 50;
        p.paramsB = 0.026;
        p.seed = 701;
        add(p);

        p.name = "VGG16";
        p.kind = ModelKind::Cnn;
        p.layers = convLayers(256);
        p.weights = {0.03, 12.0, 0.008, 0.0005, 5.0, 10.0};
        p.acts = {1.0, 0.005, 2.0};
        p.fpMetric = 71.59;
        p.realHidden = 4096;
        p.realLayers = 16;
        p.paramsB = 0.138;
        p.seed = 702;
        add(p);
    }

    // ---- SSMs: Mamba-style models are outlier-heavy.
    {
        ModelProfile p;
        p.name = "VMamba-S";
        p.kind = ModelKind::Ssm;
        p.layers = ssmLayers(320);
        p.weights = {0.025, 5.0, 0.045, 0.012, 6.0, 24.0};
        p.acts = {1.0, 0.03, 4.0};
        p.fpMetric = 83.60;
        p.realHidden = 768;
        p.realLayers = 30;
        p.paramsB = 0.05;
        p.seed = 801;
        add(p);

        p.name = "Vim-S";
        p.kind = ModelKind::Ssm;
        p.layers = ssmLayers(320);
        p.weights = {0.025, 5.0, 0.04, 0.012, 6.0, 22.0};
        p.acts = {1.0, 0.03, 4.0};
        p.fpMetric = 80.50;
        p.realHidden = 384;
        p.realLayers = 24;
        p.paramsB = 0.026;
        p.seed = 802;
        add(p);
    }

    // ---- Fixture model: two small layers, used by the `.msq`
    //      golden-file suite (tests/golden/) and as a fast target for
    //      the msq_pack / msq_inspect walkthroughs. Changing anything
    //      here changes the committed golden container.
    {
        ModelProfile p;
        p.name = "TinyLM";
        p.layers = {{"proj_a", 64, 96}, {"proj_b", 96, 64}};
        p.weights = {0.02, 8.0, 0.02, 0.001, 6.0, 14.0};
        p.acts = {1.0, 0.02, 8.0};
        p.fpMetric = 9.0;
        p.realHidden = 64;
        p.realLayers = 2;
        p.paramsB = 0.00002;
        p.seed = 4242;
        add(p);
    }

    // ---- Decode fixture: TinyLM-sized transformer block with full
    //      attention geometry, the fast target for the autoregressive
    //      decode tests, CI perf smoke, and decode_demo (the TinyLM
    //      fixture above keeps its non-transformer layer set so the
    //      committed golden container is untouched).
    {
        ModelProfile p;
        p.name = "TinyLM-decode";
        p.layers = transformerLayers(64);
        p.decode = transformerGeometry(64, 2);
        p.weights = {0.02, 8.0, 0.02, 0.001, 6.0, 14.0};
        p.acts = {1.0, 0.02, 8.0};
        p.fpMetric = 9.0;
        p.realHidden = 64;
        p.realLayers = 2;
        p.paramsB = 0.0001;
        p.seed = 4243;
        add(p);
    }

    return zoo;
}

const std::map<std::string, ModelProfile> &
zoo()
{
    static const std::map<std::string, ModelProfile> z = buildZoo();
    return z;
}

} // namespace

const ModelProfile &
modelByName(const std::string &name)
{
    const auto it = zoo().find(name);
    if (it == zoo().end())
        fatal("unknown model: " + name);
    return it->second;
}

namespace {

/** Resolve wiring; returns nullptr on success, the failing invariant
 *  otherwise. */
const char *
tryDecodeWiring(const ModelProfile &model, DecodeWiring &wiring)
{
    const DecodeGeometry &g = model.decode;
    if (g.heads == 0 || g.headDim == 0 || g.blocks == 0)
        return "profile carries no attention geometry";
    if (g.kvHeads == 0 || g.heads % g.kvHeads != 0)
        return "kvHeads must divide heads";

    auto find = [&model](const char *name, size_t &idx) {
        for (size_t li = 0; li < model.layers.size(); ++li)
            if (model.layers[li].name == name) {
                idx = li;
                return true;
            }
        return false;
    };
    if (!find("attn_qkv", wiring.qkv) || !find("attn_out", wiring.out) ||
        !find("mlp_up", wiring.up) || !find("mlp_down", wiring.down))
        return "layer set is not a transformer block "
               "(attn_qkv/attn_out/mlp_up/mlp_down)";

    const size_t d = model.layers[wiring.qkv].k;
    wiring.hidden = d;
    if (g.heads * g.headDim != d)
        return "heads * headDim must equal the hidden size";
    if (model.layers[wiring.qkv].o != d + 2 * g.kvHeads * g.headDim)
        return "attn_qkv output is not Q + K + V wide";
    if (model.layers[wiring.out].k != d || model.layers[wiring.out].o != d)
        return "attn_out must be hidden -> hidden";
    if (model.layers[wiring.up].k != d)
        return "mlp_up must read the hidden size";
    if (model.layers[wiring.down].k != model.layers[wiring.up].o ||
        model.layers[wiring.down].o != d)
        return "mlp_down must invert mlp_up";
    return nullptr;
}

} // namespace

bool
decodeCapable(const ModelProfile &model)
{
    DecodeWiring wiring;
    return tryDecodeWiring(model, wiring) == nullptr;
}

DecodeWiring
decodeWiring(const ModelProfile &model)
{
    DecodeWiring wiring;
    if (const char *err = tryDecodeWiring(model, wiring))
        fatal("model " + model.name + " cannot decode: " + err);
    return wiring;
}

std::vector<MsqLayerId>
profileLayerIds(const ModelProfile &model)
{
    std::vector<MsqLayerId> ids;
    ids.reserve(model.layers.size());
    for (const LayerSpec &spec : model.layers)
        ids.push_back({spec.name, spec.k, spec.o});
    return ids;
}

std::vector<std::string>
table2Models()
{
    return {"OPT-6.7B",   "OPT-175B",   "LLaMA2-7B",  "LLaMA2-13B",
            "LLaMA2-70B", "LLaMA3-8B",  "LLaMA3-70B", "Mixtral-8x7B",
            "Phi3-3.8B",  "Phi3-14B"};
}

std::vector<std::string>
allModels()
{
    std::vector<std::string> names;
    for (const auto &[name, profile] : zoo())
        names.push_back(name);
    return names;
}

} // namespace msq
