#include "model/weight_gen.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace msq {

Matrix
generateWeights(const WeightProfile &profile, size_t k, size_t o, Rng &rng)
{
    Matrix w(k, o);
    // Student-t bulk normalized to unit variance, then scaled to sigma.
    const double dof = std::max(profile.tailDof, 2.5);
    const double t_std = std::sqrt(dof / (dof - 2.0));
    for (size_t r = 0; r < k; ++r) {
        for (size_t c = 0; c < o; ++c) {
            double v = rng.studentT(dof) / t_std * profile.sigma;
            // Clip the natural tail at 3 sigma so the planted outliers
            // fully control the outlier statistics.
            v = std::clamp(v, -2.9 * profile.sigma, 2.9 * profile.sigma);
            w(r, c) = v;
        }
    }

    auto plant = [&](size_t r, size_t c) {
        const double mag =
            rng.uniform(profile.outlierLo, profile.outlierHi) *
            profile.sigma;
        w(r, c) = rng.bernoulli(0.5) ? mag : -mag;
    };

    // Adjacent pairs first: each pair contributes two adjacent outliers.
    const size_t total = k * o;
    const size_t n_adjacent =
        static_cast<size_t>(profile.adjacentRate * total);
    const size_t n_pairs = n_adjacent / 2;
    for (size_t p = 0; p < n_pairs; ++p) {
        const size_t r = rng.uniformInt(k);
        const size_t c = rng.uniformInt(o - 1);
        plant(r, c);
        plant(r, c + 1);
    }

    // Isolated outliers for the remaining budget (separated by at least
    // one bulk element so they do not create extra adjacency).
    const size_t n_outliers =
        static_cast<size_t>(profile.outlierRate * total);
    const size_t n_isolated =
        n_outliers > 2 * n_pairs ? n_outliers - 2 * n_pairs : 0;
    for (size_t i = 0; i < n_isolated; ++i) {
        const size_t r = rng.uniformInt(k);
        const size_t c = rng.uniformInt(o);
        const bool left_big =
            c > 0 && std::fabs(w(r, c - 1)) > 3.0 * profile.sigma;
        const bool right_big =
            c + 1 < o && std::fabs(w(r, c + 1)) > 3.0 * profile.sigma;
        if (left_big || right_big)
            continue;  // skip rather than create unplanned adjacency
        plant(r, c);
    }
    return w;
}

Matrix
generateLayerWeights(const ModelProfile &model, size_t layer_idx)
{
    MSQ_ASSERT(layer_idx < model.layers.size(), "layer index out of range");
    const LayerSpec &spec = model.layers[layer_idx];
    Rng rng(model.seed * 1000003ULL + layer_idx * 7919ULL);
    return generateWeights(model.weights, spec.k, spec.o, rng);
}

} // namespace msq
