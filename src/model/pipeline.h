/**
 * @file
 * Whole-model quantization pipeline: a named quantization method (weight
 * quantizer factory + activation bits + migration strength) is applied
 * to every representative layer of a model profile; the mean output
 * NMSE drives the proxy metrics. This is the engine behind the Table 2,
 * Table 3, Table 4, Table 7 and Table 8 benchmark binaries.
 */

#ifndef MSQ_MODEL_PIPELINE_H
#define MSQ_MODEL_PIPELINE_H

#include <functional>
#include <string>

#include "core/packed_tensor.h"
#include "model/model_zoo.h"
#include "quant/quantizer.h"

namespace msq {

/**
 * Packed-execution backend: computes Y = W^T X (outputs x tokens) from
 * a quantizer's packed layer, or returns an empty matrix when the
 * layer's config is not packed-executable (the pipeline then falls back
 * to the dequantized reference path). Implemented by
 * `packedExecBackend()` in serve/packed_exec.h; kept as a std::function
 * here so the model module stays below serve in the dependency DAG.
 */
using PackedExecBackend =
    std::function<Matrix(const PackedLayer &, const Matrix &)>;

/** A named quantization recipe. */
struct QuantMethod
{
    std::string name;                          ///< display name
    std::function<QuantizerPtr()> makeQuantizer;
    unsigned actBits = 0;     ///< 0 = FP16 activations
    double migrationAlpha = 0.0;  ///< SmoothQuant-style migration
    size_t actGroup = 128;    ///< channel group for MX-INT activations
};

/** Per-model quantization outcome. */
struct ModelEvalResult
{
    std::string model;
    std::string method;
    double meanNmse = 0.0;   ///< parameter-weighted mean layer NMSE
    double meanEbw = 0.0;    ///< parameter-weighted mean EBW
    double proxyPpl = 0.0;   ///< for LLM profiles
    double proxyAcc = 0.0;   ///< for accuracy-metric profiles
};

/** Evaluation configuration (token counts, execution mode). */
struct PipelineConfig
{
    size_t calibTokens = 128;
    size_t evalTokens = 128;

    /**
     * Opt-in packed-execution mode: when set and the method's quantizer
     * exposes a packed layer (MicroScopiQ), the layer output is computed
     * straight from the packed codes through this backend instead of the
     * dequantized-weight float GEMM. The backend's outputs are
     * bit-identical to the reference, so all proxy metrics are unchanged
     * (tests/test_serve.cc enforces this).
     */
    PackedExecBackend packedExec;

    /**
     * Disk cache for packed-execution evaluations: when non-empty (and
     * `packedExec` is set, the method is MicroScopiQ, and it uses no
     * activation migration), the pipeline looks for a `.msq` container
     * of this (model, config, calibTokens) evaluation and, on a hit,
     * skips the Hessian sweep and quantization entirely — the packed
     * layers are the evaluation artifact, and the container round trip
     * is bit-exact, so every metric is unchanged
     * (tests/test_weight_cache.cc enforces this). On a miss the packed
     * layers are quantized as usual and the container is written back.
     */
    std::string packedCacheDir;
};

/**
 * Quantize all representative layers of `model` with `method`, measure
 * the output NMSE on held-out activations, and map to proxy metrics.
 *
 * Mechanics per layer: optional migration of activation difficulty into
 * weights at `migrationAlpha`, weight quantization on the migrated
 * weights with migrated calibration data, MX-INT activation quantization
 * at `actBits` (if nonzero) of the migrated evaluation set, then output
 * comparison against the full-precision layer on unmigrated data.
 */
ModelEvalResult evaluateMethodOnModel(const ModelProfile &model,
                                      const QuantMethod &method,
                                      const PipelineConfig &config = {});

} // namespace msq

#endif // MSQ_MODEL_PIPELINE_H
