#include "model/proxy_eval.h"

#include <cmath>

namespace msq {

double
layerOutputNmse(const Matrix &w, const Matrix &wq, const Matrix &x_eval)
{
    const Matrix ref = w.transposedMatmul(x_eval);
    const Matrix out = wq.transposedMatmul(x_eval);
    return out.normalizedErrorTo(ref);
}

double
proxyPerplexity(double fp_ppl, double nmse)
{
    return fp_ppl * std::exp(kKappaPpl * nmse);
}

double
proxyAccuracy(double fp_acc, double nmse, double chance)
{
    return chance + (fp_acc - chance) * std::exp(-kKappaAcc * nmse);
}

} // namespace msq
