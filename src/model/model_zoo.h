/**
 * @file
 * Synthetic foundational-model zoo.
 *
 * The paper evaluates on real checkpoints (OPT, LLaMA-2/3, Mixtral,
 * Phi-3, VLMs, CNNs, SSMs). This repository substitutes statistical
 * profiles per model family: scaled layer shapes (so quantization runs
 * on a laptop), weight-distribution parameters (bulk sigma, tail
 * heaviness, outlier rate and *adjacent*-outlier rate per Fig. 2a),
 * activation statistics, the paper's FP16 baseline metric to anchor
 * proxy numbers, and nominal full-scale dimensions for the accelerator
 * performance workloads.
 */

#ifndef MSQ_MODEL_MODEL_ZOO_H
#define MSQ_MODEL_MODEL_ZOO_H

#include <cstddef>
#include <string>
#include <vector>

#include "io/msq_file.h"

namespace msq {

/** Shape of one representative (scaled) layer. */
struct LayerSpec
{
    std::string name;
    size_t k = 0;  ///< reduction/input dimension
    size_t o = 0;  ///< output dimension
};

/** Weight-distribution parameters of a model family. */
struct WeightProfile
{
    double sigma = 0.02;          ///< bulk standard deviation
    double tailDof = 8.0;         ///< student-t dof of the bulk (tails)
    double outlierRate = 0.02;    ///< fraction of weights beyond 3 sigma
    double adjacentRate = 0.002;  ///< fraction that are adjacent outliers
    double outlierLo = 6.0;       ///< outlier magnitude range, in sigmas
    double outlierHi = 18.0;
};

/** Activation-distribution parameters. */
struct ActProfile
{
    double sigma = 1.0;              ///< typical channel magnitude
    double outlierChannelRate = 0.01;///< channels with systematic spikes
    double outlierChannelScale = 20.0;
};

/** Broad model category (drives which benchmarks apply). */
enum class ModelKind
{
    Llm,
    Vlm,
    Cnn,
    Ssm,
};

/**
 * Attention geometry of a (scaled) transformer block, used by the
 * autoregressive decode subsystem (serve/decode.h). `heads == 0` marks
 * a profile with no decode support (CNNs, SSMs, and profiles whose
 * layer set is not a transformer block). For decode-capable profiles
 * the invariants below hold against the `attn_qkv` layer shape
 * (d -> d + 2 * kvHeads * headDim, grouped-query attention):
 *
 *   heads * headDim == d          (query width is the hidden size)
 *   kvHeads divides heads         (GQA sharing factor)
 *   blocks >= 1                   (transformer blocks run per token;
 *                                  every block reuses the profile's one
 *                                  quantized representative layer set)
 */
struct DecodeGeometry
{
    size_t heads = 0;    ///< query heads (0 = decode not supported)
    size_t kvHeads = 0;  ///< key/value heads (GQA)
    size_t headDim = 0;  ///< per-head dimension
    size_t blocks = 0;   ///< transformer blocks per forward pass
};

/** A full synthetic model profile. */
struct ModelProfile
{
    std::string name;
    ModelKind kind = ModelKind::Llm;
    std::vector<LayerSpec> layers;   ///< scaled evaluation layers
    WeightProfile weights;
    ActProfile acts;
    double fpMetric = 0.0;  ///< paper FP16 baseline (PPL for LLMs,
                            ///< accuracy % for VLM/CNN/SSM)
    DecodeGeometry decode;  ///< attention geometry (heads == 0: none)
    size_t realHidden = 4096;   ///< full-scale hidden size (perf model)
    size_t realLayers = 32;     ///< full-scale transformer blocks
    double paramsB = 7.0;       ///< nominal parameter count in billions
    uint64_t seed = 1;          ///< deterministic generation seed
};

/** Look up a model by name. Fatal on unknown names. */
const ModelProfile &modelByName(const std::string &name);

/**
 * Layer wiring of a decode-capable profile: indices of the four
 * transformer-block projections within `profile.layers`, resolved by
 * name, plus the hidden size taken from the qkv layer's reduction
 * dimension.
 */
struct DecodeWiring
{
    size_t qkv = 0;   ///< attn_qkv: hidden -> hidden + 2 * kv width
    size_t out = 0;   ///< attn_out: hidden -> hidden
    size_t up = 0;    ///< mlp_up:   hidden -> ffn width
    size_t down = 0;  ///< mlp_down: ffn width -> hidden
    size_t hidden = 0;
};

/** Whether `decodeWiring` would succeed: transformer layer set present
 *  and the DecodeGeometry invariants hold. */
bool decodeCapable(const ModelProfile &model);

/** Resolve the block wiring of a decode-capable profile. Fatal (with
 *  the failing invariant) when the profile does not support decode. */
DecodeWiring decodeWiring(const ModelProfile &model);

/**
 * The per-layer identity an `.msq` container must match to serve as a
 * cached deployment of `model` (names + shapes for
 * `loadModelVerified`). Shared by every cache tier — the serving
 * weight cache and the pipeline's evaluation cache must verify
 * identically.
 */
std::vector<MsqLayerId> profileLayerIds(const ModelProfile &model);

/** All LLMs of Table 2 (in the paper's column order). */
std::vector<std::string> table2Models();

/** All registered model names. */
std::vector<std::string> allModels();

} // namespace msq

#endif // MSQ_MODEL_MODEL_ZOO_H
