/**
 * @file
 * Proxy evaluation metrics.
 *
 * Without the real checkpoints and datasets, accuracy claims are
 * evaluated through the quantized layer's output reconstruction error:
 * NMSE = ||Q^T X - W^T X||^2 / ||W^T X||^2 averaged over a model's
 * representative layers on a held-out token set. The NMSE maps to
 *
 *   proxy PPL       = fp_ppl * exp(kappa_ppl * nmse)
 *   proxy accuracy  = chance + (fp_acc - chance) * exp(-kappa_acc * nmse)
 *
 * monotone maps anchored at the paper's FP16 baselines, so *orderings*
 * between methods — the experimental claim under reproduction — come
 * entirely from measured reconstruction error, while absolute values
 * land on the paper's scale. kappa values are fixed constants documented
 * here, not tuned per experiment.
 */

#ifndef MSQ_MODEL_PROXY_EVAL_H
#define MSQ_MODEL_PROXY_EVAL_H

#include "common/matrix.h"

namespace msq {

/** Fixed proxy-map constants. */
constexpr double kKappaPpl = 3.0;
constexpr double kKappaAcc = 4.0;

/** Output-space NMSE of a quantized layer on an evaluation set. */
double layerOutputNmse(const Matrix &w, const Matrix &wq,
                       const Matrix &x_eval);

/** Map a mean NMSE to a proxy perplexity anchored at fp_ppl. */
double proxyPerplexity(double fp_ppl, double nmse);

/** Map a mean NMSE to a proxy task accuracy (percent). */
double proxyAccuracy(double fp_acc, double nmse, double chance = 25.0);

} // namespace msq

#endif // MSQ_MODEL_PROXY_EVAL_H
