#include "io/msq_file.h"

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "common/logging.h"
#include "io/crc32.h"
#include "io/io_util.h"

namespace msq {

namespace {

// ---------------------------------------------------------------------
// Little-endian byte building / parsing. All multi-byte integers in the
// container are little-endian regardless of host order.

void
putU32(std::vector<uint8_t> &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<uint8_t> &out, uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void
putString(std::vector<uint8_t> &out, const std::string &s)
{
    putU32(out, static_cast<uint32_t>(s.size()));
    out.insert(out.end(), s.begin(), s.end());
}

/** Bounds-checked sequential parser over a byte section. */
class Parser
{
  public:
    explicit Parser(const std::vector<uint8_t> &bytes) : bytes_(bytes) {}

    bool u32(uint32_t &v)
    {
        if (pos_ + 4 > bytes_.size())
            return false;
        v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(bytes_[pos_ + i]) << (8 * i);
        pos_ += 4;
        return true;
    }

    bool u64(uint64_t &v)
    {
        if (pos_ + 8 > bytes_.size())
            return false;
        v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(bytes_[pos_ + i]) << (8 * i);
        pos_ += 8;
        return true;
    }

    bool str(std::string &s)
    {
        uint32_t len = 0;
        if (!u32(len) || pos_ + len > bytes_.size())
            return false;
        s.assign(reinterpret_cast<const char *>(bytes_.data()) + pos_, len);
        pos_ += len;
        return true;
    }

    bool exhausted() const { return pos_ == bytes_.size(); }

  private:
    const std::vector<uint8_t> &bytes_;
    size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Section encoding.

constexpr size_t kPrologueBytes = 16; ///< magic, version, header, index sizes
constexpr uint32_t kFlagPrescale = 1u << 0;
constexpr uint32_t kFlagPruneRedistribute = 1u << 1;
constexpr uint32_t kFlagHessian = 1u << 2;

/**
 * Hard caps on CRC-valid but hostile metadata, enforced *before* any
 * size arithmetic or allocation depends on the fields: a crafted
 * header must produce a typed error, never a bad_alloc or an integer
 * wrap. B_mu <= 256 keeps permutation locations inside their uint8_t
 * fields (permLocBits <= 8); dimensions <= 2^24 keep every bit-count
 * product in payloadByteBounds far below 2^64 (2^24 elements is ~400x
 * the largest zoo layer).
 */
constexpr uint64_t kMaxMicroBlock = 256;
constexpr uint64_t kMaxBlockOrDim = 1ull << 24;

/** Cap on the header/index section sizes a prologue may declare:
 *  far above anything the writer emits (a 10k-layer index is ~1 MB),
 *  far below anything that could wrap 32-bit size arithmetic or
 *  bad_alloc the loader. */
constexpr uint32_t kMaxSectionBytes = 1u << 28;

std::vector<uint8_t>
encodeHeader(const std::string &model, const MsqConfig &c,
             uint64_t calib_tokens, uint64_t layer_count)
{
    std::vector<uint8_t> h;
    putU32(h, c.inlierBits);
    putU64(h, c.macroBlock);
    putU64(h, c.microBlock);
    putU64(h, c.rowBlock);
    uint64_t damp_bits = 0;
    static_assert(sizeof(damp_bits) == sizeof(c.dampRel), "double is 64-bit");
    std::memcpy(&damp_bits, &c.dampRel, sizeof(damp_bits));
    putU64(h, damp_bits);
    putU32(h, static_cast<uint32_t>(c.outlierMode));
    putU32(h, (c.prescaleOutliers ? kFlagPrescale : 0) |
                  (c.pruneAndRedistribute ? kFlagPruneRedistribute : 0) |
                  (c.hessianCompensation ? kFlagHessian : 0));
    putU64(h, calib_tokens);
    putU64(h, layer_count);
    putString(h, model);
    return h;
}

IoResult
parseHeader(const std::vector<uint8_t> &bytes, std::string &model,
            MsqConfig &config, uint64_t &calib_tokens, uint64_t &layer_count)
{
    Parser p(bytes);
    uint32_t inlier_bits = 0, mode = 0, flags = 0;
    uint64_t damp_bits = 0;
    MsqConfig c;
    if (!p.u32(inlier_bits) || !p.u64(c.macroBlock) ||
        !p.u64(c.microBlock) || !p.u64(c.rowBlock) || !p.u64(damp_bits) ||
        !p.u32(mode) || !p.u32(flags) || !p.u64(calib_tokens) ||
        !p.u64(layer_count) || !p.str(model) || !p.exhausted())
        return IoResult::error(IoCode::BadMetadata,
                               "header does not parse to its recorded size");
    c.inlierBits = inlier_bits;
    std::memcpy(&c.dampRel, &damp_bits, sizeof(c.dampRel));
    c.outlierMode = static_cast<OutlierMode>(mode);
    c.prescaleOutliers = (flags & kFlagPrescale) != 0;
    c.pruneAndRedistribute = (flags & kFlagPruneRedistribute) != 0;
    c.hessianCompensation = (flags & kFlagHessian) != 0;

    if (c.inlierBits != 2 && c.inlierBits != 4)
        return IoResult::error(IoCode::BadMetadata,
                               "inlier bits must be 2 or 4, got " +
                                   std::to_string(c.inlierBits));
    if (c.microBlock < 2 || c.microBlock > kMaxMicroBlock ||
        c.macroBlock < c.microBlock || c.macroBlock > kMaxBlockOrDim ||
        c.macroBlock % c.microBlock != 0)
        return IoResult::error(
            IoCode::BadMetadata,
            "macro/micro block sizes are inconsistent or implausible (" +
                std::to_string(c.macroBlock) + "/" +
                std::to_string(c.microBlock) + ")");
    if (c.rowBlock == 0)
        return IoResult::error(IoCode::BadMetadata, "row block must be >= 1");
    if (!std::isfinite(c.dampRel) || c.dampRel < 0.0)
        return IoResult::error(IoCode::BadMetadata,
                               "damping must be finite and non-negative");
    if (mode > static_cast<uint32_t>(OutlierMode::MxInt))
        return IoResult::error(IoCode::BadMetadata,
                               "unknown outlier mode " + std::to_string(mode));
    if (flags & ~(kFlagPrescale | kFlagPruneRedistribute | kFlagHessian))
        return IoResult::error(IoCode::BadMetadata, "unknown header flags");
    if (model.empty())
        return IoResult::error(IoCode::BadMetadata, "empty model name");
    if (layer_count == 0)
        return IoResult::error(IoCode::BadMetadata, "container has no layers");
    config = c;
    return IoResult::success();
}

/** Inclusive payload-size bounds of a rows x cols layer under `c`:
 *  the stream always carries the code plane, the Isf bytes and one
 *  identifier bit per micro-block, and at most additionally every
 *  micro-block's outlier metadata. No intermediate can wrap: rows,
 *  cols and the blocks are capped at parse time (kMaxBlockOrDim,
 *  kMaxMicroBlock), bounding everything below 2^60 bits. */
void
payloadByteBounds(const MsqConfig &c, uint64_t rows, uint64_t cols,
                  uint64_t &min_bytes, uint64_t &max_bytes)
{
    const uint64_t macro_per_row = (cols + c.macroBlock - 1) / c.macroBlock;
    const uint64_t micro_per_row = (cols + c.microBlock - 1) / c.microBlock;
    const uint64_t meta_bits =
        8 + c.microBlockCapacity() * (1 + 2 * PackedLayer::permLocBits(c));
    const uint64_t base_bits =
        rows * (cols * c.inlierBits + macro_per_row * 8 + micro_per_row);
    min_bytes = (base_bits + 7) / 8;
    max_bytes = (base_bits + rows * micro_per_row * meta_bits + 7) / 8;
}

// ---------------------------------------------------------------------
// Shared open path: validate prologue + header + index, leaving the
// stream positioned for payload reads.

struct OpenedContainer
{
    std::FILE *stream = nullptr;
    uint64_t fileBytes = 0;
    std::string model;
    MsqConfig config;
    uint64_t calibTokens = 0;
    std::vector<MsqLayerInfo> index;
};

uint64_t
streamSize(std::FILE *f)
{
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    return size < 0 ? 0 : static_cast<uint64_t>(size);
}

bool
readAt(std::FILE *f, uint64_t offset, std::vector<uint8_t> &out,
       size_t bytes)
{
    out.resize(bytes);
    if (std::fseek(f, static_cast<long>(offset), SEEK_SET) != 0)
        return false;
    // EINTR-hardened: a signal landing mid-read (the serving frontend
    // installs a SIGTERM handler) must not turn into a short read.
    return bytes == 0 || freadFully(f, out.data(), bytes);
}

/** Validate everything up to (not including) the layer payloads. */
IoResult
openContainer(const std::string &path, OpenedContainer &oc)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return IoResult::error(IoCode::FileError, "cannot open " + path);
    oc.stream = f;
    oc.fileBytes = streamSize(f);

    // Prologue: the only section read before any checksum passes, so
    // every field is validated against the real file size before use.
    std::vector<uint8_t> pro;
    if (oc.fileBytes < kPrologueBytes + 4 ||
        !readAt(f, 0, pro, kPrologueBytes + 4))
        return IoResult::error(IoCode::Truncated,
                               path + " is shorter than an .msq prologue");
    Parser pp(pro);
    uint32_t magic = 0, version = 0, header_bytes = 0, index_bytes = 0,
             pro_crc = 0;
    pp.u32(magic);
    pp.u32(version);
    pp.u32(header_bytes);
    pp.u32(index_bytes);
    pp.u32(pro_crc);
    if (magic != kMsqMagic)
        return IoResult::error(IoCode::BadMagic,
                               path + " is not an .msq container");
    if (pro_crc != crc32(pro.data(), kPrologueBytes))
        return IoResult::error(IoCode::HeaderCorrupt,
                               "prologue checksum mismatch in " + path);
    if (version != kMsqFormatVersion)
        return IoResult::error(IoCode::BadVersion,
                               "unsupported .msq format version " +
                                   std::to_string(version));
    // Cap the section sizes before any arithmetic or allocation uses
    // them: a crafted prologue near UINT32_MAX must not wrap the
    // `+ 4` CRC-word offsets below or drive a multi-GB resize.
    if (header_bytes > kMaxSectionBytes || index_bytes > kMaxSectionBytes)
        return IoResult::error(IoCode::BadMetadata,
                               path + " declares implausible section sizes");

    const uint64_t header_off = kPrologueBytes + 4;
    const uint64_t index_off = header_off + header_bytes + 4;
    const uint64_t payload_off = index_off + index_bytes + 4;
    if (payload_off > oc.fileBytes)
        return IoResult::error(IoCode::Truncated,
                               path + " is shorter than its header + index");

    // Header.
    std::vector<uint8_t> header;
    if (!readAt(f, header_off, header, size_t{header_bytes} + 4))
        return IoResult::error(IoCode::FileError, "read failed on " + path);
    uint32_t header_crc = 0;
    for (int i = 0; i < 4; ++i)
        header_crc |= static_cast<uint32_t>(header[header_bytes + i])
                      << (8 * i);
    header.resize(header_bytes);
    if (header_crc != crc32(header.data(), header.size()))
        return IoResult::error(IoCode::HeaderCorrupt,
                               "header checksum mismatch in " + path);
    uint64_t layer_count = 0;
    IoResult parsed = parseHeader(header, oc.model, oc.config,
                                  oc.calibTokens, layer_count);
    if (!parsed)
        return parsed;

    // Index.
    std::vector<uint8_t> index;
    if (!readAt(f, index_off, index, size_t{index_bytes} + 4))
        return IoResult::error(IoCode::FileError, "read failed on " + path);
    uint32_t index_crc = 0;
    for (int i = 0; i < 4; ++i)
        index_crc |= static_cast<uint32_t>(index[index_bytes + i]) << (8 * i);
    index.resize(index_bytes);
    if (index_crc != crc32(index.data(), index.size()))
        return IoResult::error(IoCode::IndexCorrupt,
                               "index checksum mismatch in " + path);

    Parser ip(index);
    oc.index.resize(layer_count);
    uint64_t next_offset = payload_off;
    for (uint64_t li = 0; li < layer_count; ++li) {
        MsqLayerInfo &info = oc.index[li];
        if (!ip.str(info.name) || !ip.u64(info.rows) || !ip.u64(info.cols) ||
            !ip.u64(info.offset) || !ip.u64(info.bytes) || !ip.u32(info.crc))
            return IoResult::error(IoCode::BadMetadata,
                                   "index does not parse to " +
                                       std::to_string(layer_count) +
                                       " layers");
        if (info.rows == 0 || info.cols == 0 ||
            info.rows > kMaxBlockOrDim || info.cols > kMaxBlockOrDim)
            return IoResult::error(IoCode::BadMetadata,
                                   "layer " + std::to_string(li) +
                                       " has an implausible shape");
        // Payloads are laid out contiguously in index order; anything
        // else is not a well-formed container.
        if (info.offset != next_offset || info.bytes == 0 ||
            info.offset + info.bytes > oc.fileBytes)
            return IoResult::error(
                info.offset + info.bytes > oc.fileBytes ? IoCode::Truncated
                                                        : IoCode::BadMetadata,
                "layer " + std::to_string(li) +
                    " payload falls outside the file");
        uint64_t min_bytes = 0, max_bytes = 0;
        payloadByteBounds(oc.config, info.rows, info.cols, min_bytes,
                          max_bytes);
        if (info.bytes < min_bytes || info.bytes > max_bytes)
            return IoResult::error(IoCode::BadMetadata,
                                   "layer " + std::to_string(li) +
                                       " payload size is impossible for "
                                       "its shape");
        next_offset = info.offset + info.bytes;
    }
    if (!ip.exhausted())
        return IoResult::error(IoCode::BadMetadata,
                               "index carries trailing bytes");
    if (next_offset < oc.fileBytes)
        return IoResult::error(IoCode::TrailingBytes,
                               path + " carries bytes past the last layer");
    if (next_offset > oc.fileBytes)
        return IoResult::error(IoCode::Truncated,
                               path + " is shorter than its index claims");
    return IoResult::success();
}

/** Seek+read of one payload: the only part that touches the stream. */
IoResult
fetchLayerPayload(std::FILE *f, const MsqLayerInfo &info,
                  std::vector<uint8_t> &payload)
{
    if (!readAt(f, info.offset, payload, info.bytes))
        return IoResult::error(IoCode::FileError, "payload read failed");
    return IoResult::success();
}

/** Checksum + deserialize of fetched payload bytes (stream-free). */
IoResult
decodeLayerPayload(const MsqConfig &config, const MsqLayerInfo &info,
                   size_t li, const std::vector<uint8_t> &payload,
                   PackedLayer &out)
{
    if (info.crc != crc32(payload.data(), payload.size()))
        return IoResult::error(IoCode::LayerCorrupt,
                               "layer " + std::to_string(li) + " (" +
                                   info.name + ") checksum mismatch");
    if (!PackedLayer::tryDeserialize(config, info.rows, info.cols, payload,
                                     out))
        return IoResult::error(IoCode::LayerCorrupt,
                               "layer " + std::to_string(li) + " (" +
                                   info.name +
                                   ") payload does not decode");
    return IoResult::success();
}

IoResult
readLayerPayload(std::FILE *f, const MsqConfig &config,
                 const MsqLayerInfo &info, size_t li, PackedLayer &out)
{
    std::vector<uint8_t> payload;
    IoResult res = fetchLayerPayload(f, info, payload);
    if (!res)
        return res;
    return decodeLayerPayload(config, info, li, payload, out);
}

} // namespace

const char *
ioCodeName(IoCode code)
{
    switch (code) {
      case IoCode::Ok: return "ok";
      case IoCode::FileError: return "file-error";
      case IoCode::BadMagic: return "bad-magic";
      case IoCode::BadVersion: return "bad-version";
      case IoCode::Truncated: return "truncated";
      case IoCode::TrailingBytes: return "trailing-bytes";
      case IoCode::HeaderCorrupt: return "header-corrupt";
      case IoCode::IndexCorrupt: return "index-corrupt";
      case IoCode::LayerCorrupt: return "layer-corrupt";
      case IoCode::BadMetadata: return "bad-metadata";
      case IoCode::IdentityMismatch: return "identity-mismatch";
    }
    return "unknown";
}

std::string
containerFileName(const std::string &stem, const std::string &key)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (const char c : key) {
        h ^= static_cast<uint8_t>(c);
        h *= 0x100000001b3ull;
    }
    char hash[24];
    std::snprintf(hash, sizeof(hash), "%016llx",
                  static_cast<unsigned long long>(h));
    return stem + "-" + hash + ".msq";
}

IoResult
saveModel(const std::string &path, const std::string &model,
          const MsqConfig &config, uint64_t calib_tokens,
          const std::vector<std::string> &layer_names,
          const std::vector<const PackedLayer *> &layers)
{
    MSQ_ASSERT(!layers.empty(), "cannot save a container with no layers");
    MSQ_ASSERT(layer_names.size() == layers.size(),
               "layer names must match layers");

    const std::vector<uint8_t> header =
        encodeHeader(model, config, calib_tokens, layers.size());

    // Serialize every payload first: the index records their offsets,
    // sizes, and checksums.
    std::vector<std::vector<uint8_t>> payloads;
    payloads.reserve(layers.size());
    for (const PackedLayer *layer : layers)
        payloads.push_back(layer->serialize());

    std::vector<uint8_t> index;
    for (size_t li = 0; li < layers.size(); ++li) {
        putString(index, layer_names[li]);
        putU64(index, layers[li]->rows());
        putU64(index, layers[li]->cols());
        putU64(index, 0); // offset placeholder, rewritten below
        putU64(index, payloads[li].size());
        putU32(index, crc32(payloads[li].data(), payloads[li].size()));
    }

    // Now that the index size is fixed, compute the absolute payload
    // offsets and rewrite the placeholders in place.
    uint64_t offset =
        kPrologueBytes + 4 + header.size() + 4 + index.size() + 4;
    size_t cursor = 0;
    for (size_t li = 0; li < layers.size(); ++li) {
        cursor += 4 + layer_names[li].size() + 8 + 8; // name, rows, cols
        for (int i = 0; i < 8; ++i)
            index[cursor + i] = static_cast<uint8_t>(offset >> (8 * i));
        cursor += 8 + 8 + 4; // offset, bytes, crc
        offset += payloads[li].size();
    }

    std::vector<uint8_t> prologue;
    putU32(prologue, kMsqMagic);
    putU32(prologue, kMsqFormatVersion);
    putU32(prologue, static_cast<uint32_t>(header.size()));
    putU32(prologue, static_cast<uint32_t>(index.size()));
    putU32(prologue, crc32(prologue.data(), prologue.size()));

    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return IoResult::error(IoCode::FileError,
                               "cannot write " + path);
    // EINTR-hardened writes: saveModelAtomic must publish a complete
    // temp file even when signals land mid-write.
    bool ok = fwriteFully(f, prologue.data(), prologue.size());
    auto writeSection = [&](const std::vector<uint8_t> &bytes) {
        ok = ok && fwriteFully(f, bytes.data(), bytes.size());
        std::vector<uint8_t> crc;
        putU32(crc, crc32(bytes.data(), bytes.size()));
        ok = ok && fwriteFully(f, crc.data(), crc.size());
    };
    writeSection(header);
    writeSection(index);
    for (const std::vector<uint8_t> &payload : payloads)
        ok = ok && fwriteFully(f, payload.data(), payload.size());
    ok = std::fclose(f) == 0 && ok;
    if (!ok)
        return IoResult::error(IoCode::FileError,
                               "short write on " + path);
    return IoResult::success();
}

IoResult
saveModel(const std::string &path, const MsqModelFile &file)
{
    std::vector<const PackedLayer *> layers;
    layers.reserve(file.layers.size());
    for (const PackedLayer &layer : file.layers)
        layers.push_back(&layer);
    return saveModel(path, file.model, file.config, file.calibTokens,
                     file.layerNames, layers);
}

IoResult
saveModelAtomic(const std::string &path, const std::string &model,
                const MsqConfig &config, uint64_t calib_tokens,
                const std::vector<std::string> &layer_names,
                const std::vector<const PackedLayer *> &layers)
{
    // Unique temp name per writer: racing deployments of the same
    // container must never interleave writes in one temp file.
    static std::atomic<uint64_t> counter{0};
    const std::string tmp =
        path + ".tmp." + std::to_string(static_cast<long>(getpid())) + "." +
        std::to_string(counter.fetch_add(1));
    const IoResult res =
        saveModel(tmp, model, config, calib_tokens, layer_names, layers);
    if (!res) {
        std::remove(tmp.c_str());
        return res;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return IoResult::error(IoCode::FileError,
                               "cannot rename " + tmp + " over " + path);
    }
    return IoResult::success();
}

IoResult
saveModelAtomic(const std::string &path, const MsqModelFile &file)
{
    std::vector<const PackedLayer *> layers;
    layers.reserve(file.layers.size());
    for (const PackedLayer &layer : file.layers)
        layers.push_back(&layer);
    return saveModelAtomic(path, file.model, file.config, file.calibTokens,
                           file.layerNames, layers);
}

IoResult
loadModel(const std::string &path, MsqModelFile &out)
{
    OpenedContainer oc;
    IoResult res = openContainer(path, oc);
    if (res) {
        MsqModelFile loaded;
        loaded.model = oc.model;
        loaded.config = oc.config;
        loaded.calibTokens = oc.calibTokens;
        loaded.layers.resize(oc.index.size());
        loaded.layerNames.resize(oc.index.size());
        for (size_t li = 0; li < oc.index.size() && res; ++li) {
            loaded.layerNames[li] = oc.index[li].name;
            res = readLayerPayload(oc.stream, oc.config, oc.index[li], li,
                                   loaded.layers[li]);
        }
        if (res)
            out = std::move(loaded);
    }
    if (oc.stream)
        std::fclose(oc.stream);
    return res;
}

IoResult
loadModelVerified(const std::string &path, const std::string &model,
                  const MsqConfig &config, uint64_t calib_tokens,
                  const std::vector<MsqLayerId> &layers, MsqModelFile &out)
{
    MsqModelFile file;
    IoResult res = loadModel(path, file);
    if (!res)
        return res;
    if (file.model != model || file.config != config ||
        file.calibTokens != calib_tokens ||
        file.layers.size() != layers.size())
        return IoResult::error(IoCode::IdentityMismatch,
                               path + " holds a different deployment (" +
                                   file.model + ", " +
                                   file.config.name() + ", calib " +
                                   std::to_string(file.calibTokens) + ")");
    for (size_t li = 0; li < layers.size(); ++li)
        if (file.layerNames[li] != layers[li].name ||
            file.layers[li].rows() != layers[li].rows ||
            file.layers[li].cols() != layers[li].cols)
            return IoResult::error(IoCode::IdentityMismatch,
                                   path + " layer " + std::to_string(li) +
                                       " does not match the expected "
                                       "layer set");
    out = std::move(file);
    return res;
}

MsqReader::MsqReader() = default;

MsqReader::~MsqReader()
{
    if (stream_)
        std::fclose(stream_);
}

IoResult
MsqReader::open(const std::string &path)
{
    {
        MutexLock lock(ioMutex_);
        if (stream_) {
            std::fclose(stream_);
            stream_ = nullptr;
            index_.clear();
        }
    }
    OpenedContainer oc;
    IoResult res = openContainer(path, oc);
    if (!res) {
        if (oc.stream)
            std::fclose(oc.stream);
        return res;
    }
    fileBytes_ = oc.fileBytes;
    model_ = std::move(oc.model);
    config_ = oc.config;
    calibTokens_ = oc.calibTokens;
    index_ = std::move(oc.index);
    MutexLock lock(ioMutex_);
    stream_ = oc.stream;
    return res;
}

IoResult
MsqReader::readLayer(size_t i, PackedLayer &out)
{
    MSQ_ASSERT(i < index_.size(), "layer index out of range");
    const MsqLayerInfo &info = index_[i];
    std::vector<uint8_t> payload;
    {
        // Serialize only the seek+read pair: the checksum and decode
        // below run concurrently for distinct layers.
        MutexLock lock(ioMutex_);
        MSQ_ASSERT(stream_, "reader is not open");
        IoResult res = fetchLayerPayload(stream_, info, payload);
        if (!res)
            return res;
    }
    return decodeLayerPayload(config_, info, i, payload, out);
}

} // namespace msq
