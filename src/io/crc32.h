/**
 * @file
 * CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over byte
 * ranges, used by the `.msq` container (io/msq_file.h) to give every
 * section — prologue, header, index, and each layer payload — an
 * integrity word. CRC-32 detects all error bursts of up to 32 bits, so
 * any single corrupted byte inside a covered section is guaranteed to
 * be caught; the fuzz suite in tests/test_io_fuzz.cc verifies this
 * exhaustively on a real container.
 */

#ifndef MSQ_IO_CRC32_H
#define MSQ_IO_CRC32_H

#include <cstddef>
#include <cstdint>

namespace msq {

/**
 * CRC-32 of `size` bytes at `data`, continuing from `seed` (pass the
 * previous call's return value to checksum a section in pieces; the
 * default starts a fresh checksum). Matches zlib's crc32().
 */
uint32_t crc32(const uint8_t *data, size_t size, uint32_t seed = 0);

} // namespace msq

#endif // MSQ_IO_CRC32_H
