/**
 * @file
 * EINTR/partial-IO-hardened read/write primitives shared by the `.msq`
 * container code and the network serving frontend.
 *
 * POSIX I/O is allowed to transfer fewer bytes than asked (signals,
 * pipe buffers, socket windows) and to fail spuriously with `EINTR`
 * when a signal lands mid-call. Code that treats one `read()` /
 * `fread()` as all-or-nothing works until the process installs a
 * signal handler — which the serving frontend does (SIGTERM drain) —
 * and then fails rarely and unreproducibly. Every loop that must move
 * exactly N bytes goes through these wrappers instead:
 *
 *  - `readFully` / `writeFully`    file-descriptor loops retrying on
 *                                  `EINTR` and short transfers; EOF or
 *                                  a real error reports `false`
 *  - `freadFully` / `fwriteFully`  the same discipline over stdio
 *                                  streams (the container reader and
 *                                  writer), clearing the error flag
 *                                  and resuming after `EINTR`
 *
 * None of the wrappers allocate or throw; callers keep their typed
 * error reporting (IoResult, NetCode) on top.
 */

#ifndef MSQ_IO_IO_UTIL_H
#define MSQ_IO_IO_UTIL_H

#include <cstdio>

#include <cstddef>

namespace msq {

/**
 * Read exactly `bytes` bytes from `fd` into `buf`, retrying on `EINTR`
 * and short reads. Returns false on EOF-before-done or a real error
 * (errno holds the cause; EOF leaves errno untouched).
 */
bool readFully(int fd, void *buf, size_t bytes);

/**
 * Write exactly `bytes` bytes from `buf` to `fd`, retrying on `EINTR`
 * and short writes. Returns false on a real error (errno holds it).
 */
bool writeFully(int fd, const void *buf, size_t bytes);

/**
 * `fread` exactly `bytes` bytes, retrying after `EINTR`-interrupted
 * short reads (the stream error flag is cleared before resuming).
 * Returns false on EOF-before-done or a persistent stream error.
 */
bool freadFully(std::FILE *stream, void *buf, size_t bytes);

/** `fwrite` analog of `freadFully`. */
bool fwriteFully(std::FILE *stream, const void *buf, size_t bytes);

} // namespace msq

#endif // MSQ_IO_IO_UTIL_H
