/**
 * @file
 * The persistent `.msq` model container: a versioned, self-describing,
 * CRC-protected binary file holding every `PackedLayer` of a quantized
 * deployment exactly as `PackedLayer::serialize()` emits it (the Fig. 5
 * off-chip memory image, docs/FORMAT.md). A server loads the container
 * instead of re-running PTQ, which turns a cold start from a
 * Hessian-sweep-bounded quantization into a read-validate-decode pass
 * (bench/bench_cold_start.cc measures the gap).
 *
 * Layout (little-endian; full byte map in docs/FORMAT.md, "Container
 * framing"):
 *
 *   prologue   magic 'MSQC', format version, header/index sizes + CRC32
 *   header     embedded MsqConfig, calibration tokens, model identity,
 *              layer count + CRC32
 *   index      per layer: name, rows x cols, absolute payload offset,
 *              payload byte count, payload CRC32; then the index CRC32
 *   payloads   the concatenated PackedLayer::serialize() streams
 *
 * Every byte of the file is covered by exactly one CRC32, so any
 * single-byte corruption is detected (tests/test_io_fuzz.cc flips each
 * one). Loading never trusts a length or offset before the section
 * carrying it has passed its checksum and been bounds-checked against
 * the real file size, and layer payloads decode through the
 * bounds-checked `PackedLayer::tryDeserialize` — malformed input
 * produces a typed `IoResult`, never a crash or silent garbage.
 *
 * Two entry points share the format: the eager `loadModel()` validates
 * everything up front, while `MsqReader` validates lazily — it
 * checksums only the prologue/header/index on open and each layer
 * payload on first read, so a server can map layer N without paying for
 * layer M.
 */

#ifndef MSQ_IO_MSQ_FILE_H
#define MSQ_IO_MSQ_FILE_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "core/msq_config.h"
#include "core/packed_tensor.h"

namespace msq {

/** Container magic: "MSQC" in file order. */
constexpr uint32_t kMsqMagic = 0x4351534Du;

/** Current container format version; bumped on any layout change. */
constexpr uint32_t kMsqFormatVersion = 1;

/** Typed outcome classes of a container load. */
enum class IoCode
{
    Ok,
    FileError,     ///< cannot open / read / write the file
    BadMagic,      ///< not an .msq container
    BadVersion,    ///< container from an unknown format version
    Truncated,     ///< file shorter than its sections claim
    TrailingBytes, ///< file longer than its sections claim
    HeaderCorrupt, ///< prologue or header CRC mismatch
    IndexCorrupt,  ///< layer index CRC mismatch
    LayerCorrupt,  ///< layer payload CRC mismatch or undecodable stream
    BadMetadata,   ///< CRC-valid but semantically invalid fields
    IdentityMismatch, ///< valid container for a *different* deployment
};

/** Stable name of an IoCode (for messages and tests). */
const char *ioCodeName(IoCode code);

/** Outcome of a container operation: a code plus a human-readable
 *  detail line. Converts to true on success. */
struct IoResult
{
    IoCode code = IoCode::Ok;
    std::string message;

    bool ok() const { return code == IoCode::Ok; }
    explicit operator bool() const { return ok(); }

    static IoResult success() { return IoResult{}; }
    static IoResult error(IoCode code, std::string message)
    {
        return IoResult{code, std::move(message)};
    }
};

/** One layer-index entry as recorded in the container. */
struct MsqLayerInfo
{
    std::string name;    ///< layer name (e.g. "attn_qkv")
    uint64_t rows = 0;   ///< reduction dimension k
    uint64_t cols = 0;   ///< output dimension o
    uint64_t offset = 0; ///< absolute payload offset in the file
    uint64_t bytes = 0;  ///< payload byte count
    uint32_t crc = 0;    ///< payload CRC32
};

/** In-memory image of a container: identity + every packed layer. */
struct MsqModelFile
{
    std::string model;            ///< model profile name
    MsqConfig config;             ///< quantization config of every layer
    uint64_t calibTokens = 0;     ///< requested calibration budget
    std::vector<std::string> layerNames; ///< parallel to `layers`
    std::vector<PackedLayer> layers;
};

/**
 * Filesystem-safe container name for a cache entry: `stem` plus the
 * 64-bit FNV-1a hash of `key` (hex) plus ".msq". Key collisions are
 * harmless as long as the loader verifies the container's embedded
 * identity before use, which both cache tiers do.
 */
std::string containerFileName(const std::string &stem,
                              const std::string &key);

/**
 * Write `file` to `path` (overwriting). The layer payloads are the
 * exact `serialize()` bytes; re-encoding a loaded container reproduces
 * the input byte for byte (golden-file test). Returns FileError on I/O
 * failure.
 *
 * @pre file.layers is non-empty and layerNames matches it in size.
 */
IoResult saveModel(const std::string &path, const MsqModelFile &file);

/**
 * View-based variant: identical bytes, but the layers are referenced
 * rather than copied into an MsqModelFile — the serving cold-start
 * path persists a just-built deployment without duplicating its
 * packed footprint. Pointers must be non-null.
 */
IoResult saveModel(const std::string &path, const std::string &model,
                   const MsqConfig &config, uint64_t calib_tokens,
                   const std::vector<std::string> &layer_names,
                   const std::vector<const PackedLayer *> &layers);

/**
 * Write `file` atomically: the bytes go to a uniquely named temp file
 * in `path`'s directory which is renamed over `path` on success, so
 * concurrent writers (racing deployments of one container) and killed
 * processes can never publish a torn container — the last complete
 * write wins.
 */
IoResult saveModelAtomic(const std::string &path, const MsqModelFile &file);

/** View-based atomic write (see the view-based saveModel). */
IoResult saveModelAtomic(const std::string &path, const std::string &model,
                         const MsqConfig &config, uint64_t calib_tokens,
                         const std::vector<std::string> &layer_names,
                         const std::vector<const PackedLayer *> &layers);

/**
 * Read and fully validate the container at `path`: every section CRC
 * is checked and every layer is decoded before the call returns. On
 * any failure `out` is left untouched.
 */
IoResult loadModel(const std::string &path, MsqModelFile &out);

/** Expected identity of one layer for verified cache loads. */
struct MsqLayerId
{
    std::string name;
    uint64_t rows = 0;
    uint64_t cols = 0;
};

/**
 * `loadModel` plus an identity gate, shared by every cache tier: the
 * container's embedded model name, full config, calibration budget,
 * and per-layer names/shapes must all equal the expected deployment,
 * or the load fails with IdentityMismatch (cache file names hash the
 * same identity, so a mismatch means a hash collision or a stale
 * file — either way, a miss). On any failure `out` is left untouched.
 */
IoResult loadModelVerified(const std::string &path, const std::string &model,
                           const MsqConfig &config, uint64_t calib_tokens,
                           const std::vector<MsqLayerId> &layers,
                           MsqModelFile &out);

/**
 * Streaming container reader with lazy payload validation: `open()`
 * checksums only the fixed-size sections (prologue, header, index),
 * and each `readLayer()` seeks to, checksums, and decodes one payload.
 * Opening a multi-gigabyte container therefore costs the index size,
 * not the model size, and a sharded server can pull only its layers.
 *
 * Thread safety: after a successful `open()`, concurrent `readLayer()`
 * calls from multiple threads are safe — the seek+read pair on the one
 * underlying stream is serialized under an internal mutex, while the
 * (more expensive) checksum and decode of the fetched bytes run
 * outside it, so distinct layers validate concurrently. `open()` must
 * not race with `readLayer()` (re-opening swaps the stream out).
 */
class MsqReader
{
  public:
    MsqReader();
    ~MsqReader();
    MsqReader(const MsqReader &) = delete;
    MsqReader &operator=(const MsqReader &) = delete;

    /** Open and validate prologue + header + index. */
    IoResult open(const std::string &path);

    /** Identity of the opened container. @pre open() succeeded */
    const std::string &model() const { return model_; }
    const MsqConfig &config() const { return config_; }
    uint64_t calibTokens() const { return calibTokens_; }
    uint64_t fileBytes() const { return fileBytes_; }

    size_t layerCount() const { return index_.size(); }

    /** Index entry of layer `i`. @pre i < layerCount() */
    const MsqLayerInfo &layerInfo(size_t i) const { return index_[i]; }

    /**
     * Read, checksum, and decode layer `i`. Layers may be read in any
     * order and any subset; no other payload is touched. Safe to call
     * concurrently from multiple threads on one reader.
     * @pre open() succeeded and i < layerCount()
     */
    IoResult readLayer(size_t i, PackedLayer &out);

  private:
    /** Serializes the seek+read pair on `stream_` (identity and index
     *  are immutable between `open()` calls and need no guard). */
    Mutex ioMutex_;
    std::FILE *stream_ MSQ_GUARDED_BY(ioMutex_) = nullptr;
    std::string model_;
    MsqConfig config_;
    uint64_t calibTokens_ = 0;
    uint64_t fileBytes_ = 0;
    std::vector<MsqLayerInfo> index_;
};

} // namespace msq

#endif // MSQ_IO_MSQ_FILE_H
