#include "io/io_util.h"

#include <cerrno>
#include <cstdint>

#include <unistd.h>

namespace msq {

bool
readFully(int fd, void *buf, size_t bytes)
{
    uint8_t *p = static_cast<uint8_t *>(buf);
    size_t done = 0;
    while (done < bytes) {
        const ssize_t n = ::read(fd, p + done, bytes - done);
        if (n > 0) {
            done += static_cast<size_t>(n);
            continue;
        }
        if (n == 0)
            return false; // EOF before the requested count
        if (errno == EINTR)
            continue;
        return false;
    }
    return true;
}

bool
writeFully(int fd, const void *buf, size_t bytes)
{
    const uint8_t *p = static_cast<const uint8_t *>(buf);
    size_t done = 0;
    while (done < bytes) {
        const ssize_t n = ::write(fd, p + done, bytes - done);
        if (n >= 0) {
            done += static_cast<size_t>(n);
            continue;
        }
        if (errno == EINTR)
            continue;
        return false;
    }
    return true;
}

bool
freadFully(std::FILE *stream, void *buf, size_t bytes)
{
    uint8_t *p = static_cast<uint8_t *>(buf);
    size_t done = 0;
    while (done < bytes) {
        const size_t n = std::fread(p + done, 1, bytes - done, stream);
        done += n;
        if (done == bytes)
            break;
        if (std::ferror(stream) && errno == EINTR) {
            // A signal interrupted the underlying read; clear the
            // sticky error flag and resume where the short read left
            // off — fread already consumed the bytes it got.
            std::clearerr(stream);
            continue;
        }
        return false; // EOF or a persistent stream error
    }
    return true;
}

bool
fwriteFully(std::FILE *stream, const void *buf, size_t bytes)
{
    const uint8_t *p = static_cast<const uint8_t *>(buf);
    size_t done = 0;
    while (done < bytes) {
        const size_t n = std::fwrite(p + done, 1, bytes - done, stream);
        done += n;
        if (done == bytes)
            break;
        if (std::ferror(stream) && errno == EINTR) {
            std::clearerr(stream);
            continue;
        }
        return false;
    }
    return true;
}

} // namespace msq
