/**
 * @file
 * Corruption and truncation fuzzing of the `.msq` container loader
 * (ISSUE: every byte position of a real container is flipped, and the
 * file is truncated to every possible length; `loadModel()` must either
 * round-trip bit-exactly or return a clean typed error — it must never
 * crash, and it must never hand back different weights than were
 * saved). Every byte of the format is covered by one CRC32, which
 * detects any error burst up to 32 bits, so in fact *every* flip must
 * be detected; the test asserts that too, separately for each section
 * (prologue/header, index, payloads), to pin the coverage map.
 *
 * The CI sanitizer job (ASan+UBSan, label "fuzz") runs this suite, so
 * "never crashes" includes "never reads out of bounds".
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/rng.h"
#include "core/microscopiq.h"
#include "io/msq_file.h"

namespace msq {
namespace {

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "msq_test_fuzz_" + name;
}

std::vector<uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

Matrix
randomWeights(size_t k, size_t o, uint64_t seed, double outlier_rate)
{
    Rng rng(seed);
    Matrix w(k, o);
    for (size_t r = 0; r < k; ++r) {
        for (size_t c = 0; c < o; ++c) {
            double v = rng.gaussian(0.0, 0.02);
            if (rng.bernoulli(outlier_rate))
                v = rng.uniform(0.15, 0.5) * (rng.bernoulli(0.5) ? 1 : -1);
            w(r, c) = v;
        }
    }
    return w;
}

/** Write a small but structurally complete container (two layers, real
 *  outliers so permutation lists and MXScale bytes are present). */
std::vector<uint8_t>
buildContainer(const MsqConfig &cfg, const std::string &path)
{
    MicroScopiQQuantizer quantizer(cfg);
    MsqModelFile file;
    file.model = "fuzz-model";
    file.config = cfg;
    file.calibTokens = 32;
    file.layerNames = {"fuzz_a", "fuzz_b"};
    file.layers.push_back(
        quantizer.quantizePacked(randomWeights(12, 48, 21, 0.08), Matrix()));
    file.layers.push_back(
        quantizer.quantizePacked(randomWeights(16, 32, 22, 0.10), Matrix()));
    EXPECT_TRUE(saveModel(path, file).ok());
    return readFileBytes(path);
}

/** Serialized image of a loaded container, for bit-exactness checks. */
std::vector<std::vector<uint8_t>>
layerBytes(const MsqModelFile &file)
{
    std::vector<std::vector<uint8_t>> all;
    for (const PackedLayer &layer : file.layers)
        all.push_back(layer.serialize());
    return all;
}

class IoFuzz : public ::testing::TestWithParam<unsigned>
{
};

/** Flip every byte of the container (xor with the parameter mask) and
 *  require a typed error or a bit-exact round trip — never a crash,
 *  never silently different weights. */
TEST_P(IoFuzz, EveryByteFlipIsDetectedOrHarmless)
{
    const uint8_t mask = static_cast<uint8_t>(GetParam());
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    char name[32];
    std::snprintf(name, sizeof(name), "flip_%02x.msq", mask);
    const std::string path = tmpPath(name);
    const std::vector<uint8_t> good = buildContainer(cfg, path);

    MsqModelFile reference;
    ASSERT_TRUE(loadModel(path, reference).ok());
    const std::vector<std::vector<uint8_t>> want = layerBytes(reference);

    size_t undetected = 0;
    for (size_t pos = 0; pos < good.size(); ++pos) {
        std::vector<uint8_t> mutated = good;
        mutated[pos] ^= mask;
        writeFileBytes(path, mutated);

        MsqModelFile out;
        const IoResult res = loadModel(path, out);
        if (!res.ok())
            continue; // clean typed rejection
        ++undetected;
        // Accepted: the weights must still be bit-exact (mask == 0 is
        // the control arm and must always land here).
        ASSERT_EQ(out.layers.size(), want.size()) << "byte " << pos;
        for (size_t li = 0; li < want.size(); ++li)
            ASSERT_EQ(out.layers[li].serialize(), want[li])
                << "byte " << pos << " layer " << li;
    }
    if (mask == 0)
        EXPECT_EQ(undetected, good.size()); // every load must succeed
    else
        // Every byte is CRC-covered, so every real flip is detected.
        EXPECT_EQ(undetected, 0u);
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(Masks, IoFuzz,
                         ::testing::Values(0x00u, 0xFFu, 0x01u, 0x80u));

TEST(IoFuzzTruncate, EveryTruncationIsATypedError)
{
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    const std::string path = tmpPath("truncate.msq");
    const std::vector<uint8_t> good = buildContainer(cfg, path);

    for (size_t len = 0; len < good.size(); ++len) {
        std::vector<uint8_t> cut(good.begin(),
                                 good.begin() + static_cast<long>(len));
        writeFileBytes(path, cut);
        MsqModelFile out;
        const IoResult res = loadModel(path, out);
        ASSERT_FALSE(res.ok()) << "accepted a " << len << "-byte prefix of a "
                               << good.size() << "-byte container";
        ASSERT_NE(res.message, "") << "error without a message at " << len;
    }
    std::remove(path.c_str());
}

TEST(IoFuzzTruncate, LazyReaderDetectsPayloadTruncationAtOpen)
{
    // Even the lazy reader must notice a short file immediately: the
    // index records where the last payload ends.
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    const std::string path = tmpPath("lazy_truncate.msq");
    const std::vector<uint8_t> good = buildContainer(cfg, path);

    std::vector<uint8_t> cut(good.begin(), good.end() - 1);
    writeFileBytes(path, cut);
    MsqReader reader;
    EXPECT_EQ(reader.open(path).code, IoCode::Truncated);
    std::remove(path.c_str());
}

TEST(IoFuzzW4, ByteFlipSweepOnTheFourBitFormat)
{
    // The e3m4 outlier format packs different metadata widths; sweep
    // the full flip fuzz on a W4 container too.
    MsqConfig cfg;
    cfg.inlierBits = 4;
    cfg.hessianCompensation = false;
    const std::string path = tmpPath("w4.msq");
    const std::vector<uint8_t> good = buildContainer(cfg, path);

    for (size_t pos = 0; pos < good.size(); ++pos) {
        std::vector<uint8_t> mutated = good;
        mutated[pos] ^= 0xFF;
        writeFileBytes(path, mutated);
        MsqModelFile out;
        EXPECT_FALSE(loadModel(path, out).ok()) << "byte " << pos;
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace msq
