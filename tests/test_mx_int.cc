/**
 * @file
 * Unit tests for MX-INT group quantization: power-of-two scale
 * selection, code range, reconstruction error bounds, and the paper's
 * negative-Isf observation on sub-unit weight distributions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "mx/mx_int.h"

namespace msq {
namespace {

TEST(MxInt, QMax)
{
    EXPECT_EQ(intQMax(2), 1);
    EXPECT_EQ(intQMax(4), 7);
    EXPECT_EQ(intQMax(8), 127);
}

TEST(MxInt, ScaleCoversMax)
{
    for (unsigned bits : {2u, 4u, 8u}) {
        for (double mx : {0.01, 0.06, 0.9, 1.0, 3.3, 100.0}) {
            std::vector<double> v = {mx, -mx / 2};
            const int e = mxIntScaleExp(v, bits);
            const double qmax = intQMax(bits);
            // 2^e * qmax must cover the max, and 2^(e-1) must not.
            EXPECT_GE(std::ldexp(qmax, e), mx);
            EXPECT_LT(std::ldexp(qmax, e - 1), mx);
        }
    }
}

TEST(MxInt, ZeroGroup)
{
    std::vector<double> v(8, 0.0);
    const MxIntGroup g = mxIntQuantize(v, 4);
    for (size_t i = 0; i < v.size(); ++i)
        EXPECT_DOUBLE_EQ(g.decode(i), 0.0);
}

TEST(MxInt, CodesWithinRange)
{
    Rng rng(77);
    std::vector<double> v(128);
    for (double &x : v)
        x = rng.gaussian(0, 0.02);
    for (unsigned bits : {2u, 4u, 8u}) {
        const MxIntGroup g = mxIntQuantize(v, bits);
        for (int32_t c : g.codes) {
            EXPECT_LE(c, intQMax(bits));
            EXPECT_GE(c, -intQMax(bits));
        }
    }
}

TEST(MxInt, ReconstructionErrorBound)
{
    Rng rng(42);
    std::vector<double> v(128);
    for (double &x : v)
        x = rng.gaussian(0, 0.02);
    const MxIntGroup g = mxIntQuantize(v, 8);
    // Error per element is at most half the quantization step 2^e.
    const double step = std::ldexp(1.0, g.scaleExp);
    for (size_t i = 0; i < v.size(); ++i)
        EXPECT_LE(std::fabs(g.decode(i) - v[i]), step / 2 + 1e-15);
}

TEST(MxInt, NegativeIsfForTypicalWeights)
{
    // Paper Section 4.2: the inlier scale factor is always a negative
    // power of two for FM weight distributions (|w| << 1).
    Rng rng(1);
    for (int trial = 0; trial < 20; ++trial) {
        std::vector<double> v(128);
        for (double &x : v)
            x = rng.gaussian(0, 0.05);
        EXPECT_LT(mxIntScaleExp(v, 2), 0);
        EXPECT_LT(mxIntScaleExp(v, 4), 0);
    }
}

TEST(MxInt, FixedScaleQuantizeSingleValues)
{
    // With scale exponent -2 (step 0.25) and 4 bits: qmax 7.
    EXPECT_EQ(mxIntQuantizeValue(0.26, 4, -2), 1);
    EXPECT_EQ(mxIntQuantizeValue(0.12, 4, -2), 0);
    EXPECT_EQ(mxIntQuantizeValue(-0.30, 4, -2), -1);
    EXPECT_EQ(mxIntQuantizeValue(10.0, 4, -2), 7);   // saturates
    EXPECT_EQ(mxIntQuantizeValue(-10.0, 4, -2), -7); // saturates
}

class MxIntWidthTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(MxIntWidthTest, ErrorShrinksWithPrecision)
{
    const unsigned bits = GetParam();
    Rng rng(bits);
    std::vector<double> v(256);
    for (double &x : v)
        x = rng.gaussian(0, 0.02);

    auto mse = [&](unsigned b) {
        const MxIntGroup g = mxIntQuantize(v, b);
        double acc = 0.0;
        for (size_t i = 0; i < v.size(); ++i) {
            const double d = g.decode(i) - v[i];
            acc += d * d;
        }
        return acc;
    };
    // One extra bit must not increase the error.
    EXPECT_LE(mse(bits + 1), mse(bits) + 1e-18);
}

INSTANTIATE_TEST_SUITE_P(Widths, MxIntWidthTest,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u));

} // namespace
} // namespace msq
