/**
 * @file
 * Property-based tests: invariants that must hold across randomized
 * configurations — determinism of the full pipeline, EBW monotonicity
 * in outlier rate, quantization idempotence, packed-layer validity
 * under shape sweeps, asymmetric-quantization bounds, and scale-change
 * behaviour of the MX formats.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "core/microscopiq.h"
#include "mx/mx_fp.h"
#include "mx/mx_int.h"
#include "quant/kv_cache.h"
#include "quant/quant_util.h"

namespace msq {
namespace {

Matrix
heavyTail(size_t k, size_t o, double rate, uint64_t seed)
{
    Rng rng(seed);
    Matrix w(k, o);
    for (size_t r = 0; r < k; ++r) {
        for (size_t c = 0; c < o; ++c) {
            double v = rng.gaussian(0.0, 0.02);
            if (rng.bernoulli(rate))
                v = rng.uniform(0.15, 0.4) * (rng.bernoulli(0.5) ? 1 : -1);
            w(r, c) = v;
        }
    }
    return w;
}

TEST(Properties, QuantizationIsDeterministic)
{
    const Matrix w = heavyTail(32, 128, 0.02, 7);
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    MicroScopiQQuantizer q1(cfg), q2(cfg);
    const PackedLayer a = q1.quantizePacked(w, Matrix());
    const PackedLayer b = q2.quantizePacked(w, Matrix());
    EXPECT_EQ(a.serialize(), b.serialize());
}

TEST(Properties, QuantizationIdempotent)
{
    // Re-quantizing already-quantized weights must be lossless: every
    // dequantized value is exactly representable.
    const Matrix w = heavyTail(32, 128, 0.02, 8);
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    MicroScopiQQuantizer q(cfg);
    const Matrix once = q.quantize(w, Matrix()).dequant;
    MicroScopiQQuantizer q2(cfg);
    const Matrix twice = q2.quantize(once, Matrix()).dequant;
    // Not bit-exact in general (outlier sets can shift at the 3-sigma
    // boundary), but the reconstruction error must be far below the
    // first pass's error.
    const double drift = twice.normalizedErrorTo(once);
    const double first_err = once.normalizedErrorTo(w);
    EXPECT_LT(drift, first_err * 0.5);
}

class OutlierRateSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(OutlierRateSweep, EbwMonotoneInOutlierRate)
{
    const double rate = GetParam();
    const Matrix lo = heavyTail(48, 256, rate, 11);
    const Matrix hi = heavyTail(48, 256, rate * 2.5, 11);
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    MicroScopiQQuantizer qa(cfg), qb(cfg);
    const double ebw_lo = qa.quantize(lo, Matrix()).ebw;
    const double ebw_hi = qb.quantize(hi, Matrix()).ebw;
    EXPECT_LE(ebw_lo, ebw_hi + 0.05);
    EXPECT_GE(ebw_lo, 2.0);
}

INSTANTIATE_TEST_SUITE_P(Rates, OutlierRateSweep,
                         ::testing::Values(0.005, 0.01, 0.02, 0.04));

class ShapeSweep
    : public ::testing::TestWithParam<std::pair<size_t, size_t>>
{
};

TEST_P(ShapeSweep, PackedLayerValidAcrossShapes)
{
    const auto [k, o] = GetParam();
    const Matrix w = heavyTail(k, o, 0.03, k * 131 + o);
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    MicroScopiQQuantizer q(cfg);
    const PackedLayer layer = q.quantizePacked(w, Matrix());

    // Round trip and shape invariants.
    const PackedLayer restored = PackedLayer::deserialize(
        layer.config(), layer.rows(), layer.cols(), layer.serialize());
    EXPECT_EQ(restored.rows(), k);
    EXPECT_EQ(restored.cols(), o);
    const Matrix a = layer.dequantAll();
    const Matrix b = restored.dequantAll();
    EXPECT_LT((a - b).frobeniusSq(), 1e-18);
    // All codes stay inside the element bit budget.
    for (size_t r = 0; r < k; ++r)
        for (size_t c = 0; c < o; ++c)
            EXPECT_LT(layer.code(r, c), 1u << cfg.inlierBits);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ShapeSweep,
    ::testing::Values(std::make_pair<size_t, size_t>(8, 8),
                      std::make_pair<size_t, size_t>(16, 24),
                      std::make_pair<size_t, size_t>(33, 100),
                      std::make_pair<size_t, size_t>(64, 384),
                      std::make_pair<size_t, size_t>(1, 128),
                      std::make_pair<size_t, size_t>(128, 8)));

TEST(Properties, AsymQuantBounds)
{
    // Asymmetric quantization stays inside [min, max] and is exact on
    // spans with at most 2^bits distinct values.
    Rng rng(5);
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<double> v(64);
        for (double &x : v)
            x = rng.gaussian(1.0, 3.0);
        const double lo = *std::min_element(v.begin(), v.end());
        const double hi = *std::max_element(v.begin(), v.end());
        std::vector<double> q = v;
        asymQuantSpan(q.data(), q.size(), 2);
        for (size_t i = 0; i < v.size(); ++i) {
            EXPECT_GE(q[i], lo - 1e-12);
            EXPECT_LE(q[i], hi + 1e-12);
            // Error bounded by half a step.
            EXPECT_LE(std::fabs(q[i] - v[i]), (hi - lo) / 3.0 / 2 + 1e-12);
        }
    }
    // Two-valued span at 1 bit: exact.
    std::vector<double> two = {3.0, -1.0, 3.0, -1.0};
    asymQuantSpan(two.data(), two.size(), 1);
    EXPECT_DOUBLE_EQ(two[0], 3.0);
    EXPECT_DOUBLE_EQ(two[1], -1.0);
}

TEST(Properties, AsymBeatsSymAt2BitGaussian)
{
    // The KIVI rationale: at 2 bits, asymmetric (4 levels) beats
    // symmetric (3 levels) on Gaussian data.
    Rng rng(6);
    double asym_err = 0.0, sym_err = 0.0;
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<double> v(128);
        for (double &x : v)
            x = rng.gaussian(0.0, 1.0);
        std::vector<double> a = v, s = v;
        asymQuantSpan(a.data(), a.size(), 2);
        symQuantSpan(s.data(), s.size(), 1);
        asym_err += spanMse(a.data(), v.data(), v.size());
        sym_err += spanMse(s.data(), v.data(), v.size());
    }
    EXPECT_LT(asym_err, sym_err);
}

TEST(Properties, MxScalingEquivariance)
{
    // Scaling a group by a power of two shifts the scale exponent and
    // leaves the codes untouched (exact equivariance of MX formats).
    Rng rng(7);
    std::vector<double> v(32);
    for (double &x : v)
        x = rng.gaussian(0.0, 0.05);
    const MxIntGroup base = mxIntQuantize(v, 4);
    std::vector<double> scaled(v.size());
    for (size_t i = 0; i < v.size(); ++i)
        scaled[i] = std::ldexp(v[i], 5);
    const MxIntGroup shifted = mxIntQuantize(scaled, 4);
    EXPECT_EQ(shifted.scaleExp, base.scaleExp + 5);
    EXPECT_EQ(shifted.codes, base.codes);

    const FpFormat fmt = FpFormat::e1m2();
    std::vector<double> f = {2.0, -1.0, 0.7, 3.1};
    const MxFpGroup g1 = mxFpQuantize(f, fmt);
    for (double &x : f)
        x = std::ldexp(x, 3);
    const MxFpGroup g2 = mxFpQuantize(f, fmt);
    EXPECT_EQ(g2.level1Exp, g1.level1Exp + 3);
    EXPECT_EQ(g2.mantissas, g1.mantissas);
    EXPECT_EQ(g2.sharedExpField, g1.sharedExpField);
}

TEST(Properties, DequantErrorBoundedByFormat)
{
    // Inliers: error <= half an inlier step. Outliers: relative error
    // bounded by the shared-muX grid (<= 1/2 ulp of the largest group
    // member plus the sharing loss, conservatively 50%).
    const Matrix w = heavyTail(32, 256, 0.02, 13);
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    MicroScopiQQuantizer q(cfg);
    const QuantResult res = q.quantize(w, Matrix());
    const PackedLayer &layer = q.packed();

    for (size_t r = 0; r < w.rows(); ++r) {
        for (size_t c = 0; c < w.cols(); ++c) {
            if (layer.kind(r, c) != SlotKind::Inlier)
                continue;
            const size_t mb = c / cfg.macroBlock;
            const double step = std::ldexp(1.0, layer.isf(r, mb));
            EXPECT_LE(std::fabs(res.dequant(r, c) - w(r, c)),
                      step / 2 + 1e-12)
                << "inlier (" << r << "," << c << ")";
        }
    }
}

} // namespace
} // namespace msq
