/**
 * @file
 * Paged KV storage units: the shared refcounted page arena
 * (quant/kv_arena.h), the paged KvPool rebased on it — a property grid
 * asserting incremental append/gather stays element-identical to the
 * per-element accessors across group-close boundaries, wide strides,
 * ragged channel counts, page sizes, and page recycling — the
 * snapshot/adopt sharing protocol, and the cross-request prefix cache
 * (quant/prefix_cache.h): LRU accounting, the token-vector collision
 * guard, and eviction safety for live adopters.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "quant/kv_arena.h"
#include "quant/kv_pool.h"
#include "quant/prefix_cache.h"

namespace msq {
namespace {

/** Deterministic token rows: key/value vectors for token `t`. */
void
fillToken(Rng &rng, size_t channels, std::vector<double> &key,
          std::vector<double> &value)
{
    key.resize(channels);
    value.resize(channels);
    for (size_t c = 0; c < channels; ++c) {
        key[c] = rng.gaussian() * 3.0;
        value[c] = rng.gaussian() * 0.5 + 1.0;
    }
}

/** Append `n` seeded tokens to every pool in the list identically. */
void
appendTokens(std::vector<KvPool *> pools, size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> k, v;
    for (size_t t = 0; t < n; ++t) {
        fillToken(rng, pools.front()->channels(), k, v);
        for (KvPool *pool : pools)
            pool->append(k.data(), v.data());
    }
}

/** Every element of two pools bit-identical (keys and values). */
void
expectPoolsIdentical(const KvPool &a, const KvPool &b)
{
    ASSERT_EQ(a.tokens(), b.tokens());
    ASSERT_EQ(a.quantizedTokens(), b.quantizedTokens());
    for (size_t c = 0; c < a.channels(); ++c)
        for (size_t t = 0; t < a.tokens(); ++t) {
            ASSERT_EQ(a.key(c, t), b.key(c, t))
                << "key ch " << c << " tok " << t;
            ASSERT_EQ(a.value(c, t), b.value(c, t))
                << "value ch " << c << " tok " << t;
        }
}

/** gather() at `stride` agrees element-for-element with key()/value(). */
void
expectGatherMatchesAccessors(const KvPool &pool, size_t stride)
{
    const size_t ld = stride == 0 ? pool.tokens() : stride;
    std::vector<double> keys(pool.channels() * ld, -7.0);
    std::vector<double> values(pool.channels() * ld, -7.0);
    pool.gather(keys.data(), values.data(), stride);
    for (size_t c = 0; c < pool.channels(); ++c)
        for (size_t t = 0; t < pool.tokens(); ++t) {
            ASSERT_EQ(keys[c * ld + t], pool.key(c, t))
                << "key ch " << c << " tok " << t << " stride " << stride;
            ASSERT_EQ(values[c * ld + t], pool.value(c, t))
                << "value ch " << c << " tok " << t << " stride " << stride;
        }
}

TEST(KvArena, AllocateRetainReleaseRecycle)
{
    KvArenaConfig cfg;
    cfg.pageBytes = 64;
    cfg.pagesPerSlab = 2;
    KvArena arena(cfg);
    EXPECT_EQ(arena.pageBytes(), 64u);
    EXPECT_EQ(arena.pagesInUse(), 0u);

    const KvArena::PageId a = arena.allocate();
    const KvArena::PageId b = arena.allocate();
    const KvArena::PageId c = arena.allocate();  // grows a second slab
    EXPECT_NE(a, b);
    EXPECT_NE(b, c);
    EXPECT_EQ(arena.pagesInUse(), 3u);
    EXPECT_EQ(arena.pagesReserved(), 4u);  // two slabs of two
    EXPECT_EQ(arena.refCount(a), 1u);

    arena.retain(a);
    EXPECT_EQ(arena.refCount(a), 2u);
    arena.release(a);
    EXPECT_EQ(arena.refCount(a), 1u);
    EXPECT_EQ(arena.pagesInUse(), 3u);  // still held once

    arena.release(a);
    EXPECT_EQ(arena.refCount(a), 0u);
    EXPECT_EQ(arena.pagesInUse(), 2u);
    EXPECT_EQ(arena.peakPagesInUse(), 3u);

    // The freed page recycles before any slab growth.
    const KvArena::PageId d = arena.allocate();
    EXPECT_EQ(d, a);
    EXPECT_EQ(arena.pagesReserved(), 4u);
    arena.release(b);
    arena.release(c);
    arena.release(d);
    EXPECT_EQ(arena.pagesInUse(), 0u);
}

TEST(KvArena, PagesComeBackZeroFilledAndStable)
{
    KvArenaConfig cfg;
    cfg.pageBytes = 48;  // rounds up to 16-byte multiple
    cfg.pagesPerSlab = 3;
    KvArena arena(cfg);
    ASSERT_EQ(arena.pageBytes(), 48u);

    // Dirty a page, free it, and take it back: it must return zeroed.
    const KvArena::PageId a = arena.allocate();
    std::memset(arena.page(a), 0xAB, arena.pageBytes());
    arena.release(a);
    const KvArena::PageId b = arena.allocate();
    ASSERT_EQ(a, b);
    for (size_t i = 0; i < arena.pageBytes(); ++i)
        ASSERT_EQ(arena.page(b)[i], 0u) << "byte " << i;

    // Payload pointers are 16-byte aligned, distinct, and stable
    // across slab growth.
    std::vector<KvArena::PageId> ids{b};
    std::vector<uint8_t *> ptrs{arena.page(b)};
    for (size_t i = 0; i < 10; ++i) {
        ids.push_back(arena.allocate());
        ptrs.push_back(arena.page(ids.back()));
        EXPECT_EQ(reinterpret_cast<uintptr_t>(ptrs.back()) % 16, 0u);
        arena.page(ids.back())[0] = static_cast<uint8_t>(i + 1);
    }
    for (size_t i = 0; i < ids.size(); ++i) {
        EXPECT_EQ(arena.page(ids[i]), ptrs[i]);
        for (size_t j = i + 1; j < ids.size(); ++j)
            EXPECT_NE(ptrs[i], ptrs[j]);
    }
    EXPECT_EQ(arena.page(ids[3])[0], 3u);  // writes landed where expected
    for (KvArena::PageId id : ids)
        arena.release(id);
}

TEST(KvArena, CapacityIsAdvisoryAndAccounted)
{
    KvArenaConfig cfg;
    cfg.pageBytes = 32;
    cfg.capacityBytes = 100;  // rounds down to 3 pages
    KvArena arena(cfg);
    EXPECT_EQ(arena.capacityPages(), 3u);
    EXPECT_EQ(arena.capacityBytes(), 96u);
    EXPECT_EQ(arena.freePages(), 3u);

    std::vector<KvArena::PageId> held;
    for (size_t i = 0; i < 5; ++i)
        held.push_back(arena.allocate());  // over budget: still succeeds
    EXPECT_EQ(arena.pagesInUse(), 5u);
    EXPECT_EQ(arena.freePages(), 0u);
    EXPECT_EQ(arena.bytesInUse(), 5u * 32u);
    EXPECT_EQ(arena.peakBytesInUse(), 5u * 32u);
    for (KvArena::PageId id : held)
        arena.release(id);

    KvArena unbounded;
    EXPECT_EQ(unbounded.capacityPages(), 0u);
    EXPECT_EQ(unbounded.freePages(), SIZE_MAX);
}

TEST(KvArenaDeathTest, HoldProtocolViolations)
{
    KvArena arena;
    const KvArena::PageId id = arena.allocate();
    arena.release(id);
    EXPECT_DEATH(arena.release(id), "not held");
    EXPECT_DEATH(arena.retain(id), "not held");
    EXPECT_DEATH(arena.page(id), "not held");
    EXPECT_DEATH(arena.release(KvArena::kNoPage), "not held");
}

TEST(KvPoolPaged, PropertyGridAcrossShapesAndPageSizes)
{
    // The paged pool must read bit-identically whatever the page size:
    // sweep ragged/exact channel counts, residual windows (including
    // zero), token counts crossing several group closes, page sizes
    // from one-group-per-page upward, and wide gather strides — every
    // combination diffed element-for-element against a pool on a
    // private min-size arena fed the same appends.
    const size_t kChannels[] = {3, 6, 16};
    const size_t kResiduals[] = {0, 4, 9};
    const size_t kTokens[] = {1, 4, 11, 37};
    size_t combos = 0;
    for (const size_t channels : kChannels)
        for (const size_t residual : kResiduals) {
            const KvCacheConfig cfg{2, 4, residual};
            const size_t min_page = KvPool::minPageBytes(channels, cfg);
            const size_t kPages[] = {min_page, min_page * 3 + 16, 4096};
            for (const size_t page : kPages)
                for (const size_t tokens : kTokens) {
                    KvArenaConfig ac;
                    ac.pageBytes = page;
                    KvArena arena(ac);
                    KvPool paged(channels, cfg, &arena);
                    KvPool reference(channels, cfg);  // private arena
                    appendTokens({&paged, &reference}, tokens,
                                 31 * channels + 7 * residual + tokens);
                    expectPoolsIdentical(paged, reference);
                    expectGatherMatchesAccessors(paged, 0);
                    expectGatherMatchesAccessors(paged, tokens + 7);
                    EXPECT_EQ(paged.packedBytes(), reference.packedBytes());
                    EXPECT_EQ(paged.fpBytes(), reference.fpBytes());
                    // Page accounting: everything the pool holds came
                    // from its arena, within the conservative admission
                    // estimate.
                    EXPECT_EQ(arena.pagesInUse(), paged.pagesHeld());
                    EXPECT_EQ(paged.capacityBytes(),
                              paged.pagesHeld() * arena.pageBytes());
                    EXPECT_LE(paged.pagesHeld(),
                              KvPool::estimatePages(channels, cfg, tokens,
                                                    arena.pageBytes()));
                    ++combos;
                }
        }
    EXPECT_EQ(combos, 3u * 3u * 3u * 4u);
}

TEST(KvPoolPaged, FpRingReleasesAgedPages)
{
    // The residual tail is a ring over fp pages: as groups close, fully
    // aged front pages must return to the arena instead of accumulating
    // (the old monolithic tail memmoved instead — the O(window) bug).
    const KvCacheConfig cfg{2, 4, 4};
    const size_t channels = 6;
    KvArenaConfig ac;
    ac.pageBytes = KvPool::minPageBytes(channels, cfg);
    KvArena arena(ac);
    {
        KvPool pool(channels, cfg, &arena);
        appendTokens({&pool}, 200, 99);
        // Tail tokens never exceed residual + group; fp pages must stay
        // proportional to that window, not to the 200-token history.
        const size_t tpf =
            arena.pageBytes() / (2 * channels * sizeof(double));
        const size_t window = cfg.residual + cfg.groupSize;
        const size_t packed_pages =
            (pool.quantizedTokens() / cfg.groupSize +
             (arena.pageBytes() / KvPool::minPageBytes(channels, cfg)) -
             1) /
            (arena.pageBytes() / KvPool::minPageBytes(channels, cfg));
        EXPECT_LE(pool.pagesHeld() - packed_pages, window / tpf + 2);
        EXPECT_EQ(arena.pagesInUse(), pool.pagesHeld());
    }
    // Destroying the pool returns every page.
    EXPECT_EQ(arena.pagesInUse(), 0u);
    EXPECT_GT(arena.peakPagesInUse(), 0u);
}

TEST(KvPoolPaged, SnapshotAdoptBitIdenticalAndShared)
{
    const KvCacheConfig cfg{2, 4, 4};
    const size_t channels = 6;
    KvArenaConfig ac;
    ac.pageBytes = KvPool::minPageBytes(channels, cfg) * 2;  // 2 groups/page
    KvArena arena(ac);

    KvPool donor(channels, cfg, &arena);
    appendTokens({&donor}, 26, 5);  // closes 5 groups: 2 full pages
    ASSERT_EQ(donor.quantizedTokens(), 20u);

    const KvPoolSnapshot snap = donor.snapshot();
    EXPECT_EQ(snap.tokens(), 26u);
    EXPECT_EQ(snap.arena(), &arena);
    EXPECT_GT(snap.bytes(), 0u);

    KvPool adopter(channels, cfg, &arena);
    adopter.adopt(snap);
    expectPoolsIdentical(donor, adopter);
    expectGatherMatchesAccessors(adopter, 0);

    // Full pages are shared three ways (donor, snapshot, adopter); the
    // partial page and fp tail are private copies, so donor and
    // adopter diverge freely when fed different suffixes...
    const size_t shared_before = arena.pagesInUse();
    appendTokens({&donor}, 10, 111);
    appendTokens({&adopter}, 10, 222);
    EXPECT_EQ(donor.tokens(), adopter.tokens());
    bool diverged = false;
    for (size_t c = 0; c < channels && !diverged; ++c)
        diverged = donor.key(c, 30) != adopter.key(c, 30);
    EXPECT_TRUE(diverged);

    // ...and identical suffixes keep them bit-identical even as more
    // groups close past the adoption point.
    KvPool twin(channels, cfg, &arena);
    twin.adopt(snap);
    appendTokens({&twin}, 10, 111);
    expectPoolsIdentical(donor, twin);
    EXPECT_GE(arena.pagesInUse(), shared_before);
}

TEST(KvPoolPaged, AdopterSurvivesDonorAndSnapshotDestruction)
{
    const KvCacheConfig cfg{2, 4, 0};
    const size_t channels = 3;
    KvArenaConfig ac;
    ac.pageBytes = KvPool::minPageBytes(channels, cfg);  // 1 group/page
    KvArena arena(ac);

    auto donor = std::make_unique<KvPool>(channels, cfg, &arena);
    appendTokens({donor.get()}, 17, 40);
    KvPool reference(channels, cfg);
    appendTokens({&reference}, 17, 40);

    KvPool adopter(channels, cfg, &arena);
    {
        const KvPoolSnapshot snap = donor->snapshot();
        adopter.adopt(snap);
        donor.reset();  // donor gone: shared pages live via snap+adopter
        expectPoolsIdentical(adopter, reference);
    }
    // Snapshot gone too: the adopter holds its own page references.
    expectPoolsIdentical(adopter, reference);
    appendTokens({&adopter}, 9, 41);
    appendTokens({&reference}, 9, 41);
    expectPoolsIdentical(adopter, reference);
}

TEST(KvPoolPagedDeathTest, ContractViolations)
{
    const KvCacheConfig cfg{2, 4, 4};
    KvArenaConfig tiny;
    tiny.pageBytes = 16;
    KvArena arena(tiny);
    EXPECT_DEATH(KvPool(6, cfg, &arena), "page too small");

    KvArenaConfig ok;
    ok.pageBytes = KvPool::minPageBytes(6, cfg);
    KvArena arena2(ok);
    KvPool pool(6, cfg, &arena2);
    appendTokens({&pool}, 3, 1);
    KvPool other(6, cfg, &arena2);
    const KvPoolSnapshot snap = pool.snapshot();
    EXPECT_DEATH(pool.adopt(snap), "fresh pool");
    KvPool wrongArena(6, cfg);  // private arena
    EXPECT_DEATH(wrongArena.adopt(snap), "across arenas");
    KvPool wrongShape(3, {2, 4, 4}, &arena2);
    EXPECT_DEATH(wrongShape.adopt(snap), "shape mismatch");
}

TEST(PrefixCache, HashKeysOnTokensAndDomain)
{
    const std::vector<uint32_t> a{1, 2, 3, 4};
    const std::vector<uint32_t> b{1, 2, 3, 5};
    const uint64_t ka = PrefixCache::hashTokens(a.data(), a.size(), 7);
    EXPECT_EQ(ka, PrefixCache::hashTokens(a.data(), a.size(), 7));
    EXPECT_NE(ka, PrefixCache::hashTokens(b.data(), b.size(), 7));
    EXPECT_NE(ka, PrefixCache::hashTokens(a.data(), a.size(), 8));
    EXPECT_NE(ka, PrefixCache::hashTokens(a.data(), 3, 7));
}

/** An entry with a KV payload of `tokens` appended tokens. */
PrefixCache::EntryPtr
insertEntry(PrefixCache &cache, KvArena &arena,
            const std::vector<uint32_t> &prefix, size_t tokens,
            uint64_t seed)
{
    const KvCacheConfig cfg{2, 4, 4};
    KvPool pool(3, cfg, &arena);
    appendTokens({&pool}, tokens, seed);
    std::vector<KvPoolSnapshot> blocks;
    blocks.push_back(pool.snapshot());
    const uint64_t key =
        PrefixCache::hashTokens(prefix.data(), prefix.size(), 1);
    return cache.insert(key, prefix, std::move(blocks));
}

TEST(PrefixCache, LookupHitMissAndCollisionGuard)
{
    KvArena arena;
    PrefixCache cache;
    const std::vector<uint32_t> p1{4, 5, 6, 7, 8};
    const std::vector<uint32_t> p2{9, 9, 9};
    const uint64_t k1 = PrefixCache::hashTokens(p1.data(), p1.size(), 1);

    EXPECT_EQ(cache.lookup(k1, p1), nullptr);
    insertEntry(cache, arena, p1, 12, 3);
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_GT(cache.bytes(), 0u);

    const PrefixCache::EntryPtr hit = cache.lookup(k1, p1);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->tokens, p1);
    ASSERT_EQ(hit->blocks.size(), 1u);
    EXPECT_EQ(hit->blocks[0].tokens(), 12u);
    EXPECT_EQ(hit->blocks[0].arena(), &arena);

    // A key collision with different tokens is a miss, never a wrong
    // entry: the stored token vector is the ground truth.
    EXPECT_EQ(cache.lookup(k1, p2), nullptr);

    // Re-inserting the same prefix returns the existing entry.
    const PrefixCache::EntryPtr again = insertEntry(cache, arena, p1, 12, 3);
    EXPECT_EQ(again.get(), hit.get());
    EXPECT_EQ(cache.entries(), 1u);

    const PrefixCacheStats st = cache.stats();
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.misses, 2u);
    EXPECT_EQ(st.inserts, 1u);
    EXPECT_EQ(st.evictions, 0u);
}

TEST(PrefixCache, LruEvictionUnderByteBudget)
{
    KvArena arena;
    const std::vector<uint32_t> p1{1, 1, 1, 1};
    const std::vector<uint32_t> p2{2, 2, 2, 2};
    const std::vector<uint32_t> p3{3, 3, 3, 3};
    PrefixCache probe;
    insertEntry(probe, arena, p1, 10, 1);
    const size_t entry_bytes = probe.bytes();

    PrefixCache cache(entry_bytes * 2 + entry_bytes / 2);  // fits two
    insertEntry(cache, arena, p1, 10, 1);
    insertEntry(cache, arena, p2, 10, 2);
    EXPECT_EQ(cache.entries(), 2u);
    // Touch p1 so p2 is the LRU victim when p3 arrives.
    const uint64_t k1 = PrefixCache::hashTokens(p1.data(), p1.size(), 1);
    ASSERT_NE(cache.lookup(k1, p1), nullptr);
    insertEntry(cache, arena, p3, 10, 3);
    EXPECT_EQ(cache.entries(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_NE(cache.lookup(k1, p1), nullptr);
    const uint64_t k2 = PrefixCache::hashTokens(p2.data(), p2.size(), 1);
    EXPECT_EQ(cache.lookup(k2, p2), nullptr);  // evicted

    // Explicit shedding (the decode scheduler's pressure valve).
    EXPECT_TRUE(cache.evictLru());
    EXPECT_TRUE(cache.evictLru());
    EXPECT_FALSE(cache.evictLru());
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.bytes(), 0u);
}

TEST(PrefixCache, EvictionKeepsAdoptersValid)
{
    const KvCacheConfig cfg{2, 4, 4};
    KvArena arena;
    PrefixCache cache;
    const std::vector<uint32_t> prefix{6, 5, 4, 3, 2, 1};
    insertEntry(cache, arena, prefix, 14, 77);
    const uint64_t key =
        PrefixCache::hashTokens(prefix.data(), prefix.size(), 1);
    const PrefixCache::EntryPtr entry = cache.lookup(key, prefix);
    ASSERT_NE(entry, nullptr);

    cache.clear();  // evict everything while `entry` is still held
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.lookup(key, prefix), nullptr);

    // Adoption from the held entry still works: the shared_ptr keeps
    // the snapshots (and their page references) alive past eviction.
    KvPool adopter(3, cfg, &arena);
    adopter.adopt(entry->blocks[0]);
    KvPool reference(3, cfg);
    appendTokens({&reference}, 14, 77);
    expectPoolsIdentical(adopter, reference);
}

} // namespace
} // namespace msq
