/**
 * @file
 * Unit tests for the two-level MX-FP outlier format: level-1 scale
 * selection, shared-microexponent extraction, hidden-bit grid rounding,
 * MXScale byte packing, and error behaviour as group diversity grows
 * (the mechanism behind the paper's Fig. 14 sweep).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "mx/mx_fp.h"

namespace msq {
namespace {

TEST(MxFp, Level1CoversMax)
{
    const FpFormat fmt = FpFormat::e1m2();
    for (double mx : {0.1, 1.0, 3.5, 7.0, 123.0}) {
        std::vector<double> v = {mx, -mx / 3};
        const int e = mxFpLevel1Exp(v, fmt);
        EXPECT_GE(std::ldexp(fmt.maxValue(), e), mx);
        EXPECT_LT(std::ldexp(fmt.maxValue(), e - 1), mx);
    }
}

TEST(MxFp, SingleValueNearExact)
{
    const FpFormat fmt = FpFormat::e1m2();
    // A single outlier: level-1 scaling maps it near the format max, so
    // relative error is bounded by half a mantissa ulp (2^-3 for m2).
    for (double v : {5.0, -17.0, 0.3, 100.0}) {
        const MxFpGroup g = mxFpQuantize({v}, fmt);
        EXPECT_EQ(g.size(), 1u);
        EXPECT_NEAR(g.decode(0), v, std::fabs(v) * 0.15)
            << "value " << v;
    }
}

TEST(MxFp, SharedExponentIsMax)
{
    const FpFormat fmt = FpFormat::e1m2();
    // 3.4 encodes with exponent field 1; 1.2 with field 0. Sharing must
    // pick the max field (1) so the largest value stays representable.
    const MxFpGroup g = mxFpQuantize({3.4, 1.2}, fmt);
    EXPECT_EQ(g.sharedExpField, 1);
    EXPECT_NEAR(g.decode(0), 3.4, 0.26);
}

TEST(MxFp, SmallElementRoundsOntoHiddenBitGrid)
{
    const FpFormat fmt = FpFormat::e1m2();
    // With a large and a tiny outlier in one group, the tiny one cannot
    // go below 1.0 * 2^(muX - bias + level1): the hidden bit is implied.
    const MxFpGroup g = mxFpQuantize({3.5, 0.1}, fmt);
    const double floor_mag = std::ldexp(1.0, g.effectiveExp());
    EXPECT_DOUBLE_EQ(std::fabs(g.decode(1)), floor_mag);
}

TEST(MxFp, SignsPreserved)
{
    const FpFormat fmt = FpFormat::e1m2();
    const MxFpGroup g = mxFpQuantize({2.0, -2.0, 3.0, -1.0}, fmt);
    EXPECT_GT(g.decode(0), 0.0);
    EXPECT_LT(g.decode(1), 0.0);
    EXPECT_GT(g.decode(2), 0.0);
    EXPECT_LT(g.decode(3), 0.0);
}

TEST(MxFp, MxScaleByteRoundTrip)
{
    for (const FpFormat fmt : {FpFormat::e1m2(), FpFormat::e3m4()}) {
        Rng rng(fmt.ebits);
        for (int trial = 0; trial < 50; ++trial) {
            std::vector<double> v(4);
            for (double &x : v)
                x = rng.gaussian(0, 2.0) + (rng.bernoulli(0.5) ? 4 : -4);
            MxFpGroup g = mxFpQuantize(v, fmt);
            const uint8_t byte = packMxScale(g);
            int level1 = 0, mux = 0;
            unpackMxScale(byte, fmt, level1, mux);
            EXPECT_EQ(level1, g.level1Exp);
            EXPECT_EQ(mux, g.sharedExpField);
        }
    }
}

TEST(MxFp, MuXFieldWidths)
{
    EXPECT_EQ(muXFieldBits(FpFormat::e1m2()), 1u);
    EXPECT_EQ(muXFieldBits(FpFormat::e3m4()), 3u);
}

TEST(MxFp, UnsharedBeatsSharedOnDiverseGroups)
{
    // Sharing the exponent across a diverse group loses precision for
    // the small elements; per-element exponents (unshared) must do at
    // least as well. This is the Fig. 14 trade-off at the format level.
    const FpFormat fmt = FpFormat::e1m2();
    Rng rng(99);
    double shared_err = 0.0, unshared_err = 0.0;
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<double> v(8);
        for (double &x : v)
            x = rng.uniform(0.5, 8.0) * (rng.bernoulli(0.5) ? 1 : -1);
        const MxFpGroup g = mxFpQuantize(v, fmt);
        const std::vector<double> u = mxFpQuantizeUnshared(v, fmt);
        for (size_t i = 0; i < v.size(); ++i) {
            shared_err += (g.decode(i) - v[i]) * (g.decode(i) - v[i]);
            unshared_err += (u[i] - v[i]) * (u[i] - v[i]);
        }
    }
    EXPECT_LE(unshared_err, shared_err);
}

TEST(MxFp, TighterGroupsQuantizeBetter)
{
    // Quantizing sub-groups of 4 separately must not be worse than one
    // shared group of 32 (finer muX sharing -> lower error). Mirrors the
    // micro-block-size ablation.
    const FpFormat fmt = FpFormat::e1m2();
    Rng rng(1234);
    double coarse = 0.0, fine = 0.0;
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<double> v(32);
        for (double &x : v)
            x = rng.uniform(0.3, 12.0) * (rng.bernoulli(0.5) ? 1 : -1);
        const MxFpGroup g = mxFpQuantize(v, fmt);
        for (size_t i = 0; i < v.size(); ++i)
            coarse += (g.decode(i) - v[i]) * (g.decode(i) - v[i]);
        for (size_t b = 0; b < 32; b += 4) {
            std::vector<double> sub(v.begin() + b, v.begin() + b + 4);
            const MxFpGroup gs = mxFpQuantize(sub, fmt);
            for (size_t i = 0; i < 4; ++i)
                fine += (gs.decode(i) - sub[i]) * (gs.decode(i) - sub[i]);
        }
    }
    EXPECT_LE(fine, coarse);
}

TEST(MxFp, ForcedLevel1ReRoundsMantissas)
{
    const FpFormat fmt = FpFormat::e1m2();
    const std::vector<double> v = {3.0, 1.5};
    const MxFpGroup natural = mxFpQuantize(v, fmt);
    const MxFpGroup forced =
        mxFpQuantizeWithLevel1(v, fmt, natural.level1Exp + 1);
    // With a coarser level-1 scale the decode must still approximate the
    // inputs (the grid shifted but rounding adapted).
    EXPECT_NEAR(forced.decode(0), 3.0, 1.1);
    EXPECT_EQ(forced.level1Exp, natural.level1Exp + 1);
}

TEST(MxFp, EmptyGroup)
{
    const MxFpGroup g = mxFpQuantize({}, FpFormat::e1m2());
    EXPECT_EQ(g.size(), 0u);
    EXPECT_EQ(g.level1Exp, 0);
}

} // namespace
} // namespace msq
