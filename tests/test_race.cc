/**
 * @file
 * Concurrency stress suite (`race` label): hammers the real shared
 * paths — the packed-model and exec-plan caches, concurrent engines on
 * one shared deployment, DecodeEngine admit/retire churn, nested and
 * concurrent `parallelFor`, lazy `MsqReader` reads, and the Hessian
 * factorization cache — from multiple application threads at once.
 *
 * Every test asserts byte-identical results regardless of which thread
 * populates a cache or wins a racing build, so the suite guards the
 * determinism contract in the plain build too (it runs in the default
 * suite at these low iteration counts). CI additionally runs it, and
 * everything else, under `-DMSQ_SANITIZE=thread`, where the same tests
 * become TSan race detectors.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <thread>
#include <tuple>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "core/microscopiq.h"
#include "io/msq_file.h"
#include "model/model_zoo.h"
#include "quant/hessian.h"
#include "serve/decode.h"
#include "serve/engine.h"
#include "serve/weight_cache.h"

namespace msq {
namespace {

/** Application threads hammering each shared structure. Modest on
 *  purpose: the suite must stay inner-loop fast; the TSan CI tier
 *  turns these same interleavings into race detectors. */
constexpr size_t kThreads = 4;
constexpr size_t kRounds = 3;

ModelProfile
raceModel()
{
    ModelProfile p;
    p.name = "tiny-race-test";
    p.kind = ModelKind::Llm;
    p.layers = {{"proj_a", 64, 96}, {"proj_b", 96, 64}};
    p.weights = {0.02, 8.0, 0.02, 0.001, 6.0, 14.0};
    p.acts = {1.0, 0.02, 8.0};
    p.fpMetric = 6.0;
    p.seed = 42;
    return p;
}

MsqConfig
raceConfig()
{
    MsqConfig cfg;
    cfg.hessianCompensation = false; // keep racing rebuilds fast
    return cfg;
}

/** Run `fn(t)` on kThreads threads and join. */
void
onThreads(const std::function<void(size_t)> &fn)
{
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (size_t t = 0; t < kThreads; ++t)
        threads.emplace_back([&fn, t] { fn(t); });
    for (std::thread &th : threads)
        th.join();
}

TEST(RaceWeightCache, ConcurrentDeploymentsAgreeByteForByte)
{
    const ModelProfile model = raceModel();
    const MsqConfig cfg = raceConfig();
    const std::string dir = ::testing::TempDir() + "msq_race_cache";
    std::ignore = std::system(("mkdir -p " + dir).c_str());
    std::ignore = std::system(("rm -f " + dir + "/*.msq").c_str());

    // Single-threaded reference bytes.
    clearPackedModelCache();
    const PackedModelPtr ref = getPackedModel(model, cfg, 32);
    std::vector<std::vector<uint8_t>> want;
    for (const PackedLayer &layer : ref->layers)
        want.push_back(layer.serialize());

    for (size_t round = 0; round < kRounds; ++round) {
        // Rounds alternate between a racing cold quantize, a racing
        // disk load (the first round leaves a container behind), and a
        // racing memory hit — one cache dir throughout.
        clearPackedModelCache();
        std::vector<PackedModelPtr> got(kThreads);
        onThreads([&](size_t t) {
            got[t] = getPackedModel(model, cfg, 32, dir);
        });
        for (size_t t = 0; t < kThreads; ++t) {
            ASSERT_EQ(got[t]->layers.size(), want.size());
            for (size_t li = 0; li < want.size(); ++li)
                EXPECT_EQ(got[t]->layers[li].serialize(), want[li])
                    << "round " << round << " thread " << t << " layer "
                    << li;
        }
        // Whoever won the race, exactly one deployment is cached and
        // every caller holds it.
        EXPECT_EQ(packedModelCacheSize(), 1u);
        for (size_t t = 1; t < kThreads; ++t)
            EXPECT_EQ(got[t].get(), got[0].get());
    }
    clearPackedModelCache();
    std::ignore = std::system(("rm -rf " + dir).c_str());
}

TEST(RaceWeightCache, ConcurrentExecPlanLookupsUnderEviction)
{
    const ModelProfile model = raceModel();
    const MsqConfig cfg = raceConfig();
    clearPackedModelCache();
    const PackedModelPtr packed = getPackedModel(model, cfg, 32);

    std::vector<size_t> wantTerms;
    for (const PackedExecPlanPtr &plan : packed->plans)
        wantTerms.push_back(plan->termCount());

    // Capacity 1 forces every lookup round through insert+evict churn.
    setExecPlanCacheCapacity(1);
    for (size_t round = 0; round < kRounds; ++round) {
        onThreads([&](size_t t) {
            for (size_t rep = 0; rep < 4; ++rep) {
                // Threads walk the layers in different orders so
                // lookups, inserts, and evictions interleave.
                for (size_t i = 0; i < packed->layers.size(); ++i) {
                    const size_t li =
                        (t + rep + i) % packed->layers.size();
                    const PackedExecPlanPtr plan =
                        getExecPlan(packed->layers[li]);
                    EXPECT_EQ(plan->termCount(), wantTerms[li]);
                }
            }
        });
        EXPECT_LE(execPlanCacheSize(), 1u);
    }
    setExecPlanCacheCapacity(64);
    clearPackedModelCache();
}

TEST(RaceServeEngine, ConcurrentEnginesOnOneSharedDeployment)
{
    const ModelProfile model = raceModel();
    const MsqConfig cfg = raceConfig();
    ServeConfig scfg;
    scfg.maxBatchRequests = 4;
    scfg.tileTokens = 2;

    // Reference request outputs, computed alone.
    clearPackedModelCache();
    std::vector<double> want;
    {
        ServeEngine engine(model, cfg, scfg);
        for (uint64_t r = 0; r < 8; ++r)
            engine.submit(3 + r % 4, 700 + r);
        for (const RequestRecord &rec : engine.drain().requests)
            want.push_back(rec.outputCheck);
    }

    // kThreads engines race: deployment fetch, plan decode, and every
    // drain()'s parallelFor jobs all overlap on the shared PackedModel.
    clearPackedModelCache();
    std::vector<std::vector<double>> got(kThreads);
    onThreads([&](size_t t) {
        ServeEngine engine(model, cfg, scfg);
        for (uint64_t r = 0; r < 8; ++r)
            engine.submit(3 + r % 4, 700 + r);
        for (const RequestRecord &rec : engine.drain().requests)
            got[t].push_back(rec.outputCheck);
    });
    for (size_t t = 0; t < kThreads; ++t) {
        ASSERT_EQ(got[t].size(), want.size()) << "thread " << t;
        for (size_t i = 0; i < want.size(); ++i)
            EXPECT_EQ(got[t][i], want[i])
                << "thread " << t << " request " << i;
    }
    clearPackedModelCache();
}

TEST(RaceDecodeEngine, AdmitRetireChurnUnderConcurrentEngines)
{
    const ModelProfile &model = modelByName("TinyLM-decode");
    const MsqConfig cfg = raceConfig();
    DecodeConfig dcfg;
    dcfg.maxBatchSeqs = 2;       // small slots => constant admit/retire
    dcfg.stepTokenBudget = 8;
    dcfg.prefillChunk = 3;
    dcfg.kv = {2, 4, 4};
    dcfg.vocab = 64;

    // Mixed-length workload: stragglers force slot churn.
    std::vector<std::vector<uint32_t>> prompts;
    std::vector<size_t> maxNew;
    for (size_t i = 0; i < 6; ++i) {
        Rng rng(4000 + i);
        std::vector<uint32_t> prompt(2 + i % 4);
        for (uint32_t &tok : prompt)
            tok = static_cast<uint32_t>(rng.uniformInt(dcfg.vocab));
        prompts.push_back(std::move(prompt));
        maxNew.push_back(2 + (i * 5) % 7);
    }

    auto generate = [&]() {
        DecodeEngine engine(model, cfg, dcfg);
        std::vector<uint64_t> ids;
        for (size_t i = 0; i < prompts.size(); ++i)
            ids.push_back(engine.submit(prompts[i], maxNew[i]));
        const DecodeReport report = engine.run();
        std::vector<std::vector<uint32_t>> streams(prompts.size());
        for (const GenRecord &rec : report.requests)
            for (size_t i = 0; i < ids.size(); ++i)
                if (ids[i] == rec.id)
                    streams[i] = rec.tokens;
        return streams;
    };

    clearPackedModelCache();
    const std::vector<std::vector<uint32_t>> want = generate();

    clearPackedModelCache(); // racing deployment on the first pass
    std::vector<std::vector<std::vector<uint32_t>>> got(kThreads);
    onThreads([&](size_t t) { got[t] = generate(); });
    for (size_t t = 0; t < kThreads; ++t) {
        ASSERT_EQ(got[t].size(), want.size()) << "thread " << t;
        for (size_t i = 0; i < want.size(); ++i)
            EXPECT_EQ(got[t][i], want[i])
                << "thread " << t << " request " << i;
    }
    clearPackedModelCache();
}

TEST(RaceDecodeEngine, SharedArenaAndPrefixCacheAcrossEngines)
{
    // kThreads engines on one deployment share ONE paged KV arena and
    // ONE prefix cache, under a tight arena budget so admission
    // throttling, prefix eviction, page recycling, and cross-engine
    // adoption of shared prefix pages all race. Token streams must
    // match the single-engine reference exactly on every thread.
    const ModelProfile &model = modelByName("TinyLM-decode");
    const MsqConfig cfg = raceConfig();
    DecodeConfig dcfg;
    dcfg.maxBatchSeqs = 3;
    dcfg.stepTokenBudget = 8;
    dcfg.prefillChunk = 3;
    dcfg.kv = {2, 4, 4};
    dcfg.vocab = 64;
    dcfg.prefixMinTokens = 4;

    // Shared-prefix workload: one common 9-token prefix, unique tails.
    std::vector<std::vector<uint32_t>> prompts;
    std::vector<size_t> maxNew;
    Rng rng(8100);
    std::vector<uint32_t> prefix(9);
    for (uint32_t &tok : prefix)
        tok = static_cast<uint32_t>(rng.uniformInt(dcfg.vocab));
    for (size_t i = 0; i < 6; ++i) {
        std::vector<uint32_t> prompt = prefix;
        prompt.push_back(static_cast<uint32_t>((3 * i + 2) % dcfg.vocab));
        prompts.push_back(std::move(prompt));
        maxNew.push_back(3 + (i * 5) % 6);
    }

    auto generate = [&](KvArena *arena, PrefixCache *cache) {
        DecodeEngine engine(model, cfg, dcfg, arena, cache);
        std::vector<uint64_t> ids;
        for (size_t i = 0; i < prompts.size(); ++i)
            ids.push_back(engine.submit(prompts[i], maxNew[i]));
        const DecodeReport report = engine.run();
        std::vector<std::vector<uint32_t>> streams(prompts.size());
        for (const GenRecord &rec : report.requests)
            for (size_t i = 0; i < ids.size(); ++i)
                if (ids[i] == rec.id)
                    streams[i] = rec.tokens;
        return streams;
    };

    clearPackedModelCache();
    const std::vector<std::vector<uint32_t>> want =
        generate(nullptr, nullptr);

    for (size_t round = 0; round < kRounds; ++round) {
        KvArenaConfig ac;
        ac.pageBytes = 4096;
        // ~half of what kThreads engines would like: admission
        // throttles and sheds cached prefixes under pressure.
        ac.capacityBytes = 48 * 4096;
        KvArena arena(ac);
        PrefixCache cache;
        std::vector<std::vector<std::vector<uint32_t>>> got(kThreads);
        onThreads([&](size_t t) { got[t] = generate(&arena, &cache); });
        for (size_t t = 0; t < kThreads; ++t) {
            ASSERT_EQ(got[t].size(), want.size()) << "thread " << t;
            for (size_t i = 0; i < want.size(); ++i)
                EXPECT_EQ(got[t][i], want[i])
                    << "round " << round << " thread " << t << " request "
                    << i;
        }
        // Every page went back to the shared arena at engine teardown
        // except those pinned by live cache entries.
        const size_t cache_entries = cache.entries();
        cache.clear();
        EXPECT_EQ(arena.pagesInUse(), 0u) << "round " << round;
        EXPECT_GE(cache_entries, 1u);
    }
    clearPackedModelCache();
}

TEST(RaceParallelFor, ConcurrentTopLevelCallsStayExact)
{
    for (size_t round = 0; round < kRounds; ++round) {
        std::vector<std::vector<uint64_t>> out(
            kThreads, std::vector<uint64_t>(512, 0));
        onThreads([&](size_t t) {
            // Each application thread submits its own job; the pool
            // serializes whole jobs, each fanned over the workers.
            parallelFor(0, out[t].size(), [&, t](size_t i) {
                out[t][i] = (t << 16) ^ (i * 2654435761u);
            });
        });
        for (size_t t = 0; t < kThreads; ++t)
            for (size_t i = 0; i < out[t].size(); ++i)
                ASSERT_EQ(out[t][i], (t << 16) ^ (i * 2654435761u));
    }
}

TEST(RaceParallelFor, NestedCallsRunInlineUnderConcurrency)
{
    std::vector<std::vector<uint64_t>> out(
        kThreads, std::vector<uint64_t>(64 * 16, 0));
    onThreads([&](size_t t) {
        parallelFor(0, 64, [&, t](size_t i) {
            // Nested parallelFor must run inline on the worker, even
            // while other application threads are queueing jobs.
            parallelFor(0, 16, [&, t, i](size_t j) {
                out[t][i * 16 + j] = t * 1000003 + i * 131 + j;
            });
        });
    });
    for (size_t t = 0; t < kThreads; ++t)
        for (size_t i = 0; i < 64; ++i)
            for (size_t j = 0; j < 16; ++j)
                ASSERT_EQ(out[t][i * 16 + j], t * 1000003 + i * 131 + j);
}

TEST(RaceMsqReader, ConcurrentLazyLayerReads)
{
    // Build a small multi-layer container.
    MsqConfig cfg = raceConfig();
    MsqModelFile file;
    file.model = "race-reader";
    file.config = cfg;
    file.calibTokens = 0;
    Rng rng(99);
    for (size_t li = 0; li < 4; ++li) {
        Matrix w(32, 64);
        for (size_t r = 0; r < w.rows(); ++r)
            for (size_t c = 0; c < w.cols(); ++c)
                w(r, c) = rng.gaussian(0.0, 0.05);
        MicroScopiQQuantizer quantizer(cfg);
        file.layers.push_back(quantizer.quantizePacked(w, Matrix()));
        file.layerNames.push_back("layer" + std::to_string(li));
    }
    const std::string path =
        ::testing::TempDir() + "race_reader_container.msq";
    ASSERT_TRUE(saveModelAtomic(path, file).ok());

    std::vector<std::vector<uint8_t>> want;
    for (const PackedLayer &layer : file.layers)
        want.push_back(layer.serialize());

    // One reader, many threads, interleaved layer orders: the seek+read
    // pairs on the shared stream must serialize, the decodes must not
    // corrupt each other.
    MsqReader reader;
    ASSERT_TRUE(reader.open(path).ok());
    for (size_t round = 0; round < kRounds; ++round) {
        onThreads([&](size_t t) {
            for (size_t rep = 0; rep < 4; ++rep) {
                for (size_t i = 0; i < reader.layerCount(); ++i) {
                    const size_t li =
                        (t + rep + i) % reader.layerCount();
                    PackedLayer layer;
                    ASSERT_TRUE(reader.readLayer(li, layer).ok());
                    EXPECT_EQ(layer.serialize(), want[li])
                        << "thread " << t << " layer " << li;
                }
            }
        });
    }
    std::remove(path.c_str());
}

TEST(RaceHessianCache, ConcurrentFactorizationsAreBitIdentical)
{
    // A few distinct calibrations; every thread factorizes all of them
    // through the cache in a different order, racing misses included.
    std::vector<Matrix> calibs;
    for (size_t c = 0; c < 3; ++c) {
        Rng rng(7000 + c);
        Matrix calib(12, 24);
        for (size_t r = 0; r < calib.rows(); ++r)
            for (size_t t = 0; t < calib.cols(); ++t)
                calib(r, t) = rng.gaussian(0.0, 1.0);
        calibs.push_back(std::move(calib));
    }
    std::vector<Matrix> want;
    for (const Matrix &calib : calibs)
        want.push_back(hessianInverseCholesky(calib));

    for (size_t round = 0; round < kRounds; ++round) {
        clearHessianCache();
        onThreads([&](size_t t) {
            for (size_t rep = 0; rep < 3; ++rep) {
                for (size_t i = 0; i < calibs.size(); ++i) {
                    const size_t c = (t + rep + i) % calibs.size();
                    const Matrix got =
                        hessianInverseCholeskyCached(calibs[c]);
                    ASSERT_EQ(got.rows(), want[c].rows());
                    ASSERT_EQ(got.cols(), want[c].cols());
                    for (size_t r = 0; r < got.rows(); ++r)
                        for (size_t k = 0; k < got.cols(); ++k)
                            ASSERT_EQ(got(r, k), want[c](r, k));
                }
            }
        });
    }
    clearHessianCache();
}

} // namespace
} // namespace msq
