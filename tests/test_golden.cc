/**
 * @file
 * Golden-file regression suite: tests/golden/tiny-w2.msq is a committed
 * container of the TinyLM zoo profile quantized at the paper's default
 * W2 config with a 128-token calibration budget (regenerate with
 * `msq_pack TinyLM tests/golden/tiny-w2.msq`). The suite pins
 *
 *   - the container byte layout: loading + re-encoding must reproduce
 *     the committed file byte for byte,
 *   - the quantizer's determinism: re-quantizing TinyLM in-process must
 *     reproduce the committed packed streams and dequantized weights
 *     bit for bit,
 *
 * so ANY accidental change to the serialization format, the bitstream
 * conventions, the quantization pipeline, or the TinyLM profile fails
 * CI loudly instead of silently invalidating every container in every
 * deployment's cache directory. If the change is intentional, bump
 * kMsqFormatVersion (layout) or regenerate the fixture (quantizer) and
 * say so in the PR.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "io/msq_file.h"
#include "model/model_zoo.h"
#include "serve/weight_cache.h"

#ifndef MSQ_GOLDEN_DIR
#error "MSQ_GOLDEN_DIR must point at tests/golden"
#endif

namespace msq {
namespace {

const char *const kFixture = MSQ_GOLDEN_DIR "/tiny-w2.msq";
constexpr size_t kFixtureCalibTokens = 128;

std::vector<uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
}

TEST(Golden, FixtureLoadsWithTheExpectedIdentity)
{
    MsqModelFile file;
    const IoResult res = loadModel(kFixture, file);
    ASSERT_TRUE(res.ok()) << ioCodeName(res.code) << ": " << res.message;

    EXPECT_EQ(file.model, "TinyLM");
    EXPECT_TRUE(file.config == MsqConfig{})
        << "fixture was not packed at the default W2 config";
    EXPECT_EQ(file.calibTokens, kFixtureCalibTokens);
    ASSERT_EQ(file.layers.size(), 2u);
    EXPECT_EQ(file.layerNames[0], "proj_a");
    EXPECT_EQ(file.layerNames[1], "proj_b");
    EXPECT_EQ(file.layers[0].rows(), 64u);
    EXPECT_EQ(file.layers[0].cols(), 96u);
    EXPECT_EQ(file.layers[1].rows(), 96u);
    EXPECT_EQ(file.layers[1].cols(), 64u);
}

TEST(Golden, ReencodeIsByteIdentical)
{
    MsqModelFile file;
    ASSERT_TRUE(loadModel(kFixture, file).ok());

    const std::string copy = ::testing::TempDir() + "msq_golden_copy.msq";
    ASSERT_TRUE(saveModel(copy, file).ok());
    EXPECT_EQ(readFileBytes(copy), readFileBytes(kFixture))
        << "re-encoding the committed fixture changed its bytes: the "
           "container layout drifted (bump kMsqFormatVersion if this "
           "is intentional, and regenerate tests/golden/tiny-w2.msq)";
    std::remove(copy.c_str());
}

TEST(Golden, RequantizationReproducesTheFixtureBitForBit)
{
    MsqModelFile file;
    ASSERT_TRUE(loadModel(kFixture, file).ok());

    clearPackedModelCache();
    const PackedModelPtr fresh = getPackedModel(
        modelByName("TinyLM"), MsqConfig{}, kFixtureCalibTokens);
    ASSERT_EQ(fresh->layers.size(), file.layers.size());
    for (size_t li = 0; li < file.layers.size(); ++li) {
        // The packed streams are the weights; byte equality here means
        // the whole PTQ pipeline (weight generation, Hessian sweep,
        // outlier handling, packing) is unchanged...
        EXPECT_EQ(fresh->layers[li].serialize(),
                  file.layers[li].serialize())
            << "layer " << li
            << ": quantizing TinyLM no longer reproduces the committed "
               "fixture";
        // ...and dequantization of the loaded stream is bit-exact.
        const Matrix a = file.layers[li].dequantAll();
        const Matrix b = fresh->layers[li].dequantAll();
        ASSERT_EQ(a.size(), b.size());
        for (size_t i = 0; i < a.size(); ++i)
            ASSERT_EQ(a.data()[i], b.data()[i])
                << "layer " << li << " element " << i;
    }
    clearPackedModelCache();
}

TEST(Golden, LazyReaderServesOneLayerWithoutTheOther)
{
    MsqReader reader;
    ASSERT_TRUE(reader.open(kFixture).ok());
    ASSERT_EQ(reader.layerCount(), 2u);

    // Touch only the second layer; its stream must match the eager load.
    PackedLayer second;
    ASSERT_TRUE(reader.readLayer(1, second).ok());
    MsqModelFile file;
    ASSERT_TRUE(loadModel(kFixture, file).ok());
    EXPECT_EQ(second.serialize(), file.layers[1].serialize());
    EXPECT_EQ(reader.fileBytes(), readFileBytes(kFixture).size());
}

} // namespace
} // namespace msq
