/**
 * @file
 * Tests for the ReCoN network: the paper's Fig. 8 worked example
 * ((32>>1) + (0>>2) + 32 + 8 = 56), Pass/Swap/Merge semantics, sign
 * handling, routing conflict accounting, and topology arithmetic.
 */

#include <gtest/gtest.h>

#include "accel/recon.h"

namespace msq {
namespace {

TEST(Recon, Topology)
{
    ReconNetwork net(64, 2, 1);
    EXPECT_EQ(net.stages(), 7u);           // log2(64) + 1
    EXPECT_EQ(net.switchCount(), 64u * 7u);
}

TEST(Recon, Fig8WalkthroughExample)
{
    // Paper Fig. 8: outlier 1.10b (1.5) split into Upper {0,1} at
    // column 2 and Lower {0,0} at column 3 (relative positions taken
    // from the figure's 4-wide micro-block). iAct = 32, iAcc at the
    // outlier column = 8. Expected merged output: 32>>1 + 0>>2 + 32 + 8
    // = 56; the lower column forwards its iAcc.
    ReconNetwork net(4, 2, 1);
    std::vector<ReconInput> inputs(4);

    // Column 0: inlier +1 -> PE already accumulated 1*32 + 16 = 48.
    inputs[0].tag = ReconInput::Tag::InlierPsum;
    inputs[0].res = 32;
    inputs[0].iacc = 16;

    // Column 1: inlier -1 with iAcc 16 -> -16.
    inputs[1].tag = ReconInput::Tag::InlierPsum;
    inputs[1].res = -32;
    inputs[1].iacc = 16;

    // Column 2: outlier Upper half {s=0, m1=1}: product 1*32 = 32.
    inputs[2].tag = ReconInput::Tag::OutlierUpper;
    inputs[2].res = 32;
    inputs[2].iacc = 8;
    inputs[2].iact = 32;
    inputs[2].sign = 0;
    inputs[2].partner = 3;

    // Column 3: outlier Lower half {s=0, m0=0}: product 0; its own
    // iAcc is 10 (the pruned weight's column).
    inputs[3].tag = ReconInput::Tag::OutlierLower;
    inputs[3].res = 0;
    inputs[3].iacc = 10;
    inputs[3].iact = 32;
    inputs[3].partner = 2;

    const ReconTransit t = net.process(inputs);
    ASSERT_EQ(t.scaleBits, 2u);
    const double scale = 1.0 / 4.0;
    EXPECT_DOUBLE_EQ(t.scaledOut[0] * scale, 48.0);
    EXPECT_DOUBLE_EQ(t.scaledOut[1] * scale, -16.0);
    EXPECT_DOUBLE_EQ(t.scaledOut[2] * scale, 56.0);  // the paper's 56
    EXPECT_DOUBLE_EQ(t.scaledOut[3] * scale, 10.0);  // swapped iAcc
}

TEST(Recon, NegativeOutlierMerge)
{
    // Outlier -1.11b = -1.75: Upper {1,1}, Lower {1,1}; iAct 16.
    // Expected contribution: -(16/2 + 16/4 + 16) = -28.
    ReconNetwork net(2, 2, 1);
    std::vector<ReconInput> inputs(2);
    inputs[0].tag = ReconInput::Tag::OutlierUpper;
    inputs[0].res = -16;  // (-1) * 16
    inputs[0].iacc = 0;
    inputs[0].iact = 16;
    inputs[0].sign = 1;
    inputs[0].partner = 1;
    inputs[1].tag = ReconInput::Tag::OutlierLower;
    inputs[1].res = -16;
    inputs[1].iacc = 5;
    inputs[1].iact = 16;
    inputs[1].partner = 0;

    const ReconTransit t = net.process(inputs);
    EXPECT_DOUBLE_EQ(t.scaledOut[0] / 4.0, -28.0);
    EXPECT_DOUBLE_EQ(t.scaledOut[1] / 4.0, 5.0);
}

TEST(Recon, E3m4MergeShifts)
{
    // bb=4 outlier with mantissa 1010b: upper int {0,10b}=2, lower
    // {0,10b}=2; value = 1 + 2/4 + 2/16 = 1.625; iAct 16 -> 26.
    ReconNetwork net(2, 4, 2);
    std::vector<ReconInput> inputs(2);
    inputs[0].tag = ReconInput::Tag::OutlierUpper;
    inputs[0].res = 2 * 16;
    inputs[0].iact = 16;
    inputs[0].sign = 0;
    inputs[0].partner = 1;
    inputs[1].tag = ReconInput::Tag::OutlierLower;
    inputs[1].res = 2 * 16;
    inputs[1].iact = 16;
    inputs[1].partner = 0;

    const ReconTransit t = net.process(inputs);
    EXPECT_DOUBLE_EQ(t.scaledOut[0] / 16.0, 26.0);
}

TEST(Recon, MultipleMergesInOneTransit)
{
    // Two outliers in one 8-wide vector, distinct column pairs.
    ReconNetwork net(8, 2, 1);
    std::vector<ReconInput> inputs(8);
    for (auto &in : inputs) {
        in.tag = ReconInput::Tag::InlierPsum;
        in.res = 1;
        in.iacc = 0;
    }
    auto outlier = [&](size_t u, size_t l, int64_t up_res,
                       int64_t lo_res, int32_t iact) {
        inputs[u].tag = ReconInput::Tag::OutlierUpper;
        inputs[u].res = up_res;
        inputs[u].iact = iact;
        inputs[u].sign = 0;
        inputs[u].partner = static_cast<int>(l);
        inputs[l].tag = ReconInput::Tag::OutlierLower;
        inputs[l].res = lo_res;
        inputs[l].iact = iact;
        inputs[l].partner = static_cast<int>(u);
    };
    outlier(0, 4, 8, 8, 8);   // 1.11b * 8 = 14
    outlier(2, 6, 0, 8, 8);   // 1.01b * 8 = 10

    const ReconTransit t = net.process(inputs);
    EXPECT_DOUBLE_EQ(t.scaledOut[0] / 4.0, 14.0);
    EXPECT_DOUBLE_EQ(t.scaledOut[2] / 4.0, 10.0);
    EXPECT_DOUBLE_EQ(t.scaledOut[1] / 4.0, 1.0);  // untouched inlier
}

TEST(Recon, ConflictCountingDisjointPaths)
{
    // Moves with disjoint bit-fixing paths produce no conflicts.
    ReconNetwork net(8, 2, 1);
    std::vector<ReconInput> inputs(8);
    for (auto &in : inputs)
        in.tag = ReconInput::Tag::InlierPsum;
    inputs[0].tag = ReconInput::Tag::OutlierUpper;
    inputs[0].res = 0;
    inputs[0].partner = 1;
    inputs[0].iact = 1;
    inputs[1].tag = ReconInput::Tag::OutlierLower;
    inputs[1].partner = 0;
    inputs[1].iact = 1;
    inputs[6].tag = ReconInput::Tag::OutlierUpper;
    inputs[6].res = 0;
    inputs[6].partner = 7;
    inputs[6].iact = 1;
    inputs[7].tag = ReconInput::Tag::OutlierLower;
    inputs[7].partner = 6;
    inputs[7].iact = 1;

    const ReconTransit t = net.process(inputs);
    EXPECT_EQ(t.portConflicts, 0u);
}

TEST(Recon, NonPowerOfTwoWidthRoundsUp)
{
    ReconNetwork net(6, 2, 1);
    EXPECT_EQ(net.stages(), 4u);  // padded to 8 columns
}

} // namespace
} // namespace msq
