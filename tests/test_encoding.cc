/**
 * @file
 * Tests for the outlier Upper/Lower half encoding (paper Section 4.3):
 * exhaustive split/merge round trips for both element formats and the
 * sign-magnitude integer views the PE array computes with.
 */

#include <gtest/gtest.h>

#include "core/encoding.h"
#include "mx/fp_codec.h"

namespace msq {
namespace {

TEST(Encoding, HalfWidths)
{
    EXPECT_EQ(upperMantissaBits(2), 1u);
    EXPECT_EQ(lowerMantissaBits(2), 1u);
    EXPECT_EQ(upperMantissaBits(4), 2u);
    EXPECT_EQ(lowerMantissaBits(4), 2u);
    EXPECT_EQ(upperMantissaBits(3), 2u);
    EXPECT_EQ(lowerMantissaBits(3), 1u);
}

TEST(Encoding, PaperExampleSplit)
{
    // Fig. 8: outlier 01.10b (1.5 with hidden bit), sign 0, mantissa 10b.
    // Upper = {s, m1} = 01b, Lower = {s, m0} = 00b.
    const OutlierHalves halves = splitOutlier(0, 0b10, 2, 2);
    EXPECT_EQ(halves.upper, 0b01);
    EXPECT_EQ(halves.lower, 0b00);
    EXPECT_EQ(upperHalfInt(halves, 2, 2), 1);
    EXPECT_EQ(lowerHalfInt(halves, 2, 2), 0);
}

TEST(Encoding, NegativeSignPropagatesToBothHalves)
{
    const OutlierHalves halves = splitOutlier(1, 0b11, 2, 2);
    EXPECT_EQ(halves.upper, 0b11);
    EXPECT_EQ(halves.lower, 0b11);
    EXPECT_EQ(upperHalfInt(halves, 2, 2), -1);
    EXPECT_EQ(lowerHalfInt(halves, 2, 2), -1);
}

TEST(Encoding, RoundTripE1m2)
{
    for (uint8_t sign = 0; sign <= 1; ++sign) {
        for (uint16_t m = 0; m < 4; ++m) {
            const OutlierHalves halves = splitOutlier(sign, m, 2, 2);
            uint8_t s2 = 0;
            uint16_t m2 = 0;
            mergeOutlier(halves, 2, 2, s2, m2);
            EXPECT_EQ(s2, sign);
            EXPECT_EQ(m2, m);
        }
    }
}

TEST(Encoding, RoundTripE3m4)
{
    // bb = 4, mantissa 4 bits: halves carry sign + 2 bits each.
    for (uint8_t sign = 0; sign <= 1; ++sign) {
        for (uint16_t m = 0; m < 16; ++m) {
            const OutlierHalves halves = splitOutlier(sign, m, 4, 4);
            uint8_t s2 = 0;
            uint16_t m2 = 0;
            mergeOutlier(halves, 4, 4, s2, m2);
            EXPECT_EQ(s2, sign);
            EXPECT_EQ(m2, m);
            // Halves must fit the 4-bit element budget.
            EXPECT_LT(halves.upper, 16);
            EXPECT_LT(halves.lower, 16);
        }
    }
}

TEST(Encoding, HalfIntMagnitudes)
{
    // bb=4, mbits=4: mantissa 0b1101 -> hi=0b11 (3), lo=0b01 (1).
    const OutlierHalves halves = splitOutlier(0, 0b1101, 4, 4);
    EXPECT_EQ(upperHalfInt(halves, 4, 4), 3);
    EXPECT_EQ(lowerHalfInt(halves, 4, 4), 1);
    const OutlierHalves neg = splitOutlier(1, 0b1101, 4, 4);
    EXPECT_EQ(upperHalfInt(neg, 4, 4), -3);
    EXPECT_EQ(lowerHalfInt(neg, 4, 4), -1);
}

TEST(Encoding, ReconstructionIdentity)
{
    // The halves, interpreted as integers and recombined with the shift
    // amounts ReCoN uses, reproduce the mantissa value:
    // upper * 2^lo_bits + lower == mantissa (signed).
    for (uint8_t sign = 0; sign <= 1; ++sign) {
        for (uint16_t m = 0; m < 16; ++m) {
            const OutlierHalves halves = splitOutlier(sign, m, 4, 4);
            const int u = upperHalfInt(halves, 4, 4);
            const int l = lowerHalfInt(halves, 4, 4);
            const int expected = sign ? -static_cast<int>(m)
                                      : static_cast<int>(m);
            EXPECT_EQ(u * 4 + l, expected);
        }
    }
}

} // namespace
} // namespace msq
