/**
 * @file
 * The repository's strongest correctness evidence: the accelerator's
 * integer datapath (multi-precision PEs + ReCoN merges) must compute
 * exactly the same GEMM results as the reference dequantized-weight
 * computation, across random layers, both PE modes, and a sweep of
 * outlier rates.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/functional.h"
#include "common/rng.h"
#include "core/microscopiq.h"

namespace msq {
namespace {

Matrix
fmWeights(size_t k, size_t o, Rng &rng, double outlier_rate)
{
    Matrix w(k, o);
    for (size_t r = 0; r < k; ++r) {
        for (size_t c = 0; c < o; ++c) {
            double v = rng.gaussian(0.0, 0.02);
            if (rng.bernoulli(outlier_rate))
                v = rng.uniform(0.15, 0.5) * (rng.bernoulli(0.5) ? 1 : -1);
            w(r, c) = v;
        }
    }
    return w;
}

Matrix
randomActs(size_t k, size_t tokens, Rng &rng)
{
    Matrix x(k, tokens);
    for (size_t r = 0; r < k; ++r)
        for (size_t t = 0; t < tokens; ++t)
            x(r, t) = rng.gaussian(0.0, 1.0);
    return x;
}

void
expectGemmEquivalence(const MsqConfig &cfg, size_t k, size_t o,
                      size_t tokens, double outlier_rate, uint64_t seed)
{
    Rng rng(seed);
    const Matrix w = fmWeights(k, o, rng, outlier_rate);
    const Matrix x = randomActs(k, tokens, rng);

    MicroScopiQQuantizer quantizer(cfg);
    const PackedLayer layer = quantizer.quantizePacked(w, Matrix());

    const QuantizedActs acts(x, 8, 128);
    AccelConfig acfg;
    FunctionalAccelerator accel(acfg);
    const Matrix hw = accel.gemm(layer, acts);
    const Matrix ref = FunctionalAccelerator::referenceGemm(layer, acts);

    ASSERT_EQ(hw.rows(), ref.rows());
    ASSERT_EQ(hw.cols(), ref.cols());
    double max_ref = ref.maxAbs();
    const double tol = std::max(max_ref, 1.0) * 1e-9;
    for (size_t m = 0; m < hw.rows(); ++m) {
        for (size_t c = 0; c < hw.cols(); ++c) {
            ASSERT_NEAR(hw(m, c), ref(m, c), tol)
                << "mismatch at (" << m << "," << c << ") seed " << seed;
        }
    }
}

TEST(Functional, MatchesReferenceNoOutliers)
{
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    expectGemmEquivalence(cfg, 32, 64, 4, 0.0, 1);
}

TEST(Functional, MatchesReferenceWithOutliersBb2)
{
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    expectGemmEquivalence(cfg, 64, 128, 6, 0.03, 2);
}

TEST(Functional, MatchesReferenceWithOutliersBb4)
{
    MsqConfig cfg;
    cfg.inlierBits = 4;
    cfg.hessianCompensation = false;
    expectGemmEquivalence(cfg, 64, 128, 6, 0.03, 3);
}

TEST(Functional, MatchesReferenceHighOutlierRate)
{
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    expectGemmEquivalence(cfg, 48, 256, 3, 0.10, 4);
}

TEST(Functional, StatsCountTransitsAndMerges)
{
    Rng rng(5);
    const Matrix w = fmWeights(32, 64, rng, 0.05);
    const Matrix x = randomActs(32, 2, rng);

    MsqConfig cfg;
    cfg.hessianCompensation = false;
    MicroScopiQQuantizer quantizer(cfg);
    const PackedLayer layer = quantizer.quantizePacked(w, Matrix());

    const QuantizedActs acts(x, 8, 128);
    FunctionalAccelerator accel(AccelConfig{});
    accel.gemm(layer, acts);

    size_t outlier_ubs = 0, outliers = 0;
    for (size_t r = 0; r < layer.rows(); ++r) {
        for (size_t ub = 0; ub < layer.microPerRow(); ++ub) {
            if (layer.micro(r, ub).hasOutliers) {
                ++outlier_ubs;
                outliers += layer.micro(r, ub).perm.size();
            }
        }
    }
    EXPECT_EQ(accel.stats().reconTransits, outlier_ubs * acts.tokens());
    EXPECT_EQ(accel.stats().reconMerges, outliers * acts.tokens());
    EXPECT_GT(accel.stats().macs, 0u);
}

class FunctionalSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, double, size_t>>
{
};

TEST_P(FunctionalSweep, Equivalence)
{
    const auto [bits, rate, tokens] = GetParam();
    MsqConfig cfg;
    cfg.inlierBits = bits;
    cfg.hessianCompensation = false;
    expectGemmEquivalence(cfg, 40, 96, tokens, rate,
                          1000 + bits * 100 +
                              static_cast<uint64_t>(rate * 1000) + tokens);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FunctionalSweep,
    ::testing::Combine(::testing::Values(2u, 4u),
                       ::testing::Values(0.0, 0.02, 0.08),
                       ::testing::Values(1u, 3u)));

TEST(Functional, QuantizedActsRoundTrip)
{
    Rng rng(6);
    const Matrix x = randomActs(96, 5, rng);
    const QuantizedActs acts(x, 8, 32);
    const Matrix back = acts.dequantAll();
    // 8-bit quantization: relative error well under 1%.
    EXPECT_LT(back.normalizedErrorTo(x), 1e-4);
    // Codes stay in the signed 8-bit range.
    for (size_t t = 0; t < acts.tokens(); ++t)
        for (size_t c = 0; c < acts.channels(); ++c)
            EXPECT_LE(std::abs(static_cast<int>(acts.code(t, c))), 127);
}

} // namespace
} // namespace msq
