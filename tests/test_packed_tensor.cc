/**
 * @file
 * Tests for the packed hardware layout: serialize/deserialize round
 * trips, dequantization of hand-built layers, EBW accounting (Eq. 4
 * analytic versus bit-counted), and permutation-list validity.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/packed_tensor.h"
#include "mx/mx_fp.h"

namespace msq {
namespace {

/** Build a 1x8 layer with one hand-placed outlier, Fig. 8 style. */
PackedLayer
buildExampleLayer()
{
    MsqConfig cfg;
    cfg.inlierBits = 2;
    cfg.macroBlock = 8;
    cfg.microBlock = 8;
    PackedLayer layer(cfg, 1, 8);

    layer.setIsf(0, 0, -3);  // inlier scale 2^-3

    // Inliers at positions 0..5 except: outlier upper at 2, lower at 5.
    // Codes: two's complement 2-bit {-1, 0, 1}.
    layer.setCode(0, 0, 0b01);  // +1 -> 0.125
    layer.setCode(0, 1, 0b11);  // -1 -> -0.125
    layer.setCode(0, 3, 0b00);  // 0
    layer.setCode(0, 4, 0b01);  // +1
    layer.setCode(0, 6, 0b00);
    layer.setCode(0, 7, 0b11);

    // Outlier: sign 0, mantissa 0b10 (value 1.m = 1.10b = 1.5 x 2^osf).
    // MXScale: level1 = 0, muX field = 0 (e1m2 bias 0) -> osf = 0 - isf.
    MxFpGroup group;
    group.fmt = FpFormat::e1m2();
    group.level1Exp = 0;
    group.sharedExpField = 0;
    group.signs = {0};
    group.mantissas = {0b10};

    MicroBlockMeta &meta = layer.micro(0, 0);
    meta.hasOutliers = true;
    meta.mxScale = packMxScale(group);
    meta.perm.push_back(PermEntry{2, 5});

    const OutlierHalves halves = splitOutlier(0, 0b10, 2, 2);
    layer.setKind(0, 2, SlotKind::OutlierUpper);
    layer.setCode(0, 2, halves.upper);
    layer.setKind(0, 5, SlotKind::OutlierLower);
    layer.setCode(0, 5, halves.lower);
    return layer;
}

TEST(PackedLayer, DequantHandBuilt)
{
    const PackedLayer layer = buildExampleLayer();
    // Inliers: code * 2^-3.
    EXPECT_DOUBLE_EQ(layer.dequant(0, 0), 0.125);
    EXPECT_DOUBLE_EQ(layer.dequant(0, 1), -0.125);
    EXPECT_DOUBLE_EQ(layer.dequant(0, 3), 0.0);
    // Outlier: 1.5 * 2^(0 - (-3)) = 12 with prescale enabled.
    EXPECT_DOUBLE_EQ(layer.dequant(0, 2), 12.0);
    // Lower-half slot dequantizes to zero (pruned weight).
    EXPECT_DOUBLE_EQ(layer.dequant(0, 5), 0.0);
}

TEST(PackedLayer, OutlierScaleWithoutPrescale)
{
    MsqConfig cfg;
    cfg.inlierBits = 2;
    cfg.macroBlock = 8;
    cfg.microBlock = 8;
    cfg.prescaleOutliers = false;
    PackedLayer layer(cfg, 1, 8);
    layer.setIsf(0, 0, -3);
    MxFpGroup group;
    group.fmt = FpFormat::e1m2();
    group.level1Exp = 2;
    group.sharedExpField = 1;
    group.signs = {1};
    group.mantissas = {0b01};
    MicroBlockMeta &meta = layer.micro(0, 0);
    meta.hasOutliers = true;
    meta.mxScale = packMxScale(group);
    meta.perm.push_back(PermEntry{0, 1});
    const OutlierHalves halves = splitOutlier(1, 0b01, 2, 2);
    layer.setKind(0, 0, SlotKind::OutlierUpper);
    layer.setCode(0, 0, halves.upper);
    layer.setKind(0, 1, SlotKind::OutlierLower);
    layer.setCode(0, 1, halves.lower);
    // Osf = level1 + muX - bias = 2 + 1 - 0 = 3; value = -1.01b * 8 = -10.
    EXPECT_DOUBLE_EQ(layer.dequant(0, 0), -10.0);
}

TEST(PackedLayer, SerializeRoundTrip)
{
    const PackedLayer layer = buildExampleLayer();
    const std::vector<uint8_t> bytes = layer.serialize();
    const PackedLayer restored =
        PackedLayer::deserialize(layer.config(), 1, 8, bytes);
    for (size_t c = 0; c < 8; ++c) {
        EXPECT_EQ(restored.code(0, c), layer.code(0, c));
        EXPECT_DOUBLE_EQ(restored.dequant(0, c), layer.dequant(0, c));
    }
    EXPECT_EQ(restored.micro(0, 0).perm.size(), 1u);
    EXPECT_EQ(restored.micro(0, 0).perm[0].upperLoc, 2);
    EXPECT_EQ(restored.micro(0, 0).perm[0].lowerLoc, 5);
}

TEST(PackedLayer, PaperEbwMatchesEq4)
{
    // One micro-block with outliers out of one: EBW_O = (24 + 2*8 + 8)/8
    // = 6 bits at bb=2, B_mu=8 (paper Section 4.4).
    const PackedLayer layer = buildExampleLayer();
    EXPECT_DOUBLE_EQ(layer.outlierMicroBlockFraction(), 1.0);
    EXPECT_DOUBLE_EQ(layer.paperEbw(), 6.0);
}

TEST(PackedLayer, EbwInterpolatesWithOutlierFraction)
{
    MsqConfig cfg;
    cfg.inlierBits = 2;
    cfg.macroBlock = 16;
    cfg.microBlock = 8;
    PackedLayer layer(cfg, 1, 16);
    // One of two micro-blocks has outliers.
    MxFpGroup group;
    group.fmt = FpFormat::e1m2();
    group.signs = {0};
    group.mantissas = {1};
    layer.micro(0, 0).hasOutliers = true;
    layer.micro(0, 0).mxScale = packMxScale(group);
    layer.micro(0, 0).perm.push_back(PermEntry{0, 1});
    layer.setKind(0, 0, SlotKind::OutlierUpper);
    layer.setKind(0, 1, SlotKind::OutlierLower);

    EXPECT_DOUBLE_EQ(layer.outlierMicroBlockFraction(), 0.5);
    EXPECT_DOUBLE_EQ(layer.paperEbw(), 0.5 * 6.0 + 0.5 * 2.0);
}

TEST(PackedLayer, MeasuredEbwExceedsPaperEbw)
{
    // The measured stream adds the identifier bit, Isf bytes and the
    // valid bitmap the paper's Eq. 4 ignores; it must be strictly larger
    // but within ~1.2 bits for this tiny layer.
    const PackedLayer layer = buildExampleLayer();
    EXPECT_GT(layer.measuredEbw(), layer.paperEbw());
    EXPECT_LT(layer.measuredEbw(), layer.paperEbw() + 2.5);
}

TEST(PackedLayer, MacroMicroCounts)
{
    MsqConfig cfg;
    cfg.inlierBits = 2;
    cfg.macroBlock = 128;
    cfg.microBlock = 8;
    PackedLayer layer(cfg, 3, 256);
    EXPECT_EQ(layer.macroPerRow(), 2u);
    EXPECT_EQ(layer.microPerRow(), 32u);
    EXPECT_EQ(layer.outlierFormat().name(), "e1m2");

    cfg.inlierBits = 4;
    PackedLayer wide(cfg, 1, 128);
    EXPECT_EQ(wide.outlierFormat().name(), "e3m4");
}

TEST(PackedLayer, RowViewsMatchScalarAccessors)
{
    const PackedLayer layer = buildExampleLayer();
    const uint8_t *codes = layer.codeRow(0);
    const SlotKind *kinds = layer.kindRow(0);
    for (size_t c = 0; c < layer.cols(); ++c) {
        EXPECT_EQ(codes[c], layer.code(0, c));
        EXPECT_EQ(kinds[c], layer.kind(0, c));
    }
    EXPECT_EQ(layer.isfRow(0)[0], layer.isf(0, 0));
    EXPECT_EQ(layer.microRow(0)[0].hasOutliers,
              layer.micro(0, 0).hasOutliers);
}

TEST(PackedLayerDeath, AccessorsPanicOutOfRange)
{
    // The serve engine reads codes through these accessors; misuse must
    // fail loudly instead of reading out of range (documented @pre).
    const PackedLayer layer = buildExampleLayer();
    EXPECT_DEATH(layer.code(1, 0), "out of range");
    EXPECT_DEATH(layer.code(0, 8), "out of range");
    EXPECT_DEATH(layer.kind(0, 8), "out of range");
    EXPECT_DEATH(layer.isf(0, 1), "out of range");
    EXPECT_DEATH(layer.micro(0, 1), "out of range");
    EXPECT_DEATH(layer.codeRow(1), "out of range");

    PackedLayer mut = buildExampleLayer();
    EXPECT_DEATH(mut.setCode(1, 0, 0), "out of range");
    EXPECT_DEATH(mut.setKind(0, 8, SlotKind::Inlier), "out of range");
}

} // namespace
} // namespace msq
