/**
 * @file
 * Serving-frontend suites: wire-protocol round trips and decoder
 * discipline, then the full TCP boundary — loopback streaming against
 * a direct-engine reference, typed Overloaded/BadRequest/ShuttingDown
 * rejections, deadline expiry, client Cancel, slow-client isolation,
 * idle reaping, and graceful drain with zero dropped tokens.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <thread>
#include <vector>

#include <poll.h>
#include <pthread.h>

#include "model/model_zoo.h"
#include "net/client.h"
#include "net/frame.h"
#include "net/server.h"
#include "net/socket.h"
#include "serve/clock.h"
#include "serve/decode.h"

namespace msq {
namespace {

MsqConfig
quantConfig()
{
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    return cfg;
}

DecodeConfig
baseDecodeConfig()
{
    DecodeConfig cfg;
    cfg.maxBatchSeqs = 4;
    cfg.stepTokenBudget = 16;
    cfg.prefillChunk = 4;
    cfg.kv = {2, 4, 4};
    cfg.vocab = 64;
    return cfg;
}

std::vector<uint32_t>
makePrompt(uint64_t seed, size_t len, size_t vocab)
{
    Rng rng(seed);
    std::vector<uint32_t> prompt(len);
    for (uint32_t &tok : prompt)
        tok = static_cast<uint32_t>(rng.uniformInt(vocab));
    return prompt;
}

/** Fault-free single-request reference stream (decode determinism
 *  makes it valid whatever the server's batch composition was). */
std::vector<uint32_t>
referenceStream(const std::vector<uint32_t> &prompt, size_t maxNew)
{
    const ModelProfile &model = modelByName("TinyLM-decode");
    DecodeEngine engine(model, quantConfig(), baseDecodeConfig());
    engine.submit(prompt, maxNew);
    const DecodeReport rep = engine.run();
    EXPECT_EQ(rep.requests.size(), 1u);
    return rep.requests.empty() ? std::vector<uint32_t>()
                                : rep.requests.front().tokens;
}

/** Raw frame-level client for protocol tests the NetClient would
 *  paper over (cancel, hostile payloads, not reading responses). */
struct RawClient
{
    Socket sock;

    bool connect(uint16_t port)
    {
        sock = tcpConnect(port);
        return sock.valid();
    }

    bool send(const std::vector<uint8_t> &wire)
    {
        return sendFully(sock.fd(), wire.data(), wire.size());
    }

    /** Blocking read of the next frame (with timeout). */
    NetCode read(Frame &out, int timeoutMs = 10000)
    {
        for (;;) {
            const NetCode code = decoder.next(out);
            if (code != NetCode::NeedMore)
                return code;
            pollfd pfd;
            pfd.fd = sock.fd();
            pfd.events = POLLIN;
            pfd.revents = 0;
            const int rc = ::poll(&pfd, 1, timeoutMs);
            if (rc <= 0)
                return NetCode::Timeout;
            uint8_t buf[4096];
            size_t got = 0;
            const IoWait w = recvSome(sock.fd(), buf, sizeof(buf), got);
            if (w == IoWait::Again)
                continue;
            if (w != IoWait::Ready)
                return NetCode::ConnectionLost;
            decoder.feed(buf, got);
        }
    }

    FrameDecoder decoder;
};

/** Engine + started server + its port, shared per-test. */
struct ServerFixture
{
    explicit ServerFixture(ServerConfig cfg = {},
                           DecodeConfig dec = baseDecodeConfig())
        : engine(modelByName("TinyLM-decode"), quantConfig(), dec),
          server(engine, cfg)
    {
        started = server.start();
    }

    DecodeEngine engine;
    ModelServer server;
    bool started = false;
};

// ---------------------------------------------------------------------
// Wire protocol

TEST(NetFrame, RequestRoundTrip)
{
    RequestMsg msg;
    msg.maxNewTokens = 7;
    msg.deadlineMs = 1500;
    msg.prompt = {1, 2, 3, 60};
    const std::vector<uint8_t> wire = encodeRequestFrame(42, msg);
    EXPECT_EQ(wire.size(), frameWireBytes(12 + 4 * msg.prompt.size()));

    FrameDecoder dec;
    dec.feed(wire.data(), wire.size());
    Frame frame;
    ASSERT_EQ(dec.next(frame), NetCode::Ok);
    EXPECT_EQ(frame.type, FrameType::Request);
    EXPECT_EQ(frame.requestId, 42u);
    RequestMsg back;
    ASSERT_EQ(decodeRequestMsg(frame.payload, back), NetCode::Ok);
    EXPECT_EQ(back.maxNewTokens, msg.maxNewTokens);
    EXPECT_EQ(back.deadlineMs, msg.deadlineMs);
    EXPECT_EQ(back.prompt, msg.prompt);
    EXPECT_EQ(dec.next(frame), NetCode::NeedMore);
}

TEST(NetFrame, AllTypesRoundTripBytewise)
{
    // Feed the concatenated stream one byte at a time: the incremental
    // decoder must produce the same frames as a bulk feed.
    std::vector<uint8_t> stream;
    RequestMsg rq;
    rq.maxNewTokens = 1;
    rq.prompt = {5};
    for (const auto &wire :
         {encodeRequestFrame(1, rq), encodeCancelFrame(2),
          encodeTokenFrame(3, TokenMsg{0, 17}),
          encodeDoneFrame(4, DoneMsg{2, 0xabcdefull}),
          encodeErrorFrame(5, ErrorMsg{ServeError::Overloaded, "queue"})})
        stream.insert(stream.end(), wire.begin(), wire.end());

    FrameDecoder dec;
    std::vector<Frame> frames;
    for (uint8_t byte : stream) {
        dec.feed(&byte, 1);
        Frame f;
        while (dec.next(f) == NetCode::Ok)
            frames.push_back(f);
    }
    ASSERT_EQ(frames.size(), 5u);
    EXPECT_EQ(frames[0].type, FrameType::Request);
    EXPECT_EQ(frames[1].type, FrameType::Cancel);
    EXPECT_TRUE(frames[1].payload.empty());
    TokenMsg tm;
    ASSERT_EQ(decodeTokenMsg(frames[2].payload, tm), NetCode::Ok);
    EXPECT_EQ(tm.token, 17u);
    DoneMsg dm;
    ASSERT_EQ(decodeDoneMsg(frames[3].payload, dm), NetCode::Ok);
    EXPECT_EQ(dm.streamFold, 0xabcdefull);
    ErrorMsg em;
    ASSERT_EQ(decodeErrorMsg(frames[4].payload, em), NetCode::Ok);
    EXPECT_EQ(em.code, ServeError::Overloaded);
    EXPECT_EQ(em.detail, "queue");
}

TEST(NetFrame, StreamFoldIsOrderSensitive)
{
    const uint32_t a[] = {1, 2, 3};
    const uint32_t b[] = {3, 2, 1};
    EXPECT_NE(tokenStreamFold(a, 3), tokenStreamFold(b, 3));
    EXPECT_EQ(tokenStreamFold(a, 3), tokenStreamFold(a, 3));
    EXPECT_NE(tokenStreamFold(a, 3), tokenStreamFold(a, 2));
}

TEST(NetFrame, DecoderRefusesOversizedLengthBeforeBuffering)
{
    // A CRC-valid-looking header declaring a huge payload must be
    // refused from the header alone — no 4 GB buffering attempt.
    std::vector<uint8_t> hdr;
    for (int i = 0; i < 4; ++i)
        hdr.push_back(static_cast<uint8_t>(kNetMagic >> (8 * i)));
    hdr.push_back(1); // Request
    for (int i = 0; i < 8; ++i)
        hdr.push_back(0);
    const uint32_t huge = 0xFFFFFFFFu;
    for (int i = 0; i < 4; ++i)
        hdr.push_back(static_cast<uint8_t>(huge >> (8 * i)));
    FrameDecoder dec;
    dec.feed(hdr.data(), hdr.size());
    Frame f;
    EXPECT_EQ(dec.next(f), NetCode::FrameTooLarge);
    EXPECT_EQ(dec.state(), NetCode::FrameTooLarge);
    EXPECT_LT(dec.buffered(), size_t{64});
    // The error is sticky: further bytes are refused.
    EXPECT_FALSE(dec.feed(hdr.data(), hdr.size()));
    EXPECT_EQ(dec.next(f), NetCode::FrameTooLarge);
}

TEST(NetFrame, HostileRequestPayloadCapsAreTyped)
{
    // CRC-valid frame whose payload claims more prompt tokens than it
    // carries, and more than the hard cap: typed BadPayload, no throw.
    std::vector<uint8_t> payload;
    const auto put32 = [&payload](uint32_t v) {
        for (int i = 0; i < 4; ++i)
            payload.push_back(static_cast<uint8_t>(v >> (8 * i)));
    };
    put32(16);              // maxNewTokens
    put32(0);               // deadline
    put32(kMaxPromptTokens + 1); // hostile prompt length
    RequestMsg out;
    EXPECT_EQ(decodeRequestMsg(payload, out), NetCode::BadPayload);

    payload.clear();
    put32(kMaxNewTokens + 1); // hostile generation length
    put32(0);
    put32(1);
    put32(3);
    EXPECT_EQ(decodeRequestMsg(payload, out), NetCode::BadPayload);

    payload.clear();
    put32(16);
    put32(0);
    put32(4); // claims 4 tokens, carries 1
    put32(3);
    EXPECT_EQ(decodeRequestMsg(payload, out), NetCode::BadPayload);
}

// ---------------------------------------------------------------------
// Loopback serving

TEST(ModelServer, StreamsMatchDirectEngine)
{
    ServerFixture fx;
    ASSERT_TRUE(fx.started);

    ClientConfig cc;
    cc.port = fx.server.boundPort();
    NetClient client(cc);
    for (size_t i = 0; i < 3; ++i) {
        const std::vector<uint32_t> prompt = makePrompt(77 + i, 5 + i, 64);
        const size_t maxNew = 4 + i;
        const GenerateResult res = client.generate(
            prompt, static_cast<uint32_t>(maxNew));
        ASSERT_EQ(res.code, NetCode::Ok) << netCodeName(res.code);
        EXPECT_EQ(res.attempts, 1u);
        EXPECT_GE(res.firstTokenMs, 0.0);
        EXPECT_EQ(res.tokens, referenceStream(prompt, maxNew));
        EXPECT_EQ(res.streamFold,
                  tokenStreamFold(res.tokens.data(), res.tokens.size()));
    }
    const ServerStats st = fx.server.stats();
    EXPECT_EQ(st.requestsServed, 3u);
    EXPECT_EQ(st.droppedTokens, 0u);
}

TEST(ModelServer, ConcurrentClientsAllMatchReference)
{
    ServerFixture fx;
    ASSERT_TRUE(fx.started);
    const uint16_t port = fx.server.boundPort();

    constexpr size_t kClients = 4;
    std::vector<std::vector<uint32_t>> prompts, got(kClients);
    std::vector<size_t> maxNew;
    for (size_t i = 0; i < kClients; ++i) {
        prompts.push_back(makePrompt(500 + i, 4 + i % 3, 64));
        maxNew.push_back(3 + i % 4);
    }
    std::vector<NetCode> codes(kClients, NetCode::ConnectionLost);
    std::vector<std::thread> threads;
    for (size_t i = 0; i < kClients; ++i)
        threads.emplace_back([&, i] {
            ClientConfig cc;
            cc.port = port;
            cc.seed = 10 + i;
            NetClient client(cc);
            const GenerateResult res = client.generate(
                prompts[i], static_cast<uint32_t>(maxNew[i]));
            codes[i] = res.code;
            got[i] = res.tokens;
        });
    for (std::thread &t : threads)
        t.join();
    for (size_t i = 0; i < kClients; ++i) {
        EXPECT_EQ(codes[i], NetCode::Ok) << netCodeName(codes[i]);
        EXPECT_EQ(got[i], referenceStream(prompts[i], maxNew[i]))
            << "client " << i;
    }
}

TEST(ModelServer, OverloadedIsTypedAndBounded)
{
    ServerConfig cfg;
    cfg.maxQueue = 1;
    DecodeConfig dec = baseDecodeConfig();
    dec.maxBatchSeqs = 1; // one resident sequence: queue fills fast
    ServerFixture fx(cfg, dec);
    ASSERT_TRUE(fx.started);

    // Pipeline 10 requests in one write; the engine can hold one and
    // the queue one more, so most must come back Overloaded — and all
    // ten must be answered (typed rejection, never silence).
    RawClient raw;
    ASSERT_TRUE(raw.connect(fx.server.boundPort()));
    RequestMsg msg;
    msg.maxNewTokens = 8;
    msg.prompt = makePrompt(9, 6, 64);
    std::vector<uint8_t> wire;
    for (uint64_t id = 1; id <= 10; ++id) {
        const std::vector<uint8_t> one = encodeRequestFrame(id, msg);
        wire.insert(wire.end(), one.begin(), one.end());
    }
    ASSERT_TRUE(raw.send(wire));

    size_t done = 0, overloaded = 0;
    for (size_t answered = 0; answered < 10;) {
        Frame f;
        ASSERT_EQ(raw.read(f), NetCode::Ok);
        if (f.type == FrameType::Done) {
            ++done;
            ++answered;
        } else if (f.type == FrameType::Error) {
            ErrorMsg em;
            ASSERT_EQ(decodeErrorMsg(f.payload, em), NetCode::Ok);
            EXPECT_EQ(em.code, ServeError::Overloaded);
            ++overloaded;
            ++answered;
        }
    }
    EXPECT_GE(done, 1u);
    EXPECT_GE(overloaded, 6u);
    EXPECT_EQ(done + overloaded, 10u);
    EXPECT_EQ(fx.server.stats().rejectedOverloaded, overloaded);
}

TEST(ModelServer, KvPledgeOverloadRejectsAtAdmission)
{
    ServerConfig cfg;
    DecodeConfig dec = baseDecodeConfig();
    dec.kvArenaBytes = 8192; // tiny arena: a long request cannot pledge
    dec.usePrefixCache = false;
    ServerFixture fx(cfg, dec);
    ASSERT_TRUE(fx.started);
    ASSERT_GT(fx.engine.arena().capacityPages(), 0u);
    // Pick a request whose page estimate provably exceeds the budget.
    const size_t need = fx.engine.estimateRequestPages(64, 512);
    ASSERT_GT(need, fx.engine.arena().capacityPages());

    ClientConfig cc;
    cc.port = fx.server.boundPort();
    cc.maxAttempts = 1;
    NetClient client(cc);
    const GenerateResult res =
        client.generate(makePrompt(3, 64, 64), 512);
    EXPECT_EQ(res.code, NetCode::Rejected);
    EXPECT_EQ(res.serverError, ServeError::Overloaded);
    EXPECT_EQ(fx.server.stats().rejectedOverloaded, 1u);
}

TEST(ModelServer, BadRequestsAreTypedAndNonFatal)
{
    ServerFixture fx;
    ASSERT_TRUE(fx.started);
    RawClient raw;
    ASSERT_TRUE(raw.connect(fx.server.boundPort()));

    // Out-of-vocabulary prompt: typed BadRequest.
    RequestMsg msg;
    msg.maxNewTokens = 2;
    msg.prompt = {9999};
    ASSERT_TRUE(raw.send(encodeRequestFrame(1, msg)));
    Frame f;
    ASSERT_EQ(raw.read(f), NetCode::Ok);
    ASSERT_EQ(f.type, FrameType::Error);
    ErrorMsg em;
    ASSERT_EQ(decodeErrorMsg(f.payload, em), NetCode::Ok);
    EXPECT_EQ(em.code, ServeError::BadRequest);

    // The connection survives and serves a valid request afterwards.
    msg.prompt = makePrompt(1, 4, 64);
    ASSERT_TRUE(raw.send(encodeRequestFrame(2, msg)));
    size_t tokens = 0;
    for (;;) {
        ASSERT_EQ(raw.read(f), NetCode::Ok);
        if (f.type == FrameType::Token)
            ++tokens;
        else
            break;
    }
    EXPECT_EQ(f.type, FrameType::Done);
    EXPECT_EQ(tokens, 2u);
    EXPECT_EQ(fx.server.stats().rejectedBadRequest, 1u);
}

TEST(ModelServer, GarbageStreamClosesConnection)
{
    ServerFixture fx;
    ASSERT_TRUE(fx.started);
    RawClient raw;
    ASSERT_TRUE(raw.connect(fx.server.boundPort()));
    const std::vector<uint8_t> garbage(64, 0x5A);
    ASSERT_TRUE(raw.send(garbage));
    Frame f;
    EXPECT_EQ(raw.read(f), NetCode::ConnectionLost);

    const uint64_t t0 = steadyNanos();
    while (fx.server.stats().badFrameConns == 0 && elapsedMs(t0) < 5000)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(fx.server.stats().badFrameConns, 1u);
}

TEST(ModelServer, DeadlineExpiryCancelsMidGeneration)
{
    ServerFixture fx;
    ASSERT_TRUE(fx.started);
    ClientConfig cc;
    cc.port = fx.server.boundPort();
    cc.maxAttempts = 1;
    NetClient client(cc);
    // A 1 ms deadline on a long generation cannot finish in time.
    const GenerateResult res =
        client.generate(makePrompt(21, 6, 64), 2048, /*deadline_ms=*/1);
    EXPECT_EQ(res.code, NetCode::Rejected) << netCodeName(res.code);
    EXPECT_EQ(res.serverError, ServeError::DeadlineExceeded);
    EXPECT_EQ(fx.server.stats().deadlineExpired, 1u);

    // The engine recovered: a fresh request on a fresh connection
    // completes and matches the reference.
    ClientConfig cc2;
    cc2.port = fx.server.boundPort();
    NetClient client2(cc2);
    const std::vector<uint32_t> prompt = makePrompt(22, 5, 64);
    const GenerateResult ok = client2.generate(prompt, 3);
    ASSERT_EQ(ok.code, NetCode::Ok);
    EXPECT_EQ(ok.tokens, referenceStream(prompt, 3));
}

TEST(ModelServer, CancelFrameStopsAStream)
{
    ServerFixture fx;
    ASSERT_TRUE(fx.started);
    RawClient raw;
    ASSERT_TRUE(raw.connect(fx.server.boundPort()));
    RequestMsg msg;
    msg.maxNewTokens = 2048; // would run a long time
    msg.prompt = makePrompt(31, 6, 64);
    ASSERT_TRUE(raw.send(encodeRequestFrame(7, msg)));

    // Wait for the stream to start, then cancel it.
    Frame f;
    ASSERT_EQ(raw.read(f), NetCode::Ok);
    ASSERT_EQ(f.type, FrameType::Token);
    ASSERT_TRUE(raw.send(encodeCancelFrame(7)));
    const uint64_t t0 = steadyNanos();
    while (fx.server.stats().cancelled == 0 && elapsedMs(t0) < 5000)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(fx.server.stats().cancelled, 1u);

    // The connection remains usable: drain any straggler tokens of the
    // cancelled stream, then run a small request to completion.
    ASSERT_TRUE(raw.send(encodeRequestFrame(8, RequestMsg{
                             2, 0, makePrompt(32, 4, 64)})));
    bool done8 = false;
    const uint64_t t1 = steadyNanos();
    while (!done8 && elapsedMs(t1) < 10000) {
        ASSERT_EQ(raw.read(f), NetCode::Ok);
        done8 = f.type == FrameType::Done && f.requestId == 8;
    }
    EXPECT_TRUE(done8);
}

TEST(ModelServer, SlowClientIsAbortedNotBuffered)
{
    ServerConfig cfg;
    cfg.maxOutBufBytes = 0; // nothing may pend: first buffered frame
                            // that cannot flush instantly aborts
    ServerFixture fx(cfg);
    ASSERT_TRUE(fx.started);
    RawClient raw;
    ASSERT_TRUE(raw.connect(fx.server.boundPort()));
    RequestMsg msg;
    msg.maxNewTokens = 64;
    msg.prompt = makePrompt(41, 6, 64);
    ASSERT_TRUE(raw.send(encodeRequestFrame(1, msg)));

    const uint64_t t0 = steadyNanos();
    while (fx.server.stats().slowClientAborts == 0 && elapsedMs(t0) < 10000)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_EQ(fx.server.stats().slowClientAborts, 1u);
}

TEST(ModelServer, IdleConnectionsAreReaped)
{
    ServerConfig cfg;
    cfg.idleTimeoutMs = 50;
    ServerFixture fx(cfg);
    ASSERT_TRUE(fx.started);
    RawClient raw;
    ASSERT_TRUE(raw.connect(fx.server.boundPort()));
    // Send nothing; the server must reap the connection.
    Frame f;
    EXPECT_EQ(raw.read(f, /*timeoutMs=*/10000), NetCode::ConnectionLost);
    EXPECT_EQ(fx.server.stats().idleReaped, 1u);
}

TEST(ModelServer, DrainFinishesInFlightStreamsWithZeroDrops)
{
    ServerFixture fx;
    ASSERT_TRUE(fx.started);
    const uint16_t port = fx.server.boundPort();

    constexpr size_t kClients = 3;
    std::vector<std::vector<uint32_t>> prompts, got(kClients);
    std::vector<NetCode> codes(kClients, NetCode::Ok);
    for (size_t i = 0; i < kClients; ++i)
        prompts.push_back(makePrompt(600 + i, 5, 64));
    const size_t maxNew = 24;

    std::vector<std::thread> threads;
    for (size_t i = 0; i < kClients; ++i)
        threads.emplace_back([&, i] {
            ClientConfig cc;
            cc.port = port;
            cc.maxAttempts = 1;
            NetClient client(cc);
            const GenerateResult res =
                client.generate(prompts[i], maxNew);
            codes[i] = res.code;
            got[i] = res.tokens;
        });

    // Let the requests land, then drain mid-generation: every admitted
    // stream must still finish, byte-complete.
    const uint64_t t0 = steadyNanos();
    while (fx.server.stats().requestsAdmitted < kClients &&
           elapsedMs(t0) < 10000)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    EXPECT_TRUE(fx.server.drain());
    for (std::thread &t : threads)
        t.join();

    const ServerStats st = fx.server.stats();
    EXPECT_EQ(st.droppedTokens, 0u);
    EXPECT_GE(st.drainMs, 0.0);
    for (size_t i = 0; i < kClients; ++i) {
        EXPECT_EQ(codes[i], NetCode::Ok) << netCodeName(codes[i]);
        EXPECT_EQ(got[i], referenceStream(prompts[i], maxNew))
            << "client " << i;
    }

    // Post-drain the server admits nothing.
    ClientConfig cc;
    cc.port = port;
    cc.maxAttempts = 1;
    NetClient late(cc);
    EXPECT_NE(late.generate(prompts[0], 2).code, NetCode::Ok);
}

// ---------------------------------------------------------------------
// Deadline-bounded connect

TEST(NetSocket, ConnectWithDeadlineReachesAListener)
{
    uint16_t port = 0;
    Socket listener = tcpListen(0, port);
    ASSERT_TRUE(listener.valid());
    Socket sock = connectWithDeadline(port, 2000);
    EXPECT_TRUE(sock.valid());
}

TEST(NetSocket, ConnectWithDeadlineFailsFastOnClosedPort)
{
    // Bind an ephemeral port, then close it: the port is known-dead.
    uint16_t port = 0;
    {
        Socket listener = tcpListen(0, port);
        ASSERT_TRUE(listener.valid());
    }
    const uint64_t t0 = steadyNanos();
    Socket sock = connectWithDeadline(port, 2000);
    EXPECT_FALSE(sock.valid());
    // Loopback refusal is immediate — nowhere near the deadline.
    EXPECT_LT(elapsedMs(t0), 1500.0);
}

TEST(NetSocket, ConnectWithDeadlineSurvivesSignalStorm)
{
    // Pelt the connecting thread with non-SA_RESTART signals: the poll
    // loop must re-arm across EINTR with the remaining time recomputed,
    // and every connect must still land.
    struct sigaction sa = {}, old = {};
    sa.sa_handler = [](int) {};
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0; // deliberately not SA_RESTART
    ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

    uint16_t port = 0;
    Socket listener = tcpListen(0, port);
    ASSERT_TRUE(listener.valid());

    std::atomic<bool> connecting(true);
    size_t connected = 0;
    std::thread worker([&] {
        for (size_t i = 0; i < 50; ++i) {
            Socket sock = connectWithDeadline(port, 2000);
            if (sock.valid())
                ++connected;
        }
        connecting.store(false);
    });
    const pthread_t target = worker.native_handle();
    std::thread pelter([&] {
        while (connecting.load()) {
            pthread_kill(target, SIGUSR1);
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    });
    worker.join();
    pelter.join();
    EXPECT_EQ(connected, 50u);
    sigaction(SIGUSR1, &old, nullptr);
}

// ---------------------------------------------------------------------
// Stats frame over the wire

TEST(ModelServer, StatsQueryReturnsLiveSnapshot)
{
    // A bounded arena so the snapshot's capacity field carries signal
    // (0 would mean unbounded).
    DecodeConfig dec = baseDecodeConfig();
    dec.kvArenaBytes = 1 << 20;
    ServerFixture fx(ServerConfig{}, dec);
    ASSERT_TRUE(fx.started);
    RawClient raw;
    ASSERT_TRUE(raw.connect(fx.server.boundPort()));

    // Idle snapshot: capacity known, nothing in flight, not draining.
    ASSERT_TRUE(raw.send(encodeStatsQueryFrame(5)));
    Frame f;
    ASSERT_EQ(raw.read(f), NetCode::Ok);
    ASSERT_EQ(f.type, FrameType::Stats);
    EXPECT_EQ(f.requestId, 5u);
    StatsMsg sm;
    ASSERT_EQ(decodeStatsMsg(f.payload, sm), NetCode::Ok);
    EXPECT_GT(sm.capacityPages, 0u);
    EXPECT_EQ(sm.inFlight, 0u);
    EXPECT_EQ(sm.draining, 0u);
    EXPECT_EQ(sm.requestsServed, 0u);

    // After a served request the counters move; after requestDrain()
    // the snapshot reports draining — the supervisor's health probe
    // and the router's load signal ride on exactly these fields.
    ClientConfig cc;
    cc.port = fx.server.boundPort();
    NetClient client(cc);
    ASSERT_EQ(client.generate(makePrompt(55, 5, 64), 4).code,
              NetCode::Ok);
    fx.server.requestDrain();
    StatsMsg after;
    ASSERT_EQ(client.queryStats(after), NetCode::Ok);
    EXPECT_EQ(after.requestsServed, 1u);
    EXPECT_GE(after.tokensStreamed, 4u);
    EXPECT_EQ(after.draining, 1u);
}

TEST(ModelServer, StatsFrameWithBodyIsAProtocolViolation)
{
    // Only the server sends snapshots; a client pushing a 40-byte Stats
    // body is lying about its role and loses the connection.
    ServerFixture fx;
    ASSERT_TRUE(fx.started);
    RawClient raw;
    ASSERT_TRUE(raw.connect(fx.server.boundPort()));
    StatsMsg sm;
    sm.queueDepth = 7;
    ASSERT_TRUE(raw.send(encodeStatsFrame(1, sm)));
    Frame f;
    EXPECT_EQ(raw.read(f), NetCode::ConnectionLost);
}

// ---------------------------------------------------------------------
// Client retry/backoff counters

TEST(NetClient, CountersTrackFailedAttemptsAndBackoff)
{
    uint16_t deadPort = 0;
    {
        Socket listener = tcpListen(0, deadPort);
        ASSERT_TRUE(listener.valid());
    }
    ClientConfig cc;
    cc.port = deadPort;
    cc.maxAttempts = 3;
    cc.backoffBaseMs = 1;
    cc.backoffCapMs = 2;
    NetClient client(cc);
    const GenerateResult res = client.generate(makePrompt(1, 4, 64), 2);
    EXPECT_EQ(res.code, NetCode::ConnectionLost);

    const ClientStats &st = client.stats();
    EXPECT_EQ(st.attempts, 3u);
    EXPECT_EQ(st.retries, 2u);
    EXPECT_EQ(st.connectionsLost, 3u);
    EXPECT_EQ(st.backoffSleeps, 2u); // no sleep after the final try
    EXPECT_GE(st.backoffMsTotal, 2u);
    EXPECT_EQ(st.reconnects, 0u);
    EXPECT_EQ(st.failovers, 0u);
}

TEST(NetClient, CountersTrackTypedRejectionsAndStayQuietWhenHealthy)
{
    ServerFixture fx;
    ASSERT_TRUE(fx.started);

    // Healthy path: one attempt, nothing else moves.
    ClientConfig cc;
    cc.port = fx.server.boundPort();
    NetClient healthy(cc);
    ASSERT_EQ(healthy.generate(makePrompt(2, 4, 64), 2).code,
              NetCode::Ok);
    EXPECT_EQ(healthy.stats().attempts, 1u);
    EXPECT_EQ(healthy.stats().retries, 0u);
    EXPECT_EQ(healthy.stats().backoffSleeps, 0u);
    EXPECT_EQ(healthy.stats().connectionsLost, 0u);

    // Draining server: ShuttingDown is transient, so every attempt is
    // made and every rejection is typed into the counter.
    fx.server.requestDrain();
    ClientConfig rc;
    rc.port = fx.server.boundPort();
    rc.maxAttempts = 2;
    rc.backoffBaseMs = 1;
    rc.backoffCapMs = 2;
    NetClient rejected(rc);
    const GenerateResult res =
        rejected.generate(makePrompt(3, 4, 64), 2);
    EXPECT_EQ(res.code, NetCode::Rejected);
    EXPECT_EQ(res.serverError, ServeError::ShuttingDown);
    EXPECT_EQ(rejected.stats().attempts, 2u);
    EXPECT_EQ(rejected.stats().rejectedShuttingDown, 2u);
    EXPECT_EQ(rejected.stats().backoffSleeps, 1u);
}

TEST(ModelServer, RequestsDuringDrainGetShuttingDown)
{
    ServerFixture fx;
    ASSERT_TRUE(fx.started);
    fx.server.requestDrain();
    ClientConfig cc;
    cc.port = fx.server.boundPort();
    cc.maxAttempts = 1;
    NetClient client(cc);
    const GenerateResult res = client.generate(makePrompt(1, 4, 64), 2);
    EXPECT_EQ(res.code, NetCode::Rejected);
    EXPECT_EQ(res.serverError, ServeError::ShuttingDown);
    EXPECT_EQ(fx.server.stats().rejectedShutdown, 1u);
}

} // namespace
} // namespace msq
