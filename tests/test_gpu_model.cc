/**
 * @file
 * Tests for the A100-class GPU model: kernel-variant ordering of
 * Table 6 (unoptimized MicroScopiQ is no faster than FP16; the
 * optimized kernel roughly matches Atom; the modified tensor core wins
 * outright), size scaling, and energy accounting.
 */

#include <gtest/gtest.h>

#include "gpu/gpu_model.h"

namespace msq {
namespace {

constexpr double kMsEbw = 4.15;   // MicroScopiQ W4 effective bit width
constexpr double kAtomEbw = 4.25; // Atom group scales + outlier channels

TEST(GpuModel, KernelNames)
{
    EXPECT_EQ(gpuKernelName(GpuKernel::TrtLlmFp16), "TRT-LLM FP16");
    EXPECT_EQ(gpuKernelName(GpuKernel::MsModifiedTensorCore),
              "W4A4 MS w/ New MTC");
}

TEST(GpuModel, Table6OrderingLlama2_13B)
{
    GpuConfig cfg;
    const double params = 13.0;
    const double fp16 =
        runDecode(cfg, GpuKernel::TrtLlmFp16, params, 16.0).tokensPerSec;
    const double atom =
        runDecode(cfg, GpuKernel::AtomW4A4, params, kAtomEbw).tokensPerSec;
    const double no_opt =
        runDecode(cfg, GpuKernel::MsNoOptim, params, kMsEbw).tokensPerSec;
    const double opt =
        runDecode(cfg, GpuKernel::MsOptim, params, kMsEbw).tokensPerSec;
    const double mtc = runDecode(cfg, GpuKernel::MsModifiedTensorCore,
                                 params, kMsEbw)
                           .tokensPerSec;

    // Table 6 ordering: no-optim <= fp16 < optim ~ atom < modified TC.
    EXPECT_LE(no_opt, fp16 * 1.05);
    EXPECT_GT(opt, fp16 * 1.5);
    EXPECT_GT(mtc, opt);
    EXPECT_GT(mtc, atom);

    // Magnitudes: Atom ~2.25x, MS-optim ~2x, MTC ~4.3x over FP16.
    EXPECT_NEAR(atom / fp16, 2.25, 0.6);
    EXPECT_NEAR(opt / fp16, 2.06, 0.6);
    EXPECT_NEAR(mtc / fp16, 4.31, 1.2);
}

TEST(GpuModel, BiggerModelSlower)
{
    GpuConfig cfg;
    const double t13 =
        runDecode(cfg, GpuKernel::TrtLlmFp16, 13.0, 16.0).tokensPerSec;
    const double t8 =
        runDecode(cfg, GpuKernel::TrtLlmFp16, 8.0, 16.0).tokensPerSec;
    EXPECT_GT(t8, t13);
}

TEST(GpuModel, EnergyPositiveAndTracksTime)
{
    GpuConfig cfg;
    const GpuRun fast =
        runDecode(cfg, GpuKernel::MsModifiedTensorCore, 13.0, kMsEbw);
    const GpuRun slow = runDecode(cfg, GpuKernel::TrtLlmFp16, 13.0, 16.0);
    EXPECT_GT(fast.energyMjPerToken, 0.0);
    EXPECT_LT(fast.energyMjPerToken, slow.energyMjPerToken);
}

TEST(GpuModel, IsoComparisonFavorsAccelerator)
{
    // Fig. 13: the GPU pays register-reordering and FP16-fallback
    // costs the MicroScopiQ accelerator avoids; its cycle count per
    // token exceeds the pure memory bound.
    GpuConfig cfg;
    const GpuIsoResult iso = runIsoComparison(cfg, 8.0, 4);
    // Weights stream once per decode step (batch reuse), so the pure
    // memory bound is the weight footprint over the bandwidth; the GPU
    // pays reordering/FP16-fallback overhead on top of it.
    const double pure_mem_cycles =
        8.0e9 * 4.15 / 8.0 / (cfg.memGBs * 1e9) * 1e9;
    EXPECT_GT(iso.cycles, pure_mem_cycles);
    EXPECT_LT(iso.cycles, pure_mem_cycles * 2.0);
    EXPECT_GT(iso.energyPj, 0.0);
}

} // namespace
} // namespace msq
