/**
 * @file
 * End-to-end tests of the MicroScopiQ quantizer (Algorithm 1): packed
 * invariants (N:M structure, permutation validity), reconstruction
 * quality versus plain MX-INT, outlier preservation, EBW range,
 * ablation-switch behaviour, and robustness on heavy-tailed inputs.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.h"
#include "core/microscopiq.h"
#include "core/outlier.h"

namespace msq {
namespace {

/** Heavy-tailed weights: Gaussian bulk plus planted outliers. */
Matrix
fmWeights(size_t k, size_t o, Rng &rng, double outlier_rate = 0.01,
          double sigma = 0.02)
{
    Matrix w(k, o);
    for (size_t r = 0; r < k; ++r) {
        for (size_t c = 0; c < o; ++c) {
            double v = rng.gaussian(0.0, sigma);
            if (rng.bernoulli(outlier_rate))
                v = rng.uniform(8.0, 20.0) * sigma *
                    (rng.bernoulli(0.5) ? 1.0 : -1.0);
            w(r, c) = v;
        }
    }
    return w;
}

Matrix
calibData(size_t k, size_t n, Rng &rng)
{
    Matrix x(k, n);
    for (size_t r = 0; r < k; ++r)
        for (size_t t = 0; t < n; ++t)
            x(r, t) = rng.gaussian(0.0, 1.0);
    return x;
}

TEST(MicroScopiQ, PackedInvariants)
{
    Rng rng(1);
    const Matrix w = fmWeights(64, 256, rng, 0.02);
    const Matrix x = calibData(64, 128, rng);

    MsqConfig cfg;
    MicroScopiQQuantizer q(cfg);
    const PackedLayer layer = q.quantizePacked(w, x);

    for (size_t r = 0; r < layer.rows(); ++r) {
        for (size_t ub = 0; ub < layer.microPerRow(); ++ub) {
            const MicroBlockMeta &meta = layer.micro(r, ub);
            if (!meta.hasOutliers)
                continue;
            EXPECT_LE(meta.perm.size(), cfg.microBlockCapacity());
            std::set<uint8_t> used;
            const size_t base = ub * cfg.microBlock;
            for (const PermEntry &e : meta.perm) {
                // Locations in range and mutually disjoint.
                EXPECT_LT(e.upperLoc, cfg.microBlock);
                EXPECT_LT(e.lowerLoc, cfg.microBlock);
                EXPECT_NE(e.upperLoc, e.lowerLoc);
                EXPECT_TRUE(used.insert(e.upperLoc).second);
                EXPECT_TRUE(used.insert(e.lowerLoc).second);
                // Slot kinds agree with the permutation list.
                EXPECT_EQ(layer.kind(r, base + e.upperLoc),
                          SlotKind::OutlierUpper);
                EXPECT_EQ(layer.kind(r, base + e.lowerLoc),
                          SlotKind::OutlierLower);
            }
        }
    }
}

TEST(MicroScopiQ, NMStructure)
{
    // With n outliers per micro-block exactly n inliers are pruned:
    // (B_mu - n) non-zeros per B_mu slots, and dequant has a zero at
    // every lower-half slot.
    Rng rng(2);
    const Matrix w = fmWeights(32, 128, rng, 0.03);
    const Matrix x = calibData(32, 64, rng);

    MicroScopiQQuantizer q;
    const PackedLayer layer = q.quantizePacked(w, x);
    const Matrix deq = layer.dequantAll();

    for (size_t r = 0; r < layer.rows(); ++r) {
        for (size_t ub = 0; ub < layer.microPerRow(); ++ub) {
            const MicroBlockMeta &meta = layer.micro(r, ub);
            const size_t base = ub * layer.config().microBlock;
            size_t zeros = 0;
            for (size_t i = 0; i < layer.config().microBlock; ++i)
                if (deq(r, base + i) == 0.0)
                    ++zeros;
            // At least one zero per stored outlier (inlier code 0 can
            // add more).
            EXPECT_GE(zeros, meta.perm.size());
        }
    }
}

TEST(MicroScopiQ, OutliersPreservedAtHighRelativeAccuracy)
{
    Rng rng(3);
    const Matrix w = fmWeights(64, 256, rng, 0.02);
    const Matrix x = calibData(64, 64, rng);

    MicroScopiQQuantizer q;
    const QuantResult res = q.quantize(w, x);

    // Every large-magnitude weight must be reconstructed within ~30%
    // relative error (4-bit MX-FP with shared muX), in contrast to the
    // 2-bit inlier grid which cannot represent these magnitudes at all.
    const OutlierStats stats = analyzeOutliers(w, 128);
    ASSERT_GT(stats.outliers, 0u);
    size_t preserved = 0, total = 0;
    for (size_t r = 0; r < w.rows(); ++r) {
        for (size_t c = 0; c < w.cols(); ++c) {
            if (std::fabs(w(r, c)) < 0.1)
                continue;
            ++total;
            if (std::fabs(res.dequant(r, c) - w(r, c)) <
                0.35 * std::fabs(w(r, c)))
                ++preserved;
        }
    }
    ASSERT_GT(total, 0u);
    EXPECT_GE(static_cast<double>(preserved) / static_cast<double>(total),
              0.9);
}

TEST(MicroScopiQ, BeatsPlainMxIntOnHeavyTails)
{
    Rng rng(4);
    const Matrix w = fmWeights(96, 256, rng, 0.02);
    const Matrix x = calibData(96, 128, rng);
    const Matrix ref = w.transposedMatmul(x);

    MsqConfig full;
    MicroScopiQQuantizer q_full(full);
    MsqConfig plain;
    plain.outlierMode = OutlierMode::None;
    MicroScopiQQuantizer q_plain(plain);

    const double err_full = q_full.quantize(w, x)
                                .dequant.transposedMatmul(x)
                                .normalizedErrorTo(ref);
    const double err_plain = q_plain.quantize(w, x)
                                 .dequant.transposedMatmul(x)
                                 .normalizedErrorTo(ref);
    EXPECT_LT(err_full, err_plain * 0.7);
}

TEST(MicroScopiQ, EbwNearPaperValue)
{
    // Paper: EBW ~2.36 bits at bb=2 for FM-like outlier rates (~1%).
    Rng rng(5);
    const Matrix w = fmWeights(128, 512, rng, 0.01);
    const Matrix x = calibData(128, 64, rng);
    MicroScopiQQuantizer q;
    const QuantResult res = q.quantize(w, x);
    EXPECT_GT(res.ebw, 2.0);
    EXPECT_LT(res.ebw, 3.2);
}

TEST(MicroScopiQ, SerializedRoundTripAfterQuantization)
{
    Rng rng(6);
    const Matrix w = fmWeights(32, 128, rng, 0.03);
    const Matrix x = calibData(32, 64, rng);
    MicroScopiQQuantizer q;
    const PackedLayer layer = q.quantizePacked(w, x);

    const std::vector<uint8_t> bytes = layer.serialize();
    const PackedLayer restored = PackedLayer::deserialize(
        layer.config(), layer.rows(), layer.cols(), bytes);
    const Matrix a = layer.dequantAll();
    const Matrix b = restored.dequantAll();
    for (size_t r = 0; r < a.rows(); ++r)
        for (size_t c = 0; c < a.cols(); ++c)
            EXPECT_DOUBLE_EQ(a(r, c), b(r, c));
}

TEST(MicroScopiQ, HessianCompensationHelps)
{
    Rng rng(7);
    const Matrix w = fmWeights(64, 128, rng, 0.02);
    const Matrix x = calibData(64, 128, rng);
    const Matrix ref = w.transposedMatmul(x);

    MsqConfig with;
    MsqConfig without;
    without.hessianCompensation = false;
    const double err_with = MicroScopiQQuantizer(with)
                                .quantize(w, x)
                                .dequant.transposedMatmul(x)
                                .normalizedErrorTo(ref);
    const double err_without = MicroScopiQQuantizer(without)
                                   .quantize(w, x)
                                   .dequant.transposedMatmul(x)
                                   .normalizedErrorTo(ref);
    EXPECT_LE(err_with, err_without * 1.02);
}

TEST(MicroScopiQ, MicroSharingBeatsCoarseSharing)
{
    // Table 7: MX-FP-4_{8,8} outliers beat MX-FP-4_{128,128}.
    Rng rng(8);
    const Matrix w = fmWeights(64, 256, rng, 0.03);
    const Matrix x = calibData(64, 64, rng);
    const Matrix ref = w.transposedMatmul(x);

    MsqConfig micro_cfg;
    MsqConfig coarse_cfg;
    coarse_cfg.outlierMode = OutlierMode::MxFpCoarse;
    const double err_micro = MicroScopiQQuantizer(micro_cfg)
                                 .quantize(w, x)
                                 .dequant.transposedMatmul(x)
                                 .normalizedErrorTo(ref);
    const double err_coarse = MicroScopiQQuantizer(coarse_cfg)
                                  .quantize(w, x)
                                  .dequant.transposedMatmul(x)
                                  .normalizedErrorTo(ref);
    EXPECT_LE(err_micro, err_coarse * 1.05);
}

TEST(MicroScopiQ, FpOutliersBeatIntOutliers)
{
    // Section 3.3 / Table 7: MX-FP outliers outperform MX-INT outliers.
    Rng rng(9);
    const Matrix w = fmWeights(64, 256, rng, 0.03);
    const Matrix x = calibData(64, 64, rng);
    const Matrix ref = w.transposedMatmul(x);

    MsqConfig fp_cfg;
    MsqConfig int_cfg;
    int_cfg.outlierMode = OutlierMode::MxInt;
    const double err_fp = MicroScopiQQuantizer(fp_cfg)
                              .quantize(w, x)
                              .dequant.transposedMatmul(x)
                              .normalizedErrorTo(ref);
    const double err_int = MicroScopiQQuantizer(int_cfg)
                               .quantize(w, x)
                               .dequant.transposedMatmul(x)
                               .normalizedErrorTo(ref);
    EXPECT_LE(err_fp, err_int * 1.1);
}

TEST(MicroScopiQ, NegativeIsfObservation)
{
    // Paper Section 4.2: the inlier scale factor is a negative power of
    // two for all FM layers. Verify on a typical layer.
    Rng rng(10);
    const Matrix w = fmWeights(64, 256, rng, 0.02);
    const Matrix x = calibData(64, 32, rng);
    MicroScopiQQuantizer q;
    const PackedLayer layer = q.quantizePacked(w, x);
    EXPECT_EQ(layer.stats.positiveIsfBlocks, 0u);
    for (size_t r = 0; r < layer.rows(); ++r)
        for (size_t mb = 0; mb < layer.macroPerRow(); ++mb)
            EXPECT_LT(layer.isf(r, mb), 0);
}

TEST(MicroScopiQ, TinyMicroBlocksPruneOutliers)
{
    // Fig. 14: B_mu = 2 forces outlier pruning when a block holds two
    // outliers. Plant adjacent outliers to trigger it.
    Rng rng(11);
    Matrix w = fmWeights(16, 64, rng, 0.0);
    w(0, 0) = 1.0;
    w(0, 1) = -1.1;  // same 2-wide micro-block
    const Matrix x = calibData(16, 32, rng);

    MsqConfig cfg;
    cfg.microBlock = 2;
    cfg.macroBlock = 64;
    MicroScopiQQuantizer q(cfg);
    const PackedLayer layer = q.quantizePacked(w, x);
    EXPECT_GT(layer.stats.outliersPruned, 0u);
}

TEST(MicroScopiQ, Bits4UsesWiderFormats)
{
    Rng rng(12);
    const Matrix w = fmWeights(64, 256, rng, 0.02);
    const Matrix x = calibData(64, 64, rng);
    const Matrix ref = w.transposedMatmul(x);

    MsqConfig w2;
    w2.inlierBits = 2;
    MsqConfig w4;
    w4.inlierBits = 4;
    const double err2 = MicroScopiQQuantizer(w2)
                            .quantize(w, x)
                            .dequant.transposedMatmul(x)
                            .normalizedErrorTo(ref);
    const double err4 = MicroScopiQQuantizer(w4)
                            .quantize(w, x)
                            .dequant.transposedMatmul(x)
                            .normalizedErrorTo(ref);
    EXPECT_LT(err4, err2);
    EXPECT_EQ(MicroScopiQQuantizer(w4).name(), "MicroScopiQ-W4");
}

class MsqGroupSizeTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(MsqGroupSizeTest, AllGroupSizesProduceValidLayers)
{
    const size_t bmu = GetParam();
    Rng rng(bmu);
    const Matrix w = fmWeights(32, 256, rng, 0.02);
    const Matrix x = calibData(32, 32, rng);

    MsqConfig cfg;
    cfg.microBlock = bmu;
    cfg.macroBlock = std::max<size_t>(bmu, 128);
    MicroScopiQQuantizer q(cfg);
    const QuantResult res = q.quantize(w, x);
    EXPECT_EQ(res.dequant.rows(), w.rows());
    EXPECT_EQ(res.dequant.cols(), w.cols());
    EXPECT_GE(res.ebw, 2.0);
    // Reconstruction keeps the output error bounded (2-bit inliers on
    // IID Gaussian weights are coarse; bound reflects that regime).
    const Matrix ref = w.transposedMatmul(x);
    EXPECT_LT(res.dequant.transposedMatmul(x).normalizedErrorTo(ref), 0.5);
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, MsqGroupSizeTest,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256));

} // namespace
} // namespace msq
