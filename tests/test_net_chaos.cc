/**
 * @file
 * Deterministic chaos harness over the serving frontend: seeded
 * FaultInjectors sever, truncate, and delay client transfers while the
 * server itself is hard-killed and restarted mid-load on the same
 * port and the same engine. The contract under test: every request
 * that *eventually completes* delivers a token stream byte-identical
 * to a fault-free run (verified through the Done frame's stream fold
 * and a direct-engine reference), and a final graceful drain finishes
 * with zero dropped tokens.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "model/model_zoo.h"
#include "net/client.h"
#include "net/fault.h"
#include "net/frame.h"
#include "net/server.h"
#include "serve/clock.h"
#include "serve/decode.h"

namespace msq {
namespace {

MsqConfig
quantConfig()
{
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    return cfg;
}

DecodeConfig
chaosDecodeConfig()
{
    DecodeConfig cfg;
    cfg.maxBatchSeqs = 4;
    cfg.stepTokenBudget = 16;
    cfg.prefillChunk = 4;
    cfg.kv = {2, 4, 4};
    cfg.vocab = 64;
    return cfg;
}

std::vector<uint32_t>
makePrompt(uint64_t seed, size_t len)
{
    Rng rng(seed);
    std::vector<uint32_t> prompt(len);
    for (uint32_t &tok : prompt)
        tok = static_cast<uint32_t>(rng.uniformInt(64));
    return prompt;
}

TEST(NetChaos, FaultedStreamsMatchFaultFreeRun)
{
    constexpr size_t kClients = 4;
    constexpr size_t kRequestsPerClient = 2;
    constexpr size_t kMaxNew = 8;

    // Fault-free reference streams, one per (client, request) pair,
    // from a private engine. Decode determinism makes a single-request
    // run a valid reference for any batch composition the server saw.
    std::vector<std::vector<std::vector<uint32_t>>> want(kClients);
    {
        DecodeEngine ref(modelByName("TinyLM-decode"), quantConfig(),
                         chaosDecodeConfig());
        for (size_t c = 0; c < kClients; ++c)
            for (size_t r = 0; r < kRequestsPerClient; ++r) {
                ref.submit(makePrompt(1000 + c * 10 + r, 4 + r), kMaxNew);
                const DecodeReport rep = ref.run();
                ASSERT_EQ(rep.requests.size(), 1u);
                want[c].push_back(rep.requests.front().tokens);
            }
    }

    DecodeEngine engine(modelByName("TinyLM-decode"), quantConfig(),
                        chaosDecodeConfig());
    ServerConfig scfg;
    auto server = std::make_unique<ModelServer>(engine, scfg);
    ASSERT_TRUE(server->start());
    const uint16_t port = server->boundPort();

    // Clients hammer the server through seeded fault injectors. Each
    // (seed, outcome) pair is reproducible; generous retry budgets let
    // streams complete across faults and the restart below.
    std::vector<std::vector<GenerateResult>> got(kClients);
    std::vector<std::thread> threads;
    for (size_t c = 0; c < kClients; ++c)
        threads.emplace_back([&, c] {
            FaultConfig fc;
            fc.seed = 9000 + c;
            fc.connectFailProb = 0.05;
            fc.sendSeverProb = 0.10;
            fc.sendTruncateProb = 0.10;
            fc.recvSeverProb = 0.01;
            fc.delayProb = 0.05;
            fc.maxDelayMs = 2;
            FaultInjector faults(fc);
            ClientConfig cc;
            cc.port = port;
            cc.seed = 70 + c;
            cc.maxAttempts = 12;
            cc.backoffBaseMs = 5;
            cc.backoffCapMs = 80;
            NetClient client(cc, &faults);
            for (size_t r = 0; r < kRequestsPerClient; ++r)
                got[c].push_back(client.generate(
                    makePrompt(1000 + c * 10 + r, 4 + r), kMaxNew));
        });

    // Mid-load: hard-kill the server, then restart it on the same port
    // over the same engine — in-flight streams die, retries land on
    // the new instance.
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    server->stop();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ServerConfig scfg2;
    scfg2.port = port;
    auto server2 = std::make_unique<ModelServer>(engine, scfg2);
    ASSERT_TRUE(server2->start());
    EXPECT_EQ(server2->boundPort(), port);

    for (std::thread &t : threads)
        t.join();

    // Every eventually-completed stream is byte-identical to the
    // fault-free reference, and its fold checks out end to end.
    size_t completed = 0;
    for (size_t c = 0; c < kClients; ++c)
        for (size_t r = 0; r < kRequestsPerClient; ++r) {
            const GenerateResult &res = got[c][r];
            if (res.code != NetCode::Ok)
                continue;
            ++completed;
            EXPECT_EQ(res.tokens, want[c][r])
                << "client " << c << " request " << r;
            EXPECT_EQ(res.streamFold,
                      tokenStreamFold(want[c][r].data(),
                                      want[c][r].size()));
        }
    EXPECT_GE(completed, 1u);

    // The survivor drains gracefully: nothing in flight is dropped.
    EXPECT_TRUE(server2->drain());
    EXPECT_EQ(server2->stats().droppedTokens, 0u);
}

TEST(NetChaos, FaultScheduleIsSeedDeterministic)
{
    // Two injectors with one seed agree decision for decision; a third
    // with another seed diverges somewhere in a modest window.
    FaultConfig fc;
    fc.seed = 123;
    fc.connectFailProb = 0.2;
    fc.sendSeverProb = 0.2;
    fc.sendTruncateProb = 0.2;
    fc.recvSeverProb = 0.2;
    fc.delayProb = 0.2;
    FaultInjector a(fc), b(fc);
    FaultConfig other = fc;
    other.seed = 124;
    FaultInjector c(other);
    bool diverged = false;
    for (size_t i = 0; i < 200; ++i) {
        EXPECT_EQ(a.onConnect(), b.onConnect());
        const FaultDecision da = a.onSend(100), db = b.onSend(100);
        EXPECT_EQ(static_cast<int>(da.action),
                  static_cast<int>(db.action));
        EXPECT_EQ(da.keepBytes, db.keepBytes);
        EXPECT_EQ(da.delayMs, db.delayMs);
        const FaultDecision dr1 = a.onRecv(), dr2 = b.onRecv();
        EXPECT_EQ(static_cast<int>(dr1.action),
                  static_cast<int>(dr2.action));
        const FaultDecision dc = c.onSend(100);
        diverged = diverged ||
                   static_cast<int>(dc.action) !=
                       static_cast<int>(da.action);
        c.onConnect();
        c.onRecv();
    }
    EXPECT_TRUE(diverged);
    EXPECT_EQ(a.decisions(), b.decisions());
    EXPECT_EQ(a.faults(), b.faults());
}

TEST(NetChaos, ServerSurvivesRepeatedKillRestartCycles)
{
    DecodeEngine engine(modelByName("TinyLM-decode"), quantConfig(),
                        chaosDecodeConfig());
    uint16_t port = 0;
    for (int cycle = 0; cycle < 3; ++cycle) {
        ServerConfig cfg;
        cfg.port = port;
        ModelServer server(engine, cfg);
        ASSERT_TRUE(server.start()) << "cycle " << cycle;
        port = server.boundPort();

        ClientConfig cc;
        cc.port = port;
        cc.seed = 40 + static_cast<uint64_t>(cycle);
        NetClient client(cc);
        const std::vector<uint32_t> prompt = makePrompt(55, 5);
        const GenerateResult res = client.generate(prompt, 4);
        ASSERT_EQ(res.code, NetCode::Ok) << netCodeName(res.code);
        if (cycle == 0) {
            // Streams across restarts are identical — the engine's
            // state carries no residue between server lifetimes.
            DecodeEngine ref(modelByName("TinyLM-decode"), quantConfig(),
                             chaosDecodeConfig());
            ref.submit(prompt, 4);
            const DecodeReport rep = ref.run();
            ASSERT_EQ(rep.requests.size(), 1u);
            EXPECT_EQ(res.tokens, rep.requests.front().tokens);
        }
        server.stop();
        EXPECT_TRUE(engine.idle()) << "engine residue after cycle "
                                   << cycle;
    }
}

} // namespace
} // namespace msq
