/**
 * @file
 * Exhaustive verification of the multi-precision PE multiplier tree:
 * MODE 4b over every (4-bit weight, 8-bit iAct) pair, MODE 2b over
 * every (packed pair, iAct) combination, and the sign-magnitude
 * outlier-half products.
 */

#include <gtest/gtest.h>

#include "accel/pe.h"
#include "common/bitstream.h"

namespace msq {
namespace {

TEST(MultiPrecisionPe, Mode4bExhaustive)
{
    for (int w = 0; w < 16; ++w) {
        for (int a = -128; a <= 127; ++a) {
            const int32_t expected =
                static_cast<int32_t>(signExtend(static_cast<uint64_t>(w), 4)) *
                a;
            const int32_t got = MultiPrecisionPe::multiply4b(
                static_cast<uint8_t>(w), static_cast<int8_t>(a));
            ASSERT_EQ(got, expected) << "w=" << w << " a=" << a;
        }
    }
}

TEST(MultiPrecisionPe, Mode2bExhaustive)
{
    for (int packed = 0; packed < 16; ++packed) {
        const int w1 = static_cast<int>(
            signExtend(static_cast<uint64_t>(packed >> 2), 2));
        const int w0 = static_cast<int>(
            signExtend(static_cast<uint64_t>(packed & 0x3), 2));
        for (int a = -128; a <= 127; ++a) {
            const PePairResult res = MultiPrecisionPe::multiply2b(
                static_cast<uint8_t>(packed), static_cast<int8_t>(a));
            ASSERT_EQ(res.hi, w1 * a) << "packed=" << packed << " a=" << a;
            ASSERT_EQ(res.lo, w0 * a) << "packed=" << packed << " a=" << a;
        }
    }
}

TEST(MultiPrecisionPe, OutlierHalfProducts)
{
    // bb=2, 1 mantissa bit: codes {00,01,10,11} -> values {0,1,-0,-1}.
    EXPECT_EQ(MultiPrecisionPe::multiplyOutlierHalf(0b01, 2, 1, 32), 32);
    EXPECT_EQ(MultiPrecisionPe::multiplyOutlierHalf(0b00, 2, 1, 32), 0);
    EXPECT_EQ(MultiPrecisionPe::multiplyOutlierHalf(0b11, 2, 1, 32), -32);
    EXPECT_EQ(MultiPrecisionPe::multiplyOutlierHalf(0b10, 2, 1, 32), 0);

    // bb=4, 2 mantissa bits: {s,m1,m0} in a 4-bit field.
    EXPECT_EQ(MultiPrecisionPe::multiplyOutlierHalf(0b0011, 4, 2, 10), 30);
    EXPECT_EQ(MultiPrecisionPe::multiplyOutlierHalf(0b1011, 4, 2, 10),
              -30);
    EXPECT_EQ(MultiPrecisionPe::multiplyOutlierHalf(0b0010, 4, 2, -5),
              -10);
}

TEST(MultiPrecisionPe, Mode2bDoublesThroughput)
{
    // The defining property of the paper's top-down multi-precision
    // strategy: one PE evaluates two independent partial sums at 2-bit.
    const PePairResult res = MultiPrecisionPe::multiply2b(0b0111, 100);
    EXPECT_EQ(res.hi, 100);   // w1 = +1
    EXPECT_EQ(res.lo, -100);  // w0 = -1
}

} // namespace
} // namespace msq
