/**
 * @file
 * Unit tests for the small-FP element codec: exact code tables for e1m2,
 * round-trip through pack/unpack, monotonicity, and saturation.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "mx/fp_codec.h"

namespace msq {
namespace {

TEST(FpFormat, Names)
{
    EXPECT_EQ(FpFormat::e1m2().name(), "e1m2");
    EXPECT_EQ(FpFormat::e3m4().name(), "e3m4");
    EXPECT_EQ(FpFormat::e1m2().totalBits(), 4u);
    EXPECT_EQ(FpFormat::e3m4().totalBits(), 8u);
}

TEST(FpFormat, MaxValues)
{
    // e1m2 bias 0: max = 1.75 * 2^(1-0) = 3.5
    EXPECT_DOUBLE_EQ(FpFormat::e1m2().maxValue(), 3.5);
    // e3m4 bias 3: max = (2 - 1/16) * 2^(7-3) = 31
    EXPECT_DOUBLE_EQ(FpFormat::e3m4().maxValue(), 31.0);
    // e2m1 bias 1: max = 1.5 * 2^(3-1) = 6 (the OCP FP4 maximum)
    EXPECT_DOUBLE_EQ(FpFormat::e2m1().maxValue(), 6.0);
}

TEST(FpCodec, E1m2ExactValues)
{
    const FpFormat fmt = FpFormat::e1m2();
    // Normal codes: 1.m * 2^(1-0) for e=1 -> {2, 2.5, 3, 3.5};
    // e=0 -> subnormal 0.m * 2^(1-0) -> {0, 0.5, 1.0, 1.5}.
    EXPECT_DOUBLE_EQ(fpDecode(fmt, 0, 1, 0), 2.0);
    EXPECT_DOUBLE_EQ(fpDecode(fmt, 0, 1, 1), 2.5);
    EXPECT_DOUBLE_EQ(fpDecode(fmt, 0, 1, 3), 3.5);
    EXPECT_DOUBLE_EQ(fpDecode(fmt, 0, 0, 0), 0.0);
    EXPECT_DOUBLE_EQ(fpDecode(fmt, 0, 0, 1), 0.5);
    EXPECT_DOUBLE_EQ(fpDecode(fmt, 0, 0, 3), 1.5);
    EXPECT_DOUBLE_EQ(fpDecode(fmt, 1, 1, 2), -3.0);
}

TEST(FpCodec, EncodeHitsNearest)
{
    const FpFormat fmt = FpFormat::e1m2();
    EXPECT_DOUBLE_EQ(fpRoundTrip(fmt, 2.4), 2.5);
    EXPECT_DOUBLE_EQ(fpRoundTrip(fmt, 2.1), 2.0);
    EXPECT_DOUBLE_EQ(fpRoundTrip(fmt, 0.4), 0.5);
    EXPECT_DOUBLE_EQ(fpRoundTrip(fmt, -1.4), -1.5);
    EXPECT_DOUBLE_EQ(fpRoundTrip(fmt, 0.0), 0.0);
}

TEST(FpCodec, Saturates)
{
    const FpFormat fmt = FpFormat::e1m2();
    EXPECT_DOUBLE_EQ(fpRoundTrip(fmt, 100.0), 3.5);
    EXPECT_DOUBLE_EQ(fpRoundTrip(fmt, -100.0), -3.5);
    const FpFormat big = FpFormat::e3m4();
    EXPECT_DOUBLE_EQ(fpRoundTrip(big, 1e9), 31.0);
}

TEST(FpCodec, PackUnpackAllCodes)
{
    for (const FpFormat fmt : {FpFormat::e1m2(), FpFormat::e3m4(),
                               FpFormat::e2m1(), FpFormat::e4m3()}) {
        const unsigned total = fmt.totalBits();
        for (uint16_t bits = 0; bits < (1u << total); ++bits) {
            const FpCode code = fpUnpack(fmt, bits);
            EXPECT_EQ(fpPack(fmt, code), bits);
            // Round-tripping the decoded value must reproduce the code's
            // value (encode of a representable value is exact), modulo
            // the two zero representations.
            const FpCode re = fpEncode(fmt, code.value);
            EXPECT_DOUBLE_EQ(re.value, code.value)
                << fmt.name() << " code " << bits;
        }
    }
}

TEST(FpCodec, MonotoneOverMagnitudes)
{
    const FpFormat fmt = FpFormat::e3m4();
    double prev = 0.0;
    for (double v = 0.0; v <= 32.0; v += 0.01) {
        const double q = fpRoundTrip(fmt, v);
        EXPECT_GE(q, prev) << "non-monotone at " << v;
        prev = q;
    }
}

TEST(FpCodec, RelativeErrorBounded)
{
    const FpFormat fmt = FpFormat::e3m4();
    // For normal-range magnitudes the relative error of a m-bit mantissa
    // is at most 2^-(m+1) (half ulp).
    for (double v = fmt.minNormal(); v < fmt.maxValue(); v *= 1.37) {
        const double q = fpRoundTrip(fmt, v);
        EXPECT_LE(std::fabs(q - v) / v, std::ldexp(1.0, -5) + 1e-12);
    }
}

} // namespace
} // namespace msq
