/**
 * @file
 * Unit tests for the memory-hierarchy traffic model: cycle conversion
 * under the default config, the pipelined bound, and the loud failure
 * on degenerate (zero/NaN bandwidth or clock) design points that used
 * to produce silent inf/NaN cycles.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/memory.h"

namespace msq {
namespace {

TEST(MemoryCycles, ConvertsTrafficAtConfiguredBandwidth)
{
    AccelConfig config;  // 256 GB/s DRAM, 64 GB/s OCP at 1 GHz
    MemoryTraffic traffic;
    traffic.dramBytes = 256.0 * 1000;
    traffic.l2Bytes = 64.0 * 500;

    const MemoryCycles cycles = memoryCycles(config, traffic);
    EXPECT_DOUBLE_EQ(cycles.dramCycles, 1000.0);
    EXPECT_DOUBLE_EQ(cycles.ocpCycles, 500.0);
    EXPECT_DOUBLE_EQ(cycles.bound(), 1000.0);
}

TEST(MemoryCycles, BoundIsTheSlowerStage)
{
    MemoryCycles cycles;
    cycles.dramCycles = 10.0;
    cycles.ocpCycles = 25.0;
    EXPECT_DOUBLE_EQ(cycles.bound(), 25.0);
}

TEST(MemoryCycles, ZeroTrafficIsFree)
{
    const MemoryCycles cycles = memoryCycles(AccelConfig{}, MemoryTraffic{});
    EXPECT_DOUBLE_EQ(cycles.bound(), 0.0);
}

using MemoryCyclesDeathTest = ::testing::Test;

TEST(MemoryCyclesDeathTest, RejectsZeroDramBandwidth)
{
    AccelConfig config;
    config.dramGBs = 0.0;  // a design-space sweep corner
    EXPECT_DEATH(memoryCycles(config, MemoryTraffic{}),
                 "dramGBs must be positive");
}

TEST(MemoryCyclesDeathTest, RejectsZeroOcpBandwidth)
{
    AccelConfig config;
    config.ocpGBs = 0.0;
    EXPECT_DEATH(memoryCycles(config, MemoryTraffic{}),
                 "ocpGBs must be positive");
}

TEST(MemoryCyclesDeathTest, RejectsZeroClock)
{
    AccelConfig config;
    config.clockGhz = 0.0;
    EXPECT_DEATH(memoryCycles(config, MemoryTraffic{}),
                 "clockGhz must be positive");
}

TEST(MemoryCyclesDeathTest, RejectsNanBandwidth)
{
    AccelConfig config;
    config.dramGBs = std::nan("");
    EXPECT_DEATH(memoryCycles(config, MemoryTraffic{}),
                 "dramGBs must be positive");
}

} // namespace
} // namespace msq
