/**
 * @file
 * Round-trip property tests of the `.msq` container across the
 * quantization config grid (inlier bits x micro/macro block sizes x
 * outlier rates, seeded RNG): for every combination, save -> load ->
 * serve must produce outputs bit-identical to the in-memory packed
 * path, and the re-encoded stream must reproduce the saved bytes. This
 * is the format's behavioral contract: persistence is invisible to the
 * numerics.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <tuple>

#include "accel/acts.h"
#include "common/rng.h"
#include "core/microscopiq.h"
#include "io/msq_file.h"
#include "serve/packed_exec.h"

namespace msq {
namespace {

Matrix
randomWeights(size_t k, size_t o, Rng &rng, double outlier_rate)
{
    Matrix w(k, o);
    for (size_t r = 0; r < k; ++r) {
        for (size_t c = 0; c < o; ++c) {
            double v = rng.gaussian(0.0, 0.02);
            if (rng.bernoulli(outlier_rate))
                v = rng.uniform(0.15, 0.5) * (rng.bernoulli(0.5) ? 1 : -1);
            w(r, c) = v;
        }
    }
    return w;
}

Matrix
randomActs(size_t k, size_t tokens, Rng &rng)
{
    Matrix x(k, tokens);
    for (size_t r = 0; r < k; ++r)
        for (size_t t = 0; t < tokens; ++t)
            x(r, t) = rng.gaussian(0.0, 1.0);
    return x;
}

void
expectBitIdentical(const Matrix &got, const Matrix &want)
{
    ASSERT_EQ(got.rows(), want.rows());
    ASSERT_EQ(got.cols(), want.cols());
    for (size_t r = 0; r < got.rows(); ++r)
        for (size_t c = 0; c < got.cols(); ++c)
            ASSERT_EQ(got(r, c), want(r, c))
                << "mismatch at (" << r << "," << c << ")";
}

class ContainerGrid
    : public ::testing::TestWithParam<std::tuple<unsigned, size_t, double>>
{
};

TEST_P(ContainerGrid, SaveLoadServeBitIdentical)
{
    const auto [bits, micro, rate] = GetParam();
    MsqConfig cfg;
    cfg.inlierBits = bits;
    cfg.microBlock = micro;
    cfg.macroBlock = micro * 8;
    cfg.hessianCompensation = false;

    const uint64_t seed = 9000 + bits * 100 + micro * 10 +
                          static_cast<uint64_t>(rate * 100);
    Rng rng(seed);
    MicroScopiQQuantizer quantizer(cfg);

    MsqModelFile file;
    file.model = "grid-model";
    file.config = cfg;
    file.calibTokens = 16;
    file.layerNames = {"grid_a", "grid_b"};
    file.layers.push_back(
        quantizer.quantizePacked(randomWeights(48, 160, rng, rate),
                                 Matrix()));
    file.layers.push_back(
        quantizer.quantizePacked(randomWeights(32, 64, rng, rate),
                                 Matrix()));

    char name[64];
    std::snprintf(name, sizeof(name), "msq_test_grid_%u_%zu_%02d.msq", bits,
                  micro, static_cast<int>(rate * 100));
    const std::string path = ::testing::TempDir() + name;
    ASSERT_TRUE(saveModel(path, file).ok());

    MsqModelFile loaded;
    const IoResult res = loadModel(path, loaded);
    ASSERT_TRUE(res.ok()) << res.message;
    ASSERT_EQ(loaded.layers.size(), file.layers.size());

    for (size_t li = 0; li < file.layers.size(); ++li) {
        // Byte identity of the packed stream...
        ASSERT_EQ(loaded.layers[li].serialize(),
                  file.layers[li].serialize());

        // ...and bit identity of everything served from it: the plan
        // decode, the real-activation GEMM, and the integer-activation
        // GEMM all see the same weights.
        const PackedExecPlan mem_plan(file.layers[li]);
        const PackedExecPlan disk_plan(loaded.layers[li]);
        EXPECT_EQ(disk_plan.termCount(), mem_plan.termCount());
        EXPECT_EQ(disk_plan.outlierCount(), mem_plan.outlierCount());

        const size_t k = file.layers[li].rows();
        const Matrix x = randomActs(k, 5, rng);
        expectBitIdentical(disk_plan.matmulT(x), mem_plan.matmulT(x));

        const QuantizedActs acts(x, 8, 32);
        expectBitIdentical(disk_plan.gemm(acts), mem_plan.gemm(acts));
    }
    std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ContainerGrid,
    ::testing::Combine(::testing::Values(2u, 4u),
                       ::testing::Values(4u, 8u, 16u),
                       ::testing::Values(0.0, 0.03, 0.10)));

} // namespace
} // namespace msq
