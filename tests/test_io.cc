/**
 * @file
 * Unit tests of the `.msq` container (io/msq_file.h): CRC32 vectors,
 * save/load round trips that preserve every identity field and every
 * packed byte, lazy per-layer reads through MsqReader, typed errors on
 * malformed input, and the bounds-checked PackedLayer::tryDeserialize
 * rejection paths. The corruption *sweep* lives in test_io_fuzz.cc;
 * the cross-config grid in test_io_properties.cc; the committed byte
 * layout pin in test_golden.cc.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <thread>

#include <pthread.h>
#include <unistd.h>

#include "common/rng.h"
#include "core/microscopiq.h"
#include "io/crc32.h"
#include "io/io_util.h"
#include "io/msq_file.h"

namespace msq {
namespace {

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "msq_test_io_" + name;
}

std::vector<uint8_t>
readFileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                                std::istreambuf_iterator<char>());
}

void
writeFileBytes(const std::string &path, const std::vector<uint8_t> &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char *>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

Matrix
randomWeights(size_t k, size_t o, uint64_t seed, double outlier_rate)
{
    Rng rng(seed);
    Matrix w(k, o);
    for (size_t r = 0; r < k; ++r) {
        for (size_t c = 0; c < o; ++c) {
            double v = rng.gaussian(0.0, 0.02);
            if (rng.bernoulli(outlier_rate))
                v = rng.uniform(0.15, 0.5) * (rng.bernoulli(0.5) ? 1 : -1);
            w(r, c) = v;
        }
    }
    return w;
}

/** A small two-layer container for round-trip tests. */
MsqModelFile
makeTestFile(const MsqConfig &cfg)
{
    MicroScopiQQuantizer quantizer(cfg);
    MsqModelFile file;
    file.model = "unit-test-model";
    file.config = cfg;
    file.calibTokens = 64;
    file.layerNames = {"layer_a", "layer_b"};
    file.layers.push_back(
        quantizer.quantizePacked(randomWeights(32, 96, 7, 0.05), Matrix()));
    file.layers.push_back(
        quantizer.quantizePacked(randomWeights(48, 64, 8, 0.08), Matrix()));
    return file;
}

TEST(Crc32, KnownVectors)
{
    // The standard CRC-32 check value.
    const uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
    EXPECT_EQ(crc32(check, sizeof(check)), 0xCBF43926u);
    EXPECT_EQ(crc32(nullptr, 0), 0u);

    // Incremental == one-shot.
    const uint32_t head = crc32(check, 4);
    EXPECT_EQ(crc32(check + 4, 5, head), 0xCBF43926u);
}

TEST(MsqFile, SaveLoadRoundTrip)
{
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    const MsqModelFile file = makeTestFile(cfg);
    const std::string path = tmpPath("roundtrip.msq");
    ASSERT_TRUE(saveModel(path, file).ok());

    MsqModelFile loaded;
    const IoResult res = loadModel(path, loaded);
    ASSERT_TRUE(res.ok()) << res.message;
    EXPECT_EQ(loaded.model, file.model);
    EXPECT_TRUE(loaded.config == file.config);
    EXPECT_EQ(loaded.calibTokens, file.calibTokens);
    ASSERT_EQ(loaded.layers.size(), file.layers.size());
    for (size_t li = 0; li < file.layers.size(); ++li) {
        EXPECT_EQ(loaded.layerNames[li], file.layerNames[li]);
        EXPECT_EQ(loaded.layers[li].rows(), file.layers[li].rows());
        EXPECT_EQ(loaded.layers[li].cols(), file.layers[li].cols());
        // The payload survives byte for byte...
        EXPECT_EQ(loaded.layers[li].serialize(),
                  file.layers[li].serialize());
        // ...and therefore dequantizes bit for bit.
        const Matrix a = loaded.layers[li].dequantAll();
        const Matrix b = file.layers[li].dequantAll();
        for (size_t i = 0; i < a.size(); ++i)
            ASSERT_EQ(a.data()[i], b.data()[i]);
    }
    std::remove(path.c_str());
}

TEST(MsqFile, ReencodeIsByteIdentical)
{
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    const MsqModelFile file = makeTestFile(cfg);
    const std::string path_a = tmpPath("reencode_a.msq");
    const std::string path_b = tmpPath("reencode_b.msq");
    ASSERT_TRUE(saveModel(path_a, file).ok());

    MsqModelFile loaded;
    ASSERT_TRUE(loadModel(path_a, loaded).ok());
    ASSERT_TRUE(saveModel(path_b, loaded).ok());
    EXPECT_EQ(readFileBytes(path_a), readFileBytes(path_b));
    std::remove(path_a.c_str());
    std::remove(path_b.c_str());
}

TEST(MsqFile, ReaderIsLazyAndOrderIndependent)
{
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    const MsqModelFile file = makeTestFile(cfg);
    const std::string path = tmpPath("reader.msq");
    ASSERT_TRUE(saveModel(path, file).ok());

    MsqReader reader;
    ASSERT_TRUE(reader.open(path).ok());
    EXPECT_EQ(reader.model(), file.model);
    EXPECT_TRUE(reader.config() == cfg);
    EXPECT_EQ(reader.calibTokens(), file.calibTokens);
    ASSERT_EQ(reader.layerCount(), 2u);
    EXPECT_EQ(reader.layerInfo(0).name, "layer_a");
    EXPECT_EQ(reader.layerInfo(1).name, "layer_b");
    EXPECT_EQ(reader.fileBytes(), readFileBytes(path).size());

    // Read the second layer only, then the first: no ordering contract.
    PackedLayer second;
    ASSERT_TRUE(reader.readLayer(1, second).ok());
    EXPECT_EQ(second.serialize(), file.layers[1].serialize());
    PackedLayer first;
    ASSERT_TRUE(reader.readLayer(0, first).ok());
    EXPECT_EQ(first.serialize(), file.layers[0].serialize());

    // Lazy validation: corrupting layer 1's payload after open must
    // fail layer 1's read but leave layer 0 readable.
    std::vector<uint8_t> bytes = readFileBytes(path);
    bytes[reader.layerInfo(1).offset + 3] ^= 0xFF;
    writeFileBytes(path, bytes);
    MsqReader reader2;
    ASSERT_TRUE(reader2.open(path).ok());
    PackedLayer ok_layer, bad_layer;
    EXPECT_TRUE(reader2.readLayer(0, ok_layer).ok());
    const IoResult bad = reader2.readLayer(1, bad_layer);
    EXPECT_FALSE(bad.ok());
    EXPECT_EQ(bad.code, IoCode::LayerCorrupt);
    std::remove(path.c_str());
}

TEST(MsqFile, TypedErrors)
{
    MsqModelFile out;

    // Missing file.
    EXPECT_EQ(loadModel(tmpPath("does_not_exist.msq"), out).code,
              IoCode::FileError);

    // Not a container.
    const std::string garbage = tmpPath("garbage.msq");
    writeFileBytes(garbage, {0xDE, 0xAD, 0xBE, 0xEF, 1, 2, 3, 4, 5, 6, 7,
                             8, 9, 10, 11, 12, 13, 14, 15, 16});
    EXPECT_EQ(loadModel(garbage, out).code, IoCode::BadMagic);
    std::remove(garbage.c_str());

    // Shorter than a prologue.
    const std::string stub = tmpPath("stub.msq");
    writeFileBytes(stub, {'M', 'S', 'Q', 'C', 1});
    EXPECT_EQ(loadModel(stub, out).code, IoCode::Truncated);
    std::remove(stub.c_str());

    MsqConfig cfg;
    cfg.hessianCompensation = false;
    const MsqModelFile file = makeTestFile(cfg);
    const std::string path = tmpPath("errors.msq");
    ASSERT_TRUE(saveModel(path, file).ok());
    const std::vector<uint8_t> good = readFileBytes(path);

    // Unknown format version, with a recomputed prologue CRC so the
    // version check (not the checksum) must catch it.
    {
        std::vector<uint8_t> bytes = good;
        bytes[4] = 0x7F;
        const uint32_t crc = crc32(bytes.data(), 16);
        for (int i = 0; i < 4; ++i)
            bytes[16 + i] = static_cast<uint8_t>(crc >> (8 * i));
        writeFileBytes(path, bytes);
        EXPECT_EQ(loadModel(path, out).code, IoCode::BadVersion);
    }

    // Hostile-but-CRC-valid metadata: blow the block sizes up to 2^62
    // and recompute the header checksum. The loader must reject the
    // implausible config with a typed error *before* any allocation
    // depends on it (a crafted container must never bad_alloc).
    {
        std::vector<uint8_t> bytes = good;
        uint32_t header_bytes = 0;
        for (int i = 0; i < 4; ++i)
            header_bytes |= static_cast<uint32_t>(bytes[8 + i]) << (8 * i);
        const uint64_t huge = 1ull << 62;
        for (int i = 0; i < 8; ++i) {
            bytes[24 + i] = static_cast<uint8_t>(huge >> (8 * i)); // macro
            bytes[32 + i] = static_cast<uint8_t>(huge >> (8 * i)); // micro
        }
        const uint32_t crc = crc32(bytes.data() + 20, header_bytes);
        for (int i = 0; i < 4; ++i)
            bytes[20 + header_bytes + i] = static_cast<uint8_t>(crc >> (8 * i));
        writeFileBytes(path, bytes);
        EXPECT_EQ(loadModel(path, out).code, IoCode::BadMetadata);
    }

    // Trailing bytes.
    {
        std::vector<uint8_t> bytes = good;
        bytes.push_back(0);
        writeFileBytes(path, bytes);
        EXPECT_EQ(loadModel(path, out).code, IoCode::TrailingBytes);
    }

    // Truncated mid-payload.
    {
        std::vector<uint8_t> bytes = good;
        bytes.resize(bytes.size() - 7);
        writeFileBytes(path, bytes);
        EXPECT_EQ(loadModel(path, out).code, IoCode::Truncated);
    }
    std::remove(path.c_str());
}

TEST(MsqFile, LoadLeavesOutputUntouchedOnFailure)
{
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    const MsqModelFile file = makeTestFile(cfg);
    const std::string path = tmpPath("untouched.msq");
    ASSERT_TRUE(saveModel(path, file).ok());

    MsqModelFile out;
    ASSERT_TRUE(loadModel(path, out).ok());

    // Corrupt the last payload byte: the final layer fails *after* the
    // earlier one decoded, and `out` must still hold the old content.
    std::vector<uint8_t> bytes = readFileBytes(path);
    bytes.back() ^= 0xFF;
    writeFileBytes(path, bytes);
    EXPECT_FALSE(loadModel(path, out).ok());
    ASSERT_EQ(out.layers.size(), file.layers.size());
    for (size_t li = 0; li < file.layers.size(); ++li)
        EXPECT_EQ(out.layers[li].serialize(), file.layers[li].serialize());
    std::remove(path.c_str());
}

TEST(MsqFile, VerifiedLoadGatesOnIdentity)
{
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    const MsqModelFile file = makeTestFile(cfg);
    const std::string path = tmpPath("verified.msq");
    ASSERT_TRUE(saveModelAtomic(path, file).ok());

    const std::vector<MsqLayerId> ids = {{"layer_a", 32, 96},
                                         {"layer_b", 48, 64}};
    MsqModelFile out;
    EXPECT_TRUE(
        loadModelVerified(path, file.model, cfg, 64, ids, out).ok());

    // Each identity component gates independently.
    EXPECT_EQ(loadModelVerified(path, "other-model", cfg, 64, ids, out).code,
              IoCode::IdentityMismatch);
    EXPECT_EQ(loadModelVerified(path, file.model, cfg, 65, ids, out).code,
              IoCode::IdentityMismatch);
    MsqConfig cfg4 = cfg;
    cfg4.inlierBits = 4;
    EXPECT_EQ(loadModelVerified(path, file.model, cfg4, 64, ids, out).code,
              IoCode::IdentityMismatch);
    std::vector<MsqLayerId> renamed = ids;
    renamed[1].name = "layer_c";
    EXPECT_EQ(
        loadModelVerified(path, file.model, cfg, 64, renamed, out).code,
        IoCode::IdentityMismatch);
    std::vector<MsqLayerId> reshaped = ids;
    reshaped[0].rows = 33;
    EXPECT_EQ(
        loadModelVerified(path, file.model, cfg, 64, reshaped, out).code,
        IoCode::IdentityMismatch);
    std::remove(path.c_str());
}

TEST(MsqFile, ContainerFileNameIsStableAndKeyed)
{
    const std::string a = containerFileName("model", "key-1");
    EXPECT_EQ(a, containerFileName("model", "key-1"));
    EXPECT_NE(a, containerFileName("model", "key-2"));
    EXPECT_NE(a, containerFileName("other", "key-1"));
    EXPECT_EQ(a.substr(a.size() - 4), ".msq");
}

TEST(TryDeserialize, RejectsMalformedStreams)
{
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    MicroScopiQQuantizer quantizer(cfg);
    const PackedLayer layer =
        quantizer.quantizePacked(randomWeights(16, 64, 9, 0.08), Matrix());
    const std::vector<uint8_t> good = layer.serialize();

    PackedLayer out;
    ASSERT_TRUE(PackedLayer::tryDeserialize(cfg, 16, 64, good, out));
    EXPECT_EQ(out.serialize(), good);

    // Truncated at every byte boundary.
    for (size_t len = 0; len < good.size(); ++len) {
        std::vector<uint8_t> cut(good.begin(),
                                 good.begin() + static_cast<long>(len));
        EXPECT_FALSE(PackedLayer::tryDeserialize(cfg, 16, 64, cut, out))
            << "accepted a stream truncated to " << len << " bytes";
    }

    // Padded beyond the layout.
    std::vector<uint8_t> padded = good;
    padded.push_back(0);
    EXPECT_FALSE(PackedLayer::tryDeserialize(cfg, 16, 64, padded, out));

    // Wrong shape for the stream.
    EXPECT_FALSE(PackedLayer::tryDeserialize(cfg, 16, 63, good, out));
    EXPECT_FALSE(PackedLayer::tryDeserialize(cfg, 17, 64, good, out));
}

TEST(IoUtil, ReadFullyReassemblesDribbledPipeWrites)
{
    // A pipe writer that dribbles one byte at a time forces readFully
    // through its short-read resumption path: each read() returns less
    // than asked, and the wrapper must keep looping until exactly N
    // bytes have arrived.
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    std::vector<uint8_t> sent(4096);
    Rng rng(7);
    for (uint8_t &b : sent)
        b = static_cast<uint8_t>(rng.uniformInt(256));
    std::thread writer([&] {
        for (size_t i = 0; i < sent.size(); ++i)
            ASSERT_TRUE(writeFully(fds[1], &sent[i], 1));
        close(fds[1]);
    });
    std::vector<uint8_t> got(sent.size(), 0);
    EXPECT_TRUE(readFully(fds[0], got.data(), got.size()));
    EXPECT_EQ(got, sent);
    // The writer closed: further reads hit EOF and must report false.
    uint8_t extra = 0;
    EXPECT_FALSE(readFully(fds[0], &extra, 1));
    writer.join();
    close(fds[0]);
}

TEST(IoUtil, WriteFullySurvivesSignalInterruption)
{
    // Install a non-SA_RESTART handler and pelt the writer thread with
    // signals while it pushes more data than the pipe buffer holds:
    // write() returns short counts and EINTR, and writeFully must
    // deliver every byte anyway.
    struct sigaction sa = {}, old = {};
    sa.sa_handler = [](int) {};
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // deliberately not SA_RESTART
    ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    std::vector<uint8_t> sent(1 << 20);  // bigger than any pipe buffer
    Rng rng(11);
    for (uint8_t &b : sent)
        b = static_cast<uint8_t>(rng.uniformInt(256));

    std::atomic<bool> writing(true);
    bool wrote = false;
    std::thread writer([&] {
        wrote = writeFully(fds[1], sent.data(), sent.size());
        writing.store(false);
        close(fds[1]);
    });
    const pthread_t target = writer.native_handle();
    std::thread pelter([&] {
        while (writing.load()) {
            pthread_kill(target, SIGUSR1);
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    });

    std::vector<uint8_t> got(sent.size(), 0);
    EXPECT_TRUE(readFully(fds[0], got.data(), got.size()));
    writer.join();
    pelter.join();
    EXPECT_TRUE(wrote);
    EXPECT_EQ(got, sent);
    close(fds[0]);
    sigaction(SIGUSR1, &old, nullptr);
}

TEST(IoUtil, FreadFullyReportsEofShortOfRequest)
{
    char path[] = "/tmp/msq_io_util_XXXXXX";
    const int fd = mkstemp(path);
    ASSERT_GE(fd, 0);
    close(fd);
    {
        std::FILE *f = std::fopen(path, "wb");
        ASSERT_NE(f, nullptr);
        const char payload[] = "abcdefgh";
        EXPECT_TRUE(fwriteFully(f, payload, 8));
        std::fclose(f);
    }
    std::FILE *f = std::fopen(path, "rb");
    ASSERT_NE(f, nullptr);
    char buf[8] = {};
    EXPECT_TRUE(freadFully(f, buf, 8));
    EXPECT_EQ(std::string(buf, 8), "abcdefgh");
    // At EOF: asking for one more byte must fail, not spin.
    EXPECT_FALSE(freadFully(f, buf, 1));
    std::fclose(f);
    // And a request larger than the file fails partway through.
    f = std::fopen(path, "rb");
    ASSERT_NE(f, nullptr);
    char big[16] = {};
    EXPECT_FALSE(freadFully(f, big, 16));
    std::fclose(f);
    std::remove(path);
}

} // namespace
} // namespace msq
