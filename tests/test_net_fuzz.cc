/**
 * @file
 * Hostile-input sweeps over the serving wire protocol, mirroring the
 * `.msq` container fuzz discipline (test_io_fuzz.cc): every byte flip,
 * every truncation, oversized declared lengths, and seeded garbage
 * streams must come back as typed NetCodes — never an assert, a crash,
 * or an allocation blowup. The decoder's buffer bound is pinned
 * explicitly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "net/frame.h"

namespace msq {
namespace {

/** A corpus of one valid frame per type. */
std::vector<std::vector<uint8_t>>
corpus()
{
    RequestMsg rq;
    rq.maxNewTokens = 9;
    rq.deadlineMs = 250;
    rq.prompt = {1, 2, 3, 4, 5, 6, 7};
    ErrorMsg em;
    em.code = ServeError::DeadlineExceeded;
    em.detail = "expired";
    StatsMsg sm;
    sm.queueDepth = 3;
    sm.inFlight = 2;
    sm.capacityPages = 128;
    sm.usedPages = 17;
    sm.pledgedPages = 9;
    sm.requestsServed = 1000;
    sm.tokensStreamed = 16000;
    return {
        encodeRequestFrame(11, rq),
        encodeCancelFrame(12),
        encodeTokenFrame(13, TokenMsg{4, 42}),
        encodeDoneFrame(14, DoneMsg{5, 0x1234567890ull}),
        encodeErrorFrame(15, em),
        encodeStatsQueryFrame(16),
        encodeStatsFrame(17, sm),
    };
}

/** Decode a byte stream to exhaustion; must terminate with a typed
 *  code and never throw. Returns the terminal NetCode. */
NetCode
consume(const std::vector<uint8_t> &bytes, size_t *frames = nullptr)
{
    FrameDecoder dec;
    dec.feed(bytes.data(), bytes.size());
    Frame f;
    size_t count = 0;
    for (;;) {
        const NetCode code = dec.next(f);
        if (code == NetCode::Ok) {
            ++count;
            // Payload decoders must also stay typed on whatever the
            // frame layer accepted.
            RequestMsg rq;
            TokenMsg tm;
            DoneMsg dm;
            ErrorMsg em;
            StatsMsg sm;
            switch (f.type) {
              case FrameType::Request:
                decodeRequestMsg(f.payload, rq);
                break;
              case FrameType::Token:
                decodeTokenMsg(f.payload, tm);
                break;
              case FrameType::Done:
                decodeDoneMsg(f.payload, dm);
                break;
              case FrameType::Error:
                decodeErrorMsg(f.payload, em);
                break;
              case FrameType::Stats:
                if (!f.payload.empty())
                    decodeStatsMsg(f.payload, sm);
                break;
              case FrameType::Cancel:
                break;
            }
            continue;
        }
        if (frames != nullptr)
            *frames = count;
        return code;
    }
}

TEST(NetFuzz, EveryByteFlipIsDetected)
{
    for (const std::vector<uint8_t> &frame : corpus()) {
        for (size_t pos = 0; pos < frame.size(); ++pos) {
            for (uint8_t bit = 0; bit < 8; ++bit) {
                std::vector<uint8_t> mutated = frame;
                mutated[pos] ^= static_cast<uint8_t>(1u << bit);
                size_t decoded = 0;
                const NetCode code = consume(mutated, &decoded);
                // The CRC covers every byte, so a single-bit flip can
                // never yield a cleanly decoded frame: the decoder
                // reports a typed error, or (when the flip grew the
                // declared length within bounds) starves on NeedMore.
                EXPECT_EQ(decoded, 0u)
                    << "pos " << pos << " bit " << int(bit);
                EXPECT_NE(code, NetCode::Ok);
            }
        }
    }
}

TEST(NetFuzz, EveryTruncationStarvesOrErrs)
{
    for (const std::vector<uint8_t> &frame : corpus()) {
        for (size_t len = 0; len < frame.size(); ++len) {
            std::vector<uint8_t> prefix(frame.begin(),
                                        frame.begin() +
                                            static_cast<ptrdiff_t>(len));
            size_t decoded = 0;
            const NetCode code = consume(prefix, &decoded);
            EXPECT_EQ(decoded, 0u) << "len " << len;
            EXPECT_EQ(code, NetCode::NeedMore) << "len " << len;
        }
        // The untruncated frame decodes exactly once, as a control.
        size_t decoded = 0;
        EXPECT_EQ(consume(frame, &decoded), NetCode::NeedMore);
        EXPECT_EQ(decoded, 1u);
    }
}

TEST(NetFuzz, OversizedLengthsNeverBuffer)
{
    // Sweep hostile declared lengths; none may grow the buffer beyond
    // what was actually fed, and all must be typed FrameTooLarge.
    const uint32_t hostile[] = {kMaxFramePayload + 1, 1u << 24,
                                0x7FFFFFFFu, 0xFFFFFFFFu};
    for (uint32_t len : hostile) {
        std::vector<uint8_t> hdr;
        for (int i = 0; i < 4; ++i)
            hdr.push_back(static_cast<uint8_t>(kNetMagic >> (8 * i)));
        hdr.push_back(3); // Token
        for (int i = 0; i < 8; ++i)
            hdr.push_back(static_cast<uint8_t>(i));
        for (int i = 0; i < 4; ++i)
            hdr.push_back(static_cast<uint8_t>(len >> (8 * i)));
        FrameDecoder dec;
        dec.feed(hdr.data(), hdr.size());
        Frame f;
        EXPECT_EQ(dec.next(f), NetCode::FrameTooLarge);
        EXPECT_LE(dec.buffered(), hdr.size());
        // Sticky: the stream cannot be revived with more bytes.
        EXPECT_FALSE(dec.feed(hdr.data(), hdr.size()));
        EXPECT_EQ(dec.next(f), NetCode::FrameTooLarge);
    }
}

TEST(NetFuzz, HostilePayloadLengthsAreTypedNotAllocated)
{
    // CRC-valid frames whose *payload fields* lie about sizes: the
    // caps must fire before any length-derived allocation.
    const auto put32 = [](std::vector<uint8_t> &v, uint32_t x) {
        for (int i = 0; i < 4; ++i)
            v.push_back(static_cast<uint8_t>(x >> (8 * i)));
    };
    for (uint32_t lie : {kMaxPromptTokens + 1, 1u << 28, 0xFFFFFFFFu}) {
        std::vector<uint8_t> payload;
        put32(payload, 4);   // maxNewTokens
        put32(payload, 0);   // deadline
        put32(payload, lie); // prompt length lie
        RequestMsg out;
        EXPECT_EQ(decodeRequestMsg(payload, out), NetCode::BadPayload);
        EXPECT_TRUE(out.prompt.empty());
    }
    for (uint32_t lie : {kMaxNewTokens + 1, 0u, 0xFFFFFFFFu}) {
        std::vector<uint8_t> payload;
        put32(payload, lie);
        put32(payload, 0);
        put32(payload, 1);
        put32(payload, 2);
        RequestMsg out;
        EXPECT_EQ(decodeRequestMsg(payload, out), NetCode::BadPayload);
    }
    // Error frame lying about its detail length.
    {
        std::vector<uint8_t> payload;
        put32(payload, 1);          // Overloaded
        put32(payload, 0xFFFFFFFF); // detail length lie
        ErrorMsg out;
        EXPECT_EQ(decodeErrorMsg(payload, out), NetCode::BadPayload);
        EXPECT_TRUE(out.detail.empty());
    }
    // Stats snapshots are fixed-size: every other length — short,
    // long, or absurd — is typed BadPayload with no length-derived
    // allocation (the payload is already bounded by the frame cap).
    for (size_t size : {1u, 39u, 41u, 64u, 4096u}) {
        std::vector<uint8_t> payload(size, 0xAB);
        StatsMsg out;
        EXPECT_EQ(decodeStatsMsg(payload, out), NetCode::BadPayload)
            << "size " << size;
    }
}

TEST(NetFuzz, StatsSnapshotRoundTripsExactly)
{
    StatsMsg sm;
    sm.queueDepth = 0xAABBCCDD;
    sm.inFlight = 7;
    sm.capacityPages = 4096;
    sm.usedPages = 1234;
    sm.pledgedPages = 99;
    sm.draining = 1;
    sm.requestsServed = 0x1122334455667788ull;
    sm.tokensStreamed = 0x99AABBCCDDEEFF00ull;
    const std::vector<uint8_t> wire = encodeStatsFrame(21, sm);
    FrameDecoder dec;
    dec.feed(wire.data(), wire.size());
    Frame f;
    ASSERT_EQ(dec.next(f), NetCode::Ok);
    ASSERT_EQ(f.type, FrameType::Stats);
    StatsMsg back;
    ASSERT_EQ(decodeStatsMsg(f.payload, back), NetCode::Ok);
    EXPECT_EQ(back.queueDepth, sm.queueDepth);
    EXPECT_EQ(back.inFlight, sm.inFlight);
    EXPECT_EQ(back.capacityPages, sm.capacityPages);
    EXPECT_EQ(back.usedPages, sm.usedPages);
    EXPECT_EQ(back.pledgedPages, sm.pledgedPages);
    EXPECT_EQ(back.draining, sm.draining);
    EXPECT_EQ(back.requestsServed, sm.requestsServed);
    EXPECT_EQ(back.tokensStreamed, sm.tokensStreamed);

    // The query form is an empty payload, distinguishable on sight.
    const std::vector<uint8_t> query = encodeStatsQueryFrame(22);
    FrameDecoder qdec;
    qdec.feed(query.data(), query.size());
    ASSERT_EQ(qdec.next(f), NetCode::Ok);
    EXPECT_EQ(f.type, FrameType::Stats);
    EXPECT_TRUE(f.payload.empty());
}

TEST(NetFuzz, SeededGarbageStreamsStayTyped)
{
    // Random byte soup, dribbled in random chunk sizes: the decoder
    // must land in a typed state with bounded memory, every time.
    for (uint64_t seed = 1; seed <= 50; ++seed) {
        Rng rng(seed);
        std::vector<uint8_t> soup(512);
        for (uint8_t &b : soup)
            b = static_cast<uint8_t>(rng.uniformInt(256));
        FrameDecoder dec;
        size_t fed = 0;
        Frame f;
        while (fed < soup.size()) {
            const size_t chunk =
                std::min<size_t>(1 + rng.uniformInt(64),
                                 soup.size() - fed);
            if (!dec.feed(soup.data() + fed, chunk))
                break; // sticky error: bytes refused, memory capped
            fed += chunk;
            NetCode code;
            while ((code = dec.next(f)) == NetCode::Ok) {
            }
            EXPECT_LE(dec.buffered(),
                      frameWireBytes(kMaxFramePayload) + 64);
        }
        EXPECT_NE(dec.state(), NetCode::Ok); // garbage can't stay clean
    }
}

} // namespace
} // namespace msq
