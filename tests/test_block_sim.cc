/**
 * @file
 * Tests for the transformer-block decode simulation: workload
 * expansion (projections + attention GEMVs), KV-cache contribution
 * scaling with context length, and power-breakdown sanity.
 */

#include <gtest/gtest.h>

#include "accel/block_sim.h"

namespace msq {
namespace {

TEST(BlockSim, WorkloadExpansion)
{
    const ModelProfile &model = modelByName("LLaMA2-7B");
    DecodeStep step;
    step.batch = 2;
    step.contextLength = 1024;
    const std::vector<Workload> wls = blockWorkloads(model, step);
    ASSERT_EQ(wls.size(), 6u);  // 4 projections + 2 attention GEMVs

    const size_t d = model.realHidden;
    EXPECT_EQ(wls[0].reduction, d);
    EXPECT_EQ(wls[0].outputs, d + d / 2);  // fused QKV
    EXPECT_EQ(wls[2].outputs, 4 * d);      // MLP up
    EXPECT_EQ(wls[3].reduction, 4 * d);    // MLP down
    // Attention workloads carry no MicroScopiQ outlier metadata.
    EXPECT_DOUBLE_EQ(wls[4].microOutlierFrac, 0.0);
    EXPECT_EQ(wls[4].outputs, step.contextLength);
    EXPECT_EQ(wls[5].reduction, step.contextLength);
}

TEST(BlockSim, LongerContextCostsMore)
{
    const ModelProfile &model = modelByName("LLaMA2-7B");
    AccelConfig cfg;
    DecodeStep short_ctx;
    short_ctx.contextLength = 512;
    DecodeStep long_ctx;
    long_ctx.contextLength = 8192;
    Rng r1(1), r2(1);
    const BlockSimResult a = simulateDecode(cfg, model, short_ctx, r1);
    const BlockSimResult b = simulateDecode(cfg, model, long_ctx, r2);
    EXPECT_GT(b.perBlock.totalCycles, a.perBlock.totalCycles);
    EXPECT_GT(b.energy.total(), a.energy.total());
}

TEST(BlockSim, ModelCyclesScaleWithDepth)
{
    const ModelProfile &model = modelByName("LLaMA2-7B");
    AccelConfig cfg;
    DecodeStep step;
    Rng rng(2);
    const BlockSimResult res = simulateDecode(cfg, model, step, rng);
    EXPECT_NEAR(res.modelCycles,
                static_cast<double>(res.perBlock.totalCycles) *
                    static_cast<double>(model.realLayers),
                1.0);
}

TEST(BlockSim, PowerSharesSumBelowHundred)
{
    const ModelProfile &model = modelByName("VILA-7B");
    AccelConfig cfg;
    cfg.reconUnits = 8;
    DecodeStep step;
    step.batch = 16;
    Rng rng(3);
    const BlockSimResult res = simulateDecode(cfg, model, step, rng);
    EXPECT_GT(res.pePercent, 0.0);
    EXPECT_GT(res.memoryPercent, 0.0);
    EXPECT_GE(res.reconPercent, 0.0);
    EXPECT_LE(res.pePercent + res.memoryPercent + res.reconPercent,
              100.0 + 1e-9);
}

TEST(BlockSim, KvBitsAffectAttentionTraffic)
{
    const ModelProfile &model = modelByName("LLaMA2-7B");
    AccelConfig cfg;
    DecodeStep kv8;
    kv8.kvBits = 8;
    DecodeStep kv4;
    kv4.kvBits = 4;
    Rng r1(4), r2(4);
    const BlockSimResult a = simulateDecode(cfg, model, kv8, r1);
    const BlockSimResult b = simulateDecode(cfg, model, kv4, r2);
    // Lower KV precision moves fewer bytes.
    EXPECT_LT(b.perBlock.traffic.dramBytes, a.perBlock.traffic.dramBytes);
}

} // namespace
} // namespace msq
