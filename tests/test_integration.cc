/**
 * @file
 * Cross-module integration tests: the full flow from synthetic model
 * generation through quantization, packing, serialization, accelerator
 * execution and performance estimation — the path every benchmark
 * binary exercises — plus end-to-end consistency properties between
 * the algorithm-side EBW and the performance-side memory traffic.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "accel/cycle_model.h"
#include "accel/energy.h"
#include "accel/functional.h"
#include "common/rng.h"
#include "core/microscopiq.h"
#include "model/calib_gen.h"
#include "model/model_zoo.h"
#include "model/pipeline.h"
#include "model/weight_gen.h"
#include "quant/hessian.h"
#include "quant/olive.h"
#include "quant/rtn.h"

namespace msq {
namespace {

class IntegrationTest : public ::testing::Test
{
  protected:
    void TearDown() override { clearHessianCache(); }
};

TEST_F(IntegrationTest, ModelLayerThroughFullStack)
{
    // Generate a model layer, quantize with MicroScopiQ, serialize,
    // restore, run on the functional accelerator, and verify against
    // the reference — the complete lifecycle of a packed layer.
    const ModelProfile &model = modelByName("Phi3-3.8B");
    const Matrix w = generateLayerWeights(model, 1);
    const Matrix calib = generateCalibration(model, 1, 96);

    MsqConfig cfg;
    cfg.hessianCompensation = false;  // keep the test fast
    MicroScopiQQuantizer quantizer(cfg);
    const PackedLayer layer = quantizer.quantizePacked(w, calib);

    const std::vector<uint8_t> bytes = layer.serialize();
    const PackedLayer restored = PackedLayer::deserialize(
        layer.config(), layer.rows(), layer.cols(), bytes);

    Rng rng(9);
    Matrix x(w.rows(), 3);
    for (size_t r = 0; r < w.rows(); ++r)
        for (size_t t = 0; t < 3; ++t)
            x(r, t) = rng.gaussian(0.0, 1.0);
    const QuantizedActs acts(x, 8, 128);

    FunctionalAccelerator accel{AccelConfig{}};
    const Matrix hw = accel.gemm(restored, acts);
    const Matrix ref = FunctionalAccelerator::referenceGemm(layer, acts);
    for (size_t m = 0; m < hw.rows(); ++m)
        for (size_t c = 0; c < hw.cols(); ++c)
            ASSERT_NEAR(hw(m, c), ref(m, c),
                        std::max(1.0, ref.maxAbs()) * 1e-9);
}

TEST_F(IntegrationTest, EbwDrivesMemoryTraffic)
{
    // The algorithm-side EBW must agree with the performance model's
    // DRAM traffic accounting: running the same GEMM shape with the
    // measured EBW moves EBW/8 bytes per weight.
    const ModelProfile &model = modelByName("LLaMA2-7B");
    const Matrix w = generateLayerWeights(model, 0);

    MsqConfig cfg;
    cfg.hessianCompensation = false;
    MicroScopiQQuantizer quantizer(cfg);
    const QuantResult res = quantizer.quantize(w, Matrix());

    Workload wl;
    wl.tokens = 1;
    wl.reduction = w.rows();
    wl.outputs = w.cols();
    wl.weightBits = 2;
    wl.ebw = res.ebw;
    wl.microOutlierFrac =
        quantizer.packed().outlierMicroBlockFraction();

    AccelConfig acfg;
    CycleModel cm(acfg);
    Rng rng(5);
    const CycleStats stats = cm.run(wl, rng);

    const double weight_bytes =
        static_cast<double>(w.size()) * res.ebw / 8.0;
    // DRAM traffic = weights + iacts + oacts; weights dominate.
    EXPECT_GT(stats.traffic.dramBytes, weight_bytes);
    EXPECT_LT(stats.traffic.dramBytes, weight_bytes * 1.2);
}

TEST_F(IntegrationTest, OutlierFractionConsistency)
{
    // The packed layer's micro-block outlier fraction must track the
    // generator's planted outlier rate through the 1-(1-p)^B_mu law.
    const ModelProfile &model = modelByName("LLaMA3-8B");
    const Matrix w = generateLayerWeights(model, 0);
    MsqConfig cfg;
    cfg.hessianCompensation = false;
    MicroScopiQQuantizer quantizer(cfg);
    const PackedLayer layer = quantizer.quantizePacked(w, Matrix());

    const double expected =
        1.0 - std::pow(1.0 - model.weights.outlierRate, 8.0);
    EXPECT_NEAR(layer.outlierMicroBlockFraction(), expected,
                expected * 0.5);
}

TEST_F(IntegrationTest, PipelineAgreesWithDirectQuantization)
{
    // evaluateMethodOnModel must produce the same NMSE as calling the
    // quantizer by hand on the same generated data.
    const ModelProfile &model = modelByName("ResNet50");
    PipelineConfig cfg;
    cfg.calibTokens = 64;
    cfg.evalTokens = 64;
    QuantMethod method{"RTN-W4", [] {
                           return std::make_unique<RtnQuantizer>(4, 128);
                       }};
    const ModelEvalResult via_pipeline =
        evaluateMethodOnModel(model, method, cfg);

    double nmse_acc = 0.0, params_acc = 0.0;
    for (size_t li = 0; li < model.layers.size(); ++li) {
        const Matrix w = generateLayerWeights(model, li);
        const Matrix x = generateEvalSet(model, li, 64);
        RtnQuantizer q(4, 128);
        const QuantResult res = q.quantize(w, Matrix());
        const Matrix ref = w.transposedMatmul(x);
        const double nmse =
            res.dequant.transposedMatmul(x).normalizedErrorTo(ref);
        const double params = static_cast<double>(w.size());
        nmse_acc += nmse * params;
        params_acc += params;
    }
    EXPECT_NEAR(via_pipeline.meanNmse, nmse_acc / params_acc, 1e-12);
}

TEST_F(IntegrationTest, EnergyScalesWithWork)
{
    // Twice the tokens -> roughly twice the dynamic energy.
    AccelConfig acfg;
    CycleModel cm(acfg);
    Workload wl;
    wl.tokens = 4;
    wl.reduction = 1024;
    wl.outputs = 1024;
    wl.weightBits = 2;
    wl.ebw = 2.36;
    wl.microOutlierFrac = 0.09;

    Rng r1(1), r2(1);
    const CycleStats s1 = cm.run(wl, r1);
    wl.tokens = 8;
    const CycleStats s2 = cm.run(wl, r2);

    // Twice the tokens doubles the MAC count and PE energy; total
    // energy grows less because the streamed weight traffic (the
    // dominant term in a decode GEMV) is unchanged.
    EXPECT_EQ(s2.macs, s1.macs * 2);
    EnergyParams p;
    const EnergyBreakdown e1 = computeEnergy(p, s1, 2, 1.0, 1.0);
    const EnergyBreakdown e2 = computeEnergy(p, s2, 2, 1.0, 1.0);
    EXPECT_NEAR(e2.peDynamic, 2.0 * e1.peDynamic, 1e-6);
    EXPECT_GT(e2.total(), e1.total());
    EXPECT_LT(e2.total(), e1.total() * 1.5);
}

TEST_F(IntegrationTest, AllZooModelsQuantizeCleanly)
{
    // Smoke test: every registered model profile survives the full
    // MicroScopiQ pass with valid EBW and finite proxy metrics.
    PipelineConfig cfg;
    cfg.calibTokens = 32;
    cfg.evalTokens = 32;
    QuantMethod method{"MSQ-W2", [] {
                           MsqConfig c;
                           c.hessianCompensation = false;
                           return std::make_unique<MicroScopiQQuantizer>(c);
                       }};
    for (const std::string &name : allModels()) {
        const ModelEvalResult res =
            evaluateMethodOnModel(modelByName(name), method, cfg);
        EXPECT_GE(res.meanEbw, 2.0) << name;
        EXPECT_LT(res.meanEbw, 8.0) << name;
        EXPECT_TRUE(std::isfinite(res.proxyPpl)) << name;
        EXPECT_GE(res.meanNmse, 0.0) << name;
    }
}

TEST_F(IntegrationTest, MicroScopiQBeatsOliveOnAdjacencyHeavyModels)
{
    // The central co-design claim (Fig. 2b): on models with high
    // adjacent-outlier rates, 2-bit MicroScopiQ beats 4-bit OliVe.
    const ModelProfile &model = modelByName("VILA-7B");
    PipelineConfig cfg;
    cfg.calibTokens = 64;
    cfg.evalTokens = 64;

    QuantMethod msq2{"MSQ-W2", [] {
                         MsqConfig c;
                         c.hessianCompensation = false;
                         return std::make_unique<MicroScopiQQuantizer>(c);
                     }};
    QuantMethod olive4{"OliVe-W4", [] {
                           return std::make_unique<OliveQuantizer>(4);
                       }};
    const double nmse_msq =
        evaluateMethodOnModel(model, msq2, cfg).meanNmse;
    const double nmse_olive =
        evaluateMethodOnModel(model, olive4, cfg).meanNmse;
    EXPECT_LT(nmse_msq, nmse_olive);
}

} // namespace
} // namespace msq
